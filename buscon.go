// Package buscon is the public facade of the reproduction of
// "Cache Persistence-Aware Memory Bus Contention Analysis for
// Multicore Systems" (Rashid, Nelissen, Tovar — DATE 2020).
//
// It computes worst-case response times (WCRT) for sporadic,
// constrained-deadline tasks under partitioned fixed-priority
// preemptive scheduling on multicore platforms whose cores share a
// memory bus, arbitrated by fixed-priority (FP), Round-Robin (RR) or
// TDMA policies — with or without awareness of cache persistence, the
// paper's contribution.
//
// # Quick start
//
//	plat := buscon.DefaultPlatform()
//	pool, _ := buscon.BenchmarkPool(plat.Cache)
//	ts, _ := buscon.GenerateTaskSet(buscon.GenConfig{
//	    Platform: plat, TasksPerCore: 8, CoreUtilization: 0.5,
//	}, pool, rand.New(rand.NewSource(1)))
//	res, _ := buscon.Analyze(ts, buscon.AnalysisConfig{
//	    Arbiter: buscon.RR, Persistence: true,
//	})
//	fmt.Println(res.Schedulable)
//
// Subsystems live in internal packages: the structured program model
// and static cache analysis that derive task parameters
// (internal/program, internal/staticwcet), the CRPD and
// cache-persistence machinery (internal/crpd, internal/persistence),
// the contention and response-time analysis itself (internal/core),
// the synthetic Mälardalen-like benchmark suite (internal/benchsuite),
// the task-set generator (internal/taskgen), a cycle-accurate
// multicore simulator used for validation (internal/sim), and the
// harness that regenerates every figure and table of the paper
// (internal/experiments).
package buscon

import (
	"fmt"
	"math/rand"

	"repro/internal/benchsuite"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// Re-exported model types: see package taskmodel for field
// documentation.
type (
	// Time is the model's abstract time unit ("cycles").
	Time = taskmodel.Time
	// Task is one sporadic constrained-deadline task.
	Task = taskmodel.Task
	// TaskSet couples a platform with the tasks partitioned onto it.
	TaskSet = taskmodel.TaskSet
	// Platform describes cores, caches and the shared bus.
	Platform = taskmodel.Platform
	// CacheConfig is the geometry of a core-private direct-mapped
	// cache.
	CacheConfig = taskmodel.CacheConfig
)

// Re-exported analysis types: see internal/core.
type (
	// Arbiter selects the bus arbitration policy.
	Arbiter = core.Arbiter
	// AnalysisConfig selects arbiter, persistence awareness and the
	// CRPD/CPRO approaches.
	AnalysisConfig = core.Config
	// Result is a whole-task-set analysis outcome.
	Result = core.Result
	// TaskResult is one task's verdict and WCRT bound.
	TaskResult = core.TaskResult
)

// Bus arbitration policies.
const (
	// FP is the work-conserving fixed-priority bus (Eq. 7).
	FP = core.FP
	// RR is the work-conserving Round-Robin bus (Eq. 8).
	RR = core.RR
	// TDMA is the non-work-conserving TDMA bus (Eq. 9).
	TDMA = core.TDMA
	// Perfect is the contention-free reference bus of Fig. 2.
	Perfect = core.Perfect
	// Regulated is the MemGuard-style bandwidth-regulated bus: per-core
	// budgets of Platform.RegBudget accesses, replenished every
	// Platform.RegPeriod cycles, with dynamic reclaim.
	Regulated = core.Regulated
	// ParAware is the parallelism-aware per-access bound: each access
	// waits for at most one in-flight request per other core.
	ParAware = core.ParAware
)

// Arbiters returns every declared arbiter, in declaration order.
func Arbiters() []Arbiter { return core.Arbiters() }

// Re-exported generation types: see internal/taskgen.
type (
	// GenConfig parameterises random task-set generation.
	GenConfig = taskgen.Config
	// BenchmarkParams are per-benchmark task parameters.
	BenchmarkParams = taskgen.TaskParams
)

// DefaultPlatform returns the paper's default platform: 4 cores, a
// 256-set 32-byte-block private L1 instruction cache per core,
// d_mem = 5 and RR/TDMA slot size 2.
func DefaultPlatform() Platform {
	return taskgen.DefaultConfig().Platform
}

// Analyze runs the WCRT analysis of Eq. (19) for the task set under
// the given configuration and reports per-task bounds and overall
// schedulability.
func Analyze(ts *TaskSet, cfg AnalysisConfig) (*Result, error) {
	return core.Analyze(ts, cfg)
}

// BatchRequest pairs one task set with the configurations to analyse
// it under; see AnalyzeBatch.
type BatchRequest = core.BatchRequest

// AnalyzeAll analyses one task set under several configurations,
// sharing the precomputed interference tables (γ, CPRO overlaps, task
// partitions) across configurations with a common CRPD approach. It is
// the cheapest way to run the paper's six-variant comparison on a
// task set.
func AnalyzeAll(ts *TaskSet, cfgs []AnalysisConfig) ([]*Result, error) {
	return core.AnalyzeAll(ts, cfgs)
}

// AnalyzeBatch runs many AnalyzeAll requests on a bounded worker pool
// (workers <= 0 selects GOMAXPROCS) and returns one result slice per
// request, in request order. The experiment sweeps are built on it.
func AnalyzeBatch(reqs []BatchRequest, workers int) ([][]*Result, error) {
	return core.AnalyzeBatch(reqs, workers)
}

// NewTaskSet wraps tasks and a platform, sorting by priority.
func NewTaskSet(p Platform, tasks []*Task) *TaskSet {
	return taskmodel.NewTaskSet(p, tasks)
}

// BenchmarkPool extracts the built-in synthetic benchmark suite at the
// given cache geometry, producing the parameter pool that
// GenerateTaskSet draws from.
func BenchmarkPool(cache CacheConfig) ([]BenchmarkParams, error) {
	return taskgen.PoolFromSuite(cache)
}

// GenerateTaskSet builds one random task set the way the paper's
// evaluation does (UUnifast utilizations, deadline-monotonic
// priorities, T = D).
func GenerateTaskSet(cfg GenConfig, pool []BenchmarkParams, rng *rand.Rand) (*TaskSet, error) {
	return taskgen.Generate(cfg, pool, rng)
}

// --- extended tooling re-exports ---------------------------------------------

// Explanation decomposes one task's WCRT bound (see internal/core).
type Explanation = core.Explanation

// Explain runs the analysis and decomposes the bound of the task with
// the given priority: same-core demand per interfering task (plain vs
// persistence-aware, CRPD, CPRO), remote-core contributions, blocking
// and total bus time.
func Explain(ts *TaskSet, cfg AnalysisConfig, priority int) (*Explanation, error) {
	return core.Explain(ts, cfg, priority)
}

// MaxDMem returns the largest memory access time at which the task set
// remains schedulable under cfg (0 if unschedulable even at 1); see
// internal/core for search details.
func MaxDMem(ts *TaskSet, cfg AnalysisConfig, limit Time) (Time, error) {
	return core.MaxDMem(ts, cfg, limit)
}

// CriticalScaling returns the smallest period/deadline scaling factor
// at which the task set is schedulable under cfg: below 1 quantifies
// headroom, above 1 the missing slack.
func CriticalScaling(ts *TaskSet, cfg AnalysisConfig, tol float64) (float64, error) {
	return core.CriticalScaling(ts, cfg, tol)
}

// SimulationResult summarises a validation run of the cycle-accurate
// simulator against a task set whose tasks are drawn from the built-in
// benchmark suite.
type SimulationResult struct {
	// MaxResponse maps each priority to the largest observed response
	// time.
	MaxResponse map[int]Time
	// DeadlineMisses counts observed misses across all tasks.
	DeadlineMisses int64
	// BusAccesses is the number of bus transactions served.
	BusAccesses int64
	// Cycles is the simulated horizon.
	Cycles Time
}

// SimulateSuite runs the cycle-accurate simulator for a task set whose
// task names refer to built-in benchmarks (as produced by
// GenerateTaskSet with a BenchmarkPool): each task executes the very
// program its parameters were extracted from. The horizon covers
// roughly `jobs` jobs of the longest-period task. It is the public
// entry point to the soundness validation the repository's tests
// perform: observed response times should stay below Analyze's WCRT
// bounds.
func SimulateSuite(ts *TaskSet, arbiter Arbiter, jobs int) (*SimulationResult, error) {
	var policy sim.Policy
	switch arbiter {
	case FP:
		policy = sim.PolicyFP
	case RR:
		policy = sim.PolicyRR
	case TDMA:
		policy = sim.PolicyTDMA
	case Regulated:
		policy = sim.PolicyRegulated
	case ParAware:
		policy = sim.PolicyParAware
	default:
		return nil, fmt.Errorf("buscon: no simulator policy for arbiter %v", arbiter)
	}
	var bindings []sim.TaskBinding
	for _, t := range ts.Tasks {
		b, err := benchsuite.ByName(t.Name)
		if err != nil {
			return nil, fmt.Errorf("buscon: task %q is not a suite benchmark: %w", t.Name, err)
		}
		bindings = append(bindings, sim.TaskBinding{Task: t, Prog: b.Prog})
	}
	res, err := sim.Run(ts.Platform, bindings, sim.Config{
		Policy:  policy,
		Horizon: sim.HorizonForJobs(bindings, jobs),
	})
	if err != nil {
		return nil, err
	}
	out := &SimulationResult{
		MaxResponse: map[int]Time{},
		BusAccesses: res.BusServe,
		Cycles:      res.Cycles,
	}
	for prio, st := range res.Tasks {
		out.MaxResponse[prio] = st.MaxResponse
		out.DeadlineMisses += st.DeadlineMisses
	}
	return out, nil
}
