// Package textplot renders simple multi-series line charts as ASCII
// art, so the experiment binaries can show figure-shaped output
// directly in a terminal, alongside machine-readable CSV.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a plot of several series over a shared x axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// Height is the number of plot rows (default 16).
	Height int
	// Width is the number of plot columns (default: one per x, padded
	// to at least 40).
	Width int
	// YMin/YMax fix the y range; when both zero the range is derived
	// from the data.
	YMin, YMax float64
}

// markers cycles through distinguishable glyphs per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart. Series values must all have len(Xs) points.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Xs) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("textplot: empty chart")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Xs) {
			return fmt.Errorf("textplot: series %q has %d values for %d xs", s.Name, len(s.Values), len(c.Xs))
		}
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}
	width := c.Width
	if width <= 0 {
		width = len(c.Xs) * 3
		if width < 40 {
			width = 40
		}
	}

	ymin, ymax := c.YMin, c.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Values {
				ymin = math.Min(ymin, v)
				ymax = math.Max(ymax, v)
			}
		}
		if ymin == ymax {
			ymax = ymin + 1
		}
	}
	xmin, xmax := c.Xs[0], c.Xs[len(c.Xs)-1]
	if xmin == xmax {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		p := (x - xmin) / (xmax - xmin)
		ccol := int(math.Round(p * float64(width-1)))
		if ccol < 0 {
			ccol = 0
		}
		if ccol >= width {
			ccol = width - 1
		}
		return ccol
	}
	row := func(y float64) int {
		p := (y - ymin) / (ymax - ymin)
		r := int(math.Round((1 - p) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			grid[row(v)][col(c.Xs[i])] = m
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r := 0; r < height; r++ {
		yval := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s|\n", yval, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.3g%*.3g\n", "", width/2, xmin, width-width/2, xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s", "", c.XLabel)
		if c.YLabel != "" {
			fmt.Fprintf(&b, "   y: %s", c.YLabel)
		}
		b.WriteByte('\n')
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%8s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the chart data as CSV: header "x,<series...>", one
// row per x value.
func (c *Chart) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range c.Series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i, x := range c.Xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, ",%g", s.Values[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
