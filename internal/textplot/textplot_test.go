package textplot

import (
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "demo",
		XLabel: "utilization",
		YLabel: "schedulable",
		Xs:     []float64{0.1, 0.2, 0.3, 0.4},
		Series: []Series{
			{Name: "base", Values: []float64{1, 0.8, 0.4, 0}},
			{Name: "aware", Values: []float64{1, 1, 0.7, 0.2}},
		},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"demo", "x: utilization", "y: schedulable", "* base", "o aware", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every rendered plot row carries the axis frame.
	if strings.Count(out, "|") < 16 {
		t.Errorf("expected at least 16 framed rows:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var b strings.Builder
	empty := &Chart{}
	if err := empty.Render(&b); err == nil {
		t.Error("empty chart rendered")
	}
	bad := sampleChart()
	bad.Series[0].Values = bad.Series[0].Values[:2]
	if err := bad.Render(&b); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := &Chart{
		Xs:     []float64{1, 2},
		Series: []Series{{Name: "flat", Values: []float64{5, 5}}},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("flat series: %v", err)
	}
}

func TestRenderSingleX(t *testing.T) {
	c := &Chart{
		Xs:     []float64{3},
		Series: []Series{{Name: "pt", Values: []float64{1}}},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("single x: %v", err)
	}
}

func TestFixedYRange(t *testing.T) {
	c := sampleChart()
	c.YMin, c.YMax = 0, 1
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "   1.000 |") {
		t.Errorf("fixed range header missing:\n%s", b.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "x,base,aware" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	if lines[1] != "0.1,1,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[4] != "0.4,0,0.2" {
		t.Errorf("row 4 = %q", lines[4])
	}
}
