package taskgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/benchsuite"
	"repro/internal/taskmodel"
)

func TestUUnifastSumAndRange(t *testing.T) {
	f := func(seed int64, nRaw uint8, uRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		u := float64(uRaw%100)/100.0 + 0.01
		us := UUnifast(n, u, rng)
		if len(us) != n {
			return false
		}
		sum := 0.0
		for _, v := range us {
			if v < 0 || v > u+1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUUnifastDegenerate(t *testing.T) {
	if got := UUnifast(0, 1, rand.New(rand.NewSource(1))); got != nil {
		t.Errorf("UUnifast(0) = %v, want nil", got)
	}
	got := UUnifast(1, 0.7, rand.New(rand.NewSource(1)))
	if len(got) != 1 || math.Abs(got[0]-0.7) > 1e-12 {
		t.Errorf("UUnifast(1, 0.7) = %v", got)
	}
}

func defaultPool(t *testing.T) []TaskParams {
	t.Helper()
	pool, err := PoolFromSuite(DefaultConfig().Platform.Cache)
	if err != nil {
		t.Fatalf("PoolFromSuite: %v", err)
	}
	return pool
}

func TestGenerateStructure(t *testing.T) {
	cfg := DefaultConfig()
	pool := defaultPool(t)
	ts, err := Generate(cfg, pool, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := len(ts.Tasks); got != 32 {
		t.Fatalf("task count = %d, want 32", got)
	}
	for core := 0; core < 4; core++ {
		if got := len(ts.OnCore(core)); got != 8 {
			t.Errorf("core %d holds %d tasks, want 8", core, got)
		}
	}
	if err := ts.Validate(); err != nil {
		t.Errorf("generated set invalid: %v", err)
	}
	// Deadline-monotonic: priorities sorted by deadline.
	for i := 1; i < len(ts.Tasks); i++ {
		if ts.Tasks[i-1].Deadline > ts.Tasks[i].Deadline {
			t.Errorf("priority order violates deadline monotonic at %d", i)
		}
	}
}

func TestGenerateUtilizationTracksTarget(t *testing.T) {
	cfg := DefaultConfig()
	pool := defaultPool(t)
	for _, u := range []float64{0.1, 0.3, 0.6, 0.9} {
		cfg.CoreUtilization = u
		ts, err := Generate(cfg, pool, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("Generate(u=%g): %v", u, err)
		}
		for core := 0; core < cfg.Platform.NumCores; core++ {
			got := ts.CoreUtilization(core)
			// Ceiling of the period can only lower utilization; the
			// demand floor can push tiny-utilization tasks up, but at
			// these targets the aggregate must sit within a few percent.
			if got > u+1e-9 || got < u*0.9 {
				t.Errorf("u=%g core %d: utilization = %g, want ~%g", u, core, got, u)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	pool := defaultPool(t)
	a, err := Generate(cfg, pool, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, pool, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		x, y := a.Tasks[i], b.Tasks[i]
		if x.Name != y.Name || x.Core != y.Core || x.Period != y.Period || x.Priority != y.Priority {
			t.Fatalf("task %d differs across identical seeds: %+v vs %+v", i, x, y)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultConfig()
	pool := defaultPool(t)

	bad := cfg
	bad.TasksPerCore = 0
	if _, err := Generate(bad, pool, rand.New(rand.NewSource(1))); err == nil {
		t.Error("TasksPerCore=0 accepted")
	}

	bad = cfg
	bad.CoreUtilization = 0
	if _, err := Generate(bad, pool, rand.New(rand.NewSource(1))); err == nil {
		t.Error("CoreUtilization=0 accepted")
	}

	if _, err := Generate(cfg, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty pool accepted")
	}

	// Pool extracted at a different geometry than the platform.
	bad = cfg
	bad.Platform.Cache.NumSets = 128
	if _, err := Generate(bad, pool, rand.New(rand.NewSource(1))); err == nil {
		t.Error("geometry mismatch accepted")
	}

	bad = cfg
	bad.Platform.NumCores = 0
	if _, err := Generate(bad, pool, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestGenerateConstrainedDeadlines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoreUtilization = 0.95
	pool := defaultPool(t)
	for seed := int64(0); seed < 20; seed++ {
		ts, err := Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, task := range ts.Tasks {
			if task.Deadline != task.Period {
				t.Errorf("seed %d: task %q D=%d != T=%d (implicit deadlines expected)",
					seed, task.Name, task.Deadline, task.Period)
			}
			demand := task.PD + task.MD*ts.Platform.DMem
			if task.Period < demand {
				t.Errorf("seed %d: task %q period %d below demand %d", seed, task.Name, task.Period, demand)
			}
		}
	}
}

func TestPeriodModeStrings(t *testing.T) {
	if PeriodFromDemand.String() != "demand-derived" || PeriodLogUniform.String() != "log-uniform" {
		t.Error("PeriodMode strings wrong")
	}
	if PeriodMode(9).String() != "PeriodMode(9)" {
		t.Error("unknown PeriodMode string wrong")
	}
}

func TestGenerateLogUniformPeriods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Periods = PeriodLogUniform
	cfg.PeriodMin = 20_000
	cfg.PeriodMax = 2_000_000
	cfg.CoreUtilization = 0.4
	pool := defaultPool(t)
	var periods []float64
	for seed := int64(0); seed < 10; seed++ {
		ts, err := Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, task := range ts.Tasks {
			// The demand floor may push a period above PeriodMin's draw,
			// but never below the minimum or absurdly beyond the maximum.
			if task.Period < cfg.PeriodMin {
				t.Fatalf("seed %d: period %d below min %d", seed, task.Period, cfg.PeriodMin)
			}
			periods = append(periods, float64(task.Period))
			if task.MDr > task.MD {
				t.Fatalf("seed %d: scaled MDr %d > MD %d", seed, task.MDr, task.MD)
			}
		}
		// Utilization still tracks the target reasonably (scaling is
		// rounded, so allow a wider band than the demand-derived mode).
		for core := 0; core < cfg.Platform.NumCores; core++ {
			u := ts.CoreUtilization(core)
			if u < 0.25 || u > 0.55 {
				t.Fatalf("seed %d core %d: utilization %g far from 0.4", seed, core, u)
			}
		}
	}
	// Log-uniform spread: a decent fraction below 200k and above 200k
	// (geometric mean of the range).
	low, high := 0, 0
	for _, p := range periods {
		if p < 200_000 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("periods not spread across the log range: %d low, %d high", low, high)
	}
}

func TestPoolFromSuiteMemoizedAndIsolated(t *testing.T) {
	cache := taskmodel.CacheConfig{NumSets: 128, BlockSizeBytes: 32}
	a, err := PoolFromSuite(cache)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating a returned pool's sets must not leak into later calls.
	for i := 0; i < cache.NumSets; i++ {
		a[0].UCB.Remove(i)
		a[0].ECB.Remove(i)
		a[0].PCB.Remove(i)
	}
	b, err := PoolFromSuite(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("pool sizes differ: %d vs %d", len(a), len(b))
	}
	if b[0].ECB.Count() == 0 {
		t.Fatal("memoized pool was corrupted by caller mutation")
	}
	for i := range b {
		if a[i].Name != b[i].Name || a[i].PD != b[i].PD || a[i].MD != b[i].MD || a[i].MDr != b[i].MDr {
			t.Fatalf("pool entry %d differs between calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A fresh extraction at the same geometry matches the memoized copy.
	ps, err := benchsuite.ExtractAll(cache)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if b[i].Name != p.Name || !b[i].ECB.Equal(p.Result.ECB) ||
			!b[i].UCB.Equal(p.Result.UCB) || !b[i].PCB.Equal(p.Result.PCB) {
			t.Fatalf("memoized entry %d diverges from fresh extraction for %q", i, p.Name)
		}
	}
}
