// Package taskgen synthesises random task sets the way the paper's
// evaluation does: per-core utilizations drawn with UUnifast, task
// parameters assigned from randomly chosen benchmarks of the suite,
// implicit deadlines T = D = (PD + MD·d_mem)/U, and deadline-monotonic
// priority assignment over unique global priorities.
package taskgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/benchsuite"
	"repro/internal/cacheset"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// TaskParams are the per-benchmark parameters a generated task copies.
type TaskParams struct {
	Name          string
	PD            taskmodel.Time
	MD, MDr       int64
	UCB, ECB, PCB cacheset.Set
}

// poolCache memoizes suite extraction per cache geometry. Extraction
// is deterministic and dominated by the static WCET walk over every
// benchmark CFG, so the sweep drivers — which call PoolFromSuite once
// per figure (or, for the cache-size sweep, once per point) — would
// otherwise redo identical work.
var poolCache struct {
	sync.Mutex
	pools map[taskmodel.CacheConfig][]TaskParams
}

// PoolFromSuite extracts the whole benchmark suite at the given cache
// geometry and packages it as a generation pool. Results are memoized
// per geometry; each call returns a fresh copy with cloned cache sets,
// so callers may mutate their pool freely.
func PoolFromSuite(cache taskmodel.CacheConfig) ([]TaskParams, error) {
	return PoolFromSuiteObs(cache, nil)
}

// PoolFromSuiteObs is PoolFromSuite reporting memoization hits and
// misses to the observer (pool.memo_hits / pool.memo_misses).
func PoolFromSuiteObs(cache taskmodel.CacheConfig, obs *telemetry.Observer) ([]TaskParams, error) {
	poolCache.Lock()
	defer poolCache.Unlock()
	cached, ok := poolCache.pools[cache]
	if obs != nil {
		if ok {
			obs.Add(telemetry.CtrPoolMemoHits, 1)
		} else {
			obs.Add(telemetry.CtrPoolMemoMisses, 1)
		}
	}
	if !ok {
		ps, err := benchsuite.ExtractAll(cache)
		if err != nil {
			return nil, err
		}
		cached = make([]TaskParams, 0, len(ps))
		for _, p := range ps {
			r := p.Result
			cached = append(cached, TaskParams{
				Name: p.Name, PD: r.PD, MD: r.MD, MDr: r.MDr,
				UCB: r.UCB, ECB: r.ECB, PCB: r.PCB,
			})
		}
		if poolCache.pools == nil {
			poolCache.pools = make(map[taskmodel.CacheConfig][]TaskParams)
		}
		poolCache.pools[cache] = cached
	}
	pool := make([]TaskParams, len(cached))
	copy(pool, cached)
	for i := range pool {
		pool[i].UCB = cached[i].UCB.Clone()
		pool[i].ECB = cached[i].ECB.Clone()
		pool[i].PCB = cached[i].PCB.Clone()
	}
	return pool, nil
}

// PeriodMode selects how task periods are derived.
type PeriodMode int

const (
	// PeriodFromDemand is the paper's scheme: T = D =
	// (PD + MD·d_mem)/U with the benchmark demand kept verbatim.
	PeriodFromDemand PeriodMode = iota
	// PeriodLogUniform draws T = D log-uniformly from [PeriodMin,
	// PeriodMax] (Davis & Burns style) and scales the benchmark's
	// demand to C = U·T, keeping the cache footprints. It exists to
	// check that the evaluation's conclusions do not hinge on the
	// paper's period derivation.
	PeriodLogUniform
)

func (m PeriodMode) String() string {
	switch m {
	case PeriodFromDemand:
		return "demand-derived"
	case PeriodLogUniform:
		return "log-uniform"
	default:
		return fmt.Sprintf("PeriodMode(%d)", int(m))
	}
}

// Config parameterises task-set generation. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Platform describes the target hardware; its cache geometry must
	// match the pool the parameters were extracted at.
	Platform taskmodel.Platform
	// TasksPerCore is the number of tasks partitioned onto each core
	// (8 in the paper's default setup).
	TasksPerCore int
	// CoreUtilization is the per-core utilization target handed to
	// UUnifast (equal for each core, as in the paper).
	CoreUtilization float64
	// Periods selects the period derivation (PeriodFromDemand is the
	// paper's default).
	Periods PeriodMode
	// PeriodMin/PeriodMax bound the log-uniform draw (defaults
	// 10_000 and 10_000_000 cycles). Ignored by PeriodFromDemand.
	PeriodMin, PeriodMax taskmodel.Time
}

// DefaultConfig returns the paper's default setup: 4 cores, 8 tasks
// per core, a 256-set 32-byte-block cache, d_mem = 5 and slot size 2.
func DefaultConfig() Config {
	return Config{
		Platform: taskmodel.Platform{
			NumCores:  4,
			Cache:     taskmodel.CacheConfig{NumSets: 256, BlockSizeBytes: 32},
			DMem:      5,
			SlotSize:  2,
			RegBudget: 5,
			RegPeriod: 100,
		},
		TasksPerCore:    8,
		CoreUtilization: 0.5,
	}
}

// UUnifast draws n utilizations summing exactly to u, uniformly over
// the valid simplex (Bini & Buttazzo).
func UUnifast(n int, u float64, rng *rand.Rand) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1.0/float64(n-1-i))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// Generate builds one random task set. Each task copies the
// parameters of a uniformly chosen pool benchmark; its period and
// (implicit) deadline derive from its UUnifast utilization share via
// T = D = (PD + MD·d_mem)/U; priorities are deadline monotonic with
// deterministic tie-breaking.
func Generate(cfg Config, pool []TaskParams, rng *rand.Rand) (*taskmodel.TaskSet, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.TasksPerCore < 1 {
		return nil, fmt.Errorf("taskgen: TasksPerCore = %d, need >= 1", cfg.TasksPerCore)
	}
	if cfg.CoreUtilization <= 0 {
		return nil, fmt.Errorf("taskgen: CoreUtilization = %g, need > 0", cfg.CoreUtilization)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("taskgen: empty benchmark pool")
	}
	nsets := cfg.Platform.Cache.NumSets
	for _, p := range pool {
		if p.ECB.Capacity() != nsets {
			return nil, fmt.Errorf("taskgen: pool entry %q extracted at %d sets, platform has %d",
				p.Name, p.ECB.Capacity(), nsets)
		}
	}

	pmin, pmax := cfg.PeriodMin, cfg.PeriodMax
	if pmin <= 0 {
		pmin = 10_000
	}
	if pmax <= pmin {
		pmax = 10_000_000
	}

	var tasks []*taskmodel.Task
	for core := 0; core < cfg.Platform.NumCores; core++ {
		utils := UUnifast(cfg.TasksPerCore, cfg.CoreUtilization, rng)
		for _, u := range utils {
			p := pool[rng.Intn(len(pool))]
			demand := p.PD + taskmodel.Time(p.MD)*cfg.Platform.DMem
			var task *taskmodel.Task
			switch cfg.Periods {
			case PeriodLogUniform:
				// T log-uniform; scale the benchmark demand to C = U·T,
				// preserving its PD:MD split and cache footprints.
				period := taskmodel.Time(math.Exp(
					math.Log(float64(pmin)) + rng.Float64()*(math.Log(float64(pmax))-math.Log(float64(pmin)))))
				scale := u * float64(period) / float64(demand)
				pd := taskmodel.Time(math.Round(float64(p.PD) * scale))
				md := int64(math.Round(float64(p.MD) * scale))
				mdr := int64(math.Round(float64(p.MDr) * scale))
				if mdr > md {
					mdr = md
				}
				if pd < 1 {
					pd = 1
				}
				if scaled := pd + taskmodel.Time(md)*cfg.Platform.DMem; period < scaled {
					period = scaled
				}
				task = &taskmodel.Task{
					Name: p.Name, Core: core,
					PD: pd, MD: md, MDr: mdr,
					Period: period, Deadline: period,
					UCB: p.UCB, ECB: p.ECB, PCB: p.PCB,
				}
			default: // PeriodFromDemand, the paper's scheme
				period := taskmodel.Time(math.Ceil(float64(demand) / u))
				if period < demand {
					period = demand
				}
				task = &taskmodel.Task{
					Name: p.Name, Core: core,
					PD: p.PD, MD: p.MD, MDr: p.MDr,
					Period: period, Deadline: period,
					UCB: p.UCB, ECB: p.ECB, PCB: p.PCB,
				}
			}
			tasks = append(tasks, task)
		}
	}

	// Deadline-monotonic priorities, ties broken by generation order so
	// the assignment is deterministic and priorities are unique.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Deadline < tasks[order[b]].Deadline
	})
	for prio, idx := range order {
		tasks[idx].Priority = prio
	}

	ts := taskmodel.NewTaskSet(cfg.Platform, tasks)
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("taskgen: generated invalid task set: %w", err)
	}
	return ts, nil
}
