// Package experiments regenerates every table and figure of the
// paper's evaluation (Section V):
//
//	Table I  — benchmark parameters extracted by the static analysis
//	Fig. 2a-c — schedulable task sets vs. per-core utilization for the
//	            FP, RR and TDMA buses, with and without persistence,
//	            plus the perfect-bus reference
//	Fig. 3a-d — weighted schedulability vs. number of cores, memory
//	            reload time d_mem, cache size, and RR/TDMA slot size
//
// Each study returns a chart-ready Study that can be rendered as ASCII
// art or CSV. Absolute counts depend on the number of random task sets
// per data point (1000 in the paper; configurable here) — the
// reproduction target is the shape: persistence-aware curves dominate,
// FP > RR > TDMA, and the trends across each swept parameter.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
	"repro/internal/textplot"
)

// ErrInterrupted reports that a study was cut short by its context.
// The study returned alongside it is valid but built from the samples
// analyzed before the interruption — a partial result, not the full
// sweep.
var ErrInterrupted = errors.New("experiments: interrupted")

// Variant names one analysis configuration plotted as a series.
type Variant struct {
	Name        string
	Arbiter     core.Arbiter
	Persistence bool
}

// PaperVariants returns the six analyses the paper compares.
func PaperVariants() []Variant {
	return []Variant{
		{"FP", core.FP, false},
		{"FP-CP", core.FP, true},
		{"RR", core.RR, false},
		{"RR-CP", core.RR, true},
		{"TDMA", core.TDMA, false},
		{"TDMA-CP", core.TDMA, true},
	}
}

// Options tunes a study run.
type Options struct {
	// TaskSetsPerPoint is the number of random task sets per data point
	// (the paper uses 1000). Default 50.
	TaskSetsPerPoint int
	// Seed is the base RNG seed; every (point, index) pair derives a
	// unique deterministic seed from it.
	Seed int64
	// Workers bounds analysis parallelism. Default GOMAXPROCS.
	Workers int
	// Utilizations are the per-core utilization steps of the sweep.
	// Default 0.05..1.00 in steps of 0.05 (the paper's grid).
	Utilizations []float64
	// Base is the generation configuration studies start from.
	// Default taskgen.DefaultConfig().
	Base taskgen.Config
	// Observer receives telemetry from every analysis and from the
	// benchmark-pool memoization. nil disables instrumentation.
	Observer *telemetry.Observer
	// Context, when non-nil, interrupts the sweep: in-flight analyses
	// finish, the remaining ones are skipped, and the study is built
	// from the samples gathered so far and returned together with
	// ErrInterrupted.
	Context context.Context
	// Progress, when non-nil, is called after every analyzed task set.
	// Called from worker goroutines; must be safe for concurrent use.
	Progress func(ProgressUpdate)
	// Shard restricts the sweep to the jobs a deterministic hash of
	// the job key assigns to this shard (see internal/checkpoint): n
	// processes running the same study with shards 0/n..n-1/n analyze
	// disjoint job sets whose checkpoint files merge into the exact
	// single-process result. The zero value owns every job.
	Shard checkpoint.Shard
	// Checkpoint, when non-nil, makes the sweep resumable: jobs with a
	// recorded outcome are neither regenerated nor reanalyzed — their
	// recorded verdicts enter the fold directly — and every job this
	// run completes (or fails) is recorded as it finishes. Because a
	// job's seed depends only on (Seed, sample, utilization), a
	// resumed sweep is bit-identical to an uninterrupted one.
	Checkpoint *checkpoint.Log
	// OnJobFailure, when non-nil, observes every isolated job failure:
	// a job whose analysis panicked past the reference-analyzer retry
	// (or whose generation panicked), recorded as a failed data point
	// instead of aborting the sweep. stack is the original panic's
	// stack, nil for plain errors. Called from worker goroutines; must
	// be safe for concurrent use.
	OnJobFailure func(key string, err error, stack []byte)
	// Analyze, when non-nil, replaces the in-process engine for the
	// sweep's analysis phase. It must honor the core.AnalyzeBatchOpts
	// contract: results in request order, OnResult as requests
	// complete, OnFailure for per-request terminal failures, and
	// partial results plus the context error on cancellation.
	// cmd/experiments -cluster installs a fleet client here
	// (cluster.Client.AnalyzeBatch); because generation, the fold and
	// checkpointing are untouched, the study stays byte-identical to a
	// local run.
	Analyze func([]core.BatchRequest, core.BatchOptions) ([][]*core.Result, error)
}

// ProgressUpdate is one live progress snapshot of a sweep.
type ProgressUpdate struct {
	// Done and Total count analyzed vs planned task sets.
	Done, Total int
	// Verdicts counts per-variant analyses finished so far; Schedulable
	// counts how many of those verdicts were positive.
	Verdicts, Schedulable int64
}

// ctx returns the sweep context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.TaskSetsPerPoint <= 0 {
		o.TaskSetsPerPoint = 50
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Utilizations) == 0 {
		o.Utilizations = DefaultUtilizations()
	}
	if o.Base.TasksPerCore == 0 {
		o.Base = taskgen.DefaultConfig()
	}
	return o
}

// Study is the chart-ready outcome of one experiment.
type Study struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []textplot.Series
	// Intervals optionally carries 95% Wilson confidence bounds per
	// series (same indexing as Series[i].Values); emitted by WriteCSV
	// as <name>-lo95 / <name>-hi95 columns.
	Intervals map[string][2][]float64
	// TaskSetsPerPoint records the sample size the study ran with.
	TaskSetsPerPoint int
}

// WriteCSV emits the study data, including confidence-interval columns
// when present.
func (s *Study) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("x")
	for _, ser := range s.Series {
		b.WriteString("," + ser.Name)
		if _, ok := s.Intervals[ser.Name]; ok {
			b.WriteString("," + ser.Name + "-lo95," + ser.Name + "-hi95")
		}
	}
	b.WriteByte('\n')
	for i, x := range s.Xs {
		fmt.Fprintf(&b, "%g", x)
		for _, ser := range s.Series {
			fmt.Fprintf(&b, ",%g", ser.Values[i])
			if ci, ok := s.Intervals[ser.Name]; ok {
				fmt.Fprintf(&b, ",%g,%g", ci[0][i], ci[1][i])
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Chart wraps the study for rendering.
func (s *Study) Chart() *textplot.Chart {
	return &textplot.Chart{
		Title:  fmt.Sprintf("%s — %s", s.ID, s.Title),
		XLabel: s.XLabel,
		YLabel: s.YLabel,
		Xs:     s.Xs,
		Series: s.Series,
		YMin:   0,
		YMax:   1,
	}
}

// variantConfigs maps variants to the analysis configurations they
// run.
func variantConfigs(variants []Variant) []core.Config {
	cfgs := make([]core.Config, len(variants))
	for i, v := range variants {
		cfgs[i] = core.Config{Arbiter: v.Arbiter, Persistence: v.Persistence}
	}
	return cfgs
}

// verdicts analyses one task set under every variant. AnalyzeAll
// shares the precomputed interference tables across the variants.
func verdicts(ts *taskmodel.TaskSet, variants []Variant) (map[string]bool, error) {
	all, err := core.AnalyzeAll(ts, variantConfigs(variants))
	if err != nil {
		return nil, err
	}
	return verdictMap(all, variants), nil
}

// verdictMap folds per-config results into the name→schedulable map
// the series reductions consume.
func verdictMap(results []*core.Result, variants []Variant) map[string]bool {
	out := make(map[string]bool, len(variants))
	for i, v := range variants {
		out[v.Name] = results[i].Schedulable
	}
	return out
}

// pointJob is one (x-point, utilization, sample-index) work item of a
// sweep.
type pointJob struct {
	pointIdx int
	util     float64
	sample   int
}

// sample is the outcome of one analysed task set.
type sample struct {
	pointIdx int
	util     float64 // actual average per-core utilization
	verdict  map[string]bool
}

// jobState classifies a sweep job against the checkpoint and shard.
type jobState uint8

const (
	// jobPending jobs are generated and analyzed by this process.
	jobPending jobState = iota
	// jobRecorded jobs carry a checkpointed outcome; they enter the
	// fold without any recomputation.
	jobRecorded
	// jobForeign jobs belong to another shard; they are skipped
	// entirely and contribute no samples here.
	jobForeign
)

// ckptSink serializes checkpoint writes from sweep workers and keeps
// the first persistence error — a failing checkpoint must fail the
// run loudly, or the operator believes work is durable when it isn't.
type ckptSink struct {
	log *checkpoint.Log
	mu  sync.Mutex
	err error
}

func (c *ckptSink) add(rec checkpoint.Record) {
	if err := c.log.Add(rec); err != nil {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
	}
}

func (c *ckptSink) firstErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// sweep generates and analyses TaskSetsPerPoint task sets for every
// (point, utilization) combination. configAt returns the generation
// config and benchmark pool for a point index; utilsFor returns the
// utilizations swept at that point.
//
// With a canceled context the partial per-point samples are returned
// together with ErrInterrupted; callers fold them into a partial
// study. Jobs recorded in opts.Checkpoint are reused, jobs owned by
// other shards are skipped, and a panicking job degrades into a
// recorded per-job failure instead of killing the sweep.
func sweep(opts Options, numPoints int,
	configAt func(point int) (taskgen.Config, []taskgen.TaskParams, error),
	utilsFor func(point int) []float64,
	variants []Variant,
) ([][]sample, error) {
	opts = opts.withDefaults()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	cfgs := make([]taskgen.Config, numPoints)
	pools := make([][]taskgen.TaskParams, numPoints)
	var jobs []pointJob
	for p := 0; p < numPoints; p++ {
		cfg, pool, err := configAt(p)
		if err != nil {
			return nil, err
		}
		cfgs[p], pools[p] = cfg, pool
		for _, u := range utilsFor(p) {
			for s := 0; s < opts.TaskSetsPerPoint; s++ {
				jobs = append(jobs, pointJob{pointIdx: p, util: u, sample: s})
			}
		}
	}

	// Classify every job. The canonical job order (point, utilization,
	// sample) is what makes resumption and merging reproducible: the
	// fold below walks this order regardless of which process computed
	// which job, so the folded samples — and every byte of the study
	// derived from them — match an uninterrupted single-process run.
	keys := make([]string, len(jobs))
	states := make([]jobState, len(jobs))
	records := make([]checkpoint.Record, len(jobs))
	for ji, j := range jobs {
		keys[ji] = jobKey(j.pointIdx, j.util, j.sample)
		if rec, ok := opts.Checkpoint.Lookup(keys[ji]); ok {
			states[ji], records[ji] = jobRecorded, rec
		} else if !opts.Shard.Owns(keys[ji]) {
			states[ji] = jobForeign
		}
	}
	// fail records one isolated job failure; the sweep.job_failures
	// counter is bumped by the caller (core's batch already counts
	// analysis failures; generation panics are counted here).
	sink := &ckptSink{log: opts.Checkpoint}
	fail := func(ji int, err error, stack []byte) {
		sink.add(checkpoint.Record{Key: keys[ji], Failed: true, Err: err.Error()})
		if opts.OnJobFailure != nil {
			opts.OnJobFailure(keys[ji], err, stack)
		}
	}

	// Phase 1: generate the pending jobs' task sets. Generation is
	// cheap next to analysis but still worth parallelising. A panic in
	// the generator is isolated to its job (generation is
	// deterministic, so there is no point retrying); a plain error
	// still aborts the sweep — it signals a misconfiguration that
	// would fail every job.
	sets := make([]*taskmodel.TaskSet, len(jobs))
	genErrs := make([]error, len(jobs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range work {
				j := jobs[ji]
				cfg := cfgs[j.pointIdx]
				cfg.CoreUtilization = j.util
				// The seed deliberately excludes the point index: every
				// swept parameter value sees the same random task sets
				// (paired samples), so series differ only through the
				// analysis, not the sample.
				seed := seedFor(opts.Seed, j.sample, j.util)
				func() {
					defer func() {
						if r := recover(); r != nil {
							opts.Observer.Add(telemetry.CtrJobPanics, 1)
							opts.Observer.Add(telemetry.CtrJobFailures, 1)
							sets[ji] = nil
							fail(ji, fmt.Errorf("generation panic: %v", r), debug.Stack())
						}
					}()
					sets[ji], genErrs[ji] = taskgen.Generate(cfg, pools[j.pointIdx], rand.New(rand.NewSource(seed)))
				}()
			}
		}()
	}
	for ji := range jobs {
		if states[ji] == jobPending {
			work <- ji
		}
	}
	close(work)
	wg.Wait()
	for _, err := range genErrs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: analyse every pending set under every variant through
	// the shared worker pool. Within one request AnalyzeAll reuses the
	// precomputed interference tables across the variants. Panics are
	// isolated per job: the batch retries a panicking job once on the
	// naive reference analyzer and reports terminal failures through
	// OnFailure instead of aborting.
	varCfgs := variantConfigs(variants)
	var reqs []core.BatchRequest
	var reqJob []int // request index -> job index
	jobReq := make([]int, len(jobs))
	for ji := range jobs {
		jobReq[ji] = -1
		if states[ji] != jobPending || sets[ji] == nil {
			continue
		}
		jobReq[ji] = len(reqs)
		reqJob = append(reqJob, ji)
		reqs = append(reqs, core.BatchRequest{
			TS:    sets[ji],
			Cfgs:  varCfgs,
			Label: fmt.Sprintf("p%d u=%.2f #%d", jobs[ji].pointIdx, jobs[ji].util, jobs[ji].sample),
		})
	}
	var done, verdicts, sched atomic.Int64
	total := len(reqs)
	onResult := func(ri int, res []*core.Result, _ string) {
		ji := reqJob[ri]
		if res != nil {
			sink.add(checkpoint.Record{
				Key:      keys[ji],
				Util:     sets[ji].TotalUtilization() / float64(cfgs[jobs[ji].pointIdx].Platform.NumCores),
				Verdicts: verdictMap(res, variants),
			})
		}
		if opts.Progress == nil {
			return
		}
		d := done.Add(1)
		var v, s int64
		for _, r := range res {
			v++
			if r.Schedulable {
				s++
			}
		}
		opts.Progress(ProgressUpdate{
			Done: int(d), Total: total,
			Verdicts: verdicts.Add(v), Schedulable: sched.Add(s),
		})
	}
	analyze := core.AnalyzeBatchOpts
	if opts.Analyze != nil {
		analyze = opts.Analyze
	}
	all, err := analyze(reqs, core.BatchOptions{
		Workers:  opts.Workers,
		Observer: opts.Observer,
		Context:  ctx,
		OnResult: onResult,
		Isolate:  true,
		OnFailure: func(ri int, _ string, err error, stack []byte) {
			fail(reqJob[ri], err, stack)
		},
	})
	interrupted := false
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		interrupted = true
	}
	// Persist whatever completed — exactly what an interrupt needs to
	// salvage — and surface any checkpointing failure.
	if ferr := opts.Checkpoint.Flush(); ferr != nil {
		return nil, ferr
	}
	if cerr := sink.firstErr(); cerr != nil {
		return nil, cerr
	}

	perPoint := make([][]sample, numPoints)
	for ji, j := range jobs {
		switch states[ji] {
		case jobForeign:
			continue
		case jobRecorded:
			if records[ji].Failed {
				continue
			}
			perPoint[j.pointIdx] = append(perPoint[j.pointIdx], sample{
				pointIdx: j.pointIdx,
				util:     records[ji].Util,
				verdict:  records[ji].Verdicts,
			})
		default:
			ri := jobReq[ji]
			if ri < 0 || all[ri] == nil {
				// Failed, or skipped after the interrupt.
				continue
			}
			perPoint[j.pointIdx] = append(perPoint[j.pointIdx], sample{
				pointIdx: j.pointIdx,
				util:     sets[ji].TotalUtilization() / float64(cfgs[j.pointIdx].Platform.NumCores),
				verdict:  verdictMap(all[ri], variants),
			})
		}
	}
	if interrupted {
		return perPoint, ErrInterrupted
	}
	return perPoint, nil
}

// progressTracker folds serial per-sample verdicts into ProgressUpdate
// callbacks for the extension studies, which do not go through sweep.
type progressTracker struct {
	opts            Options
	total, done     int
	verdicts, sched int64
}

func (p *progressTracker) add(verdicts, sched int64) {
	if p.opts.Progress == nil {
		return
	}
	p.done++
	p.verdicts += verdicts
	p.sched += sched
	p.opts.Progress(ProgressUpdate{Done: p.done, Total: p.total, Verdicts: p.verdicts, Schedulable: p.sched})
}

// weightedSeries reduces sweep samples to one weighted-schedulability
// value per point and variant.
func weightedSeries(perPoint [][]sample, variants []Variant) []textplot.Series {
	series := make([]textplot.Series, len(variants))
	for vi, v := range variants {
		vals := make([]float64, len(perPoint))
		for p, samples := range perPoint {
			obs := make([]stats.Observation, 0, len(samples))
			for _, s := range samples {
				obs = append(obs, stats.Observation{Utilization: s.util, Schedulable: s.verdict[v.Name]})
			}
			vals[p] = stats.WeightedSchedulability(obs)
		}
		series[vi] = textplot.Series{Name: v.Name, Values: vals}
	}
	return series
}
