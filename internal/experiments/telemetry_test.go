package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func TestFig2InterruptedReturnsPartialStudy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := smallOpts()
	opts.Context = ctx
	st, err := Fig2(core.FP, opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if st == nil {
		t.Fatal("interrupted study must still be returned")
	}
	// Pre-canceled: no samples, but the study skeleton stays chart-ready.
	if len(st.Xs) != 3 || len(st.Series) != 3 {
		t.Errorf("partial study shape wrong: xs=%d series=%d", len(st.Xs), len(st.Series))
	}
}

func TestExtensionsInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := smallOpts()
	opts.Context = ctx
	for name, run := range map[string]func(Options) (*Study, error){
		"ExtCRPD": ExtCRPD, "ExtPartition": ExtPartition, "ExtOPA": ExtOPA, "ExtGen": ExtGen,
	} {
		st, err := run(opts)
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("%s: err = %v, want ErrInterrupted", name, err)
		}
		if st == nil {
			t.Errorf("%s: interrupted study must still be returned", name)
		}
	}
}

func TestFig2ProgressAndObserver(t *testing.T) {
	obs := telemetry.New()
	opts := smallOpts()
	opts.Observer = obs
	var mu sync.Mutex
	var last ProgressUpdate
	calls := 0
	opts.Progress = func(u ProgressUpdate) {
		mu.Lock()
		last = u
		calls++
		mu.Unlock()
	}
	if _, err := Fig2(core.FP, opts); err != nil {
		t.Fatal(err)
	}
	total := len(opts.Utilizations) * opts.TaskSetsPerPoint
	if calls != total {
		t.Errorf("progress calls = %d, want %d", calls, total)
	}
	if last.Done != total || last.Total != total {
		t.Errorf("final progress = %+v, want done=total=%d", last, total)
	}
	// Fig2 runs 3 variants per task set.
	if want := int64(total * 3); last.Verdicts != want {
		t.Errorf("verdicts = %d, want %d", last.Verdicts, want)
	}
	if runs := obs.Metrics.Get(telemetry.CtrRuns); runs != int64(total*3) {
		t.Errorf("analyzer.runs = %d, want %d", runs, total*3)
	}
	// The pool memo was consulted once by this study.
	memo := obs.Metrics.Get(telemetry.CtrPoolMemoHits) + obs.Metrics.Get(telemetry.CtrPoolMemoMisses)
	if memo != 1 {
		t.Errorf("pool memo lookups = %d, want 1", memo)
	}
}

func TestSweepMidwayInterrupt(t *testing.T) {
	// Cancel after the first progress callback: the sweep must stop
	// early yet return verdicts for everything already analyzed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := smallOpts()
	opts.TaskSetsPerPoint = 20
	opts.Workers = 2
	opts.Context = ctx
	var mu sync.Mutex
	done := 0
	opts.Progress = func(u ProgressUpdate) {
		mu.Lock()
		done = u.Done
		mu.Unlock()
		cancel()
	}
	st, err := Fig2(core.FP, opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if st == nil {
		t.Fatal("no partial study")
	}
	mu.Lock()
	defer mu.Unlock()
	if done == 0 {
		t.Error("no task set finished before the interrupt")
	}
	total := len(opts.Utilizations) * opts.TaskSetsPerPoint
	if done == total {
		t.Skip("machine fast enough to finish before cancellation propagated")
	}
}
