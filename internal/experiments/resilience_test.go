package experiments

import (
	"context"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/telemetry"
)

func studyCSV(t *testing.T, st *Study) string {
	t.Helper()
	var b strings.Builder
	if err := st.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestResumeEquivalence is the acceptance check of checkpoint/resume:
// a sweep interrupted after roughly half its jobs and resumed from the
// checkpoint produces byte-identical CSV output to the same sweep run
// uninterrupted.
func TestResumeEquivalence(t *testing.T) {
	baseline, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := studyCSV(t, baseline)

	path := filepath.Join(t.TempDir(), "fig2a.json")
	hdr := checkpoint.Header{Study: "fig2a", Seed: smallOpts().Seed, TaskSets: smallOpts().TaskSetsPerPoint}
	log, err := checkpoint.Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after about half of the 15 jobs: one worker, cancel
	// once 7 results are in, so at most one in-flight job drains.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	opts := smallOpts()
	opts.Workers = 1
	opts.Context = ctx
	opts.Checkpoint = log
	opts.Progress = func(u ProgressUpdate) {
		if done.Add(1) >= 7 {
			cancel()
		}
	}
	if _, err := Fig2(core.FP, opts); err != ErrInterrupted {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint must hold real progress, but not the whole sweep.
	persisted, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := persisted.Len(); n < 7 || n >= 15 {
		t.Fatalf("checkpoint has %d/15 records after the interrupt, want a strict partial >= 7", n)
	}

	// Resume: recorded jobs are skipped, the rest computed, and the
	// fold must reproduce the uninterrupted bytes.
	resumed, err := checkpoint.Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	obs := telemetry.New()
	opts = smallOpts()
	opts.Checkpoint = resumed
	opts.Observer = obs
	st, err := Fig2(core.FP, opts)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := studyCSV(t, st); got != want {
		t.Errorf("resumed CSV differs from uninterrupted run:\n--- resumed ---\n%s--- uninterrupted ---\n%s", got, want)
	}
	// The resume actually reused records: strictly fewer analyzer runs
	// than the full sweep's 15 jobs x 3 variants.
	if runs := obs.Metrics.Get(telemetry.CtrRuns); runs >= 15*3 {
		t.Errorf("resume reanalyzed everything (%d analyzer runs)", runs)
	}
	if resumed.Len() != 15 {
		t.Errorf("checkpoint has %d records after the resume, want all 15", resumed.Len())
	}
}

// TestShardMergeEquivalence is the acceptance check of sharding: three
// independent shard runs cover disjoint job subsets whose merged
// checkpoints reproduce the single-process CSV byte for byte.
func TestShardMergeEquivalence(t *testing.T) {
	baseline, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := studyCSV(t, baseline)

	const n = 3
	dir := t.TempDir()
	paths := make([]string, n)
	perShard := make([]int, n)
	for i := 0; i < n; i++ {
		sh := checkpoint.Shard{Index: i, Count: n}
		paths[i] = filepath.Join(dir, "fig2a.shard"+sh.String()[:1]+".json")
		log, err := checkpoint.Create(paths[i], checkpoint.Header{
			Study: "fig2a", Seed: smallOpts().Seed, TaskSets: smallOpts().TaskSetsPerPoint, Shard: sh,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := smallOpts()
		opts.Shard = sh
		opts.Checkpoint = log
		if _, err := Fig2(core.FP, opts); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		perShard[i] = log.Len()
	}
	total := 0
	for i, c := range perShard {
		total += c
		if c == 15 {
			t.Errorf("shard %d analyzed every job — sharding is not partitioning", i)
		}
	}
	if total != 15 {
		t.Fatalf("shards recorded %v jobs (total %d), want a disjoint cover of 15", perShard, total)
	}

	logs := make([]*checkpoint.Log, n)
	for i, p := range paths {
		if logs[i], err = checkpoint.Open(p); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := checkpoint.Merge(logs)
	if err != nil {
		t.Fatal(err)
	}
	obs := telemetry.New()
	opts := smallOpts()
	opts.Checkpoint = merged
	opts.Observer = obs
	st, err := Fig2(core.FP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := studyCSV(t, st); got != want {
		t.Errorf("merged CSV differs from single-process run:\n--- merged ---\n%s--- single ---\n%s", got, want)
	}
	if runs := obs.Metrics.Get(telemetry.CtrRuns); runs != 0 {
		t.Errorf("merge recomputed %d analyzer runs, want 0 (every job recorded)", runs)
	}
}

// TestShardedRunsAreDisjointAndDeterministic: the same shard re-run
// yields identical partial results, and a 1-shard run equals the
// unsharded sweep.
func TestShardedRunsAreDisjointAndDeterministic(t *testing.T) {
	opts := smallOpts()
	opts.Shard = checkpoint.Shard{Index: 1, Count: 3}
	a, err := Fig2(core.FP, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(core.FP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if studyCSV(t, a) != studyCSV(t, b) {
		t.Error("same shard produced different results across runs")
	}

	baseline, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	solo := smallOpts()
	solo.Shard = checkpoint.Shard{Index: 0, Count: 1}
	c, err := Fig2(core.FP, solo)
	if err != nil {
		t.Fatal(err)
	}
	if studyCSV(t, c) != studyCSV(t, baseline) {
		t.Error("shard 0/1 differs from the unsharded sweep")
	}
}

// TestSweepPanicIsolation is the acceptance check of panic isolation:
// an injected panic that survives the reference retry leaves the
// sweep completing with that single job marked failed,
// sweep.job_panics == 1, and every other data point unchanged.
func TestSweepPanicIsolation(t *testing.T) {
	baseline, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatal(err)
	}

	// smallOpts sweeps utilizations {0.2, 0.5, 0.8}; poison one sample
	// of the middle point on both the engine attempt and the retry.
	const victim = "p1 u=0.50 #2"
	core.SetBatchFaultHook(func(label string, attempt int) {
		if label == victim {
			panic("injected: " + label)
		}
	})
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	var failedKeys []string
	path := filepath.Join(t.TempDir(), "fig2a.json")
	log, err := checkpoint.Create(path, checkpoint.Header{Study: "fig2a", Seed: smallOpts().Seed, TaskSets: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Workers = 1 // serialize so failedKeys needs no lock
	opts.Observer = obs
	opts.Checkpoint = log
	opts.OnJobFailure = func(key string, err error, stack []byte) {
		failedKeys = append(failedKeys, key)
		if len(stack) == 0 {
			t.Error("job failure carries no stack")
		}
	}
	st, err := Fig2(core.FP, opts)
	if err != nil {
		t.Fatalf("sweep with one poisoned job: %v", err)
	}

	if got := obs.Metrics.Get(telemetry.CtrJobPanics); got != 1 {
		t.Errorf("sweep.job_panics = %d, want 1", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrJobFailures); got != 1 {
		t.Errorf("sweep.job_failures = %d, want 1", got)
	}
	if len(failedKeys) != 1 || failedKeys[0] != jobKey(1, 0.5, 2) {
		t.Errorf("failed keys = %v, want exactly [%s]", failedKeys, jobKey(1, 0.5, 2))
	}
	// The failure is durable: recorded in the checkpoint as failed.
	rec, ok := log.Lookup(jobKey(1, 0.5, 2))
	if !ok || !rec.Failed || !strings.Contains(rec.Err, "injected") {
		t.Errorf("checkpoint record for the failed job = %+v, ok=%v", rec, ok)
	}

	// All other points are bit-identical to the healthy run; the
	// poisoned point lost exactly one of its five samples.
	for si, ser := range baseline.Series {
		for p, v := range ser.Values {
			got := st.Series[si].Values[p]
			if p != 1 {
				if got != v {
					t.Errorf("%s point %d: %g != baseline %g (unaffected point changed)", ser.Name, p, got, v)
				}
				continue
			}
			// 4 surviving samples: the ratio is a multiple of 1/4.
			if got != float64(int(got*4+0.5))/4 {
				t.Errorf("%s poisoned point: ratio %g is not over 4 samples", ser.Name, got)
			}
		}
	}
}

// TestSweepPanicReferenceRescue: when only the optimized engine
// panics, the naive-reference retry rescues the job and the study is
// indistinguishable from a healthy run.
func TestSweepPanicReferenceRescue(t *testing.T) {
	baseline, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	core.SetBatchFaultHook(func(label string, attempt int) {
		if label == "p1 u=0.50 #2" && attempt == 0 {
			panic("engine-only fault")
		}
	})
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	opts := smallOpts()
	opts.Observer = obs
	st, err := Fig2(core.FP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := studyCSV(t, st); got != studyCSV(t, baseline) {
		t.Error("reference-rescued run differs from the healthy run")
	}
	if got := obs.Metrics.Get(telemetry.CtrJobPanics); got != 1 {
		t.Errorf("sweep.job_panics = %d, want 1", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrJobFailures); got != 0 {
		t.Errorf("sweep.job_failures = %d, want 0", got)
	}
}
