package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/opa"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/taskgen"
	"repro/internal/textplot"
)

// ExtCRPD is the CRPD-approach ablation called out in DESIGN.md §5:
// the RR-CP analysis re-run with each preemption-delay bound, plotted
// as schedulable ratio over the utilization sweep. The paper fixes
// ECB-union; this study shows how much of the result depends on that
// choice.
func ExtCRPD(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	approaches := []crpd.Approach{crpd.ECBUnion, crpd.UCBOnly, crpd.ECBOnly, crpd.UCBUnion, crpd.Combined}
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}

	series := make([]textplot.Series, len(approaches))
	anaCfgs := make([]core.Config, len(approaches))
	for i, ap := range approaches {
		series[i] = textplot.Series{Name: ap.String(), Values: make([]float64, len(opts.Utilizations))}
		anaCfgs[i] = core.Config{Arbiter: core.RR, Persistence: true, CRPD: ap}
	}

	ctx := opts.ctx()
	prog := &progressTracker{opts: opts, total: len(opts.Utilizations) * opts.TaskSetsPerPoint}
	interrupted := false
	for ui, util := range opts.Utilizations {
		obs := make([][]stats.Observation, len(approaches))
		for sample := 0; sample < opts.TaskSetsPerPoint; sample++ {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			seed := seedFor(opts.Seed, sample, util)
			cfg := opts.Base
			cfg.CoreUtilization = util
			ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			u := ts.TotalUtilization() / float64(cfg.Platform.NumCores)
			all, err := core.AnalyzeAllOpts(ts, anaCfgs, core.Options{Observer: opts.Observer})
			if err != nil {
				return nil, err
			}
			var sched int64
			for ai, res := range all {
				obs[ai] = append(obs[ai], stats.Observation{Utilization: u, Schedulable: res.Schedulable})
				if res.Schedulable {
					sched++
				}
			}
			prog.add(int64(len(all)), sched)
		}
		for ai := range approaches {
			series[ai].Values[ui] = stats.Ratio(obs[ai])
		}
		if interrupted {
			break
		}
	}

	var retErr error
	if interrupted {
		retErr = ErrInterrupted
	}
	return &Study{
		ID:               "ExtCRPD",
		Title:            "RR-CP schedulability per CRPD approach",
		XLabel:           "per-core utilization",
		YLabel:           "schedulable ratio",
		Xs:               opts.Utilizations,
		Series:           series,
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
	}, retErr
}

// ExtPartition compares task-to-core placement heuristics under the
// RR-CP analysis: the paper's fixed per-core split versus
// utilization-driven first-fit/worst-fit and the cache-aware placement
// that avoids PCB/ECB collisions (which directly shrink CPRO and
// CRPD).
func ExtPartition(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	heuristics := []partition.Heuristic{partition.FirstFit, partition.WorstFit, partition.CacheAware}
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}

	names := append([]string{"paper-split"}, make([]string, len(heuristics))...)
	for i, h := range heuristics {
		names[i+1] = h.String()
	}
	series := make([]textplot.Series, len(names))
	for i, n := range names {
		series[i] = textplot.Series{Name: n, Values: make([]float64, len(opts.Utilizations))}
	}
	anaCfg := core.Config{Arbiter: core.RR, Persistence: true}

	ctx := opts.ctx()
	prog := &progressTracker{opts: opts, total: len(opts.Utilizations) * opts.TaskSetsPerPoint}
	interrupted := false
	for ui, util := range opts.Utilizations {
		obs := make([][]stats.Observation, len(names))
		for sample := 0; sample < opts.TaskSetsPerPoint; sample++ {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			seed := seedFor(opts.Seed, sample, util)
			cfg := opts.Base
			cfg.CoreUtilization = util
			ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			u := ts.TotalUtilization() / float64(cfg.Platform.NumCores)

			var verdicts, sched int64
			// 0: the generator's own per-core split.
			res, err := core.AnalyzeOpts(ts, anaCfg, core.Options{Observer: opts.Observer})
			if err != nil {
				return nil, err
			}
			obs[0] = append(obs[0], stats.Observation{Utilization: u, Schedulable: res.Schedulable})
			verdicts++
			if res.Schedulable {
				sched++
			}

			for hi, h := range heuristics {
				verdict := false
				if err := partition.Assign(ts, h); err == nil {
					res, err := core.AnalyzeOpts(ts, anaCfg, core.Options{Observer: opts.Observer})
					if err != nil {
						return nil, err
					}
					verdict = res.Schedulable
				}
				obs[hi+1] = append(obs[hi+1], stats.Observation{Utilization: u, Schedulable: verdict})
				verdicts++
				if verdict {
					sched++
				}
			}
			prog.add(verdicts, sched)
		}
		for i := range names {
			series[i].Values[ui] = stats.Ratio(obs[i])
		}
		if interrupted {
			break
		}
	}

	var retErr error
	if interrupted {
		retErr = ErrInterrupted
	}
	return &Study{
		ID:               "ExtPartition",
		Title:            "RR-CP schedulability per partitioning heuristic",
		XLabel:           "per-core utilization",
		YLabel:           "schedulable ratio",
		Xs:               opts.Utilizations,
		Series:           series,
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
	}, retErr
}

// ExtOPA compares priority-assignment policies under the RR-CP
// analysis: the paper's deadline-monotonic assignment versus Audsley's
// OPA search (internal/opa). OPA can only help — it falls back to
// any assignment that works, including DM itself.
func ExtOPA(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}
	anaCfg := core.Config{Arbiter: core.RR, Persistence: true}
	series := []textplot.Series{
		{Name: "DM", Values: make([]float64, len(opts.Utilizations))},
		{Name: "OPA", Values: make([]float64, len(opts.Utilizations))},
	}
	ctx := opts.ctx()
	prog := &progressTracker{opts: opts, total: len(opts.Utilizations) * opts.TaskSetsPerPoint}
	interrupted := false
	for ui, util := range opts.Utilizations {
		var dmObs, opaObs []stats.Observation
		for sample := 0; sample < opts.TaskSetsPerPoint; sample++ {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			seed := seedFor(opts.Seed, sample, util)
			cfg := opts.Base
			cfg.CoreUtilization = util
			ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			u := ts.TotalUtilization() / float64(cfg.Platform.NumCores)
			res, err := core.AnalyzeOpts(ts, anaCfg, core.Options{Observer: opts.Observer})
			if err != nil {
				return nil, err
			}
			dmObs = append(dmObs, stats.Observation{Utilization: u, Schedulable: res.Schedulable})
			opaVerdict := res.Schedulable // DM success is an OPA witness
			if !opaVerdict {
				r, err := opa.Assign(ts, anaCfg)
				if err != nil {
					return nil, err
				}
				opaVerdict = r.Schedulable
			}
			opaObs = append(opaObs, stats.Observation{Utilization: u, Schedulable: opaVerdict})
			var sched int64
			if res.Schedulable {
				sched++
			}
			if opaVerdict {
				sched++
			}
			prog.add(2, sched)
		}
		series[0].Values[ui] = stats.Ratio(dmObs)
		series[1].Values[ui] = stats.Ratio(opaObs)
		if interrupted {
			break
		}
	}
	var retErr error
	if interrupted {
		retErr = ErrInterrupted
	}
	return &Study{
		ID:               "ExtOPA",
		Title:            "RR-CP schedulability: deadline monotonic vs Audsley OPA",
		XLabel:           "per-core utilization",
		YLabel:           "schedulable ratio",
		Xs:               opts.Utilizations,
		Series:           series,
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
	}, retErr
}

// ExtGen checks the evaluation's robustness to the task-generation
// methodology: the RR and RR-CP schedulability curves under the
// paper's demand-derived periods versus log-uniform periods with
// scaled demands (Davis & Burns style). The persistence-aware
// dominance must be visible under both.
func ExtGen(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}
	modes := []struct {
		label string
		mode  taskgen.PeriodMode
	}{
		{"paper", taskgen.PeriodFromDemand},
		{"loguni", taskgen.PeriodLogUniform},
	}
	type variant struct {
		name string
		cfg  core.Config
	}
	anas := []variant{
		{"RR", core.Config{Arbiter: core.RR}},
		{"RR-CP", core.Config{Arbiter: core.RR, Persistence: true}},
	}
	anaCfgs := make([]core.Config, len(anas))
	for ai, a := range anas {
		anaCfgs[ai] = a.cfg
	}
	var series []textplot.Series
	for range modes {
		for range anas {
			series = append(series, textplot.Series{Values: make([]float64, len(opts.Utilizations))})
		}
	}
	si := 0
	for mi := range modes {
		for ai := range anas {
			series[si].Name = modes[mi].label + "/" + anas[ai].name
			si++
		}
	}

	ctx := opts.ctx()
	prog := &progressTracker{opts: opts, total: len(opts.Utilizations) * opts.TaskSetsPerPoint}
	interrupted := false
	for ui, util := range opts.Utilizations {
		obs := make([][]stats.Observation, len(series))
		for sample := 0; sample < opts.TaskSetsPerPoint; sample++ {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			seed := seedFor(opts.Seed, sample, util)
			var verdicts, sched int64
			for mi, m := range modes {
				cfg := opts.Base
				cfg.CoreUtilization = util
				cfg.Periods = m.mode
				ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
				if err != nil {
					return nil, err
				}
				u := ts.TotalUtilization() / float64(cfg.Platform.NumCores)
				all, err := core.AnalyzeAllOpts(ts, anaCfgs, core.Options{Observer: opts.Observer})
				if err != nil {
					return nil, err
				}
				for ai, res := range all {
					idx := mi*len(anas) + ai
					obs[idx] = append(obs[idx], stats.Observation{Utilization: u, Schedulable: res.Schedulable})
					verdicts++
					if res.Schedulable {
						sched++
					}
				}
			}
			prog.add(verdicts, sched)
		}
		for i := range series {
			series[i].Values[ui] = stats.Ratio(obs[i])
		}
		if interrupted {
			break
		}
	}
	var retErr error
	if interrupted {
		retErr = ErrInterrupted
	}
	return &Study{
		ID:               "ExtGen",
		Title:            "generation-methodology robustness (RR vs RR-CP)",
		XLabel:           "per-core utilization",
		YLabel:           "schedulable ratio",
		Xs:               opts.Utilizations,
		Series:           series,
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
	}, retErr
}
