package experiments

import (
	"fmt"
	"math"
)

// Seed derivation for sweep jobs.
//
// Every generated task set gets its own deterministic RNG seed derived
// from (base seed, sample index, utilization). The former linear
// formula base + sample·7919 + util·1e6 collided whenever the
// utilization step times 1e6 was a multiple of 7919 away from another
// (sample, util) pair — on a fine utilization grid, neighbouring
// sweep points silently analysed identical task sets, deflating the
// sample size. Mixing through a splitmix64-style finalizer makes the
// map from (base, sample, util) effectively injective.
//
// The seed deliberately excludes the swept point index: every swept
// parameter value sees the same random task sets (paired samples), so
// series differ only through the analysis, not the sample.

// mix64 is the splitmix64 output finalizer: a bijection on 64-bit
// words with strong avalanche, so structured inputs (small counters,
// float bit patterns) spread over the full seed space.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedFor derives the RNG seed for one (sample, utilization) job from
// the study's base seed.
func seedFor(base int64, sample int, util float64) int64 {
	h := mix64(uint64(base))
	h = mix64(h + uint64(sample))
	h = mix64(h + math.Float64bits(util))
	return int64(h)
}

// jobKey is the stable identity of one sweep job within its study —
// the unit of sharding and checkpointing. The utilization enters as
// its exact float bits, so keys never depend on decimal formatting,
// and the key (unlike the seed) includes the point index: distinct
// sweep points analyze the same task set under different platforms
// and must be recorded separately.
func jobKey(point int, util float64, sample int) string {
	return fmt.Sprintf("p%02d|u%016x|s%05d", point, math.Float64bits(util), sample)
}

// DefaultUtilizations returns the paper's utilization grid, 0.05 to
// 1.00 in steps of 0.05. Each step is computed from integers so the
// values are exact (a float accumulator drifts: 0.05·3 accumulated is
// 0.15000000000000002, which then leaks into seeds, chart axes and
// CSV output).
func DefaultUtilizations() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = float64((i+1)*5) / 100
	}
	return out
}
