package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/benchsuite"
	"repro/internal/taskmodel"
)

// Table1Row is one benchmark's extracted parameters, with the paper's
// published values alongside when that benchmark appears in the
// paper's Table I.
type Table1Row struct {
	Name          string
	PD            taskmodel.Time
	MD, MDr       int64
	ECB, PCB, UCB int
	Published     *benchsuite.Table1Row
}

// Table1 regenerates Table I by running the static WCET/cache analysis
// over the whole benchmark suite at the given geometry (the paper's
// default is 256 sets × 32 B).
func Table1(cache taskmodel.CacheConfig) ([]Table1Row, error) {
	params, err := benchsuite.ExtractAll(cache)
	if err != nil {
		return nil, err
	}
	published := map[string]benchsuite.Table1Row{}
	for _, r := range benchsuite.PaperTable1() {
		published[r.Name] = r
	}
	rows := make([]Table1Row, 0, len(params))
	for _, p := range params {
		r := p.Result
		row := Table1Row{
			Name: p.Name,
			PD:   r.PD, MD: r.MD, MDr: r.MDr,
			ECB: r.ECB.Count(), PCB: r.PCB.Count(), UCB: r.UCB.Count(),
		}
		if pub, ok := published[p.Name]; ok {
			pubCopy := pub
			row.Published = &pubCopy
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 prints the regenerated table; benchmarks present in the
// paper's Table I additionally show the published values for
// comparison (units differ: the paper's PD/MD/MD^r are Heptane clock
// cycles, ours are the synthetic suite's cycles and access counts).
func RenderTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tPD\tMD\tMDr\t|ECB|\t|PCB|\t|UCB|\tpaper (PD/MD/MDr ECB/PCB/UCB)")
	for _, r := range rows {
		pub := "-"
		if r.Published != nil {
			p := r.Published
			pub = fmt.Sprintf("%d/%d/%d %d/%d/%d", p.PD, p.MD, p.MDr, p.ECB, p.PCB, p.UCB)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Name, r.PD, r.MD, r.MDr, r.ECB, r.PCB, r.UCB, pub)
	}
	return tw.Flush()
}
