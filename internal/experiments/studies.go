package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/taskgen"
	"repro/internal/textplot"
)

// Fig2 reproduces Fig. 2a (FP), 2b (RR) or 2c (TDMA): the ratio of
// schedulable task sets as the per-core utilization grows, comparing
// the persistence-oblivious analysis, its persistence-aware
// counterpart, and the perfect-bus upper bound.
func Fig2(arb core.Arbiter, opts Options) (*Study, error) {
	opts = opts.withDefaults()
	variants := []Variant{
		{arb.String(), arb, false},
		{arb.String() + "-CP", arb, true},
		{"Perfect", core.Perfect, true},
	}
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}
	perPoint, sweepErr := sweep(opts, len(opts.Utilizations),
		func(int) (taskgen.Config, []taskgen.TaskParams, error) { return opts.Base, pool, nil },
		func(p int) []float64 { return opts.Utilizations[p : p+1] },
		variants,
	)
	if sweepErr != nil && !errors.Is(sweepErr, ErrInterrupted) {
		return nil, sweepErr
	}

	series := make([]textplot.Series, len(variants))
	intervals := map[string][2][]float64{}
	for vi, v := range variants {
		vals := make([]float64, len(perPoint))
		lo := make([]float64, len(perPoint))
		hi := make([]float64, len(perPoint))
		for p, samples := range perPoint {
			sched := 0
			for _, s := range samples {
				if s.verdict[v.Name] {
					sched++
				}
			}
			if n := len(samples); n > 0 {
				vals[p] = float64(sched) / float64(n)
				lo[p], hi[p] = stats.WilsonInterval(sched, n, 1.96)
			}
		}
		series[vi] = textplot.Series{Name: v.Name, Values: vals}
		intervals[v.Name] = [2][]float64{lo, hi}
	}

	id := map[core.Arbiter]string{
		core.FP: "Fig2a", core.RR: "Fig2b", core.TDMA: "Fig2c",
		core.Regulated: "Fig2reg", core.ParAware: "Fig2par",
	}[arb]
	if id == "" {
		return nil, fmt.Errorf("experiments: Fig2 undefined for arbiter %v", arb)
	}
	return &Study{
		ID:               id,
		Title:            fmt.Sprintf("schedulable task sets vs core utilization (%s bus)", arb),
		XLabel:           "per-core utilization",
		YLabel:           "schedulable ratio",
		Xs:               opts.Utilizations,
		Series:           series,
		Intervals:        intervals,
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
	}, sweepErr
}

// weightedStudy runs a Fig. 3 style experiment: for every value of the
// swept parameter, task sets are generated across the whole
// utilization grid and reduced to the weighted schedulability measure.
func weightedStudy(opts Options, id, title, xlabel string, xs []float64,
	configAt func(point int) (taskgen.Config, []taskgen.TaskParams, error),
) (*Study, error) {
	opts = opts.withDefaults()
	variants := PaperVariants()
	perPoint, sweepErr := sweep(opts, len(xs), configAt,
		func(int) []float64 { return opts.Utilizations },
		variants,
	)
	if sweepErr != nil && !errors.Is(sweepErr, ErrInterrupted) {
		return nil, sweepErr
	}
	return &Study{
		ID:               id,
		Title:            title,
		XLabel:           xlabel,
		YLabel:           "weighted schedulability",
		Xs:               xs,
		Series:           weightedSeries(perPoint, variants),
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
	}, sweepErr
}

// Fig3a sweeps the number of cores (2..10 step 2 in the paper).
func Fig3a(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	cores := []float64{2, 4, 6, 8, 10}
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}
	return weightedStudy(opts, "Fig3a", "weighted schedulability vs number of cores", "cores", cores,
		func(p int) (taskgen.Config, []taskgen.TaskParams, error) {
			cfg := opts.Base
			cfg.Platform.NumCores = int(cores[p])
			return cfg, pool, nil
		})
}

// Fig3b sweeps the memory reload time d_mem (2..10 step 2).
func Fig3b(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	dmems := []float64{2, 4, 6, 8, 10}
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}
	return weightedStudy(opts, "Fig3b", "weighted schedulability vs memory reload time", "d_mem", dmems,
		func(p int) (taskgen.Config, []taskgen.TaskParams, error) {
			cfg := opts.Base
			cfg.Platform.DMem = int64(dmems[p])
			return cfg, pool, nil
		})
}

// Fig3c sweeps the cache size (32..1024 sets); task parameters are
// re-derived by the static analysis at every geometry, exactly as
// re-running Heptane would.
func Fig3c(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	sizes := []float64{32, 64, 128, 256, 512, 1024}
	return weightedStudy(opts, "Fig3c", "weighted schedulability vs cache size", "cache sets", sizes,
		func(p int) (taskgen.Config, []taskgen.TaskParams, error) {
			cfg := opts.Base
			cfg.Platform.Cache.NumSets = int(sizes[p])
			pool, err := taskgen.PoolFromSuiteObs(cfg.Platform.Cache, opts.Observer)
			return cfg, pool, err
		})
}

// Fig3d sweeps the RR/TDMA slot size s (1..6).
func Fig3d(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	slots := []float64{1, 2, 3, 4, 5, 6}
	pool, err := taskgen.PoolFromSuiteObs(opts.Base.Platform.Cache, opts.Observer)
	if err != nil {
		return nil, err
	}
	return weightedStudy(opts, "Fig3d", "weighted schedulability vs RR/TDMA slot size", "slot size s", slots,
		func(p int) (taskgen.Config, []taskgen.TaskParams, error) {
			cfg := opts.Base
			cfg.Platform.SlotSize = int(slots[p])
			return cfg, pool, nil
		})
}
