package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/benchsuite"
	"repro/internal/staticwcet"
	"repro/internal/taskmodel"
)

// AssocPoint aggregates the suite-wide effect of one cache
// organisation in the associativity extension study.
type AssocPoint struct {
	NumSets int
	Ways    int
	// Totals across the benchmark suite.
	TotalMD, TotalMDr           int64
	TotalMDExact, TotalMDrExact int64
	TotalPCB, TotalECB          int
	FullyPersistentBenchmarks   int
	ZeroPersistenceBenchmarks   int
}

// ExtAssociativity is an extension study beyond the paper (which fixes
// a direct-mapped cache): at a constant capacity of 256 cache lines,
// it trades sets for ways — (256,1), (128,2), (64,4), (32,8) — and
// reports how the suite's memory demand and persistent footprint
// respond. Higher associativity removes conflict thrashing (MD^r
// shrinks) but fewer sets mean more footprint collisions per set, so
// |PCB| follows the capacity rule "persistent iff at most Ways blocks
// share a set".
func ExtAssociativity() ([]AssocPoint, error) {
	organisations := []struct{ sets, ways int }{
		{256, 1}, {128, 2}, {64, 4}, {32, 8},
	}
	var out []AssocPoint
	for _, org := range organisations {
		cfg := taskmodel.CacheConfig{NumSets: org.sets, BlockSizeBytes: 32, Associativity: org.ways}
		params, err := benchsuite.ExtractAll(cfg)
		if err != nil {
			return nil, err
		}
		pt := AssocPoint{NumSets: org.sets, Ways: org.ways}
		for _, p := range params {
			r := p.Result
			pt.TotalMD += r.MD
			pt.TotalMDr += r.MDr
			pt.TotalMDExact += r.MDExact
			pt.TotalMDrExact += r.MDrExact
			pt.TotalPCB += r.PCB.Count()
			pt.TotalECB += r.ECB.Count()
			if r.PCB.Equal(r.ECB) {
				pt.FullyPersistentBenchmarks++
			}
			if r.PCB.IsEmpty() {
				pt.ZeroPersistenceBenchmarks++
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderAssoc prints the associativity study as a table.
func RenderAssoc(w io.Writer, pts []AssocPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "organisation\tΣMD\tΣMDr\tΣMDexact\tΣMDrexact\tΣ|PCB|\tΣ|ECB|\tfully-persistent\tzero-persistence")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d sets x %d ways\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.NumSets, p.Ways, p.TotalMD, p.TotalMDr, p.TotalMDExact, p.TotalMDrExact,
			p.TotalPCB, p.TotalECB, p.FullyPersistentBenchmarks, p.ZeroPersistenceBenchmarks)
	}
	return tw.Flush()
}

// HierPoint aggregates the suite-wide effect of adding a private L2.
type HierPoint struct {
	Label             string
	L2Sets, L2Ways    int
	TotalL1Misses     int64
	TotalBusMD        int64
	TotalBusMDr       int64
	TotalBusMDExact   int64
	FullyL2Persistent int
}

// ExtHierarchy quantifies the paper's future-work direction: how much
// bus demand a private L2 absorbs. The L1 stays at the paper's
// default; L2 candidates grow from 512 lines to 2048.
func ExtHierarchy() ([]HierPoint, error) {
	l1 := taskmodel.CacheConfig{NumSets: 256, BlockSizeBytes: 32}
	configs := []struct {
		label      string
		sets, ways int
	}{
		{"no L2", 0, 0},
		{"512x1", 512, 1},
		{"512x2", 512, 2},
		{"1024x2", 1024, 2},
	}
	var out []HierPoint
	for _, c := range configs {
		pt := HierPoint{Label: c.label, L2Sets: c.sets, L2Ways: c.ways}
		for _, b := range benchsuite.Suite() {
			if c.sets == 0 {
				r, err := staticwcet.Analyze(b.Prog, l1)
				if err != nil {
					return nil, err
				}
				pt.TotalL1Misses += r.MD
				pt.TotalBusMD += r.MD
				pt.TotalBusMDr += r.MDr
				pt.TotalBusMDExact += r.MDExact
				if r.PCB.Equal(r.ECB) {
					pt.FullyL2Persistent++
				}
				continue
			}
			l2 := taskmodel.CacheConfig{NumSets: c.sets, BlockSizeBytes: 32, Associativity: c.ways}
			h, err := staticwcet.AnalyzeHierarchy(b.Prog, l1, l2)
			if err != nil {
				return nil, err
			}
			pt.TotalL1Misses += h.L1Misses
			pt.TotalBusMD += h.MD
			pt.TotalBusMDr += h.MDr
			pt.TotalBusMDExact += h.MDExact
			if h.PCB.Equal(h.ECB) {
				pt.FullyL2Persistent++
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderHierarchy prints the hierarchy study as a table.
func RenderHierarchy(w io.Writer, pts []HierPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "L2\tΣ L1 misses\tΣ bus MD\tΣ bus MDr\tΣ bus MDexact\tfully-persistent benchmarks")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			p.Label, p.TotalL1Misses, p.TotalBusMD, p.TotalBusMDr, p.TotalBusMDExact, p.FullyL2Persistent)
	}
	return tw.Flush()
}
