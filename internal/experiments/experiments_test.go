package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// smallOpts keeps test runtimes low: few samples, coarse grids, small
// platforms.
func smallOpts() Options {
	base := taskgen.DefaultConfig()
	base.Platform.NumCores = 2
	base.TasksPerCore = 4
	return Options{
		TaskSetsPerPoint: 5,
		Seed:             1,
		Utilizations:     []float64{0.2, 0.5, 0.8},
		Base:             base,
	}
}

func seriesByName(s *Study) map[string][]float64 {
	out := map[string][]float64{}
	for _, ser := range s.Series {
		out[ser.Name] = ser.Values
	}
	return out
}

func TestFig2Shape(t *testing.T) {
	st, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if st.ID != "Fig2a" {
		t.Errorf("ID = %q, want Fig2a", st.ID)
	}
	if len(st.Xs) != 3 || len(st.Series) != 3 {
		t.Fatalf("xs/series = %d/%d, want 3/3", len(st.Xs), len(st.Series))
	}
	by := seriesByName(st)
	base, cp, perfect := by["FP"], by["FP-CP"], by["Perfect"]
	for i := range st.Xs {
		for _, v := range [][]float64{base, cp, perfect} {
			if v[i] < 0 || v[i] > 1 {
				t.Errorf("x=%g: ratio %g out of [0,1]", st.Xs[i], v[i])
			}
		}
		if cp[i] < base[i] {
			t.Errorf("x=%g: FP-CP %g below FP %g (domination violated)", st.Xs[i], cp[i], base[i])
		}
		if perfect[i] < cp[i] {
			t.Errorf("x=%g: Perfect %g below FP-CP %g", st.Xs[i], perfect[i], cp[i])
		}
	}
	// Schedulability must not increase with utilization for the
	// baseline (weak sanity on a tiny sample: endpoints only).
	if base[len(base)-1] > base[0] {
		t.Errorf("FP ratio grew with utilization: %v", base)
	}
}

func TestFig2RejectsPerfectArbiter(t *testing.T) {
	if _, err := Fig2(core.Perfect, smallOpts()); err == nil {
		t.Fatal("Fig2(Perfect) accepted")
	}
}

func TestFig2Deterministic(t *testing.T) {
	a, err := Fig2(core.RR, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(core.RR, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != b.Series[i].Values[j] {
				t.Fatalf("series %s point %d differs across identical runs", a.Series[i].Name, j)
			}
		}
	}
}

func checkWeightedStudy(t *testing.T, st *Study, wantID string, wantPoints int) {
	t.Helper()
	if st.ID != wantID {
		t.Errorf("ID = %q, want %q", st.ID, wantID)
	}
	if len(st.Xs) != wantPoints {
		t.Fatalf("points = %d, want %d", len(st.Xs), wantPoints)
	}
	if len(st.Series) != 6 {
		t.Fatalf("series = %d, want 6 paper variants", len(st.Series))
	}
	by := seriesByName(st)
	for _, arb := range []string{"FP", "RR", "TDMA"} {
		base, cp := by[arb], by[arb+"-CP"]
		for i := range st.Xs {
			if base[i] < 0 || base[i] > 1 || cp[i] < 0 || cp[i] > 1 {
				t.Errorf("%s x=%g: weighted value out of range", arb, st.Xs[i])
			}
			if cp[i] < base[i] {
				t.Errorf("%s x=%g: CP %g below baseline %g", arb, st.Xs[i], cp[i], base[i])
			}
		}
	}
}

func TestFig3aShape(t *testing.T) {
	st, err := Fig3a(smallOpts())
	if err != nil {
		t.Fatalf("Fig3a: %v", err)
	}
	checkWeightedStudy(t, st, "Fig3a", 5)
}

func TestFig3bShape(t *testing.T) {
	st, err := Fig3b(smallOpts())
	if err != nil {
		t.Fatalf("Fig3b: %v", err)
	}
	checkWeightedStudy(t, st, "Fig3b", 5)
}

func TestFig3cShape(t *testing.T) {
	st, err := Fig3c(smallOpts())
	if err != nil {
		t.Fatalf("Fig3c: %v", err)
	}
	checkWeightedStudy(t, st, "Fig3c", 6)
}

func TestFig3dShape(t *testing.T) {
	st, err := Fig3d(smallOpts())
	if err != nil {
		t.Fatalf("Fig3d: %v", err)
	}
	checkWeightedStudy(t, st, "Fig3d", 6)
	// FP ignores the slot size: its series must be flat.
	by := seriesByName(st)
	for _, name := range []string{"FP", "FP-CP"} {
		vals := by[name]
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Errorf("%s not flat across slot sizes: %v", name, vals)
				break
			}
		}
	}
}

func TestStudyChartRenders(t *testing.T) {
	st, err := Fig2(core.TDMA, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := st.Chart().Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(b.String(), "Fig2c") {
		t.Errorf("chart missing title:\n%s", b.String())
	}
	b.Reset()
	if err := st.Chart().WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(b.String(), "x,TDMA,TDMA-CP,Perfect") {
		t.Errorf("csv header = %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(taskmodel.CacheConfig{NumSets: 256, BlockSizeBytes: 32})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	published := 0
	for _, r := range rows {
		if r.Published != nil {
			published++
			if r.Published.Name != r.Name {
				t.Errorf("row %s paired with published %s", r.Name, r.Published.Name)
			}
		}
	}
	if published != 6 {
		t.Errorf("published pairings = %d, want 6", published)
	}
	var b strings.Builder
	if err := RenderTable1(&b, rows); err != nil {
		t.Fatalf("RenderTable1: %v", err)
	}
	out := b.String()
	for _, want := range []string{"benchmark", "nsichneu", "147200", "lcdnum"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestExtAssociativity(t *testing.T) {
	pts, err := ExtAssociativity()
	if err != nil {
		t.Fatalf("ExtAssociativity: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	if pts[0].NumSets != 256 || pts[0].Ways != 1 {
		t.Fatalf("first organisation = %dx%d, want 256x1", pts[0].NumSets, pts[0].Ways)
	}
	for _, p := range pts {
		if p.NumSets*p.Ways != 256 {
			t.Errorf("organisation %dx%d does not hold 256 lines", p.NumSets, p.Ways)
		}
		if p.TotalMDr > p.TotalMD || p.TotalMDrExact > p.TotalMDExact {
			t.Errorf("%dx%d: residual demand exceeds full demand", p.NumSets, p.Ways)
		}
		if p.TotalMDExact > p.TotalMD {
			t.Errorf("%dx%d: exact accounting looser than paper accounting", p.NumSets, p.Ways)
		}
	}
	var b strings.Builder
	if err := RenderAssoc(&b, pts); err != nil {
		t.Fatalf("RenderAssoc: %v", err)
	}
	if !strings.Contains(b.String(), "256 sets x 1 ways") {
		t.Errorf("render missing organisation row:\n%s", b.String())
	}
}

func TestExtCRPD(t *testing.T) {
	st, err := ExtCRPD(smallOpts())
	if err != nil {
		t.Fatalf("ExtCRPD: %v", err)
	}
	if len(st.Series) != 5 {
		t.Fatalf("series = %d, want 5 CRPD approaches", len(st.Series))
	}
	by := seriesByName(st)
	// The ECB-only bound is the most pessimistic of the set: it must
	// never schedule more than ECB-union; Combined never less than
	// either union approach.
	for i := range st.Xs {
		if by["ecb-only"][i] > by["ecb-union"][i] {
			t.Errorf("x=%g: ecb-only %g above ecb-union %g", st.Xs[i], by["ecb-only"][i], by["ecb-union"][i])
		}
		if by["combined"][i] < by["ecb-union"][i] || by["combined"][i] < by["ucb-union"][i] {
			t.Errorf("x=%g: combined below a union approach", st.Xs[i])
		}
		for _, s := range st.Series {
			if s.Values[i] < 0 || s.Values[i] > 1 {
				t.Errorf("x=%g: %s ratio out of range", st.Xs[i], s.Name)
			}
		}
	}
}

func TestExtPartition(t *testing.T) {
	st, err := ExtPartition(smallOpts())
	if err != nil {
		t.Fatalf("ExtPartition: %v", err)
	}
	if len(st.Series) != 4 {
		t.Fatalf("series = %d, want 4 (paper-split + 3 heuristics)", len(st.Series))
	}
	for _, s := range st.Series {
		for i, v := range s.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s x=%g: ratio %g out of range", s.Name, st.Xs[i], v)
			}
		}
	}
}

func TestExtOPA(t *testing.T) {
	st, err := ExtOPA(smallOpts())
	if err != nil {
		t.Fatalf("ExtOPA: %v", err)
	}
	by := seriesByName(st)
	for i := range st.Xs {
		if by["OPA"][i] < by["DM"][i] {
			t.Errorf("x=%g: OPA %g below DM %g (OPA can only help)", st.Xs[i], by["OPA"][i], by["DM"][i])
		}
	}
}

func TestExtHierarchy(t *testing.T) {
	pts, err := ExtHierarchy()
	if err != nil {
		t.Fatalf("ExtHierarchy: %v", err)
	}
	if len(pts) != 4 || pts[0].Label != "no L2" {
		t.Fatalf("points = %+v", pts)
	}
	base := pts[0]
	for _, p := range pts[1:] {
		// Adding an L2 can only reduce bus demand; L1 misses unchanged.
		if p.TotalBusMD > base.TotalBusMD {
			t.Errorf("%s: bus MD %d above no-L2 %d", p.Label, p.TotalBusMD, base.TotalBusMD)
		}
		if p.TotalL1Misses != base.TotalL1Misses {
			t.Errorf("%s: L1 misses %d != %d", p.Label, p.TotalL1Misses, base.TotalL1Misses)
		}
		if p.TotalBusMDr > p.TotalBusMD {
			t.Errorf("%s: MDr above MD", p.Label)
		}
	}
	// Growing the L2 monotonically absorbs more traffic (visible in the
	// exact accounting; the paper-style MD has no first-miss credit).
	if pts[3].TotalBusMDExact > pts[2].TotalBusMDExact || pts[2].TotalBusMDExact > pts[1].TotalBusMDExact {
		t.Errorf("exact bus demand not monotone in L2 size: %+v", pts)
	}
	var b strings.Builder
	if err := RenderHierarchy(&b, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no L2") {
		t.Error("render missing rows")
	}
}

func TestExtGen(t *testing.T) {
	st, err := ExtGen(smallOpts())
	if err != nil {
		t.Fatalf("ExtGen: %v", err)
	}
	if len(st.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(st.Series))
	}
	by := seriesByName(st)
	for _, mode := range []string{"paper", "loguni"} {
		base, cp := by[mode+"/RR"], by[mode+"/RR-CP"]
		if base == nil || cp == nil {
			t.Fatalf("missing series for mode %s", mode)
		}
		for i := range st.Xs {
			if cp[i] < base[i] {
				t.Errorf("%s x=%g: RR-CP %g below RR %g", mode, st.Xs[i], cp[i], base[i])
			}
		}
	}
}

func TestStudyWriteCSVWithIntervals(t *testing.T) {
	st, err := Fig2(core.FP, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := st.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(b.String(), "\n", 2)[0]
	for _, want := range []string{"FP-lo95", "FP-hi95", "FP-CP-lo95", "Perfect-hi95"} {
		if !strings.Contains(header, want) {
			t.Errorf("CSV header missing %q: %s", want, header)
		}
	}
	// Intervals bracket the point estimates.
	for _, ser := range st.Series {
		ci := st.Intervals[ser.Name]
		for i, v := range ser.Values {
			if ci[0][i] > v+1e-12 || ci[1][i] < v-1e-12 {
				t.Errorf("%s point %d: CI [%g,%g] does not bracket %g", ser.Name, i, ci[0][i], ci[1][i], v)
			}
		}
	}
}
