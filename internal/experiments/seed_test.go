package experiments

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// TestSeedForUnique: across a paper-scale grid — 1000 samples × the
// 20-step utilization grid, for several base seeds — no two jobs may
// share an RNG seed. The former linear formula failed this at a few
// hundred samples.
func TestSeedForUnique(t *testing.T) {
	utils := DefaultUtilizations()
	for _, base := range []int64{0, 1, 42, -7, 1 << 40} {
		seen := make(map[int64][2]int, 1000*len(utils))
		for sample := 0; sample < 1000; sample++ {
			for ui, u := range utils {
				s := seedFor(base, sample, u)
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: seed collision between (sample %d, util %g) and (sample %d, util %g)",
						base, sample, u, prev[0], utils[prev[1]])
				}
				seen[s] = [2]int{sample, ui}
			}
		}
	}
}

// TestSeedForDistinctBases: different base seeds must produce disjoint
// job seeds (spot check), and the derivation must be deterministic.
func TestSeedForDistinctBases(t *testing.T) {
	if seedFor(1, 3, 0.25) != seedFor(1, 3, 0.25) {
		t.Fatal("seedFor is not deterministic")
	}
	if seedFor(1, 3, 0.25) == seedFor(2, 3, 0.25) {
		t.Error("base seed does not influence the job seed")
	}
	if seedFor(1, 3, 0.25) == seedFor(1, 4, 0.25) {
		t.Error("sample index does not influence the job seed")
	}
	if seedFor(1, 3, 0.25) == seedFor(1, 3, 0.30) {
		t.Error("utilization does not influence the job seed")
	}
}

// TestSeedForPairedSamples pins the paired-samples design the sweeps
// rely on: the job seed excludes the swept point index, so two sweep
// points that differ only in a platform parameter (here Fig3d's slot
// size) draw identical task sets at the same (sample, utilization) —
// their series differ only through the analysis, never the sample.
func TestSeedForPairedSamples(t *testing.T) {
	base := taskgen.DefaultConfig()
	base.Platform.NumCores = 2
	base.TasksPerCore = 4
	pool, err := taskgen.PoolFromSuite(base.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	generate := func(slot int, util float64, sample int) *taskmodel.TaskSet {
		t.Helper()
		cfg := base
		cfg.Platform.SlotSize = slot
		cfg.CoreUtilization = util
		// Exactly the sweep's derivation path: seedFor(base, sample, util).
		ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seedFor(2020, sample, util))))
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	for _, util := range []float64{0.3, 0.7} {
		for sample := 0; sample < 3; sample++ {
			a := generate(1, util, sample)
			b := generate(4, util, sample)
			if !reflect.DeepEqual(a.Tasks, b.Tasks) {
				t.Errorf("util %g sample %d: task sets differ across sweep points — pairing broken", util, sample)
			}
			if a.Platform.SlotSize == b.Platform.SlotSize {
				t.Fatal("test is vacuous: both points got the same platform")
			}
		}
	}
	// The pairing must not collapse everything: different samples (and
	// different utilizations) still draw different task sets.
	if reflect.DeepEqual(generate(1, 0.3, 0).Tasks, generate(1, 0.3, 1).Tasks) {
		t.Error("distinct samples drew identical task sets")
	}
	if reflect.DeepEqual(generate(1, 0.3, 0).Tasks, generate(1, 0.7, 0).Tasks) {
		t.Error("distinct utilizations drew identical task sets")
	}
}

// TestDefaultUtilizations pins the exact grid: twenty steps of
// exactly 0.05, no float drift.
func TestDefaultUtilizations(t *testing.T) {
	want := []float64{
		0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
		0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00,
	}
	got := DefaultUtilizations()
	if len(got) != len(want) {
		t.Fatalf("grid has %d steps, want %d", len(got), len(want))
	}
	for i, u := range got {
		// Exact equality on purpose: the grid must match the literal
		// constants bit for bit (an accumulating loop yields
		// 0.15000000000000002 at step 3).
		if u != want[i] {
			t.Errorf("step %d = %v, want %v", i, u, want[i])
		}
	}
}

// TestVerdictsMatchesAnalyze: the shared-tables verdicts helper must
// agree with independent per-variant analyses.
func TestVerdictsMatchesAnalyze(t *testing.T) {
	base := taskgen.DefaultConfig()
	base.Platform.NumCores = 2
	base.TasksPerCore = 4
	base.CoreUtilization = 0.4
	pool, err := taskgen.PoolFromSuite(base.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := taskgen.Generate(base, pool, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	variants := PaperVariants()
	got, err := verdicts(ts, variants)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		res, err := core.Analyze(ts, core.Config{Arbiter: v.Arbiter, Persistence: v.Persistence})
		if err != nil {
			t.Fatal(err)
		}
		if got[v.Name] != res.Schedulable {
			t.Errorf("%s: verdicts %v, Analyze %v", v.Name, got[v.Name], res.Schedulable)
		}
	}
}
