package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/taskgen"
)

// TestSeedForUnique: across a paper-scale grid — 1000 samples × the
// 20-step utilization grid, for several base seeds — no two jobs may
// share an RNG seed. The former linear formula failed this at a few
// hundred samples.
func TestSeedForUnique(t *testing.T) {
	utils := DefaultUtilizations()
	for _, base := range []int64{0, 1, 42, -7, 1 << 40} {
		seen := make(map[int64][2]int, 1000*len(utils))
		for sample := 0; sample < 1000; sample++ {
			for ui, u := range utils {
				s := seedFor(base, sample, u)
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: seed collision between (sample %d, util %g) and (sample %d, util %g)",
						base, sample, u, prev[0], utils[prev[1]])
				}
				seen[s] = [2]int{sample, ui}
			}
		}
	}
}

// TestSeedForDistinctBases: different base seeds must produce disjoint
// job seeds (spot check), and the derivation must be deterministic.
func TestSeedForDistinctBases(t *testing.T) {
	if seedFor(1, 3, 0.25) != seedFor(1, 3, 0.25) {
		t.Fatal("seedFor is not deterministic")
	}
	if seedFor(1, 3, 0.25) == seedFor(2, 3, 0.25) {
		t.Error("base seed does not influence the job seed")
	}
	if seedFor(1, 3, 0.25) == seedFor(1, 4, 0.25) {
		t.Error("sample index does not influence the job seed")
	}
	if seedFor(1, 3, 0.25) == seedFor(1, 3, 0.30) {
		t.Error("utilization does not influence the job seed")
	}
}

// TestDefaultUtilizations pins the exact grid: twenty steps of
// exactly 0.05, no float drift.
func TestDefaultUtilizations(t *testing.T) {
	want := []float64{
		0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
		0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00,
	}
	got := DefaultUtilizations()
	if len(got) != len(want) {
		t.Fatalf("grid has %d steps, want %d", len(got), len(want))
	}
	for i, u := range got {
		// Exact equality on purpose: the grid must match the literal
		// constants bit for bit (an accumulating loop yields
		// 0.15000000000000002 at step 3).
		if u != want[i] {
			t.Errorf("step %d = %v, want %v", i, u, want[i])
		}
	}
}

// TestVerdictsMatchesAnalyze: the shared-tables verdicts helper must
// agree with independent per-variant analyses.
func TestVerdictsMatchesAnalyze(t *testing.T) {
	base := taskgen.DefaultConfig()
	base.Platform.NumCores = 2
	base.TasksPerCore = 4
	base.CoreUtilization = 0.4
	pool, err := taskgen.PoolFromSuite(base.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := taskgen.Generate(base, pool, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	variants := PaperVariants()
	got, err := verdicts(ts, variants)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		res, err := core.Analyze(ts, core.Config{Arbiter: v.Arbiter, Persistence: v.Persistence})
		if err != nil {
			t.Fatal(err)
		}
		if got[v.Name] != res.Schedulable {
			t.Errorf("%s: verdicts %v, Analyze %v", v.Name, got[v.Name], res.Schedulable)
		}
	}
}
