// Package benchsuite provides the workload programs for the
// experimental evaluation: a suite of sixteen synthetic structured
// programs whose static cache behaviour spans the same qualitative
// regimes as the Mälardalen benchmarks the paper analysed with Heptane
// (Table I) — from tiny loop kernels that are fully cache-persistent to
// state-machine code that overflows the cache and has no persistence at
// all.
//
// The suite is geometry-independent: programs are defined once in terms
// of memory blocks, and Extract/ExtractAll run the static analysis of
// package staticwcet against any cache configuration, which is exactly
// how the paper's cache-size experiment (Fig. 3c) re-derives task
// parameters per geometry. The verbatim values of the paper's Table I
// are embedded separately (PaperTable1) for reference and tests.
package benchsuite

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/staticwcet"
	"repro/internal/taskmodel"
)

// Benchmark is one named workload program.
type Benchmark struct {
	Name string
	Prog *program.Program
}

// Params are the per-task parameters extracted from one benchmark at
// one cache geometry — one row of the regenerated Table I.
type Params struct {
	Name   string
	Result *staticwcet.Result
}

// Suite returns the twenty benchmark programs. Programs are built
// fresh on every call so callers may mutate Alt.Taken freely.
func Suite() []Benchmark {
	return []Benchmark{
		{"lcdnum", lcdnum()},
		{"cnt", cnt()},
		{"fir", fir()},
		{"ns", ns()},
		{"qurt", qurt()},
		{"crc", crc()},
		{"matmult", matmult()},
		{"bsort100", bsort100()},
		{"edn", edn()},
		{"jfdctint", jfdctint()},
		{"ludcmp", ludcmp()},
		{"fdct", fdct()},
		{"compress", compress()},
		{"adpcm", adpcm()},
		{"cover", cover()},
		{"ndes", ndes()},
		{"lms", lms()},
		{"st", st()},
		{"statemate", statemate()},
		{"nsichneu", nsichneu()},
	}
}

// ByName returns the named benchmark or an error listing valid names.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("benchsuite: unknown benchmark %q", name)
}

// Extract analyses one benchmark against the cache geometry.
func Extract(b Benchmark, cache taskmodel.CacheConfig) (Params, error) {
	r, err := staticwcet.Analyze(b.Prog, cache)
	if err != nil {
		return Params{}, fmt.Errorf("benchsuite: analysing %s: %w", b.Name, err)
	}
	return Params{Name: b.Name, Result: r}, nil
}

// ExtractAll analyses the whole suite against the cache geometry.
func ExtractAll(cache taskmodel.CacheConfig) ([]Params, error) {
	suite := Suite()
	out := make([]Params, 0, len(suite))
	for _, b := range suite {
		p, err := Extract(b, cache)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// --- program definitions ----------------------------------------------------
//
// Conventions: each benchmark owns a disjoint base address region;
// conflicts within a program are created deliberately by referencing a
// second code range exactly 256 blocks away (the default number of
// cache sets), modelling library code mapped far from the main text
// segment. At larger caches those conflicts disappear (more PCBs); at
// smaller caches additional conflicts appear — the behaviour Fig. 3c
// relies on.

const farOffset = 256

// lcdnum: tiny display driver — short init then a small loop; fully
// persistent at the default geometry.
func lcdnum() *program.Program {
	return &program.Program{Name: "lcdnum", Root: program.S(
		program.Straight(0, 4, 6),
		program.L(12, program.Straight(4, 16, 2)),
	)}
}

// cnt: counts elements in a matrix — two nested loops over a small
// kernel.
func cnt() *program.Program {
	return &program.Program{Name: "cnt", Root: program.S(
		program.Straight(600, 4, 4),
		program.L(10, program.L(10, program.Straight(604, 10, 2))),
	)}
}

// fir: finite impulse response filter — long single loop, small body.
func fir() *program.Program {
	return &program.Program{Name: "fir", Root: program.S(
		program.Straight(640, 2, 4),
		program.L(700, program.Straight(642, 10, 2)),
	)}
}

// ns: four-level nested loop search over a table.
func ns() *program.Program {
	return &program.Program{Name: "ns", Root: program.S(
		program.Straight(680, 2, 3),
		program.L(5, program.L(5, program.L(5, program.L(5,
			program.Straight(682, 14, 1))))),
	)}
}

// qurt: quadratic root computation — straight-line math helpers called
// from a short loop, with an alternative for the discriminant sign.
func qurt() *program.Program {
	return &program.Program{Name: "qurt", Root: program.S(
		program.Straight(720, 6, 4),
		program.L(3, program.S(
			program.Straight(726, 12, 2),
			&program.Alt{
				A: program.Straight(738, 6, 3),
				B: program.Straight(744, 4, 2),
			},
		)),
	)}
}

// crc: table-driven cyclic redundancy check. The lookup table lives a
// far page away and aliases the first ten code blocks at the default
// geometry.
func crc() *program.Program {
	base := 768
	return &program.Program{Name: "crc", Root: program.S(
		program.Straight(base, 8, 3),
		program.L(40, program.S(
			program.Straight(base+8, 12, 2),
			program.Straight(base+farOffset, 10, 2), // aliases base..base+9
		)),
	)}
}

// matmult: triple nested loop over a compact kernel; large PD, fully
// persistent footprint.
func matmult() *program.Program {
	return &program.Program{Name: "matmult", Root: program.S(
		program.Straight(1100, 4, 4),
		program.L(20, program.L(20, program.L(20, program.Straight(1104, 12, 2)))),
	)}
}

// bsort100: bubble sort of 100 elements — the classic quadratic loop
// nest with a compare/swap alternative; modest footprint, huge PD.
func bsort100() *program.Program {
	return &program.Program{Name: "bsort100", Root: program.S(
		program.Straight(1150, 4, 3),
		program.L(99, program.L(99, program.S(
			program.Straight(1154, 8, 6),
			&program.Alt{
				A: program.Straight(1162, 6, 4), // swap path
				B: program.Straight(1168, 2, 2), // no-swap path
			},
			// Array-access helpers far away, aliasing the loop header:
			// they thrash every iteration, so persistence reclaims
			// almost nothing (the paper: MD^r/MD = 0.99) and execution
			// dominates (the paper: PD ≈ 8×MD).
			program.Straight(1154+farOffset, 8, 4),
		))),
	)}
}

// edn: vector/DSP kernels executed in sequence, each its own loop.
func edn() *program.Program {
	items := []program.Node{program.Straight(1200, 6, 3)}
	base := 1206
	for k := 0; k < 8; k++ {
		items = append(items, program.L(25, program.Straight(base+k*8, 8, 2)))
	}
	return &program.Program{Name: "edn", Root: program.S(items...)}
}

// jfdctint: integer DCT — two passes over row/column code.
func jfdctint() *program.Program {
	return &program.Program{Name: "jfdctint", Root: program.S(
		program.Straight(1300, 8, 3),
		program.L(8, program.Straight(1308, 26, 2)),
		program.L(8, program.Straight(1334, 26, 2)),
	)}
}

// ludcmp: LU decomposition — sizeable kernel, fully persistent at the
// default geometry (the paper reports ECB=PCB=98).
func ludcmp() *program.Program {
	return &program.Program{Name: "ludcmp", Root: program.S(
		program.Straight(1400, 10, 4),
		program.L(6, program.S(
			program.L(6, program.Straight(1410, 40, 2)),
			program.L(6, program.Straight(1450, 48, 2)),
		)),
	)}
}

// fdct: fast DCT — a persistent row/column kernel swept eight times,
// with a constant-table region far away that aliases the prologue.
// Only the aliased blocks stay in MD^r, giving the paper's fdct regime
// (MD^r well below MD).
func fdct() *program.Program {
	base := 1500
	return &program.Program{Name: "fdct", Root: program.S(
		program.Straight(base, 22, 3),
		program.L(8, program.Straight(base+22, 42, 2)),
		program.Straight(base+farOffset, 22, 1), // aliases base..base+21
	)}
}

// compress: two phases with a shared dictionary region; the second
// phase aliases half of the first.
func compress() *program.Program {
	base := 1800
	return &program.Program{Name: "compress", Root: program.S(
		program.Straight(base, 10, 2),
		program.L(30, program.S(
			program.Straight(base+10, 30, 2),
			&program.Alt{
				A: program.Straight(base+40, 10, 2),
				B: program.Straight(base+10+farOffset, 20, 1), // aliases phase 1
			},
		)),
	)}
}

// adpcm: audio codec — long straight-line encoder plus a decode loop
// aliasing part of the encoder text.
func adpcm() *program.Program {
	base := 2100
	return &program.Program{Name: "adpcm", Root: program.S(
		program.Straight(base, 100, 2),
		program.L(20, program.S(
			program.Straight(base+100, 40, 2),
			program.Straight(base+farOffset, 40, 1), // aliases base..base+39
		)),
	)}
}

// statemate: generated state-machine code — a large, almost
// straight-line body executed per step, plus a once-per-job helper
// region aliasing a slice of it; memory-dominated and mostly
// persistent (the paper reports MD^r/MD ≈ 0.21).
func statemate() *program.Program {
	base := 2600
	return &program.Program{Name: "statemate", Root: program.S(
		program.Straight(base, 8, 2),
		program.L(10, program.Straight(base+8, 220, 1)),
		program.Straight(base+8+farOffset, 36, 1), // aliases 36 of the 220
	)}
}

// cover: switch-heavy generated code — a big persistent body swept a
// few times; memory-dominated with full persistence at the default
// geometry.
func cover() *program.Program {
	return &program.Program{Name: "cover", Root: program.S(
		program.Straight(4000, 6, 2),
		program.L(3, program.Straight(4006, 200, 1)),
	)}
}

// ndes: bit-mangling cipher kernel — large table-driven persistent
// footprint executed in a short loop.
func ndes() *program.Program {
	return &program.Program{Name: "ndes", Root: program.S(
		program.Straight(4300, 8, 2),
		program.L(4, program.S(
			program.Straight(4308, 120, 1),
			program.Straight(4428, 100, 1),
		)),
	)}
}

// lms: adaptive filter — a long loop over a small kernel plus a large
// persistent coefficient-handling region.
func lms() *program.Program {
	return &program.Program{Name: "lms", Root: program.S(
		program.Straight(4700, 140, 1),
		program.L(60, program.Straight(4840, 16, 2)),
	)}
}

// st: statistics kernel — two persistent passes over a mid-size body.
func st() *program.Program {
	return &program.Program{Name: "st", Root: program.S(
		program.L(6, program.Straight(5000, 90, 1)),
		program.L(6, program.Straight(5090, 70, 1)),
	)}
}

// nsichneu: enormous Petri-net automaton — twice the cache in
// straight-line code per iteration: every block conflicts, no
// persistence at all at the default geometry.
func nsichneu() *program.Program {
	base := 3200
	return &program.Program{Name: "nsichneu", Root: program.S(
		program.L(6, program.S(
			program.Straight(base, 256, 2),
			program.Straight(base+farOffset, 256, 2),
		)),
	)}
}

// --- published reference values ---------------------------------------------

// Table1Row mirrors one row of the paper's Table I (values as printed;
// PD, MD, MD^r in the paper's clock-cycle units, set sizes in blocks).
type Table1Row struct {
	Name          string
	PD, MD, MDr   int64
	ECB, PCB, UCB int
}

// PaperTable1 returns the six rows printed in the paper. The full
// table is in reference [4]; only these six are published in this
// paper, and they serve as the qualitative calibration targets for the
// synthetic suite.
func PaperTable1() []Table1Row {
	return []Table1Row{
		{"lcdnum", 984, 1440, 192, 20, 20, 20},
		{"bsort100", 710289, 89893, 88907, 20, 20, 18},
		{"ludcmp", 27036, 8607, 3545, 98, 98, 98},
		{"fdct", 6550, 6017, 819, 106, 22, 58},
		{"nsichneu", 22009, 147200, 147200, 256, 0, 256},
		{"statemate", 10586, 18257, 3891, 256, 36, 256},
	}
}
