package benchsuite

import (
	"testing"

	"repro/internal/taskmodel"
)

func geom(nsets int) taskmodel.CacheConfig {
	return taskmodel.CacheConfig{NumSets: nsets, BlockSizeBytes: 32}
}

func extractAll(t *testing.T, nsets int) map[string]Params {
	t.Helper()
	ps, err := ExtractAll(geom(nsets))
	if err != nil {
		t.Fatalf("ExtractAll(%d sets): %v", nsets, err)
	}
	out := make(map[string]Params, len(ps))
	for _, p := range ps {
		out[p.Name] = p
	}
	return out
}

func TestSuiteSizeAndNames(t *testing.T) {
	s := Suite()
	if len(s) != 20 {
		t.Fatalf("suite size = %d, want 20", len(s))
	}
	seen := map[string]bool{}
	for _, b := range s {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if err := b.Prog.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", b.Name, err)
		}
	}
	// Every published Table I benchmark exists in the suite.
	for _, row := range PaperTable1() {
		if !seen[row.Name] {
			t.Errorf("paper benchmark %q missing from suite", row.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fdct")
	if err != nil || b.Name != "fdct" {
		t.Fatalf("ByName(fdct) = %v, %v", b.Name, err)
	}
	if _, err := ByName("doesnotexist"); err == nil {
		t.Fatal("ByName(doesnotexist) = nil error")
	}
}

func TestDefaultGeometryBasicSanity(t *testing.T) {
	ps := extractAll(t, 256)
	for name, p := range ps {
		r := p.Result
		if r.PD <= 0 {
			t.Errorf("%s: PD = %d, want > 0", name, r.PD)
		}
		if r.MD <= 0 {
			t.Errorf("%s: MD = %d, want > 0", name, r.MD)
		}
		if r.MDr > r.MD {
			t.Errorf("%s: MDr %d > MD %d", name, r.MDr, r.MD)
		}
		if r.ECB.IsEmpty() {
			t.Errorf("%s: empty ECB", name)
		}
		if !r.PCB.SubsetOf(r.ECB) || !r.UCB.SubsetOf(r.ECB) {
			t.Errorf("%s: PCB/UCB not within ECB", name)
		}
	}
}

func TestRegimesMatchPaperQualitatively(t *testing.T) {
	ps := extractAll(t, 256)

	// lcdnum: tiny and fully persistent (paper: ECB=PCB=20).
	lcd := ps["lcdnum"].Result
	if !lcd.PCB.Equal(lcd.ECB) {
		t.Errorf("lcdnum: PCB %v != ECB %v (fully persistent expected)", lcd.PCB, lcd.ECB)
	}
	if lcd.ECB.Count() != 20 {
		t.Errorf("lcdnum: |ECB| = %d, want 20", lcd.ECB.Count())
	}
	if lcd.MDr != 0 {
		t.Errorf("lcdnum: MDr = %d, want 0", lcd.MDr)
	}

	// bsort100: execution-dominated with almost no reclaimable
	// persistence (paper: PD ≈ 8×MD, MD^r/MD = 0.99).
	bs := ps["bsort100"].Result
	if bs.PD < 4*bs.MD {
		t.Errorf("bsort100: PD %d not execution-dominated vs MD %d", bs.PD, bs.MD)
	}
	if ratio := float64(bs.MDr) / float64(bs.MD); ratio < 0.6 {
		t.Errorf("bsort100: MDr/MD = %.2f, want high (thrashing inner loop)", ratio)
	}

	// ludcmp: fully persistent mid-size kernel (paper: ECB=PCB=98).
	lu := ps["ludcmp"].Result
	if !lu.PCB.Equal(lu.ECB) {
		t.Errorf("ludcmp: expected fully persistent")
	}
	if lu.ECB.Count() != 98 {
		t.Errorf("ludcmp: |ECB| = %d, want 98", lu.ECB.Count())
	}

	// fdct: partially persistent with most of MD reclaimable
	// (paper: MD^r/MD ≈ 0.14).
	fd := ps["fdct"].Result
	if fd.PCB.Equal(fd.ECB) || fd.PCB.IsEmpty() {
		t.Errorf("fdct: |PCB| = %d of |ECB| = %d, want partial persistence", fd.PCB.Count(), fd.ECB.Count())
	}
	if ratio := float64(fd.MDr) / float64(fd.MD); ratio > 0.3 || ratio == 0 {
		t.Errorf("fdct: MDr/MD = %.2f, want small but nonzero", ratio)
	}

	// nsichneu: overflows the cache — zero persistence (paper: PCB=0,
	// MD = MDr, ECB = 256).
	nsi := ps["nsichneu"].Result
	if !nsi.PCB.IsEmpty() {
		t.Errorf("nsichneu: PCB = %v, want empty", nsi.PCB)
	}
	if nsi.MDr != nsi.MD {
		t.Errorf("nsichneu: MDr %d != MD %d", nsi.MDr, nsi.MD)
	}
	if nsi.ECB.Count() != 256 {
		t.Errorf("nsichneu: |ECB| = %d, want 256", nsi.ECB.Count())
	}

	// statemate: large footprint, mostly persistent (paper:
	// MD^r/MD ≈ 0.21).
	sm := ps["statemate"].Result
	if sm.PCB.IsEmpty() || sm.PCB.Equal(sm.ECB) {
		t.Errorf("statemate: PCB %d of ECB %d, want partial persistence",
			sm.PCB.Count(), sm.ECB.Count())
	}
	if sm.ECB.Count() < 200 {
		t.Errorf("statemate: |ECB| = %d, want large (>=200)", sm.ECB.Count())
	}
	if ratio := float64(sm.MDr) / float64(sm.MD); ratio > 0.35 || ratio == 0 {
		t.Errorf("statemate: MDr/MD = %.2f, want ~0.2", ratio)
	}

	// The new memory-heavy benchmarks are fully persistent and
	// memory-dominated: MD·d_mem at the default d_mem=5 is comparable
	// to PD, which is what lets persistence awareness move the
	// schedulability curves.
	for _, name := range []string{"cover", "ndes", "st"} {
		r := ps[name].Result
		if !r.PCB.Equal(r.ECB) {
			t.Errorf("%s: expected fully persistent", name)
		}
		if r.MDr != 0 {
			t.Errorf("%s: MDr = %d, want 0", name, r.MDr)
		}
		if memTime := r.MD * 5; memTime*3 < int64(r.PD) {
			t.Errorf("%s: memory time %d not comparable to PD %d", name, memTime, r.PD)
		}
	}
}

func TestCacheSizeMonotonicityOfPersistence(t *testing.T) {
	// Growing the cache can only increase each benchmark's PCB count
	// and decrease MD: fewer conflicts.
	sizes := []int{32, 64, 128, 256, 512, 1024}
	var prev map[string]Params
	for _, n := range sizes {
		cur := extractAll(t, n)
		if prev != nil {
			for name := range cur {
				if cur[name].Result.PCB.Count() < prev[name].Result.PCB.Count() {
					t.Errorf("%s: |PCB| shrank from %d to %d when cache grew to %d sets",
						name, prev[name].Result.PCB.Count(), cur[name].Result.PCB.Count(), n)
				}
				if cur[name].Result.MD > prev[name].Result.MD {
					t.Errorf("%s: MD grew from %d to %d when cache grew to %d sets",
						name, prev[name].Result.MD, cur[name].Result.MD, n)
				}
			}
		}
		prev = cur
	}
	// At 1024 sets every benchmark fits without conflicts: fully
	// persistent across the board.
	for name, p := range prev {
		if !p.Result.PCB.Equal(p.Result.ECB) {
			t.Errorf("%s: not fully persistent at 1024 sets", name)
		}
	}
}

func TestPaperTable1Embedded(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 6 {
		t.Fatalf("PaperTable1 rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.MDr > r.MD {
			t.Errorf("%s: published MDr %d > MD %d", r.Name, r.MDr, r.MD)
		}
		if r.PCB > r.ECB || r.UCB > r.ECB {
			t.Errorf("%s: published PCB/UCB exceed ECB", r.Name)
		}
	}
	// Spot-check the exact published values.
	if rows[0] != (Table1Row{"lcdnum", 984, 1440, 192, 20, 20, 20}) {
		t.Errorf("lcdnum row = %+v", rows[0])
	}
	if rows[4] != (Table1Row{"nsichneu", 22009, 147200, 147200, 256, 0, 256}) {
		t.Errorf("nsichneu row = %+v", rows[4])
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := extractAll(t, 256)
	b := extractAll(t, 256)
	for name := range a {
		ra, rb := a[name].Result, b[name].Result
		if ra.PD != rb.PD || ra.MD != rb.MD || ra.MDr != rb.MDr ||
			!ra.ECB.Equal(rb.ECB) || !ra.PCB.Equal(rb.PCB) || !ra.UCB.Equal(rb.UCB) {
			t.Errorf("%s: extraction not deterministic", name)
		}
	}
}
