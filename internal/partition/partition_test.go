package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// unassignedSet generates a task set and wipes its core assignments.
func unassignedSet(t *testing.T, seed int64, util float64, cores int) *taskmodel.TaskSet {
	t.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = cores
	cfg.TasksPerCore = 6
	cfg.CoreUtilization = util
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range ts.Tasks {
		task.Core = 0
	}
	return ts
}

func TestAssignRespectsCapacity(t *testing.T) {
	for _, h := range []Heuristic{FirstFit, WorstFit, CacheAware} {
		for seed := int64(0); seed < 10; seed++ {
			ts := unassignedSet(t, seed, 0.5, 4)
			if err := Assign(ts, h); err != nil {
				t.Fatalf("%v seed %d: %v", h, seed, err)
			}
			for c, u := range Loads(ts) {
				if u > 1.0+1e-9 {
					t.Fatalf("%v seed %d: core %d overloaded (%.3f)", h, seed, c, u)
				}
			}
			for _, task := range ts.Tasks {
				if task.Core < 0 || task.Core >= 4 {
					t.Fatalf("%v: task %q on core %d", h, task.Name, task.Core)
				}
			}
		}
	}
}

func TestWorstFitBalances(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ts := unassignedSet(t, seed, 0.4, 4)
		if err := Assign(ts, WorstFit); err != nil {
			t.Fatal(err)
		}
		loads := Loads(ts)
		minL, maxL := math.Inf(1), math.Inf(-1)
		for _, u := range loads {
			minL = math.Min(minL, u)
			maxL = math.Max(maxL, u)
		}
		// Worst-fit with decreasing utilizations keeps the spread below
		// the largest single task's utilization.
		var biggest float64
		for _, task := range ts.Tasks {
			biggest = math.Max(biggest, task.Utilization(ts.Platform.DMem))
		}
		if maxL-minL > biggest+1e-9 {
			t.Errorf("seed %d: load spread %.3f exceeds largest task %.3f", seed, maxL-minL, biggest)
		}
	}
}

func TestCacheAwareReducesOverlap(t *testing.T) {
	// Across seeds, the cache-aware heuristic must on aggregate produce
	// no more PCB∩ECB collisions than first-fit.
	var ffTotal, caTotal int
	for seed := int64(0); seed < 12; seed++ {
		ff := unassignedSet(t, seed, 0.4, 4)
		if err := Assign(ff, FirstFit); err != nil {
			t.Fatal(err)
		}
		ffTotal += OverlapScore(ff)

		ca := unassignedSet(t, seed, 0.4, 4)
		if err := Assign(ca, CacheAware); err != nil {
			t.Fatal(err)
		}
		caTotal += OverlapScore(ca)
	}
	if caTotal > ffTotal {
		t.Errorf("cache-aware overlap %d exceeds first-fit %d", caTotal, ffTotal)
	}
}

func TestAssignOverloadFails(t *testing.T) {
	n := 8
	plat := taskmodel.Platform{
		NumCores: 1,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     1, SlotSize: 1,
	}
	mk := func(prio int) *taskmodel.Task {
		return &taskmodel.Task{
			Name: "t", Core: 0, Priority: prio,
			PD: 60, MD: 0, MDr: 0, Period: 100, Deadline: 100,
			ECB: cacheset.New(n), UCB: cacheset.New(n), PCB: cacheset.New(n),
		}
	}
	ts := taskmodel.NewTaskSet(plat, []*taskmodel.Task{mk(0), mk(1)}) // 1.2 total
	for _, h := range []Heuristic{FirstFit, WorstFit, CacheAware} {
		if err := Assign(ts, h); err == nil {
			t.Errorf("%v: overloaded system accepted", h)
		}
	}
}

func TestHeuristicStrings(t *testing.T) {
	for h, want := range map[Heuristic]string{
		FirstFit: "first-fit", WorstFit: "worst-fit", CacheAware: "cache-aware",
		Heuristic(9): "Heuristic(9)",
	} {
		if got := h.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(h), got, want)
		}
	}
}

func TestAssignBadPlatform(t *testing.T) {
	ts := &taskmodel.TaskSet{Platform: taskmodel.Platform{NumCores: 0}}
	if err := Assign(ts, FirstFit); err == nil {
		t.Error("zero-core platform accepted")
	}
}
