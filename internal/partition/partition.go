// Package partition assigns tasks to cores. The paper partitions
// round-robin with a fixed count per core; this package adds the
// classic utilization-driven bin-packing heuristics plus a
// cache-aware variant that exploits the structure the persistence
// analysis rewards: co-locating tasks whose ECBs overlap a task's PCBs
// inflates its CPRO (Eq. 14) and its CRPD, so the cache-aware
// heuristic places each task on the core where its footprint collides
// least.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/cacheset"
	"repro/internal/taskmodel"
)

// Heuristic selects a placement strategy.
type Heuristic int

const (
	// FirstFit places each task (heaviest first) on the first core
	// whose utilization stays below the bound.
	FirstFit Heuristic = iota
	// WorstFit places each task on the least-loaded core, balancing
	// utilization.
	WorstFit
	// CacheAware places each task on the core minimising the overlap
	// between its PCB∪UCB footprint and the ECBs already resident
	// there, breaking ties by utilization.
	CacheAware
)

func (h Heuristic) String() string {
	switch h {
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	case CacheAware:
		return "cache-aware"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Assign partitions the tasks of ts onto its platform's cores, writing
// Task.Core. Tasks are considered in decreasing utilization order
// (decreasing-first packing). It fails if any core would exceed a
// utilization of 1.
func Assign(ts *taskmodel.TaskSet, h Heuristic) error {
	m := ts.Platform.NumCores
	if m < 1 {
		return fmt.Errorf("partition: platform has %d cores", m)
	}
	order := make([]*taskmodel.Task, len(ts.Tasks))
	copy(order, ts.Tasks)
	sort.SliceStable(order, func(a, b int) bool {
		return order[a].Utilization(ts.Platform.DMem) > order[b].Utilization(ts.Platform.DMem)
	})

	load := make([]float64, m)
	footprint := make([]cacheset.Set, m)
	for i := range footprint {
		footprint[i] = cacheset.New(ts.Platform.Cache.NumSets)
	}

	for _, t := range order {
		u := t.Utilization(ts.Platform.DMem)
		core := -1
		switch h {
		case FirstFit:
			for c := 0; c < m; c++ {
				if load[c]+u <= 1.0 {
					core = c
					break
				}
			}
		case WorstFit:
			best := 2.0
			for c := 0; c < m; c++ {
				if load[c]+u <= 1.0 && load[c] < best {
					best = load[c]
					core = c
				}
			}
		case CacheAware:
			// Sensitive footprint: the blocks whose eviction costs this
			// task reloads (PCBs between jobs, UCBs across preemptions).
			sensitive := t.PCB.Union(t.UCB)
			bestOverlap := 1 << 30
			bestLoad := 2.0
			for c := 0; c < m; c++ {
				if load[c]+u > 1.0 {
					continue
				}
				overlap := sensitive.IntersectCount(footprint[c]) + t.ECB.IntersectCount(footprint[c])
				if overlap < bestOverlap || (overlap == bestOverlap && load[c] < bestLoad) {
					bestOverlap = overlap
					bestLoad = load[c]
					core = c
				}
			}
		default:
			return fmt.Errorf("partition: unknown heuristic %d", int(h))
		}
		if core < 0 {
			return fmt.Errorf("partition: task %q (u=%.3f) fits no core under %s", t.Name, u, h)
		}
		t.Core = core
		load[core] += u
		footprint[core].UnionInPlace(t.ECB)
	}
	return nil
}

// Loads returns the per-core utilization after an assignment.
func Loads(ts *taskmodel.TaskSet) []float64 {
	out := make([]float64, ts.Platform.NumCores)
	for _, t := range ts.Tasks {
		out[t.Core] += t.Utilization(ts.Platform.DMem)
	}
	return out
}

// OverlapScore measures how much cache interference the partition
// invites: for each core, the number of (ordered) task pairs' ECB∩PCB
// collisions, summed. Lower is friendlier to the persistence-aware
// analysis.
func OverlapScore(ts *taskmodel.TaskSet) int {
	score := 0
	for c := 0; c < ts.Platform.NumCores; c++ {
		tasks := ts.OnCore(c)
		for _, a := range tasks {
			for _, b := range tasks {
				if a == b {
					continue
				}
				score += a.PCB.IntersectCount(b.ECB)
			}
		}
	}
	return score
}
