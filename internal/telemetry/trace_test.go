package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeTrace unmarshals an exported trace and returns its events.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestTraceRecorderExport(t *testing.T) {
	r := NewTraceRecorder()
	w := r.Track("worker-01")
	sp := w.Begin("analyze", "analyzer")
	time.Sleep(time.Millisecond)
	sp.EndArgs(map[string]any{"schedulable": true})
	w.Instant("abort", "analyzer", nil)
	r.Counters("analyzer", map[string]int64{"analyzer.runs": 1})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, map[string]any{"tool": "test"}); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	byPhase := map[string]int{}
	var span map[string]any
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		byPhase[ph]++
		if ph == "X" {
			span = ev
		}
	}
	// Two M thread_name events (main + worker), one X, one i (instant)
	// + one i (final telemetry), one C.
	if byPhase["M"] != 2 || byPhase["X"] != 1 || byPhase["C"] != 1 || byPhase["i"] != 2 {
		t.Errorf("phase counts = %v, want M:2 X:1 C:1 i:2", byPhase)
	}
	if span == nil {
		t.Fatal("no complete event found")
	}
	if dur, _ := span["dur"].(float64); dur < 500 { // slept 1ms = 1000us
		t.Errorf("span dur = %v us, want >= 500", span["dur"])
	}
	if ts, _ := span["ts"].(float64); ts < 0 {
		t.Errorf("span ts = %v, want >= 0", ts)
	}
	if name, _ := span["name"].(string); name != "analyze" {
		t.Errorf("span name = %q", name)
	}
	// The final telemetry instant must carry the args through.
	last := events[len(events)-1]
	if last["name"] != "telemetry" {
		t.Fatalf("last event = %v, want telemetry instant", last["name"])
	}
	args := last["args"].(map[string]any)
	if args["tool"] != "test" {
		t.Errorf("final args = %v", args)
	}
	if _, ok := args["dropped_events"]; !ok {
		t.Error("final args missing dropped_events")
	}
}

func TestTraceRecorderConcurrentSpans(t *testing.T) {
	r := NewTraceRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := r.Track("w")
			for i := 0; i < 100; i++ {
				tr.Begin("s", "c").End()
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	spans := 0
	for _, ev := range events {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans != 400 {
		t.Errorf("spans = %d, want 400", spans)
	}
}

func TestNilTrackNoOps(t *testing.T) {
	var r *TraceRecorder
	tr := r.Track("x")
	if tr != nil {
		t.Fatal("nil recorder returned non-nil track")
	}
	tr.Begin("a", "b").End() // must not panic
	tr.Instant("i", "c", nil)
	r.Counters("c", nil)
	if r.Main() != nil {
		t.Error("nil recorder Main() != nil")
	}
}

func TestConvergenceLogRender(t *testing.T) {
	l := NewConvergenceLog()
	l.Step("t1", 1, 100, "BAS")
	l.Step("t1", 1, 140, "BAS")
	l.Step("t1", 1, 150, "Remote[1]")
	l.Finish("t1", 1, true)
	l.Step("t2", 2, 900, "CorePreemption")
	l.Finish("t2", 2, false)

	traces := l.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if !traces[0].Converged || traces[1].Converged {
		t.Errorf("verdicts wrong: %+v", traces)
	}
	if len(traces[0].Steps) != 3 {
		t.Errorf("t1 steps = %d, want 3", len(traces[0].Steps))
	}
	var b strings.Builder
	if err := l.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"t1", "100 [BAS] -> 140 -> 150 [Remote[1]]", "NOT converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
