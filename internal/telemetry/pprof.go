package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Runtime/pprof profile plumbing, folded into the telemetry lifecycle
// so the -cpuprofile/-memprofile flags of the command-line tools share
// a Session with counters and traces. The profiles are the intended
// input of `go tool pprof` when chasing analyzer regressions (see
// DESIGN.md, "Breakpoint-jumping fixed point").

// StartProfiles begins CPU profiling to cpuPath (if non-empty) and
// returns a stop function that ends the CPU profile and writes a heap
// profile to memPath (if non-empty). The stop function must run before
// the process exits — including early os.Exit paths — or the CPU
// profile is truncated and the heap profile never written. Either path
// may be empty; with both empty, StartProfiles is a no-op returning a
// no-op stop.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("telemetry: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("telemetry: %w", err)
			}
			// An up-to-date heap profile needs the dead objects of the
			// just-finished run collected first.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("telemetry: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("telemetry: %w", err)
			}
		}
		return nil
	}, nil
}
