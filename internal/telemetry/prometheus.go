package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format 0.0.4) over the fixed metric
// inventory. The encoder is deliberately dependency-free: the counter
// and histogram sets are small and static, so the whole exposition is
// a deterministic walk over the enums — every scrape emits the same
// series in the same order, zeros included, which keeps rate() and
// histogram_quantile() well-defined from the first scrape on.
//
// Name mapping: internal dotted names become Prometheus names by
// replacing '.' and '-' with '_' ("server.cache_hits" =>
// "server_cache_hits"). Histograms keep their explicit unit suffix
// (..._us = microseconds); bucket upper bounds are the inclusive
// integer tops of the log2 buckets (le="0", "1", "3", "7", ...,
// "2^30-1", "+Inf"), exact for the integer observations Histogram
// records. The top log2 bucket is unbounded and therefore only
// contributes to le="+Inf".

// PromGauge is one gauge sample attached to an exposition — a
// point-in-time value (in-flight requests, queue depth) the caller
// reads at scrape time, unlike the monotone counters Metrics
// accumulates.
type PromGauge struct {
	Name  string // internal dotted name, sanitized like counter names
	Help  string // optional # HELP line
	Value int64
}

// ContentTypePrometheus is the scrape Content-Type of the 0.0.4 text
// exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every counter, the given gauges and every
// histogram in the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer, gauges []PromGauge) error {
	bw := bufio.NewWriter(w)
	for c := Counter(0); c < numCounters; c++ {
		name := promName(c.String())
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, m.Get(c))
	}
	for _, g := range gauges {
		name := promName(g.Name)
		if g.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, g.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for h := HistID(0); h < numHists; h++ {
		s := m.hists[h].Snapshot()
		name := promName(h.String())
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum int64
		for k := 0; k < histBuckets-1; k++ {
			if k < len(s.Buckets) {
				cum += s.Buckets[k]
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(k), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
	}
	return bw.Flush()
}

// bucketUpper is the inclusive integer upper bound of log2 bucket k:
// bucket 0 holds only zeros, bucket k >= 1 holds [2^(k-1), 2^k) whose
// integer members are all <= 2^k - 1.
func bucketUpper(k int) int64 {
	if k == 0 {
		return 0
	}
	return int64(1)<<k - 1
}

func promName(s string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(s)
}
