package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if counterNames[c] == "" {
			t.Errorf("counter %d has no name", int(c))
		}
	}
	for h := HistID(0); h < numHists; h++ {
		if histNames[h] == "" {
			t.Errorf("histogram %d has no name", int(h))
		}
	}
}

func TestMetricsConcurrentAdds(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(CtrOuterRounds, 1)
				m.Observe(HistInnerIters, int64(i%7))
			}
		}()
	}
	wg.Wait()
	if got := m.Get(CtrOuterRounds); got != 8000 {
		t.Errorf("CtrOuterRounds = %d, want 8000", got)
	}
	if got := m.Hist(HistInnerIters).Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 8, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Max != 100 {
		t.Errorf("max = %d, want 100", s.Max)
	}
	// -5 clamps to 0: sum = 0+1+1+3+8+100+0.
	if s.Sum != 113 {
		t.Errorf("sum = %d, want 113", s.Sum)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
}

// TestHistogramObserveBucketBoundaries audits the bucket map of
// Observe one value at a time: bucket k is bits.Len64(v), so bucket 0
// holds only zeros (and clamped negatives), bucket k >= 1 holds
// [2^(k-1), 2^k), and the top bucket absorbs everything at or above
// 2^(histBuckets-1) instead of indexing out of range.
func TestHistogramObserveBucketBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		v      int64
		bucket int
		sum    int64 // after clamping
	}{
		{"zero", 0, 0, 0},
		{"negative clamps to zero", -17, 0, 0},
		{"one", 1, 1, 1},
		{"two", 2, 2, 2},
		{"bucket 2 upper edge", 3, 2, 3},
		{"bucket 3 lower edge", 4, 3, 4},
		{"power of two minus one", 1<<10 - 1, 10, 1<<10 - 1},
		{"power of two", 1 << 10, 11, 1 << 10},
		{"top bucket lower edge", 1 << (histBuckets - 2), histBuckets - 1, 1 << (histBuckets - 2)},
		{"first overflowing value", 1 << (histBuckets - 1), histBuckets - 1, 1 << (histBuckets - 1)},
		{"deep overflow", 1 << 50, histBuckets - 1, 1 << 50},
		{"max int64", math.MaxInt64, histBuckets - 1, math.MaxInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			h.Observe(tc.v)
			s := h.Snapshot()
			if s.Count != 1 {
				t.Fatalf("count = %d, want 1", s.Count)
			}
			if s.Sum != tc.sum {
				t.Errorf("sum = %d, want %d", s.Sum, tc.sum)
			}
			if s.Max != tc.sum {
				t.Errorf("max = %d, want %d", s.Max, tc.sum)
			}
			// Snapshot trims trailing zero buckets, so the single
			// observation's bucket must be the last one.
			if len(s.Buckets) != tc.bucket+1 {
				t.Fatalf("observation landed in bucket %d, want %d (buckets: %v)",
					len(s.Buckets)-1, tc.bucket, s.Buckets)
			}
			if s.Buckets[tc.bucket] != 1 {
				t.Errorf("bucket %d = %d, want 1 (buckets: %v)", tc.bucket, s.Buckets[tc.bucket], s.Buckets)
			}
		})
	}
}

func TestCountersMapOmitsZeros(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrRuns, 3)
	c := m.Counters()
	if len(c) != 1 || c["analyzer.runs"] != 3 {
		t.Errorf("Counters() = %v, want only analyzer.runs=3", c)
	}
}

func TestWriteSummary(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrBreakpointSnaps, 42)
	m.Observe(HistOuterRounds, 5)
	var b strings.Builder
	if err := m.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fp.breakpoint_snaps", "42", "analyzer.outer_rounds_per_run"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	o.Add(CtrRuns, 1)
	o.Observe(HistInnerIters, 1)
	sp := o.Span("x", "y")
	sp.End()
	if o.Tracing() || o.ConvergenceOn() {
		t.Error("nil observer reports instrumentation enabled")
	}
	if o.WithTrack("w") != nil {
		t.Error("nil observer WithTrack != nil")
	}
	var l *ConvergenceLog
	l.Step("t", 1, 2, "BAS")
	l.Finish("t", 1, true)
	if l.Traces() != nil {
		t.Error("nil log has traces")
	}
}
