package telemetry

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// SessionOptions selects which instrumentation a command-line run
// collects. The zero value disables everything (Observer() returns
// nil, Close is a no-op) so commands can wire the session
// unconditionally.
type SessionOptions struct {
	// Tool names the process in logs and trace metadata.
	Tool string
	// CPUProfile/MemProfile are runtime/pprof output paths (empty =
	// off), matching the tools' historical -cpuprofile/-memprofile
	// flags.
	CPUProfile, MemProfile string
	// TracePath enables span recording and names the Chrome
	// trace-event JSON file written on Close.
	TracePath string
	// Metrics enables counters/histograms and a summary table on
	// Close. Implied by TracePath: an exported trace always embeds the
	// counter snapshot.
	Metrics bool
	// Convergence enables per-task convergence traces, rendered on
	// Close.
	Convergence bool
	// Verbose installs a Debug-level slog text handler as the default
	// logger, turning the tools' slog.Debug chatter on.
	Verbose bool
	// Out receives the metrics summary and convergence report
	// (default os.Stderr).
	Out io.Writer
}

// Session owns one run's instrumentation lifecycle: pprof profiles,
// the metrics sink, the trace recorder and the convergence log start
// together at StartSession and flush together at Close.
type Session struct {
	opts     SessionOptions
	obs      *Observer
	stopProf func() error
	closed   bool
}

// StartSession starts profiling and allocates the enabled sinks.
func StartSession(opts SessionOptions) (*Session, error) {
	if opts.Out == nil {
		opts.Out = os.Stderr
	}
	if opts.Verbose {
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})))
		slog.Debug("telemetry session starting", "tool", opts.Tool,
			"trace", opts.TracePath, "metrics", opts.Metrics)
	}
	stop, err := StartProfiles(opts.CPUProfile, opts.MemProfile)
	if err != nil {
		return nil, err
	}
	s := &Session{opts: opts, stopProf: stop}
	obs := &Observer{}
	if opts.Metrics || opts.TracePath != "" {
		obs.Metrics = NewMetrics()
	}
	if opts.TracePath != "" {
		obs.Trace = NewTraceRecorder()
	}
	if opts.Convergence {
		obs.Convergence = NewConvergenceLog()
	}
	if obs.Metrics != nil || obs.Trace != nil || obs.Convergence != nil {
		s.obs = obs
	}
	return s, nil
}

// Observer returns the session's observer, or nil when no sink is
// enabled — the nil keeps the analyzer hot path entirely
// uninstrumented.
func (s *Session) Observer() *Observer { return s.obs }

// Close flushes everything: stops profiles, writes the trace file
// (embedding the final counter snapshot and a Perfetto counter track),
// prints the metrics summary and renders the convergence report.
// Close is idempotent.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	if err := s.stopProf(); err != nil {
		errs = append(errs, err)
	}
	if s.obs != nil && s.obs.Trace != nil && s.opts.TracePath != "" {
		var final map[string]any
		if s.obs.Metrics != nil {
			counters := s.obs.Metrics.Counters()
			s.obs.Trace.Counters("analyzer", counters)
			final = map[string]any{"tool": s.opts.Tool, "counters": counters}
		}
		f, err := os.Create(s.opts.TracePath)
		if err != nil {
			errs = append(errs, err)
		} else {
			if err := s.obs.Trace.WriteJSON(f, final); err != nil {
				errs = append(errs, err)
			}
			if err := f.Close(); err != nil {
				errs = append(errs, err)
			}
			fmt.Fprintf(s.opts.Out, "%s: wrote trace %s (open at ui.perfetto.dev)\n", s.opts.Tool, s.opts.TracePath)
		}
	}
	if s.opts.Metrics && s.obs != nil && s.obs.Metrics != nil {
		fmt.Fprintf(s.opts.Out, "\n%s telemetry:\n", s.opts.Tool)
		if err := s.obs.Metrics.WriteSummary(s.opts.Out); err != nil {
			errs = append(errs, err)
		}
	}
	if s.opts.Convergence && s.obs != nil && s.obs.Convergence != nil {
		fmt.Fprintf(s.opts.Out, "\nconvergence traces:\n")
		if err := s.obs.Convergence.Render(s.opts.Out); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
