package telemetry

import (
	"math"
	"testing"
)

// TestQuantileEmpty: an empty histogram answers 0 for every q rather
// than NaN or a panic.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestQuantileSingleObservation: with one observation every quantile
// is that value exactly — the interpolated estimate lands on the
// bucket top and the Max clamp pulls it back to the observation,
// including for zero, bucket-boundary powers of two, and values deep
// in the unbounded top bucket.
func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 64, 100, 1<<30 - 1, 1 << 30, 1 << 50, math.MaxInt64} {
		var h Histogram
		h.Observe(v)
		s := h.Snapshot()
		for _, q := range []float64{0, 0.01, 0.5, 0.95, 0.99, 1} {
			if got := s.Quantile(q); got != float64(v) {
				t.Errorf("single obs %d: Quantile(%v) = %v, want %d", v, q, got, v)
			}
		}
	}
}

// TestQuantileTopBucketOverflow: observations at or above 2^31 all
// share the unbounded top log2 bucket; quantile estimates must stay
// within [2^30, Max] and reach Max at q=1.
func TestQuantileTopBucketOverflow(t *testing.T) {
	var h Histogram
	h.Observe(1 << 35)
	h.Observe(1 << 40)
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	lo := float64(int64(1) << 30)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(q)
		if got < lo || got > float64(s.Max) {
			t.Errorf("overflow Quantile(%v) = %v, want within [%v, %v]", q, got, lo, float64(s.Max))
		}
	}
	if got := s.Quantile(1); got != float64(math.MaxInt64) {
		t.Errorf("Quantile(1) = %v, want Max", got)
	}
}

// TestQuantileBucketBoundaries: a distribution built from exact
// power-of-two boundary values. Each observation is alone in its
// bucket, so the nearest-rank bucket selection is fully determined
// and the estimate must land inside that observation's bucket.
func TestQuantileBucketBoundaries(t *testing.T) {
	var h Histogram
	values := []int64{0, 1, 2, 4, 8} // buckets 0,1,2,3,4
	for _, v := range values {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q      float64
		lo, hi float64 // estimate must fall in [lo, hi]
	}{
		{0.0, 0, 0},  // rank 1 -> bucket 0 (the zero)
		{0.2, 0, 0},  // rank 1
		{0.21, 1, 2}, // rank 2 -> bucket of value 1
		{0.4, 1, 2},  // rank 2
		{0.6, 2, 4},  // rank 3 -> bucket of value 2
		{0.8, 4, 8},  // rank 4 -> bucket of value 4
		{0.81, 8, 8}, // rank 5 -> bucket of value 8, clamped to Max
		{1.0, 8, 8},  // Max exactly
	}
	for _, tc := range cases {
		got := s.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", tc.q, got, tc.lo, tc.hi)
		}
	}
}

// TestQuantileMonotone: estimates never decrease as q grows.
func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		prev = got
	}
	// The uniform 1..1000 median is 500; the log2 estimate must land
	// in its bucket [256, 512).
	if p50 := s.Quantile(0.5); p50 < 256 || p50 >= 512 {
		t.Errorf("uniform p50 = %v, want within [256, 512)", p50)
	}
	if p100 := s.Quantile(1); p100 != 1000 {
		t.Errorf("p100 = %v, want 1000", p100)
	}
}

// TestHistSnapshotSub: interval deltas subtract counts, sums and
// buckets; Max stays cumulative; quantiles work on the delta.
func TestHistSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(4)
	h.Observe(1000)
	before := h.Snapshot()
	h.Observe(7)
	h.Observe(7)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Sum != 14 {
		t.Errorf("delta count=%d sum=%d, want 2/14", d.Count, d.Sum)
	}
	if d.Mean != 7 {
		t.Errorf("delta mean = %v, want 7", d.Mean)
	}
	if d.Max != 1000 {
		t.Errorf("delta max = %d, want cumulative 1000", d.Max)
	}
	var total int64
	for _, b := range d.Buckets {
		total += b
	}
	if total != 2 {
		t.Errorf("delta bucket total = %d, want 2", total)
	}
	// Both interval observations were 7 (bucket [4,8)); the estimate
	// must land there.
	if p := d.Quantile(0.5); p < 4 || p > 8 {
		t.Errorf("delta p50 = %v, want within [4, 8]", p)
	}
}
