package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Per-task convergence traces: the sequence of response-time iterates
// the inner fixed point visited, each annotated with the interference
// term that dominated the recurrence right-hand side at that iterate.
// Term names follow the Explanation decomposition of
// internal/core/explain.go — CorePreemption, BAS, Remote[y], SlotWait,
// Blocking — so a trace reads as "which Eq. (19) term pushed the bound
// up at this step".

// ConvergenceStep is one recorded iterate.
type ConvergenceStep struct {
	// Iterate is the recurrence value f(r) computed at this step.
	Iterate int64
	// Dominant names the largest interference term at the previous
	// iterate (explain.go naming).
	Dominant string
}

// TaskTrace is the full recorded iterate chain of one task, spanning
// every analysis of the task across outer rounds.
type TaskTrace struct {
	Task     string
	Priority int
	Steps    []ConvergenceStep
	// Converged reports the verdict of the task's last analysis: true
	// when the inner fixed point converged at or below the deadline.
	Converged bool
}

// ConvergenceLog records task traces. Safe for concurrent use; traces
// of tasks with the same name (across task sets of a batch) are merged,
// which keeps the log meaningful for its intended single-task-set use
// (cmd/buscon) without breaking batch runs.
type ConvergenceLog struct {
	mu    sync.Mutex
	order []string
	byKey map[string]*TaskTrace
	// maxSteps bounds a single task's recorded steps (0 = default).
	maxSteps int
}

// defaultMaxSteps bounds one task's trace; the event-driven iteration
// converges in at most one step per breakpoint region, so real chains
// are far shorter.
const defaultMaxSteps = 4096

// NewConvergenceLog returns an empty log.
func NewConvergenceLog() *ConvergenceLog {
	return &ConvergenceLog{byKey: make(map[string]*TaskTrace), maxSteps: defaultMaxSteps}
}

func (l *ConvergenceLog) trace(task string, prio int) *TaskTrace {
	t, ok := l.byKey[task]
	if !ok {
		t = &TaskTrace{Task: task, Priority: prio}
		l.byKey[task] = t
		l.order = append(l.order, task)
	}
	return t
}

// Step appends one iterate to the task's trace.
func (l *ConvergenceLog) Step(task string, prio int, iterate int64, dominant string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	t := l.trace(task, prio)
	if len(t.Steps) < l.maxSteps {
		t.Steps = append(t.Steps, ConvergenceStep{Iterate: iterate, Dominant: dominant})
	}
	l.mu.Unlock()
}

// Finish records the verdict of the task's latest analysis.
func (l *ConvergenceLog) Finish(task string, prio int, converged bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.trace(task, prio).Converged = converged
	l.mu.Unlock()
}

// Traces returns the recorded traces in first-seen order.
func (l *ConvergenceLog) Traces() []*TaskTrace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*TaskTrace, 0, len(l.order))
	for _, k := range l.order {
		out = append(out, l.byKey[k])
	}
	return out
}

// Render writes the traces as a compact human-readable report: one
// line per task with the iterate chain and the dominating term where
// it changes.
func (l *ConvergenceLog) Render(w io.Writer) error {
	for _, t := range l.Traces() {
		verdict := "converged"
		if !t.Converged {
			verdict = "NOT converged"
		}
		fmt.Fprintf(w, "%s (prio %d, %d steps, %s):\n", t.Task, t.Priority, len(t.Steps), verdict)
		var b strings.Builder
		prevDom := ""
		for i, s := range t.Steps {
			if i > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%d", s.Iterate)
			if s.Dominant != prevDom {
				fmt.Fprintf(&b, " [%s]", s.Dominant)
				prevDom = s.Dominant
			}
		}
		if _, err := fmt.Fprintf(w, "  %s\n", b.String()); err != nil {
			return err
		}
	}
	return nil
}
