package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSessionDisabledIsNoOp(t *testing.T) {
	s, err := StartSession(SessionOptions{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Observer() != nil {
		t.Error("disabled session has an observer")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestSessionFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	s, err := StartSession(SessionOptions{
		Tool: "test", TracePath: trace, Metrics: true, Convergence: true, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := s.Observer()
	if obs == nil || obs.Metrics == nil || obs.Trace == nil || obs.Convergence == nil {
		t.Fatalf("observer sinks missing: %+v", obs)
	}
	obs.Add(CtrRuns, 2)
	obs.Span("work", "test").End()
	obs.Convergence.Step("t", 1, 10, "BAS")
	obs.Convergence.Finish("t", 1, true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	events := decodeTrace(t, data)
	found := false
	for _, ev := range events {
		if ev["name"] == "telemetry" {
			args := ev["args"].(map[string]any)
			counters := args["counters"].(map[string]any)
			if counters["analyzer.runs"].(float64) != 2 {
				t.Errorf("embedded counters = %v", counters)
			}
			found = true
		}
	}
	if !found {
		t.Error("trace missing telemetry snapshot event")
	}
	for _, want := range []string{"analyzer.runs", "convergence traces", "t (prio 1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("session output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSessionObserverMetricsOnlyWithTrace(t *testing.T) {
	// TracePath implies metrics so the exported trace can embed the
	// counter snapshot even without -metrics.
	s, err := StartSession(SessionOptions{Tool: "t", TracePath: filepath.Join(t.TempDir(), "x.json"), Out: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Observer() == nil || s.Observer().Metrics == nil {
		t.Fatal("trace-only session should still collect metrics")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Profile lifecycle tests, carried over from the former
// internal/profiling package the Session absorbed.

func TestStartProfilesWritesBoth(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartProfilesNoOp(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}
