package telemetry

import "math"

// Quantile estimation from log2 bucket counts. A log2 histogram cannot
// reproduce exact order statistics, but it brackets them: the rank-r
// observation lies inside a known power-of-two bucket, and linear
// interpolation inside that bucket bounds the error by the bucket
// width (a factor of two). That is plenty for latency reporting —
// p50/p95/p99 read off the same buckets /metrics already exports.

// Quantile estimates the q-quantile of the observed distribution:
// nearest-rank (rank = ceil(q·count), clamped to [1, count]) on the
// cumulative bucket counts, linearly interpolated inside the
// containing bucket and clamped to the recorded Max. Properties the
// tests pin: an empty histogram returns 0 for every q; a single
// observation returns exactly that value for every q; q >= 1 returns
// Max exactly; estimates are nondecreasing in q; top-bucket overflow
// values (>= 2^31 for 32 buckets) never exceed Max.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for k, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketSpan(k)
			if k == histBuckets-1 && float64(s.Max) > hi {
				// The top bucket is unbounded; stretch it to the
				// recorded max so deep-overflow observations stay
				// reachable.
				hi = float64(s.Max)
			}
			v := lo + float64(rank-cum)/float64(c)*(hi-lo)
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum += c
	}
	return float64(s.Max)
}

// bucketSpan returns the value range covered by log2 bucket k: bucket
// 0 holds exactly zero, bucket k >= 1 holds [2^(k-1), 2^k).
func bucketSpan(k int) (lo, hi float64) {
	if k <= 0 {
		return 0, 0
	}
	return float64(int64(1) << (k - 1)), float64(int64(1) << k)
}

// Sub returns the distribution of observations recorded between prev
// and s (two snapshots of the same histogram, prev taken first):
// count, sum and bucket counts subtract; Max stays the cumulative max,
// since a log2 histogram cannot retire old observations. Quantile on
// the result estimates interval latencies — the building block of
// rolling rate reports (Roller) and loadgen's server-side cross-check.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum, Max: s.Max}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	out.Buckets = append([]int64(nil), s.Buckets...)
	for i := range prev.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] -= prev.Buckets[i]
		}
	}
	last := -1
	for i, b := range out.Buckets {
		if b != 0 {
			last = i
		}
	}
	out.Buckets = out.Buckets[:last+1]
	return out
}
