package telemetry

import "time"

// Rolling snapshot deltas: Metrics accumulates monotone totals, but a
// live operator (buscond -stats-every, loadgen progress lines) wants
// rates — what happened since the last look. A Roller remembers the
// previous snapshot and returns the difference, so counters divide by
// Elapsed into per-second rates and interval histograms answer "what
// was p99 over the last tick", not "since process start".

// Roller tracks one Metrics sink and produces interval deltas. Not
// safe for concurrent use; one Roller belongs to one reporting loop.
type Roller struct {
	m    *Metrics
	now  func() time.Time
	last time.Time
	ctr  [numCounters]int64
	hist [numHists]HistSnapshot
}

// RollDelta is what changed between two Roll calls.
type RollDelta struct {
	// Elapsed is the wall clock covered by this interval.
	Elapsed time.Duration
	// Counters holds the nonzero counter increments keyed by name.
	Counters map[string]int64
	// Hists holds interval snapshots (count/sum/buckets are deltas,
	// Max is cumulative — see HistSnapshot.Sub) of histograms that saw
	// observations, keyed by name.
	Hists map[string]HistSnapshot
}

// Rate divides a counter's interval increment into a per-second rate.
func (d RollDelta) Rate(name string) float64 {
	if d.Elapsed <= 0 {
		return 0
	}
	return float64(d.Counters[name]) / d.Elapsed.Seconds()
}

// NewRoller starts a roller whose baseline is the metrics' current
// state — the first Roll reports only what happens after this call.
func NewRoller(m *Metrics) *Roller { return newRoller(m, time.Now) }

func newRoller(m *Metrics, now func() time.Time) *Roller {
	r := &Roller{m: m, now: now, last: now()}
	for c := range r.ctr {
		r.ctr[c] = m.Get(Counter(c))
	}
	for h := range r.hist {
		r.hist[h] = m.hists[h].Snapshot()
	}
	return r
}

// Roll returns the delta since the previous Roll (or NewRoller) and
// advances the baseline. Concurrent writers keep writing while the
// snapshot walks the sinks, so an observation can straddle two
// intervals — totals stay exact, attribution is best-effort.
func (r *Roller) Roll() RollDelta {
	t := r.now()
	d := RollDelta{
		Elapsed:  t.Sub(r.last),
		Counters: make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	r.last = t
	for c := 0; c < int(numCounters); c++ {
		v := r.m.Get(Counter(c))
		if dv := v - r.ctr[c]; dv != 0 {
			d.Counters[Counter(c).String()] = dv
		}
		r.ctr[c] = v
	}
	for h := 0; h < int(numHists); h++ {
		s := r.m.hists[h].Snapshot()
		if ds := s.Sub(r.hist[h]); ds.Count != 0 {
			d.Hists[HistID(h).String()] = ds
		}
		r.hist[h] = s
	}
	return d
}
