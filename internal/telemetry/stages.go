package telemetry

import (
	"sync/atomic"
	"time"
)

// Per-request stage timing. The serving layer (internal/server) splits
// one analysis request's lifecycle into a fixed set of stages; a
// StageTimer accumulates the wall clock each stage consumed and, on
// Finish, flushes the durations into the shared stage histograms (in
// microseconds) so /metrics can answer "where do requests spend their
// time" without any per-request state surviving the request.

// Stage is one segment of an analysis request's lifecycle. A request
// visits a subset of the stages depending on its outcome: a cache hit
// sees only StageCache, a coalesced follower StageCache+StageCoalesce,
// a flight leader everything but StageCoalesce.
type Stage int

const (
	// StageQueue is the wait for an engine worker slot after admission
	// (a ticket was available, the semaphore was not).
	StageQueue Stage = iota
	// StageCache is canonical-key computation plus result-cache
	// lookups and fills, including the leader's post-leadership
	// double-check.
	StageCache
	// StageCoalesce is a follower's wait for an identical in-flight
	// request's result.
	StageCoalesce
	// StageProxy is the round trip to a key's owning peer node
	// (internal/cluster shard-owner routing), including a failed
	// attempt that degraded to local compute.
	StageProxy
	// StageAnalyze is the engine invocation, content-addressed memo
	// lookups included.
	StageAnalyze
	// StageMarshal is result marshaling and the response write.
	StageMarshal

	// NumStages bounds the stage enum; StageTimer and the access log
	// size their arrays with it.
	NumStages
)

var stageNames = [NumStages]string{
	StageQueue:    "queue",
	StageCache:    "cache",
	StageCoalesce: "coalesce",
	StageProxy:    "proxy",
	StageAnalyze:  "analyze",
	StageMarshal:  "marshal",
}

func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return "stage(?)"
}

// Hist returns the shared histogram the stage's durations flush into.
func (s Stage) Hist() HistID {
	switch s {
	case StageQueue:
		return HistStageQueue
	case StageCache:
		return HistStageCache
	case StageCoalesce:
		return HistStageCoalesce
	case StageProxy:
		return HistStageProxy
	case StageAnalyze:
		return HistStageAnalyze
	case StageMarshal:
		return HistStageMarshal
	}
	return -1
}

// StageTimer accumulates one request's per-stage durations. The nil
// timer (returned by StartStages on an observer without metrics) is a
// no-op that never reads the clock, preserving the zero-overhead-when-
// disabled contract. Charging is safe for concurrent use — the items
// of one batch request share their HTTP request's timer — but Finish
// must happen once, after all charging goroutines are done.
type StageTimer struct {
	obs   *Observer
	start time.Time
	durs  [NumStages]atomic.Int64 // nanoseconds
}

// StartStages opens a stage timer whose total-request clock starts
// now. Nil-safe; returns nil when no metrics sink is attached.
func (o *Observer) StartStages() *StageTimer {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return &StageTimer{obs: o, start: time.Now()}
}

// Now reads the clock for a later AddSince, or returns the zero time
// on a nil timer so disabled instrumentation costs one branch.
func (t *StageTimer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// AddSince charges the time elapsed since t0 to the stage. Stages may
// be charged repeatedly (the cache stage runs once per lookup); the
// durations accumulate.
func (t *StageTimer) AddSince(s Stage, t0 time.Time) {
	if t == nil || s < 0 || s >= NumStages {
		return
	}
	t.durs[s].Add(int64(time.Since(t0)))
}

// Add charges an explicit duration to the stage.
func (t *StageTimer) Add(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= NumStages {
		return
	}
	t.durs[s].Add(int64(d))
}

// Finish flushes the accumulated stage durations into the shared
// histograms (microseconds; stages never visited are not observed, so
// each stage histogram's count equals the number of requests that
// actually passed through it) plus the whole-request histogram, and
// returns the recorded durations for the access log. Nil-safe: a nil
// timer returns the zero array.
func (t *StageTimer) Finish() [NumStages]time.Duration {
	var durs [NumStages]time.Duration
	if t == nil {
		return durs
	}
	for s := Stage(0); s < NumStages; s++ {
		durs[s] = time.Duration(t.durs[s].Load())
		if durs[s] > 0 {
			t.obs.Observe(s.Hist(), durs[s].Microseconds())
		}
	}
	t.obs.Observe(HistRequestTotal, time.Since(t.start).Microseconds())
	return durs
}
