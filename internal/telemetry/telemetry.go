// Package telemetry is the zero-overhead-when-disabled instrumentation
// layer of the analyzer and its front-ends. It provides three sinks
// sharing one lifecycle (Session):
//
//   - Metrics — atomic counters and log2 histograms for the hot path:
//     outer rounds, breakpoint snaps, cursor reseeds, curve-cache
//     hits/misses, abort reasons, pool memoization hits.
//   - TraceRecorder — span-based timing exported as Chrome trace-event
//     JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing,
//     with spans for per-task analysis, per-level curve construction
//     and per-request sweep work.
//   - ConvergenceLog — per-task response-time iterate chains with the
//     dominating interference term at each step.
//
// The analyzer consumes all three through Observer, an aggregate whose
// nil value (and any nil component) disables the corresponding
// instrumentation: internal/core guards every hot-path hook with a
// single nil check, so a nil Observer leaves the allocation-free inner
// loop untouched (pinned by core's TestResponseTimeZeroAlloc).
// Profiling (runtime/pprof CPU and heap profiles) is folded into the
// same Session so commands wire one lifecycle, not three.
package telemetry

// Observer aggregates the instrumentation sinks the analyzer reports
// into. Any field may be nil to disable that sink; a nil *Observer
// disables everything. Observers are cheap headers over shared sinks:
// WithTrack derives per-worker observers that share Metrics and
// Convergence but write spans to their own trace track.
type Observer struct {
	Metrics     *Metrics
	Trace       *TraceRecorder
	Convergence *ConvergenceLog

	// track receives this observer's spans; nil falls back to the
	// recorder's main track.
	track *Track
}

// New returns an Observer collecting metrics only — the cheapest
// useful configuration, and the one tests assert counters through.
func New() *Observer { return &Observer{Metrics: NewMetrics()} }

// WithTrack returns a copy of o whose spans land on a new trace track
// with the given name. Without a trace recorder (or on a nil o) it
// returns o unchanged.
func (o *Observer) WithTrack(name string) *Observer {
	if o == nil || o.Trace == nil {
		return o
	}
	c := *o
	c.track = o.Trace.Track(name)
	return &c
}

// Add increments a counter. Nil-safe.
func (o *Observer) Add(c Counter, d int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Add(c, d)
}

// Observe records a histogram value. Nil-safe.
func (o *Observer) Observe(h HistID, v int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Observe(h, v)
}

// Span opens a span on the observer's track (or the recorder's main
// track). Nil-safe: without a trace recorder the returned Span is a
// no-op.
func (o *Observer) Span(name, cat string) Span {
	if o == nil || o.Trace == nil {
		return Span{}
	}
	if o.track != nil {
		return o.track.Begin(name, cat)
	}
	return o.Trace.Main().Begin(name, cat)
}

// Tracing reports whether spans are being recorded — call sites use it
// to skip building span names.
func (o *Observer) Tracing() bool { return o != nil && o.Trace != nil }

// ConvergenceOn reports whether per-task convergence traces are being
// recorded.
func (o *Observer) ConvergenceOn() bool { return o != nil && o.Convergence != nil }
