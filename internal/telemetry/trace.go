package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Span-based timing, exported in the Chrome trace-event JSON format
// (the JSON flavour Perfetto and chrome://tracing load directly).
// Spans are recorded as complete ("X") events with microsecond
// timestamps relative to the recorder's start; tracks map to trace
// threads, named via "M" thread_name metadata events, so each batch
// worker renders as its own swimlane.
//
// The recorder buffers events in memory behind one mutex — spans are
// per-task-analysis, per-curve-build and per-sweep-request, never
// per-inner-iterate, so contention stays negligible next to the work
// being timed. maxTraceEvents bounds the buffer; events beyond it are
// counted and reported in the export instead of silently vanishing.

// maxTraceEvents caps the in-memory event buffer (~1M events ≈ a few
// hundred MB of JSON; big sweeps should sample with -tasksets).
const maxTraceEvents = 1 << 20

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceRecorder collects trace events for one observed run.
type TraceRecorder struct {
	mu      sync.Mutex
	start   time.Time
	pid     int
	nextTID int
	events  []traceEvent
	dropped int64
	main    *Track
}

// NewTraceRecorder returns a recorder whose clock starts now, with a
// default "main" track for spans not attributed to a specific worker.
func NewTraceRecorder() *TraceRecorder {
	r := &TraceRecorder{start: time.Now(), pid: os.Getpid()}
	r.main = r.Track("main")
	return r
}

// now returns the trace-relative timestamp in microseconds.
func (r *TraceRecorder) now() float64 {
	return float64(time.Since(r.start)) / float64(time.Microsecond)
}

func (r *TraceRecorder) emit(ev traceEvent) {
	r.mu.Lock()
	if len(r.events) >= maxTraceEvents {
		r.dropped++
	} else {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// Track allocates a new trace thread with the given display name.
// Nil-safe: a nil recorder returns a nil track, whose span methods are
// no-ops.
func (r *TraceRecorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	tid := r.nextTID
	r.nextTID++
	r.mu.Unlock()
	r.emit(traceEvent{
		Name: "thread_name", Ph: "M", PID: r.pid, TID: tid,
		Args: map[string]any{"name": name},
	})
	return &Track{r: r, tid: tid}
}

// Main returns the recorder's default track.
func (r *TraceRecorder) Main() *Track {
	if r == nil {
		return nil
	}
	return r.main
}

// Counters emits a "C" counter event, rendering as counter tracks in
// Perfetto. Values must be numeric.
func (r *TraceRecorder) Counters(name string, values map[string]int64) {
	if r == nil {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	r.emit(traceEvent{Name: name, Ph: "C", TS: r.now(), PID: r.pid, TID: 0, Args: args})
}

// WriteJSON exports the buffered events as a Chrome trace-event JSON
// object. The export appends a final "telemetry" instant event whose
// args carry the metrics snapshot (when one is attached via
// Session.Close) so counters travel with the trace.
func (r *TraceRecorder) WriteJSON(w io.Writer, finalArgs map[string]any) error {
	r.mu.Lock()
	events := make([]traceEvent, len(r.events))
	copy(events, r.events)
	dropped := r.dropped
	ts := r.now()
	r.mu.Unlock()
	if finalArgs == nil {
		finalArgs = map[string]any{}
	}
	finalArgs["dropped_events"] = dropped
	events = append(events, traceEvent{
		Name: "telemetry", Cat: "meta", Ph: "i", TS: ts, PID: r.pid, TID: 0,
		Args: finalArgs,
	})
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Track is one trace thread (a Perfetto swimlane).
type Track struct {
	r   *TraceRecorder
	tid int
}

// Span is an in-flight timed region. The zero Span (and any span from
// a nil recorder/track) is a no-op, so call sites need no nil checks.
type Span struct {
	t     *Track
	name  string
	cat   string
	start float64
}

// Begin opens a span on the track.
func (t *Track) Begin(name, cat string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, start: t.r.now()}
}

// Instant emits a zero-duration instant event on the track.
func (t *Track) Instant(name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	t.r.emit(traceEvent{Name: name, Cat: cat, Ph: "i", TS: t.r.now(), PID: t.r.pid, TID: t.tid, Args: args})
}

// End closes the span with no arguments.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span, attaching args to the emitted event.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	r := s.t.r
	end := r.now()
	dur := end - s.start
	if dur <= 0 {
		// Chrome trace "X" events need a positive duration to render;
		// sub-resolution spans get the smallest representable one.
		dur = 0.001
	}
	r.emit(traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X", TS: s.start, Dur: dur,
		PID: r.pid, TID: s.t.tid, Args: args,
	})
}
