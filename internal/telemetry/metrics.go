package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"text/tabwriter"
)

// Counter identifies one analyzer-wide event count. Counters are
// updated with atomic adds, so one Metrics value can be shared by every
// worker of a batch run; the names (String) double as the keys of
// Snapshot and of the counter samples embedded in exported traces.
type Counter int

const (
	// CtrRuns counts Analyzer.Run invocations (one whole-task-set
	// outer fixed point).
	CtrRuns Counter = iota
	// CtrRunsCompleted counts Runs whose outer fixed point converged
	// for every task (Result.Complete).
	CtrRunsCompleted
	// CtrOuterRounds counts outer fixed-point rounds across all Runs.
	CtrOuterRounds
	// CtrTaskAnalyses counts ResponseTime invocations (per-task inner
	// fixed points, including re-analyses in later outer rounds).
	CtrTaskAnalyses
	// CtrInnerIterations counts iterates of the inner recurrence.
	CtrInnerIterations
	// CtrBreakpointJumps counts inner iterations terminated by the
	// breakpoint jump (iterate below every pending breakpoint).
	CtrBreakpointJumps
	// CtrBreakpointSnaps counts cursor re-evaluations during
	// fpAdvance — breakpoints actually crossed by an iterate.
	CtrBreakpointSnaps
	// CtrCursorRebuilds counts full cursor rebuilds in fpReset (cold
	// level, or seed below the cursors' resting iterate).
	CtrCursorRebuilds
	// CtrCursorResumes counts fpReset calls that reused the level's
	// resting cursors from a previous analysis.
	CtrCursorResumes
	// CtrCursorRemoteRefreshes counts remote cursors re-evaluated on a
	// resume because their carry-in offset (the remote estimate R_l)
	// changed since the level was last analyzed.
	CtrCursorRemoteRefreshes
	// CtrCurveBuilds counts genuine cold curve-backbone computations:
	// per-(level, core-column, depth) materializations that actually ran
	// the term-assembly loop — locally, or as the leader of a curve-memo
	// miss. Memo-served materializations are *not* builds; they show up
	// on the core.curve_memo_* family instead, so /metrics can tell
	// "curve memo working" from "curve cache warm within one analysis".
	CtrCurveBuilds
	// CtrCurveHits counts curve lookups served by a backbone already
	// materialized in the same Tables (warm within one analysis).
	CtrCurveHits
	// CtrAbortDeadlineMiss counts Runs aborted by a proven deadline
	// miss.
	CtrAbortDeadlineMiss
	// CtrAbortNonConvergence counts Runs aborted by the outer iteration
	// budget running out before global convergence.
	CtrAbortNonConvergence
	// CtrAbortBusOverload counts perfect-bus analyses rejected by the
	// bus-utilization gate before any fixed point was attempted.
	CtrAbortBusOverload
	// CtrPoolMemoHits counts benchmark-pool extractions served from the
	// per-geometry memo cache; CtrPoolMemoMisses counts cold extractions.
	CtrPoolMemoHits
	CtrPoolMemoMisses
	// Content-addressed table memo family (core.MemoStore): per-
	// (core-column, priority-cutoff) interference-table units shared
	// across analyses and requests. CtrMemoHits counts lookups served
	// by a published column, CtrMemoWaits lookups that joined an
	// in-flight computation of the same sub-key, CtrMemoMisses actual
	// column computations (the work the store exists to avoid), and
	// CtrMemoEvictions columns dropped by capacity pressure.
	CtrMemoHits
	CtrMemoWaits
	CtrMemoMisses
	CtrMemoEvictions
	// Curve-backbone memo family: whole materialized breakpoint-curve
	// backbones (curves.go termCurve slices) shared through the same
	// content-addressed store, keyed one level up from the table columns
	// (column sub-key chained with the per-task scalar digests). Same
	// accounting as the core.memo_* family: hits are served backbones,
	// waits joined an in-flight build, misses are actual backbone
	// computations, evictions are capacity drops of curve entries.
	CtrCurveMemoHits
	CtrCurveMemoWaits
	CtrCurveMemoMisses
	CtrCurveMemoEvictions
	// CtrJobPanics counts sweep jobs whose analysis (or generation)
	// panicked and was recovered by the isolation layer. A panicking
	// job is retried once on the naive reference analyzer; only the
	// initial panic is counted here.
	CtrJobPanics
	// CtrJobFailures counts sweep jobs that failed for good — the
	// reference retry panicked or errored too — and were recorded as
	// per-job failures instead of aborting the sweep.
	CtrJobFailures

	// Server counter family (internal/server): admission, the canonical
	// result cache and in-flight request coalescing of the analysis
	// daemon. CtrServerRequests counts analysis requests (batch items
	// count individually); every request resolves to exactly one of
	// cache hit, coalesced wait, executed analysis, shed, timeout or
	// failure.
	CtrServerRequests
	// CtrServerCacheHits counts requests served from the result cache;
	// CtrServerCacheMisses counts requests that had to go through the
	// coalescing map.
	CtrServerCacheHits
	CtrServerCacheMisses
	// CtrServerCacheEvictions counts cache entries dropped by LRU
	// capacity pressure; CtrServerCacheExpiries counts entries dropped
	// because their TTL elapsed (discovered on get or swept during
	// put). The two are distinct signals: evictions indicate the cache
	// is too small, expiries only that results aged out.
	CtrServerCacheEvictions
	CtrServerCacheExpiries
	// CtrServerCoalesced counts requests that joined an identical
	// in-flight computation instead of starting their own.
	CtrServerCoalesced
	// CtrServerAnalyses counts engine invocations — the work the cache
	// and coalescing exist to avoid. Under duplicate load this stays
	// strictly below CtrServerRequests.
	CtrServerAnalyses
	// CtrServerShed counts requests rejected by queue-depth load
	// shedding (HTTP 429).
	CtrServerShed
	// CtrServerTimeouts counts requests that hit the per-request
	// deadline while queued or canceled before the engine ran.
	CtrServerTimeouts
	// CtrServerFailures counts requests whose analysis failed
	// terminally even after the isolation layer's reference retry.
	CtrServerFailures
	// Delta endpoint family (POST /v1/analyze/delta): incremental
	// analysis requests phrased as a base canonical key plus edits.
	// CtrServerDeltaRequests counts delta requests,
	// CtrServerDeltaBaseMisses those whose base key was not in the
	// base registry (the client must re-POST the full request), and
	// CtrServerDeltaEdits the individual edits applied.
	CtrServerDeltaRequests
	CtrServerDeltaBaseMisses
	CtrServerDeltaEdits
	// Cluster peer family (internal/cluster routing in the server):
	// shard-owner request forwarding between buscond nodes.
	// CtrServerPeerProxied counts requests this node relayed to their
	// owning peer (the edge does not also count them as
	// server.requests — fleet-summed server.requests stays equal to
	// client requests); CtrServerPeerHits those proxied requests whose
	// relayed envelope filled the local cache (peer cache fill);
	// CtrServerPeerErrors proxy transport failures or non-2xx peer
	// responses; CtrServerPeerDegraded requests answered by local
	// compute because their owner was unreachable (node-loss
	// degradation — latency cost, not availability).
	CtrServerPeerProxied
	CtrServerPeerHits
	CtrServerPeerErrors
	CtrServerPeerDegraded

	numCounters
)

var counterNames = [numCounters]string{
	CtrRuns:                  "analyzer.runs",
	CtrRunsCompleted:         "analyzer.runs_completed",
	CtrOuterRounds:           "analyzer.outer_rounds",
	CtrTaskAnalyses:          "analyzer.task_analyses",
	CtrInnerIterations:       "fp.inner_iterations",
	CtrBreakpointJumps:       "fp.breakpoint_jumps",
	CtrBreakpointSnaps:       "fp.breakpoint_snaps",
	CtrCursorRebuilds:        "fp.cursor_rebuilds",
	CtrCursorResumes:         "fp.cursor_resumes",
	CtrCursorRemoteRefreshes: "fp.cursor_remote_refreshes",
	CtrCurveBuilds:           "curves.builds",
	CtrCurveHits:             "curves.hits",
	CtrAbortDeadlineMiss:     "abort.deadline_miss",
	CtrAbortNonConvergence:   "abort.nonconvergence",
	CtrAbortBusOverload:      "abort.bus_overload",
	CtrPoolMemoHits:          "pool.memo_hits",
	CtrPoolMemoMisses:        "pool.memo_misses",
	CtrMemoHits:              "core.memo_hits",
	CtrMemoWaits:             "core.memo_waits",
	CtrMemoMisses:            "core.memo_misses",
	CtrMemoEvictions:         "core.memo_evictions",
	CtrCurveMemoHits:         "core.curve_memo_hits",
	CtrCurveMemoWaits:        "core.curve_memo_waits",
	CtrCurveMemoMisses:       "core.curve_memo_misses",
	CtrCurveMemoEvictions:    "core.curve_memo_evictions",
	CtrJobPanics:             "sweep.job_panics",
	CtrJobFailures:           "sweep.job_failures",
	CtrServerRequests:        "server.requests",
	CtrServerCacheHits:       "server.cache_hits",
	CtrServerCacheMisses:     "server.cache_misses",
	CtrServerCacheEvictions:  "server.cache_evictions",
	CtrServerCacheExpiries:   "server.cache_expiries",
	CtrServerCoalesced:       "server.coalesced",
	CtrServerAnalyses:        "server.analyses",
	CtrServerShed:            "server.shed",
	CtrServerTimeouts:        "server.timeouts",
	CtrServerFailures:        "server.failures",
	CtrServerDeltaRequests:   "server.delta_requests",
	CtrServerDeltaBaseMisses: "server.delta_base_misses",
	CtrServerDeltaEdits:      "server.delta_edits",
	CtrServerPeerProxied:     "server.peer_proxied",
	CtrServerPeerHits:        "server.peer_hits",
	CtrServerPeerErrors:      "server.peer_errors",
	CtrServerPeerDegraded:    "server.peer_degraded",
}

func (c Counter) String() string {
	if c >= 0 && c < numCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// HistID identifies one of the fixed value distributions Metrics
// tracks alongside the counters.
type HistID int

const (
	// HistOuterRounds is the distribution of outer fixed-point rounds
	// per Run.
	HistOuterRounds HistID = iota
	// HistInnerIters is the distribution of inner iterates per
	// ResponseTime call.
	HistInnerIters
	// Per-request stage-latency family (internal/server): microseconds
	// one analysis request spent in each lifecycle stage, recorded by
	// StageTimer (stages.go). Quantiles (p50/p95/p99) are estimated
	// from the log2 buckets via HistSnapshot.Quantile; the taxonomy is
	// documented in DESIGN.md §13.
	HistStageQueue
	HistStageCache
	HistStageCoalesce
	HistStageProxy
	HistStageAnalyze
	HistStageMarshal
	// HistRequestTotal is the whole-request wall clock in microseconds
	// — cache hits, coalesced waits and shed requests included, so its
	// count matches server.requests under steady load.
	HistRequestTotal

	numHists
)

var histNames = [numHists]string{
	HistOuterRounds:   "analyzer.outer_rounds_per_run",
	HistInnerIters:    "fp.iterations_per_analysis",
	HistStageQueue:    "server.stage_queue_us",
	HistStageCache:    "server.stage_cache_us",
	HistStageCoalesce: "server.stage_coalesce_us",
	HistStageProxy:    "server.stage_proxy_us",
	HistStageAnalyze:  "server.stage_analyze_us",
	HistStageMarshal:  "server.stage_marshal_us",
	HistRequestTotal:  "server.request_us",
}

func (h HistID) String() string {
	if h >= 0 && h < numHists {
		return histNames[h]
	}
	return fmt.Sprintf("hist(%d)", int(h))
}

// histBuckets bounds the log2 bucket range; bucket k collects values v
// with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k).
const histBuckets = 32

// Histogram is a lock-free log2-bucketed distribution of non-negative
// integer observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	// Buckets[0] counts zeros (including clamped negatives); Buckets[k]
	// for k >= 1 counts observations in [2^(k-1), 2^k). The top bucket
	// additionally absorbs values at or above 2^(histBuckets-1), so no
	// observation is ever dropped. Trailing empty buckets are trimmed.
	Buckets []int64 `json:"buckets"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	last := -1
	var buckets [histBuckets]int64
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]int64(nil), buckets[:last+1]...)
	return s
}

// Metrics is the shared counter/histogram sink of one observed run.
// All methods are safe for concurrent use.
type Metrics struct {
	counters [numCounters]atomic.Int64
	hists    [numHists]Histogram
	// parent receives a copy of every write (NewChildMetrics) so a
	// short-lived sink can attribute per-request work without the
	// long-lived one missing anything.
	parent *Metrics
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics { return &Metrics{} }

// NewChildMetrics returns a sink whose writes also land on parent.
// The server uses one child per engine invocation to attribute memo
// hits to individual requests while the daemon-wide counters keep
// accumulating; the cost is one extra atomic op per write.
func NewChildMetrics(parent *Metrics) *Metrics { return &Metrics{parent: parent} }

// Add increments counter c by d.
func (m *Metrics) Add(c Counter, d int64) {
	if c >= 0 && c < numCounters {
		for s := m; s != nil; s = s.parent {
			s.counters[c].Add(d)
		}
	}
}

// Get returns the current value of counter c.
func (m *Metrics) Get(c Counter) int64 {
	if c >= 0 && c < numCounters {
		return m.counters[c].Load()
	}
	return 0
}

// Observe records v into histogram h.
func (m *Metrics) Observe(h HistID, v int64) {
	if h >= 0 && h < numHists {
		for s := m; s != nil; s = s.parent {
			s.hists[h].Observe(v)
		}
	}
}

// Hist returns histogram h for inspection.
func (m *Metrics) Hist(h HistID) *Histogram {
	if h >= 0 && h < numHists {
		return &m.hists[h]
	}
	return nil
}

// Counters returns the nonzero counters keyed by name — the payload
// embedded into exported traces and the metrics summary.
func (m *Metrics) Counters() map[string]int64 {
	out := make(map[string]int64, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		if v := m.counters[c].Load(); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// Hists returns snapshots of the non-empty histograms keyed by name —
// the payload of the JSON /metrics histogram section.
func (m *Metrics) Hists() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot, numHists)
	for h := HistID(0); h < numHists; h++ {
		if s := m.hists[h].Snapshot(); s.Count != 0 {
			out[h.String()] = s
		}
	}
	return out
}

// WriteSummary renders the nonzero counters and non-empty histograms
// as an aligned, name-sorted table.
func (m *Metrics) WriteSummary(w io.Writer) error {
	counters := m.Counters()
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "counter\tvalue")
	for _, n := range names {
		fmt.Fprintf(tw, "%s\t%d\n", n, counters[n])
	}
	for h := HistID(0); h < numHists; h++ {
		s := m.hists[h].Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\tcount=%d mean=%.2f max=%d\n", h, s.Count, s.Mean, s.Max)
	}
	return tw.Flush()
}
