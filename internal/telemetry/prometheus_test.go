package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenMetrics builds a deterministic metrics state covering every
// exposition branch: counters (zero and nonzero), gauges (with and
// without help), and histograms (empty, small values, a zero, and a
// top-bucket overflow).
func goldenMetrics() (*Metrics, []PromGauge) {
	m := NewMetrics()
	m.Add(CtrRuns, 3)
	m.Add(CtrServerRequests, 7)
	m.Add(CtrServerCacheHits, 2)
	m.Observe(HistOuterRounds, 0)
	m.Observe(HistOuterRounds, 1)
	m.Observe(HistOuterRounds, 5)
	m.Observe(HistStageAnalyze, 1000)
	m.Observe(HistStageAnalyze, 1<<40) // unbounded top bucket
	gauges := []PromGauge{
		{Name: "server.inflight", Help: "requests currently in flight", Value: 2},
		{Name: "server.queue_depth", Value: 0},
	}
	return m, gauges
}

// TestPrometheusGolden pins the exposition byte-for-byte. Regenerate
// with: go test ./internal/telemetry -run TestPrometheusGolden -update
func TestPrometheusGolden(t *testing.T) {
	m, gauges := goldenMetrics()
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf, gauges); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file (regenerate with -update if intended)\ngot %d bytes, want %d", buf.Len(), len(want))
	}
}

var (
	promCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSampleRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="(\+Inf|[0-9]+)"\})? (-?[0-9]+)$`)
)

// TestPrometheusParseable validates the exposition line by line
// against the 0.0.4 text format and checks the histogram invariants a
// scraper relies on: cumulative buckets are nondecreasing, the +Inf
// bucket equals _count, and every histogram carries _sum and _count.
func TestPrometheusParseable(t *testing.T) {
	m, gauges := goldenMetrics()
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf, gauges); err != nil {
		t.Fatal(err)
	}
	samples := map[string]int64{}
	bucketSeq := map[string][]int64{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promCommentRe.MatchString(line) {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		sm := promSampleRe.FindStringSubmatch(line)
		if sm == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		v, err := strconv.ParseInt(sm[4], 10, 64)
		if err != nil {
			t.Errorf("bad value in %q: %v", line, err)
			continue
		}
		if sm[2] != "" {
			base := strings.TrimSuffix(sm[1], "_bucket")
			bucketSeq[base] = append(bucketSeq[base], v)
		} else {
			samples[sm[1]] = v
		}
	}
	if samples["analyzer_runs"] != 3 {
		t.Errorf("analyzer_runs = %d, want 3", samples["analyzer_runs"])
	}
	if samples["server_inflight"] != 2 {
		t.Errorf("server_inflight = %d, want 2", samples["server_inflight"])
	}
	for base, seq := range bucketSeq {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Errorf("%s: cumulative bucket %d decreases (%d -> %d)", base, i, seq[i-1], seq[i])
			}
		}
		count, ok := samples[base+"_count"]
		if !ok {
			t.Errorf("%s: missing _count", base)
			continue
		}
		if _, ok := samples[base+"_sum"]; !ok {
			t.Errorf("%s: missing _sum", base)
		}
		if inf := seq[len(seq)-1]; inf != count {
			t.Errorf("%s: +Inf bucket %d != count %d", base, inf, count)
		}
	}
	if len(bucketSeq) == 0 {
		t.Error("no histogram series in exposition")
	}
	// The overflow observation (2^40) must live only in +Inf: the last
	// finite bucket of the analyze-stage histogram stays at 1.
	seq := bucketSeq["server_stage_analyze_us"]
	if len(seq) < 2 {
		t.Fatal("analyze-stage histogram missing buckets")
	}
	if finite, inf := seq[len(seq)-2], seq[len(seq)-1]; finite != 1 || inf != 2 {
		t.Errorf("overflow accounting: last finite bucket %d (want 1), +Inf %d (want 2)", finite, inf)
	}
}
