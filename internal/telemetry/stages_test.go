package telemetry

import (
	"testing"
	"time"
)

// TestStageTimerNil: the disabled path (nil observer or no metrics
// sink) is inert — no clock reads leak out, Finish returns zeros.
func TestStageTimerNil(t *testing.T) {
	var o *Observer
	st := o.StartStages()
	if st != nil {
		t.Fatal("nil observer returned a live timer")
	}
	if !st.Now().IsZero() {
		t.Error("nil timer read the clock")
	}
	st.AddSince(StageQueue, time.Now())
	st.Add(StageAnalyze, time.Second)
	if durs := st.Finish(); durs != ([NumStages]time.Duration{}) {
		t.Errorf("nil timer recorded durations: %v", durs)
	}
	if (&Observer{}).StartStages() != nil {
		t.Error("observer without metrics returned a live timer")
	}
}

// TestStageTimerFlush: accumulated stage durations land in the right
// histograms in microseconds, stages never charged are not observed,
// and the whole-request histogram always records once.
func TestStageTimerFlush(t *testing.T) {
	o := New()
	st := o.StartStages()
	if st == nil {
		t.Fatal("StartStages returned nil with metrics enabled")
	}
	st.Add(StageCache, 300*time.Microsecond)
	st.Add(StageCache, 700*time.Microsecond) // accumulates
	st.Add(StageAnalyze, 5*time.Millisecond)
	durs := st.Finish()
	if durs[StageCache] != time.Millisecond {
		t.Errorf("cache stage = %v, want 1ms", durs[StageCache])
	}
	cache := o.Metrics.Hist(HistStageCache).Snapshot()
	if cache.Count != 1 || cache.Sum != 1000 {
		t.Errorf("cache hist count=%d sum=%d, want 1/1000µs", cache.Count, cache.Sum)
	}
	analyze := o.Metrics.Hist(HistStageAnalyze).Snapshot()
	if analyze.Count != 1 || analyze.Sum != 5000 {
		t.Errorf("analyze hist count=%d sum=%d, want 1/5000µs", analyze.Count, analyze.Sum)
	}
	if got := o.Metrics.Hist(HistStageQueue).Snapshot().Count; got != 0 {
		t.Errorf("queue hist count = %d, want 0 (stage never charged)", got)
	}
	if got := o.Metrics.Hist(HistRequestTotal).Snapshot().Count; got != 1 {
		t.Errorf("request hist count = %d, want 1", got)
	}
}

// TestStageHistsDistinct: every stage maps to its own histogram and a
// valid name.
func TestStageHistsDistinct(t *testing.T) {
	seen := map[HistID]Stage{}
	for s := Stage(0); s < NumStages; s++ {
		h := s.Hist()
		if h < 0 || h >= numHists {
			t.Errorf("stage %v has no histogram", s)
			continue
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("stages %v and %v share histogram %v", prev, s, h)
		}
		seen[h] = s
		if s.String() == "stage(?)" {
			t.Errorf("stage %d has no name", int(s))
		}
	}
}

// TestChildMetricsForwardsToParent: a per-request child sink records
// locally and forwards every write to the shared parent.
func TestChildMetricsForwardsToParent(t *testing.T) {
	parent := NewMetrics()
	parent.Add(CtrMemoHits, 10)
	child := NewChildMetrics(parent)
	child.Add(CtrMemoHits, 3)
	child.Observe(HistInnerIters, 7)
	if got := child.Get(CtrMemoHits); got != 3 {
		t.Errorf("child memo hits = %d, want 3 (per-request attribution)", got)
	}
	if got := parent.Get(CtrMemoHits); got != 13 {
		t.Errorf("parent memo hits = %d, want 13 (shared totals keep accumulating)", got)
	}
	if got := parent.Hist(HistInnerIters).Snapshot().Count; got != 1 {
		t.Errorf("parent hist count = %d, want 1", got)
	}
	if got := child.Hist(HistInnerIters).Snapshot().Count; got != 1 {
		t.Errorf("child hist count = %d, want 1", got)
	}
}

// TestRoller: counter and histogram deltas reset at each Roll, and
// rates divide by the interval.
func TestRoller(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrServerRequests, 100) // pre-roller traffic is baseline
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	r := newRoller(m, now)

	m.Add(CtrServerRequests, 5)
	m.Observe(HistRequestTotal, 40)
	clock = clock.Add(2 * time.Second)
	d := r.Roll()
	if d.Elapsed != 2*time.Second {
		t.Errorf("elapsed = %v, want 2s", d.Elapsed)
	}
	if d.Counters["server.requests"] != 5 {
		t.Errorf("requests delta = %d, want 5 (baseline excluded)", d.Counters["server.requests"])
	}
	if got := d.Rate("server.requests"); got != 2.5 {
		t.Errorf("rate = %v, want 2.5/s", got)
	}
	h, ok := d.Hists["server.request_us"]
	if !ok || h.Count != 1 || h.Sum != 40 {
		t.Errorf("hist delta = %+v (ok=%v), want count 1 sum 40", h, ok)
	}

	// Second interval: nothing happened => empty deltas.
	clock = clock.Add(time.Second)
	d2 := r.Roll()
	if len(d2.Counters) != 0 || len(d2.Hists) != 0 {
		t.Errorf("idle interval reported deltas: %+v %+v", d2.Counters, d2.Hists)
	}

	// Third interval sees only its own traffic.
	m.Add(CtrServerRequests, 2)
	clock = clock.Add(time.Second)
	if d3 := r.Roll(); d3.Counters["server.requests"] != 2 {
		t.Errorf("third interval delta = %d, want 2", d3.Counters["server.requests"])
	}
}
