package persistence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cacheset"
	"repro/internal/fixtures"
	"repro/internal/taskmodel"
)

func TestMDHatFig1(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	t1 := ts.ByName("tau1")
	// Three jobs of τ1: MD + 2·MD^r + ... Eq. (10) gives
	// min(3·6; 3·1 + 5) = min(18, 8) = 8 — the paper's count of actual
	// accesses by the three jobs (6+1+1).
	if got := MDHat(t1, 3); got != 8 {
		t.Errorf("M̂D_1(3) = %d, want 8", got)
	}
	if got := MDHat(t1, 1); got != 6 {
		t.Errorf("M̂D_1(1) = %d, want 6 (min(6, 1+5))", got)
	}
	if got := MDHat(t1, 0); got != 0 {
		t.Errorf("M̂D_1(0) = %d, want 0", got)
	}
	// τ2 has no PCBs: M̂D degenerates to n·MD.
	t2 := ts.ByName("tau2")
	if got := MDHat(t2, 4); got != 32 {
		t.Errorf("M̂D_2(4) = %d, want 32", got)
	}
}

func TestMDHatPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MDHat(-1) did not panic")
		}
	}()
	MDHat(fixtures.Fig1TaskSet().ByName("tau1"), -1)
}

func TestRhoHatFig1(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// ρ̂_{1,2,x}(3): PCB_1 = {5,6,7,8,10}, evicting union over
	// hep(2)\{τ1} on core 0 = ECB_2 = {1..6}; overlap {5,6}.
	// (3−1)·2 = 4, as computed below Eq. (14).
	if got := RhoHat(ts, Union, 0, 1, 0, 3); got != 4 {
		t.Errorf("ρ̂_{1,2,x}(3) = %d, want 4", got)
	}
	// One job: no reloads.
	if got := RhoHat(ts, Union, 0, 1, 0, 1); got != 0 {
		t.Errorf("ρ̂(1) = %d, want 0", got)
	}
	if got := RhoHat(ts, Union, 0, 1, 0, 0); got != 0 {
		t.Errorf("ρ̂(0) = %d, want 0", got)
	}
	// FullReload charges all five PCBs per extra job.
	if got := RhoHat(ts, FullReload, 0, 1, 0, 3); got != 10 {
		t.Errorf("ρ̂_full(3) = %d, want 10", got)
	}
	if got := RhoHat(ts, None, 0, 1, 0, 3); got != 0 {
		t.Errorf("ρ̂_none(3) = %d, want 0", got)
	}
}

func TestEvictingUnionExcludesSelf(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	u := EvictingUnion(ts, 1, 0, 0)
	if !u.Equal(ts.ByName("tau2").ECB) {
		t.Errorf("EvictingUnion = %v, want ECB2 %v", u, ts.ByName("tau2").ECB)
	}
	// For τ3 alone on core 1 the union is empty.
	if got := EvictingUnion(ts, 2, 2, 1); !got.IsEmpty() {
		t.Errorf("EvictingUnion on single-task core = %v, want empty", got)
	}
}

func TestPersistentDemandFig1(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// Three jobs of τ1 during R2 with CPRO: M̂D(3) + ρ̂(3) = 8 + 4 = 12,
	// versus 3·MD = 18: the aware bound wins.
	if got := PersistentDemand(ts, Union, 0, 1, 0, 3); got != 12 {
		t.Errorf("PersistentDemand(τ1, 3 jobs) = %d, want 12", got)
	}
	// τ3 on core π_y with nothing else on that core: 1·MD + 3·MD^r = 9
	// for four jobs — the example's count below Lemma 1.
	if got := PersistentDemand(ts, Union, 2, 2, 1, 4); got != 9 {
		t.Errorf("PersistentDemand(τ3, 4 jobs) = %d, want 9", got)
	}
	if got := PersistentDemand(ts, Union, 0, 1, 0, 0); got != 0 {
		t.Errorf("PersistentDemand(0 jobs) = %d, want 0", got)
	}
}

func randomTask(rng *rand.Rand, nsets, prio, core int) *taskmodel.Task {
	ecb := cacheset.New(nsets)
	pcb := cacheset.New(nsets)
	ucb := cacheset.New(nsets)
	for s := 0; s < nsets; s++ {
		if rng.Intn(2) == 0 {
			ecb.Add(s)
			if rng.Intn(3) == 0 {
				pcb.Add(s)
			}
			if rng.Intn(3) == 0 {
				ucb.Add(s)
			}
		}
	}
	md := int64(pcb.Count() + rng.Intn(20))
	return &taskmodel.Task{
		Name: "r", Core: core, Priority: prio,
		PD: int64(1 + rng.Intn(100)), MD: md, MDr: md - int64(pcb.Count()),
		Period: 1000, Deadline: 1000,
		ECB: ecb, PCB: pcb, UCB: ucb,
	}
}

func randomTaskSet(seed int64) *taskmodel.TaskSet {
	rng := rand.New(rand.NewSource(seed))
	nsets := 8 + rng.Intn(24)
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: nsets, BlockSizeBytes: 32},
		DMem:     5, SlotSize: 2,
	}
	tasks := make([]*taskmodel.Task, 5)
	for i := range tasks {
		tasks[i] = randomTask(rng, nsets, i, i%2)
	}
	return taskmodel.NewTaskSet(plat, tasks)
}

func TestQuickMDHatNeverExceedsPlainDemand(t *testing.T) {
	f := func(seed int64, njobs uint8) bool {
		ts := randomTaskSet(seed % 1000)
		n := int64(njobs % 50)
		for _, task := range ts.Tasks {
			if MDHat(task, n) > n*task.MD {
				return false
			}
			if MDHat(task, n) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMDHatMonotoneAndSubadditive(t *testing.T) {
	f := func(seed int64, njobs uint8) bool {
		ts := randomTaskSet(seed % 1000)
		n := int64(njobs%30) + 1
		for _, task := range ts.Tasks {
			// Monotone in n.
			if MDHat(task, n) > MDHat(task, n+1) {
				return false
			}
			// Subadditive: splitting the job sequence cannot be cheaper,
			// since the PCB warm-up would be paid twice.
			if MDHat(task, n) > MDHat(task, n-1)+MDHat(task, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCPROOrderingAndBounds(t *testing.T) {
	f := func(seed int64, njobs uint8) bool {
		ts := randomTaskSet(seed % 1000)
		n := int64(njobs % 20)
		for core := 0; core < 2; core++ {
			for i := 0; i < 5; i++ {
				for j := 0; j <= i; j++ {
					u := RhoHat(ts, Union, j, i, core, n)
					fl := RhoHat(ts, FullReload, j, i, core, n)
					no := RhoHat(ts, None, j, i, core, n)
					if !(no <= u && u <= fl) {
						return false
					}
					// PersistentDemand never exceeds the oblivious bound
					// and never goes negative.
					tj := ts.ByPriority(j)
					pd := PersistentDemand(ts, Union, j, i, core, n)
					if pd < 0 || pd > n*tj.MD {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPersistentDemandUnknownPriority(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	if got := PersistentDemand(ts, Union, 42, 1, 0, 3); got != 0 {
		t.Errorf("unknown priority demand = %d, want 0", got)
	}
	if got := RhoHat(ts, Union, 42, 1, 0, 3); got != 0 {
		t.Errorf("unknown priority rho = %d, want 0", got)
	}
}

func TestRhoHatWindowMultiset(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// τ1's PCBs overlap only τ2's ECBs ({5,6}). τ2's period is 120, so
	// a window of 100 holds ⌊100/120⌋ = 0 full releases plus the +2
	// carry margin: the multiset bound for n=9 jobs of τ1 is
	// min(9−1, 2)·2 = 4 versus the union bound 8·2 = 16.
	union := RhoHatWindow(ts, Union, 0, 1, 0, 9, 100)
	multi := RhoHatWindow(ts, MultisetUnion, 0, 1, 0, 9, 100)
	if union != 16 {
		t.Fatalf("union = %d, want 16", union)
	}
	if multi != 4 {
		t.Fatalf("multiset = %d, want 4", multi)
	}
	// Small n: the (n−1) cap dominates and the two coincide.
	if u, m := RhoHatWindow(ts, Union, 0, 1, 0, 2, 100), RhoHatWindow(ts, MultisetUnion, 0, 1, 0, 2, 100); u != m {
		t.Fatalf("n=2: union %d != multiset %d", u, m)
	}
}

func TestQuickMultisetNeverWorseThanUnion(t *testing.T) {
	f := func(seed int64, njobs uint8, window uint16) bool {
		ts := randomTaskSet(seed % 1000)
		n := int64(njobs % 20)
		tt := taskmodel.Time(window)
		for core := 0; core < 2; core++ {
			for i := 0; i < 5; i++ {
				for j := 0; j <= i; j++ {
					u := RhoHatWindow(ts, Union, j, i, core, n, tt)
					m := RhoHatWindow(ts, MultisetUnion, j, i, core, n, tt)
					if m > u || m < 0 {
						return false
					}
					pd := PersistentDemandWindow(ts, MultisetUnion, j, i, core, n, tt)
					tj := ts.ByPriority(j)
					if pd < 0 || pd > n*tj.MD {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
