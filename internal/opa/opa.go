// Package opa implements Audsley's Optimal Priority Assignment
// algorithm on top of the bus contention analysis: priorities are
// assigned bottom-up, each level going to any task whose WCRT bound at
// that level meets its deadline assuming all still-unassigned tasks
// run at higher priorities.
//
// The paper assigns deadline-monotonic priorities; OPA is the natural
// extension whenever DM fails. Strictly, Audsley's optimality argument
// requires the schedulability test to be independent of the relative
// priority order *above* the level under test. The bus analysis is not
// exactly OPA-compatible — the ECB-union CRPD term and the remote
// response-time estimates both peek at the higher-priority order — so
// the result is a principled heuristic rather than an optimal search:
// every assignment it returns is verified schedulable with the full
// analysis before being reported, and failures fall back to reporting
// unschedulability at the first unplaceable level.
package opa

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/taskmodel"
)

// Result describes an assignment attempt.
type Result struct {
	// Schedulable reports whether a verified schedulable assignment was
	// found.
	Schedulable bool
	// Priorities maps task index (position in the input slice) to the
	// assigned unique priority (0 = highest); valid only when
	// Schedulable.
	Priorities []int
	// FailedLevel is the priority level no task could hold, when not
	// Schedulable (-1 otherwise).
	FailedLevel int
}

// Assign searches for a priority assignment that makes the task set
// schedulable under the given analysis configuration. The input tasks'
// Priority fields are ignored (but restored on return); Core
// assignments are respected.
func Assign(ts *taskmodel.TaskSet, cfg core.Config) (*Result, error) {
	n := len(ts.Tasks)
	if n == 0 {
		return nil, fmt.Errorf("opa: empty task set")
	}
	// Remember the incoming priorities so the probe mutations below
	// never leak.
	original := make([]int, n)
	for i, t := range ts.Tasks {
		original[i] = t.Priority
	}
	restore := func() {
		for i, t := range ts.Tasks {
			t.Priority = original[i]
		}
	}
	defer restore()

	assigned := make([]int, n) // task index -> level, -1 while unassigned
	for i := range assigned {
		assigned[i] = -1
	}

	// Candidate order: largest deadline first. Audsley's algorithm is
	// order-insensitive for OPA-compatible tests; for this heuristic
	// setting, trying the most deadline-tolerant task first at each
	// (low) level succeeds more often and matches the DM intuition.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ts.Tasks[order[a]].Deadline > ts.Tasks[order[b]].Deadline
	})

	for level := n - 1; level >= 0; level-- {
		placed := false
		for _, cand := range order {
			if placed {
				break
			}
			if assigned[cand] != -1 {
				continue
			}
			// Probe: candidate at this level, remaining unassigned tasks
			// packed above it in input order, already-assigned tasks at
			// their levels.
			next := 0
			for i := range ts.Tasks {
				switch {
				case i == cand:
					ts.Tasks[i].Priority = level
				case assigned[i] != -1:
					ts.Tasks[i].Priority = assigned[i]
				default:
					ts.Tasks[i].Priority = next
					next++
				}
			}
			probe := taskmodel.NewTaskSet(ts.Platform, append([]*taskmodel.Task(nil), ts.Tasks...))
			a, err := core.NewAnalyzer(probe, cfg)
			if err != nil {
				return nil, err
			}
			// Deadlines are sound stand-ins for the other tasks'
			// unknown response times: in any schedulable completion of
			// the assignment, R_l <= D_l.
			for _, t := range probe.Tasks {
				if t.Priority != level {
					a.R[t.Priority] = t.Deadline
				}
			}
			if _, ok := a.ResponseTime(level); ok {
				assigned[cand] = level
				placed = true
			}
		}
		if !placed {
			return &Result{Schedulable: false, FailedLevel: level}, nil
		}
	}

	// Verify the complete assignment with the full fixed point.
	for i := range ts.Tasks {
		ts.Tasks[i].Priority = assigned[i]
	}
	final := taskmodel.NewTaskSet(ts.Platform, append([]*taskmodel.Task(nil), ts.Tasks...))
	res, err := core.Analyze(final, cfg)
	if err != nil {
		return nil, err
	}
	if !res.Schedulable {
		// The heuristic's per-level probes passed but the converged
		// fixed point does not: report honestly.
		return &Result{Schedulable: false, FailedLevel: -1}, nil
	}
	return &Result{Schedulable: true, Priorities: assigned, FailedLevel: -1}, nil
}

// ApplyTo writes a found assignment into the tasks (by input order) and
// returns a re-sorted task set.
func ApplyTo(ts *taskmodel.TaskSet, r *Result) (*taskmodel.TaskSet, error) {
	if !r.Schedulable {
		return nil, fmt.Errorf("opa: no schedulable assignment to apply")
	}
	if len(r.Priorities) != len(ts.Tasks) {
		return nil, fmt.Errorf("opa: assignment for %d tasks, set has %d", len(r.Priorities), len(ts.Tasks))
	}
	for i, t := range ts.Tasks {
		t.Priority = r.Priorities[i]
	}
	return taskmodel.NewTaskSet(ts.Platform, append([]*taskmodel.Task(nil), ts.Tasks...)), nil
}
