package opa

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

func genSet(t *testing.T, seed int64, util float64) *taskmodel.TaskSet {
	t.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = 2
	cfg.TasksPerCore = 4
	cfg.CoreUtilization = util
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestAssignFindsValidAssignment(t *testing.T) {
	cfg := core.Config{Arbiter: core.RR, Persistence: true}
	for seed := int64(0); seed < 10; seed++ {
		ts := genSet(t, seed, 0.25)
		res, err := Assign(ts, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Schedulable {
			continue // nothing claimed, nothing to verify
		}
		// Priorities form a permutation.
		seen := map[int]bool{}
		for _, p := range res.Priorities {
			if p < 0 || p >= len(ts.Tasks) || seen[p] {
				t.Fatalf("seed %d: invalid priority assignment %v", seed, res.Priorities)
			}
			seen[p] = true
		}
		// Applying it yields a set the full analysis accepts.
		applied, err := ApplyTo(ts, res)
		if err != nil {
			t.Fatalf("seed %d: ApplyTo: %v", seed, err)
		}
		full, err := core.Analyze(applied, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !full.Schedulable {
			t.Fatalf("seed %d: OPA claimed schedulable but full analysis disagrees", seed)
		}
	}
}

func TestAssignPreservesInputPriorities(t *testing.T) {
	ts := genSet(t, 3, 0.3)
	before := make([]int, len(ts.Tasks))
	for i, task := range ts.Tasks {
		before[i] = task.Priority
	}
	if _, err := Assign(ts, core.Config{Arbiter: core.RR, Persistence: true}); err != nil {
		t.Fatal(err)
	}
	for i, task := range ts.Tasks {
		if task.Priority != before[i] {
			t.Fatalf("task %d priority mutated: %d -> %d", i, before[i], task.Priority)
		}
	}
}

func TestAssignAtLeastAsGoodAsDMEmpirically(t *testing.T) {
	// OPA is not provably optimal for this (non-OPA-compatible) test,
	// but on a seeded sample it must schedule at least as many sets as
	// the generator's deadline-monotonic default.
	cfg := core.Config{Arbiter: core.RR, Persistence: true}
	dm, opaWins := 0, 0
	for seed := int64(0); seed < 15; seed++ {
		ts := genSet(t, seed, 0.3)
		full, err := core.Analyze(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if full.Schedulable {
			dm++
		}
		res, err := Assign(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedulable {
			opaWins++
		}
		// Anything DM schedules, OPA must find *some* assignment for —
		// DM itself is a witness the probe search can discover.
		if full.Schedulable && !res.Schedulable {
			t.Errorf("seed %d: DM schedulable but OPA found nothing", seed)
		}
	}
	if opaWins < dm {
		t.Errorf("OPA scheduled %d sets, DM %d", opaWins, dm)
	}
}

func TestAssignErrors(t *testing.T) {
	empty := taskmodel.NewTaskSet(taskgen.DefaultConfig().Platform, nil)
	if _, err := Assign(empty, core.Config{Arbiter: core.RR}); err == nil {
		t.Error("empty task set accepted")
	}
	ts := genSet(t, 1, 0.2)
	if _, err := ApplyTo(ts, &Result{Schedulable: false}); err == nil {
		t.Error("ApplyTo of failed result accepted")
	}
	if _, err := ApplyTo(ts, &Result{Schedulable: true, Priorities: []int{0}}); err == nil {
		t.Error("ApplyTo with wrong length accepted")
	}
}

func TestAssignUnschedulableReportsLevel(t *testing.T) {
	ts := genSet(t, 2, 0.95) // hopeless load
	res, err := Assign(ts, core.Config{Arbiter: core.TDMA, Persistence: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Skip("unexpectedly schedulable at 0.95; nothing to assert")
	}
	if res.FailedLevel < 0 || res.FailedLevel >= len(ts.Tasks) {
		// -1 is also legal (final verification failure); only check
		// range when a level is reported.
		if res.FailedLevel != -1 {
			t.Errorf("FailedLevel = %d out of range", res.FailedLevel)
		}
	}
}
