package program

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterises random structured-program generation. The
// generator is used by property tests (analysis vs. simulation
// cross-checks) and by the synthetic benchmark suite.
type GenConfig struct {
	// Blocks is the code footprint: blocks are drawn from [Base,
	// Base+Blocks).
	Blocks int
	// Base is the first memory-block index of the program's code.
	Base int
	// MaxDepth bounds loop/branch nesting.
	MaxDepth int
	// MaxLoopBound bounds each loop's iteration count (>= 1).
	MaxLoopBound int
	// MaxSeqLen bounds the number of children of a sequence.
	MaxSeqLen int
	// CyclesPerRef is the execution cost charged per block execution.
	CyclesPerRef int64
	// ReuseBias in [0,1]: probability that a new reference reuses an
	// already-referenced block instead of a fresh one; higher values
	// produce more UCBs and PCB reuse.
	ReuseBias float64
}

// DefaultGenConfig returns a configuration producing small loopy
// programs suitable for exhaustive simulation in tests.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Blocks:       24,
		Base:         0,
		MaxDepth:     3,
		MaxLoopBound: 8,
		MaxSeqLen:    5,
		CyclesPerRef: 4,
		ReuseBias:    0.5,
	}
}

// Generate builds a random structured program from the configuration
// and RNG. The result always references at least one block.
func Generate(name string, cfg GenConfig, rng *rand.Rand) *Program {
	if cfg.Blocks < 1 {
		panic(fmt.Sprintf("program: GenConfig.Blocks = %d, need >= 1", cfg.Blocks))
	}
	if cfg.MaxLoopBound < 1 {
		cfg.MaxLoopBound = 1
	}
	if cfg.MaxSeqLen < 1 {
		cfg.MaxSeqLen = 1
	}
	if cfg.CyclesPerRef < 0 {
		cfg.CyclesPerRef = 0
	}
	g := &generator{cfg: cfg, rng: rng}
	root := g.seq(cfg.MaxDepth)
	// Guarantee at least one reference.
	if len(g.used) == 0 {
		root.Items = append(root.Items, g.ref())
	}
	return &Program{Name: name, Root: root}
}

type generator struct {
	cfg  GenConfig
	rng  *rand.Rand
	used []int // blocks already referenced, for reuse bias
}

func (g *generator) pickBlock() int {
	if len(g.used) > 0 && g.rng.Float64() < g.cfg.ReuseBias {
		return g.used[g.rng.Intn(len(g.used))]
	}
	b := g.cfg.Base + g.rng.Intn(g.cfg.Blocks)
	g.used = append(g.used, b)
	return b
}

func (g *generator) ref() *Ref {
	return R(g.pickBlock(), g.cfg.CyclesPerRef)
}

func (g *generator) node(depth int) Node {
	if depth <= 0 {
		return g.ref()
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2: // loop
		return &Loop{Bound: 1 + g.rng.Intn(g.cfg.MaxLoopBound), Body: g.seq(depth - 1)}
	case 3: // branch
		return &Alt{A: g.seq(depth - 1), B: g.seq(depth - 1), Taken: g.rng.Intn(2) == 1}
	case 4, 5: // nested sequence
		return g.seq(depth - 1)
	default: // plain reference (majority, keeps programs compact)
		return g.ref()
	}
}

func (g *generator) seq(depth int) *Seq {
	n := 1 + g.rng.Intn(g.cfg.MaxSeqLen)
	items := make([]Node, n)
	for i := range items {
		items[i] = g.node(depth)
	}
	return &Seq{Items: items}
}
