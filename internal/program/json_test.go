package program

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundtripHandBuilt(t *testing.T) {
	p := &Program{Name: "rt", Root: S(
		R(0, 2),
		L(5, R(1, 3), &Alt{A: S(R(2, 1)), B: S(R(3, 1)), Taken: true}),
	)}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Name != "rt" {
		t.Errorf("name = %q", got.Name)
	}
	if !reflect.DeepEqual(got.Trace(0), p.Trace(0)) {
		t.Error("trace differs after roundtrip")
	}
	if !reflect.DeepEqual(got.Footprint(), p.Footprint()) {
		t.Error("footprint differs after roundtrip")
	}
}

func TestJSONRoundtripRandomPrograms(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 40; seed++ {
		p := Generate("rand", cfg, rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("seed %d: WriteJSON: %v", seed, err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("seed %d: ReadJSON: %v", seed, err)
		}
		if got.DynamicRefs() != p.DynamicRefs() || got.NumRefs() != p.NumRefs() {
			t.Fatalf("seed %d: structure differs after roundtrip", seed)
		}
		if !reflect.DeepEqual(got.Trace(5000), p.Trace(5000)) {
			t.Fatalf("seed %d: trace differs after roundtrip", seed)
		}
	}
}

func TestReadJSONHandWritten(t *testing.T) {
	src := `{"name":"mini","root":{"kind":"seq","items":[
		{"kind":"ref","block":3,"cycles":2},
		{"kind":"loop","bound":4,"body":{"kind":"ref","block":5,"cycles":1}}
	]}}`
	p, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got := p.DynamicRefs(); got != 5 {
		t.Errorf("DynamicRefs = %d, want 5", got)
	}
	if got, want := p.Footprint(), []int{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Footprint = %v, want %v", got, want)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{nope`,
		"unknown kind":   `{"name":"x","root":{"kind":"goto"}}`,
		"missing root":   `{"name":"x"}`,
		"bad loop bound": `{"name":"x","root":{"kind":"loop","bound":0,"body":{"kind":"ref","block":1}}}`,
		"loop no body":   `{"name":"x","root":{"kind":"loop","bound":2}}`,
		"alt no branch":  `{"name":"x","root":{"kind":"alt","a":{"kind":"ref","block":1}}}`,
		"negative block": `{"name":"x","root":{"kind":"ref","block":-4}}`,
		"bad seq item":   `{"name":"x","root":{"kind":"seq","items":[{"kind":"wat"}]}}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(src)); err == nil {
				t.Fatalf("accepted %q", src)
			}
		})
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	p := &Program{Name: "bad", Root: &Loop{Bound: 0, Body: R(1, 1)}}
	if err := p.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("invalid program serialized")
	}
}
