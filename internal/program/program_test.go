package program

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestStraight(t *testing.T) {
	p := &Program{Name: "straight", Root: Straight(10, 4, 2)}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := p.Footprint(), []int{10, 11, 12, 13}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Footprint = %v, want %v", got, want)
	}
	if got := p.NumRefs(); got != 4 {
		t.Fatalf("NumRefs = %d, want 4", got)
	}
	if got := p.DynamicRefs(); got != 4 {
		t.Fatalf("DynamicRefs = %d, want 4", got)
	}
	tr := p.Trace(0)
	if len(tr) != 4 || tr[0] != (TraceStep{Block: 10, Cycles: 2}) || tr[3].Block != 13 {
		t.Fatalf("Trace = %v", tr)
	}
}

func TestLoopTrace(t *testing.T) {
	// for i in 0..2 { ref 5; ref 6 }
	p := &Program{Name: "loop", Root: L(3, R(5, 1), R(6, 1))}
	tr := p.Trace(0)
	wantBlocks := []int{5, 6, 5, 6, 5, 6}
	if len(tr) != 6 {
		t.Fatalf("Trace length = %d, want 6", len(tr))
	}
	for i, s := range tr {
		if s.Block != wantBlocks[i] {
			t.Fatalf("Trace[%d].Block = %d, want %d", i, s.Block, wantBlocks[i])
		}
	}
	if got := p.DynamicRefs(); got != 6 {
		t.Fatalf("DynamicRefs = %d, want 6", got)
	}
	if got := p.NumRefs(); got != 2 {
		t.Fatalf("NumRefs = %d, want 2", got)
	}
}

func TestNestedLoopDynamicRefs(t *testing.T) {
	p := &Program{Name: "nest", Root: L(4, L(5, R(1, 1)), R(2, 1))}
	if got := p.DynamicRefs(); got != 4*(5+1) {
		t.Fatalf("DynamicRefs = %d, want 24", got)
	}
}

func TestAltTraceFollowsTaken(t *testing.T) {
	a := &Alt{A: S(R(1, 1)), B: S(R(2, 1)), Taken: false}
	p := &Program{Name: "alt", Root: S(a)}
	if tr := p.Trace(0); len(tr) != 1 || tr[0].Block != 1 {
		t.Fatalf("Trace(A) = %v, want block 1", tr)
	}
	a.Taken = true
	if tr := p.Trace(0); len(tr) != 1 || tr[0].Block != 2 {
		t.Fatalf("Trace(B) = %v, want block 2", tr)
	}
	// Footprint covers both branches regardless of Taken.
	if got, want := p.Footprint(), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Footprint = %v, want %v", got, want)
	}
}

func TestTraceTruncation(t *testing.T) {
	p := &Program{Name: "big", Root: L(1000, R(1, 1))}
	tr := p.Trace(10)
	if len(tr) != 10 {
		t.Fatalf("Trace(max=10) length = %d, want 10", len(tr))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"nil root", &Program{Name: "x"}},
		{"negative block", &Program{Name: "x", Root: R(-1, 1)}},
		{"negative cycles", &Program{Name: "x", Root: R(1, -1)}},
		{"zero loop bound", &Program{Name: "x", Root: &Loop{Bound: 0, Body: R(1, 1)}}},
		{"nil loop body", &Program{Name: "x", Root: &Loop{Bound: 2}}},
		{"nil alt branch", &Program{Name: "x", Root: &Alt{A: R(1, 1)}}},
		{"nil in seq", &Program{Name: "x", Root: &Seq{Items: []Node{nil}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err == nil {
				t.Fatal("Validate = nil, want error")
			}
		})
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 50; seed++ {
		p1 := Generate("g", cfg, rand.New(rand.NewSource(seed)))
		if err := p1.Validate(); err != nil {
			t.Fatalf("seed %d: Validate: %v", seed, err)
		}
		if p1.NumRefs() < 1 {
			t.Fatalf("seed %d: no refs", seed)
		}
		p2 := Generate("g", cfg, rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(p1.Trace(1000), p2.Trace(1000)) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		// Footprint blocks stay within the configured range.
		for _, b := range p1.Footprint() {
			if b < cfg.Base || b >= cfg.Base+cfg.Blocks {
				t.Fatalf("seed %d: block %d outside [%d,%d)", seed, b, cfg.Base, cfg.Base+cfg.Blocks)
			}
		}
	}
}

func TestGenerateTraceMatchesDynamicRefs(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 30; seed++ {
		p := Generate("g", cfg, rand.New(rand.NewSource(seed)))
		dyn := p.DynamicRefs()
		if dyn > 200000 {
			continue // avoid huge materialisations
		}
		if got := int64(len(p.Trace(0))); got != dyn {
			t.Fatalf("seed %d: trace length %d != DynamicRefs %d", seed, got, dyn)
		}
	}
}
