package program

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the program decoder never panics and that any
// program it accepts is valid and re-encodable. The corpus seeds run
// as part of the normal test suite.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"m","root":{"kind":"ref","block":1,"cycles":2}}`)
	f.Add(`{"name":"m","root":{"kind":"seq","items":[{"kind":"ref","block":0}]}}`)
	f.Add(`{"name":"m","root":{"kind":"loop","bound":3,"body":{"kind":"ref","block":2}}}`)
	f.Add(`{"name":"m","root":{"kind":"alt","a":{"kind":"ref","block":1},"b":{"kind":"ref","block":2},"taken":true}}`)
	f.Add(`{"name":"m"}`)
	f.Add(`{`)
	f.Add(`{"name":"m","root":{"kind":"loop","bound":-1,"body":{"kind":"ref","block":2}}}`)
	f.Add(`{"name":"m","root":{"kind":"ref","block":-9}}`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted program fails re-encoding: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("re-encoded program rejected: %v", err)
		}
	})
}
