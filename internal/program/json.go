package program

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON representation of programs, so custom workloads can be fed to
// cmd/wcetextract and the simulator without writing Go. The format is
// a direct tree encoding:
//
//	{"name": "filter", "root": {
//	   "kind": "seq", "items": [
//	     {"kind": "ref", "block": 0, "cycles": 2},
//	     {"kind": "loop", "bound": 50, "body": {"kind": "ref", "block": 6, "cycles": 3}},
//	     {"kind": "alt", "a": {...}, "b": {...}, "taken": false}
//	]}}

type nodeJSON struct {
	Kind string `json:"kind"`
	// ref
	Block  int   `json:"block,omitempty"`
	Cycles int64 `json:"cycles,omitempty"`
	// seq
	Items []*nodeJSON `json:"items,omitempty"`
	// loop
	Bound int       `json:"bound,omitempty"`
	Body  *nodeJSON `json:"body,omitempty"`
	// alt
	A     *nodeJSON `json:"a,omitempty"`
	B     *nodeJSON `json:"b,omitempty"`
	Taken bool      `json:"taken,omitempty"`
}

type programJSON struct {
	Name string    `json:"name"`
	Root *nodeJSON `json:"root"`
}

func encodeNode(n Node) (*nodeJSON, error) {
	switch v := n.(type) {
	case *Ref:
		return &nodeJSON{Kind: "ref", Block: v.Block, Cycles: v.Cycles}, nil
	case *Seq:
		out := &nodeJSON{Kind: "seq"}
		for _, it := range v.Items {
			e, err := encodeNode(it)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, e)
		}
		return out, nil
	case *Loop:
		body, err := encodeNode(v.Body)
		if err != nil {
			return nil, err
		}
		return &nodeJSON{Kind: "loop", Bound: v.Bound, Body: body}, nil
	case *Alt:
		a, err := encodeNode(v.A)
		if err != nil {
			return nil, err
		}
		b, err := encodeNode(v.B)
		if err != nil {
			return nil, err
		}
		return &nodeJSON{Kind: "alt", A: a, B: b, Taken: v.Taken}, nil
	default:
		return nil, fmt.Errorf("program: cannot encode node type %T", n)
	}
}

func decodeNode(n *nodeJSON) (Node, error) {
	if n == nil {
		return nil, fmt.Errorf("program: missing node")
	}
	switch n.Kind {
	case "ref":
		return &Ref{Block: n.Block, Cycles: n.Cycles}, nil
	case "seq":
		out := &Seq{}
		for i, it := range n.Items {
			d, err := decodeNode(it)
			if err != nil {
				return nil, fmt.Errorf("seq item %d: %w", i, err)
			}
			out.Items = append(out.Items, d)
		}
		return out, nil
	case "loop":
		body, err := decodeNode(n.Body)
		if err != nil {
			return nil, fmt.Errorf("loop body: %w", err)
		}
		return &Loop{Bound: n.Bound, Body: body}, nil
	case "alt":
		a, err := decodeNode(n.A)
		if err != nil {
			return nil, fmt.Errorf("alt branch a: %w", err)
		}
		b, err := decodeNode(n.B)
		if err != nil {
			return nil, fmt.Errorf("alt branch b: %w", err)
		}
		return &Alt{A: a, B: b, Taken: n.Taken}, nil
	default:
		return nil, fmt.Errorf("program: unknown node kind %q", n.Kind)
	}
}

// WriteJSON encodes the program.
func (p *Program) WriteJSON(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	root, err := encodeNode(p.Root)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(programJSON{Name: p.Name, Root: root})
}

// ReadJSON decodes and validates a program written by WriteJSON (or by
// hand).
func ReadJSON(r io.Reader) (*Program, error) {
	var in programJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("program: decoding: %w", err)
	}
	root, err := decodeNode(in.Root)
	if err != nil {
		return nil, err
	}
	p := &Program{Name: in.Name, Root: root}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
