// Package program models the structured programs whose cache behaviour
// the static analysis (package staticwcet) characterises.
//
// The paper extracts every per-task parameter (PD, MD, MD^r, UCB, ECB,
// PCB) from Mälardalen benchmark binaries with the Heptane static WCET
// analyzer. This package provides the equivalent input artifact: a
// reducible, structured control-flow tree made of sequences, bounded
// loops, alternatives and memory-block references (instruction fetches
// at cache-block granularity). Programs are deterministic, so they can
// both be analysed statically and expanded into exact execution traces
// for the discrete-event simulator.
package program

import (
	"fmt"
	"sort"
)

// Node is one region of a structured program. The concrete types are
// Seq, Loop, Alt and Ref.
type Node interface {
	// visit calls f for every Ref in the subtree in program order.
	visit(f func(*Ref))
	// check validates structural invariants, returning the first error.
	check() error
}

// Ref is a reference to one memory block: the fetch (and execution) of
// the instructions held in a single cache-block-sized chunk of code.
type Ref struct {
	// Block is the memory-block index (address / block size).
	Block int
	// Cycles is the execution cost of the instructions in the block
	// once fetched, i.e. the contribution to PD per execution.
	Cycles int64
}

func (r *Ref) visit(f func(*Ref)) { f(r) }

func (r *Ref) check() error {
	if r.Block < 0 {
		return fmt.Errorf("program: negative block %d", r.Block)
	}
	if r.Cycles < 0 {
		return fmt.Errorf("program: negative cycles %d on block %d", r.Cycles, r.Block)
	}
	return nil
}

// Seq executes its children in order.
type Seq struct {
	Items []Node
}

func (s *Seq) visit(f func(*Ref)) {
	for _, it := range s.Items {
		it.visit(f)
	}
}

func (s *Seq) check() error {
	for _, it := range s.Items {
		if it == nil {
			return fmt.Errorf("program: nil node in Seq")
		}
		if err := it.check(); err != nil {
			return err
		}
	}
	return nil
}

// Loop executes Body exactly Bound times per entry (the loop bound is
// the worst case the analysis charges and the count the trace uses).
type Loop struct {
	Bound int
	Body  Node
}

func (l *Loop) visit(f func(*Ref)) { l.Body.visit(f) }

func (l *Loop) check() error {
	if l.Bound < 1 {
		return fmt.Errorf("program: loop bound %d, need >= 1", l.Bound)
	}
	if l.Body == nil {
		return fmt.Errorf("program: loop with nil body")
	}
	return l.Body.check()
}

// Alt is a two-way branch. The static analysis treats it
// conservatively (max execution cost, summed memory cost, intersected
// cache state); the trace expansion follows the branch selected by
// Taken (false = A, true = B) on every execution.
type Alt struct {
	A, B  Node
	Taken bool
}

func (a *Alt) visit(f func(*Ref)) {
	a.A.visit(f)
	a.B.visit(f)
}

func (a *Alt) check() error {
	if a.A == nil || a.B == nil {
		return fmt.Errorf("program: Alt with nil branch")
	}
	if err := a.A.check(); err != nil {
		return err
	}
	return a.B.check()
}

// Program is a named structured program.
type Program struct {
	Name string
	Root Node
}

// Validate reports the first structural problem.
func (p *Program) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("program %q: nil root", p.Name)
	}
	if err := p.Root.check(); err != nil {
		return fmt.Errorf("program %q: %w", p.Name, err)
	}
	return nil
}

// Footprint returns the distinct memory blocks referenced anywhere in
// the program, in increasing order.
func (p *Program) Footprint() []int {
	seen := map[int]bool{}
	p.Root.visit(func(r *Ref) { seen[r.Block] = true })
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// NumRefs returns the number of Ref nodes (static references).
func (p *Program) NumRefs() int {
	n := 0
	p.Root.visit(func(*Ref) { n++ })
	return n
}

// TraceStep is one step of a program execution: fetch Block, then
// execute for Cycles.
type TraceStep struct {
	Block  int
	Cycles int64
}

// Trace expands the deterministic execution of the program into the
// exact sequence of block references. The trace length is the dynamic
// reference count, so callers should bound loop products for large
// programs. If max > 0 the trace is truncated to max steps.
func (p *Program) Trace(max int) []TraceStep {
	var out []TraceStep
	var walk func(n Node) bool
	walk = func(n Node) bool {
		if max > 0 && len(out) >= max {
			return false
		}
		switch v := n.(type) {
		case *Ref:
			out = append(out, TraceStep{Block: v.Block, Cycles: v.Cycles})
		case *Seq:
			for _, it := range v.Items {
				if !walk(it) {
					return false
				}
			}
		case *Loop:
			for i := 0; i < v.Bound; i++ {
				if !walk(v.Body) {
					return false
				}
			}
		case *Alt:
			br := v.A
			if v.Taken {
				br = v.B
			}
			return walk(br)
		default:
			panic(fmt.Sprintf("program: unknown node type %T", n))
		}
		return max <= 0 || len(out) < max
	}
	walk(p.Root)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// DynamicRefs returns the total number of references the trace would
// contain (the dynamic reference count) without materialising it.
func (p *Program) DynamicRefs() int64 {
	var count func(n Node) int64
	count = func(n Node) int64 {
		switch v := n.(type) {
		case *Ref:
			return 1
		case *Seq:
			var s int64
			for _, it := range v.Items {
				s += count(it)
			}
			return s
		case *Loop:
			return int64(v.Bound) * count(v.Body)
		case *Alt:
			if v.Taken {
				return count(v.B)
			}
			return count(v.A)
		default:
			panic(fmt.Sprintf("program: unknown node type %T", n))
		}
	}
	return count(p.Root)
}

// --- construction helpers -------------------------------------------------

// S builds a sequence node.
func S(items ...Node) *Seq { return &Seq{Items: items} }

// L builds a loop node.
func L(bound int, body ...Node) *Loop { return &Loop{Bound: bound, Body: S(body...)} }

// R builds a single block reference with the given execution cost.
func R(block int, cycles int64) *Ref { return &Ref{Block: block, Cycles: cycles} }

// Straight builds a straight-line run of n consecutive blocks starting
// at first, each costing cycles.
func Straight(first, n int, cycles int64) *Seq {
	items := make([]Node, n)
	for i := 0; i < n; i++ {
		items[i] = R(first+i, cycles)
	}
	return &Seq{Items: items}
}
