// Package cluster turns independent buscond nodes into a fleet with a
// shared cache discipline: every canonical request key has exactly one
// owning node, computed from the same stable FNV-1a partition the
// checkpoint shards use (checkpoint.PartitionIndex). A node that
// receives a request it does not own forwards it to the owner, so the
// owner's result cache, coalescing map and warm memo backbones serve
// the whole fleet — the cluster analyzes each distinct request once,
// not once per node.
//
// The membership model is deliberately static: the ring is the sorted,
// deduplicated node list every member is started with. Sorting makes
// ownership order-insensitive — any two nodes given the same member
// set in any order agree on every key's owner — and determinism across
// restarts falls out of the hash. There is no gossip, no failure
// detector and no handoff: an unreachable owner degrades the request
// to local compute at the edge node (availability over cache
// locality), which is the right trade for an analysis cache whose
// entries can always be recomputed.
//
// A forwarded request carries the ForwardedHeader hop guard naming the
// node that forwarded it. A node seeing the header never forwards
// again, whatever its own ownership opinion — so a misconfigured ring
// (nodes started with different member lists) costs at most one extra
// hop and some cache locality, never a proxy loop. See DESIGN.md §14.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
)

// ForwardedHeader marks a request already routed by a peer. Its value
// is the forwarding node's URL (diagnostics only; presence is what the
// hop guard checks).
const ForwardedHeader = "X-Buscond-Forwarded"

// DefaultPeerTimeout bounds one proxy round trip when Options.Timeout
// is zero. Analyses are bounded by the owner's own admission and
// MaxOuterIterations, so a stuck peer means a dead or partitioned
// node; a minute is generous for the largest legitimate analysis and
// still converts a hung connection into local compute.
const DefaultPeerTimeout = time.Minute

// Ring is one node's view of the fleet: the sorted member URLs and
// which of them is this process. The zero value is not useful; build
// with NewRing.
type Ring struct {
	nodes  []string // canonical base URLs, sorted
	self   int      // index of this node in nodes
	client *http.Client
}

// NewRing builds the ring from the member list and this node's own
// address. members is the full fleet (self included or not — it is
// added if absent); each entry is host:port or an http:// URL. The
// list is canonicalized, deduplicated and sorted, so any member
// permutation yields the same ring and the same ownership function.
func NewRing(self string, members []string, timeout time.Duration) (*Ring, error) {
	selfURL, err := canonicalURL(self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self %q: %w", self, err)
	}
	seen := map[string]bool{selfURL: true}
	nodes := []string{selfURL}
	for _, m := range members {
		u, err := canonicalURL(m)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", m, err)
		}
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, client: &http.Client{Timeout: timeout}}
	if timeout <= 0 {
		r.client.Timeout = DefaultPeerTimeout
	}
	for i, n := range nodes {
		if n == selfURL {
			r.self = i
		}
	}
	return r, nil
}

// canonicalURL normalizes one member address to "http://host:port".
func canonicalURL(s string) (string, error) {
	s = strings.TrimSpace(strings.TrimRight(s, "/"))
	if s == "" {
		return "", fmt.Errorf("empty address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		return "", fmt.Errorf("unsupported scheme (want http or https)")
	}
	return s, nil
}

// Len returns the fleet size.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the sorted member URLs (shared slice; do not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// SelfURL returns this node's canonical URL.
func (r *Ring) SelfURL() string { return r.nodes[r.self] }

// Owner returns the index of the node that owns key — the stable
// FNV-1a partition shared with the checkpoint shards, over the sorted
// member list.
func (r *Ring) Owner(key string) int {
	return checkpoint.PartitionIndex(key, len(r.nodes))
}

// OwnerURL returns the owning node's canonical URL.
func (r *Ring) OwnerURL(key string) string { return r.nodes[r.Owner(key)] }

// OwnsLocally reports whether this node owns the key (no routing
// needed). A nil ring owns everything — the single-node case.
func (r *Ring) OwnsLocally(key string) bool {
	return r == nil || r.Owner(key) == r.self
}

// Forwarded reports whether the request was already routed by a peer —
// the hop guard. A forwarded request must be handled locally no matter
// who this node thinks the owner is, so ownership disagreements (a
// misconfigured ring) terminate after one hop instead of looping.
func Forwarded(req *http.Request) bool {
	return req != nil && req.Header.Get(ForwardedHeader) != ""
}

// Proxy posts body to the key's owner at path and returns the peer's
// verbatim response. A non-nil error means the transport failed (the
// peer is unreachable, or the round trip timed out) and the caller
// should degrade to local compute; an HTTP error status from the peer
// comes back as (status, body, nil) for the caller to judge.
func (r *Ring) Proxy(ctx context.Context, key, path string, body []byte) (status int, respBody []byte, err error) {
	url := r.OwnerURL(key) + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, r.SelfURL())
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}
