package cluster

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/persistence"
)

func mustRing(t *testing.T, self string, members []string) *Ring {
	t.Helper()
	r, err := NewRing(self, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Every key must have exactly one owner, and every member must agree
// on who that is, regardless of the order its member list was written
// in — the property that lets nodes route without coordination.
func TestOwnershipDeterministicAndOrderInsensitive(t *testing.T) {
	members := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	rings := make([]*Ring, len(members))
	rng := rand.New(rand.NewSource(7))
	for i, self := range members {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		rings[i] = mustRing(t, self, shuffled)
	}
	owned := make([]int, len(members))
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("key-%d", k)
		owner := rings[0].OwnerURL(key)
		locals := 0
		for i, r := range rings {
			if got := r.OwnerURL(key); got != owner {
				t.Fatalf("key %q: ring %d says owner %s, ring 0 says %s", key, i, got, owner)
			}
			if r.OwnsLocally(key) {
				locals++
				owned[i]++
			}
		}
		if locals != 1 {
			t.Fatalf("key %q: %d nodes claim local ownership, want exactly 1", key, locals)
		}
	}
	// The FNV partition should spread keys roughly evenly; a pathological
	// skew would turn one node into the whole fleet's hot spot.
	for i, n := range owned {
		if n < 200 || n > 500 {
			t.Errorf("node %d owns %d of 1000 keys — partition badly skewed", i, n)
		}
	}
}

// Restart stability: ownership is a pure function of (key, sorted
// member list), so rebuilding the ring must reproduce it exactly —
// there is no hidden per-process state.
func TestOwnershipStableAcrossRestarts(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r1 := mustRing(t, "a:1", members)
	r2 := mustRing(t, "a:1", members)
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("job-%d", k)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %q: owner changed across ring rebuilds", key)
		}
		// And the partition is literally the checkpoint shard partition.
		if r1.Owner(key) != checkpoint.PartitionIndex(key, len(members)) {
			t.Fatalf("key %q: ring owner diverges from checkpoint.PartitionIndex", key)
		}
	}
}

func TestSelfIncludedAndDeduped(t *testing.T) {
	// Self absent from the member list is added; duplicates and
	// trailing-slash/scheme variants collapse.
	r := mustRing(t, "127.0.0.1:1", []string{"127.0.0.1:2/", "http://127.0.0.1:2", "127.0.0.1:3"})
	if r.Len() != 3 {
		t.Fatalf("ring size %d, want 3 (nodes %v)", r.Len(), r.Nodes())
	}
	if r.SelfURL() != "http://127.0.0.1:1" {
		t.Fatalf("self = %q", r.SelfURL())
	}
	single := mustRing(t, "127.0.0.1:1", nil)
	if single.Len() != 1 || !single.OwnsLocally("anything") {
		t.Fatal("single-node ring must own every key")
	}
}

func TestNewRingRejectsBadAddresses(t *testing.T) {
	if _, err := NewRing("", nil, 0); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewRing("ftp://x:1", nil, 0); err == nil {
		t.Fatal("ftp scheme accepted")
	}
	if _, err := NewRing("a:1", []string{"   "}, 0); err == nil {
		t.Fatal("blank peer accepted")
	}
}

func TestForwardedHopGuard(t *testing.T) {
	req, _ := http.NewRequest(http.MethodPost, "http://x/v1/analyze", nil)
	if Forwarded(req) {
		t.Fatal("fresh request reported as forwarded")
	}
	req.Header.Set(ForwardedHeader, "http://peer:1")
	if !Forwarded(req) {
		t.Fatal("forwarded request not detected")
	}
	if Forwarded(nil) {
		t.Fatal("nil request reported as forwarded")
	}
}

// TestWireNameCompleteness drives every declared engine enum value
// through the client's wire-name mappers: a newly declared arbiter,
// CRPD or CPRO approach the encoder cannot name would otherwise only
// surface as a runtime failure in the middle of a cluster sweep.
func TestWireNameCompleteness(t *testing.T) {
	for _, arb := range core.Arbiters() {
		if name, err := arbiterName(core.Config{Arbiter: arb}); err != nil || name == "" {
			t.Errorf("arbiterName(%v) = %q, %v", arb, name, err)
		}
	}
	if _, err := arbiterName(core.Config{Arbiter: core.Arbiter(99)}); err == nil {
		t.Error("arbiterName accepted an undeclared arbiter")
	}
	for _, ap := range []crpd.Approach{
		crpd.ECBUnion, crpd.UCBOnly, crpd.ECBOnly, crpd.UCBUnion, crpd.Combined,
	} {
		if name, err := crpdNameOf(core.Config{CRPD: ap}); err != nil || name == "" {
			t.Errorf("crpdNameOf(%v) = %q, %v", ap, name, err)
		}
	}
	for _, ap := range []persistence.CPROApproach{
		persistence.Union, persistence.MultisetUnion, persistence.FullReload, persistence.None,
	} {
		if name, err := cproNameOf(core.Config{CPRO: ap}); err != nil || name == "" {
			t.Errorf("cproNameOf(%v) = %q, %v", ap, name, err)
		}
	}
}
