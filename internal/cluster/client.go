package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Client submits analysis batches to a buscond fleet — the remote
// counterpart of core.AnalyzeBatchOpts, with the same callback
// contract, so internal/experiments can swap it in (Options.Analyze)
// and run cluster-wide sweeps through the exact same fold and
// checkpoint machinery as a local run.
//
// Each request is posted to the node that owns its canonical key (the
// same partition the fleet routes by), so a well-configured client
// never costs a proxy hop and every node's cache warms with exactly
// its own shard of the sweep. A stale node list still works — the
// fleet's own routing corrects the placement at one hop of cost.
type Client struct {
	nodes  []string
	client *http.Client
}

// NewClient builds a fleet client from the member URLs.
func NewClient(members []string, timeout time.Duration) (*Client, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no nodes given")
	}
	seen := map[string]bool{}
	var nodes []string
	for _, m := range members {
		u, err := canonicalURL(m)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", m, err)
		}
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	sort.Strings(nodes)
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Client{nodes: nodes, client: &http.Client{Timeout: timeout}}, nil
}

// Len returns the number of distinct fleet nodes the client submits
// to — the natural shard count for a cluster-wide sweep.
func (c *Client) Len() int { return len(c.nodes) }

// analyzeEnvelope is the slice of the /v1/analyze response the client
// consumes.
type analyzeEnvelope struct {
	Key     string          `json:"key"`
	Results json.RawMessage `json:"results"`
	Error   string          `json:"error"`
}

// AnalyzeBatch matches the experiments.Options.Analyze hook: it
// resolves every request against the fleet with opts.Workers
// concurrent submissions and returns per-request results in order.
// opts.OnResult fires as requests complete, opts.OnFailure reports
// per-request analysis failures (HTTP 4xx/5xx from the owning node —
// the remote analog of an isolated job failure); a transport error
// aborts the batch, like a non-isolated engine error, because it means
// the fleet itself is unreachable and every remaining job would fail
// the same way. A canceled context returns the partial results plus
// the context error, mirroring core.AnalyzeBatchOpts.
func (c *Client) AnalyzeBatch(reqs []core.BatchRequest, opts core.BatchOptions) ([][]*core.Result, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}

	out := make([][]*core.Result, len(reqs))
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, err := c.analyzeOne(ctx, reqs[i])
				if err != nil {
					var he *httpError
					if errors.As(err, &he) {
						// The owning node answered with a failure status:
						// this request is poisoned, the fleet is fine.
						if opts.OnFailure != nil {
							opts.OnFailure(i, reqs[i].Label, err, nil)
						}
					} else {
						fail(err)
					}
					continue
				}
				out[i] = res
				if opts.OnResult != nil {
					opts.OnResult(i, res, reqs[i].Label)
				}
			}
		}()
	}

dispatch:
	for i := range reqs {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return out, err
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

// httpError is a failure status from the owning node.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("cluster: node returned %d: %s", e.status, e.body)
}

// analyzeOne posts one request to its owning node and decodes the
// result slice.
func (c *Client) analyzeOne(ctx context.Context, req core.BatchRequest) ([]*core.Result, error) {
	key := core.CanonicalKey(req.TS, req.Cfgs)
	body, err := EncodeAnalyzeBody(req.TS, req.Cfgs)
	if err != nil {
		return nil, err
	}
	node := c.nodes[checkpoint.PartitionIndex(key, len(c.nodes))]
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var env analyzeEnvelope
	if derr := json.NewDecoder(resp.Body).Decode(&env); derr != nil && resp.StatusCode == http.StatusOK {
		return nil, fmt.Errorf("cluster: decoding %s response: %w", node, derr)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{status: resp.StatusCode, body: env.Error}
	}
	var results []*core.Result
	if err := json.Unmarshal(env.Results, &results); err != nil {
		return nil, fmt.Errorf("cluster: decoding results from %s: %w", node, err)
	}
	if len(results) != len(req.Cfgs) {
		return nil, fmt.Errorf("cluster: %s returned %d results for %d configs", node, len(results), len(req.Cfgs))
	}
	return results, nil
}

// EncodeAnalyzeBody renders engine inputs as a /v1/analyze request
// body in the server's wire vocabulary. The mapping is the inverse of
// the server's config parser; a round-trip test in internal/server
// pins the two against each other via the canonical key.
func EncodeAnalyzeBody(ts *taskmodel.TaskSet, cfgs []core.Config) ([]byte, error) {
	var tsBuf bytes.Buffer
	if err := ts.WriteJSON(&tsBuf); err != nil {
		return nil, err
	}
	type wireCfg struct {
		Arbiter            string `json:"arbiter"`
		Persistence        bool   `json:"persistence,omitempty"`
		CRPD               string `json:"crpd,omitempty"`
		CPRO               string `json:"cpro,omitempty"`
		MaxOuterIterations int    `json:"max_outer_iterations,omitempty"`
	}
	wcs := make([]wireCfg, len(cfgs))
	for i, c := range cfgs {
		arb, err := arbiterName(c)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		crpdName, err := crpdNameOf(c)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		cproName, err := cproNameOf(c)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		wcs[i] = wireCfg{
			Arbiter: arb, Persistence: c.Persistence,
			CRPD: crpdName, CPRO: cproName,
			MaxOuterIterations: c.MaxOuterIterations,
		}
	}
	return json.Marshal(map[string]any{
		"taskset": json.RawMessage(tsBuf.Bytes()),
		"configs": wcs,
	})
}

func arbiterName(c core.Config) (string, error) {
	switch c.Arbiter {
	case core.FP:
		return "fp", nil
	case core.RR:
		return "rr", nil
	case core.TDMA:
		return "tdma", nil
	case core.Perfect:
		return "perfect", nil
	case core.Regulated:
		return "regulated", nil
	case core.ParAware:
		return "paraware", nil
	}
	return "", fmt.Errorf("unmapped arbiter %v", c.Arbiter)
}

func crpdNameOf(c core.Config) (string, error) {
	switch c.CRPD {
	case crpd.ECBUnion:
		return "ecb-union", nil
	case crpd.UCBOnly:
		return "ucb-only", nil
	case crpd.ECBOnly:
		return "ecb-only", nil
	case crpd.UCBUnion:
		return "ucb-union", nil
	case crpd.Combined:
		return "combined", nil
	}
	return "", fmt.Errorf("unmapped CRPD approach %v", c.CRPD)
}

func cproNameOf(c core.Config) (string, error) {
	switch c.CPRO {
	case persistence.Union:
		return "union", nil
	case persistence.MultisetUnion:
		return "multiset", nil
	case persistence.FullReload:
		return "full", nil
	case persistence.None:
		return "none", nil
	}
	return "", fmt.Errorf("unmapped CPRO approach %v", c.CPRO)
}
