package cacheset

import (
	"fmt"
	"sort"
	"strings"
)

// Sparse is an alternative cache-set representation holding a sorted
// slice of indices. For the small footprints typical of individual
// tasks (tens of sets out of a 1024-set cache), it is more compact
// than the dense bitset and iterates faster; for union-heavy analysis
// inner loops the dense Set wins. The analysis uses Set throughout;
// Sparse exists for memory-conscious callers and doubles as an
// independent oracle for the property tests of the dense
// implementation.
type Sparse struct {
	n   int
	idx []int // sorted, unique
}

// NewSparse returns an empty sparse set over [0, n).
func NewSparse(n int) Sparse {
	if n < 0 {
		panic("cacheset: negative capacity")
	}
	return Sparse{n: n}
}

// SparseOf builds a sparse set from the given indices.
func SparseOf(n int, idx ...int) Sparse {
	s := NewSparse(n)
	for _, i := range idx {
		s = s.Add(i)
	}
	return s
}

// Capacity returns the index range bound.
func (s Sparse) Capacity() int { return s.n }

// Count returns the cardinality.
func (s Sparse) Count() int { return len(s.idx) }

// IsEmpty reports whether the set has no elements.
func (s Sparse) IsEmpty() bool { return len(s.idx) == 0 }

// Contains reports membership of i.
func (s Sparse) Contains(i int) bool {
	p := sort.SearchInts(s.idx, i)
	return p < len(s.idx) && s.idx[p] == i
}

// Add returns a set additionally containing i (value semantics: the
// receiver is not modified).
func (s Sparse) Add(i int) Sparse {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("cacheset: index %d out of range [0,%d)", i, s.n))
	}
	p := sort.SearchInts(s.idx, i)
	if p < len(s.idx) && s.idx[p] == i {
		return s
	}
	out := make([]int, 0, len(s.idx)+1)
	out = append(out, s.idx[:p]...)
	out = append(out, i)
	out = append(out, s.idx[p:]...)
	return Sparse{n: s.n, idx: out}
}

// Remove returns a set without i.
func (s Sparse) Remove(i int) Sparse {
	p := sort.SearchInts(s.idx, i)
	if p >= len(s.idx) || s.idx[p] != i {
		return s
	}
	out := make([]int, 0, len(s.idx)-1)
	out = append(out, s.idx[:p]...)
	out = append(out, s.idx[p+1:]...)
	return Sparse{n: s.n, idx: out}
}

func (s Sparse) check(t Sparse) {
	if s.n != t.n {
		panic(fmt.Sprintf("cacheset: capacity mismatch %d != %d", s.n, t.n))
	}
}

// Union returns s ∪ t via a sorted merge.
func (s Sparse) Union(t Sparse) Sparse {
	s.check(t)
	out := make([]int, 0, len(s.idx)+len(t.idx))
	i, j := 0, 0
	for i < len(s.idx) && j < len(t.idx) {
		switch {
		case s.idx[i] < t.idx[j]:
			out = append(out, s.idx[i])
			i++
		case s.idx[i] > t.idx[j]:
			out = append(out, t.idx[j])
			j++
		default:
			out = append(out, s.idx[i])
			i++
			j++
		}
	}
	out = append(out, s.idx[i:]...)
	out = append(out, t.idx[j:]...)
	return Sparse{n: s.n, idx: out}
}

// Intersect returns s ∩ t.
func (s Sparse) Intersect(t Sparse) Sparse {
	s.check(t)
	var out []int
	i, j := 0, 0
	for i < len(s.idx) && j < len(t.idx) {
		switch {
		case s.idx[i] < t.idx[j]:
			i++
		case s.idx[i] > t.idx[j]:
			j++
		default:
			out = append(out, s.idx[i])
			i++
			j++
		}
	}
	return Sparse{n: s.n, idx: out}
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Sparse) IntersectCount(t Sparse) int {
	s.check(t)
	c := 0
	i, j := 0, 0
	for i < len(s.idx) && j < len(t.idx) {
		switch {
		case s.idx[i] < t.idx[j]:
			i++
		case s.idx[i] > t.idx[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// Indices returns the elements in increasing order (a copy).
func (s Sparse) Indices() []int {
	return append([]int(nil), s.idx...)
}

// Dense converts to the bitset representation.
func (s Sparse) Dense() Set {
	out := New(s.n)
	for _, i := range s.idx {
		out.Add(i)
	}
	return out
}

// ToSparse converts a dense set to the sparse representation.
func ToSparse(d Set) Sparse {
	return Sparse{n: d.Capacity(), idx: d.Indices()}
}

// String renders as {i1,i2,...}.
func (s Sparse) String() string {
	parts := make([]string, len(s.idx))
	for i, v := range s.idx {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
