// Package cacheset provides a dense bitset over cache-set indices.
//
// Throughout the analysis, the sets ECB (evicting cache blocks), UCB
// (useful cache blocks) and PCB (persistent cache blocks) of a task are
// represented as sets of cache-set indices of a direct-mapped cache,
// following the convention of Altmeyer et al. and Rashid et al.: for a
// direct-mapped cache every memory block occupies exactly one cache set,
// so interference between tasks is fully characterised by which cache
// sets their blocks map to.
package cacheset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const wordBits = 64

// Set is a set of cache-set indices in [0, Capacity()).
// The zero value is an empty set with capacity 0; use New to create a
// set with a given capacity. All binary operations require operands of
// equal capacity and panic otherwise: mixing sets from caches of
// different geometries is always a bug in the caller.
type Set struct {
	n     int // capacity: number of cache sets
	words []uint64
}

// New returns an empty set able to hold indices [0, n).
func New(n int) Set {
	if n < 0 {
		panic("cacheset: negative capacity")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Of returns a set with capacity n containing the given indices.
func Of(n int, idx ...int) Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Capacity returns the number of cache sets the set ranges over.
func (s Set) Capacity() int { return s.n }

// Add inserts index i.
func (s Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("cacheset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Remove deletes index i if present.
func (s Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("cacheset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Contains reports whether index i is in the set.
func (s Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Count returns the cardinality |s|.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

func (s Set) check(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("cacheset: capacity mismatch %d != %d", s.n, t.n))
	}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	s.check(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] |= w
	}
	return r
}

// UnionInPlace sets s = s ∪ t, avoiding an allocation.
func (s Set) UnionInPlace(t Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	s.check(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &= w
	}
	return r
}

// IntersectInPlace sets s = s ∩ t, avoiding an allocation.
func (s Set) IntersectInPlace(t Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Difference returns s \ t as a new set.
func (s Set) Difference(t Set) Set {
	s.check(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &^= w
	}
	return r
}

// DifferenceInPlace sets s = s \ t, avoiding an allocation.
func (s Set) DifferenceInPlace(t Set) {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// CopyFrom overwrites s with the contents of t, avoiding an allocation.
func (s Set) CopyFrom(t Set) {
	s.check(t)
	copy(s.words, t.words)
}

// Clear removes every element, keeping the capacity.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	s.check(t)
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// IntersectCountUnion returns |s ∩ (t1 ∪ t2 ∪ …)| without
// materializing the union. It is the workhorse of the analyzer's
// precomputed interference tables, where terms of the form
// |PCB ∩ ∪ ECB_s| are needed for many task pairs.
func (s Set) IntersectCountUnion(ts ...Set) int {
	for _, t := range ts {
		s.check(t)
	}
	c := 0
	for i, w := range s.words {
		var u uint64
		for _, t := range ts {
			u |= t.words[i]
		}
		c += bits.OnesCount64(w & u)
	}
	return c
}

// Intersects reports whether s ∩ t is non-empty, without allocating.
func (s Set) Intersects(t Set) bool {
	s.check(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	s.check(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t hold exactly the same indices and
// capacity.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Words exposes the set's backing bit words (little-endian set order)
// for read-only consumers — hashing a set's exact contents without
// enumerating its elements. The slice must not be mutated.
func (s Set) Words() []uint64 { return s.words }

// Indices returns the elements of s in increasing order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the set as {i1,i2,...} in increasing order, matching
// the notation used in the paper's Fig. 1.
func (s Set) String() string {
	idx := s.Indices()
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// UnionAll returns the union of all given sets. All sets must share the
// same capacity; capacity n is used if the list is empty.
func UnionAll(n int, sets ...Set) Set {
	r := New(n)
	for _, s := range sets {
		r.UnionInPlace(s)
	}
	return r
}

// FromSorted builds a set from a sorted or unsorted index slice; it is a
// convenience for table-driven tests and JSON decoding.
func FromSorted(n int, idx []int) Set {
	s := New(n)
	sorted := append([]int(nil), idx...)
	sort.Ints(sorted)
	for _, i := range sorted {
		s.Add(i)
	}
	return s
}
