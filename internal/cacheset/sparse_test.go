package cacheset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSparseBasics(t *testing.T) {
	s := SparseOf(16, 5, 3, 5, 9)
	if got, want := s.Indices(), []int{3, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	if s.Count() != 3 || s.IsEmpty() || s.Capacity() != 16 {
		t.Fatalf("basics wrong: %v", s)
	}
	if !s.Contains(5) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	s2 := s.Remove(5)
	if s2.Contains(5) || !s.Contains(5) {
		t.Fatal("Remove must be value-semantic")
	}
	if s.Remove(4).Count() != 3 {
		t.Fatal("removing absent element changed the set")
	}
	if got := s.String(); got != "{3,5,9}" {
		t.Fatalf("String = %q", got)
	}
	if NewSparse(4).String() != "{}" {
		t.Fatal("empty String wrong")
	}
}

func TestSparsePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"add oob":       func() { SparseOf(4, 1).Add(4) },
		"neg capacity":  func() { NewSparse(-1) },
		"capacity mism": func() { SparseOf(4, 1).Union(SparseOf(8, 1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		})
	}
}

func TestSparseDenseRoundtrip(t *testing.T) {
	d := Of(32, 1, 7, 30)
	s := ToSparse(d)
	if !s.Dense().Equal(d) {
		t.Fatal("roundtrip lost elements")
	}
}

// TestSparseMatchesDense uses the dense implementation as the oracle
// for the sparse one (and vice versa) on random inputs.
func TestSparseMatchesDense(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(150)
			mk := func() []int {
				var idx []int
				for i := 0; i < n; i++ {
					if r.Intn(3) == 0 {
						idx = append(idx, i)
					}
				}
				return idx
			}
			v[0] = reflect.ValueOf(n)
			v[1] = reflect.ValueOf(mk())
			v[2] = reflect.ValueOf(mk())
		},
	}
	f := func(n int, a, b []int) bool {
		da, db := FromSorted(n, a), FromSorted(n, b)
		sa, sb := SparseOf(n, a...), SparseOf(n, b...)

		di, si := da.Indices(), sa.Indices()
		if len(di) != len(si) {
			return false
		}
		for i := range di {
			if di[i] != si[i] {
				return false
			}
		}
		if !sa.Union(sb).Dense().Equal(da.Union(db)) {
			return false
		}
		if !sa.Intersect(sb).Dense().Equal(da.Intersect(db)) {
			return false
		}
		if sa.IntersectCount(sb) != da.IntersectCount(db) {
			return false
		}
		for i := 0; i < n; i++ {
			if sa.Contains(i) != da.Contains(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// --- micro-benchmarks: dense vs sparse ---------------------------------------

func benchSets(nsets, footprint int) (Set, Set, Sparse, Sparse) {
	r := rand.New(rand.NewSource(1))
	var ai, bi []int
	for i := 0; i < footprint; i++ {
		ai = append(ai, r.Intn(nsets))
		bi = append(bi, r.Intn(nsets))
	}
	return FromSorted(nsets, ai), FromSorted(nsets, bi),
		SparseOf(nsets, ai...), SparseOf(nsets, bi...)
}

func BenchmarkDenseIntersectCount(b *testing.B) {
	da, db, _, _ := benchSets(1024, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = da.IntersectCount(db)
	}
}

func BenchmarkSparseIntersectCount(b *testing.B) {
	_, _, sa, sb := benchSets(1024, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sa.IntersectCount(sb)
	}
}

func BenchmarkDenseUnion(b *testing.B) {
	da, db, _, _ := benchSets(1024, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = da.Union(db)
	}
}

func BenchmarkSparseUnion(b *testing.B) {
	_, _, sa, sb := benchSets(1024, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sa.Union(sb)
	}
}
