package cacheset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(256)
	if got := s.Count(); got != 0 {
		t.Fatalf("Count() = %d, want 0", got)
	}
	if !s.IsEmpty() {
		t.Fatal("IsEmpty() = false, want true")
	}
	if s.Capacity() != 256 {
		t.Fatalf("Capacity() = %d, want 256", s.Capacity())
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add, want false", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) after Add = false", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove = true")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() after double Remove = %d, want 7", got)
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(256) on capacity-256 set did not panic")
		}
	}()
	New(256).Add(256)
}

func TestContainsOutOfRangeIsFalse(t *testing.T) {
	s := Of(10, 3)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Fatal("Contains out of range should be false, not panic")
	}
}

func TestOf(t *testing.T) {
	s := Of(16, 5, 6, 7, 8, 9, 10)
	want := []int{5, 6, 7, 8, 9, 10}
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices() = %v, want %v", got, want)
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	// ECB/PCB sets from the paper's Fig. 1 example.
	ecb2 := Of(16, 1, 2, 3, 4, 5, 6)
	pcb1 := Of(16, 5, 6, 7, 8, 10)

	union := ecb2.Union(pcb1)
	if got, want := union.Indices(), []int{1, 2, 3, 4, 5, 6, 7, 8, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	inter := ecb2.Intersect(pcb1)
	if got, want := inter.Indices(), []int{5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if got := pcb1.IntersectCount(ecb2); got != 2 {
		t.Fatalf("IntersectCount = %d, want 2", got)
	}
	diff := pcb1.Difference(ecb2)
	if got, want := diff.Indices(), []int{7, 8, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Difference = %v, want %v", got, want)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union across capacities did not panic")
		}
	}()
	Of(16, 1).Union(Of(32, 1))
}

func TestSubsetEqual(t *testing.T) {
	a := Of(64, 1, 2, 3)
	b := Of(64, 1, 2, 3, 4)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a ⊆ a expected")
	}
	if a.Equal(b) {
		t.Fatal("a == b unexpected")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("a == clone(a) expected")
	}
	if a.Equal(Of(32, 1, 2, 3)) {
		t.Fatal("sets with different capacity must not be Equal")
	}
}

func TestIntersects(t *testing.T) {
	a := Of(128, 100)
	b := Of(128, 100, 101)
	c := Of(128, 101)
	if !a.Intersects(b) {
		t.Fatal("a ∩ b expected non-empty")
	}
	if a.Intersects(c) {
		t.Fatal("a ∩ c expected empty")
	}
}

func TestIntersectCountUnion(t *testing.T) {
	n := 8
	pcb := Of(n, 0, 1, 2, 3)
	e1 := Of(n, 1, 5)
	e2 := Of(n, 2, 3, 6)
	if got := pcb.IntersectCountUnion(e1, e2); got != 3 {
		t.Fatalf("IntersectCountUnion = %d, want 3", got)
	}
	if got := pcb.IntersectCountUnion(); got != 0 {
		t.Fatalf("empty union: %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch must panic")
		}
	}()
	pcb.IntersectCountUnion(Of(16, 1))
}

func TestCloneIndependence(t *testing.T) {
	a := Of(16, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestString(t *testing.T) {
	if got := Of(16, 5, 6, 7).String(); got != "{5,6,7}" {
		t.Fatalf("String() = %q, want {5,6,7}", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String() = %q, want {}", got)
	}
}

func TestUnionAll(t *testing.T) {
	u := UnionAll(16, Of(16, 1), Of(16, 2), Of(16, 1, 3))
	if got, want := u.Indices(), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("UnionAll = %v, want %v", got, want)
	}
	if got := UnionAll(8).Count(); got != 0 {
		t.Fatalf("UnionAll() of nothing = %d elements, want 0", got)
	}
}

func TestFromSorted(t *testing.T) {
	s := FromSorted(16, []int{9, 3, 3, 1})
	if got, want := s.Indices(), []int{1, 3, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("FromSorted = %v, want %v", got, want)
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

// genTriple produces three random same-capacity sets for quick.Check
// properties that need multiple operands.
type triple struct{ a, b, c Set }

func genTriple(r *rand.Rand) triple {
	n := 1 + r.Intn(200)
	return triple{randomSet(r, n), randomSet(r, n), randomSet(r, n)}
}

func TestQuickSetAlgebra(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(genTriple(r))
		},
	}

	t.Run("union commutative", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return tr.a.Union(tr.b).Equal(tr.b.Union(tr.a))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("intersect commutative", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return tr.a.Intersect(tr.b).Equal(tr.b.Intersect(tr.a))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("union associative", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return tr.a.Union(tr.b).Union(tr.c).Equal(tr.a.Union(tr.b.Union(tr.c)))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributivity", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			lhs := tr.a.Intersect(tr.b.Union(tr.c))
			rhs := tr.a.Intersect(tr.b).Union(tr.a.Intersect(tr.c))
			return lhs.Equal(rhs)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("de morgan via difference", func(t *testing.T) {
		// a \ (b ∪ c) == (a \ b) ∩ (a \ c)
		if err := quick.Check(func(tr triple) bool {
			lhs := tr.a.Difference(tr.b.Union(tr.c))
			rhs := tr.a.Difference(tr.b).Intersect(tr.a.Difference(tr.c))
			return lhs.Equal(rhs)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("inclusion-exclusion", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return tr.a.Union(tr.b).Count() == tr.a.Count()+tr.b.Count()-tr.a.IntersectCount(tr.b)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("intersect count matches intersect", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return tr.a.IntersectCount(tr.b) == tr.a.Intersect(tr.b).Count()
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("intersect count union matches materialized union", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return tr.a.IntersectCountUnion(tr.b, tr.c) == tr.a.IntersectCount(tr.b.Union(tr.c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("subset of union", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			u := tr.a.Union(tr.b)
			return tr.a.SubsetOf(u) && tr.b.SubsetOf(u)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("intersection subset", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			i := tr.a.Intersect(tr.b)
			return i.SubsetOf(tr.a) && i.SubsetOf(tr.b)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("indices roundtrip", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			return FromSorted(tr.a.Capacity(), tr.a.Indices()).Equal(tr.a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestInPlaceVariantsMatchAllocating(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(genTriple(r))
		},
	}
	t.Run("intersect", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			got := tr.a.Clone()
			got.IntersectInPlace(tr.b)
			return got.Equal(tr.a.Intersect(tr.b))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("difference", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			got := tr.a.Clone()
			got.DifferenceInPlace(tr.b)
			return got.Equal(tr.a.Difference(tr.b))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("copy and clear", func(t *testing.T) {
		if err := quick.Check(func(tr triple) bool {
			got := tr.a.Clone()
			got.CopyFrom(tr.b)
			if !got.Equal(tr.b) {
				return false
			}
			got.Clear()
			return got.IsEmpty() && got.Capacity() == tr.b.Capacity()
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestInPlaceCapacityMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(a, b Set){
		"IntersectInPlace":  func(a, b Set) { a.IntersectInPlace(b) },
		"DifferenceInPlace": func(a, b Set) { a.DifferenceInPlace(b) },
		"CopyFrom":          func(a, b Set) { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s across capacities did not panic", name)
				}
			}()
			f(New(64), New(128))
		}()
	}
}

// TestHotOpsDoNotAllocate pins the allocation-free contract of the
// operations used inside the analyzer's fixed-point loop and table
// fills: counting intersections and mutating in place must never
// touch the heap.
func TestHotOpsDoNotAllocate(t *testing.T) {
	a := Of(256, 1, 64, 65, 130, 200, 255)
	b := Of(256, 0, 64, 129, 130, 254)
	c := Of(256, 2, 65, 128, 200)
	scratch := New(256)
	sink := 0
	for name, f := range map[string]func(){
		"IntersectCount":      func() { sink += a.IntersectCount(b) },
		"IntersectCountUnion": func() { sink += a.IntersectCountUnion(b, c) },
		"Intersects": func() {
			if a.Intersects(b) {
				sink++
			}
		},
		"Count": func() { sink += a.Count() },
		"SubsetOf": func() {
			if a.SubsetOf(b) {
				sink++
			}
		},
		"Equal": func() {
			if a.Equal(b) {
				sink++
			}
		},
		"UnionInPlace":      func() { scratch.UnionInPlace(b) },
		"IntersectInPlace":  func() { scratch.IntersectInPlace(c) },
		"DifferenceInPlace": func() { scratch.DifferenceInPlace(b) },
		"CopyFrom":          func() { scratch.CopyFrom(a) },
		"Clear":             func() { scratch.Clear() },
	} {
		if avg := testing.AllocsPerRun(100, f); avg != 0 {
			t.Errorf("%s allocates %v times per call, want 0", name, avg)
		}
	}
	_ = sink
}
