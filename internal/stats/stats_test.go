package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestWeightedSchedulability(t *testing.T) {
	obs := []Observation{
		{Utilization: 0.2, Schedulable: true},
		{Utilization: 0.8, Schedulable: false},
	}
	if got := WeightedSchedulability(obs); !approx(got, 0.2) {
		t.Errorf("W = %g, want 0.2", got)
	}
	if got := WeightedSchedulability(nil); got != 0 {
		t.Errorf("W(empty) = %g, want 0", got)
	}
	all := []Observation{{0.5, true}, {0.7, true}}
	if got := WeightedSchedulability(all); !approx(got, 1) {
		t.Errorf("W(all schedulable) = %g, want 1", got)
	}
}

func TestWeightedFavoursHeavySets(t *testing.T) {
	// Same ratio (1/2) but scheduling the heavy set scores higher.
	heavyWins := []Observation{{0.9, true}, {0.1, false}}
	lightWins := []Observation{{0.9, false}, {0.1, true}}
	if WeightedSchedulability(heavyWins) <= WeightedSchedulability(lightWins) {
		t.Error("weighted measure must favour schedulable heavy sets")
	}
	if Ratio(heavyWins) != Ratio(lightWins) {
		t.Error("plain ratio should tie")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(nil); got != 0 {
		t.Errorf("Ratio(empty) = %g", got)
	}
	obs := []Observation{{1, true}, {1, false}, {1, true}, {1, true}}
	if got := Ratio(obs); !approx(got, 0.75) {
		t.Errorf("Ratio = %g, want 0.75", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(empty) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); !approx(got, 2) {
		t.Errorf("Mean = %g, want 2", got)
	}
}

func TestQuickWeightedBounds(t *testing.T) {
	f := func(utils []float64, flags []bool) bool {
		var obs []Observation
		for i, u := range utils {
			if i >= len(flags) {
				break
			}
			u = math.Abs(u)
			if math.IsNaN(u) || math.IsInf(u, 0) {
				u = 0.5
			}
			// Normalise into a realistic utilization range so the sums
			// stay finite regardless of what quick generates.
			u = math.Mod(u, 8.0)
			obs = append(obs, Observation{Utilization: u, Schedulable: flags[i]})
		}
		w := WeightedSchedulability(obs)
		return w >= 0 && w <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("n=0 interval = [%g,%g], want [0,1]", lo, hi)
	}
	// Saturated proportions stay inside [0,1] and exclude neither
	// endpoint unreasonably.
	lo, hi = WilsonInterval(50, 50, 1.96)
	if hi != 1 || lo < 0.9 {
		t.Errorf("k=n interval = [%g,%g]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 50, 1.96)
	if lo != 0 || hi > 0.1 {
		t.Errorf("k=0 interval = [%g,%g]", lo, hi)
	}
	// Interval contains the point estimate and tightens with n.
	lo1, hi1 := WilsonInterval(30, 60, 1.96)
	lo2, hi2 := WilsonInterval(300, 600, 1.96)
	if !(lo1 < 0.5 && 0.5 < hi1) {
		t.Errorf("interval [%g,%g] does not contain 0.5", lo1, hi1)
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not tighten: n=60 width %g, n=600 width %g", hi1-lo1, hi2-lo2)
	}
}

func TestQuickWilsonBounds(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := WilsonInterval(k, n, 1.96)
		p := float64(k) / float64(n)
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && p <= hi+1e-12 && lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
