// Package stats provides the evaluation metrics of the paper:
// schedulability ratios and the weighted schedulability measure of
// Bastoni, Brandenburg and Anderson used in Fig. 3.
package stats

import "math"

// Observation is one analysed task set: its (per-core average)
// utilization and the verdict of one analysis.
type Observation struct {
	Utilization float64
	Schedulable bool
}

// WeightedSchedulability reduces observations across a utilization
// sweep to a single number in [0,1]:
//
//	W(p) = Σ U(ts)·S(ts,p) / Σ U(ts)
//
// Higher-utilization task sets weigh more, so the measure rewards
// analyses that keep heavy workloads schedulable. An empty input
// yields 0.
func WeightedSchedulability(obs []Observation) float64 {
	var num, den float64
	for _, o := range obs {
		den += o.Utilization
		if o.Schedulable {
			num += o.Utilization
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Ratio returns the plain fraction of schedulable observations.
func Ratio(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	n := 0
	for _, o := range obs {
		if o.Schedulable {
			n++
		}
	}
	return float64(n) / float64(len(obs))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: successes k out of n trials at confidence
// parameter z (1.96 for 95%). It is well behaved at the extremes
// (k = 0 or k = n), unlike the normal approximation, which matters for
// schedulability curves that saturate at 0 and 1. n = 0 yields (0, 1).
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
