package report

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

func genSet(t *testing.T, util float64) *taskmodel.TaskSet {
	t.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = 2
	cfg.TasksPerCore = 3
	cfg.CoreUtilization = util
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestWriteFullReport(t *testing.T) {
	ts := genSet(t, 0.2)
	var b strings.Builder
	err := Write(&b, ts, Options{Sensitivity: true, ExplainWorst: true})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# Bus contention analysis report",
		"## Schedulability verdicts",
		"| FP |", "| FP-CP |", "| RR |", "| RR-CP |", "| TDMA |", "| TDMA-CP |",
		"| Regulated |", "| Regulated-CP |", "| ParAware |", "| ParAware-CP |", "| Perfect |",
		"## Per-task bounds (RR-CP)",
		"## Bound decomposition — most stressed task",
		"## Sensitivity",
		"## Cache pressure",
		"core 0:", "core 1:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteMinimalReport(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	var b strings.Builder
	if err := Write(&b, ts, Options{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "## Sensitivity") {
		t.Error("sensitivity section present despite Options zero value")
	}
	if strings.Contains(out, "Bound decomposition") {
		t.Error("explain section present despite Options zero value")
	}
	if !strings.Contains(out, "tau2") {
		t.Error("per-task table missing tau2")
	}
	// Fig. 1's platform carries no regulation parameters, so the
	// regulated rows must be absent rather than erroring the report.
	if strings.Contains(out, "| Regulated |") {
		t.Error("regulated verdict row present despite an unregulated platform")
	}
	if !strings.Contains(out, "| ParAware |") {
		t.Error("ParAware verdict row missing")
	}
}

func TestWriteCustomReference(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	var b strings.Builder
	err := Write(&b, ts, Options{Reference: core.Config{Arbiter: core.FP, Persistence: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## Per-task bounds (FP-CP)") {
		t.Errorf("reference configuration not honoured:\n%s", b.String())
	}
}

func TestWriteUnschedulableSet(t *testing.T) {
	ts := genSet(t, 0.95)
	var b strings.Builder
	if err := Write(&b, ts, Options{ExplainWorst: true}); err != nil {
		t.Fatalf("Write on unschedulable set: %v", err)
	}
	if !strings.Contains(b.String(), "| false |") && !strings.Contains(b.String(), "miss") {
		t.Error("unschedulable verdicts not visible")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	ts.Tasks[0].MDr = ts.Tasks[0].MD + 1
	if err := Write(&strings.Builder{}, ts, Options{}); err == nil {
		t.Fatal("invalid task set accepted")
	}
}
