// Package report renders a complete Markdown analysis report for a
// task set: platform summary, verdicts of all six analyses plus the
// perfect-bus reference, per-task WCRT tables, a bound decomposition
// for the most-stressed task, and sensitivity margins. It is the
// "give me everything" front end over internal/core.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/taskmodel"
)

// Options selects what the report contains.
type Options struct {
	// Sensitivity adds the MaxDMem / CriticalScaling section (slower:
	// dozens of fixed-point runs).
	Sensitivity bool
	// ExplainWorst decomposes the WCRT of the task with the least
	// slack under the reference configuration.
	ExplainWorst bool
	// Reference is the configuration used for the detail sections;
	// zero value means RR with persistence.
	Reference core.Config
}

type variantRow struct {
	name string
	cfg  core.Config
}

// variants lists every analysis the verdict matrix runs. The regulated
// rows only appear when the platform carries regulation parameters —
// without them the regulated analysis rejects the configuration.
func variants(p taskmodel.Platform) []variantRow {
	rows := []variantRow{
		{"FP", core.Config{Arbiter: core.FP}},
		{"FP-CP", core.Config{Arbiter: core.FP, Persistence: true}},
		{"RR", core.Config{Arbiter: core.RR}},
		{"RR-CP", core.Config{Arbiter: core.RR, Persistence: true}},
		{"TDMA", core.Config{Arbiter: core.TDMA}},
		{"TDMA-CP", core.Config{Arbiter: core.TDMA, Persistence: true}},
	}
	if p.RegBudget >= 1 && p.RegPeriod >= 1 {
		rows = append(rows,
			variantRow{"Regulated", core.Config{Arbiter: core.Regulated}},
			variantRow{"Regulated-CP", core.Config{Arbiter: core.Regulated, Persistence: true}},
		)
	}
	rows = append(rows,
		variantRow{"ParAware", core.Config{Arbiter: core.ParAware}},
		variantRow{"ParAware-CP", core.Config{Arbiter: core.ParAware, Persistence: true}},
		variantRow{"Perfect", core.Config{Arbiter: core.Perfect, Persistence: true}},
	)
	return rows
}

// Write renders the report.
func Write(w io.Writer, ts *taskmodel.TaskSet, opts Options) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	ref := opts.Reference
	if ref == (core.Config{}) {
		ref = core.Config{Arbiter: core.RR, Persistence: true}
	}

	fmt.Fprintf(w, "# Bus contention analysis report\n\n")
	p := ts.Platform
	fmt.Fprintf(w, "Platform: %d cores, L1 %d sets × %d B", p.NumCores, p.Cache.NumSets, p.Cache.BlockSizeBytes)
	if p.Cache.Ways() > 1 {
		fmt.Fprintf(w, " (%d-way)", p.Cache.Ways())
	}
	if p.HasL2() {
		fmt.Fprintf(w, ", L2 %d sets × %d-way (d_l2=%d)", p.L2.NumSets, p.L2.Ways(), p.DL2)
	}
	fmt.Fprintf(w, ", d_mem=%d, RR/TDMA slot size %d.\n\n", p.DMem, p.SlotSize)
	fmt.Fprintf(w, "Tasks: %d; total utilization %.3f (per-core avg %.3f); bus utilization %.3f.\n\n",
		len(ts.Tasks), ts.TotalUtilization(), ts.TotalUtilization()/float64(p.NumCores), ts.BusUtilization())

	// Verdict matrix.
	fmt.Fprintf(w, "## Schedulability verdicts\n\n")
	fmt.Fprintf(w, "| analysis | schedulable | outer iterations |\n|---|---|---|\n")
	results := map[string]*core.Result{}
	for _, v := range variants(ts.Platform) {
		res, err := core.Analyze(ts, v.cfg)
		if err != nil {
			return err
		}
		results[v.name] = res
		fmt.Fprintf(w, "| %s | %v | %d |\n", v.name, res.Schedulable, res.OuterIterations)
	}
	fmt.Fprintln(w)

	// Per-task WCRT table under the reference configuration (and its
	// persistence-oblivious sibling for contrast).
	refName := ref.Arbiter.String()
	if ref.Persistence {
		refName += "-CP"
	}
	base := ref
	base.Persistence = false
	baseRes, err := core.Analyze(ts, base)
	if err != nil {
		return err
	}
	refRes, err := core.Analyze(ts, ref)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Per-task bounds (%s)\n\n", refName)
	if !refRes.Complete || !baseRes.Complete {
		fmt.Fprintf(w, "*(an analysis aborted at its first deadline miss; missing rows show `n/a`)*\n\n")
	}
	fmt.Fprintf(w, "| task | core | prio | T=D | WCRT %s | WCRT %s | slack %% |\n|---|---|---|---|---|---|---|\n",
		ref.Arbiter, refName)
	cell := func(res *core.Result, i int) string {
		tr := res.Tasks[i]
		if !tr.Verified {
			return "n/a" // aborted before judging this task
		}
		if !tr.Schedulable {
			return "miss"
		}
		return fmt.Sprint(tr.WCRT)
	}
	for i, tr := range refRes.Tasks {
		slack := "-"
		if refRes.Complete && tr.Schedulable && tr.Deadline > 0 {
			slack = fmt.Sprintf("%.1f", 100*float64(tr.Deadline-tr.WCRT)/float64(tr.Deadline))
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d | %s | %s | %s |\n",
			tr.Name, tr.Core, tr.Priority, tr.Deadline, cell(baseRes, i), cell(refRes, i), slack)
	}
	fmt.Fprintln(w)

	if opts.ExplainWorst && refRes.Complete {
		// Least relative slack = most stressed.
		idx := -1
		worst := 2.0
		for i, tr := range refRes.Tasks {
			if !tr.Schedulable || tr.Deadline == 0 {
				continue
			}
			s := float64(tr.Deadline-tr.WCRT) / float64(tr.Deadline)
			if s < worst {
				worst = s
				idx = i
			}
		}
		if idx >= 0 {
			ex, err := core.Explain(ts, ref, refRes.Tasks[idx].Priority)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "## Bound decomposition — most stressed task\n\n```\n")
			if err := ex.Render(w); err != nil {
				return err
			}
			fmt.Fprintf(w, "```\n\n")
		}
	}

	if opts.Sensitivity {
		fmt.Fprintf(w, "## Sensitivity\n\n")
		fmt.Fprintf(w, "| analysis | max d_mem | critical scaling |\n|---|---|---|\n")
		for _, v := range variants(ts.Platform) {
			if v.cfg.Arbiter == core.Perfect {
				continue
			}
			maxD, err := core.MaxDMem(ts, v.cfg, 1<<16)
			if err != nil {
				return err
			}
			scale := "-"
			if k, err := core.CriticalScaling(ts, v.cfg, 1e-3); err == nil {
				scale = fmt.Sprintf("%.3f", k)
			}
			fmt.Fprintf(w, "| %s | %d | %s |\n", v.name, maxD, scale)
		}
		fmt.Fprintln(w)
	}

	// Footprint pressure summary: which cache sets are most contested.
	fmt.Fprintf(w, "## Cache pressure\n\n")
	for c := 0; c < p.NumCores; c++ {
		tasks := ts.OnCore(c)
		names := make([]string, 0, len(tasks))
		overlap := 0
		for _, a := range tasks {
			names = append(names, a.Name)
			for _, b := range tasks {
				if a != b {
					overlap += a.PCB.IntersectCount(b.ECB)
				}
			}
		}
		sort.Strings(names)
		fmt.Fprintf(w, "- core %d: %d tasks (%s); PCB∩ECB collision score %d\n",
			c, len(tasks), strings.Join(names, ", "), overlap)
	}
	return nil
}
