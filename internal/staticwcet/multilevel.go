package staticwcet

import (
	"fmt"

	"repro/internal/cacheset"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

// Two-level cache hierarchy analysis — the paper's stated future work
// ("extend the proposed analysis to multilevel caches"). The L1
// analysis is the existing one; the L2 analysis follows Hardy & Puaut:
// a reference accesses L2 only if it may miss L1, so
//
//   - L1 always-hit references never reach L2 (no L2 state change);
//   - L1 always-miss references definitely access L2 (normal transfer);
//   - references that may or may not hit L1 (first-miss) update the L2
//     must state conservatively: ages advance as if the access
//     happened, but the block gains no guarantee (join of the
//     access/no-access outcomes).
//
// Bus traffic is the L2 miss count, so the hierarchy result plugs into
// the bus contention analysis as MD/MD^r, with the L2 footprints as
// ECB/PCB: the shared bus only ever sees L2 misses, and persistence
// between jobs lives in L2 (backed by L1 persistence for the subset
// that also fits there). The per-job L1 misses are reported so callers
// can fold the L1→L2 latency into the execution demand:
// PD_eff = PD + L1Misses·d_l2.
type HierResult struct {
	// PD is the pure execution demand (all hits), as in Result.
	PD taskmodel.Time
	// L1Misses bounds the references reaching L2 per job (paper-style
	// accounting, no first-miss credit).
	L1Misses int64
	// MD / MDr bound the bus accesses (L2 misses) per job, cold and
	// with L2 PCBs preloaded, in the paper-style accounting (no
	// first-miss credit).
	MD, MDr int64
	// MDExact / MDrExact additionally credit first-miss references
	// whose block is L2-persistent within an enclosing loop: they miss
	// L2 at most once per loop entry. These are the bounds that show
	// how much bus traffic the L2 genuinely absorbs.
	MDExact, MDrExact int64
	// ECB, PCB are the L2 cache-set footprints; UCB is the L2 reuse
	// footprint.
	ECB, UCB, PCB cacheset.Set
	// PCBBlocks are the L2-persistent memory blocks.
	PCBBlocks []int
}

// AnalyzeHierarchy analyses prog against a private L1 + private L2
// hierarchy with equal block sizes.
func AnalyzeHierarchy(prog *program.Program, l1, l2 taskmodel.CacheConfig) (*HierResult, error) {
	if l1.BlockSizeBytes != l2.BlockSizeBytes {
		return nil, fmt.Errorf("staticwcet: L1 block %dB != L2 block %dB", l1.BlockSizeBytes, l2.BlockSizeBytes)
	}
	if l2.NumSets < 1 {
		return nil, fmt.Errorf("staticwcet: L2 NumSets = %d, need >= 1", l2.NumSets)
	}
	l1res, err := Analyze(prog, l1)
	if err != nil {
		return nil, err
	}

	// L2 footprint and persistence (self-eviction rule at L2 geometry).
	blocksPerSet := map[int]map[int]bool{}
	for _, ref := range l1res.Refs {
		s := l2.SetOf(ref.Block)
		if blocksPerSet[s] == nil {
			blocksPerSet[s] = map[int]bool{}
		}
		blocksPerSet[s][ref.Block] = true
	}
	ecb := cacheset.New(l2.NumSets)
	pcb := cacheset.New(l2.NumSets)
	var pcbBlocks []int
	for s, blocks := range blocksPerSet {
		ecb.Add(s)
		if len(blocks) <= l2.Ways() {
			pcb.Add(s)
			for b := range blocks {
				pcbBlocks = append(pcbBlocks, b)
			}
		}
	}
	sortInts(pcbBlocks)

	// Loop structure at L2 geometry, for first-miss credit: how many
	// distinct footprint blocks of each loop share each L2 set.
	l2an := &analyzer{cache: l2}
	l2an.structure(prog.Root, nil, 1)

	h := &hierWalker{
		l2:      l2,
		an:      l2an,
		classes: l1res.Refs,
	}
	newSt := func() *state { return &state{ways: l2.Ways(), sets: make([][]ageEntry, l2.NumSets)} }
	warmSt := func() *state {
		st := newSt()
		for _, b := range pcbBlocks {
			st.install(l2.SetOf(b), b)
		}
		return st
	}
	l1m, md, ucb := h.count(prog, newSt(), false)
	_, mdExact, _ := h.count(prog, newSt(), true)
	_, mdr, _ := h.count(prog, warmSt(), false)
	_, mdrExact, _ := h.count(prog, warmSt(), true)

	return &HierResult{
		PD:        l1res.PD,
		L1Misses:  l1m,
		MD:        md,
		MDr:       mdr,
		MDExact:   mdExact,
		MDrExact:  mdrExact,
		ECB:       ecb,
		UCB:       ucb,
		PCB:       pcb,
		PCBBlocks: pcbBlocks,
	}, nil
}

// hierWalker runs the L2 must analysis driven by the L1 per-reference
// classifications.
type hierWalker struct {
	l2      taskmodel.CacheConfig
	an      *analyzer // loop footprints at L2 geometry
	classes []RefReport
}

func (h *hierWalker) count(prog *program.Program, init *state, fmCredit bool) (l1Misses, l2Misses int64, ucb cacheset.Set) {
	w := &hierPass{
		l2: h.l2, an: h.an, classes: h.classes,
		fmCredit: fmCredit,
		charged:  map[[2]int64]bool{},
		ucb:      cacheset.New(h.l2.NumSets),
	}
	w.walk(prog.Root, init.clone(), true)
	return w.l1Misses, w.l2Misses, w.ucb
}

type hierPass struct {
	l2       taskmodel.CacheConfig
	an       *analyzer
	classes  []RefReport
	fmCredit bool
	charged  map[[2]int64]bool
	refIdx   int
	l1Misses int64
	l2Misses int64
	ucb      cacheset.Set
}

// chargeL2 records the bus cost of one non-L2-guaranteed reference
// occurrence: with first-miss credit, a block that is L2-persistent in
// an enclosing loop pays once per loop entry (deduplicated per block
// and loop); otherwise every execution pays.
func (w *hierPass) chargeL2(block int, exec int64) {
	if w.fmCredit {
		ri := w.an.refs[w.refIdx-1]
		setIdx := w.l2.SetOf(block)
		for _, lid := range ri.loops { // outermost first
			if w.an.loops[lid].sets[setIdx] <= w.l2.Ways() {
				key := [2]int64{int64(block), int64(lid)}
				if !w.charged[key] {
					w.charged[key] = true
					w.l2Misses += w.an.loops[lid].entries
				}
				return
			}
		}
	}
	w.l2Misses += exec
}

func (w *hierPass) walk(n program.Node, st *state, record bool) *state {
	switch v := n.(type) {
	case *program.Ref:
		setIdx := w.l2.SetOf(v.Block)
		var cls Classification
		var exec int64
		if record {
			rep := w.classes[w.refIdx]
			cls, exec = rep.Class, rep.ExecCount
			w.refIdx++
		} else {
			// Fixpoint passes do not consume the class stream; the
			// transfer only needs to know whether the access definitely
			// happens, so resolve by position lookahead is impossible —
			// instead, apply the conservative maybe-access transfer for
			// every non-recorded walk, which is sound (it only weakens
			// the state).
			cls = FirstMiss
		}
		switch cls {
		case AlwaysHit:
			// L1 satisfies the reference: L2 untouched.
			return st
		case AlwaysMiss:
			if record {
				w.l1Misses += exec
				if st.contains(setIdx, v.Block) {
					w.ucb.Add(setIdx)
				} else {
					w.chargeL2(v.Block, exec)
				}
			}
			st.access(setIdx, v.Block)
			return st
		default: // FirstMiss: the L2 access may or may not happen.
			if record {
				w.l1Misses += exec
				if st.contains(setIdx, v.Block) {
					w.ucb.Add(setIdx)
				} else {
					w.chargeL2(v.Block, exec)
				}
			}
			with := st.clone()
			with.access(setIdx, v.Block)
			return st.join(with)
		}
	case *program.Seq:
		for _, it := range v.Items {
			st = w.walk(it, st, record)
		}
		return st
	case *program.Alt:
		sa := w.walk(v.A, st.clone(), record)
		sb := w.walk(v.B, st.clone(), record)
		return sa.join(sb)
	case *program.Loop:
		entry := st.clone()
		for {
			out := w.walk(v.Body, entry.clone(), false)
			next := st.join(out)
			if next.equal(entry) {
				break
			}
			entry = next
		}
		return w.walk(v.Body, entry.clone(), record)
	default:
		panic(fmt.Sprintf("staticwcet: unknown node %T", n))
	}
}
