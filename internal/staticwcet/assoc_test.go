package staticwcet

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

func cacheAssoc(nsets, ways int) taskmodel.CacheConfig {
	return taskmodel.CacheConfig{NumSets: nsets, BlockSizeBytes: 32, Associativity: ways}
}

func TestTwoWayResolvesThrashing(t *testing.T) {
	// Blocks 0 and 4 collide in a 4-set direct-mapped cache and thrash;
	// at two ways they coexist and become persistent.
	p := &program.Program{Name: "pair", Root: program.L(10, program.R(0, 1), program.R(4, 1))}

	dm := mustAnalyze(t, p, cacheAssoc(4, 1))
	if dm.MDExact != 20 || !dm.PCB.IsEmpty() {
		t.Fatalf("direct-mapped: MDExact=%d PCB=%v, want 20 and empty", dm.MDExact, dm.PCB)
	}

	w2 := mustAnalyze(t, p, cacheAssoc(4, 2))
	if w2.MDExact != 2 {
		t.Errorf("2-way MDExact = %d, want 2 (one first-miss per block)", w2.MDExact)
	}
	if w2.PCB.Count() != 1 {
		t.Errorf("2-way |PCB| = %d, want 1 (set 0 holds both blocks)", w2.PCB.Count())
	}
	if w2.MDr != 0 || w2.MDrExact != 0 {
		t.Errorf("2-way MDr = %d/%d, want 0/0", w2.MDr, w2.MDrExact)
	}
}

func TestMustAnalysisAgesAcrossWays(t *testing.T) {
	// 2-way set: access 0, 4, then 0 again — 0 must still be resident
	// (age 1 after 4's fetch), so the third reference is a must hit.
	p := &program.Program{Name: "ages", Root: program.S(
		program.R(0, 1), program.R(4, 1), program.R(0, 1),
	)}
	r := mustAnalyze(t, p, cacheAssoc(4, 2))
	if r.MD != 2 {
		t.Errorf("MD = %d, want 2 (third reference must hit)", r.MD)
	}
	if r.Refs[2].Class != AlwaysHit {
		t.Errorf("third ref class = %v, want AH", r.Refs[2].Class)
	}
	// And with three conflicting blocks in two ways, the guarantee dies.
	p3 := &program.Program{Name: "ages3", Root: program.S(
		program.R(0, 1), program.R(4, 1), program.R(8, 1), program.R(0, 1),
	)}
	r3 := mustAnalyze(t, p3, cacheAssoc(4, 2))
	if r3.Refs[3].Class == AlwaysHit {
		t.Error("block 0 cannot be guaranteed after two younger conflicting fetches")
	}
}

func TestAssociativityMonotonicity(t *testing.T) {
	// At a fixed number of sets, growing associativity can only reduce
	// the exact miss bound and grow the persistent footprint.
	gen := program.DefaultGenConfig()
	for seed := int64(0); seed < 40; seed++ {
		p := program.Generate("rand", gen, rand.New(rand.NewSource(seed)))
		prevMD := int64(1 << 60)
		prevPCB := -1
		for _, ways := range []int{1, 2, 4} {
			r := mustAnalyze(t, p, cacheAssoc(8, ways))
			if r.MDExact > prevMD {
				t.Fatalf("seed %d: MDExact grew from %d to %d at %d ways", seed, prevMD, r.MDExact, ways)
			}
			if r.PCB.Count() < prevPCB {
				t.Fatalf("seed %d: |PCB| shrank from %d to %d at %d ways", seed, prevPCB, r.PCB.Count(), ways)
			}
			prevMD, prevPCB = r.MDExact, r.PCB.Count()
		}
	}
}

func TestSoundnessRandomProgramsAssociative(t *testing.T) {
	// The analysis-vs-simulation cross-check of the direct-mapped suite,
	// repeated for LRU associativities 2 and 4.
	gen := program.DefaultGenConfig()
	gen.MaxLoopBound = 6
	for seed := int64(0); seed < 60; seed++ {
		p := program.Generate("rand", gen, rand.New(rand.NewSource(seed)))
		if p.DynamicRefs() > 100000 {
			continue
		}
		for _, cc := range []taskmodel.CacheConfig{cacheAssoc(4, 2), cacheAssoc(8, 2), cacheAssoc(4, 4)} {
			r, err := Analyze(p, cc)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			cold := cachesim.New(cc)
			if m := simulateJob(p, cold); m > r.MDExact {
				t.Fatalf("seed %d %d-way: cold misses %d > MDExact %d", seed, cc.Ways(), m, r.MDExact)
			}
			if m := simulateJob(p, cold); m > r.MDrExact {
				t.Fatalf("seed %d %d-way: warm misses %d > MDrExact %d", seed, cc.Ways(), m, r.MDrExact)
			}
			warm := cachesim.New(cc)
			for _, b := range r.PCBBlocks {
				warm.Install(b)
			}
			if m := simulateJob(p, warm); m > r.MDrExact {
				t.Fatalf("seed %d %d-way: preloaded misses %d > MDrExact %d", seed, cc.Ways(), m, r.MDrExact)
			}
		}
	}
}
