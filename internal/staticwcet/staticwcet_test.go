package staticwcet

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/cachesim"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

func cache(nsets int) taskmodel.CacheConfig {
	return taskmodel.CacheConfig{NumSets: nsets, BlockSizeBytes: 32}
}

func mustAnalyze(t *testing.T, p *program.Program, cfg taskmodel.CacheConfig) *Result {
	t.Helper()
	r, err := Analyze(p, cfg)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", p.Name, err)
	}
	return r
}

func TestStraightLineNoConflicts(t *testing.T) {
	p := &program.Program{Name: "straight", Root: program.Straight(0, 4, 3)}
	r := mustAnalyze(t, p, cache(16))
	if r.PD != 12 {
		t.Errorf("PD = %d, want 12", r.PD)
	}
	if r.MD != 4 || r.MDExact != 4 {
		t.Errorf("MD = %d/%d, want 4/4 (every block cold-misses once)", r.MD, r.MDExact)
	}
	if r.MDr != 0 || r.MDrExact != 0 {
		t.Errorf("MDr = %d/%d, want 0/0 (all blocks persistent)", r.MDr, r.MDrExact)
	}
	if !r.ECB.Equal(cacheset.Of(16, 0, 1, 2, 3)) {
		t.Errorf("ECB = %v, want {0,1,2,3}", r.ECB)
	}
	if !r.PCB.Equal(r.ECB) {
		t.Errorf("PCB = %v, want ECB %v", r.PCB, r.ECB)
	}
	if !r.UCB.IsEmpty() {
		t.Errorf("UCB = %v, want empty (no reuse)", r.UCB)
	}
	if got, want := r.PCBBlocks, []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("PCBBlocks = %v, want %v", got, want)
	}
}

func TestLoopFirstMiss(t *testing.T) {
	// for 10x { ref 0; ref 1 } — both blocks persistent in the loop.
	p := &program.Program{Name: "loopfm", Root: program.L(10, program.R(0, 2), program.R(1, 2))}
	r := mustAnalyze(t, p, cache(16))
	if r.PD != 40 {
		t.Errorf("PD = %d, want 40", r.PD)
	}
	// Paper accounting: no first-miss credit, so both blocks are
	// charged on every iteration (this is the Heptane-style pessimism
	// the persistence-aware analysis reclaims). Exact accounting: one
	// first-miss per block.
	if r.MD != 20 {
		t.Errorf("MD = %d, want 20 (10 iterations x 2 blocks)", r.MD)
	}
	if r.MDExact != 2 {
		t.Errorf("MDExact = %d, want 2 (one first-miss per block)", r.MDExact)
	}
	if r.MDr != 0 || r.MDrExact != 0 {
		t.Errorf("MDr = %d/%d, want 0/0", r.MDr, r.MDrExact)
	}
	if !r.UCB.Equal(cacheset.Of(16, 0, 1)) {
		t.Errorf("UCB = %v, want {0,1} (reused across iterations)", r.UCB)
	}
	// Classifications: both refs FirstMiss.
	for i, rep := range r.Refs {
		if rep.Class != FirstMiss {
			t.Errorf("Refs[%d].Class = %v, want FM", i, rep.Class)
		}
	}
}

func TestConflictingLoopAlwaysMiss(t *testing.T) {
	// Blocks 0 and 4 collide in a 4-set cache: thrashing loop.
	p := &program.Program{Name: "thrash", Root: program.L(10, program.R(0, 1), program.R(4, 1))}
	r := mustAnalyze(t, p, cache(4))
	if r.MD != 20 || r.MDExact != 20 {
		t.Errorf("MD = %d/%d, want 20/20 (both references always miss)", r.MD, r.MDExact)
	}
	if r.MDr != 20 || r.MDrExact != 20 {
		t.Errorf("MDr = %d/%d, want 20/20 (no PCBs to preload)", r.MDr, r.MDrExact)
	}
	if !r.PCB.IsEmpty() {
		t.Errorf("PCB = %v, want empty", r.PCB)
	}
	if !r.UCB.IsEmpty() {
		t.Errorf("UCB = %v, want empty", r.UCB)
	}
	if !r.ECB.Equal(cacheset.Of(4, 0)) {
		t.Errorf("ECB = %v, want {0}", r.ECB)
	}
}

func TestSequentialReuseAlwaysHit(t *testing.T) {
	p := &program.Program{Name: "reuse", Root: program.S(program.R(0, 1), program.R(0, 1))}
	r := mustAnalyze(t, p, cache(4))
	if r.MD != 1 {
		t.Errorf("MD = %d, want 1", r.MD)
	}
	if r.Refs[0].Class != AlwaysMiss || r.Refs[1].Class != AlwaysHit {
		t.Errorf("classes = %v,%v, want AM,AH", r.Refs[0].Class, r.Refs[1].Class)
	}
	if !r.UCB.Equal(cacheset.Of(4, 0)) {
		t.Errorf("UCB = %v, want {0}", r.UCB)
	}
}

func TestInterveningConflictKillsReuse(t *testing.T) {
	// ref 0; ref 4 (same set); ref 0 — third reference cannot hit.
	p := &program.Program{Name: "conflict", Root: program.S(program.R(0, 1), program.R(4, 1), program.R(0, 1))}
	r := mustAnalyze(t, p, cache(4))
	if r.MD != 3 {
		t.Errorf("MD = %d, want 3", r.MD)
	}
	if r.MDr != 3 {
		t.Errorf("MDr = %d, want 3", r.MDr)
	}
	if !r.PCB.IsEmpty() {
		t.Errorf("PCB = %v, want empty", r.PCB)
	}
}

func TestNestedLoopQualifiesAtInnerLevel(t *testing.T) {
	// outer 3x { inner 5x { ref 0 }; ref 4 } with a 4-set cache:
	// block 0 is persistent only in the inner loop (block 4 conflicts in
	// the outer), so it first-misses once per outer iteration.
	p := &program.Program{Name: "nested", Root: program.L(3,
		program.L(5, program.R(0, 1)),
		program.R(4, 1),
	)}
	r := mustAnalyze(t, p, cache(4))
	if r.MDExact != 6 {
		t.Errorf("MDExact = %d, want 6 (3 first-misses of block 0 + 3 misses of block 4)", r.MDExact)
	}
	// Paper accounting charges block 0 on all 15 executions.
	if r.MD != 18 {
		t.Errorf("MD = %d, want 18", r.MD)
	}
	// Exact against simulation.
	sim := cachesim.New(cache(4))
	misses := 0
	for _, step := range p.Trace(0) {
		if !sim.Access(step.Block) {
			misses++
		}
	}
	if int64(misses) != r.MDExact {
		t.Errorf("simulated misses = %d, static MDExact = %d; this program is exact", misses, r.MDExact)
	}
	if !r.UCB.Equal(cacheset.Of(4, 0)) {
		t.Errorf("UCB = %v, want {0}", r.UCB)
	}
}

func TestBlockCachedBeforeLoopIsAlwaysHitInside(t *testing.T) {
	// ref 0; for 10x { ref 0 } — the loop body reference always hits.
	p := &program.Program{Name: "prewarm", Root: program.S(program.R(0, 1), program.L(10, program.R(0, 1)))}
	r := mustAnalyze(t, p, cache(4))
	if r.MD != 1 {
		t.Errorf("MD = %d, want 1", r.MD)
	}
	if r.Refs[1].Class != AlwaysHit {
		t.Errorf("loop ref class = %v, want AH", r.Refs[1].Class)
	}
}

func TestAltBothBranchesCounted(t *testing.T) {
	p := &program.Program{Name: "alt", Root: program.S(
		&program.Alt{A: program.S(program.R(0, 5)), B: program.S(program.R(1, 3))},
		program.R(0, 1),
	)}
	r := mustAnalyze(t, p, cache(4))
	// MD sums both branches (conservative) plus the trailing reference,
	// which cannot be a guaranteed hit because branch B may have run.
	if r.MD != 3 {
		t.Errorf("MD = %d, want 3", r.MD)
	}
	// PD takes the heavier branch: max(5,3) + 1.
	if r.PD != 6 {
		t.Errorf("PD = %d, want 6", r.PD)
	}
	// Both blocks are persistent (distinct sets), so preloading removes
	// all misses.
	if r.MDr != 0 {
		t.Errorf("MDr = %d, want 0", r.MDr)
	}
}

func TestAltCommonPrefixHitAfterJoin(t *testing.T) {
	// ref 0 before the branch; both branches reference it again: the
	// post-branch reference is a guaranteed hit via the must-join.
	p := &program.Program{Name: "altjoin", Root: program.S(
		program.R(0, 1),
		&program.Alt{A: program.S(program.R(0, 1)), B: program.S(program.R(0, 1))},
		program.R(0, 1),
	)}
	r := mustAnalyze(t, p, cache(4))
	if r.MD != 1 {
		t.Errorf("MD = %d, want 1", r.MD)
	}
	for i := 1; i < len(r.Refs); i++ {
		if r.Refs[i].Class != AlwaysHit {
			t.Errorf("Refs[%d].Class = %v, want AH", i, r.Refs[i].Class)
		}
	}
}

func TestLoopFirstMissDedupAcrossOccurrences(t *testing.T) {
	// Two syntactic references to block 0 inside one conflict-free loop
	// charge only a single first-miss.
	p := &program.Program{Name: "dedup", Root: program.L(7, program.R(0, 1), program.R(1, 1), program.R(0, 1))}
	r := mustAnalyze(t, p, cache(8))
	if r.MDExact != 2 {
		t.Errorf("MDExact = %d, want 2", r.MDExact)
	}
	// The second occurrence of block 0 is a must-hit inside the body,
	// so even the paper accounting charges only the first two refs.
	if r.MD != 14 {
		t.Errorf("MD = %d, want 14", r.MD)
	}
}

func TestMDrEqualsMDMinusPCBsOnTypicalPrograms(t *testing.T) {
	p := &program.Program{Name: "typ", Root: program.S(
		program.Straight(0, 3, 1),
		program.L(4, program.R(8, 1), program.R(9, 1)),
	)}
	r := mustAnalyze(t, p, cache(16))
	if r.MDExact != 5 {
		t.Errorf("MDExact = %d, want 5", r.MDExact)
	}
	if want := r.MDExact - int64(len(r.PCBBlocks)); r.MDrExact != want {
		t.Errorf("MDrExact = %d, want MDExact-|PCB| = %d", r.MDrExact, want)
	}
	// The paper accounting is never tighter than the exact one.
	if r.MD < r.MDExact || r.MDr < r.MDrExact {
		t.Errorf("paper accounting (%d/%d) tighter than exact (%d/%d)", r.MD, r.MDr, r.MDExact, r.MDrExact)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	if _, err := Analyze(&program.Program{Name: "bad"}, cache(4)); err == nil {
		t.Error("Analyze(nil root) = nil error")
	}
	p := &program.Program{Name: "ok", Root: program.R(0, 1)}
	if _, err := Analyze(p, cache(0)); err == nil {
		t.Error("Analyze(zero sets) = nil error")
	}
}

func TestToTask(t *testing.T) {
	p := &program.Program{Name: "t", Root: program.Straight(0, 2, 5)}
	r := mustAnalyze(t, p, cache(8))
	task := r.ToTask("bench", 1, 3, 1000, 900)
	if task.Name != "bench" || task.Core != 1 || task.Priority != 3 ||
		task.PD != r.PD || task.MD != r.MD || task.MDr != r.MDr ||
		task.Period != 1000 || task.Deadline != 900 {
		t.Errorf("ToTask = %+v", task)
	}
	if !task.ECB.Equal(r.ECB) || !task.PCB.Equal(r.PCB) || !task.UCB.Equal(r.UCB) {
		t.Error("ToTask sets not propagated")
	}
}

// --- soundness cross-checks against exact cache simulation ----------------

// simulateJob runs one job of the program on the cache and returns the
// miss count.
func simulateJob(p *program.Program, c *cachesim.Cache) int64 {
	var misses int64
	for _, step := range p.Trace(0) {
		if !c.Access(step.Block) {
			misses++
		}
	}
	return misses
}

func TestSoundnessRandomPrograms(t *testing.T) {
	cfgs := []taskmodel.CacheConfig{cache(4), cache(8), cache(32)}
	gen := program.DefaultGenConfig()
	gen.MaxLoopBound = 6
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := program.Generate("rand", gen, rng)
		if p.DynamicRefs() > 100000 {
			continue
		}
		// Exercise both Alt paths: analysis must cover either.
		for _, taken := range []bool{false, true} {
			flipAlts(p.Root, taken)
			for _, cc := range cfgs {
				r, err := Analyze(p, cc)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if r.MDr > r.MD || r.MDrExact > r.MDExact {
					t.Fatalf("seed %d cache %d: MDr exceeds MD", seed, cc.NumSets)
				}
				if r.MDExact > r.MD || r.MDrExact > r.MDr {
					t.Fatalf("seed %d cache %d: exact accounting looser than paper accounting", seed, cc.NumSets)
				}

				cold := cachesim.New(cc)
				m1 := simulateJob(p, cold)
				if m1 > r.MDExact {
					t.Fatalf("seed %d cache %d: simulated cold misses %d > MDExact %d", seed, cc.NumSets, m1, r.MDExact)
				}
				// Second job on the leftover cache state: bounded by the
				// residual demand plus nothing — PCBs survive because only
				// this task ran.
				m2 := simulateJob(p, cold)
				if m2 > r.MDrExact {
					t.Fatalf("seed %d cache %d: second-job misses %d > MDrExact %d", seed, cc.NumSets, m2, r.MDrExact)
				}

				// PCB preload bound.
				warm := cachesim.New(cc)
				for _, b := range r.PCBBlocks {
					warm.Install(b)
				}
				mw := simulateJob(p, warm)
				if mw > r.MDrExact {
					t.Fatalf("seed %d cache %d: preloaded misses %d > MDrExact %d", seed, cc.NumSets, mw, r.MDrExact)
				}

				// ECB covers every touched set.
				touched := cachesim.New(cc)
				simulateJob(p, touched)
				if !touched.ResidentSets().SubsetOf(r.ECB) {
					t.Fatalf("seed %d cache %d: simulation touched sets outside ECB", seed, cc.NumSets)
				}
			}
		}
	}
}

// flipAlts sets every Alt's Taken flag so traces exercise a chosen path.
func flipAlts(n program.Node, taken bool) {
	switch v := n.(type) {
	case *program.Seq:
		for _, it := range v.Items {
			flipAlts(it, taken)
		}
	case *program.Loop:
		flipAlts(v.Body, taken)
	case *program.Alt:
		v.Taken = taken
		flipAlts(v.A, taken)
		flipAlts(v.B, taken)
	}
}

func TestPCBBlocksSurviveForeignEvictionModel(t *testing.T) {
	// After evicting an arbitrary foreign ECB footprint, a re-run of the
	// job must still be bounded by MDr + |PCB ∩ foreign|: only the PCBs
	// whose sets were hit by the foreign footprint reload.
	p := &program.Program{Name: "pcbsurvive", Root: program.S(
		program.L(5, program.R(0, 1), program.R(1, 1)),
		program.R(2, 1),
	)}
	cc := cache(8)
	r := mustAnalyze(t, p, cc)
	c := cachesim.New(cc)
	simulateJob(p, c) // job 1 from cold

	foreign := cacheset.Of(8, 1, 7) // evicts PCB in set 1 only
	c.EvictAll(foreign)
	m2 := simulateJob(p, c)
	bound := r.MDrExact + int64(r.PCB.IntersectCount(foreign))
	if m2 > bound {
		t.Fatalf("misses after foreign eviction = %d > MDrExact + |PCB∩foreign| = %d", m2, bound)
	}
}
