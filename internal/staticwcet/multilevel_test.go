package staticwcet

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

func TestHierarchyStraightLineReuse(t *testing.T) {
	// Blocks 0 and 4 conflict in a 4-set L1 but coexist in a 16-set L2:
	// the second round of references misses L1 but hits L2, so only the
	// first two references reach the bus.
	p := &program.Program{Name: "hier", Root: program.S(
		program.R(0, 1), program.R(4, 1), program.R(0, 1), program.R(4, 1),
	)}
	h, err := AnalyzeHierarchy(p, cache(4), cache(16))
	if err != nil {
		t.Fatalf("AnalyzeHierarchy: %v", err)
	}
	if h.L1Misses != 4 {
		t.Errorf("L1Misses = %d, want 4", h.L1Misses)
	}
	if h.MD != 2 {
		t.Errorf("MD = %d, want 2 (bus sees only the cold L2 misses)", h.MD)
	}
	if h.MDr != 0 {
		t.Errorf("MDr = %d, want 0 (both blocks L2-persistent)", h.MDr)
	}
	if h.PCB.Count() != 2 || !h.PCB.Equal(h.ECB) {
		t.Errorf("L2 PCB = %v of ECB %v, want full persistence", h.PCB, h.ECB)
	}
	if h.UCB.Count() != 2 {
		t.Errorf("L2 UCB = %v, want both sets (reuse at L2)", h.UCB)
	}
	// Single-level analysis has no L2 to absorb the conflicts.
	single := mustAnalyze(t, p, cache(4))
	if h.MD >= single.MD {
		t.Errorf("hierarchy MD %d not below single-level %d", h.MD, single.MD)
	}
}

func TestHierarchyL1HitsNeverReachL2(t *testing.T) {
	// Straight-line double reference: second is an L1 always-hit, so L2
	// sees exactly one access and the bus exactly one miss.
	p := &program.Program{Name: "l1hit", Root: program.S(program.R(0, 1), program.R(0, 1))}
	h, err := AnalyzeHierarchy(p, cache(4), cache(8))
	if err != nil {
		t.Fatal(err)
	}
	if h.L1Misses != 1 || h.MD != 1 {
		t.Errorf("L1Misses/MD = %d/%d, want 1/1", h.L1Misses, h.MD)
	}
}

func TestHierarchyL1MissCountMatchesPessimisticMD(t *testing.T) {
	gen := program.DefaultGenConfig()
	for seed := int64(0); seed < 25; seed++ {
		p := program.Generate("rand", gen, rand.New(rand.NewSource(seed)))
		l1 := cache(8)
		h, err := AnalyzeHierarchy(p, l1, cache(32))
		if err != nil {
			t.Fatal(err)
		}
		single := mustAnalyze(t, p, l1)
		if h.L1Misses != single.MD {
			t.Fatalf("seed %d: L1Misses %d != single-level pessimistic MD %d", seed, h.L1Misses, single.MD)
		}
		if h.MD > h.L1Misses {
			t.Fatalf("seed %d: L2 misses %d exceed L1 misses %d", seed, h.MD, h.L1Misses)
		}
		if h.MDr > h.MD {
			t.Fatalf("seed %d: MDr %d > MD %d", seed, h.MDr, h.MD)
		}
		if h.PD != single.PD {
			t.Fatalf("seed %d: PD differs (%d vs %d)", seed, h.PD, single.PD)
		}
	}
}

func TestHierarchyErrors(t *testing.T) {
	p := &program.Program{Name: "x", Root: program.R(0, 1)}
	if _, err := AnalyzeHierarchy(p, cache(4), taskmodel.CacheConfig{NumSets: 8, BlockSizeBytes: 64}); err == nil {
		t.Error("mismatched block sizes accepted")
	}
	if _, err := AnalyzeHierarchy(p, cache(4), taskmodel.CacheConfig{NumSets: 0, BlockSizeBytes: 32}); err == nil {
		t.Error("zero-set L2 accepted")
	}
	bad := &program.Program{Name: "bad"}
	if _, err := AnalyzeHierarchy(bad, cache(4), cache(8)); err == nil {
		t.Error("invalid program accepted")
	}
}

// simulateHierarchyJob runs one job through a functional two-level
// hierarchy and counts bus accesses (L2 misses).
func simulateHierarchyJob(p *program.Program, l1, l2 *cachesim.Cache) (l1Misses, busMisses int64) {
	for _, step := range p.Trace(0) {
		if l1.Lookup(step.Block) {
			l1.Access(step.Block)
			continue
		}
		l1Misses++
		if !l2.Access(step.Block) {
			busMisses++
		}
		l1.Install(step.Block)
	}
	return
}

func TestHierarchySoundnessRandomPrograms(t *testing.T) {
	gen := program.DefaultGenConfig()
	gen.MaxLoopBound = 6
	for seed := int64(0); seed < 80; seed++ {
		p := program.Generate("rand", gen, rand.New(rand.NewSource(seed)))
		if p.DynamicRefs() > 100000 {
			continue
		}
		for _, geo := range []struct{ l1, l2 taskmodel.CacheConfig }{
			{cache(4), cache(16)},
			{cache(8), cache(32)},
			{cache(4), cacheAssoc(8, 2)},
		} {
			h, err := AnalyzeHierarchy(p, geo.l1, geo.l2)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, taken := range []bool{false, true} {
				flipAlts(p.Root, taken)
				l1 := cachesim.New(geo.l1)
				l2 := cachesim.New(geo.l2)
				l1m, bus := simulateHierarchyJob(p, l1, l2)
				if l1m > h.L1Misses {
					t.Fatalf("seed %d: simulated L1 misses %d > bound %d", seed, l1m, h.L1Misses)
				}
				if bus > h.MDExact {
					t.Fatalf("seed %d: simulated bus misses %d > MDExact %d", seed, bus, h.MDExact)
				}
				if h.MDExact > h.MD || h.MDrExact > h.MDr {
					t.Fatalf("seed %d: exact accounting looser than paper accounting", seed)
				}
				// Warm L2 (PCBs preloaded): bounded by MDr.
				l1w := cachesim.New(geo.l1)
				l2w := cachesim.New(geo.l2)
				for _, b := range h.PCBBlocks {
					l2w.Install(b)
				}
				if _, busW := simulateHierarchyJob(p, l1w, l2w); busW > h.MDrExact {
					t.Fatalf("seed %d: warm bus misses %d > MDrExact %d", seed, busW, h.MDrExact)
				}
			}
		}
	}
}
