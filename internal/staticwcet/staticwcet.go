// Package staticwcet derives the per-task parameters consumed by the
// bus contention analysis — PD, MD, MD^r and the cache footprint sets
// ECB, UCB and PCB — from a structured program (package program) and a
// direct-mapped cache geometry.
//
// It plays the role of the Heptane static WCET analyzer in the paper's
// tool chain. The analysis is a classical abstract-interpretation
// must-cache analysis for LRU set-associative caches (Ferdinand &
// Wilhelm), of which the paper's direct-mapped model is the
// associativity-1 special case:
//
//   - A must-analysis computes, for every reference occurrence, the set
//     of memory blocks guaranteed to be cached on every execution of
//     that reference; references to guaranteed blocks are Always-Hit.
//   - References that are not always-hit but whose block is persistent
//     in some enclosing loop (no conflicting block referenced anywhere
//     in the loop) are First-Miss with respect to the outermost such
//     loop: they miss at most once per loop entry.
//   - All remaining references are Always-Miss.
//
// Two miss accountings are produced. MD/MDr follow the paper's tool
// chain (Heptane as used by Rashid et al. [3]): only must-analysis
// Always-Hit references are credited, so a loop-persistent block is
// charged on every iteration — this is the baseline pessimism the
// persistence-aware analysis reclaims, and the reason the paper's
// Table I has MD − MD^r far larger than |PCB|. MDExact/MDrExact
// additionally credit First-Miss references (at most one miss per
// entry of the qualifying loop); they are this repository's tighter
// bound, used to cross-validate the analysis against the cycle-level
// simulator.
//
// PCBs (persistent cache blocks, Rashid et al.) fall out exactly for
// LRU: a block the task can never evict itself is precisely a block
// whose cache set holds at most Ways() distinct footprint blocks. MD^r
// is obtained by re-running the miss counting with all PCBs preloaded
// into the initial must state. Note that the set-based PCB
// representation of the bus contention analysis is exact only for the
// direct-mapped case the paper covers (one persistent block per set);
// higher associativities are provided for the cache-level extension
// studies.
package staticwcet

import (
	"fmt"

	"repro/internal/cacheset"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

// Classification of one reference occurrence.
type Classification int

const (
	// AlwaysHit references are guaranteed cached on every execution.
	AlwaysHit Classification = iota
	// FirstMiss references miss at most once per entry of their
	// qualifying loop.
	FirstMiss
	// AlwaysMiss references must be assumed to miss on every execution.
	AlwaysMiss
)

func (c Classification) String() string {
	switch c {
	case AlwaysHit:
		return "AH"
	case FirstMiss:
		return "FM"
	case AlwaysMiss:
		return "AM"
	default:
		return fmt.Sprintf("Classification(%d)", int(c))
	}
}

// RefReport describes the analysis outcome for one reference
// occurrence, in traversal order.
type RefReport struct {
	Block     int
	Set       int
	ExecCount int64
	Class     Classification
	// Misses is the total number of misses charged to this occurrence
	// over a whole job execution (after per-loop block deduplication,
	// a FirstMiss occurrence may be charged zero if an earlier
	// occurrence of the same block already paid the loop's charge).
	Misses int64
}

// Result is the full analysis outcome for one program: exactly the
// parameters the paper's Table I lists per benchmark.
type Result struct {
	// PD is the worst-case pure execution demand (all accesses hit).
	PD taskmodel.Time
	// MD is the worst-case number of memory requests from a cold cache
	// in the paper's accounting: no first-miss credit, matching the
	// Heptane-derived Table I values the evaluation consumes.
	MD int64
	// MDr is the worst-case number of memory requests with all PCBs
	// preloaded, same accounting as MD.
	MDr int64
	// MDExact and MDrExact are the first-miss-aware counterparts: the
	// tightest per-job bounds this analysis can prove, used for
	// simulator cross-validation. MDExact <= MD and MDrExact <= MDr.
	MDExact, MDrExact int64
	// ECB, UCB, PCB are the cache-set footprints defined in the paper.
	ECB, UCB, PCB cacheset.Set
	// PCBBlocks lists the persistent memory blocks themselves.
	PCBBlocks []int
	// Refs reports the per-occurrence classification (cold-cache run).
	Refs []RefReport
}

// saturating product guard: execution counts beyond this are clamped,
// keeping arithmetic overflow-free for absurd loop nests.
const maxCount = int64(1) << 50

func satMul(a, b int64) int64 {
	if a > 0 && b > maxCount/a {
		return maxCount
	}
	return a * b
}

// Analyze runs the static cache/WCET analysis of prog against the
// given cache geometry.
func Analyze(prog *program.Program, cache taskmodel.CacheConfig) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cache.NumSets < 1 {
		return nil, fmt.Errorf("staticwcet: cache NumSets = %d, need >= 1", cache.NumSets)
	}
	a := &analyzer{cache: cache}
	a.structure(prog.Root, nil, 1)

	// Whole-program footprint and the exact PCB set for direct mapping.
	blocksPerSet := map[int]map[int]bool{}
	for _, ri := range a.refs {
		s := cache.SetOf(ri.block)
		if blocksPerSet[s] == nil {
			blocksPerSet[s] = map[int]bool{}
		}
		blocksPerSet[s][ri.block] = true
	}
	ecb := cacheset.New(cache.NumSets)
	pcb := cacheset.New(cache.NumSets)
	var pcbBlocks []int
	for s, blocks := range blocksPerSet {
		ecb.Add(s)
		if len(blocks) <= cache.Ways() {
			pcb.Add(s)
			for b := range blocks {
				pcbBlocks = append(pcbBlocks, b)
			}
		}
	}
	sortInts(pcbBlocks)

	// Cold-cache classification and miss counting, in both accountings.
	cold := a.newState()
	reports, mdExact := a.countMisses(prog.Root, cold, true)
	_, md := a.countMisses(prog.Root, cold, false)

	// Residual demand: same counting with PCBs preloaded.
	warm := a.newState()
	for _, b := range pcbBlocks {
		warm.install(cache.SetOf(b), b)
	}
	_, mdrExact := a.countMisses(prog.Root, warm, true)
	_, mdr := a.countMisses(prog.Root, warm, false)

	// UCB: blocks with intra-job reuse — an always-hit occurrence, or a
	// first-miss occurrence that executes more often than it misses.
	ucb := cacheset.New(cache.NumSets)
	for _, r := range reports {
		switch r.Class {
		case AlwaysHit:
			ucb.Add(r.Set)
		case FirstMiss:
			if r.ExecCount > r.Misses {
				ucb.Add(r.Set)
			}
		}
	}

	return &Result{
		PD:        a.pd(prog.Root),
		MD:        md,
		MDr:       mdr,
		MDExact:   mdExact,
		MDrExact:  mdrExact,
		ECB:       ecb,
		UCB:       ucb,
		PCB:       pcb,
		PCBBlocks: pcbBlocks,
		Refs:      reports,
	}, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- structure pass --------------------------------------------------------

type loopCtx struct {
	id      int
	bound   int
	entries int64        // how many times the loop is entered in total
	sets    map[int]int  // cache set -> number of distinct footprint blocks
	blocks  map[int]bool // footprint blocks (for distinctness)
}

type refCtx struct {
	block     int
	cycles    int64
	loops     []int // enclosing loop ids, outermost first
	execCount int64
}

type analyzer struct {
	cache taskmodel.CacheConfig
	loops []*loopCtx
	refs  []refCtx
}

// structure collects reference occurrences, enclosing-loop stacks,
// execution counts and per-loop footprints. Both Alt branches are
// traversed (conservative footprints and counts).
func (a *analyzer) structure(n program.Node, stack []*loopCtx, mult int64) {
	switch v := n.(type) {
	case *program.Ref:
		loops := make([]int, len(stack))
		for i, l := range stack {
			loops[i] = l.id
			if !l.blocks[v.Block] {
				l.blocks[v.Block] = true
				l.sets[a.cache.SetOf(v.Block)]++
			}
		}
		a.refs = append(a.refs, refCtx{block: v.Block, cycles: v.Cycles, loops: loops, execCount: mult})
	case *program.Seq:
		for _, it := range v.Items {
			a.structure(it, stack, mult)
		}
	case *program.Loop:
		lc := &loopCtx{
			id:      len(a.loops),
			bound:   v.Bound,
			entries: mult,
			sets:    map[int]int{},
			blocks:  map[int]bool{},
		}
		a.loops = append(a.loops, lc)
		a.structure(v.Body, append(stack, lc), satMul(mult, int64(v.Bound)))
	case *program.Alt:
		a.structure(v.A, stack, mult)
		a.structure(v.B, stack, mult)
	default:
		panic(fmt.Sprintf("staticwcet: unknown node %T", n))
	}
}

// --- must analysis and miss counting ---------------------------------------

// ageEntry is one guaranteed-resident block of a set with an upper
// bound on its LRU age (0 = most recently used).
type ageEntry struct {
	block int
	age   int
}

// state is the LRU must-cache abstraction: per cache set, the blocks
// guaranteed resident on every execution reaching this point, each
// with an upper bound on its LRU age. A block is a guaranteed hit iff
// it is present. For associativity 1 this degenerates to "the one
// block known to occupy the set".
type state struct {
	ways int
	sets [][]ageEntry
}

func (a *analyzer) newState() *state {
	return &state{ways: a.cache.Ways(), sets: make([][]ageEntry, a.cache.NumSets)}
}

// install places a block in the must state without aging others; used
// only for building preloaded initial states. Ages are assigned in
// insertion order, which is valid because preloaded sets hold at most
// ways blocks.
func (s *state) install(set, block int) {
	s.sets[set] = append(s.sets[set], ageEntry{block: block, age: len(s.sets[set])})
}

// contains reports whether the block is guaranteed resident.
func (s *state) contains(set, block int) bool {
	for _, e := range s.sets[set] {
		if e.block == block {
			return true
		}
	}
	return false
}

// access applies the LRU must-cache transfer for a reference to block
// in the given set: the block becomes age 0; on a guaranteed hit only
// younger blocks age, on a (potential) miss every block ages and those
// reaching the associativity bound lose their guarantee.
func (s *state) access(set, block int) {
	entries := s.sets[set]
	prevAge := s.ways // "older than everything" when not present
	for _, e := range entries {
		if e.block == block {
			prevAge = e.age
			break
		}
	}
	out := entries[:0]
	for _, e := range entries {
		if e.block == block {
			continue
		}
		if e.age < prevAge {
			e.age++
		}
		if e.age < s.ways {
			out = append(out, e)
		}
	}
	out = append(out, ageEntry{block: block, age: 0})
	s.sets[set] = out
}

func (s *state) clone() *state {
	c := &state{ways: s.ways, sets: make([][]ageEntry, len(s.sets))}
	for i, set := range s.sets {
		if len(set) > 0 {
			c.sets[i] = append([]ageEntry(nil), set...)
		}
	}
	return c
}

// join is the must-analysis meet: only blocks guaranteed in both
// states survive, with the larger (worse) age bound.
func (s *state) join(t *state) *state {
	out := &state{ways: s.ways, sets: make([][]ageEntry, len(s.sets))}
	for i := range s.sets {
		for _, e := range s.sets[i] {
			for _, f := range t.sets[i] {
				if e.block == f.block {
					age := e.age
					if f.age > age {
						age = f.age
					}
					out.sets[i] = append(out.sets[i], ageEntry{block: e.block, age: age})
					break
				}
			}
		}
	}
	return out
}

func (s *state) equal(t *state) bool {
	for i := range s.sets {
		if len(s.sets[i]) != len(t.sets[i]) {
			return false
		}
		for _, e := range s.sets[i] {
			found := false
			for _, f := range t.sets[i] {
				if e.block == f.block && e.age == f.age {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// countMisses runs the recording must-analysis from the given initial
// state and produces per-occurrence reports plus the total miss bound.
// With fmCredit, First-Miss references are charged once per entry of
// their qualifying loop (exact accounting); without it they are
// charged on every execution (the paper's accounting).
func (a *analyzer) countMisses(root program.Node, init *state, fmCredit bool) ([]RefReport, int64) {
	m := &missCounter{
		a:        a,
		fmCredit: fmCredit,
		charged:  map[[2]int64]bool{},
	}
	m.walk(root, init.clone(), true)
	return m.reports, m.total
}

type missCounter struct {
	a        *analyzer
	fmCredit bool
	refIdx   int
	reports  []RefReport
	total    int64
	// charged dedupes FirstMiss charges per (block, qualifying loop):
	// several syntactic references to the same persistent block within
	// one loop still load it only once per entry.
	charged map[[2]int64]bool
}

// walk interprets the program abstractly. When record is true, each
// reference occurrence appends a report; loop bodies run a fixpoint
// without recording first, then one recording pass with the converged
// entry state.
func (m *missCounter) walk(n program.Node, st *state, record bool) *state {
	switch v := n.(type) {
	case *program.Ref:
		setIdx := m.a.cache.SetOf(v.Block)
		if record {
			ri := m.a.refs[m.refIdx]
			rep := RefReport{Block: v.Block, Set: setIdx, ExecCount: ri.execCount}
			if st.contains(setIdx, v.Block) {
				rep.Class = AlwaysHit
			} else if lid, ok := m.qualifyingLoop(ri); ok {
				rep.Class = FirstMiss
				if m.fmCredit {
					key := [2]int64{int64(v.Block), int64(lid)}
					if !m.charged[key] {
						m.charged[key] = true
						rep.Misses = m.a.loops[lid].entries
					}
				} else {
					rep.Misses = ri.execCount
				}
			} else {
				rep.Class = AlwaysMiss
				rep.Misses = ri.execCount
			}
			m.total += rep.Misses
			m.reports = append(m.reports, rep)
			m.refIdx++
		}
		st.access(setIdx, v.Block)
		return st
	case *program.Seq:
		for _, it := range v.Items {
			st = m.walk(it, st, record)
		}
		return st
	case *program.Alt:
		// Record passes must visit both branches to keep refIdx in sync
		// with the structure pass; the out-state is the must-join.
		sa := m.walk(v.A, st.clone(), record)
		sb := m.walk(v.B, st.clone(), record)
		return sa.join(sb)
	case *program.Loop:
		// Fixpoint on the loop entry state without recording.
		entry := st.clone()
		for {
			out := m.walk(v.Body, entry.clone(), false)
			next := st.join(out)
			if next.equal(entry) {
				break
			}
			entry = next
		}
		if record {
			return m.walk(v.Body, entry.clone(), true)
		}
		return m.walk(v.Body, entry.clone(), false)
	default:
		panic(fmt.Sprintf("staticwcet: unknown node %T", n))
	}
}

// qualifyingLoop returns the outermost enclosing loop in which the
// reference's block is persistent (no distinct footprint block shares
// its cache set), if any.
func (m *missCounter) qualifyingLoop(ri refCtx) (loopID int, ok bool) {
	setIdx := m.a.cache.SetOf(ri.block)
	for _, lid := range ri.loops { // outermost first
		if m.a.loops[lid].sets[setIdx] <= m.a.cache.Ways() {
			return lid, true
		}
	}
	return 0, false
}

// --- execution demand -------------------------------------------------------

// pd computes the worst-case pure execution demand: sums for
// sequences, multiplies loop bounds, takes the heavier branch of an
// alternative.
func (a *analyzer) pd(n program.Node) taskmodel.Time {
	switch v := n.(type) {
	case *program.Ref:
		return v.Cycles
	case *program.Seq:
		var s taskmodel.Time
		for _, it := range v.Items {
			s += a.pd(it)
		}
		return s
	case *program.Loop:
		return taskmodel.Time(satMul(int64(v.Bound), int64(a.pd(v.Body))))
	case *program.Alt:
		pa, pb := a.pd(v.A), a.pd(v.B)
		if pa >= pb {
			return pa
		}
		return pb
	default:
		panic(fmt.Sprintf("staticwcet: unknown node %T", n))
	}
}

// ToTask packages an analysis result as a taskmodel.Task with the given
// identity and timing parameters (period and deadline are set by the
// task-set generator).
func (r *Result) ToTask(name string, core, priority int, period, deadline taskmodel.Time) *taskmodel.Task {
	return &taskmodel.Task{
		Name: name, Core: core, Priority: priority,
		PD: r.PD, MD: r.MD, MDr: r.MDr,
		Period: period, Deadline: deadline,
		UCB: r.UCB, ECB: r.ECB, PCB: r.PCB,
	}
}
