package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/cacheset"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Request canonicalization for the serving layer (internal/server):
// an analysis request — one task set plus the configurations to
// evaluate it under — is reduced to a stable key so that result
// caching and in-flight coalescing recognize semantically identical
// requests regardless of how they were phrased on the wire.
//
// The key hashes the exact field bits of everything the analysis
// outcome depends on: the full platform geometry, every task parameter
// (including the name, which is echoed into results), and the
// configuration list in order. Fields the engine provably ignores are
// normalized first (see Config.canonical), so e.g. two requests
// differing only in the CPRO approach of a persistence-off
// configuration share one key, one cache slot and one computation.

// canonical returns the configuration with ignored and defaulted
// fields normalized to their effective values:
//
//   - MaxOuterIterations 0 is the documented default of 64;
//   - CPRO is ignored unless Persistence is set, so it is zeroed for
//     persistence-off configurations.
func (c Config) canonical() Config {
	if c.MaxOuterIterations == 0 {
		c.MaxOuterIterations = 64
	}
	if !c.Persistence {
		c.CPRO = persistence.Union // zero value; field is ignored
	}
	return c
}

// hashWriter wraps a hash with fixed-width little-endian field
// encoders. Every field is written as a full 8-byte word (lengths
// prefix variable-size fields), so distinct field sequences can never
// collide by concatenation.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
	// tmp stages multi-word writes (setWords) so each set costs one
	// Write call instead of one per element.
	tmp []byte
}

func (w *hashWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *hashWriter) i64(v int64) { w.u64(uint64(v)) }
func (w *hashWriter) boolean(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *hashWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *hashWriter) set(s cacheset.Set) {
	idx := s.Indices()
	w.u64(uint64(len(idx)))
	for _, i := range idx {
		w.i64(int64(i))
	}
}

// setWords hashes a set's exact contents via its backing bit words —
// the same information as set() (capacity prefix makes the word count
// self-delimiting) at a fraction of the cost, for the hot per-task
// digests of the memo layer. Kept distinct from set() so CanonicalKey's
// published request-key encoding is untouched.
func (w *hashWriter) setWords(s cacheset.Set) {
	w.u64(uint64(s.Capacity()))
	w.tmp = w.tmp[:0]
	for _, word := range s.Words() {
		w.tmp = binary.LittleEndian.AppendUint64(w.tmp, word)
	}
	w.h.Write(w.tmp)
}

// setWordsSparse hashes a set via its nonzero backing words only, as
// (index, word) pairs behind a capacity-and-count prefix, so the cost
// scales with the footprint's spread rather than the cache geometry.
// Injective for a fixed capacity: the nonzero words determine the set.
func (w *hashWriter) setWordsSparse(s cacheset.Set) {
	w.tmp = w.tmp[:0]
	n := uint64(0)
	for i, word := range s.Words() {
		if word != 0 {
			w.tmp = binary.LittleEndian.AppendUint64(w.tmp, uint64(i))
			w.tmp = binary.LittleEndian.AppendUint64(w.tmp, word)
			n++
		}
	}
	w.u64(uint64(s.Capacity()))
	w.u64(n)
	w.h.Write(w.tmp)
}

func (w *hashWriter) cache(c taskmodel.CacheConfig) {
	w.i64(int64(c.NumSets))
	w.i64(int64(c.BlockSizeBytes))
	// Associativity 0 and 1 are the same geometry (direct-mapped).
	w.i64(int64(c.Ways()))
}

// CanonicalKey returns the canonical identity of analyzing ts under
// cfgs, as a 64-character lowercase hex string (SHA-256). Two requests
// share a key if and only if they are guaranteed to produce identical
// results: the platform, every task field and the normalized
// configuration list all match bit for bit. Task order does not matter
// beyond priorities: task sets constructed through NewTaskSet or
// ReadJSON are already in canonical (ascending-priority) order, and
// priorities are unique in any valid set.
//
// Platform fields no configuration in the request reads are hashed as
// zero (v2): the slot size feeds only the RR and TDMA formulas and the
// regulation parameters only the Regulated one, so e.g. two FP requests
// differing solely in SlotSize share one key — one cache slot, one
// coalescing bucket, one fleet owner.
func CanonicalKey(ts *taskmodel.TaskSet, cfgs []Config) string {
	w := &hashWriter{h: sha256.New()}
	w.str("buscon/canonical/v2")

	slotUsed, regUsed := false, false
	canon := make([]Config, len(cfgs))
	for i, c := range cfgs {
		canon[i] = c.canonical()
		switch c.Arbiter {
		case RR, TDMA:
			slotUsed = true
		case Regulated:
			regUsed = true
		}
	}

	p := ts.Platform
	if !slotUsed {
		p.SlotSize = 0
	}
	if !regUsed {
		p.RegBudget, p.RegPeriod = 0, 0
	}
	w.i64(int64(p.NumCores))
	w.cache(p.Cache)
	w.i64(int64(p.DMem))
	w.i64(int64(p.SlotSize))
	w.i64(p.RegBudget)
	w.i64(int64(p.RegPeriod))
	w.cache(p.L2)
	w.i64(int64(p.DL2))

	w.u64(uint64(len(ts.Tasks)))
	for _, t := range ts.Tasks {
		w.str(t.Name)
		w.i64(int64(t.Core))
		w.i64(int64(t.Priority))
		w.i64(int64(t.PD))
		w.i64(t.MD)
		w.i64(t.MDr)
		w.i64(int64(t.Period))
		w.i64(int64(t.Deadline))
		w.set(t.UCB)
		w.set(t.ECB)
		w.set(t.PCB)
	}

	w.u64(uint64(len(canon)))
	for _, c := range canon {
		w.i64(int64(c.Arbiter))
		w.boolean(c.Persistence)
		w.i64(int64(c.CRPD))
		w.i64(int64(c.CPRO))
		w.i64(int64(c.MaxOuterIterations))
	}
	return hex.EncodeToString(w.h.Sum(nil))
}
