package core

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/telemetry"
)

// Content-addressed table memoization.
//
// The interference tables (tables.go) are rebuilt from scratch for
// every analysis, even though near-duplicate requests — a sweep that
// perturbs one task, a delta request editing one parameter — share
// almost all of the underlying set arithmetic. This layer keys the
// table columns by a digest of the exact task fields they depend on,
// so any request (concurrent or later) that contains the same column
// reuses it bit for bit.
//
// Unit of sharing. Both the γ column and the CPRO column of a level
// depend on one core's tasks only through the priority-ordered prefix
// ending at the level's cutoff: the k = |Γ_y ∩ hep(i)| lowest-priority
// tasks of core y. Every quantity the tables cache is a pure function
// of that prefix:
//
//   - γ_{i,j,y} (every crpd.Approach) reads the UCB/ECB sets of the
//     prefix tasks — the evicting union ∪ ECB over hep(j) ∩ Γ_y and the
//     affected tasks' UCBs are all drawn from it. The level priority i
//     enters only through the cutoff, with one exception: under
//     crpd.ECBOnly the last prefix position charges 0 when the analyzed
//     task is itself that position (it cannot preempt its own level)
//     but |ECB_j| when the level lives on another core. A selfLast bit
//     in the key separates the two shapes; for every other approach the
//     last position is 0 in both shapes and the bit is normalized away.
//   - The CPRO terms (unionOverlap and the evictor multiset of Eq. 14)
//     read the ECB/PCB sets and periods of the prefix tasks, and do not
//     depend on the CRPD approach at all — the persist keys omit it, so
//     tables built for different approaches share the CPRO columns.
//   - A lower-priority task's CPRO entry at the level (BAOLow) reads
//     the prefix plus that task's own ECB/PCB/Period; it is keyed by
//     the prefix key chained with the task's digest.
//
// Per-task digests cover exactly the fields above (gamma: UCB, ECB;
// persist: ECB, PCB, Period), written through the canonical.go
// hashWriter so the sub-keys inherit its collision-free field framing.
// Everything CanonicalKey normalizes away for the whole request is
// *absent* here rather than normalized: the arbiter, the persistence
// switch, the CPRO approach and MaxOuterIterations never reach the
// table values, and the cache geometry enters only through the sets'
// index contents (associativity — the Ways() normalization — and the
// block size affect no cached term). Names, priorities, cores,
// deadlines and the execution/demand scalars (PD, MD, MDr) are
// likewise excluded, so edits to them invalidate no column. Priority
// and core placement still shape the columns — through the prefix
// membership and order the digest sequence encodes — not through
// their numeric values.
//
// The store is safe for concurrent use and computes each column once:
// the first requester becomes the leader and computes while followers
// of the same key block on a done channel. A leader that panics drops
// its entry and re-panics; released followers recompute locally
// without publishing. Published columns are immutable — the evictor
// slices are aliased, never copied, into every pairTab that reuses
// them — and the done-channel close provides the happens-before edge
// that makes the aliasing race-free.

// memoKey is a content-addressed column identity (SHA-256).
type memoKey [sha256.Size]byte

// memoColumn is one published column: the γ values and/or CPRO terms
// of a prefix, indexed by prefix position. A γ column leaves the
// persist slices nil and vice versa; a single lower-priority entry is
// a persist column of length one. Immutable after publication.
type memoColumn struct {
	gamma        []int64
	unionOverlap []int64
	evictors     [][]persistence.EvictorTerm
}

// curveColumn is one published curve backbone: an immutable termCurve
// slice shared copy-free by every analysis whose level/core column has
// the same content key. Remote backbones store hep ++ lp contiguously;
// the consumer splits at its own cutoff, which the key covers.
type curveColumn struct {
	terms []termCurve
}

// memoCounterSet names the telemetry family one kind of store entry
// reports on, so table columns and curve backbones stay separately
// observable (core.memo_* vs core.curve_memo_*) while sharing the
// store's capacity, sharding and compute-once machinery.
type memoCounterSet struct {
	hits, waits, misses, evictions telemetry.Counter
}

var (
	columnCounters = &memoCounterSet{
		hits: telemetry.CtrMemoHits, waits: telemetry.CtrMemoWaits,
		misses: telemetry.CtrMemoMisses, evictions: telemetry.CtrMemoEvictions,
	}
	curveCounters = &memoCounterSet{
		hits: telemetry.CtrCurveMemoHits, waits: telemetry.CtrCurveMemoWaits,
		misses: telemetry.CtrCurveMemoMisses, evictions: telemetry.CtrCurveMemoEvictions,
	}
)

const memoShards = 16

type memoEntry struct {
	key memoKey
	// val is valid only after done is closed; nil then means the
	// leader's compute failed and the entry was withdrawn. It holds a
	// *memoColumn or a *curveColumn; ctrs attributes the entry's
	// eviction to the matching counter family.
	val  any
	ctrs *memoCounterSet
	done chan struct{}
	// ready flips to true (release) after val is published, letting the
	// hit path skip the done-channel select (acquire on Load). It stays
	// false on withdraw, so readers that miss the flag still take the
	// channel edge and see the nil val there.
	ready atomic.Bool
}

type memoShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	byKey map[memoKey]*list.Element
}

// MemoStore is a bounded, sharded, concurrency-safe store of
// content-addressed table columns, shared across analyses (and, via
// BatchOptions.Memo, across requests) so that near-duplicate task sets
// recompute only the columns their edits actually invalidate.
type MemoStore struct {
	shards [memoShards]memoShard
	// perCap bounds each shard's entry count (total/memoShards).
	perCap int
}

// NewMemoStore returns a store bounded to roughly maxEntries columns
// (rounded up to the shard granularity), evicted LRU per shard.
// maxEntries <= 0 selects a default sized for sweep workloads.
func NewMemoStore(maxEntries int) *MemoStore {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	perCap := (maxEntries + memoShards - 1) / memoShards
	if perCap < 1 {
		perCap = 1
	}
	m := &MemoStore{perCap: perCap}
	for i := range m.shards {
		m.shards[i].ll = list.New()
		m.shards[i].byKey = make(map[memoKey]*list.Element)
	}
	return m
}

// getOrCompute returns the value for key, computing and publishing it
// via compute if absent. Concurrent callers of the same key compute it
// once: followers block until the leader publishes. obs (nil-safe)
// receives the ctrs counter family: a hit for a published value, a
// wait for joining an in-flight computation, a miss for every actual
// compute invocation, an eviction per capacity drop (attributed to the
// dropped entry's own family).
func (m *MemoStore) getOrCompute(key memoKey, ctrs *memoCounterSet, obs *telemetry.Observer, compute func() any) any {
	sh := &m.shards[key[0]&(memoShards-1)]
	sh.mu.Lock()
	if ele, ok := sh.byKey[key]; ok {
		ent := ele.Value.(*memoEntry)
		// LRU order only matters once the shard is under capacity
		// pressure; below half-full every entry survives regardless, so
		// the list shuffle is pure overhead on the hot hit path.
		if sh.ll.Len()*2 > m.perCap {
			sh.ll.MoveToFront(ele)
		}
		sh.mu.Unlock()
		if ent.ready.Load() {
			obs.Add(ctrs.hits, 1)
			return ent.val
		}
		select {
		case <-ent.done:
			obs.Add(ctrs.hits, 1)
		default:
			obs.Add(ctrs.waits, 1)
			<-ent.done
		}
		if ent.val != nil {
			return ent.val
		}
		// The leader failed and withdrew the entry; compute locally
		// without publishing (a later request elects a fresh leader).
		obs.Add(ctrs.misses, 1)
		return compute()
	}
	ent := &memoEntry{key: key, ctrs: ctrs, done: make(chan struct{})}
	ele := sh.ll.PushFront(ent)
	sh.byKey[key] = ele
	for sh.ll.Len() > m.perCap {
		tail := sh.ll.Back()
		if tail == ele {
			break
		}
		dropped := tail.Value.(*memoEntry)
		sh.ll.Remove(tail)
		delete(sh.byKey, dropped.key)
		obs.Add(dropped.ctrs.evictions, 1)
	}
	sh.mu.Unlock()

	obs.Add(ctrs.misses, 1)
	var val any
	defer func() {
		// Publish-or-withdraw runs even when compute panics: val stays
		// nil, the entry is removed so the key is not poisoned, and the
		// close releases any followers before the panic propagates.
		ent.val = val
		if val != nil {
			ent.ready.Store(true)
		}
		if val == nil {
			sh.mu.Lock()
			if cur, ok := sh.byKey[key]; ok && cur.Value.(*memoEntry) == ent {
				sh.ll.Remove(cur)
				delete(sh.byKey, key)
			}
			sh.mu.Unlock()
		}
		close(ent.done)
	}()
	val = compute()
	return val
}

// getOrComputeColumn is getOrCompute specialized to table columns,
// reporting on the core.memo_* family. A nil compute result stays an
// untyped nil so the withdraw path sees it.
func (m *MemoStore) getOrComputeColumn(key memoKey, obs *telemetry.Observer, compute func() *memoColumn) *memoColumn {
	v := m.getOrCompute(key, columnCounters, obs, func() any {
		if col := compute(); col != nil {
			return col
		}
		return nil
	})
	col, _ := v.(*memoColumn)
	return col
}

// getOrComputeCurve is getOrCompute specialized to curve backbones,
// reporting on the core.curve_memo_* family. The returned slice is
// shared and must not be mutated.
func (m *MemoStore) getOrComputeCurve(key memoKey, obs *telemetry.Observer, compute func() []termCurve) []termCurve {
	col := m.getOrCompute(key, curveCounters, obs, func() any {
		return &curveColumn{terms: compute()}
	}).(*curveColumn)
	return col.terms
}

// Len reports the number of resident columns (racy snapshot; tests
// and capacity diagnostics only).
func (m *MemoStore) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// setMemo attaches the shared column store (and the observer the lazy
// fills report to). Must be called before the first analysis touches
// the tables.
func (tb *Tables) setMemo(m *MemoStore) { tb.memo = m }

// digests lazily computes the per-task field digests the column keys
// are assembled from. One pass per Tables; the sets are hashed via
// their raw bit words (setWords), so the cost is linear in the cache
// geometry rather than the footprint's population count.
//
// The curve-backbone keys need the per-task scalars too (PD/MD/MDr/
// Period for same-core curves; PD excluded for remote ones, since no
// remote term of Eq. (3)–(6) reads it — which is exactly what keeps
// remote backbones alive across the classic one-task-PD sweep). Those
// are fixed-width fields, so curveKey writes them directly instead of
// paying two more SHA-256 rounds per task here.
func (tb *Tables) digests() {
	if tb.gammaDig != nil {
		return
	}
	tb.gammaDig = make([]memoKey, len(tb.tasks))
	tb.persistDig = make([]memoKey, len(tb.tasks))
	for i, t := range tb.tasks {
		w := tb.keyWriter()
		w.str("buscon/memo/task-gamma/v3")
		w.setWordsSparse(t.UCB)
		w.setWordsSparse(t.ECB)
		w.h.Sum(tb.gammaDig[i][:0])

		w = tb.keyWriter()
		w.str("buscon/memo/task-persist/v3")
		w.setWordsSparse(t.ECB)
		w.setWordsSparse(t.PCB)
		w.i64(int64(t.Period))
		w.h.Sum(tb.persistDig[i][:0])
	}
}

// colKey flavors, part of the cached-key identity. The first
// numChainFlavors are Merkle chains cached densely per core in the
// Tables' key arena (chainSlot); the curve* flavors key whole backbone
// materializations one level up (see curveKey).
const (
	colGamma = iota
	colGammaSelfLast
	colPersist
	// chain* flavors cache the running scalar hashes the curve keys
	// chain (scalarChain); they are intermediate values, never store
	// keys themselves.
	chainScalarSame
	chainScalarRemote
	chainLPTail
	chainLPTailPersist
	numChainFlavors
	// curveSameKey keys a same-core backbone (hp terms) at γ depth;
	// curveSamePersistKey the same prefix at CPRO depth.
	curveSameKey
	curveSamePersistKey
	// curveRemoteKey / curveRemoteSelfKey key a remote backbone
	// (hep ++ lp terms of one core) at γ depth, split by the chained γ
	// column's selfLast shape; the *Persist variants add CPRO depth.
	curveRemoteKey
	curveRemoteSelfKey
	curveRemotePersistKey
	curveRemoteSelfPersistKey
)

// chainSlot returns core y's dense cache line for one chain flavor —
// one memoKey per cutoff 0..len(byCore[y]) — plus its fill watermark.
// The arena is one allocation for all cores and flavors; watermarks
// start at -1 (nothing filled). Prefix flavors fill upward and read the
// watermark as the highest valid cutoff; the lp-tail suffix flavors
// fill downward and read it as the lowest (with -1 meaning empty).
func (tb *Tables) chainSlot(y, flavor int) ([]memoKey, *int) {
	if tb.chainKeys == nil {
		tb.chainKeys = make([]memoKey, numChainFlavors*(len(tb.tasks)+len(tb.byCore)))
		tb.chainWM = make([]int, numChainFlavors*len(tb.byCore))
		for i := range tb.chainWM {
			tb.chainWM[i] = -1
		}
	}
	stride := len(tb.byCore[y]) + 1
	base := numChainFlavors*(tb.coreOff[y]+y) + flavor*stride
	return tb.chainKeys[base : base+stride], &tb.chainWM[y*numChainFlavors+flavor]
}

// keyWriter returns the Tables' reusable hash writer, reset: key
// assembly runs thousands of SHA rounds per build and a per-call
// sha256.New would put every one of them on the allocator.
func (tb *Tables) keyWriter() *hashWriter {
	if tb.kw.h == nil {
		tb.kw.h = sha256.New()
	} else {
		tb.kw.h.Reset()
	}
	return &tb.kw
}

// colKey returns (building and caching on first use) the
// content-addressed key of core y's column at cutoff k under the given
// flavor. Keys are Merkle-chained — each cutoff hashes the previous
// cutoff's key plus the one digest the prefix grew by — so a Tables
// pays O(1) SHA-256 rounds per (core, cutoff) instead of re-hashing
// the whole O(k) digest sequence. Order still matters (the running
// evicting unions and affected-task sets are positional) and the chain
// preserves it: two distinct digest sequences collide only through a
// SHA-256 collision, link by link. Links are cached densely per core
// (chainSlot) and missing ranges filled iteratively from the watermark.
func (tb *Tables) colKey(y, k, flavor int) memoKey {
	ks, wm := tb.chainSlot(y, flavor)
	if *wm >= k {
		return ks[k]
	}
	tb.digests()
	dig := tb.gammaDig
	if flavor == colPersist {
		dig = tb.persistDig
	}
	refs := tb.byCore[y]
	for j := *wm + 1; j <= k; j++ {
		w := tb.keyWriter()
		if flavor == colPersist {
			w.str("buscon/memo/persist-col/v2")
		} else {
			w.str("buscon/memo/gamma-col/v2")
			w.i64(int64(tb.crpd))
			w.boolean(flavor == colGammaSelfLast)
		}
		w.u64(uint64(j))
		if j > 0 {
			w.h.Write(ks[j-1][:])
			w.h.Write(dig[refs[j-1].idx][:])
		}
		w.h.Sum(ks[j][:0])
	}
	*wm = k
	return ks[k]
}

// scalarChain returns the cached running hash of the per-task scalars
// a curve key covers: prefix chains over byCore[y][:j] (same-core
// curves read PD/MD/MDr/Period; remote ones MD/MDr/Period — PD stays
// out, which is exactly what keeps remote backbones alive across a
// one-task-PD sweep) and suffix chains over the lp tail byCore[y][j:]
// (plus each tail task's persist digest at CPRO depth, covering its
// own PCB against the prefix union). Chaining makes every link O(1)
// SHA work, mirroring colKey; links live in the same dense arena.
func (tb *Tables) scalarChain(y, j, flavor int) memoKey {
	ks, wm := tb.chainSlot(y, flavor)
	refs := tb.byCore[y]
	switch flavor {
	case chainScalarSame, chainScalarRemote:
		if *wm >= j {
			return ks[j]
		}
		for i := *wm + 1; i <= j; i++ {
			w := tb.keyWriter()
			if flavor == chainScalarSame {
				w.str("buscon/memo/scalar-same/v1")
			} else {
				w.str("buscon/memo/scalar-remote/v1")
			}
			if i > 0 {
				ref := refs[i-1]
				w.h.Write(ks[i-1][:])
				if flavor == chainScalarSame {
					w.i64(int64(ref.t.PD))
				}
				w.i64(ref.t.MD)
				w.i64(ref.t.MDr)
				w.i64(int64(ref.t.Period))
			}
			w.h.Sum(ks[i][:0])
		}
		*wm = j
		return ks[j]
	default: // chainLPTail, chainLPTailPersist: suffix, filled downward
		lo := *wm
		if lo == -1 {
			lo = len(refs) + 1
		}
		if lo <= j {
			return ks[j]
		}
		if flavor == chainLPTailPersist {
			tb.digests()
		}
		for i := lo - 1; i >= j; i-- {
			w := tb.keyWriter()
			if flavor == chainLPTail {
				w.str("buscon/memo/lp-tail/v1")
			} else {
				w.str("buscon/memo/lp-tail-persist/v1")
			}
			if i < len(refs) {
				ref := refs[i]
				w.h.Write(ks[i+1][:])
				w.i64(ref.t.MD)
				w.i64(ref.t.MDr)
				w.i64(int64(ref.t.Period))
				if flavor == chainLPTailPersist {
					w.h.Write(tb.persistDig[ref.idx][:])
				}
			}
			w.h.Sum(ks[i][:0])
		}
		*wm = j
		return ks[j]
	}
}

// gammaFlavor returns the γ-column flavor for level ii on core y: the
// selfLast shape is only distinguishable under crpd.ECBOnly (see the
// package comment), so it is normalized away otherwise to maximize
// sharing.
func (tb *Tables) gammaFlavor(ii, y int) int {
	if tb.crpd == crpd.ECBOnly && tb.tasks[ii].Core == y {
		return colGammaSelfLast
	}
	return colGamma
}

// sameCurveFlavor selects the backbone flavor of a same-core curve at
// the requested depth. Same-core backbones always sit on the analyzed
// task's own core, so the chained γ column's selfLast shape is a pure
// function of the CRPD approach (already part of the column key).
func sameCurveFlavor(persist bool) int {
	if persist {
		return curveSamePersistKey
	}
	return curveSameKey
}

// remoteCurveFlavor selects the backbone flavor of a remote curve: the
// γ-column shape (gammaFlavor) times the requested depth.
func remoteCurveFlavor(gflavor int, persist bool) int {
	if gflavor == colGammaSelfLast {
		if persist {
			return curveRemoteSelfPersistKey
		}
		return curveRemoteSelfKey
	}
	if persist {
		return curveRemotePersistKey
	}
	return curveRemoteKey
}

// curveKey returns (building and caching on first use) the
// content-addressed identity of one curve backbone on core y at
// priority cutoff k. The key chains the table-column sub-keys the
// backbone's γ/CPRO fields are drawn from with the ordered scalar
// digests of exactly the tasks whose termCurve entries it holds:
//
//   - same-core (cutoff k = |hep ∩ Γ_y|, terms = the k−1 hp tasks):
//     γ column key [+ CPRO column key at persist depth] ++ the
//     PD/MD/MDr/Period scalars of the hp prefix. The CPRO column at
//     cutoff k covers the analyzed task itself too — required, since
//     it evicts its hp neighbours' persistent blocks.
//   - remote (terms = hep ++ lp of core y): γ column key [+ CPRO column
//     key] ++ the MD/MDr/Period scalars of the hep prefix and the lp
//     tail [+ persistDig of each lp task at persist depth, covering its
//     own PCB against the prefix union]. lp γ values are identically
//     zero, so no γ coverage is needed for the tail.
//
// Scalars excluded everywhere: d_mem and the slot size are read from
// the analyzer at evaluation time (the d_mem-sensitivity contract of
// Tables.compatible), and priorities/cores/names/deadlines enter only
// through prefix membership and order, exactly as in the column keys.
func (tb *Tables) curveKey(y, k, flavor int) memoKey {
	ck := uint64(y)<<36 | uint64(k)<<4 | uint64(flavor)
	if key, ok := tb.colKeys[ck]; ok {
		return key
	}
	// Sub-keys are gathered before the final assembly: the chain fills
	// share the Tables' one hash writer, so they must not run while the
	// curve key's own hash is in flight.
	var key memoKey
	switch flavor {
	case curveSameKey, curveSamePersistKey:
		persist := flavor == curveSamePersistKey
		gflavor := colGamma
		if tb.crpd == crpd.ECBOnly {
			gflavor = colGammaSelfLast
		}
		gk := tb.colKey(y, k, gflavor)
		var pk memoKey
		if persist {
			pk = tb.colKey(y, k, colPersist)
		}
		sc := tb.scalarChain(y, k-1, chainScalarSame)
		w := tb.keyWriter()
		w.str("buscon/memo/curve-same/v2")
		w.boolean(persist)
		w.h.Write(gk[:])
		if persist {
			w.h.Write(pk[:])
		}
		w.h.Write(sc[:])
		w.h.Sum(key[:0])
	default:
		persist := flavor == curveRemotePersistKey || flavor == curveRemoteSelfPersistKey
		gflavor := colGamma
		if flavor == curveRemoteSelfKey || flavor == curveRemoteSelfPersistKey {
			gflavor = colGammaSelfLast
		}
		gk := tb.colKey(y, k, gflavor)
		var pk memoKey
		if persist {
			pk = tb.colKey(y, k, colPersist)
		}
		sc := tb.scalarChain(y, k, chainScalarRemote)
		tailFlavor := chainLPTail
		if persist {
			tailFlavor = chainLPTailPersist
		}
		lt := tb.scalarChain(y, k, tailFlavor)
		w := tb.keyWriter()
		w.str("buscon/memo/curve-remote/v2")
		w.boolean(persist)
		w.h.Write(gk[:])
		if persist {
			w.h.Write(pk[:])
		}
		w.h.Write(sc[:])
		w.u64(uint64(len(tb.byCore[y]) - k))
		w.h.Write(lt[:])
		w.h.Sum(key[:0])
	}
	if tb.colKeys == nil {
		tb.colKeys = make(map[uint64]memoKey, 2*len(tb.tasks))
	}
	tb.colKeys[ck] = key
	return key
}

// memoFillGamma populates the γ entries of level ii's pair column on
// core y from the shared store, computing the column once per content
// key. Positions already built (by the per-pair path) are left
// untouched; the memoized values are bit-identical by construction —
// both paths run the same computeGamma.
func (tb *Tables) memoFillGamma(ii int, r *row, y int, obs *telemetry.Observer) {
	prefix := r.hep[y]
	k := len(prefix)
	if k == 0 {
		return
	}
	tb.ensurePairs(ii, r)
	key := tb.colKey(y, k, tb.gammaFlavor(ii, y))
	col := tb.memo.getOrComputeColumn(key, obs, func() *memoColumn {
		c := &memoColumn{gamma: make([]int64, k)}
		for pos, ref := range prefix {
			c.gamma[pos] = tb.computeGamma(ii, ref.idx)
		}
		return c
	})
	for pos, ref := range prefix {
		p := &r.pair[ref.idx]
		if !p.gammaBuilt {
			p.gamma = col.gamma[pos]
			p.gammaBuilt = true
		}
	}
}

// memoFillPersist populates the CPRO entries of level ii's pair column
// on core y — the hep prefix from the shared per-prefix column, the
// lower-priority tasks (withLow) from chained single-task entries.
func (tb *Tables) memoFillPersist(ii int, r *row, y int, withLow bool, obs *telemetry.Observer) {
	tb.ensurePairs(ii, r)
	prefix := r.hep[y]
	k := len(prefix)
	if k > 0 {
		key := tb.colKey(y, k, colPersist)
		col := tb.memo.getOrComputeColumn(key, obs, func() *memoColumn {
			c := &memoColumn{
				unionOverlap: make([]int64, k),
				evictors:     make([][]persistence.EvictorTerm, k),
			}
			for pos, ref := range prefix {
				c.unionOverlap[pos], c.evictors[pos] = tb.computePersist(prefix, ref.idx)
			}
			return c
		})
		for pos, ref := range prefix {
			p := &r.pair[ref.idx]
			if !p.persistBuilt {
				p.unionOverlap = col.unionOverlap[pos]
				p.evictors = col.evictors[pos]
				p.persistBuilt = true
			}
		}
	}
	if !withLow {
		return
	}
	for _, ref := range r.lp[y] {
		p := &r.pair[ref.idx]
		if p.persistBuilt {
			continue
		}
		key := tb.lpKey(y, k, ref.idx)
		jj := ref.idx
		col := tb.memo.getOrComputeColumn(key, obs, func() *memoColumn {
			uo, ev := tb.computePersist(prefix, jj)
			return &memoColumn{
				unionOverlap: []int64{uo},
				evictors:     [][]persistence.EvictorTerm{ev},
			}
		})
		p.unionOverlap = col.unionOverlap[0]
		p.evictors = col.evictors[0]
		p.persistBuilt = true
	}
}

// lpKey keys one lower-priority task's CPRO entry against core y's
// cutoff-k prefix: the prefix persist key chained with the task's own
// persist digest.
func (tb *Tables) lpKey(y, k, jj int) memoKey {
	var pk memoKey
	if k > 0 {
		pk = tb.colKey(y, k, colPersist)
	} else {
		tb.digests()
	}
	w := tb.keyWriter()
	w.str("buscon/memo/persist-lp/v1")
	w.h.Write(pk[:])
	w.h.Write(tb.persistDig[jj][:])
	var key memoKey
	w.h.Sum(key[:0])
	return key
}
