package core

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/telemetry"
)

// Content-addressed table memoization.
//
// The interference tables (tables.go) are rebuilt from scratch for
// every analysis, even though near-duplicate requests — a sweep that
// perturbs one task, a delta request editing one parameter — share
// almost all of the underlying set arithmetic. This layer keys the
// table columns by a digest of the exact task fields they depend on,
// so any request (concurrent or later) that contains the same column
// reuses it bit for bit.
//
// Unit of sharing. Both the γ column and the CPRO column of a level
// depend on one core's tasks only through the priority-ordered prefix
// ending at the level's cutoff: the k = |Γ_y ∩ hep(i)| lowest-priority
// tasks of core y. Every quantity the tables cache is a pure function
// of that prefix:
//
//   - γ_{i,j,y} (every crpd.Approach) reads the UCB/ECB sets of the
//     prefix tasks — the evicting union ∪ ECB over hep(j) ∩ Γ_y and the
//     affected tasks' UCBs are all drawn from it. The level priority i
//     enters only through the cutoff, with one exception: under
//     crpd.ECBOnly the last prefix position charges 0 when the analyzed
//     task is itself that position (it cannot preempt its own level)
//     but |ECB_j| when the level lives on another core. A selfLast bit
//     in the key separates the two shapes; for every other approach the
//     last position is 0 in both shapes and the bit is normalized away.
//   - The CPRO terms (unionOverlap and the evictor multiset of Eq. 14)
//     read the ECB/PCB sets and periods of the prefix tasks, and do not
//     depend on the CRPD approach at all — the persist keys omit it, so
//     tables built for different approaches share the CPRO columns.
//   - A lower-priority task's CPRO entry at the level (BAOLow) reads
//     the prefix plus that task's own ECB/PCB/Period; it is keyed by
//     the prefix key chained with the task's digest.
//
// Per-task digests cover exactly the fields above (gamma: UCB, ECB;
// persist: ECB, PCB, Period), written through the canonical.go
// hashWriter so the sub-keys inherit its collision-free field framing.
// Everything CanonicalKey normalizes away for the whole request is
// *absent* here rather than normalized: the arbiter, the persistence
// switch, the CPRO approach and MaxOuterIterations never reach the
// table values, and the cache geometry enters only through the sets'
// index contents (associativity — the Ways() normalization — and the
// block size affect no cached term). Names, priorities, cores,
// deadlines and the execution/demand scalars (PD, MD, MDr) are
// likewise excluded, so edits to them invalidate no column. Priority
// and core placement still shape the columns — through the prefix
// membership and order the digest sequence encodes — not through
// their numeric values.
//
// The store is safe for concurrent use and computes each column once:
// the first requester becomes the leader and computes while followers
// of the same key block on a done channel. A leader that panics drops
// its entry and re-panics; released followers recompute locally
// without publishing. Published columns are immutable — the evictor
// slices are aliased, never copied, into every pairTab that reuses
// them — and the done-channel close provides the happens-before edge
// that makes the aliasing race-free.

// memoKey is a content-addressed column identity (SHA-256).
type memoKey [sha256.Size]byte

// memoColumn is one published column: the γ values and/or CPRO terms
// of a prefix, indexed by prefix position. A γ column leaves the
// persist slices nil and vice versa; a single lower-priority entry is
// a persist column of length one. Immutable after publication.
type memoColumn struct {
	gamma        []int64
	unionOverlap []int64
	evictors     [][]persistence.EvictorTerm
}

const memoShards = 16

type memoEntry struct {
	key memoKey
	// col is valid only after done is closed; nil then means the
	// leader's compute failed and the entry was withdrawn.
	col  *memoColumn
	done chan struct{}
}

type memoShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	byKey map[memoKey]*list.Element
}

// MemoStore is a bounded, sharded, concurrency-safe store of
// content-addressed table columns, shared across analyses (and, via
// BatchOptions.Memo, across requests) so that near-duplicate task sets
// recompute only the columns their edits actually invalidate.
type MemoStore struct {
	shards [memoShards]memoShard
	// perCap bounds each shard's entry count (total/memoShards).
	perCap int
}

// NewMemoStore returns a store bounded to roughly maxEntries columns
// (rounded up to the shard granularity), evicted LRU per shard.
// maxEntries <= 0 selects a default sized for sweep workloads.
func NewMemoStore(maxEntries int) *MemoStore {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	perCap := (maxEntries + memoShards - 1) / memoShards
	if perCap < 1 {
		perCap = 1
	}
	m := &MemoStore{perCap: perCap}
	for i := range m.shards {
		m.shards[i].ll = list.New()
		m.shards[i].byKey = make(map[memoKey]*list.Element)
	}
	return m
}

// getOrCompute returns the column for key, computing and publishing it
// via compute if absent. Concurrent callers of the same key compute it
// once: followers block until the leader publishes. obs (nil-safe)
// receives core.memo_* counters: a hit for a published column, a wait
// for joining an in-flight computation, a miss for every actual
// compute invocation, an eviction per capacity drop.
func (m *MemoStore) getOrCompute(key memoKey, obs *telemetry.Observer, compute func() *memoColumn) *memoColumn {
	sh := &m.shards[key[0]&(memoShards-1)]
	sh.mu.Lock()
	if ele, ok := sh.byKey[key]; ok {
		ent := ele.Value.(*memoEntry)
		sh.ll.MoveToFront(ele)
		sh.mu.Unlock()
		select {
		case <-ent.done:
			obs.Add(telemetry.CtrMemoHits, 1)
		default:
			obs.Add(telemetry.CtrMemoWaits, 1)
			<-ent.done
		}
		if ent.col != nil {
			return ent.col
		}
		// The leader failed and withdrew the entry; compute locally
		// without publishing (a later request elects a fresh leader).
		obs.Add(telemetry.CtrMemoMisses, 1)
		return compute()
	}
	ent := &memoEntry{key: key, done: make(chan struct{})}
	ele := sh.ll.PushFront(ent)
	sh.byKey[key] = ele
	for sh.ll.Len() > m.perCap {
		tail := sh.ll.Back()
		if tail == ele {
			break
		}
		sh.ll.Remove(tail)
		delete(sh.byKey, tail.Value.(*memoEntry).key)
		obs.Add(telemetry.CtrMemoEvictions, 1)
	}
	sh.mu.Unlock()

	obs.Add(telemetry.CtrMemoMisses, 1)
	var col *memoColumn
	defer func() {
		// Publish-or-withdraw runs even when compute panics: col stays
		// nil, the entry is removed so the key is not poisoned, and the
		// close releases any followers before the panic propagates.
		ent.col = col
		if col == nil {
			sh.mu.Lock()
			if cur, ok := sh.byKey[key]; ok && cur.Value.(*memoEntry) == ent {
				sh.ll.Remove(cur)
				delete(sh.byKey, key)
			}
			sh.mu.Unlock()
		}
		close(ent.done)
	}()
	col = compute()
	return col
}

// Len reports the number of resident columns (racy snapshot; tests
// and capacity diagnostics only).
func (m *MemoStore) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// setMemo attaches the shared column store (and the observer the lazy
// fills report to). Must be called before the first analysis touches
// the tables.
func (tb *Tables) setMemo(m *MemoStore) { tb.memo = m }

// digests lazily computes the per-task field digests the column keys
// are assembled from. One pass per Tables; the cost is linear in the
// total cache-set footprint.
func (tb *Tables) digests() {
	if tb.gammaDig != nil {
		return
	}
	tb.gammaDig = make([]memoKey, len(tb.tasks))
	tb.persistDig = make([]memoKey, len(tb.tasks))
	for i, t := range tb.tasks {
		w := &hashWriter{h: sha256.New()}
		w.str("buscon/memo/task-gamma/v1")
		w.set(t.UCB)
		w.set(t.ECB)
		w.h.Sum(tb.gammaDig[i][:0])

		w = &hashWriter{h: sha256.New()}
		w.str("buscon/memo/task-persist/v1")
		w.set(t.ECB)
		w.set(t.PCB)
		w.i64(int64(t.Period))
		w.h.Sum(tb.persistDig[i][:0])
	}
}

// colKey flavors, part of the cached-key identity.
const (
	colGamma = iota
	colGammaSelfLast
	colPersist
)

// colKey returns (building and caching on first use) the
// content-addressed key of core y's column at cutoff k under the given
// flavor. The key hashes the ordered digest sequence of the prefix —
// order matters: the running evicting unions and the affected-task
// sets are positional.
func (tb *Tables) colKey(y, k, flavor int) memoKey {
	ck := uint64(y)<<34 | uint64(k)<<2 | uint64(flavor)
	if key, ok := tb.colKeys[ck]; ok {
		return key
	}
	w := &hashWriter{h: sha256.New()}
	tb.digests()
	var dig []memoKey
	switch flavor {
	case colGamma, colGammaSelfLast:
		w.str("buscon/memo/gamma-col/v1")
		w.i64(int64(tb.crpd))
		w.boolean(flavor == colGammaSelfLast)
		dig = tb.gammaDig
	case colPersist:
		w.str("buscon/memo/persist-col/v1")
		dig = tb.persistDig
	}
	w.u64(uint64(k))
	for _, ref := range tb.byCore[y][:k] {
		w.h.Write(dig[ref.idx][:])
	}
	var key memoKey
	w.h.Sum(key[:0])
	if tb.colKeys == nil {
		tb.colKeys = make(map[uint64]memoKey)
	}
	tb.colKeys[ck] = key
	return key
}

// gammaFlavor returns the γ-column flavor for level ii on core y: the
// selfLast shape is only distinguishable under crpd.ECBOnly (see the
// package comment), so it is normalized away otherwise to maximize
// sharing.
func (tb *Tables) gammaFlavor(ii, y int) int {
	if tb.crpd == crpd.ECBOnly && tb.tasks[ii].Core == y {
		return colGammaSelfLast
	}
	return colGamma
}

// memoFillGamma populates the γ entries of level ii's pair column on
// core y from the shared store, computing the column once per content
// key. Positions already built (by the per-pair path) are left
// untouched; the memoized values are bit-identical by construction —
// both paths run the same computeGamma.
func (tb *Tables) memoFillGamma(ii int, r *row, y int, obs *telemetry.Observer) {
	prefix := r.hep[y]
	k := len(prefix)
	if k == 0 {
		return
	}
	key := tb.colKey(y, k, tb.gammaFlavor(ii, y))
	col := tb.memo.getOrCompute(key, obs, func() *memoColumn {
		c := &memoColumn{gamma: make([]int64, k)}
		for pos, ref := range prefix {
			c.gamma[pos] = tb.computeGamma(ii, ref.idx)
		}
		return c
	})
	for pos, ref := range prefix {
		p := &r.pair[ref.idx]
		if !p.gammaBuilt {
			p.gamma = col.gamma[pos]
			p.gammaBuilt = true
		}
	}
}

// memoFillPersist populates the CPRO entries of level ii's pair column
// on core y — the hep prefix from the shared per-prefix column, the
// lower-priority tasks (withLow) from chained single-task entries.
func (tb *Tables) memoFillPersist(ii int, r *row, y int, withLow bool, obs *telemetry.Observer) {
	prefix := r.hep[y]
	k := len(prefix)
	if k > 0 {
		key := tb.colKey(y, k, colPersist)
		col := tb.memo.getOrCompute(key, obs, func() *memoColumn {
			c := &memoColumn{
				unionOverlap: make([]int64, k),
				evictors:     make([][]persistence.EvictorTerm, k),
			}
			for pos, ref := range prefix {
				c.unionOverlap[pos], c.evictors[pos] = tb.computePersist(prefix, ref.idx)
			}
			return c
		})
		for pos, ref := range prefix {
			p := &r.pair[ref.idx]
			if !p.persistBuilt {
				p.unionOverlap = col.unionOverlap[pos]
				p.evictors = col.evictors[pos]
				p.persistBuilt = true
			}
		}
	}
	if !withLow {
		return
	}
	for _, ref := range r.lp[y] {
		p := &r.pair[ref.idx]
		if p.persistBuilt {
			continue
		}
		key := tb.lpKey(y, k, ref.idx)
		jj := ref.idx
		col := tb.memo.getOrCompute(key, obs, func() *memoColumn {
			uo, ev := tb.computePersist(prefix, jj)
			return &memoColumn{
				unionOverlap: []int64{uo},
				evictors:     [][]persistence.EvictorTerm{ev},
			}
		})
		p.unionOverlap = col.unionOverlap[0]
		p.evictors = col.evictors[0]
		p.persistBuilt = true
	}
}

// lpKey keys one lower-priority task's CPRO entry against core y's
// cutoff-k prefix: the prefix persist key chained with the task's own
// persist digest.
func (tb *Tables) lpKey(y, k, jj int) memoKey {
	var pk memoKey
	if k > 0 {
		pk = tb.colKey(y, k, colPersist)
	} else {
		tb.digests()
	}
	w := &hashWriter{h: sha256.New()}
	w.str("buscon/memo/persist-lp/v1")
	w.h.Write(pk[:])
	w.h.Write(tb.persistDig[jj][:])
	var key memoKey
	w.h.Sum(key[:0])
	return key
}
