package core

import (
	"testing"

	"repro/internal/cacheset"
	"repro/internal/fixtures"
	"repro/internal/taskmodel"
)

// fpBlockingSet builds a two-core system where the FP bus blocking
// terms of Eq. (7) are all exercised: a middle-priority task under
// analysis, a remote higher-priority task (BAO), a remote
// lower-priority task (BAO_low / min term) and a local lower-priority
// task (+1).
func fpBlockingSet() *taskmodel.TaskSet {
	n := 8
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     2,
		SlotSize: 1,
	}
	empty := cacheset.New(n)
	mk := func(name string, core, prio int, pd taskmodel.Time, md int64, period taskmodel.Time) *taskmodel.Task {
		return &taskmodel.Task{
			Name: name, Core: core, Priority: prio,
			PD: pd, MD: md, MDr: md, Period: period, Deadline: period,
			ECB: empty, UCB: empty, PCB: empty,
		}
	}
	return taskmodel.NewTaskSet(plat, []*taskmodel.Task{
		mk("remoteHi", 1, 0, 5, 3, 50),
		mk("under", 0, 1, 10, 4, 200),
		mk("localLo", 0, 2, 8, 2, 300),
		mk("remoteLo", 1, 3, 6, 2, 400),
	})
}

func TestFPBlockingTermsHandChecked(t *testing.T) {
	ts := fpBlockingSet()
	a, err := NewAnalyzer(ts, Config{Arbiter: FP})
	if err != nil {
		t.Fatal(err)
	}
	// Fix remote response estimates for determinism of njobs.
	a.R[0] = 11 // PD+MD*d = 5+6
	a.R[3] = 10

	const w = taskmodel.Time(40)
	// BAS for "under" (prio 1, core 0): MD=4, no local hp → 4.
	if got := a.BAS(1, 0, w); got != 4 {
		t.Fatalf("BAS = %d, want 4", got)
	}
	// BAO(level 1, core 1): only remoteHi (prio 0).
	// njobs = floor((40+11-3*2)/50) = 0; wcout = min(ceil(45/2), 3) = 3.
	if got := a.BAO(1, 1, w); got != 3 {
		t.Fatalf("BAO = %d, want 3 (pure carry-out)", got)
	}
	// BAOLow(level 1, core 1): remoteLo: njobs = floor((40+10-4)/400)=0;
	// wcout = min(ceil(46/2), 2) = 2.
	if got := a.BAOLow(1, 1, w); got != 2 {
		t.Fatalf("BAOLow = %d, want 2", got)
	}
	// plus1: localLo exists.
	if got := a.plus1(1, 0); got != 1 {
		t.Fatalf("plus1 = %d, want 1", got)
	}
	// Eq. (7): BAS + BAO + 1 + min(BAS, BAOLow) = 4 + 3 + 1 + 2 = 10.
	if got := a.BAT(1, w); got != 10 {
		t.Fatalf("BAT = %d, want 10", got)
	}
}

func TestNjobsClampsNegative(t *testing.T) {
	ts := fpBlockingSet()
	a, err := NewAnalyzer(ts, Config{Arbiter: FP})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny window, R estimate small: numerator negative.
	a.R[0] = 1
	if got := a.njobs(1, ts.ByPriority(0), 1); got != 0 {
		t.Fatalf("njobs = %d, want 0 (clamped)", got)
	}
}

func TestWcoutClampedByDemand(t *testing.T) {
	ts := fpBlockingSet()
	a, err := NewAnalyzer(ts, Config{Arbiter: FP})
	if err != nil {
		t.Fatal(err)
	}
	tl := ts.ByPriority(0)
	a.R[0] = 1000 // huge estimate: carry-out capped at MD+γ
	if got := a.wcout(1, tl, 10, 0); got != tl.MD {
		t.Fatalf("wcout = %d, want MD = %d", got, tl.MD)
	}
	// Negative numerator clamps at zero.
	a.R[0] = 0
	if got := a.wcout(1, tl, 0, 5); got != 0 {
		t.Fatalf("wcout = %d, want 0", got)
	}
}

func TestMaxOuterIterationsCapIsConservative(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	res, err := Analyze(ts, Config{Arbiter: RR, Persistence: true, MaxOuterIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(ts, Config{Arbiter: RR, Persistence: true})
	if err != nil {
		t.Fatal(err)
	}
	// With a one-iteration budget the outer loop cannot certify
	// convergence unless it happens immediately; if it reports
	// schedulable, the unconstrained run must agree.
	if res.Schedulable && !full.Schedulable {
		t.Fatal("capped run certified a set the full run rejects")
	}
	if res.Schedulable && !res.Complete {
		t.Fatal("schedulable result must be complete")
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct{ a, b, ceil, floor int64 }{
		{7, 2, 4, 3},
		{8, 2, 4, 4},
		{-7, 2, -3, -4},
		{0, 5, 0, 0},
		{-1, 3, 0, -1},
		{1, 3, 1, 0},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(TDMA, true)
	if cfg.Arbiter != TDMA || !cfg.Persistence {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestResultCompleteFlag(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	res, err := Analyze(ts, Config{Arbiter: RR})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable || !res.Complete {
		t.Fatalf("Fig1 under RR should be schedulable and complete: %+v", res)
	}
	// Force a miss: shrink τ2's deadline below its isolated demand.
	ts.Tasks[1].Deadline = 10
	ts.Tasks[1].Period = 120
	res, err = Analyze(ts, Config{Arbiter: RR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable || res.Complete {
		t.Fatalf("expected incomplete unschedulable result: %+v", res)
	}
}
