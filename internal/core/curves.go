package core

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/persistence"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Event-driven fixed-point engine.
//
// Every interference term of Eq. (19) — the processor preemption sum,
// the same-core access bounds of Eq. (1)/Lemma 1 and the remote
// W + W_cout terms of Eq. (3)–(6)/Lemma 2 — is a right-continuous
// monotone step function of the window length t. Its value only
// changes at breakpoints: job-release multiples n·T_j of the
// interfering task, the d_mem-granular steps of the carry-out ramp,
// and (under the multiset CPRO bound) the release multiples of each
// evictor. Between breakpoints the whole recurrence right-hand side
// f(t) is constant.
//
// The engine represents each term as a breakpoint curve: the
// loop-invariant constants (termCurve, materialized lazily per
// (level, task, core) into the Tables and shared across every
// configuration with the same CRPD approach) plus a moving cursor
// holding the term's current value and the smallest t at which that
// value may change. Cursors only move forward — the fixed-point
// iterate is monotone non-decreasing — so one pass over the
// breakpoints in [seed, R] suffices. Evaluating f at a new iterate
// costs O(#crossed breakpoints) instead of O(#tasks); an iterate that
// crosses none is recognized in O(1) via the cached minimum
// next-breakpoint, in which case f(next) = f(r) = next and the
// iteration terminates immediately — the "breakpoint jump" that makes
// the recurrence converge in at most one evaluation per breakpoint
// region.
//
// Soundness of the skip: a cursor's next-breakpoint is always a lower
// bound on the true next change (it may fire early and recompute an
// unchanged value, never late), so a skipped re-evaluation provably
// returns the cached value. The iterate sequence is therefore exactly
// the naive chain r, f(r), f²(r), … of reference.go — including the
// deadline-abort value — which is what keeps the differential test
// bit-identical. See DESIGN.md ("Breakpoint-jumping fixed point").

const maxTime = taskmodel.Time(math.MaxInt64)

// termCurve is one interference curve's loop-invariant backbone: the
// interfering task's scalar parameters plus its filled pair-table
// entry at the curve's analysis level. Everything the step function
// needs except the current iterate t and (for remote terms) the
// remote response-time estimate R_l, which the cursor captures at
// reset. The task pointer refers to the tables' task set; by the
// compatibility contract its scalar parameters match the analyzer's
// (only d_mem may differ, and that is read from the analyzer).
type termCurve struct {
	t *taskmodel.Task
	p *pairTab
	// pcb caches |PCB_j| for the FullReload CPRO bound.
	pcb int64
	// idx is the interfering task's table index — the key into the
	// analyzer's dense response-time mirror.
	idx int32
}

// levelCurves materializes one analysis level's interference curves,
// mirroring the row's hp/hep/lp slices (same tasks, same order — the
// summation order of bas/bao/BAOLow, kept identical so the engine
// reproduces their arithmetic exactly). Like the pair tables the
// build is lazy — per level, per core, per column: TDMA and Perfect
// never pay for remote curves, and persistence-oblivious
// configurations never pay for the CPRO fills.
type levelCurves struct {
	// same covers hp(i) on the task's own core: the processor
	// preemption term of Eq. (19) and the BAS term of Eq. (1)/Lemma 1.
	same []termCurve
	// remote[y]/low[y] cover hep(i)∩Γ_y and lp(i)∩Γ_y: the BAO and
	// BAO_low terms of Eq. (3)–(7). Built per core on first use, all
	// subsliced from the flat backing at the tables' coreOff offsets.
	remote [][]termCurve
	low    [][]termCurve
	flat   []termCurve

	sameBuilt     bool
	samePersist   bool
	remoteBuilt   []bool
	remotePersist []bool
}

func (tb *Tables) levelCurves(ii int) *levelCurves {
	if tb.curves == nil {
		tb.curves = make([]levelCurves, len(tb.tasks))
	}
	lc := &tb.curves[ii]
	if lc.remoteBuilt == nil {
		m := tb.ts.Platform.NumCores
		hdr := make([][]termCurve, 2*m)
		lc.remote, lc.low = hdr[:m:m], hdr[m:]
		flags := make([]bool, 2*m)
		lc.remoteBuilt, lc.remotePersist = flags[:m:m], flags[m:]
	}
	return lc
}

// curveSame returns level ii's same-core curves, built on first use.
// With persist set, the pair entries are additionally brought to CPRO
// depth (a no-op once done). obs, when non-nil, records whether the
// call hit the cache or paid for a build.
func (tb *Tables) curveSame(ii int, persist bool, obs *telemetry.Observer) []termCurve {
	lc := tb.levelCurves(ii)
	r := tb.row(ii)
	if !lc.sameBuilt {
		if obs != nil {
			obs.Add(telemetry.CtrCurveBuilds, 1)
			if obs.Tracing() {
				defer obs.Span("curves level "+strconv.Itoa(ii)+" same", "curves").End()
			}
		}
		if tb.memo != nil {
			tb.memoFillGamma(ii, r, tb.tasks[ii].Core, obs)
		}
		lc.same = make([]termCurve, len(r.hp))
		for k, ref := range r.hp {
			lc.same[k] = termCurve{t: ref.t, p: tb.pair(ii, r, ref.idx), pcb: tb.pcb[ref.idx], idx: int32(ref.idx)}
		}
		lc.sameBuilt = true
	} else if obs != nil {
		obs.Add(telemetry.CtrCurveHits, 1)
	}
	if persist && !lc.samePersist {
		if tb.memo != nil {
			tb.memoFillPersist(ii, r, tb.tasks[ii].Core, false, obs)
		}
		for _, ref := range r.hp {
			tb.pairPersist(ii, r, ref.idx)
		}
		lc.samePersist = true
	}
	return lc.same
}

// curveRemote returns level ii's hep and lp curves on core y, built on
// first use.
func (tb *Tables) curveRemote(ii, y int, persist bool, obs *telemetry.Observer) (remote, low []termCurve) {
	lc := tb.levelCurves(ii)
	r := tb.row(ii)
	if !lc.remoteBuilt[y] {
		if obs != nil {
			obs.Add(telemetry.CtrCurveBuilds, 1)
			if obs.Tracing() {
				defer obs.Span("curves level "+strconv.Itoa(ii)+" core "+strconv.Itoa(y), "curves").End()
			}
		}
		if tb.memo != nil {
			tb.memoFillGamma(ii, r, y, obs)
		}
		if lc.flat == nil {
			lc.flat = make([]termCurve, len(tb.tasks))
		}
		part := lc.flat[tb.coreOff[y]:tb.coreOff[y]]
		for _, ref := range r.hep[y] {
			part = append(part, termCurve{t: ref.t, p: tb.pair(ii, r, ref.idx), pcb: tb.pcb[ref.idx], idx: int32(ref.idx)})
		}
		for _, ref := range r.lp[y] {
			part = append(part, termCurve{t: ref.t, p: tb.pair(ii, r, ref.idx), pcb: tb.pcb[ref.idx], idx: int32(ref.idx)})
		}
		n := len(r.hep[y])
		lc.remote[y] = part[:n:n]
		lc.low[y] = part[n:]
		lc.remoteBuilt[y] = true
	} else if obs != nil {
		obs.Add(telemetry.CtrCurveHits, 1)
	}
	if persist && !lc.remotePersist[y] {
		if tb.memo != nil {
			tb.memoFillPersist(ii, r, y, true, obs)
		}
		for _, ref := range r.hep[y] {
			tb.pairPersist(ii, r, ref.idx)
		}
		for _, ref := range r.lp[y] {
			tb.pairPersist(ii, r, ref.idx)
		}
		lc.remotePersist[y] = true
	}
	return lc.remote[y], lc.low[y]
}

// sameCursor tracks one same-core task's pair of step functions: the
// processor preemption term ⌈t/T_j⌉·PD_j and the BAS access term.
// Both share the release breakpoints of τ_j, so one cursor serves
// both.
type sameCursor struct {
	tc      *termCurve
	procVal taskmodel.Time
	basVal  int64
	// next is the smallest t at which either value may change.
	next taskmodel.Time
}

// remoteCursor tracks one remote task's W + W_cout step function at
// the cursor's analysis level.
type remoteCursor struct {
	tc *termCurve
	// c is R_l − (MD_l+γ)·d_mem, the response-time-dependent offset of
	// Eq. (6), fixed for the duration of one inner fixed point.
	c    int64
	val  int64
	next taskmodel.Time
	// core indexes the per-core sum the value feeds; low selects the
	// BAO_low sum (FP blocking) over the BAO sum.
	core int32
	low  bool
}

// fpState is one analyzed task's cursor state, kept per level for the
// analyzer's lifetime. Because the outer loop is monotone — each
// re-analysis of a task resumes from its own previous fixed point, and
// remote estimates only grow — the cursors stay valid across
// ResponseTime calls: a re-analysis triggered by a changed remote
// estimate re-evaluates only the remote terms whose R_l actually moved
// (the markDependents invariant made concrete). All slices are reused,
// so the inner fixed point allocates nothing once the analyzer is warm
// (pinned by the allocs regression test).
type fpState struct {
	same    []sameCursor
	remote  []remoteCursor
	baoSum  []int64
	lowSum  []int64
	procSum taskmodel.Time
	basSum  int64
	// minNext is the smallest next-breakpoint over all cursors: below
	// it, every term — and hence f — is provably constant.
	minNext taskmodel.Time
	// at is the iterate the cursor values are currently valid at; a
	// reset whose seed equals at reuses them wholesale.
	at    taskmodel.Time
	valid bool
}

// persistentDemandCurve is persistentDemand evaluated from curve
// constants: the same arithmetic, term for term, so both paths produce
// bit-identical values.
func (a *Analyzer) persistentDemandCurve(tc *termCurve, n int64, t taskmodel.Time) int64 {
	if n <= 0 {
		return 0
	}
	plain := n * tc.t.MD
	mdhat := n*tc.t.MDr + tc.pcb
	if plain < mdhat {
		mdhat = plain
	}
	aware := mdhat + a.rhoCurve(tc, n, t)
	if aware < plain {
		return aware
	}
	return plain
}

// rhoCurve mirrors rho from curve constants.
func (a *Analyzer) rhoCurve(tc *termCurve, n int64, t taskmodel.Time) int64 {
	if n <= 1 {
		return 0
	}
	switch a.Cfg.CPRO {
	case persistence.Union:
		return (n - 1) * tc.p.unionOverlap
	case persistence.MultisetUnion:
		union := (n - 1) * tc.p.unionOverlap
		var multi int64
		for _, ev := range tc.p.evictors {
			// Jobs of the evictor in the window, +1 for a carry-in job.
			jobs := int64(t)/int64(ev.Period) + 2
			if jobs > n-1 {
				jobs = n - 1
			}
			multi += jobs * ev.Overlap
		}
		return min64(multi, union)
	case persistence.FullReload:
		return (n - 1) * tc.pcb
	case persistence.None:
		return 0
	default:
		panic(fmt.Sprintf("core: unknown CPRO approach %d", int(a.Cfg.CPRO)))
	}
}

// evictorBreak returns the smallest evictor-release multiple above t,
// the only t-dependence of the multiset CPRO bound. Other CPRO
// approaches depend on t solely through the job count n, whose steps
// the callers account for separately.
func (a *Analyzer) evictorBreak(tc *termCurve, t, next taskmodel.Time) taskmodel.Time {
	if !a.Cfg.Persistence || a.Cfg.CPRO != persistence.MultisetUnion {
		return next
	}
	for _, ev := range tc.p.evictors {
		if bp := (int64(t)/int64(ev.Period) + 1) * int64(ev.Period); bp < next {
			next = bp
		}
	}
	return next
}

// sameEval evaluates one same-core curve at t: the processor term, the
// BAS term (matching bas() exactly) and the next breakpoint.
func (a *Analyzer) sameEval(tc *termCurve, t taskmodel.Time) (procVal taskmodel.Time, basVal int64, next taskmodel.Time) {
	e := ceilDiv(int64(t), int64(tc.t.Period))
	procVal = taskmodel.Time(e) * tc.t.PD
	if a.Cfg.Persistence {
		basVal = a.persistentDemandCurve(tc, e, t) + e*tc.p.gamma
	} else {
		basVal = e*tc.t.MD + e*tc.p.gamma
	}
	// ⌈t/T⌉ holds its value up to and including e·T; it steps at
	// e·T + 1 (times are integral).
	next = e*int64(tc.t.Period) + 1
	next = a.evictorBreak(tc, t, next)
	if next <= t {
		next = t + 1 // defensive: cursors must always move forward
	}
	return procVal, basVal, next
}

// remoteEval evaluates one remote curve at t, matching contribRef
// exactly: the n(t) job count of Eq. (6), the W demand term and the
// carry-out ramp W_cout of Eq. (5), plus the next breakpoint (job
// release, d_mem ramp step, or evictor release).
func (a *Analyzer) remoteEval(tc *termCurve, c int64, t taskmodel.Time) (val int64, next taskmodel.Time) {
	dmem := int64(a.TS.Platform.DMem)
	period := int64(tc.t.Period)
	num := int64(t) + c
	n := floorDiv(num, period)
	if n < 0 {
		n = 0
	}
	var w int64
	if a.Cfg.Persistence {
		w = a.persistentDemandCurve(tc, n, t) + n*tc.p.gamma
	} else {
		w = n * (tc.t.MD + tc.p.gamma)
	}
	wcCap := tc.t.MD + tc.p.gamma
	rem := num - n*period
	wcRaw := ceilDiv(rem, dmem)
	wc := wcRaw
	if wc < 0 {
		wc = 0
	} else if wc > wcCap {
		wc = wcCap
	}
	val = w + wc

	// Next job-release step of the (clamped) n.
	next = taskmodel.Time((n+1)*period - c)
	// Next carry-out ramp step, unless the ramp is saturated: the
	// ceiling over rem advances at rem = wcRaw·d_mem + 1, or first
	// turns positive at rem = 1.
	if wcRaw < wcCap {
		remNext := int64(1)
		if wcRaw > 0 {
			remNext = wcRaw*dmem + 1
		}
		if bp := t + taskmodel.Time(remNext-rem); bp < next {
			next = bp
		}
	}
	next = a.evictorBreak(tc, t, next)
	if next <= t {
		next = t + 1
	}
	return val, next
}

// fpRemote reads the current remote estimate feeding one remote
// cursor: the dense mirror while Run is live, the public map otherwise.
func (a *Analyzer) fpRemote(tc *termCurve) taskmodel.Time {
	if a.rdLive {
		return a.rd[tc.idx]
	}
	return a.R[tc.t.Priority]
}

// fpReset prepares the cursors for the priority-level row ii at the
// starting iterate r, setting a.fp to the level's persistent state.
// Remote curves are read at level ii for the FP bus and at the
// lowest-priority level for RR (Eq. 8 charges remote demand at the
// bottom level); TDMA and Perfect need none.
//
// When the level was analyzed before and the seed equals the iterate
// its cursors stopped at — the steady state of the outer loop, whose
// seeds resume from the task's own previous fixed point — the cursors
// are reused: only remote terms whose R_l offset moved are
// re-evaluated. Their values are pure functions of (c, t), so the
// refreshed state is identical to a full rebuild.
func (a *Analyzer) fpReset(ii int, core int, r taskmodel.Time) {
	if a.fps == nil {
		a.fps = make([]fpState, len(a.tab.tasks))
	}
	s := &a.fps[ii]
	a.fp = s
	dmem := int64(a.TS.Platform.DMem)
	if s.valid && s.at == r {
		var refreshed int64
		changed := false
		for k := range s.remote {
			cur := &s.remote[k]
			tc := cur.tc
			c := int64(a.fpRemote(tc)) - (tc.t.MD+tc.p.gamma)*dmem
			if c == cur.c {
				continue
			}
			val, next := a.remoteEval(tc, c, r)
			if cur.low {
				s.lowSum[cur.core] += val - cur.val
			} else {
				s.baoSum[cur.core] += val - cur.val
			}
			cur.c, cur.val, cur.next = c, val, next
			refreshed++
			changed = true
		}
		if a.obs != nil {
			a.obs.Add(telemetry.CtrCursorResumes, 1)
			a.obs.Add(telemetry.CtrCursorRemoteRefreshes, refreshed)
		}
		if changed {
			minNext := maxTime
			for k := range s.same {
				if s.same[k].next < minNext {
					minNext = s.same[k].next
				}
			}
			for k := range s.remote {
				if s.remote[k].next < minNext {
					minNext = s.remote[k].next
				}
			}
			s.minNext = minNext
		}
		return
	}

	if a.obs != nil {
		a.obs.Add(telemetry.CtrCursorRebuilds, 1)
	}
	persist := a.Cfg.Persistence
	s.procSum, s.basSum = 0, 0
	s.minNext = maxTime
	s.at = r
	s.valid = true

	same := a.tab.curveSame(ii, persist, a.obs)
	if cap(s.same) < len(same) {
		s.same = make([]sameCursor, 0, len(same))
	}
	s.same = s.same[:0]
	for k := range same {
		tc := &same[k]
		procVal, basVal, next := a.sameEval(tc, r)
		s.procSum += procVal
		s.basSum += basVal
		if next < s.minNext {
			s.minNext = next
		}
		s.same = append(s.same, sameCursor{tc: tc, procVal: procVal, basVal: basVal, next: next})
	}

	m := a.TS.Platform.NumCores
	if cap(s.baoSum) < m {
		s.baoSum = make([]int64, m)
		s.lowSum = make([]int64, m)
	}
	s.baoSum = s.baoSum[:m]
	s.lowSum = s.lowSum[:m]
	for y := 0; y < m; y++ {
		s.baoSum[y], s.lowSum[y] = 0, 0
	}
	s.remote = s.remote[:0]
	if a.Cfg.Arbiter != FP && a.Cfg.Arbiter != RR {
		return
	}
	if cap(s.remote) < len(a.tab.tasks) {
		s.remote = make([]remoteCursor, 0, len(a.tab.tasks))
	}

	addRemote := func(terms []termCurve, y int, low bool) {
		for k := range terms {
			tc := &terms[k]
			c := int64(a.fpRemote(tc)) - (tc.t.MD+tc.p.gamma)*dmem
			val, next := a.remoteEval(tc, c, r)
			if low {
				s.lowSum[y] += val
			} else {
				s.baoSum[y] += val
			}
			if next < s.minNext {
				s.minNext = next
			}
			s.remote = append(s.remote, remoteCursor{tc: tc, c: c, val: val, next: next, core: int32(y), low: low})
		}
	}
	level := ii
	if a.Cfg.Arbiter == RR {
		level = a.tab.prioIdx[a.TS.LowestPriority()]
	}
	for y := 0; y < m; y++ {
		if y == core {
			continue
		}
		remote, low := a.tab.curveRemote(level, y, persist, a.obs)
		addRemote(remote, y, false)
		if a.Cfg.Arbiter == FP {
			addRemote(low, y, true)
		}
	}
}

// fpAdvance moves every cursor whose breakpoint was crossed forward to
// t, updating the running sums in place. Cursors not yet at their
// breakpoint keep their value — that is the entire saving.
func (a *Analyzer) fpAdvance(t taskmodel.Time) {
	s := a.fp
	s.at = t
	if t < s.minNext {
		return
	}
	var snaps int64
	minNext := maxTime
	for k := range s.same {
		cur := &s.same[k]
		if cur.next <= t {
			procVal, basVal, next := a.sameEval(cur.tc, t)
			s.procSum += procVal - cur.procVal
			s.basSum += basVal - cur.basVal
			cur.procVal, cur.basVal, cur.next = procVal, basVal, next
			snaps++
		}
		if cur.next < minNext {
			minNext = cur.next
		}
	}
	for k := range s.remote {
		cur := &s.remote[k]
		if cur.next <= t {
			val, next := a.remoteEval(cur.tc, cur.c, t)
			if cur.low {
				s.lowSum[cur.core] += val - cur.val
			} else {
				s.baoSum[cur.core] += val - cur.val
			}
			cur.val, cur.next = val, next
			snaps++
		}
		if cur.next < minNext {
			minNext = cur.next
		}
	}
	s.minNext = minNext
	if a.obs != nil {
		a.obs.Add(telemetry.CtrBreakpointSnaps, snaps)
	}
}

// fpBAT combines the cursor sums into BAT exactly as BAT() does from
// its recomputed terms: Eq. (7) for FP, Eq. (8) for RR, Eq. (9) for
// TDMA, own accesses only for Perfect.
func (a *Analyzer) fpBAT(md int64, core int, hasLP bool) int64 {
	s := a.fp
	bas := md + s.basSum
	var plus1 int64
	if hasLP {
		plus1 = 1
	}
	switch a.Cfg.Arbiter {
	case Perfect:
		return bas
	case FP:
		total := bas + plus1
		var low int64
		for y := range s.baoSum {
			total += s.baoSum[y]
			low += s.lowSum[y]
		}
		return total + min64(bas, low)
	case RR:
		slot := int64(a.TS.Platform.SlotSize)
		total := bas + plus1
		for y := 0; y < len(s.baoSum); y++ {
			if y == core {
				continue
			}
			total += min64(s.baoSum[y], slot*bas)
		}
		return total
	case TDMA:
		slot := int64(a.TS.Platform.SlotSize)
		l := int64(a.TS.Platform.NumCores)
		return bas + (l-1)*slot*bas + plus1
	default:
		panic(fmt.Sprintf("core: unknown arbiter %d", int(a.Cfg.Arbiter)))
	}
}
