package core

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/persistence"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Event-driven fixed-point engine.
//
// Every interference term of Eq. (19) — the processor preemption sum,
// the same-core access bounds of Eq. (1)/Lemma 1 and the remote
// W + W_cout terms of Eq. (3)–(6)/Lemma 2 — is a right-continuous
// monotone step function of the window length t. Its value only
// changes at breakpoints: job-release multiples n·T_j of the
// interfering task, the d_mem-granular steps of the carry-out ramp,
// and (under the multiset CPRO bound) the release multiples of each
// evictor. Between breakpoints the whole recurrence right-hand side
// f(t) is constant.
//
// The engine represents each term as a breakpoint curve: the
// loop-invariant constants (termCurve, materialized lazily per
// (level, task, core) into the Tables and shared across every
// configuration with the same CRPD approach) plus a moving cursor
// holding the term's current value and the smallest t at which that
// value may change. Cursors only move forward — the fixed-point
// iterate is monotone non-decreasing — so one pass over the
// breakpoints in [seed, R] suffices. Evaluating f at a new iterate
// costs O(#crossed breakpoints) instead of O(#tasks); an iterate that
// crosses none is recognized in O(1) via the cached minimum
// next-breakpoint, in which case f(next) = f(r) = next and the
// iteration terminates immediately — the "breakpoint jump" that makes
// the recurrence converge in at most one evaluation per breakpoint
// region.
//
// Soundness of the skip: a cursor's next-breakpoint is always a lower
// bound on the true next change (it may fire early and recompute an
// unchanged value, never late), so a skipped re-evaluation provably
// returns the cached value. The iterate sequence is therefore exactly
// the naive chain r, f(r), f²(r), … of reference.go — including the
// deadline-abort value — which is what keeps the differential test
// bit-identical. See DESIGN.md ("Breakpoint-jumping fixed point").

const maxTime = taskmodel.Time(math.MaxInt64)

// termCurve is one interference curve's loop-invariant backbone entry:
// the interfering task's scalar parameters and its pair-table values
// at the curve's analysis level, copied by value. Everything the step
// function needs except the current iterate t and (for remote terms)
// the remote response-time estimate R_l, which the cursor captures at
// reset — task identity (index, priority) lives on the cursor too, so
// a backbone slice is a pure function of its content key and can be
// shared copy-free across analyses through the MemoStore. Fields not
// covered by the backbone's key are left zero: pd on remote backbones
// (no remote term of Eq. (3)–(6) reads it) and the CPRO fields
// (pcb/unionOverlap/evictors) on γ-depth backbones (read only with
// persistence enabled, which requests CPRO depth). d_mem and the slot
// size are read from the analyzer at evaluation time.
type termCurve struct {
	period taskmodel.Time
	pd     taskmodel.Time
	md     int64
	mdr    int64
	// gamma is γ_{i,j,core(j)} at the backbone's level.
	gamma int64
	// pcb caches |PCB_j| for the FullReload CPRO bound; unionOverlap
	// and evictors are the Eq. (14) CPRO terms. CPRO depth only.
	pcb          int64
	unionOverlap int64
	evictors     []persistence.EvictorTerm
}

// levelCurves materializes one analysis level's interference curves,
// mirroring the row's hp/hep/lp slices (same tasks, same order — the
// summation order of bas/bao/BAOLow, kept identical so the engine
// reproduces their arithmetic exactly). Like the pair tables the
// build is lazy — per level, per core, per column: TDMA and Perfect
// never pay for remote curves, and persistence-oblivious
// configurations never pay for the CPRO fills. The slices are views
// into backbones that may be shared through the MemoStore and must
// not be mutated; per-level state here is only the bookkeeping flags.
type levelCurves struct {
	// same covers hp(i) on the task's own core: the processor
	// preemption term of Eq. (19) and the BAS term of Eq. (1)/Lemma 1.
	same []termCurve
	// remote[y]/low[y] cover hep(i)∩Γ_y and lp(i)∩Γ_y: the BAO and
	// BAO_low terms of Eq. (3)–(7), subsliced from one contiguous
	// per-core backbone at the level's priority cutoff.
	remote [][]termCurve
	low    [][]termCurve

	sameBuilt     bool
	samePersist   bool
	remoteBuilt   []bool
	remotePersist []bool
}

func (tb *Tables) levelCurves(ii int) *levelCurves {
	if tb.curves == nil {
		tb.curves = make([]levelCurves, len(tb.tasks))
	}
	lc := &tb.curves[ii]
	if lc.remoteBuilt == nil {
		m := tb.ts.Platform.NumCores
		hdr := make([][]termCurve, 2*m)
		lc.remote, lc.low = hdr[:m:m], hdr[m:]
		flags := make([]bool, 2*m)
		lc.remoteBuilt, lc.remotePersist = flags[:m:m], flags[m:]
	}
	return lc
}

// buildSameBackbone materializes level ii's same-core backbone at the
// requested depth: one termCurve per hp task, in hp order. The shared
// body of the local build and the memoized compute, so store-served
// and per-analysis backbones are bit-identical; counted as a genuine
// cold build (CtrCurveBuilds).
func (tb *Tables) buildSameBackbone(ii int, persist bool, obs *telemetry.Observer) []termCurve {
	if obs != nil {
		obs.Add(telemetry.CtrCurveBuilds, 1)
		if obs.Tracing() {
			defer obs.Span("curves level "+strconv.Itoa(ii)+" same", "curves").End()
		}
	}
	r := tb.row(ii)
	tb.ensurePairs(ii, r)
	core := tb.tasks[ii].Core
	if tb.memo != nil {
		tb.memoFillGamma(ii, r, core, obs)
		if persist {
			tb.memoFillPersist(ii, r, core, false, obs)
		}
	}
	terms := make([]termCurve, len(r.hp))
	for k, ref := range r.hp {
		p := tb.pair(ii, r, ref.idx)
		if persist {
			p = tb.pairPersist(ii, r, ref.idx)
		}
		tc := &terms[k]
		tc.period, tc.pd = ref.t.Period, ref.t.PD
		tc.md, tc.mdr = ref.t.MD, ref.t.MDr
		tc.gamma = p.gamma
		if persist {
			tc.pcb = tb.pcb[ref.idx]
			tc.unionOverlap = p.unionOverlap
			tc.evictors = p.evictors
		}
	}
	return terms
}

// buildRemoteBackbone materializes core y's backbone at level ii:
// hep(ii)∩Γ_y followed by lp(ii)∩Γ_y, contiguous in byCore order. pd
// stays zero — no remote term reads it, and the backbone's content key
// (remoteDig) deliberately omits it so PD edits keep remote backbones.
func (tb *Tables) buildRemoteBackbone(ii, y int, persist bool, obs *telemetry.Observer) []termCurve {
	if obs != nil {
		obs.Add(telemetry.CtrCurveBuilds, 1)
		if obs.Tracing() {
			defer obs.Span("curves level "+strconv.Itoa(ii)+" core "+strconv.Itoa(y), "curves").End()
		}
	}
	r := tb.row(ii)
	tb.ensurePairs(ii, r)
	if tb.memo != nil {
		tb.memoFillGamma(ii, r, y, obs)
		if persist {
			tb.memoFillPersist(ii, r, y, true, obs)
		}
	}
	terms := make([]termCurve, 0, len(tb.byCore[y]))
	fill := func(refs []taskRef) {
		for _, ref := range refs {
			p := tb.pair(ii, r, ref.idx)
			if persist {
				p = tb.pairPersist(ii, r, ref.idx)
			}
			tc := termCurve{
				period: ref.t.Period,
				md:     ref.t.MD, mdr: ref.t.MDr,
				gamma: p.gamma,
			}
			if persist {
				tc.pcb = tb.pcb[ref.idx]
				tc.unionOverlap = p.unionOverlap
				tc.evictors = p.evictors
			}
			terms = append(terms, tc)
		}
	}
	fill(r.hep[y])
	fill(r.lp[y])
	return terms
}

// curveSame returns level ii's same-core curves, materialized on first
// use — from the shared store when one is attached (keyed by content,
// so any analysis whose hp prefix matches reuses the backbone
// copy-free), locally otherwise. A curve already materialized at
// sufficient depth is a warm intra-Tables hit (CtrCurveHits); a persist
// request against a γ-depth curve re-materializes at CPRO depth under
// its own key, and cursors still holding the γ-depth slice stay valid —
// published backbones are immutable.
func (tb *Tables) curveSame(ii int, persist bool, obs *telemetry.Observer) []termCurve {
	lc := tb.levelCurves(ii)
	if lc.sameBuilt && (!persist || lc.samePersist) {
		if obs != nil {
			obs.Add(telemetry.CtrCurveHits, 1)
		}
		return lc.same
	}
	core := tb.tasks[ii].Core
	// k−1 = |hp|: priorities are unique, so the own-core hep prefix
	// contains exactly the hp tasks plus the level itself.
	if k := tb.hepCount(ii, core); tb.memo != nil && k > 1 {
		key := tb.curveKey(core, k, sameCurveFlavor(persist))
		lc.same = tb.memo.getOrComputeCurve(key, obs, func() []termCurve {
			return tb.buildSameBackbone(ii, persist, obs)
		})
	} else {
		lc.same = tb.buildSameBackbone(ii, persist, obs)
	}
	lc.sameBuilt = true
	lc.samePersist = persist
	return lc.same
}

// curveRemote returns level ii's hep and lp curves on core y,
// materialized on first use like curveSame; both views subslice one
// contiguous backbone at the level's priority cutoff.
func (tb *Tables) curveRemote(ii, y int, persist bool, obs *telemetry.Observer) (remote, low []termCurve) {
	lc := tb.levelCurves(ii)
	if lc.remoteBuilt[y] && (!persist || lc.remotePersist[y]) {
		if obs != nil {
			obs.Add(telemetry.CtrCurveHits, 1)
		}
		return lc.remote[y], lc.low[y]
	}
	k := tb.hepCount(ii, y)
	var terms []termCurve
	if tb.memo != nil && len(tb.byCore[y]) > 0 {
		key := tb.curveKey(y, k, remoteCurveFlavor(tb.gammaFlavor(ii, y), persist))
		terms = tb.memo.getOrComputeCurve(key, obs, func() []termCurve {
			return tb.buildRemoteBackbone(ii, y, persist, obs)
		})
	} else {
		terms = tb.buildRemoteBackbone(ii, y, persist, obs)
	}
	lc.remote[y] = terms[:k:k]
	lc.low[y] = terms[k:]
	lc.remoteBuilt[y] = true
	lc.remotePersist[y] = persist
	return lc.remote[y], lc.low[y]
}

// sameCursor tracks one same-core task's pair of step functions: the
// processor preemption term ⌈t/T_j⌉·PD_j and the BAS access term.
// Both share the release breakpoints of τ_j, so one cursor serves
// both.
type sameCursor struct {
	tc      *termCurve
	procVal taskmodel.Time
	basVal  int64
	// next is the smallest t at which either value may change.
	next taskmodel.Time
}

// remoteCursor tracks one remote task's W + W_cout step function at
// the cursor's analysis level.
type remoteCursor struct {
	tc *termCurve
	// c is R_l − (MD_l+γ)·d_mem, the response-time-dependent offset of
	// Eq. (6), fixed for the duration of one inner fixed point.
	c    int64
	val  int64
	next taskmodel.Time
	// core indexes the per-core sum the value feeds; low selects the
	// BAO_low sum (FP blocking) over the BAO sum.
	core int32
	low  bool
	// idx/prio identify the interfering task for fpRemote — kept on the
	// cursor because shared backbones carry no task identity.
	idx  int32
	prio int32
}

// fpState is one analyzed task's cursor state, kept per level for the
// analyzer's lifetime. Because the outer loop is monotone — each
// re-analysis of a task resumes from its own previous fixed point, and
// remote estimates only grow — the cursors stay valid across
// ResponseTime calls: a re-analysis triggered by a changed remote
// estimate re-evaluates only the remote terms whose R_l actually moved
// (the markDependents invariant made concrete). All slices are reused,
// so the inner fixed point allocates nothing once the analyzer is warm
// (pinned by the allocs regression test).
type fpState struct {
	same    []sameCursor
	remote  []remoteCursor
	baoSum  []int64
	lowSum  []int64
	procSum taskmodel.Time
	basSum  int64
	// minNext is the smallest next-breakpoint over all cursors: below
	// it, every term — and hence f — is provably constant.
	minNext taskmodel.Time
	// at is the iterate the cursor values are currently valid at; a
	// reset whose seed equals at reuses them wholesale.
	at    taskmodel.Time
	valid bool
}

// persistentDemandCurve is persistentDemand evaluated from curve
// constants: the same arithmetic, term for term, so both paths produce
// bit-identical values.
func (a *Analyzer) persistentDemandCurve(tc *termCurve, n int64, t taskmodel.Time) int64 {
	if n <= 0 {
		return 0
	}
	plain := n * tc.md
	mdhat := n*tc.mdr + tc.pcb
	if plain < mdhat {
		mdhat = plain
	}
	aware := mdhat + a.rhoCurve(tc, n, t)
	if aware < plain {
		return aware
	}
	return plain
}

// rhoCurve mirrors rho from curve constants.
func (a *Analyzer) rhoCurve(tc *termCurve, n int64, t taskmodel.Time) int64 {
	if n <= 1 {
		return 0
	}
	switch a.Cfg.CPRO {
	case persistence.Union:
		return (n - 1) * tc.unionOverlap
	case persistence.MultisetUnion:
		union := (n - 1) * tc.unionOverlap
		var multi int64
		for _, ev := range tc.evictors {
			// Jobs of the evictor in the window, +1 for a carry-in job.
			jobs := int64(t)/int64(ev.Period) + 2
			if jobs > n-1 {
				jobs = n - 1
			}
			multi += jobs * ev.Overlap
		}
		return min64(multi, union)
	case persistence.FullReload:
		return (n - 1) * tc.pcb
	case persistence.None:
		return 0
	default:
		panic(fmt.Sprintf("core: unknown CPRO approach %d", int(a.Cfg.CPRO)))
	}
}

// evictorBreak returns the smallest evictor-release multiple above t,
// the only t-dependence of the multiset CPRO bound. Other CPRO
// approaches depend on t solely through the job count n, whose steps
// the callers account for separately.
func (a *Analyzer) evictorBreak(tc *termCurve, t, next taskmodel.Time) taskmodel.Time {
	if !a.Cfg.Persistence || a.Cfg.CPRO != persistence.MultisetUnion {
		return next
	}
	for _, ev := range tc.evictors {
		if bp := (int64(t)/int64(ev.Period) + 1) * int64(ev.Period); bp < next {
			next = bp
		}
	}
	return next
}

// sameEval evaluates one same-core curve at t: the processor term, the
// BAS term (matching bas() exactly) and the next breakpoint.
func (a *Analyzer) sameEval(tc *termCurve, t taskmodel.Time) (procVal taskmodel.Time, basVal int64, next taskmodel.Time) {
	e := ceilDiv(int64(t), int64(tc.period))
	procVal = taskmodel.Time(e) * tc.pd
	if a.Cfg.Persistence {
		basVal = a.persistentDemandCurve(tc, e, t) + e*tc.gamma
	} else {
		basVal = e*tc.md + e*tc.gamma
	}
	// ⌈t/T⌉ holds its value up to and including e·T; it steps at
	// e·T + 1 (times are integral).
	next = e*int64(tc.period) + 1
	next = a.evictorBreak(tc, t, next)
	if next <= t {
		next = t + 1 // defensive: cursors must always move forward
	}
	return procVal, basVal, next
}

// remoteEval evaluates one remote curve at t, matching contribRef
// exactly: the n(t) job count of Eq. (6), the W demand term and the
// carry-out ramp W_cout of Eq. (5), plus the next breakpoint (job
// release, d_mem ramp step, or evictor release).
func (a *Analyzer) remoteEval(tc *termCurve, c int64, t taskmodel.Time) (val int64, next taskmodel.Time) {
	dmem := int64(a.TS.Platform.DMem)
	period := int64(tc.period)
	num := int64(t) + c
	n := floorDiv(num, period)
	if n < 0 {
		n = 0
	}
	var w int64
	if a.Cfg.Persistence {
		w = a.persistentDemandCurve(tc, n, t) + n*tc.gamma
	} else {
		w = n * (tc.md + tc.gamma)
	}
	wcCap := tc.md + tc.gamma
	rem := num - n*period
	wcRaw := ceilDiv(rem, dmem)
	wc := wcRaw
	if wc < 0 {
		wc = 0
	} else if wc > wcCap {
		wc = wcCap
	}
	val = w + wc

	// Next job-release step of the (clamped) n.
	next = taskmodel.Time((n+1)*period - c)
	// Next carry-out ramp step, unless the ramp is saturated: the
	// ceiling over rem advances at rem = wcRaw·d_mem + 1, or first
	// turns positive at rem = 1.
	if wcRaw < wcCap {
		remNext := int64(1)
		if wcRaw > 0 {
			remNext = wcRaw*dmem + 1
		}
		if bp := t + taskmodel.Time(remNext-rem); bp < next {
			next = bp
		}
	}
	next = a.evictorBreak(tc, t, next)
	if next <= t {
		next = t + 1
	}
	return val, next
}

// fpRemote reads the current remote estimate feeding one remote
// cursor: the dense mirror while Run is live, the public map otherwise.
func (a *Analyzer) fpRemote(cur *remoteCursor) taskmodel.Time {
	if a.rdLive {
		return a.rd[cur.idx]
	}
	return a.R[int(cur.prio)]
}

// fpReset prepares the cursors for the priority-level row ii at the
// starting iterate r, setting a.fp to the level's persistent state.
// Remote curves are read at level ii for the FP bus and at the
// lowest-priority level for RR, Regulated and ParAware (their BAT
// formulas charge remote demand at the bottom level, like Eq. 8);
// TDMA and Perfect need none.
//
// When the level was analyzed before and the seed equals the iterate
// its cursors stopped at — the steady state of the outer loop, whose
// seeds resume from the task's own previous fixed point — the cursors
// are reused: only remote terms whose R_l offset moved are
// re-evaluated. Their values are pure functions of (c, t), so the
// refreshed state is identical to a full rebuild.
func (a *Analyzer) fpReset(ii int, core int, r taskmodel.Time) {
	if a.fps == nil {
		a.fps = make([]fpState, len(a.tab.tasks))
	}
	s := &a.fps[ii]
	a.fp = s
	dmem := int64(a.TS.Platform.DMem)
	if s.valid && s.at == r {
		var refreshed int64
		changed := false
		for k := range s.remote {
			cur := &s.remote[k]
			tc := cur.tc
			c := int64(a.fpRemote(cur)) - (tc.md+tc.gamma)*dmem
			if c == cur.c {
				continue
			}
			val, next := a.remoteEval(tc, c, r)
			if cur.low {
				s.lowSum[cur.core] += val - cur.val
			} else {
				s.baoSum[cur.core] += val - cur.val
			}
			cur.c, cur.val, cur.next = c, val, next
			refreshed++
			changed = true
		}
		if a.obs != nil {
			a.obs.Add(telemetry.CtrCursorResumes, 1)
			a.obs.Add(telemetry.CtrCursorRemoteRefreshes, refreshed)
		}
		if changed {
			minNext := maxTime
			for k := range s.same {
				if s.same[k].next < minNext {
					minNext = s.same[k].next
				}
			}
			for k := range s.remote {
				if s.remote[k].next < minNext {
					minNext = s.remote[k].next
				}
			}
			s.minNext = minNext
			a.clampRegNext(s, r)
		}
		return
	}

	if a.obs != nil {
		a.obs.Add(telemetry.CtrCursorRebuilds, 1)
	}
	persist := a.Cfg.Persistence
	s.procSum, s.basSum = 0, 0
	s.minNext = maxTime
	s.at = r
	s.valid = true

	same := a.tab.curveSame(ii, persist, a.obs)
	if cap(s.same) < len(same) {
		s.same = make([]sameCursor, 0, len(same))
	}
	s.same = s.same[:0]
	for k := range same {
		tc := &same[k]
		procVal, basVal, next := a.sameEval(tc, r)
		s.procSum += procVal
		s.basSum += basVal
		if next < s.minNext {
			s.minNext = next
		}
		s.same = append(s.same, sameCursor{tc: tc, procVal: procVal, basVal: basVal, next: next})
	}

	m := a.TS.Platform.NumCores
	if cap(s.baoSum) < m {
		s.baoSum = make([]int64, m)
		s.lowSum = make([]int64, m)
	}
	s.baoSum = s.baoSum[:m]
	s.lowSum = s.lowSum[:m]
	for y := 0; y < m; y++ {
		s.baoSum[y], s.lowSum[y] = 0, 0
	}
	s.remote = s.remote[:0]
	a.clampRegNext(s, r)
	switch a.Cfg.Arbiter {
	case FP, RR, Regulated, ParAware:
	default:
		return
	}
	if cap(s.remote) < len(a.tab.tasks) {
		s.remote = make([]remoteCursor, 0, len(a.tab.tasks))
	}

	// idxs aligns with the backbone terms: hep(level)∩Γ_y is a prefix of
	// byCore[y] and lp(level)∩Γ_y the matching suffix, so the tables'
	// per-core index column supplies the task identity a shared backbone
	// cannot carry.
	addRemote := func(terms []termCurve, idxs []int32, y int, low bool) {
		for k := range terms {
			tc := &terms[k]
			jj := idxs[k]
			cur := remoteCursor{tc: tc, core: int32(y), low: low,
				idx: jj, prio: int32(a.tab.tasks[jj].Priority)}
			cur.c = int64(a.fpRemote(&cur)) - (tc.md+tc.gamma)*dmem
			val, next := a.remoteEval(tc, cur.c, r)
			cur.val, cur.next = val, next
			if low {
				s.lowSum[y] += val
			} else {
				s.baoSum[y] += val
			}
			if next < s.minNext {
				s.minNext = next
			}
			s.remote = append(s.remote, cur)
		}
	}
	level := ii
	if a.Cfg.Arbiter != FP {
		// RR, Regulated and ParAware all read remote demand at the
		// lowest priority level.
		level = a.tab.prioIdx[a.TS.LowestPriority()]
	}
	for y := 0; y < m; y++ {
		if y == core {
			continue
		}
		remote, low := a.tab.curveRemote(level, y, persist, a.obs)
		idxs := a.tab.coreIdx[y]
		addRemote(remote, idxs[:len(remote)], y, false)
		if a.Cfg.Arbiter == FP {
			addRemote(low, idxs[len(remote):], y, true)
		}
	}
}

// clampRegNext folds the regulated bus's budget breakpoint into the
// cursor minimum: regCapAt steps at t = k·P+1 independently of every
// task curve, so the breakpoint jump must not skip across one — the
// jump's premise is that f is constant on (r, next], and for Regulated
// f also reads the cap. The clamp may fire early (recomputing an
// unchanged f), never late, preserving the naive iterate chain.
func (a *Analyzer) clampRegNext(s *fpState, t taskmodel.Time) {
	if a.Cfg.Arbiter != Regulated {
		return
	}
	p := int64(a.TS.Platform.RegPeriod)
	if bp := taskmodel.Time(ceilDiv(int64(t), p)*p + 1); bp < s.minNext {
		s.minNext = bp
	}
}

// fpAdvance moves every cursor whose breakpoint was crossed forward to
// t, updating the running sums in place. Cursors not yet at their
// breakpoint keep their value — that is the entire saving.
func (a *Analyzer) fpAdvance(t taskmodel.Time) {
	s := a.fp
	s.at = t
	if t < s.minNext {
		return
	}
	var snaps int64
	minNext := maxTime
	for k := range s.same {
		cur := &s.same[k]
		if cur.next <= t {
			procVal, basVal, next := a.sameEval(cur.tc, t)
			s.procSum += procVal - cur.procVal
			s.basSum += basVal - cur.basVal
			cur.procVal, cur.basVal, cur.next = procVal, basVal, next
			snaps++
		}
		if cur.next < minNext {
			minNext = cur.next
		}
	}
	for k := range s.remote {
		cur := &s.remote[k]
		if cur.next <= t {
			val, next := a.remoteEval(cur.tc, cur.c, t)
			if cur.low {
				s.lowSum[cur.core] += val - cur.val
			} else {
				s.baoSum[cur.core] += val - cur.val
			}
			cur.val, cur.next = val, next
			snaps++
		}
		if cur.next < minNext {
			minNext = cur.next
		}
	}
	s.minNext = minNext
	a.clampRegNext(s, t)
	if a.obs != nil {
		a.obs.Add(telemetry.CtrBreakpointSnaps, snaps)
	}
}

// fpBAT combines the cursor sums into BAT exactly as BAT() does from
// its recomputed terms: Eq. (7) for FP, Eq. (8) for RR, Eq. (9) for
// TDMA, own accesses only for Perfect.
func (a *Analyzer) fpBAT(md int64, core int, hasLP bool) int64 {
	s := a.fp
	bas := md + s.basSum
	var plus1 int64
	if hasLP {
		plus1 = 1
	}
	switch a.Cfg.Arbiter {
	case Perfect:
		return bas
	case FP:
		total := bas + plus1
		var low int64
		for y := range s.baoSum {
			total += s.baoSum[y]
			low += s.lowSum[y]
		}
		return total + min64(bas, low)
	case RR:
		slot := int64(a.TS.Platform.SlotSize)
		total := bas + plus1
		for y := 0; y < len(s.baoSum); y++ {
			if y == core {
				continue
			}
			total += min64(s.baoSum[y], slot*bas)
		}
		return total
	case TDMA:
		slot := int64(a.TS.Platform.SlotSize)
		l := int64(a.TS.Platform.NumCores)
		return bas + (l-1)*slot*bas + plus1
	case Regulated:
		// s.at is the iterate the sums are valid at — responseTime keeps
		// it equal to the current iterate r at every fpBAT call — so the
		// budget cap is evaluated at exactly the t BAT() would use.
		rc := regCapAt(a.TS.Platform, s.at)
		total := bas + plus1
		for y := 0; y < len(s.baoSum); y++ {
			if y == core {
				continue
			}
			total += min64(s.baoSum[y], rc+bas)
		}
		return total
	case ParAware:
		total := bas + plus1
		for y := 0; y < len(s.baoSum); y++ {
			if y == core {
				continue
			}
			total += min64(s.baoSum[y], bas)
		}
		return total
	default:
		panic(fmt.Sprintf("core: unknown arbiter %d", int(a.Cfg.Arbiter)))
	}
}
