// Package core implements the paper's contribution: memory-bus
// contention analysis for partitioned fixed-priority multicore systems
// under FP, Round-Robin and TDMA bus arbitration, with and without
// cache persistence awareness, and the resulting worst-case response
// time (WCRT) analysis.
//
// Equation map (numbers refer to the paper):
//
//	BAS   — Eq. (1), same-core bus accesses, CRPD-inflated
//	B̂AS  — Lemma 1 (Eq. 16), persistence-aware same-core accesses
//	BAO   — Eq. (3)–(6), remote-core bus accesses with carry-out
//	B̂AO  — Lemma 2 (Eq. 17–18), persistence-aware remote accesses
//	BAT   — Eq. (7) FP bus, Eq. (8) RR bus, Eq. (9) TDMA bus
//	WCRT  — Eq. (19), fixed point with an outer loop over all tasks
//
// The "+1" blocking term of Eq. (7)–(9) is charged exactly when the
// core under analysis hosts at least one lower-priority task, matching
// the paper's remark below Eq. (12) that the term vanishes for the
// lowest-priority task of the core.
package core

import (
	"fmt"

	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Arbiter selects the memory bus arbitration policy under analysis.
type Arbiter int

const (
	// FP is the work-conserving fixed-priority bus (Eq. 7): bus
	// requests inherit the priority of the issuing task.
	FP Arbiter = iota
	// RR is the work-conserving Round-Robin bus (Eq. 8) with s memory
	// access slots per core.
	RR
	// TDMA is the non-work-conserving time-division bus (Eq. 9) with a
	// cycle of NumCores×s slots.
	TDMA
	// Perfect is the idealized contention-free bus used as the upper
	// bound in Fig. 2: tasks still pay d_mem per own-core access, but
	// suffer no cross-core interference; the task set must additionally
	// keep total bus utilization at or below one.
	Perfect
)

func (a Arbiter) String() string {
	switch a {
	case FP:
		return "FP"
	case RR:
		return "RR"
	case TDMA:
		return "TDMA"
	case Perfect:
		return "Perfect"
	default:
		return fmt.Sprintf("Arbiter(%d)", int(a))
	}
}

// Config selects the analysis variant.
type Config struct {
	// Arbiter is the bus arbitration policy.
	Arbiter Arbiter
	// Persistence enables Lemmas 1 and 2 (the paper's contribution);
	// disabled, the analysis reduces to the baseline of Davis et al.
	Persistence bool
	// CRPD selects the preemption-delay bound; the paper uses ECBUnion.
	CRPD crpd.Approach
	// CPRO selects the persistence-reload accounting; the paper uses
	// Union. Ignored unless Persistence is set.
	CPRO persistence.CPROApproach
	// MaxOuterIterations caps the outer fixed-point loop (safety net;
	// the loop is monotone and terminates on its own). Zero means the
	// default of 64.
	MaxOuterIterations int
}

// DefaultConfig returns the paper's configuration for the given
// arbiter: ECB-union CRPD, CPRO-union, persistence on.
func DefaultConfig(arb Arbiter, persistence bool) Config {
	return Config{Arbiter: arb, Persistence: persistence}
}

// TaskResult reports the analysis outcome for one task.
type TaskResult struct {
	Name        string
	Priority    int
	Core        int
	WCRT        taskmodel.Time // meaningful only if Schedulable
	Deadline    taskmodel.Time
	Schedulable bool
}

// Result is the outcome of a whole-task-set analysis.
type Result struct {
	Schedulable bool
	Tasks       []TaskResult
	// Complete reports whether every task's response time converged.
	// Following the paper, the fixed point aborts as soon as any task
	// provably misses its deadline; in that case the WCRT estimates of
	// the remaining tasks are lower bounds still mid-iteration, not
	// final bounds, and Complete is false.
	Complete        bool
	OuterIterations int
}

// Analyzer evaluates the bus contention and response-time equations
// for one task set under one configuration. The response-time
// estimates R (indexed by priority) feed the remote-interference terms
// N and W_cout; Run maintains them via the outer fixed-point loop, and
// tests may set them directly to reproduce the paper's worked example.
type Analyzer struct {
	TS  *taskmodel.TaskSet
	Cfg Config
	// R holds the current response-time estimate per priority value.
	R map[int]taskmodel.Time

	gammaMemo map[gammaKey]int64
}

type gammaKey struct{ i, j, core int }

// NewAnalyzer validates the task set and prepares an analyzer with
// response times initialized to PD_i + MD_i·d_mem, the paper's
// fixed-point seed.
func NewAnalyzer(ts *taskmodel.TaskSet, cfg Config) (*Analyzer, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxOuterIterations == 0 {
		cfg.MaxOuterIterations = 64
	}
	a := &Analyzer{
		TS:        ts,
		Cfg:       cfg,
		R:         make(map[int]taskmodel.Time, len(ts.Tasks)),
		gammaMemo: make(map[gammaKey]int64),
	}
	for _, t := range ts.Tasks {
		a.R[t.Priority] = t.PD + taskmodel.Time(t.MD)*ts.Platform.DMem
	}
	return a, nil
}

// gamma memoizes γ_{i,j,core} under the configured CRPD approach.
func (a *Analyzer) gamma(i, j, core int) int64 {
	k := gammaKey{i, j, core}
	if g, ok := a.gammaMemo[k]; ok {
		return g
	}
	g := crpd.Gamma(a.TS, a.Cfg.CRPD, i, j, core)
	a.gammaMemo[k] = g
	return g
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BAS bounds the bus accesses generated on core x by one job of the
// priority-i task plus all higher-priority tasks of that core in a
// window of length t. With persistence disabled this is Eq. (1); with
// persistence enabled it is B̂AS of Lemma 1 (Eq. 16).
func (a *Analyzer) BAS(i, core int, t taskmodel.Time) int64 {
	ti := a.TS.ByPriority(i)
	total := ti.MD
	for _, tj := range a.TS.HP(i, core) {
		ej := ceilDiv(int64(t), int64(tj.Period))
		g := a.gamma(i, tj.Priority, core)
		if a.Cfg.Persistence {
			total += persistence.PersistentDemandWindow(a.TS, a.Cfg.CPRO, tj.Priority, i, core, ej, t)
		} else {
			total += ej * tj.MD
		}
		total += ej * g
	}
	return total
}

// njobs computes N_{k,l}^y(t) of Eq. (6): the number of jobs of τ_l
// (on core y) that can fully execute inside a window of length t at
// priority level k, given the current response-time estimate R_l.
func (a *Analyzer) njobs(k int, tl *taskmodel.Task, t taskmodel.Time) int64 {
	g := a.gamma(k, tl.Priority, tl.Core)
	num := int64(t) + int64(a.R[tl.Priority]) - (tl.MD+g)*int64(a.TS.Platform.DMem)
	n := floorDiv(num, int64(tl.Period))
	if n < 0 {
		return 0
	}
	return n
}

// wcout computes W_{k,l,cout}^y of Eq. (5): the bus accesses of the
// carry-out job of τ_l that only partially overlaps the window.
func (a *Analyzer) wcout(k int, tl *taskmodel.Task, t taskmodel.Time, n int64) int64 {
	g := a.gamma(k, tl.Priority, tl.Core)
	dmem := int64(a.TS.Platform.DMem)
	num := int64(t) + int64(a.R[tl.Priority]) - (tl.MD+g)*dmem - n*int64(tl.Period)
	w := ceilDiv(num, dmem)
	if w < 0 {
		return 0
	}
	return min64(w, tl.MD+g)
}

// BAO bounds the bus accesses generated on remote core y by all tasks
// of priority k or higher in a window of length t. With persistence
// disabled this is Eq. (3); enabled, it is B̂AO of Lemma 2.
func (a *Analyzer) BAO(k, y int, t taskmodel.Time) int64 {
	var total int64
	for _, tl := range a.TS.HEP(k, y) {
		total += a.contrib(k, tl, t)
	}
	return total
}

// BAOLow bounds the accesses from tasks on remote core y with priority
// lower than i (the FP bus blocking sources of Eq. 7).
func (a *Analyzer) BAOLow(i, y int, t taskmodel.Time) int64 {
	var total int64
	for _, tl := range a.TS.LP(i, y) {
		total += a.contrib(i, tl, t)
	}
	return total
}

// contrib is one task's W + W_cout term of Eq. (3)/(17).
func (a *Analyzer) contrib(k int, tl *taskmodel.Task, t taskmodel.Time) int64 {
	n := a.njobs(k, tl, t)
	g := a.gamma(k, tl.Priority, tl.Core)
	var w int64
	if a.Cfg.Persistence {
		w = persistence.PersistentDemandWindow(a.TS, a.Cfg.CPRO, tl.Priority, k, tl.Core, n, t) + n*g
	} else {
		w = n * (tl.MD + g)
	}
	return w + a.wcout(k, tl, t, n)
}

// plus1 is the blocking term of Eq. (7)–(9): one access of a
// lower-priority task of the same core may be in service when the job
// under analysis arrives. It vanishes when the task is the lowest
// priority one on its core (see the remark below Eq. 12).
func (a *Analyzer) plus1(i, core int) int64 {
	if len(a.TS.LP(i, core)) > 0 {
		return 1
	}
	return 0
}

// BAT bounds the total number of bus accesses that may delay the
// priority-i task on its core during a window of length t, under the
// configured arbiter (Eq. 7, 8 or 9; own accesses only for Perfect).
func (a *Analyzer) BAT(i int, t taskmodel.Time) int64 {
	ti := a.TS.ByPriority(i)
	core := ti.Core
	bas := a.BAS(i, core, t)
	switch a.Cfg.Arbiter {
	case Perfect:
		return bas
	case FP:
		total := bas + a.plus1(i, core)
		var low int64
		for y := 0; y < a.TS.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += a.BAO(i, y, t)
			low += a.BAOLow(i, y, t)
		}
		return total + min64(bas, low)
	case RR:
		s := int64(a.TS.Platform.SlotSize)
		n := a.TS.LowestPriority()
		total := bas + a.plus1(i, core)
		for y := 0; y < a.TS.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.BAO(n, y, t), s*bas)
		}
		return total
	case TDMA:
		s := int64(a.TS.Platform.SlotSize)
		l := int64(a.TS.Platform.NumCores)
		return bas + (l-1)*s*bas + a.plus1(i, core)
	default:
		panic(fmt.Sprintf("core: unknown arbiter %d", int(a.Cfg.Arbiter)))
	}
}

// ResponseTime runs the inner fixed point of Eq. (19) for the
// priority-i task with the current remote response-time estimates. It
// returns the WCRT and true, or the deadline-exceeding estimate and
// false. The iteration starts from the larger of the seed
// PD_i + MD_i·d_mem and the current estimate R[i] (the outer loop is
// monotone, so restarting lower would waste iterations).
func (a *Analyzer) ResponseTime(i int) (taskmodel.Time, bool) {
	ti := a.TS.ByPriority(i)
	dmem := a.TS.Platform.DMem
	r := ti.PD + taskmodel.Time(ti.MD)*dmem
	if cur := a.R[i]; cur > r {
		r = cur
	}
	for {
		var interference taskmodel.Time
		for _, tj := range a.TS.HP(i, ti.Core) {
			interference += taskmodel.Time(ceilDiv(int64(r), int64(tj.Period))) * tj.PD
		}
		next := ti.PD + interference + taskmodel.Time(a.BAT(i, r))*dmem
		if next > ti.Deadline {
			return next, false
		}
		if next == r {
			return r, true
		}
		if next < r {
			// The recurrence is monotone in r; a decrease can only come
			// from starting above the least fixed point (stale outer
			// estimate), in which case the current r remains a valid
			// bound.
			return r, true
		}
		r = next
	}
}

// perfectBusUtil is the long-run bus utilization the perfect-bus
// reference is gated on. Without persistence it is Σ MD·d_mem/T; with
// persistence each task's steady per-job demand is the tighter
// min(MD, MD^r + CPRO), where CPRO covers the persistent blocks its
// same-core neighbours can evict between jobs.
func (a *Analyzer) perfectBusUtil() float64 {
	u := 0.0
	for _, t := range a.TS.Tasks {
		demand := t.MD
		if a.Cfg.Persistence {
			evictable := int64(t.PCB.IntersectCount(persistence.EvictingUnion(
				a.TS, a.TS.LowestPriority(), t.Priority, t.Core)))
			if aware := t.MDr + evictable; aware < demand {
				demand = aware
			}
		}
		u += float64(taskmodel.Time(demand)*a.TS.Platform.DMem) / float64(t.Period)
	}
	return u
}

// Run executes the outer fixed-point loop of the paper: response times
// of all tasks are recomputed until globally stable, since each task's
// bound feeds the remote-interference terms of the others. It stops
// early as soon as any task provably misses its deadline.
func (a *Analyzer) Run() *Result {
	res := &Result{Schedulable: true, Complete: true}
	if a.Cfg.Arbiter == Perfect && a.perfectBusUtil() > 1.0 {
		// The perfect-bus reference additionally requires the bus not to
		// be overloaded.
		res.Schedulable = false
		for _, t := range a.TS.Tasks {
			res.Tasks = append(res.Tasks, TaskResult{
				Name: t.Name, Priority: t.Priority, Core: t.Core,
				Deadline: t.Deadline, Schedulable: false,
			})
		}
		return res
	}
	converged := false
	for iter := 0; iter < a.Cfg.MaxOuterIterations; iter++ {
		res.OuterIterations = iter + 1
		changed := false
		for _, t := range a.TS.Tasks {
			r, ok := a.ResponseTime(t.Priority)
			if !ok {
				a.R[t.Priority] = r
				return a.fail(res, t.Priority)
			}
			if r != a.R[t.Priority] {
				a.R[t.Priority] = r
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		// The outer fixed point did not stabilise within the iteration
		// budget; claiming schedulability would be unsound.
		return a.fail(res, a.TS.LowestPriority())
	}
	for _, t := range a.TS.Tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name: t.Name, Priority: t.Priority, Core: t.Core,
			WCRT: a.R[t.Priority], Deadline: t.Deadline, Schedulable: true,
		})
	}
	return res
}

// fail finalizes a result after the task at priority failPrio missed
// its deadline.
func (a *Analyzer) fail(res *Result, failPrio int) *Result {
	res.Schedulable = false
	res.Complete = false
	for _, t := range a.TS.Tasks {
		tr := TaskResult{
			Name: t.Name, Priority: t.Priority, Core: t.Core,
			WCRT: a.R[t.Priority], Deadline: t.Deadline,
			Schedulable: t.Priority != failPrio,
		}
		res.Tasks = append(res.Tasks, tr)
	}
	return res
}

// Analyze is the one-call entry point: build an analyzer and run the
// full fixed point.
func Analyze(ts *taskmodel.TaskSet, cfg Config) (*Result, error) {
	a, err := NewAnalyzer(ts, cfg)
	if err != nil {
		return nil, err
	}
	return a.Run(), nil
}
