// Package core implements the paper's contribution: memory-bus
// contention analysis for partitioned fixed-priority multicore systems
// under FP, Round-Robin and TDMA bus arbitration, with and without
// cache persistence awareness, and the resulting worst-case response
// time (WCRT) analysis.
//
// Equation map (numbers refer to the paper):
//
//	BAS   — Eq. (1), same-core bus accesses, CRPD-inflated
//	B̂AS  — Lemma 1 (Eq. 16), persistence-aware same-core accesses
//	BAO   — Eq. (3)–(6), remote-core bus accesses with carry-out
//	B̂AO  — Lemma 2 (Eq. 17–18), persistence-aware remote accesses
//	BAT   — Eq. (7) FP bus, Eq. (8) RR bus, Eq. (9) TDMA bus
//	WCRT  — Eq. (19), fixed point with an outer loop over all tasks
//
// The "+1" blocking term of Eq. (7)–(9) is charged exactly when the
// core under analysis hosts at least one lower-priority task, matching
// the paper's remark below Eq. (12) that the term vanishes for the
// lowest-priority task of the core.
//
// The equations are evaluated against precomputed interference tables
// (see tables.go): all cache-set work is hoisted out of the fixed-point
// iteration, which then runs on integer arithmetic only. AnalyzeReference
// (reference.go) retains the direct, recompute-everything evaluation;
// the differential test asserts both produce bit-identical results.
package core

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Arbiter selects the memory bus arbitration policy under analysis.
type Arbiter int

const (
	// FP is the work-conserving fixed-priority bus (Eq. 7): bus
	// requests inherit the priority of the issuing task.
	FP Arbiter = iota
	// RR is the work-conserving Round-Robin bus (Eq. 8) with s memory
	// access slots per core.
	RR
	// TDMA is the non-work-conserving time-division bus (Eq. 9) with a
	// cycle of NumCores×s slots.
	TDMA
	// Perfect is the idealized contention-free bus used as the upper
	// bound in Fig. 2: tasks still pay d_mem per own-core access, but
	// suffer no cross-core interference; the task set must additionally
	// keep total bus utilization at or below one.
	Perfect
	// Regulated is a MemGuard-style bandwidth-regulated bus (Agrawal et
	// al.): each core holds a budget of Q = RegBudget accesses
	// replenished every P = RegPeriod cycles, budgeted requests have
	// strict priority over out-of-budget ones, and unused bandwidth is
	// dynamically reclaimed round-robin (one access per grant). A window
	// of length t overlaps at most ⌈t/P⌉+1 replenishment periods, so a
	// remote core injects at most (⌈t/P⌉+1)·Q budgeted accesses plus, by
	// the slot-1 round robin of the reclaim class, one reclaimed access
	// per own access — min(BAO, regCap(t) + BAS) per remote core.
	Regulated
	// ParAware is the parallelism-aware per-access bound (Yun et al.):
	// with one outstanding request per core served oldest-class
	// round-robin one access at a time, each own access waits for at
	// most one in-flight request per other core — min(BAO, BAS) per
	// remote core, i.e. Eq. (8) with slot size pinned to 1.
	ParAware
)

// Arbiters returns every declared arbiter, in declaration order — the
// iteration domain of completeness tests and sweep grids.
func Arbiters() []Arbiter {
	return []Arbiter{FP, RR, TDMA, Perfect, Regulated, ParAware}
}

func (a Arbiter) String() string {
	switch a {
	case FP:
		return "FP"
	case RR:
		return "RR"
	case TDMA:
		return "TDMA"
	case Perfect:
		return "Perfect"
	case Regulated:
		return "Regulated"
	case ParAware:
		return "ParAware"
	default:
		return fmt.Sprintf("Arbiter(%d)", int(a))
	}
}

// Config selects the analysis variant.
type Config struct {
	// Arbiter is the bus arbitration policy.
	Arbiter Arbiter
	// Persistence enables Lemmas 1 and 2 (the paper's contribution);
	// disabled, the analysis reduces to the baseline of Davis et al.
	Persistence bool
	// CRPD selects the preemption-delay bound; the paper uses ECBUnion.
	CRPD crpd.Approach
	// CPRO selects the persistence-reload accounting; the paper uses
	// Union. Ignored unless Persistence is set.
	CPRO persistence.CPROApproach
	// MaxOuterIterations caps the outer fixed-point loop (safety net;
	// the loop is monotone and terminates on its own). Zero means the
	// default of 64.
	MaxOuterIterations int
}

// DefaultConfig returns the paper's configuration for the given
// arbiter: ECB-union CRPD, CPRO-union, persistence on.
func DefaultConfig(arb Arbiter, persistence bool) Config {
	return Config{Arbiter: arb, Persistence: persistence}
}

// ValidateFor reports the first problem that makes the configuration
// unanalyzable against the platform: an Arbiter, CRPD or CPRO value
// outside the declared enums (possible when a numeric config arrives
// from a newer peer or a careless caller — the engine switches must
// never see one), or a Regulated configuration on a platform that
// carries no regulation parameters. Every analysis entry point runs it,
// so malformed enum values surface as errors, not panics.
func (c Config) ValidateFor(p taskmodel.Platform) error {
	if c.Arbiter < FP || c.Arbiter > ParAware {
		return fmt.Errorf("core: unknown arbiter %v", c.Arbiter)
	}
	if c.CRPD < crpd.ECBUnion || c.CRPD > crpd.Combined {
		return fmt.Errorf("core: unknown CRPD approach %d", int(c.CRPD))
	}
	if c.CPRO < persistence.Union || c.CPRO > persistence.None {
		return fmt.Errorf("core: unknown CPRO approach %d", int(c.CPRO))
	}
	if c.MaxOuterIterations < 0 {
		return fmt.Errorf("core: negative MaxOuterIterations %d", c.MaxOuterIterations)
	}
	if c.Arbiter == Regulated && (p.RegBudget < 1 || p.RegPeriod < 1) {
		return fmt.Errorf("core: regulated arbiter needs platform RegBudget >= 1 and RegPeriod >= 1 (got Q=%d P=%d)", p.RegBudget, p.RegPeriod)
	}
	return nil
}

// regCapAt is the budgeted-access cap of the regulated bus: a window of
// length t overlaps at most ⌈t/P⌉+1 replenishment periods, each
// granting at most Q budgeted accesses per core. Shared by the
// analyzer, the reference and the explainer so all three charge the
// same cap.
func regCapAt(p taskmodel.Platform, t taskmodel.Time) int64 {
	return (ceilDiv(int64(t), int64(p.RegPeriod)) + 1) * p.RegBudget
}

// TaskResult reports the analysis outcome for one task.
type TaskResult struct {
	Name     string
	Priority int
	Core     int
	WCRT     taskmodel.Time // converged bound only if Verified
	Deadline taskmodel.Time
	// Schedulable reports whether the task is proven to meet its
	// deadline. When the analysis aborts early (Result.Complete false),
	// tasks whose response times never converged are conservatively
	// reported not schedulable: nothing was proven about them.
	Schedulable bool
	// Verified reports whether the analysis finished judging this task:
	// either its WCRT converged at or below the deadline (Schedulable),
	// or it provably misses its deadline. Unverified tasks carry the
	// mid-iteration estimate in WCRT — a lower bound on the true WCRT,
	// not a final bound.
	Verified bool
}

// Result is the outcome of a whole-task-set analysis.
type Result struct {
	Schedulable bool
	Tasks       []TaskResult
	// Complete reports whether every task's response time converged.
	// Following the paper, the fixed point aborts as soon as any task
	// provably misses its deadline; in that case the WCRT estimates of
	// the remaining tasks are lower bounds still mid-iteration, not
	// final bounds, and Complete is false.
	Complete        bool
	OuterIterations int
}

// Analyzer evaluates the bus contention and response-time equations
// for one task set under one configuration. The response-time
// estimates R (indexed by priority) feed the remote-interference terms
// N and W_cout; Run maintains them via the outer fixed-point loop, and
// tests may set them directly to reproduce the paper's worked example.
type Analyzer struct {
	TS  *taskmodel.TaskSet
	Cfg Config
	// R holds the current response-time estimate per priority value.
	R map[int]taskmodel.Time

	tab *Tables
	// fps holds each level's persistent cursor state of the
	// event-driven fixed point (curves.go); fp points at the state of
	// the level currently under analysis. Reuse across ResponseTime
	// calls makes the inner loop allocation-free and lets re-analyses
	// resume instead of rebuild.
	fps []fpState
	fp  *fpState
	// rd mirrors R densely by table index while Run is executing
	// (rdLive); the reset path reads thousands of remote estimates per
	// analysis and the map hashing would dominate it. Callers that
	// write R directly and invoke ResponseTime themselves (the OPA
	// probe, tests) bypass the mirror and read the map.
	rd     []taskmodel.Time
	rdLive bool
	// obs receives telemetry; nil (the default) disables every hook —
	// all hot-path instrumentation sits behind a single nil check.
	obs *telemetry.Observer
}

// NewAnalyzer validates the task set and prepares an analyzer with
// response times initialized to PD_i + MD_i·d_mem, the paper's
// fixed-point seed.
func NewAnalyzer(ts *taskmodel.TaskSet, cfg Config) (*Analyzer, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return NewAnalyzerWithTables(ts, cfg, PrecomputeTables(ts, cfg.CRPD))
}

// NewAnalyzerWithTables is NewAnalyzer reusing previously computed
// interference tables, so repeated analyses of the same task set — or
// of clones differing only in d_mem, which none of the cached terms
// depend on — skip the cache-set work entirely. The tables' CRPD
// approach must match cfg and the task set must be compatible with the
// one the tables were built for.
func NewAnalyzerWithTables(ts *taskmodel.TaskSet, cfg Config, tbl *Tables) (*Analyzer, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.ValidateFor(ts.Platform); err != nil {
		return nil, err
	}
	if tbl.crpd != cfg.CRPD {
		return nil, fmt.Errorf("core: tables built for CRPD %v, config wants %v", tbl.crpd, cfg.CRPD)
	}
	if err := tbl.compatible(ts); err != nil {
		return nil, err
	}
	return newAnalyzerChecked(ts, cfg, tbl), nil
}

// newAnalyzerChecked skips the validation and compatibility checks for
// callers that already performed them (AnalyzeAll runs one validation
// for the whole config list and builds the tables from ts itself).
func newAnalyzerChecked(ts *taskmodel.TaskSet, cfg Config, tbl *Tables) *Analyzer {
	if cfg.MaxOuterIterations == 0 {
		cfg.MaxOuterIterations = 64
	}
	a := &Analyzer{
		TS:  ts,
		Cfg: cfg,
		R:   make(map[int]taskmodel.Time, len(ts.Tasks)),
		tab: tbl,
	}
	for _, t := range ts.Tasks {
		a.R[t.Priority] = t.PD + taskmodel.Time(t.MD)*ts.Platform.DMem
	}
	return a
}

// gamma returns γ_{i,j,core} under the configured CRPD approach, from
// the tables when core is τ_j's own core (the only case the analysis
// equations produce) and recomputed otherwise.
func (a *Analyzer) gamma(i, j, core int) int64 {
	if jj, ok := a.tab.prioIdx[j]; ok && a.tab.tasks[jj].Core == core {
		if ii, ok := a.tab.prioIdx[i]; ok {
			return a.tab.pair(ii, a.tab.row(ii), jj).gamma
		}
	}
	return crpd.Gamma(a.TS, a.Cfg.CRPD, i, j, core)
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// pairFor returns the (ii, jj) pair entry filled to the depth the
// configuration consumes: γ always, the CPRO overlaps only with
// persistence enabled.
func (a *Analyzer) pairFor(ii int, r *row, jj int) *pairTab {
	if a.Cfg.Persistence {
		return a.tab.pairPersist(ii, r, jj)
	}
	return a.tab.pair(ii, r, jj)
}

// persistentDemand is PersistentDemandWindow (Eq. 10 + Eq. 14, clamped
// by the oblivious bound) evaluated from the tables: the
// persistence-aware bound on the accesses of n jobs of task jj inside a
// window of length t at level ii.
func (a *Analyzer) persistentDemand(p *pairTab, jj int, n int64, t taskmodel.Time) int64 {
	if n <= 0 {
		return 0
	}
	tj := a.tab.tasks[jj]
	plain := n * tj.MD
	mdhat := n*tj.MDr + a.tab.pcb[jj]
	if plain < mdhat {
		mdhat = plain
	}
	aware := mdhat + a.rho(p, jj, n, t)
	if aware < plain {
		return aware
	}
	return plain
}

// rho is ρ̂_{j,i,x}(n) (Eq. 14 and its variants) from the tables.
func (a *Analyzer) rho(p *pairTab, jj int, n int64, t taskmodel.Time) int64 {
	if n <= 1 {
		return 0
	}
	switch a.Cfg.CPRO {
	case persistence.Union:
		return (n - 1) * p.unionOverlap
	case persistence.MultisetUnion:
		union := (n - 1) * p.unionOverlap
		var multi int64
		for _, ev := range p.evictors {
			// Jobs of the evictor in the window, +1 for a carry-in job.
			jobs := int64(t)/int64(ev.Period) + 2
			if jobs > n-1 {
				jobs = n - 1
			}
			multi += jobs * ev.Overlap
		}
		return min64(multi, union)
	case persistence.FullReload:
		return (n - 1) * a.tab.pcb[jj]
	case persistence.None:
		return 0
	default:
		panic(fmt.Sprintf("core: unknown CPRO approach %d", int(a.Cfg.CPRO)))
	}
}

// BAS bounds the bus accesses generated on core x by one job of the
// priority-i task plus all higher-priority tasks of that core in a
// window of length t. With persistence disabled this is Eq. (1); with
// persistence enabled it is B̂AS of Lemma 1 (Eq. 16).
func (a *Analyzer) BAS(i, core int, t taskmodel.Time) int64 {
	if ii, ok := a.tab.prioIdx[i]; ok && a.tab.tasks[ii].Core == core {
		return a.bas(ii, t)
	}
	// Off-core query (not produced by the analysis itself): recompute.
	ti := a.TS.ByPriority(i)
	total := ti.MD
	for _, tj := range a.TS.HP(i, core) {
		ej := ceilDiv(int64(t), int64(tj.Period))
		g := a.gamma(i, tj.Priority, core)
		if a.Cfg.Persistence {
			total += persistence.PersistentDemandWindow(a.TS, a.Cfg.CPRO, tj.Priority, i, core, ej, t)
		} else {
			total += ej * tj.MD
		}
		total += ej * g
	}
	return total
}

// bas is BAS at level ii on the task's own core, from the tables.
func (a *Analyzer) bas(ii int, t taskmodel.Time) int64 {
	r := a.tab.row(ii)
	total := a.tab.tasks[ii].MD
	for _, ref := range r.hp {
		ej := ceilDiv(int64(t), int64(ref.t.Period))
		p := a.pairFor(ii, r, ref.idx)
		if a.Cfg.Persistence {
			total += a.persistentDemand(p, ref.idx, ej, t)
		} else {
			total += ej * ref.t.MD
		}
		total += ej * p.gamma
	}
	return total
}

// njobs computes N_{k,l}^y(t) of Eq. (6): the number of jobs of τ_l
// (on core y) that can fully execute inside a window of length t at
// priority level k, given the current response-time estimate R_l.
func (a *Analyzer) njobs(k int, tl *taskmodel.Task, t taskmodel.Time) int64 {
	g := a.gamma(k, tl.Priority, tl.Core)
	num := int64(t) + int64(a.R[tl.Priority]) - (tl.MD+g)*int64(a.TS.Platform.DMem)
	n := floorDiv(num, int64(tl.Period))
	if n < 0 {
		return 0
	}
	return n
}

// wcout computes W_{k,l,cout}^y of Eq. (5): the bus accesses of the
// carry-out job of τ_l that only partially overlaps the window.
func (a *Analyzer) wcout(k int, tl *taskmodel.Task, t taskmodel.Time, n int64) int64 {
	g := a.gamma(k, tl.Priority, tl.Core)
	dmem := int64(a.TS.Platform.DMem)
	num := int64(t) + int64(a.R[tl.Priority]) - (tl.MD+g)*dmem - n*int64(tl.Period)
	w := ceilDiv(num, dmem)
	if w < 0 {
		return 0
	}
	return min64(w, tl.MD+g)
}

// BAO bounds the bus accesses generated on remote core y by all tasks
// of priority k or higher in a window of length t. With persistence
// disabled this is Eq. (3); enabled, it is B̂AO of Lemma 2.
func (a *Analyzer) BAO(k, y int, t taskmodel.Time) int64 {
	if kk, ok := a.tab.prioIdx[k]; ok {
		return a.bao(kk, y, t)
	}
	var total int64
	for _, tl := range a.TS.HEP(k, y) {
		total += a.contrib(k, tl, t)
	}
	return total
}

func (a *Analyzer) bao(kk, y int, t taskmodel.Time) int64 {
	r := a.tab.row(kk)
	var total int64
	for _, ref := range r.hep[y] {
		total += a.contribRef(kk, r, ref, t)
	}
	return total
}

// BAOLow bounds the accesses from tasks on remote core y with priority
// lower than i (the FP bus blocking sources of Eq. 7).
func (a *Analyzer) BAOLow(i, y int, t taskmodel.Time) int64 {
	if ii, ok := a.tab.prioIdx[i]; ok {
		r := a.tab.row(ii)
		var total int64
		for _, ref := range r.lp[y] {
			total += a.contribRef(ii, r, ref, t)
		}
		return total
	}
	var total int64
	for _, tl := range a.TS.LP(i, y) {
		total += a.contrib(i, tl, t)
	}
	return total
}

// contrib is one task's W + W_cout term of Eq. (3)/(17), recomputed
// directly; contribRef is the table-backed equivalent used by the hot
// path.
func (a *Analyzer) contrib(k int, tl *taskmodel.Task, t taskmodel.Time) int64 {
	n := a.njobs(k, tl, t)
	g := a.gamma(k, tl.Priority, tl.Core)
	var w int64
	if a.Cfg.Persistence {
		w = persistence.PersistentDemandWindow(a.TS, a.Cfg.CPRO, tl.Priority, k, tl.Core, n, t) + n*g
	} else {
		w = n * (tl.MD + g)
	}
	return w + a.wcout(k, tl, t, n)
}

func (a *Analyzer) contribRef(kk int, r *row, ref taskRef, t taskmodel.Time) int64 {
	tl := ref.t
	p := a.pairFor(kk, r, ref.idx)
	dmem := int64(a.TS.Platform.DMem)
	num := int64(t) + int64(a.R[tl.Priority]) - (tl.MD+p.gamma)*dmem
	n := floorDiv(num, int64(tl.Period))
	if n < 0 {
		n = 0
	}
	var w int64
	if a.Cfg.Persistence {
		w = a.persistentDemand(p, ref.idx, n, t) + n*p.gamma
	} else {
		w = n * (tl.MD + p.gamma)
	}
	wc := ceilDiv(num-n*int64(tl.Period), dmem)
	if wc < 0 {
		wc = 0
	} else if wc > tl.MD+p.gamma {
		wc = tl.MD + p.gamma
	}
	return w + wc
}

// plus1 is the blocking term of Eq. (7)–(9): one access of a
// lower-priority task of the same core may be in service when the job
// under analysis arrives. It vanishes when the task is the lowest
// priority one on its core (see the remark below Eq. 12).
func (a *Analyzer) plus1(i, core int) int64 {
	if ii, ok := a.tab.prioIdx[i]; ok && a.tab.tasks[ii].Core == core {
		if a.tab.hasLP(ii) {
			return 1
		}
		return 0
	}
	if len(a.TS.LP(i, core)) > 0 {
		return 1
	}
	return 0
}

// BAT bounds the total number of bus accesses that may delay the
// priority-i task on its core during a window of length t, under the
// configured arbiter (Eq. 7, 8 or 9; own accesses only for Perfect).
func (a *Analyzer) BAT(i int, t taskmodel.Time) int64 {
	ti := a.TS.ByPriority(i)
	core := ti.Core
	bas := a.BAS(i, core, t)
	switch a.Cfg.Arbiter {
	case Perfect:
		return bas
	case FP:
		total := bas + a.plus1(i, core)
		var low int64
		for y := 0; y < a.TS.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += a.BAO(i, y, t)
			low += a.BAOLow(i, y, t)
		}
		return total + min64(bas, low)
	case RR:
		s := int64(a.TS.Platform.SlotSize)
		n := a.TS.LowestPriority()
		total := bas + a.plus1(i, core)
		for y := 0; y < a.TS.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.BAO(n, y, t), s*bas)
		}
		return total
	case TDMA:
		s := int64(a.TS.Platform.SlotSize)
		l := int64(a.TS.Platform.NumCores)
		return bas + (l-1)*s*bas + a.plus1(i, core)
	case Regulated:
		n := a.TS.LowestPriority()
		rc := regCapAt(a.TS.Platform, t)
		total := bas + a.plus1(i, core)
		for y := 0; y < a.TS.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.BAO(n, y, t), rc+bas)
		}
		return total
	case ParAware:
		n := a.TS.LowestPriority()
		total := bas + a.plus1(i, core)
		for y := 0; y < a.TS.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.BAO(n, y, t), bas)
		}
		return total
	default:
		panic(fmt.Sprintf("core: unknown arbiter %d", int(a.Cfg.Arbiter)))
	}
}

// ResponseTime runs the inner fixed point of Eq. (19) for the
// priority-i task with the current remote response-time estimates. It
// returns the WCRT and true, or the deadline-exceeding estimate and
// false. The iteration starts from the larger of the seed
// PD_i + MD_i·d_mem and the current estimate R[i] (the outer loop is
// monotone, so restarting lower would waste iterations).
//
// The iteration is event-driven (curves.go): every interference term
// is tracked as a breakpoint curve whose cursor only moves forward, so
// re-evaluating the recurrence after the first pass costs only the
// breakpoints actually crossed, and an iterate that crosses none
// terminates the loop immediately. The iterate chain — and with it
// every returned value, including the deadline-exceeding abort
// estimate — is exactly the naive chain of AnalyzeReference.
func (a *Analyzer) ResponseTime(i int) (taskmodel.Time, bool) {
	obs := a.obs
	if obs == nil {
		r, ok, _, _ := a.responseTime(i)
		return r, ok
	}
	obs.Add(telemetry.CtrTaskAnalyses, 1)
	var sp telemetry.Span
	if obs.Tracing() {
		sp = obs.Span("task "+a.TS.ByPriority(i).Name, "task")
	}
	r, ok, iters, jumps := a.responseTime(i)
	obs.Add(telemetry.CtrInnerIterations, iters)
	obs.Add(telemetry.CtrBreakpointJumps, jumps)
	obs.Observe(telemetry.HistInnerIters, iters)
	if obs.Tracing() {
		sp.EndArgs(map[string]any{"prio": i, "wcrt": int64(r), "converged": ok, "iterations": iters})
	}
	return r, ok
}

// responseTime is the ResponseTime body, additionally reporting the
// number of inner iterates and whether the loop terminated via the
// breakpoint jump — the telemetry wrapper's raw material.
func (a *Analyzer) responseTime(i int) (taskmodel.Time, bool, int64, int64) {
	ti := a.TS.ByPriority(i)
	ii, ok := a.tab.prioIdx[i]
	if !ok {
		// Off-table priority (not produced by the analysis itself):
		// fall back to direct re-evaluation.
		r, okd := a.responseTimeDirect(i, ti)
		return r, okd, 0, 0
	}
	dmem := a.TS.Platform.DMem
	r := ti.PD + taskmodel.Time(ti.MD)*dmem
	var cur taskmodel.Time
	if a.rdLive {
		cur = a.rd[ii]
	} else {
		cur = a.R[i]
	}
	if cur > r {
		r = cur
	}
	a.fpReset(ii, ti.Core, r)
	hasLP := a.tab.hasLP(ii)
	conv := a.obs.ConvergenceOn()
	var iters int64
	for {
		iters++
		next := ti.PD + a.fp.procSum + taskmodel.Time(a.fpBAT(ti.MD, ti.Core, hasLP))*dmem
		if conv {
			a.obs.Convergence.Step(ti.Name, i, int64(next), a.dominantTerm(ti, hasLP))
		}
		if next > ti.Deadline {
			return next, false, iters, 0
		}
		if next == r {
			return r, true, iters, 0
		}
		if next < r {
			// The recurrence is monotone in r; a decrease can only come
			// from starting above the least fixed point (stale outer
			// estimate), in which case the current r remains a valid
			// bound.
			return r, true, iters, 0
		}
		if next < a.fp.minNext {
			// Breakpoint jump: no interference term changes in
			// (r, next], so f is constant there and f(next) = f(r) =
			// next — next is the least fixed point (≤ the deadline,
			// checked above). This is where whole stretches of the
			// naive chain collapse into one step. The cursors stay
			// valid at next, where the outer loop will resume.
			a.fp.at = next
			return next, true, iters, 1
		}
		a.fpAdvance(next)
		r = next
	}
}

// dominantTerm names the largest interference term of the recurrence
// right-hand side at the current cursor state, reusing the Explanation
// field names of explain.go (CorePreemption, BAS, Remote[y], SlotWait,
// Blocking). Access terms are compared in time units (accesses ×
// d_mem) so they are commensurable with the processor-preemption sum;
// the task's own PD is demand, not interference, and is excluded.
// Only called while recording convergence traces.
func (a *Analyzer) dominantTerm(ti *taskmodel.Task, hasLP bool) string {
	s := a.fp
	dmem := int64(a.TS.Platform.DMem)
	bas := ti.MD + s.basSum
	best, bestV := "CorePreemption", int64(s.procSum)
	if v := bas * dmem; v > bestV {
		best, bestV = "BAS", v
	}
	var plus1 int64
	if hasLP {
		plus1 = 1
	}
	switch a.Cfg.Arbiter {
	case FP:
		var low int64
		for y := range s.baoSum {
			if v := s.baoSum[y] * dmem; v > bestV {
				best, bestV = "Remote["+strconv.Itoa(y)+"]", v
			}
			low += s.lowSum[y]
		}
		if v := (plus1 + min64(bas, low)) * dmem; v > bestV {
			best, bestV = "Blocking", v
		}
	case RR:
		slot := int64(a.TS.Platform.SlotSize)
		for y := range s.baoSum {
			if y == ti.Core {
				continue
			}
			if v := min64(s.baoSum[y], slot*bas) * dmem; v > bestV {
				best, bestV = "Remote["+strconv.Itoa(y)+"]", v
			}
		}
		if v := plus1 * dmem; v > bestV {
			best, bestV = "Blocking", v
		}
	case TDMA:
		l := int64(a.TS.Platform.NumCores)
		slot := int64(a.TS.Platform.SlotSize)
		if v := (l - 1) * slot * bas * dmem; v > bestV {
			best, bestV = "SlotWait", v
		}
		if v := plus1 * dmem; v > bestV {
			best, bestV = "Blocking", v
		}
	case Regulated:
		rc := regCapAt(a.TS.Platform, s.at)
		for y := range s.baoSum {
			if y == ti.Core {
				continue
			}
			if v := min64(s.baoSum[y], rc+bas) * dmem; v > bestV {
				best, bestV = "Remote["+strconv.Itoa(y)+"]", v
			}
		}
		if v := plus1 * dmem; v > bestV {
			best, bestV = "Blocking", v
		}
	case ParAware:
		for y := range s.baoSum {
			if y == ti.Core {
				continue
			}
			if v := min64(s.baoSum[y], bas) * dmem; v > bestV {
				best, bestV = "Remote["+strconv.Itoa(y)+"]", v
			}
		}
		if v := plus1 * dmem; v > bestV {
			best, bestV = "Blocking", v
		}
	case Perfect:
		// Own accesses only; BAS already covered above.
	}
	return best
}

// responseTimeDirect is the pre-curve iteration, retained for queries
// at priority levels outside the precomputed tables.
func (a *Analyzer) responseTimeDirect(i int, ti *taskmodel.Task) (taskmodel.Time, bool) {
	hp := a.TS.HP(i, ti.Core)
	dmem := a.TS.Platform.DMem
	r := ti.PD + taskmodel.Time(ti.MD)*dmem
	if cur := a.R[i]; cur > r {
		r = cur
	}
	for {
		var interference taskmodel.Time
		for _, tj := range hp {
			interference += taskmodel.Time(ceilDiv(int64(r), int64(tj.Period))) * tj.PD
		}
		next := ti.PD + interference + taskmodel.Time(a.BAT(i, r))*dmem
		if next > ti.Deadline {
			return next, false
		}
		if next == r {
			return r, true
		}
		if next < r {
			return r, true
		}
		r = next
	}
}

// perfectBusUtil is the long-run bus utilization the perfect-bus
// reference is gated on. Without persistence it is Σ MD·d_mem/T; with
// persistence each task's steady per-job demand is the tighter
// min(MD, MD^r + CPRO), where CPRO covers the persistent blocks its
// same-core neighbours can evict between jobs.
func (a *Analyzer) perfectBusUtil() float64 {
	var low *row
	lowIdx := len(a.tab.tasks) - 1
	if a.Cfg.Persistence {
		// hep(lowest priority) spans every task, so the lowest row's
		// union overlaps are exactly the steady-state CPRO terms.
		low = a.tab.row(lowIdx)
		if a.tab.memo != nil {
			// Serve the per-core CPRO columns from the shared store; the
			// lowest level's lp sets are empty, so withLow adds nothing.
			for y := 0; y < a.TS.Platform.NumCores; y++ {
				a.tab.memoFillPersist(lowIdx, low, y, true, a.obs)
			}
		}
	}
	u := 0.0
	for jj, t := range a.tab.tasks {
		demand := t.MD
		if a.Cfg.Persistence {
			if aware := t.MDr + a.tab.pairPersist(lowIdx, low, jj).unionOverlap; aware < demand {
				demand = aware
			}
		}
		u += float64(taskmodel.Time(demand)*a.TS.Platform.DMem) / float64(t.Period)
	}
	return u
}

// Run executes the outer fixed-point loop of the paper: response times
// of all tasks are recomputed until globally stable, since each task's
// bound feeds the remote-interference terms of the others. It stops
// early as soon as any task provably misses its deadline.
//
// The loop is incremental: a task is re-evaluated only while marked
// dirty, and a changed R[l] re-dirties exactly the tasks whose
// recurrences may read it — tasks on other cores (the remote
// N/W_cout terms) plus lower-priority tasks of the same core (a
// conservative superset; same-core recurrences read only periods and
// demands). Because the skipped tasks would have recomputed their
// current, already-converged values, the iteration visits the same
// states — and aborts at the same point — as the full re-evaluation
// performed by AnalyzeReference.
func (a *Analyzer) Run() *Result {
	obs := a.obs
	if obs == nil {
		return a.run()
	}
	obs.Add(telemetry.CtrRuns, 1)
	var sp telemetry.Span
	if obs.Tracing() {
		sp = obs.Span("analyze "+a.Cfg.label(), "analyzer")
	}
	res := a.run()
	obs.Observe(telemetry.HistOuterRounds, int64(res.OuterIterations))
	if res.Complete {
		obs.Add(telemetry.CtrRunsCompleted, 1)
	}
	if obs.Tracing() {
		sp.EndArgs(map[string]any{
			"tasks":       len(res.Tasks),
			"schedulable": res.Schedulable,
			"rounds":      res.OuterIterations,
		})
	}
	return res
}

func (a *Analyzer) run() *Result {
	res := &Result{Schedulable: true, Complete: true}
	if a.Cfg.Arbiter == Perfect && a.perfectBusUtil() > 1.0 {
		if a.obs != nil {
			a.obs.Add(telemetry.CtrAbortBusOverload, 1)
		}
		// The perfect-bus reference additionally requires the bus not to
		// be overloaded. The gate is a final verdict — no per-task fixed
		// point is attempted.
		res.Schedulable = false
		for _, t := range a.TS.Tasks {
			res.Tasks = append(res.Tasks, TaskResult{
				Name: t.Name, Priority: t.Priority, Core: t.Core,
				Deadline: t.Deadline, Schedulable: false, Verified: true,
			})
		}
		return res
	}
	dirty := make([]bool, len(a.TS.Tasks))
	for i := range dirty {
		dirty[i] = true
	}
	// Activate the dense response-time mirror for the duration of the
	// loop; entry points that seed R directly keep using the map.
	if cap(a.rd) < len(a.TS.Tasks) {
		a.rd = make([]taskmodel.Time, len(a.TS.Tasks))
	}
	a.rd = a.rd[:len(a.TS.Tasks)]
	for idx, t := range a.TS.Tasks {
		a.rd[idx] = a.R[t.Priority]
	}
	a.rdLive = true
	defer func() { a.rdLive = false }()
	converged := false
	for iter := 0; iter < a.Cfg.MaxOuterIterations; iter++ {
		res.OuterIterations = iter + 1
		if a.obs != nil {
			a.obs.Add(telemetry.CtrOuterRounds, 1)
		}
		changed := false
		for idx, t := range a.TS.Tasks {
			if !dirty[idx] {
				continue
			}
			dirty[idx] = false
			r, ok := a.ResponseTime(t.Priority)
			if a.obs.ConvergenceOn() {
				a.obs.Convergence.Finish(t.Name, t.Priority, ok)
			}
			if !ok {
				a.R[t.Priority] = r
				a.rd[idx] = r
				return a.fail(res, t.Priority, true)
			}
			if r != a.rd[idx] {
				a.R[t.Priority] = r
				a.rd[idx] = r
				changed = true
				a.markDependents(idx, dirty)
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		// The outer fixed point did not stabilise within the iteration
		// budget; claiming schedulability would be unsound, and nothing
		// was proven about any individual task.
		return a.fail(res, a.TS.LowestPriority(), false)
	}
	res.Tasks = make([]TaskResult, 0, len(a.TS.Tasks))
	for _, t := range a.TS.Tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name: t.Name, Priority: t.Priority, Core: t.Core,
			WCRT: a.R[t.Priority], Deadline: t.Deadline,
			Schedulable: true, Verified: true,
		})
	}
	return res
}

// markDependents flags every task whose response-time recurrence may
// read R[idx]: tasks on other cores, plus same-core lower-priority
// tasks as a conservative margin.
func (a *Analyzer) markDependents(idx int, dirty []bool) {
	tl := a.TS.Tasks[idx]
	for j, t := range a.TS.Tasks {
		if j == idx {
			continue
		}
		if t.Core != tl.Core || t.Priority > tl.Priority {
			dirty[j] = true
		}
	}
}

// fail finalizes a result after the analysis aborted: either the task
// at priority failPrio provably missed its deadline (proven), or the
// iteration budget ran out (not proven). Every task is reported not
// schedulable — the abort leaves their bounds mid-iteration, so no
// schedulability claim holds — and only a proven deadline miss is
// marked Verified.
func (a *Analyzer) fail(res *Result, failPrio int, proven bool) *Result {
	if a.obs != nil {
		if proven {
			a.obs.Add(telemetry.CtrAbortDeadlineMiss, 1)
		} else {
			a.obs.Add(telemetry.CtrAbortNonConvergence, 1)
		}
	}
	res.Schedulable = false
	res.Complete = false
	res.Tasks = make([]TaskResult, 0, len(a.TS.Tasks))
	for _, t := range a.TS.Tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name: t.Name, Priority: t.Priority, Core: t.Core,
			WCRT: a.R[t.Priority], Deadline: t.Deadline,
			Schedulable: false,
			Verified:    proven && t.Priority == failPrio,
		})
	}
	return res
}

// Analyze is the one-call entry point: build an analyzer and run the
// full fixed point.
func Analyze(ts *taskmodel.TaskSet, cfg Config) (*Result, error) {
	a, err := NewAnalyzer(ts, cfg)
	if err != nil {
		return nil, err
	}
	return a.Run(), nil
}

// AnalyzeAll analyzes one task set under several configurations,
// sharing the precomputed interference tables between configurations
// with the same CRPD approach (the cached terms do not depend on the
// arbiter, the persistence switch or the CPRO approach). Results are
// returned in cfgs order.
func AnalyzeAll(ts *taskmodel.TaskSet, cfgs []Config) ([]*Result, error) {
	return analyzeAllObs(ts, cfgs, nil, nil)
}

// analysisScratch pools the per-analysis mutable arrays — cursor
// states, the dense response-time mirror and the per-level curve
// bookkeeping — across analyzeAllObs calls (and, through them, across
// AnalyzeBatchOpts jobs). Only the delta warm path profits: with the
// backbones themselves memo-served, these arrays are the remaining
// per-request allocations. Everything handed out is fully re-initialized
// before use, so pooling cannot leak state between task sets.
type analysisScratch struct {
	fps    []fpState
	rd     []taskmodel.Time
	curves []levelCurves
}

var scratchPool = sync.Pool{New: func() any { return new(analysisScratch) }}

// takeFPS returns n cursor states with their inner slices retained but
// every entry invalidated — fpReset's rebuild path reconstructs all
// remaining state.
func (sc *analysisScratch) takeFPS(n int) []fpState {
	if cap(sc.fps) < n {
		sc.fps = make([]fpState, n)
	}
	sc.fps = sc.fps[:cap(sc.fps)]
	fps := sc.fps[:n]
	for i := range fps {
		fps[i].valid = false
	}
	return fps
}

// takeRD returns the n-entry response-time mirror; run() overwrites
// every slot before reading it.
func (sc *analysisScratch) takeRD(n int) []taskmodel.Time {
	if cap(sc.rd) < n {
		sc.rd = make([]taskmodel.Time, n)
	}
	return sc.rd[:n]
}

// takeCurves returns n cleared levelCurves entries for an m-core
// platform. The per-core header and flag arrays are retained across
// requests when their core count still matches (the common sweep case)
// — only their contents are invalidated; the backbone views themselves
// are dropped since they may alias store-shared slices. A core-count
// mismatch falls back to a wholesale zero and levelCurves() reallocates.
func (sc *analysisScratch) takeCurves(n, m int) []levelCurves {
	if cap(sc.curves) < n {
		sc.curves = make([]levelCurves, n)
	}
	sc.curves = sc.curves[:cap(sc.curves)]
	cur := sc.curves[:n]
	for i := range cur {
		lc := &cur[i]
		if len(lc.remoteBuilt) != m {
			*lc = levelCurves{}
			continue
		}
		lc.same = nil
		lc.sameBuilt, lc.samePersist = false, false
		for y := 0; y < m; y++ {
			lc.remote[y], lc.low[y] = nil, nil
			lc.remoteBuilt[y], lc.remotePersist[y] = false, false
		}
	}
	return cur
}

func analyzeAllObs(ts *taskmodel.TaskSet, cfgs []Config, obs *telemetry.Observer, memo *MemoStore) ([]*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := cfg.ValidateFor(ts.Platform); err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	n := len(ts.Tasks)
	scratch := scratchPool.Get().(*analysisScratch)
	defer scratchPool.Put(scratch)
	tables := make(map[crpd.Approach]*Tables)
	out := make([]*Result, len(cfgs))
	// Persistence-enabled configurations run first (results still land
	// in cfgs order): the first touch of each curve then materializes
	// its backbone at CPRO depth, a superset of γ depth, so the
	// persistence-oblivious configurations that follow hit the
	// intra-Tables warm path instead of paying a second store
	// round-trip for the γ-depth backbone of the same prefix.
	order := make([]int, 0, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Persistence {
			order = append(order, i)
		}
	}
	for i, cfg := range cfgs {
		if !cfg.Persistence {
			order = append(order, i)
		}
	}
	first := true
	for _, i := range order {
		cfg := cfgs[i]
		tbl, ok := tables[cfg.CRPD]
		if !ok {
			tbl = PrecomputeTables(ts, cfg.CRPD)
			if memo != nil {
				tbl.setMemo(memo)
			}
			if first {
				// The pooled curve array serves one Tables only — the
				// backbones differ across CRPD approaches. Additional
				// tables (rare in one request) allocate their own lazily.
				tbl.curves = scratch.takeCurves(n, ts.Platform.NumCores)
				first = false
			}
			tables[cfg.CRPD] = tbl
		}
		// The set was validated above and the tables were built from it,
		// so the per-analyzer checks are redundant. The configurations run
		// sequentially, so handing every analyzer the same pooled cursor
		// arrays is safe: takeFPS invalidates all entries between configs.
		a := newAnalyzerChecked(ts, cfg, tbl)
		a.obs = obs
		a.fps = scratch.takeFPS(n)
		a.rd = scratch.takeRD(n)
		out[i] = a.Run()
	}
	return out, nil
}
