package core

import (
	"crypto/sha256"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// memoConfigs extends the differential grid with every CRPD approach:
// the γ column keys fold in the approach (and, under ECBOnly, the
// selfLast shape), so the memo must be exercised beyond the default
// ECB-union of the base grid.
func memoConfigs() []Config {
	cfgs := differentialConfigs()
	for _, ap := range []crpd.Approach{
		crpd.UCBOnly, crpd.ECBOnly, crpd.UCBUnion, crpd.Combined,
	} {
		cfgs = append(cfgs,
			Config{Arbiter: FP, Persistence: false, CRPD: ap},
			Config{Arbiter: FP, Persistence: true, CRPD: ap},
			Config{Arbiter: RR, Persistence: true, CRPD: ap},
		)
	}
	return cfgs
}

// cloneTasks shallow-copies the task structs (the cache sets are never
// mutated, so sharing them is safe).
func cloneTasks(ts *taskmodel.TaskSet) []*taskmodel.Task {
	tasks := make([]*taskmodel.Task, len(ts.Tasks))
	for i, t := range ts.Tasks {
		c := *t
		tasks[i] = &c
	}
	return tasks
}

// perturbPD returns a copy of ts with task i's processing demand
// shifted — the classic one-task DSE sweep edit, touching no field any
// table column depends on.
func perturbPD(ts *taskmodel.TaskSet, i int, delta taskmodel.Time) *taskmodel.TaskSet {
	tasks := cloneTasks(ts)
	tasks[i].PD += delta
	if tasks[i].PD < 1 {
		tasks[i].PD = 1
	}
	return taskmodel.NewTaskSet(ts.Platform, tasks)
}

// perturbUCB returns a copy of ts with one cache-set index dropped from
// task i's UCB — an edit that invalidates exactly the γ columns whose
// prefix contains task i. Returns nil when the task has no UCB to drop.
func perturbUCB(ts *taskmodel.TaskSet, i int) *taskmodel.TaskSet {
	idx := ts.Tasks[i].UCB.Indices()
	if len(idx) == 0 {
		return nil
	}
	tasks := cloneTasks(ts)
	tasks[i].UCB = cacheset.FromSorted(ts.Platform.Cache.NumSets, idx[1:])
	return taskmodel.NewTaskSet(ts.Platform, tasks)
}

// TestDifferentialMemo pins the memoized fills bit-identical to the
// plain path: for every corpus entry and config — all arbiters, CPRO
// and CRPD approaches — a cold store, a warm store (second run against
// the same store, all hits) and the memo-free baseline must agree
// exactly.
func TestDifferentialMemo(t *testing.T) {
	count := 24
	if testing.Short() {
		count = 6
	}
	cfgs := memoConfigs()
	for si, ts := range differentialCorpus(t, count) {
		want, err := AnalyzeAll(ts, cfgs)
		if err != nil {
			t.Fatalf("set %d: AnalyzeAll: %v", si, err)
		}
		store := NewMemoStore(0)
		for pass := 0; pass < 2; pass++ {
			got, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: store})
			if err != nil {
				t.Fatalf("set %d pass %d: AnalyzeAllOpts: %v", si, pass, err)
			}
			for ci := range cfgs {
				if !reflect.DeepEqual(got[ci], want[ci]) {
					t.Fatalf("set %d pass %d %+v: memoized result diverges\n memo: %+v\n plain: %+v",
						si, pass, cfgs[ci], got[ci], want[ci])
				}
			}
		}
	}
}

// TestDifferentialMemoPerturbed shares one store across a family of
// one-task edits — the delta workload. A UCB edit must invalidate the
// affected columns (no stale reuse), and every variant must still
// match its memo-free analysis exactly.
func TestDifferentialMemoPerturbed(t *testing.T) {
	cfgs := memoConfigs()
	store := NewMemoStore(0)
	checked := 0
	for si, base := range differentialCorpus(t, 4) {
		variants := []*taskmodel.TaskSet{base}
		for i := range base.Tasks {
			variants = append(variants, perturbPD(base, i, taskmodel.Time(i+1)))
			if v := perturbUCB(base, i); v != nil {
				variants = append(variants, v)
			}
		}
		for vi, ts := range variants {
			want, err := AnalyzeAll(ts, cfgs)
			if err != nil {
				t.Fatalf("set %d variant %d: AnalyzeAll: %v", si, vi, err)
			}
			got, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: store})
			if err != nil {
				t.Fatalf("set %d variant %d: AnalyzeAllOpts: %v", si, vi, err)
			}
			for ci := range cfgs {
				if !reflect.DeepEqual(got[ci], want[ci]) {
					t.Fatalf("set %d variant %d %+v: shared-store result diverges",
						si, vi, cfgs[ci])
				}
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d variants exercised; corpus too small", checked)
	}
}

// TestMemoComputeOnceConcurrent runs many concurrent analyses of the
// same task set against one store and asserts each column was computed
// exactly once: the concurrent miss total must equal a solo cold run's,
// with the remainder served as hits or waits. Run under -race this
// also proves the publish/consume edges of the store.
func TestMemoComputeOnceConcurrent(t *testing.T) {
	ts := differentialCorpus(t, 1)[0]
	cfgs := memoConfigs()

	solo := telemetry.New()
	if _, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: NewMemoStore(0), Observer: solo}); err != nil {
		t.Fatal(err)
	}
	soloMisses := solo.Metrics.Get(telemetry.CtrMemoMisses)
	if soloMisses == 0 {
		t.Fatal("solo run recorded no memo misses; fills are not reaching the store")
	}

	store := NewMemoStore(0)
	obs := telemetry.New()
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = AnalyzeAllOpts(ts, cfgs, Options{Memo: store, Observer: obs})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := obs.Metrics.Get(telemetry.CtrMemoMisses); got != soloMisses {
		t.Errorf("concurrent misses = %d, want exactly the solo cold run's %d (each column computed once)",
			got, soloMisses)
	}
	if hits := obs.Metrics.Get(telemetry.CtrMemoHits) + obs.Metrics.Get(telemetry.CtrMemoWaits); hits == 0 {
		t.Error("no hits or waits recorded across concurrent duplicate analyses")
	}
}

// TestCurveMemoComputeOnceConcurrent is the curve-level analogue of
// TestMemoComputeOnceConcurrent, through the batch front door: many
// AnalyzeBatchOpts workers analyzing the same task set against one
// shared store must together miss each curve backbone exactly as often
// as a solo cold run does — every backbone materialized once, the rest
// of the demand served as hits or waits — and return bit-identical
// results. Under -race this also proves the publish/consume edges of
// the shared backbones themselves, which workers read copy-free.
func TestCurveMemoComputeOnceConcurrent(t *testing.T) {
	ts := differentialCorpus(t, 1)[0]
	cfgs := memoConfigs()
	want, err := AnalyzeAll(ts, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	solo := telemetry.New()
	if _, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: NewMemoStore(0), Observer: solo}); err != nil {
		t.Fatal(err)
	}
	soloCurves := solo.Metrics.Get(telemetry.CtrCurveMemoMisses)
	if soloCurves == 0 {
		t.Fatal("solo run materialized no memoized curves; backbones are not reaching the store")
	}

	const workers = 8
	reqs := make([]BatchRequest, workers)
	for i := range reqs {
		reqs[i] = BatchRequest{TS: ts, Cfgs: cfgs}
	}
	obs := telemetry.New()
	out, err := AnalyzeBatchOpts(reqs, BatchOptions{Workers: workers, Observer: obs, Memo: NewMemoStore(0)})
	if err != nil {
		t.Fatal(err)
	}
	for w := range out {
		for ci := range cfgs {
			if !reflect.DeepEqual(out[w][ci], want[ci]) {
				t.Fatalf("worker %d %+v: shared-store result diverges from memo-free analysis", w, cfgs[ci])
			}
		}
	}
	if got := obs.Metrics.Get(telemetry.CtrCurveMemoMisses); got != soloCurves {
		t.Errorf("concurrent curve misses = %d, want exactly the solo cold run's %d (each backbone computed once)",
			got, soloCurves)
	}
	if hw := obs.Metrics.Get(telemetry.CtrCurveMemoHits) + obs.Metrics.Get(telemetry.CtrCurveMemoWaits); hw == 0 {
		t.Error("no curve hits or waits recorded across concurrent duplicate analyses")
	}
}

// TestResponseTimeZeroAllocMemo repeats the zero-alloc pin of the warm
// re-evaluation path with a memo store attached: once the warm-up Run
// has materialized every backbone (hitting or filling the store),
// ResponseTime must not touch the store, hash a key or allocate — the
// memoized and plain warm paths are the same code over the same
// cursors.
func TestResponseTimeZeroAllocMemo(t *testing.T) {
	store := NewMemoStore(0)
	for _, cfg := range []Config{
		{Arbiter: FP, Persistence: true, CPRO: persistence.MultisetUnion},
		{Arbiter: RR, Persistence: true, CPRO: persistence.Union},
		{Arbiter: TDMA, Persistence: false},
	} {
		ts := differentialCorpus(t, 1)[0]
		tbl := PrecomputeTables(ts, cfg.CRPD)
		tbl.setMemo(store)
		a, err := NewAnalyzerWithTables(ts, cfg, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if res := a.Run(); !res.Complete {
			t.Fatalf("%+v: warm-up run aborted; pick a schedulable corpus entry", cfg)
		}
		for _, task := range ts.Tasks {
			prio := task.Priority
			if avg := testing.AllocsPerRun(50, func() {
				if _, ok := a.ResponseTime(prio); !ok {
					t.Fatal("warm ResponseTime diverged")
				}
			}); avg != 0 {
				t.Errorf("%+v prio %d: memoized ResponseTime allocates %v times per call, want 0", cfg, prio, avg)
			}
		}
	}
}

// TestMemoSweepRecomputeReduction pins the acceptance criterion: a
// one-task-perturbed sweep against a shared store must recompute at
// least 5× fewer table columns than the memo-free workload (measured
// as cold per-request stores, whose misses equal the plain path's
// column builds).
func TestMemoSweepRecomputeReduction(t *testing.T) {
	base := differentialCorpus(t, 1)[0]
	cfgs := differentialConfigs()
	const steps = 16
	sweep := make([]*taskmodel.TaskSet, steps)
	for i := range sweep {
		sweep[i] = perturbPD(base, len(base.Tasks)/2, taskmodel.Time(i))
	}

	var cold, shared int64
	store := NewMemoStore(0)
	for _, ts := range sweep {
		coldObs, sharedObs := telemetry.New(), telemetry.New()
		if _, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: NewMemoStore(0), Observer: coldObs}); err != nil {
			t.Fatal(err)
		}
		if _, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: store, Observer: sharedObs}); err != nil {
			t.Fatal(err)
		}
		cold += coldObs.Metrics.Get(telemetry.CtrMemoMisses)
		shared += sharedObs.Metrics.Get(telemetry.CtrMemoMisses)
	}
	if cold == 0 || shared == 0 {
		t.Fatalf("degenerate counts: cold=%d shared=%d", cold, shared)
	}
	if cold < 5*shared {
		t.Errorf("sweep recomputed %d columns against the shared store vs %d cold; want >= 5x reduction",
			shared, cold)
	}
	t.Logf("column recomputations: cold=%d shared=%d (%.1fx reduction)", cold, shared, float64(cold)/float64(shared))
}

// TestMemoStoreLeaderPanic pins the compute-once failure contract: a
// leader whose compute panics must release blocked followers (who then
// compute locally) and must not poison the key — the next requester
// becomes a fresh leader.
func TestMemoStoreLeaderPanic(t *testing.T) {
	store := NewMemoStore(0)
	key := memoKey(sha256.Sum256([]byte("leader-panic")))

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate out of getOrCompute")
			}
		}()
		store.getOrComputeColumn(key, nil, func() *memoColumn {
			close(entered)
			<-release
			panic("injected")
		})
	}()
	<-entered

	followerDone := make(chan *memoColumn, 1)
	local := &memoColumn{gamma: []int64{7}}
	followerObs := telemetry.New()
	go func() {
		followerDone <- store.getOrComputeColumn(key, followerObs, func() *memoColumn { return local })
	}()
	// Only release the leader once the follower is provably parked on
	// the in-flight entry (the wait counter increments before the
	// block); otherwise the follower could arrive after the withdrawal
	// and become a leader that publishes its local column.
	for followerObs.Metrics.Get(telemetry.CtrMemoWaits) == 0 {
		runtime.Gosched()
	}
	close(release)
	<-leaderDone
	if got := <-followerDone; got != local {
		t.Fatalf("follower got %p, want its local fallback %p", got, local)
	}

	// The key must be vacant again: a fresh requester computes and
	// publishes normally.
	obs := telemetry.New()
	fresh := &memoColumn{gamma: []int64{9}}
	if got := store.getOrComputeColumn(key, obs, func() *memoColumn { return fresh }); got != fresh {
		t.Fatal("post-panic requester did not become a fresh leader")
	}
	if obs.Metrics.Get(telemetry.CtrMemoMisses) != 1 {
		t.Error("post-panic requester not counted as a miss")
	}
	if got := store.getOrComputeColumn(key, obs, func() *memoColumn { return nil }); got != fresh {
		t.Fatal("published post-panic column not served to later requesters")
	}
}

// TestMemoStoreBounded pins the capacity contract: the store never
// holds more than its configured entry budget and reports evictions.
func TestMemoStoreBounded(t *testing.T) {
	const cap = 64
	store := NewMemoStore(cap)
	obs := telemetry.New()
	for i := 0; i < 10*cap; i++ {
		key := memoKey(sha256.Sum256([]byte{byte(i), byte(i >> 8)}))
		store.getOrComputeColumn(key, obs, func() *memoColumn { return &memoColumn{} })
	}
	if n := store.Len(); n > cap {
		t.Errorf("store holds %d entries, cap %d", n, cap)
	}
	if obs.Metrics.Get(telemetry.CtrMemoEvictions) == 0 {
		t.Error("no evictions recorded despite 10x-cap inserts")
	}
}
