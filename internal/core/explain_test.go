package core

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

func TestExplainFig1Tau2(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	ex, err := Explain(ts, Config{Arbiter: RR, Persistence: true}, 1)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Task != "tau2" || ex.Core != 0 || ex.Priority != 1 {
		t.Fatalf("identity = %+v", ex)
	}
	if !ex.Schedulable {
		t.Fatal("τ2 should be schedulable in the Fig. 1 setup")
	}
	if ex.OwnMD != 8 || ex.PD != 32 {
		t.Errorf("own demand = PD %d / MD %d, want 32/8", ex.PD, ex.OwnMD)
	}
	if len(ex.SameCore) != 1 || ex.SameCore[0].Task != "tau1" {
		t.Fatalf("SameCore = %+v, want one τ1 term", ex.SameCore)
	}
	sc := ex.SameCore[0]
	if sc.AwareDemand > sc.PlainDemand {
		t.Errorf("aware demand %d exceeds plain %d", sc.AwareDemand, sc.PlainDemand)
	}
	if sc.CRPD != sc.Jobs*2 {
		t.Errorf("CRPD = %d, want jobs×γ = %d×2", sc.CRPD, sc.Jobs)
	}
	// Consistency: BAS = MD_i + Σ aware + Σ CRPD.
	want := ex.OwnMD + sc.AwareDemand + sc.CRPD
	if ex.BAS != want {
		t.Errorf("BAS = %d, want %d (decomposition must add up)", ex.BAS, want)
	}
	// One remote core with a clamped-or-not term.
	if len(ex.Remote) != 1 || ex.Remote[0].Core != 1 {
		t.Fatalf("Remote = %+v", ex.Remote)
	}
	// BAT consistency for RR: BAS + Σ remote + blocking.
	total := ex.BAS + ex.Blocking
	for _, rc := range ex.Remote {
		total += rc.Accesses
	}
	if ex.BAT != total {
		t.Errorf("BAT = %d, decomposition sums to %d", ex.BAT, total)
	}
	if ex.BusTime != taskTime(ex.BAT)*ts.Platform.DMem {
		t.Errorf("BusTime = %d, want BAT×d_mem", ex.BusTime)
	}
}

func taskTime(v int64) int64 { return v }

func TestExplainDecompositionAllArbiters(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	for _, arb := range []Arbiter{FP, RR, Perfect} {
		for _, p := range []bool{false, true} {
			ex, err := Explain(ts, Config{Arbiter: arb, Persistence: p}, 1)
			if err != nil {
				t.Fatalf("%v: %v", arb, err)
			}
			total := ex.BAS + ex.Blocking
			for _, rc := range ex.Remote {
				total += rc.Accesses
			}
			if ex.BAT != total {
				t.Errorf("%v persistence=%v: BAT %d != decomposition %d", arb, p, ex.BAT, total)
			}
		}
	}
	// TDMA's slot waiting is folded into BAT, not the remote terms.
	ex, err := Explain(ts, Config{Arbiter: TDMA}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Remote) != 0 {
		t.Errorf("TDMA remote terms = %+v, want none", ex.Remote)
	}
	if ex.BAT < ex.BAS {
		t.Errorf("TDMA BAT %d below BAS %d", ex.BAT, ex.BAS)
	}
}

func TestExplainDecompositionSumsToBAT(t *testing.T) {
	// Regression guard for the table refactor: for every arbiter,
	// persistence mode and CPRO approach, the rendered decomposition
	// must reconstruct the analyzer's bounds exactly —
	//   BAS = OwnMD + Σ (AwareDemand + CRPD)
	//   BAT = BAS + SlotWait + Σ Remote.Accesses + Blocking.
	sets := []*taskmodel.TaskSet{fixtures.Fig1TaskSet()}
	sets = append(sets, randomTaskSets(t, 3, 0.4)...)
	var cfgs []Config
	for _, arb := range []Arbiter{FP, RR, TDMA, Perfect} {
		cfgs = append(cfgs, Config{Arbiter: arb})
		for _, cpro := range []persistence.CPROApproach{
			persistence.Union, persistence.MultisetUnion,
			persistence.FullReload, persistence.None,
		} {
			cfgs = append(cfgs, Config{Arbiter: arb, Persistence: true, CPRO: cpro})
		}
	}
	for si, ts := range sets {
		for _, cfg := range cfgs {
			for _, task := range ts.Tasks {
				ex, err := Explain(ts, cfg, task.Priority)
				if err != nil {
					t.Fatalf("set %d %+v prio %d: %v", si, cfg, task.Priority, err)
				}
				bas := ex.OwnMD
				for _, sc := range ex.SameCore {
					bas += sc.AwareDemand + sc.CRPD
				}
				if ex.BAS != bas {
					t.Errorf("set %d %+v τ%d: BAS %d != same-core decomposition %d",
						si, cfg, task.Priority, ex.BAS, bas)
				}
				bat := ex.BAS + ex.SlotWait + ex.Blocking
				for _, rc := range ex.Remote {
					bat += rc.Accesses
				}
				if ex.BAT != bat {
					t.Errorf("set %d %+v τ%d: BAT %d != decomposition %d",
						si, cfg, task.Priority, ex.BAT, bat)
				}
				if cfg.Arbiter != TDMA && ex.SlotWait != 0 {
					t.Errorf("set %d %+v τ%d: SlotWait %d outside TDMA",
						si, cfg, task.Priority, ex.SlotWait)
				}
			}
		}
	}
}

func TestExplainUnknownPriority(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	if _, err := Explain(ts, Config{Arbiter: RR}, 42); err == nil {
		t.Fatal("unknown priority accepted")
	}
}

func TestExplainRender(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	ex, err := Explain(ts, Config{Arbiter: RR, Persistence: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ex.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"task tau2", "same-core bus demand", "tau1", "remote core 1", "BAT total accesses"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExplainPersistenceReducesAwareDemand(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	base, err := Explain(ts, Config{Arbiter: RR}, 1)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Explain(ts, Config{Arbiter: RR, Persistence: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aware.SameCore[0].AwareDemand >= base.SameCore[0].AwareDemand {
		t.Errorf("persistence did not reduce τ1's demand: %d vs %d",
			aware.SameCore[0].AwareDemand, base.SameCore[0].AwareDemand)
	}
	if aware.BAT >= base.BAT {
		t.Errorf("persistence did not reduce BAT: %d vs %d", aware.BAT, base.BAT)
	}
}
