package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Explainability: decompose a task's WCRT bound into the terms of
// Eq. (19) so an engineer can see where the bus time goes — which
// higher-priority task contributes how many accesses, how much CRPD
// and CPRO cost, and what each remote core injects.

// SameCoreTerm is one higher-priority task's contribution to BAS
// (Eq. 1 / Lemma 1) at the converged response time.
type SameCoreTerm struct {
	Task string
	// Jobs is E_j(R) = ⌈R/T_j⌉.
	Jobs int64
	// PlainDemand is the persistence-oblivious E_j·MD_j.
	PlainDemand int64
	// AwareDemand is min(E_j·MD_j, M̂D_j(E_j) + ρ̂_{j,i,x}(E_j)); equals
	// PlainDemand when the analysis runs without persistence.
	AwareDemand int64
	// CRPD is E_j·γ_{i,j,x}.
	CRPD int64
	// CPRO is ρ̂_{j,i,x}(E_j) (zero without persistence).
	CPRO int64
}

// RemoteCoreTerm is one remote core's aggregate BAO contribution.
type RemoteCoreTerm struct {
	Core int
	// Accesses is the BAO bound actually charged by the arbiter
	// formula (after the RR min-clamp, for example).
	Accesses int64
	// Raw is the unclamped BAO bound.
	Raw int64
}

// Explanation decomposes one task's converged WCRT bound.
type Explanation struct {
	Task     string
	Priority int
	Core     int
	// WCRT is the converged bound; Schedulable mirrors the verdict.
	WCRT        taskmodel.Time
	Schedulable bool

	// PD is the task's own execution demand; OwnMD its own accesses.
	PD    taskmodel.Time
	OwnMD int64
	// CorePreemption is Σ ⌈R/T_j⌉·PD_j, the processor-time interference.
	CorePreemption taskmodel.Time
	// SameCore breaks down BAS − MD_i.
	SameCore []SameCoreTerm
	// BAS is the full same-core access bound.
	BAS int64
	// Remote lists per-core BAO contributions (empty for Perfect/TDMA).
	Remote []RemoteCoreTerm
	// SlotWait is the TDMA slot-waiting term (m−1)·s·BAS of Eq. (9);
	// zero for the other arbiters. With it, the decomposition
	// BAS + SlotWait + Σ Remote.Accesses + Blocking equals BAT for
	// every arbiter.
	SlotWait int64
	// Blocking is the +1 term (and, for FP, the low-priority min term).
	Blocking int64
	// BAT is the total access bound; BusTime = BAT·d_mem.
	BAT     int64
	BusTime taskmodel.Time
}

// Explain runs the full analysis and decomposes the bound of the task
// with the given priority at its converged response time.
func Explain(ts *taskmodel.TaskSet, cfg Config, prio int) (*Explanation, error) {
	a, err := NewAnalyzer(ts, cfg)
	if err != nil {
		return nil, err
	}
	res := a.Run()
	ti := ts.ByPriority(prio)
	if ti == nil {
		return nil, fmt.Errorf("core: no task with priority %d", prio)
	}
	var tr *TaskResult
	for i := range res.Tasks {
		if res.Tasks[i].Priority == prio {
			tr = &res.Tasks[i]
		}
	}
	if tr == nil {
		return nil, fmt.Errorf("core: priority %d missing from result", prio)
	}
	r := a.R[prio]

	ex := &Explanation{
		Task:        ti.Name,
		Priority:    prio,
		Core:        ti.Core,
		WCRT:        r,
		Schedulable: tr.Schedulable && res.Complete,
		PD:          ti.PD,
		OwnMD:       ti.MD,
	}

	for _, tj := range ts.HP(prio, ti.Core) {
		ej := ceilDiv(int64(r), int64(tj.Period))
		g := a.gamma(prio, tj.Priority, ti.Core)
		term := SameCoreTerm{
			Task:        tj.Name,
			Jobs:        ej,
			PlainDemand: ej * tj.MD,
			AwareDemand: ej * tj.MD,
			CRPD:        ej * g,
		}
		if cfg.Persistence {
			// Window-aware variants, matching what BAS charges at r so
			// the decomposition adds up under every CPRO approach.
			term.AwareDemand = persistence.PersistentDemandWindow(ts, cfg.CPRO, tj.Priority, prio, ti.Core, ej, r)
			term.CPRO = persistence.RhoHatWindow(ts, cfg.CPRO, tj.Priority, prio, ti.Core, ej, r)
		}
		ex.SameCore = append(ex.SameCore, term)
		ex.CorePreemption += taskmodel.Time(ej) * tj.PD
	}
	ex.BAS = a.BAS(prio, ti.Core, r)

	bat := a.BAT(prio, r)
	switch cfg.Arbiter {
	case FP:
		var low int64
		for y := 0; y < ts.Platform.NumCores; y++ {
			if y == ti.Core {
				continue
			}
			raw := a.BAO(prio, y, r)
			ex.Remote = append(ex.Remote, RemoteCoreTerm{Core: y, Accesses: raw, Raw: raw})
			low += a.BAOLow(prio, y, r)
		}
		ex.Blocking = a.plus1(prio, ti.Core) + min64(ex.BAS, low)
	case RR:
		s := int64(ts.Platform.SlotSize)
		n := ts.LowestPriority()
		for y := 0; y < ts.Platform.NumCores; y++ {
			if y == ti.Core {
				continue
			}
			raw := a.BAO(n, y, r)
			ex.Remote = append(ex.Remote, RemoteCoreTerm{Core: y, Accesses: min64(raw, s*ex.BAS), Raw: raw})
		}
		ex.Blocking = a.plus1(prio, ti.Core)
	case TDMA:
		// TDMA charges slot waiting per own access rather than remote
		// demand; expose it as a single synthetic term.
		ex.SlotWait = int64(ts.Platform.NumCores-1) * int64(ts.Platform.SlotSize) * ex.BAS
		ex.Blocking = a.plus1(prio, ti.Core)
	case Regulated:
		n := ts.LowestPriority()
		rc := regCapAt(ts.Platform, r)
		for y := 0; y < ts.Platform.NumCores; y++ {
			if y == ti.Core {
				continue
			}
			raw := a.BAO(n, y, r)
			ex.Remote = append(ex.Remote, RemoteCoreTerm{Core: y, Accesses: min64(raw, rc+ex.BAS), Raw: raw})
		}
		ex.Blocking = a.plus1(prio, ti.Core)
	case ParAware:
		n := ts.LowestPriority()
		for y := 0; y < ts.Platform.NumCores; y++ {
			if y == ti.Core {
				continue
			}
			raw := a.BAO(n, y, r)
			ex.Remote = append(ex.Remote, RemoteCoreTerm{Core: y, Accesses: min64(raw, ex.BAS), Raw: raw})
		}
		ex.Blocking = a.plus1(prio, ti.Core)
	case Perfect:
		// no remote interference
	default:
		return nil, fmt.Errorf("core: no explanation for arbiter %v", cfg.Arbiter)
	}
	ex.BAT = bat
	ex.BusTime = taskmodel.Time(bat) * ts.Platform.DMem
	return ex, nil
}

// Render prints the explanation as a human-readable report.
func (e *Explanation) Render(w io.Writer) error {
	fmt.Fprintf(w, "task %s (priority %d, core %d)\n", e.Task, e.Priority, e.Core)
	verdict := "schedulable"
	if !e.Schedulable {
		verdict = "NOT schedulable (bound below is the last estimate)"
	}
	fmt.Fprintf(w, "  WCRT bound: %d  — %s\n", e.WCRT, verdict)
	fmt.Fprintf(w, "  own execution PD = %d, own accesses MD = %d\n", e.PD, e.OwnMD)
	fmt.Fprintf(w, "  processor preemption time: %d\n", e.CorePreemption)
	if len(e.SameCore) > 0 {
		fmt.Fprintln(w, "  same-core bus demand (Eq. 1 / Lemma 1):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "    task\tjobs\tplain\taware\tCRPD\tCPRO")
		for _, t := range e.SameCore {
			fmt.Fprintf(tw, "    %s\t%d\t%d\t%d\t%d\t%d\n",
				t.Task, t.Jobs, t.PlainDemand, t.AwareDemand, t.CRPD, t.CPRO)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "  BAS (same-core accesses incl. own): %d\n", e.BAS)
	for _, rc := range e.Remote {
		clamp := ""
		if rc.Accesses != rc.Raw {
			clamp = fmt.Sprintf(" (clamped from %d)", rc.Raw)
		}
		fmt.Fprintf(w, "  remote core %d: %d accesses%s\n", rc.Core, rc.Accesses, clamp)
	}
	if e.SlotWait > 0 {
		fmt.Fprintf(w, "  TDMA slot waiting: %d\n", e.SlotWait)
	}
	fmt.Fprintf(w, "  blocking term: %d\n", e.Blocking)
	fmt.Fprintf(w, "  BAT total accesses: %d  -> bus time %d\n", e.BAT, e.BusTime)
	return nil
}
