package core

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/persistence"
)

func fig1Cfgs() []Config {
	return []Config{
		{Arbiter: FP, Persistence: true},
		{Arbiter: RR},
	}
}

func TestCanonicalKeyStable(t *testing.T) {
	a := CanonicalKey(fixtures.Fig1TaskSet(), fig1Cfgs())
	b := CanonicalKey(fixtures.Fig1TaskSet(), fig1Cfgs())
	if a != b {
		t.Errorf("two identical requests hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Errorf("key %q is not 64 lowercase hex chars", a)
	}
}

// TestCanonicalKeySensitivity flips one field at a time and checks the
// key moves: any bit the analysis can depend on must be part of the
// identity, or the serving cache would alias distinct requests.
func TestCanonicalKeySensitivity(t *testing.T) {
	base := CanonicalKey(fixtures.Fig1TaskSet(), fig1Cfgs())
	mutations := map[string]func() string{
		"dmem": func() string {
			ts := fixtures.Fig1TaskSet()
			ts.Platform.DMem++
			return CanonicalKey(ts, fig1Cfgs())
		},
		"slot": func() string {
			ts := fixtures.Fig1TaskSet()
			ts.Platform.SlotSize++
			return CanonicalKey(ts, fig1Cfgs())
		},
		"task name": func() string {
			ts := fixtures.Fig1TaskSet()
			ts.Tasks[1].Name = "renamed"
			return CanonicalKey(ts, fig1Cfgs())
		},
		"task period": func() string {
			ts := fixtures.Fig1TaskSet()
			ts.Tasks[2].Period++
			return CanonicalKey(ts, fig1Cfgs())
		},
		"task MDr": func() string {
			ts := fixtures.Fig1TaskSet()
			ts.Tasks[0].MDr++
			return CanonicalKey(ts, fig1Cfgs())
		},
		"pcb set": func() string {
			ts := fixtures.Fig1TaskSet()
			ts.Tasks[1].PCB = ts.Tasks[1].UCB
			return CanonicalKey(ts, fig1Cfgs())
		},
		"arbiter": func() string {
			cfgs := fig1Cfgs()
			cfgs[1].Arbiter = TDMA
			return CanonicalKey(fixtures.Fig1TaskSet(), cfgs)
		},
		"persistence": func() string {
			cfgs := fig1Cfgs()
			cfgs[0].Persistence = false
			return CanonicalKey(fixtures.Fig1TaskSet(), cfgs)
		},
		"cpro with persistence": func() string {
			cfgs := fig1Cfgs()
			cfgs[0].CPRO = persistence.MultisetUnion
			return CanonicalKey(fixtures.Fig1TaskSet(), cfgs)
		},
		"config order": func() string {
			cfgs := fig1Cfgs()
			cfgs[0], cfgs[1] = cfgs[1], cfgs[0]
			return CanonicalKey(fixtures.Fig1TaskSet(), cfgs)
		},
		"config count": func() string {
			return CanonicalKey(fixtures.Fig1TaskSet(), fig1Cfgs()[:1])
		},
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutations {
		got := mutate()
		if prev, dup := seen[got]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[got] = name
	}
}

// TestCanonicalKeyNormalization: fields the engine ignores must not
// split the cache.
func TestCanonicalKeyNormalization(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// CPRO is ignored without persistence.
	off := []Config{{Arbiter: RR, CPRO: persistence.Union}}
	offMulti := []Config{{Arbiter: RR, CPRO: persistence.FullReload}}
	if CanonicalKey(ts, off) != CanonicalKey(ts, offMulti) {
		t.Error("CPRO split the key of persistence-off configurations")
	}
	// MaxOuterIterations 0 means the documented default of 64.
	def := []Config{{Arbiter: FP}}
	explicit := []Config{{Arbiter: FP, MaxOuterIterations: 64}}
	if CanonicalKey(ts, def) != CanonicalKey(ts, explicit) {
		t.Error("MaxOuterIterations 0 and 64 hash differently")
	}
	other := []Config{{Arbiter: FP, MaxOuterIterations: 32}}
	if CanonicalKey(ts, def) == CanonicalKey(ts, other) {
		t.Error("a non-default iteration cap must change the key")
	}
	// Associativity 0 and 1 are both direct-mapped.
	assoc := fixtures.Fig1TaskSet()
	assoc.Platform.Cache.Associativity = 1
	if CanonicalKey(ts, def) != CanonicalKey(assoc, def) {
		t.Error("associativity 0 vs 1 (same geometry) hash differently")
	}
}

// TestCanonicalKeyPlatformNormalization: platform knobs only some
// arbiters read must hash as zero when no configuration in the request
// uses such an arbiter — two FP requests differing only in the slot
// size are the same analysis and must share one cache entry.
func TestCanonicalKeyPlatformNormalization(t *testing.T) {
	fpOnly := []Config{{Arbiter: FP, Persistence: true}, {Arbiter: Perfect}}
	a := fixtures.Fig1TaskSet()
	b := fixtures.Fig1TaskSet()
	b.Platform.SlotSize = a.Platform.SlotSize + 3
	if CanonicalKey(a, fpOnly) != CanonicalKey(b, fpOnly) {
		t.Error("SlotSize split the key of a request with no RR/TDMA configuration")
	}
	// The regulation parameters are ignored by everything but Regulated.
	c := fixtures.Fig1TaskSet()
	c.Platform.RegBudget = 7
	c.Platform.RegPeriod = 500
	if CanonicalKey(a, fig1Cfgs()) != CanonicalKey(c, fig1Cfgs()) {
		t.Error("regulation parameters split the key of a request with no Regulated configuration")
	}
	// With a Regulated configuration present they are load-bearing.
	reg := fixtures.Fig1TaskSet()
	reg.Platform.RegBudget = 4
	reg.Platform.RegPeriod = 200
	regCfgs := []Config{{Arbiter: Regulated}}
	base := CanonicalKey(reg, regCfgs)
	moreQ := fixtures.Fig1TaskSet()
	moreQ.Platform.RegBudget = 5
	moreQ.Platform.RegPeriod = 200
	if CanonicalKey(moreQ, regCfgs) == base {
		t.Error("RegBudget did not move the key of a Regulated request")
	}
	longerP := fixtures.Fig1TaskSet()
	longerP.Platform.RegBudget = 4
	longerP.Platform.RegPeriod = 300
	if CanonicalKey(longerP, regCfgs) == base {
		t.Error("RegPeriod did not move the key of a Regulated request")
	}
	// ParAware ignores the slot size too: it always serves one access
	// per turn.
	paCfgs := []Config{{Arbiter: ParAware}}
	if CanonicalKey(a, paCfgs) != CanonicalKey(b, paCfgs) {
		t.Error("SlotSize split the key of a ParAware-only request")
	}
}
