package core

import (
	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Reference implementation: the direct, recompute-everything evaluation
// of Eq. (1)–(19) that the analyzer used before the interference tables
// existed. Every task-pair quantity (γ, the CPRO overlaps, the
// hp/hep/lp slices) is rebuilt from the task model on each use, and the
// outer loop re-evaluates every task in every round. It is kept solely
// as the oracle for the differential test: the table-driven analyzer
// must return bit-identical Results. Do not use it for real workloads —
// that is the point.

type refAnalyzer struct {
	ts  *taskmodel.TaskSet
	cfg Config
	r   map[int]taskmodel.Time

	gammaMemo map[refGammaKey]int64
}

type refGammaKey struct{ i, j, core int }

func (a *refAnalyzer) gamma(i, j, core int) int64 {
	k := refGammaKey{i, j, core}
	if g, ok := a.gammaMemo[k]; ok {
		return g
	}
	g := crpd.Gamma(a.ts, a.cfg.CRPD, i, j, core)
	a.gammaMemo[k] = g
	return g
}

func (a *refAnalyzer) bas(i, core int, t taskmodel.Time) int64 {
	ti := a.ts.ByPriority(i)
	total := ti.MD
	for _, tj := range a.ts.HP(i, core) {
		ej := ceilDiv(int64(t), int64(tj.Period))
		g := a.gamma(i, tj.Priority, core)
		if a.cfg.Persistence {
			total += persistence.PersistentDemandWindow(a.ts, a.cfg.CPRO, tj.Priority, i, core, ej, t)
		} else {
			total += ej * tj.MD
		}
		total += ej * g
	}
	return total
}

func (a *refAnalyzer) njobs(k int, tl *taskmodel.Task, t taskmodel.Time) int64 {
	g := a.gamma(k, tl.Priority, tl.Core)
	num := int64(t) + int64(a.r[tl.Priority]) - (tl.MD+g)*int64(a.ts.Platform.DMem)
	n := floorDiv(num, int64(tl.Period))
	if n < 0 {
		return 0
	}
	return n
}

func (a *refAnalyzer) wcout(k int, tl *taskmodel.Task, t taskmodel.Time, n int64) int64 {
	g := a.gamma(k, tl.Priority, tl.Core)
	dmem := int64(a.ts.Platform.DMem)
	num := int64(t) + int64(a.r[tl.Priority]) - (tl.MD+g)*dmem - n*int64(tl.Period)
	w := ceilDiv(num, dmem)
	if w < 0 {
		return 0
	}
	return min64(w, tl.MD+g)
}

func (a *refAnalyzer) contrib(k int, tl *taskmodel.Task, t taskmodel.Time) int64 {
	n := a.njobs(k, tl, t)
	g := a.gamma(k, tl.Priority, tl.Core)
	var w int64
	if a.cfg.Persistence {
		w = persistence.PersistentDemandWindow(a.ts, a.cfg.CPRO, tl.Priority, k, tl.Core, n, t) + n*g
	} else {
		w = n * (tl.MD + g)
	}
	return w + a.wcout(k, tl, t, n)
}

func (a *refAnalyzer) bao(k, y int, t taskmodel.Time) int64 {
	var total int64
	for _, tl := range a.ts.HEP(k, y) {
		total += a.contrib(k, tl, t)
	}
	return total
}

func (a *refAnalyzer) baoLow(i, y int, t taskmodel.Time) int64 {
	var total int64
	for _, tl := range a.ts.LP(i, y) {
		total += a.contrib(i, tl, t)
	}
	return total
}

func (a *refAnalyzer) plus1(i, core int) int64 {
	if len(a.ts.LP(i, core)) > 0 {
		return 1
	}
	return 0
}

func (a *refAnalyzer) bat(i int, t taskmodel.Time) int64 {
	ti := a.ts.ByPriority(i)
	core := ti.Core
	bas := a.bas(i, core, t)
	switch a.cfg.Arbiter {
	case Perfect:
		return bas
	case FP:
		total := bas + a.plus1(i, core)
		var low int64
		for y := 0; y < a.ts.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += a.bao(i, y, t)
			low += a.baoLow(i, y, t)
		}
		return total + min64(bas, low)
	case RR:
		s := int64(a.ts.Platform.SlotSize)
		n := a.ts.LowestPriority()
		total := bas + a.plus1(i, core)
		for y := 0; y < a.ts.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.bao(n, y, t), s*bas)
		}
		return total
	case TDMA:
		s := int64(a.ts.Platform.SlotSize)
		l := int64(a.ts.Platform.NumCores)
		return bas + (l-1)*s*bas + a.plus1(i, core)
	case Regulated:
		n := a.ts.LowestPriority()
		rc := regCapAt(a.ts.Platform, t)
		total := bas + a.plus1(i, core)
		for y := 0; y < a.ts.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.bao(n, y, t), rc+bas)
		}
		return total
	case ParAware:
		n := a.ts.LowestPriority()
		total := bas + a.plus1(i, core)
		for y := 0; y < a.ts.Platform.NumCores; y++ {
			if y == core {
				continue
			}
			total += min64(a.bao(n, y, t), bas)
		}
		return total
	default:
		panic("core: unknown arbiter")
	}
}

func (a *refAnalyzer) responseTime(i int) (taskmodel.Time, bool) {
	ti := a.ts.ByPriority(i)
	dmem := a.ts.Platform.DMem
	r := ti.PD + taskmodel.Time(ti.MD)*dmem
	if cur := a.r[i]; cur > r {
		r = cur
	}
	for {
		var interference taskmodel.Time
		for _, tj := range a.ts.HP(i, ti.Core) {
			interference += taskmodel.Time(ceilDiv(int64(r), int64(tj.Period))) * tj.PD
		}
		next := ti.PD + interference + taskmodel.Time(a.bat(i, r))*dmem
		if next > ti.Deadline {
			return next, false
		}
		if next <= r {
			return r, true
		}
		r = next
	}
}

func (a *refAnalyzer) perfectBusUtil() float64 {
	u := 0.0
	for _, t := range a.ts.Tasks {
		demand := t.MD
		if a.cfg.Persistence {
			evictable := int64(t.PCB.IntersectCount(persistence.EvictingUnion(
				a.ts, a.ts.LowestPriority(), t.Priority, t.Core)))
			if aware := t.MDr + evictable; aware < demand {
				demand = aware
			}
		}
		u += float64(taskmodel.Time(demand)*a.ts.Platform.DMem) / float64(t.Period)
	}
	return u
}

func (a *refAnalyzer) fail(res *Result, failPrio int, proven bool) *Result {
	res.Schedulable = false
	res.Complete = false
	for _, t := range a.ts.Tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name: t.Name, Priority: t.Priority, Core: t.Core,
			WCRT: a.r[t.Priority], Deadline: t.Deadline,
			Schedulable: false,
			Verified:    proven && t.Priority == failPrio,
		})
	}
	return res
}

func (a *refAnalyzer) run() *Result {
	res := &Result{Schedulable: true, Complete: true}
	if a.cfg.Arbiter == Perfect && a.perfectBusUtil() > 1.0 {
		res.Schedulable = false
		for _, t := range a.ts.Tasks {
			res.Tasks = append(res.Tasks, TaskResult{
				Name: t.Name, Priority: t.Priority, Core: t.Core,
				Deadline: t.Deadline, Schedulable: false, Verified: true,
			})
		}
		return res
	}
	converged := false
	for iter := 0; iter < a.cfg.MaxOuterIterations; iter++ {
		res.OuterIterations = iter + 1
		changed := false
		for _, t := range a.ts.Tasks {
			r, ok := a.responseTime(t.Priority)
			if !ok {
				a.r[t.Priority] = r
				return a.fail(res, t.Priority, true)
			}
			if r != a.r[t.Priority] {
				a.r[t.Priority] = r
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		return a.fail(res, a.ts.LowestPriority(), false)
	}
	for _, t := range a.ts.Tasks {
		res.Tasks = append(res.Tasks, TaskResult{
			Name: t.Name, Priority: t.Priority, Core: t.Core,
			WCRT: a.r[t.Priority], Deadline: t.Deadline,
			Schedulable: true, Verified: true,
		})
	}
	return res
}

// AnalyzeReference runs the retained naive implementation of the full
// analysis. It exists as the oracle of the differential test and always
// returns results bit-identical to Analyze.
func AnalyzeReference(ts *taskmodel.TaskSet, cfg Config) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.ValidateFor(ts.Platform); err != nil {
		return nil, err
	}
	if cfg.MaxOuterIterations == 0 {
		cfg.MaxOuterIterations = 64
	}
	a := &refAnalyzer{
		ts:        ts,
		cfg:       cfg,
		r:         make(map[int]taskmodel.Time, len(ts.Tasks)),
		gammaMemo: make(map[refGammaKey]int64),
	}
	for _, t := range ts.Tasks {
		a.r[t.Priority] = t.PD + taskmodel.Time(t.MD)*ts.Platform.DMem
	}
	return a.run(), nil
}
