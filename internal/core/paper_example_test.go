package core

import (
	"testing"

	"repro/internal/fixtures"
	"repro/internal/taskmodel"
)

// These tests replay Section IV's worked example (Fig. 1) number by
// number: the baseline Eq. (12)–(13) values and the persistence-aware
// counts of Eq. (15) and the remark below Lemma 2.
//
// The window analysed is R_2 with E_1(R_2)=3 jobs of τ1 and a remote
// estimate R_3 = 26 giving N_{2,3}^y = 4 full jobs of τ3.
const exampleWindow = taskmodel.Time(100)

func exampleAnalyzer(t *testing.T, persistence bool) *Analyzer {
	t.Helper()
	ts := fixtures.Fig1TaskSet()
	a, err := NewAnalyzer(ts, Config{Arbiter: RR, Persistence: persistence})
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	a.R[2] = 26 // τ3's response time estimate used by the example
	return a
}

func TestFig1BaselineBAS(t *testing.T) {
	a := exampleAnalyzer(t, false)
	// Eq. (12): BAS_2^x(R_2) = MD_2 + 3×(MD_1 + γ_{2,1,x}) = 8 + 3×8 = 32.
	if got := a.BAS(1, 0, exampleWindow); got != 32 {
		t.Errorf("BAS_2^x = %d, want 32", got)
	}
}

func TestFig1BaselineBAO(t *testing.T) {
	a := exampleAnalyzer(t, false)
	// Eq. (13): BAO_3^y(R_2) = N×MD_3 = 4×6 = 24 (carry-out is zero at
	// this window).
	if got := a.BAO(2, 1, exampleWindow); got != 24 {
		t.Errorf("BAO_3^y = %d, want 24", got)
	}
}

func TestFig1BaselineBAT(t *testing.T) {
	a := exampleAnalyzer(t, false)
	// Eq. (11): BAS + min(BAO_3^y; s×BAS) with s=1 and no trailing +1
	// because τ2 is the lowest-priority task of core π_x.
	if got := a.BAT(1, exampleWindow); got != 56 {
		t.Errorf("BAT_2^x = %d, want 32 + min(24,32) = 56", got)
	}
}

func TestFig1PersistenceAwareBAS(t *testing.T) {
	a := exampleAnalyzer(t, true)
	// Eq. (15): MD_2 + M̂D_1(3) + ρ̂_{1,2,x}(3) + 3γ_{2,1,x}
	//         = 8 + 8 + 4 + 6 = 26, versus 32 for the baseline.
	if got := a.BAS(1, 0, exampleWindow); got != 26 {
		t.Errorf("B̂AS_2^x = %d, want 26", got)
	}
}

func TestFig1PersistenceAwareBAO(t *testing.T) {
	a := exampleAnalyzer(t, true)
	// Below Lemma 2: MD_3 + 3×MD_3^r = 9, versus 24 for the baseline.
	if got := a.BAO(2, 1, exampleWindow); got != 9 {
		t.Errorf("B̂AO_3^y = %d, want 9", got)
	}
}

func TestFig1PersistenceAwareBAT(t *testing.T) {
	a := exampleAnalyzer(t, true)
	if got := a.BAT(1, exampleWindow); got != 35 {
		t.Errorf("B̂AT_2^x = %d, want 26 + min(9,26) = 35", got)
	}
}

func TestFig1GammaMemoized(t *testing.T) {
	a := exampleAnalyzer(t, false)
	if got := a.gamma(1, 0, 0); got != 2 {
		t.Errorf("γ_{2,1,x} = %d, want 2", got)
	}
	// Second call hits the memo and must agree.
	if got := a.gamma(1, 0, 0); got != 2 {
		t.Errorf("memoized γ = %d, want 2", got)
	}
}

func TestFig1PlusOneRule(t *testing.T) {
	a := exampleAnalyzer(t, false)
	// τ1 has τ2 below it on core 0: +1 applies.
	if got := a.plus1(0, 0); got != 1 {
		t.Errorf("plus1(τ1) = %d, want 1", got)
	}
	// τ2 is the lowest-priority task of core 0: no +1.
	if got := a.plus1(1, 0); got != 0 {
		t.Errorf("plus1(τ2) = %d, want 0", got)
	}
	// τ3 is the lowest of core 1.
	if got := a.plus1(2, 1); got != 0 {
		t.Errorf("plus1(τ3) = %d, want 0", got)
	}
}

func TestFig1DominationOfLemma1(t *testing.T) {
	base := exampleAnalyzer(t, false)
	aware := exampleAnalyzer(t, true)
	for _, w := range []taskmodel.Time{1, 10, 40, 80, 100, 120, 500} {
		for _, prio := range []int{0, 1} {
			b := base.BAS(prio, 0, w)
			h := aware.BAS(prio, 0, w)
			if h > b {
				t.Errorf("window %d prio %d: B̂AS %d > BAS %d", w, prio, h, b)
			}
		}
		if h, b := aware.BAO(2, 1, w), base.BAO(2, 1, w); h > b {
			t.Errorf("window %d: B̂AO %d > BAO %d", w, h, b)
		}
	}
}
