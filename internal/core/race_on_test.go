//go:build race

package core

// raceEnabled reports whether the race detector instruments this
// build, so wall-clock gates can skip themselves.
const raceEnabled = true
