package core

import (
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Options carries cross-cutting knobs orthogonal to the analysis
// variant selected by Config. The zero value reproduces the plain
// entry points exactly.
type Options struct {
	// Observer receives analyzer telemetry: counters and histograms
	// for the fixed-point hot path, per-task analysis spans, and
	// convergence traces (see internal/telemetry). nil — the default —
	// keeps the hot path uninstrumented; the inner loop stays
	// allocation-free (pinned by TestResponseTimeZeroAlloc).
	Observer *telemetry.Observer
	// Memo, when non-nil, is a shared content-addressed store
	// (memo.go) working at two grains: the interference tables fill
	// their columns from it, and the breakpoint-curve backbones built
	// from those columns are shared through it too — so near-duplicate
	// task sets analyzed against the same store recompute only what
	// their differences invalidate, down to reusing whole materialized
	// curves copy-free. The store is safe for concurrent use across
	// analyses. nil — the default — computes everything locally,
	// exactly as before.
	Memo *MemoStore
}

// SetObserver attaches (or, with nil, detaches) a telemetry observer.
// Not safe to call while Run is executing.
func (a *Analyzer) SetObserver(obs *telemetry.Observer) { a.obs = obs }

// AnalyzeOpts is Analyze with options.
func AnalyzeOpts(ts *taskmodel.TaskSet, cfg Config, opts Options) (*Result, error) {
	a, err := NewAnalyzer(ts, cfg)
	if err != nil {
		return nil, err
	}
	a.obs = opts.Observer
	return a.Run(), nil
}

// AnalyzeAllOpts is AnalyzeAll with options.
func AnalyzeAllOpts(ts *taskmodel.TaskSet, cfgs []Config, opts Options) ([]*Result, error) {
	return analyzeAllObs(ts, cfgs, opts.Observer, opts.Memo)
}

// label is the variant name used in spans and logs, matching the
// series names of internal/experiments ("FP", "RR-CP", ...).
func (c Config) label() string {
	s := c.Arbiter.String()
	if c.Persistence {
		s += "-CP"
	}
	return s
}
