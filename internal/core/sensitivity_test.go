package core

import (
	"math/rand"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

func soloTDMASet(dmem taskmodel.Time) *taskmodel.TaskSet {
	n := 4
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     dmem,
		SlotSize: 2,
	}
	solo := &taskmodel.Task{
		Name: "solo", Core: 0, Priority: 0,
		PD: 50, MD: 10, MDr: 10, Period: 1000, Deadline: 1000,
		ECB: cacheset.Of(n, 0), UCB: cacheset.New(n), PCB: cacheset.New(n),
	}
	return taskmodel.NewTaskSet(plat, []*taskmodel.Task{solo})
}

func TestMaxDMemExactOnSoloTDMA(t *testing.T) {
	// R = PD + MD·(1+(m−1)·s)·d = 50 + 30d ≤ 1000 ⇒ d ≤ 31.
	ts := soloTDMASet(5)
	got, err := MaxDMem(ts, Config{Arbiter: TDMA}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 31 {
		t.Fatalf("MaxDMem = %d, want 31", got)
	}
	// Verify the edge explicitly.
	if res, _ := Analyze(cloneWithDMem(ts, 31), Config{Arbiter: TDMA}); !res.Schedulable {
		t.Fatal("reported edge not schedulable")
	}
	if res, _ := Analyze(cloneWithDMem(ts, 32), Config{Arbiter: TDMA}); res.Schedulable {
		t.Fatal("edge+1 unexpectedly schedulable")
	}
}

func TestMaxDMemUnschedulableAtOne(t *testing.T) {
	ts := soloTDMASet(5)
	ts.Tasks[0].Deadline = 60 // 50 + 30·1 = 80 > 60 even at d=1
	ts.Tasks[0].Period = 60
	got, err := MaxDMem(ts, Config{Arbiter: TDMA}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("MaxDMem = %d, want 0", got)
	}
}

func TestMaxDMemHitsLimit(t *testing.T) {
	ts := soloTDMASet(5)
	got, err := MaxDMem(ts, Config{Arbiter: TDMA}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("MaxDMem(limit=10) = %d, want 10 (schedulable everywhere below the edge)", got)
	}
}

func TestCriticalScalingSoloTask(t *testing.T) {
	// Solo TDMA task: R = 200 at d=5; schedulable iff D = 1000k >= 200,
	// so the critical scaling is 0.2.
	ts := soloTDMASet(5)
	k, err := CriticalScaling(ts, Config{Arbiter: TDMA}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0.19 || k > 0.21 {
		t.Fatalf("CriticalScaling = %g, want ~0.2", k)
	}
	// The reported factor is actually schedulable; slightly below is not.
	if res, _ := Analyze(cloneScaled(ts, k), Config{Arbiter: TDMA}); !res.Schedulable {
		t.Fatal("reported scaling not schedulable")
	}
	if res, _ := Analyze(cloneScaled(ts, k*0.95), Config{Arbiter: TDMA}); res.Schedulable {
		t.Fatal("5%% below the critical scaling unexpectedly schedulable")
	}
}

func TestCriticalScalingOnGeneratedSets(t *testing.T) {
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = 2
	cfg.TasksPerCore = 4
	cfg.CoreUtilization = 0.3
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		anaCfg := Config{Arbiter: RR, Persistence: true}
		k, err := CriticalScaling(ts, anaCfg, 1e-3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base, err := Analyze(ts, anaCfg)
		if err != nil {
			t.Fatal(err)
		}
		if base.Schedulable && k > 1.0+1e-9 {
			t.Errorf("seed %d: schedulable set but critical scaling %g > 1", seed, k)
		}
		if !base.Schedulable && k < 1.0-1e-9 {
			t.Errorf("seed %d: unschedulable set but critical scaling %g < 1", seed, k)
		}
		// Persistence awareness can only lower the critical scaling.
		kBase, err := CriticalScaling(ts, Config{Arbiter: RR}, 1e-3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if k > kBase*1.01 {
			t.Errorf("seed %d: CP critical scaling %g above baseline %g", seed, k, kBase)
		}
	}
}

func TestCloneScaledClampsDeadlines(t *testing.T) {
	ts := soloTDMASet(5)
	scaled := cloneScaled(ts, 0.0001)
	for _, task := range scaled.Tasks {
		if task.Period < 1 || task.Deadline < 1 || task.Deadline > task.Period {
			t.Fatalf("scaled task has invalid timing: T=%d D=%d", task.Period, task.Deadline)
		}
	}
	// Scaling must not mutate the original.
	if ts.Tasks[0].Period != 1000 {
		t.Fatal("cloneScaled mutated the input")
	}
}
