package core

import (
	"fmt"

	"repro/internal/cacheset"
	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Precomputed interference tables.
//
// Every quantity cached here depends only on the task set and the CRPD
// approach — never on the response-time estimates R — so computing it
// once per analysis is sound: the fixed-point iteration reads exactly
// the same values it would have recomputed. The expensive terms are the
// cache-set operations behind γ_{i,j,x} (Eq. 2), the CPRO union
// overlaps |PCB_j ∩ ∪ ECB_s| (Eq. 14) and the per-evictor
// |PCB_j ∩ ECB_s| counts of the multiset bound; the naive analyzer
// rebuilt all of them for every task pair in every inner iteration.
//
// Everything is filled lazily — rows (the per-level task slices) on
// first use of an analysis level, pair entries (the set-derived
// numbers) on first use of a (level, task) pair. Laziness matters
// twice: the OPA search (internal/opa) probes one level per analyzer,
// and the cheaper arbiters touch only a fraction of the pairs (TDMA
// reads same-core pairs only; RR reads remote pairs at a single level),
// so an eager O(n²) set-work build would cost more than it saves.
//
// Tables are NOT safe for concurrent use: lazy filling mutates shared
// state. Analyzers sharing one Tables (AnalyzeAll) must run
// sequentially; AnalyzeBatch gives each worker its own Tables.

// taskRef pairs a task with its dense index into Tables.tasks so hot
// loops can reach per-task caches without map lookups.
type taskRef struct {
	t   *taskmodel.Task
	idx int
}

// pairTab holds the loop-invariant terms for one (level i, task j)
// pair, with j's own core implied: every call site of γ and the CPRO
// bounds passes core(j), so a two-dimensional table suffices.
type pairTab struct {
	// gamma is γ_{i,j,core(j)} under the tables' CRPD approach.
	gamma int64
	// unionOverlap is |PCB_j ∩ ∪_{s ∈ hep(i)∩Γcore(j)\{j}} ECB_s|,
	// the (n−1)-multiplier of Eq. (14).
	unionOverlap int64
	// evictors are the per-evictor terms of the multiset CPRO bound.
	evictors []persistence.EvictorTerm

	gammaBuilt   bool
	persistBuilt bool
}

// row holds the task slices the level-i equations iterate over.
type row struct {
	// hp lists the same-core higher-priority tasks (BAS, Eq. 1, and the
	// processor-interference sum of Eq. 19).
	hp []taskRef
	// hep[y] lists hep(i) ∩ Γ_y per core (BAO, Eq. 3).
	hep [][]taskRef
	// lp[y] lists lp(i) ∩ Γ_y per core (BAOLow, Eq. 7).
	lp [][]taskRef
	// hasLP reports a lower-priority task on i's own core (the +1 term).
	hasLP bool
	// pair is indexed by task index, attached on first pair touch
	// (ensurePairs) and filled lazily per entry.
	pair []pairTab
	// built marks the row's task slices as constructed; the pair column
	// attaches separately so memo-served analyses never need it.
	built bool
}

// Tables caches the loop-invariant interference quantities of one task
// set under one CRPD approach. CPRO approach and persistence on/off are
// call-time choices — the cached data covers all of them — so one
// Tables serves every Config sharing the CRPD approach.
type Tables struct {
	ts   *taskmodel.TaskSet
	crpd crpd.Approach

	// tasks is ts.Tasks (priority-ascending); prioIdx maps a priority
	// value to its index.
	tasks   []*taskmodel.Task
	prioIdx map[int]int
	// pcb caches |PCB_j| (Eq. 10 residual term, FullReload CPRO).
	pcb []int64
	// byCore lists each core's tasks in priority-ascending order — the
	// Γ_x iteration sets of the γ fast path.
	byCore [][]taskRef

	// rows is indexed by level. Value slices (one allocation for all
	// levels) keep the table build off the allocator's hot path.
	rows []row
	// pairBlock is the n×n backing of the rows' pair slices, allocated
	// once on the first pair touch anywhere — an analysis whose curves
	// are all served from the shared store never pays for it.
	pairBlock []pairTab
	// coreOff are the prefix sums of the byCore sizes: core y's tasks
	// occupy [coreOff[y], coreOff[y+1]) slots of any per-task flat
	// backing laid out core-by-core.
	coreOff []int
	// coreIdx mirrors byCore as dense task indices. Because hep∩Γ_y and
	// lp∩Γ_y partition byCore[y] in order at every level, one per-core
	// column serves all levels' remote cursors (only the split differs).
	coreIdx [][]int32
	// hepCnt[ii*m+y] is |hep(ii) ∩ Γ_y| — the priority cutoff splitting
	// byCore[y] into the level's hep prefix and lp tail. It answers the
	// shape questions of the warm path (curve-key cutoffs, hasLP) without
	// materializing the row's task slices.
	hepCnt []int32
	// curves holds the per-level breakpoint-curve materializations of
	// the event-driven fixed point (curves.go), filled lazily like the
	// rows and shared across configurations.
	curves []levelCurves
	// hepECB[j] is ∪_{h ∈ Γcore(j) ∩ hep(j)} ECB_h, the evicting union
	// of Eq. (2); hepECBDone flags cores whose column is built. The
	// per-core build is a single running union over byCore, so the whole
	// column costs |Γ_x| set unions instead of O(|Γ_x|²) rebuilds.
	hepECB     []cacheset.Set
	hepECBDone []bool
	// scratch collects evictor ECBs during pair fills without
	// reallocating.
	scratch []cacheset.Set

	// memo, when non-nil, is the shared content-addressed store
	// (memo.go): curve materializations fetch whole backbones from it
	// and cold builds fill whole pair columns from it instead of
	// computing per pair. gammaDig/persistDig cache the per-task
	// digests; chainKeys/chainWM are the dense Merkle-chain arena
	// (chainSlot) and colKeys the assembled curve keys; kw is the
	// reusable hash writer all key assembly runs through (keyWriter).
	memo       *MemoStore
	gammaDig   []memoKey
	persistDig []memoKey
	chainKeys  []memoKey
	chainWM    []int
	colKeys    map[uint64]memoKey
	kw         hashWriter
}

// PrecomputeTables prepares lazily-filled interference tables for the
// task set under the given CRPD approach. The task set must already be
// validated and must not be mutated while the tables are in use.
func PrecomputeTables(ts *taskmodel.TaskSet, ap crpd.Approach) *Tables {
	tb := &Tables{
		ts:         ts,
		crpd:       ap,
		tasks:      ts.Tasks,
		prioIdx:    make(map[int]int, len(ts.Tasks)),
		pcb:        make([]int64, len(ts.Tasks)),
		byCore:     make([][]taskRef, ts.Platform.NumCores),
		rows:       make([]row, len(ts.Tasks)),
		hepECB:     make([]cacheset.Set, len(ts.Tasks)),
		hepECBDone: make([]bool, ts.Platform.NumCores),
	}
	for i, t := range ts.Tasks {
		tb.prioIdx[t.Priority] = i
		tb.pcb[i] = int64(t.PCB.Count())
		tb.byCore[t.Core] = append(tb.byCore[t.Core], taskRef{t: t, idx: i})
	}
	tb.coreOff = make([]int, ts.Platform.NumCores+1)
	for y, refs := range tb.byCore {
		tb.coreOff[y+1] = tb.coreOff[y] + len(refs)
	}
	tb.coreIdx = make([][]int32, ts.Platform.NumCores)
	idxBacking := make([]int32, len(ts.Tasks))
	for y, refs := range tb.byCore {
		part := idxBacking[tb.coreOff[y]:tb.coreOff[y+1]]
		for i, ref := range refs {
			part[i] = int32(ref.idx)
		}
		tb.coreIdx[y] = part
	}
	// Levels (tb.tasks) and byCore are both priority-ascending, so each
	// per-core cutoff column is a single merge walk.
	m := ts.Platform.NumCores
	tb.hepCnt = make([]int32, len(ts.Tasks)*m)
	for y, refs := range tb.byCore {
		p := 0
		for ii, t := range tb.tasks {
			for p < len(refs) && refs[p].t.Priority <= t.Priority {
				p++
			}
			tb.hepCnt[ii*m+y] = int32(p)
		}
	}
	return tb
}

// hepCount returns |hep(ii) ∩ Γ_y| without building the level's row.
func (tb *Tables) hepCount(ii, y int) int {
	return int(tb.hepCnt[ii*tb.ts.Platform.NumCores+y])
}

// hasLP reports a lower-priority task on level ii's own core (the +1
// blocking term) without building the row.
func (tb *Tables) hasLP(ii int) bool {
	y := tb.tasks[ii].Core
	return tb.hepCount(ii, y) < len(tb.byCore[y])
}

// hepEcb returns the cached evicting union for task jj, building its
// core's whole column on first access.
func (tb *Tables) hepEcb(jj int) cacheset.Set {
	core := tb.tasks[jj].Core
	if !tb.hepECBDone[core] {
		u := cacheset.New(tb.ts.Platform.Cache.NumSets)
		for _, ref := range tb.byCore[core] {
			u.UnionInPlace(ref.t.ECB)
			tb.hepECB[ref.idx] = u.Clone()
		}
		tb.hepECBDone[core] = true
	}
	return tb.hepECB[jj]
}

// row returns level ii's task slices, built on first access. The build
// involves no cache-set work.
func (tb *Tables) row(ii int) *row {
	r := &tb.rows[ii]
	if r.built {
		return r
	}
	ti := tb.tasks[ii]
	m := tb.ts.Platform.NumCores
	n := len(tb.tasks)
	r.built = true
	r.hp = make([]taskRef, 0, len(tb.byCore[ti.Core]))
	// hep[y] ∪ lp[y] partition Γ_y; byCore is priority-ascending, so
	// the boundary index gives both slices exact, growth-free capacity
	// out of a single backing array shared by all cores (laid out at
	// the coreOff offsets).
	hdr := make([][]taskRef, 2*m)
	r.hep, r.lp = hdr[:m:m], hdr[m:]
	backing := make([]taskRef, n)
	for y := 0; y < m; y++ {
		split := 0
		for _, ref := range tb.byCore[y] {
			if ref.t.Priority > ti.Priority {
				break
			}
			split++
		}
		part := backing[tb.coreOff[y]:tb.coreOff[y+1]]
		r.hep[y] = part[:0:split]
		r.lp[y] = part[split:split]
	}
	for jj, tj := range tb.tasks {
		ref := taskRef{t: tj, idx: jj}
		switch {
		case tj.Priority < ti.Priority:
			if tj.Core == ti.Core {
				r.hp = append(r.hp, ref)
			}
			r.hep[tj.Core] = append(r.hep[tj.Core], ref)
		case tj.Priority == ti.Priority:
			r.hep[tj.Core] = append(r.hep[tj.Core], ref)
		default:
			r.lp[tj.Core] = append(r.lp[tj.Core], ref)
			if tj.Core == ti.Core {
				r.hasLP = true
			}
		}
	}
	return r
}

// ensurePairs attaches level ii's pair column. Without a memo store
// the n×n backing is allocated once and shared by all rows — every
// level will need its column. With a store attached most columns are
// never touched (backbones arrive memo-served), so each row gets its
// own n-sized column on demand and the quadratic block is never paid.
func (tb *Tables) ensurePairs(ii int, r *row) {
	if r.pair != nil {
		return
	}
	n := len(tb.tasks)
	if tb.memo != nil {
		r.pair = make([]pairTab, n)
		return
	}
	if tb.pairBlock == nil {
		tb.pairBlock = make([]pairTab, n*n)
	}
	r.pair = tb.pairBlock[ii*n : (ii+1)*n : (ii+1)*n]
}

// pair returns the (level ii, task jj) entry with the γ column filled.
// The default ECB-union approach is computed in place from the cached
// evicting union and the core's priority-ordered task list — Eq. (2)
// with zero allocations; other approaches go through crpd.Gamma.
func (tb *Tables) pair(ii int, r *row, jj int) *pairTab {
	if r.pair == nil {
		tb.ensurePairs(ii, r)
	}
	p := &r.pair[jj]
	if !p.gammaBuilt {
		p.gamma = tb.computeGamma(ii, jj)
		p.gammaBuilt = true
	}
	return p
}

// computeGamma evaluates γ_{ii,jj,core(jj)} directly — the shared body
// of the per-pair fill and the memoized column builds, so both paths
// produce bit-identical values.
func (tb *Tables) computeGamma(ii, jj int) int64 {
	ti, tj := tb.tasks[ii], tb.tasks[jj]
	switch {
	case tj.Priority >= ti.Priority:
		return 0 // τ_j cannot preempt level i
	case tb.crpd == crpd.ECBUnion:
		ecbs := tb.hepEcb(jj)
		var worst int64
		for _, g := range tb.byCore[tj.Core] {
			if g.t.Priority <= tj.Priority {
				continue // evictor, not affected
			}
			if g.t.Priority > ti.Priority {
				break // byCore is priority-ascending
			}
			if c := int64(g.t.UCB.IntersectCount(ecbs)); c > worst {
				worst = c
			}
		}
		return worst
	default:
		return crpd.Gamma(tb.ts, tb.crpd, ti.Priority, tj.Priority, tj.Core)
	}
}

// pairPersist additionally fills the CPRO overlap columns. The evictor
// set hep(i) ∩ Γcore(j) \ {j} is read off the row's hep slice, so the
// fill performs exactly the |hep| intersections the bound needs and
// nothing else.
func (tb *Tables) pairPersist(ii int, r *row, jj int) *pairTab {
	p := tb.pair(ii, r, jj)
	if p.persistBuilt {
		return p
	}
	p.unionOverlap, p.evictors = tb.computePersist(r.hep[tb.tasks[jj].Core], jj)
	p.persistBuilt = true
	return p
}

// computePersist evaluates task jj's CPRO terms against the evictor
// prefix hep — the shared body of the per-pair fill and the memoized
// column builds. The evictor slice is only allocated when the union
// overlap is positive, exactly as the original per-pair fill did, so
// memoized and direct entries are bit-identical.
func (tb *Tables) computePersist(hep []taskRef, jj int) (int64, []persistence.EvictorTerm) {
	tj := tb.tasks[jj]
	tb.scratch = tb.scratch[:0]
	for _, s := range hep {
		if s.idx == jj {
			continue
		}
		tb.scratch = append(tb.scratch, s.t.ECB)
	}
	unionOverlap := int64(tj.PCB.IntersectCountUnion(tb.scratch...))
	var evictors []persistence.EvictorTerm
	if unionOverlap > 0 {
		evictors = make([]persistence.EvictorTerm, 0, len(tb.scratch))
		for _, s := range hep {
			if s.idx == jj {
				continue
			}
			if ov := int64(tj.PCB.IntersectCount(s.t.ECB)); ov > 0 {
				evictors = append(evictors, persistence.EvictorTerm{Period: s.t.Period, Overlap: ov})
			}
		}
	}
	return unionOverlap, evictors
}

// compatible reports whether the tables, built for their original task
// set, remain valid for ts: same shape and same scalar parameters per
// task. Cache footprints are assumed identical (the intended use is the
// d_mem sensitivity probes, which clone tasks verbatim); callers that
// alter ECB/UCB/PCB sets must precompute fresh tables.
func (tb *Tables) compatible(ts *taskmodel.TaskSet) error {
	if ts.Platform.NumCores != tb.ts.Platform.NumCores {
		return fmt.Errorf("core: tables built for %d cores, task set has %d",
			tb.ts.Platform.NumCores, ts.Platform.NumCores)
	}
	if len(ts.Tasks) != len(tb.tasks) {
		return fmt.Errorf("core: tables built for %d tasks, task set has %d",
			len(tb.tasks), len(ts.Tasks))
	}
	for i, t := range ts.Tasks {
		o := tb.tasks[i]
		if t.Priority != o.Priority || t.Core != o.Core ||
			t.PD != o.PD || t.MD != o.MD || t.MDr != o.MDr ||
			t.Period != o.Period || t.Deadline != o.Deadline {
			return fmt.Errorf("core: task %q differs from the one the tables were built for", t.Name)
		}
	}
	return nil
}
