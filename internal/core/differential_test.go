package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/persistence"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// The differential test: the table-driven analyzer must return
// bit-identical Results to the retained naive reference across a
// fuzzed corpus — every arbiter, persistence on and off, and every
// CPRO approach, over task sets spanning schedulable, borderline and
// aborting regimes.

func differentialCorpus(t *testing.T, count int) []*taskmodel.TaskSet {
	t.Helper()
	var out []*taskmodel.TaskSet
	utils := []float64{0.2, 0.4, 0.6, 0.8, 0.95}
	coreCounts := []int{2, 4}
	tasksPerCore := []int{3, 6}
	seed := int64(0)
	for len(out) < count {
		cfg := taskgen.DefaultConfig()
		cfg.Platform.NumCores = coreCounts[seed%int64(len(coreCounts))]
		cfg.TasksPerCore = tasksPerCore[(seed/2)%int64(len(tasksPerCore))]
		cfg.CoreUtilization = utils[(seed/4)%int64(len(utils))]
		pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ts)
		seed++
	}
	return out
}

func differentialConfigs() []Config {
	var cfgs []Config
	for _, arb := range []Arbiter{FP, RR, TDMA, Perfect} {
		cfgs = append(cfgs, Config{Arbiter: arb, Persistence: false})
		for _, cpro := range []persistence.CPROApproach{
			persistence.Union, persistence.MultisetUnion,
			persistence.FullReload, persistence.None,
		} {
			cfgs = append(cfgs, Config{Arbiter: arb, Persistence: true, CPRO: cpro})
		}
	}
	return cfgs
}

func TestDifferentialTableVsReference(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 40
	}
	cfgs := differentialConfigs()
	aborts := 0
	for si, ts := range differentialCorpus(t, count) {
		for _, cfg := range cfgs {
			got, err := Analyze(ts, cfg)
			if err != nil {
				t.Fatalf("set %d %+v: Analyze: %v", si, cfg, err)
			}
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatalf("set %d %+v: AnalyzeReference: %v", si, cfg, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("set %d %+v: results diverge\n table: %+v\n naive: %+v", si, cfg, got, want)
			}
			if !got.Complete {
				aborts++
			}
		}
	}
	if aborts == 0 {
		t.Error("corpus never exercised the abort path; tighten the generator utilizations")
	}
}

// TestDifferentialSharedTables repeats the comparison through the
// AnalyzeAll path, where one Tables instance is shared across all
// configurations of a task set.
func TestDifferentialSharedTables(t *testing.T) {
	count := 40
	if testing.Short() {
		count = 10
	}
	cfgs := differentialConfigs()
	for si, ts := range differentialCorpus(t, count) {
		all, err := AnalyzeAll(ts, cfgs)
		if err != nil {
			t.Fatalf("set %d: AnalyzeAll: %v", si, err)
		}
		for ci, cfg := range cfgs {
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all[ci], want) {
				t.Fatalf("set %d %+v: shared-tables result diverges\n table: %+v\n naive: %+v",
					si, cfg, all[ci], want)
			}
		}
	}
}

// TestDifferentialBatch covers the worker-pool entry point end to end.
func TestDifferentialBatch(t *testing.T) {
	sets := differentialCorpus(t, 12)
	cfgs := differentialConfigs()
	reqs := make([]BatchRequest, len(sets))
	for i, ts := range sets {
		reqs[i] = BatchRequest{TS: ts, Cfgs: cfgs}
	}
	got, err := AnalyzeBatch(reqs, 4)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	for i, ts := range sets {
		for ci, cfg := range cfgs {
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[i][ci], want) {
				t.Fatalf("req %d cfg %+v: batch result diverges", i, cfg)
			}
		}
	}
	if _, err := AnalyzeBatch(nil, 0); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestTablesReuseAcrossDMem pins the sensitivity-analysis contract:
// tables built once remain valid for clones differing only in d_mem.
func TestTablesReuseAcrossDMem(t *testing.T) {
	for _, ts := range differentialCorpus(t, 4) {
		cfg := Config{Arbiter: RR, Persistence: true}
		tbl := PrecomputeTables(ts, cfg.CRPD)
		for _, d := range []taskmodel.Time{1, 3, 17} {
			clone := cloneWithDMem(ts, d)
			a, err := NewAnalyzerWithTables(clone, cfg, tbl)
			if err != nil {
				t.Fatal(err)
			}
			want, err := AnalyzeReference(clone, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.Run(); !reflect.DeepEqual(got, want) {
				t.Fatalf("d_mem %d: reused-tables result diverges", d)
			}
		}
	}
}

// TestAnalyzerWithTablesRejectsMismatch ensures the compatibility check
// refuses task sets the cached terms were not built for.
func TestAnalyzerWithTablesRejectsMismatch(t *testing.T) {
	sets := differentialCorpus(t, 2)
	tbl := PrecomputeTables(sets[0], 0)
	scaled := cloneScaled(sets[0], 2.0)
	if _, err := NewAnalyzerWithTables(scaled, Config{Arbiter: FP}, tbl); err == nil {
		t.Error("period-scaled clone accepted against stale tables")
	}
	if _, err := NewAnalyzerWithTables(sets[1], Config{Arbiter: FP}, tbl); err == nil {
		t.Error("unrelated task set accepted against foreign tables")
	}
	if _, err := NewAnalyzerWithTables(sets[0], Config{Arbiter: FP, CRPD: 2}, tbl); err == nil {
		t.Error("CRPD mismatch accepted")
	}
}
