package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// The differential test: the table-driven analyzer must return
// bit-identical Results to the retained naive reference across a
// fuzzed corpus — every arbiter, persistence on and off, and every
// CPRO approach, over task sets spanning schedulable, borderline and
// aborting regimes.

func differentialCorpus(t *testing.T, count int) []*taskmodel.TaskSet {
	t.Helper()
	var out []*taskmodel.TaskSet
	utils := []float64{0.2, 0.4, 0.6, 0.8, 0.95}
	coreCounts := []int{2, 4}
	tasksPerCore := []int{3, 6}
	// The event-driven engine snaps iterates between breakpoints whose
	// spacing depends on d_mem (carry-out ramp steps) and whose BAT
	// combination depends on the slot size (RR/TDMA), so both are fuzz
	// dimensions.
	dmems := []taskmodel.Time{2, 5, 9}
	slots := []int{1, 2, 4}
	// Regulation parameters stress the Regulated arbiter's two regimes:
	// Q=1 with a long period keeps remote cores budget-starved (the
	// regCap(t)+bas cap dominates), generous budgets make the plain
	// bao term dominate, and a short period exercises many replenishment
	// breakpoints per window.
	regBudgets := []int64{1, 4, 12}
	regPeriods := []taskmodel.Time{50, 150, 400}
	seed := int64(0)
	for len(out) < count {
		cfg := taskgen.DefaultConfig()
		cfg.Platform.NumCores = coreCounts[seed%int64(len(coreCounts))]
		cfg.TasksPerCore = tasksPerCore[(seed/2)%int64(len(tasksPerCore))]
		cfg.CoreUtilization = utils[(seed/4)%int64(len(utils))]
		cfg.Platform.DMem = dmems[(seed/3)%int64(len(dmems))]
		cfg.Platform.SlotSize = slots[(seed/7)%int64(len(slots))]
		cfg.Platform.RegBudget = regBudgets[(seed/5)%int64(len(regBudgets))]
		cfg.Platform.RegPeriod = regPeriods[(seed/11)%int64(len(regPeriods))]
		pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ts)
		seed++
	}
	return out
}

func differentialConfigs() []Config {
	// Every declared arbiter (including Regulated and ParAware) crossed
	// with persistence off and each CPRO approach. The CRPD approach
	// rotates through all five values across the grid rather than
	// multiplying it: every approach still meets several arbiters and
	// vice versa, at a fifth of the cost of the full product.
	crpds := []crpd.Approach{
		crpd.ECBUnion, crpd.UCBOnly, crpd.ECBOnly, crpd.UCBUnion, crpd.Combined,
	}
	var cfgs []Config
	for ai, arb := range Arbiters() {
		cfgs = append(cfgs, Config{Arbiter: arb, Persistence: false, CRPD: crpds[ai%len(crpds)]})
		for pi, cpro := range []persistence.CPROApproach{
			persistence.Union, persistence.MultisetUnion,
			persistence.FullReload, persistence.None,
		} {
			cfgs = append(cfgs, Config{
				Arbiter: arb, Persistence: true, CPRO: cpro,
				CRPD: crpds[(ai+pi+1)%len(crpds)],
			})
		}
	}
	return cfgs
}

func TestDifferentialTableVsReference(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 40
	}
	cfgs := differentialConfigs()
	aborts := 0
	for si, ts := range differentialCorpus(t, count) {
		for _, cfg := range cfgs {
			got, err := Analyze(ts, cfg)
			if err != nil {
				t.Fatalf("set %d %+v: Analyze: %v", si, cfg, err)
			}
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatalf("set %d %+v: AnalyzeReference: %v", si, cfg, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("set %d %+v: results diverge\n table: %+v\n naive: %+v", si, cfg, got, want)
			}
			if !got.Complete {
				aborts++
			}
		}
	}
	if aborts == 0 {
		t.Error("corpus never exercised the abort path; tighten the generator utilizations")
	}
}

// TestDifferentialSharedTables repeats the comparison through the
// AnalyzeAll path, where one Tables instance is shared across all
// configurations of a task set.
func TestDifferentialSharedTables(t *testing.T) {
	count := 40
	if testing.Short() {
		count = 10
	}
	cfgs := differentialConfigs()
	for si, ts := range differentialCorpus(t, count) {
		all, err := AnalyzeAll(ts, cfgs)
		if err != nil {
			t.Fatalf("set %d: AnalyzeAll: %v", si, err)
		}
		for ci, cfg := range cfgs {
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all[ci], want) {
				t.Fatalf("set %d %+v: shared-tables result diverges\n table: %+v\n naive: %+v",
					si, cfg, all[ci], want)
			}
		}
	}
}

// TestDifferentialBatch covers the worker-pool entry point end to end.
func TestDifferentialBatch(t *testing.T) {
	sets := differentialCorpus(t, 12)
	cfgs := differentialConfigs()
	reqs := make([]BatchRequest, len(sets))
	for i, ts := range sets {
		reqs[i] = BatchRequest{TS: ts, Cfgs: cfgs}
	}
	got, err := AnalyzeBatch(reqs, 4)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	for i, ts := range sets {
		for ci, cfg := range cfgs {
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[i][ci], want) {
				t.Fatalf("req %d cfg %+v: batch result diverges", i, cfg)
			}
		}
	}
	if _, err := AnalyzeBatch(nil, 0); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestTablesReuseAcrossDMem pins the sensitivity-analysis contract:
// tables built once remain valid for clones differing only in d_mem.
func TestTablesReuseAcrossDMem(t *testing.T) {
	for _, ts := range differentialCorpus(t, 4) {
		cfg := Config{Arbiter: RR, Persistence: true}
		tbl := PrecomputeTables(ts, cfg.CRPD)
		for _, d := range []taskmodel.Time{1, 3, 17} {
			clone := cloneWithDMem(ts, d)
			a, err := NewAnalyzerWithTables(clone, cfg, tbl)
			if err != nil {
				t.Fatal(err)
			}
			want, err := AnalyzeReference(clone, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.Run(); !reflect.DeepEqual(got, want) {
				t.Fatalf("d_mem %d: reused-tables result diverges", d)
			}
		}
	}
}

// TestDifferentialAbortVerdicts pins the abort path specifically: when
// the fixed point aborts on a provable deadline miss, the accelerated
// analyzer must report the same per-task verdicts as the naive one —
// the same task flagged as the miss (Verified, not Schedulable), the
// same tasks left unverified, and identical mid-iteration WCRT
// estimates. Breakpoint jumps may only land on iterates the naive
// chain also visits, so the r > D_i detection must trip at the same
// value; this test fails loudly if a jump ever overshoots a deadline
// boundary the naive analyzer would have caught at a smaller iterate.
func TestDifferentialAbortVerdicts(t *testing.T) {
	cfgs := differentialConfigs()
	missVerdicts := 0
	unverified := 0
	for si, ts := range differentialCorpus(t, 60) {
		for _, cfg := range cfgs {
			got, err := Analyze(ts, cfg)
			if err != nil {
				t.Fatalf("set %d %+v: Analyze: %v", si, cfg, err)
			}
			if got.Complete {
				continue
			}
			want, err := AnalyzeReference(ts, cfg)
			if err != nil {
				t.Fatalf("set %d %+v: AnalyzeReference: %v", si, cfg, err)
			}
			if want.Complete {
				t.Fatalf("set %d %+v: accelerated path aborted, reference converged", si, cfg)
			}
			if len(got.Tasks) != len(want.Tasks) {
				t.Fatalf("set %d %+v: abort reported %d task verdicts, reference %d",
					si, cfg, len(got.Tasks), len(want.Tasks))
			}
			for k := range got.Tasks {
				g, w := got.Tasks[k], want.Tasks[k]
				if g.Name != w.Name || g.Verified != w.Verified ||
					g.Schedulable != w.Schedulable || g.WCRT != w.WCRT {
					t.Fatalf("set %d %+v task %q: abort verdict diverges\n table: %+v\n naive: %+v",
						si, cfg, w.Name, g, w)
				}
				if g.Verified && !g.Schedulable {
					missVerdicts++
				}
				if !g.Verified {
					unverified++
				}
			}
		}
	}
	if missVerdicts == 0 {
		t.Error("no proven deadline-miss verdicts exercised; tighten the corpus")
	}
	if unverified == 0 {
		t.Error("no unverified (mid-iteration) tasks exercised; tighten the corpus")
	}
}

// TestResponseTimeZeroAlloc pins the allocation-free inner loop: once
// an analyzer has run to a fixed point, re-evaluating any level's
// response time — cursor reset, breakpoint advances, BAT combination
// and all — must not allocate. The warm-up Run matters: the per-level
// cursor state and the lazy table rows/curves allocate on first touch
// of each level, never after.
func TestResponseTimeZeroAlloc(t *testing.T) {
	for _, cfg := range []Config{
		{Arbiter: FP, Persistence: true, CPRO: persistence.MultisetUnion},
		{Arbiter: RR, Persistence: true, CPRO: persistence.Union},
		{Arbiter: TDMA, Persistence: false},
		{Arbiter: Regulated, Persistence: true, CPRO: persistence.Union},
		{Arbiter: ParAware, Persistence: false},
	} {
		ts := differentialCorpus(t, 1)[0]
		a, err := NewAnalyzer(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res := a.Run(); !res.Complete {
			t.Fatalf("%+v: warm-up run aborted; pick a schedulable corpus entry", cfg)
		}
		for _, task := range ts.Tasks {
			prio := task.Priority
			if avg := testing.AllocsPerRun(50, func() {
				if _, ok := a.ResponseTime(prio); !ok {
					t.Fatal("warm ResponseTime diverged")
				}
			}); avg != 0 {
				t.Errorf("%+v prio %d: ResponseTime allocates %v times per call, want 0", cfg, prio, avg)
			}
		}
	}
}

// TestAnalyzerWithTablesRejectsMismatch ensures the compatibility check
// refuses task sets the cached terms were not built for.
func TestAnalyzerWithTablesRejectsMismatch(t *testing.T) {
	sets := differentialCorpus(t, 2)
	tbl := PrecomputeTables(sets[0], 0)
	scaled := cloneScaled(sets[0], 2.0)
	if _, err := NewAnalyzerWithTables(scaled, Config{Arbiter: FP}, tbl); err == nil {
		t.Error("period-scaled clone accepted against stale tables")
	}
	if _, err := NewAnalyzerWithTables(sets[1], Config{Arbiter: FP}, tbl); err == nil {
		t.Error("unrelated task set accepted against foreign tables")
	}
	if _, err := NewAnalyzerWithTables(sets[0], Config{Arbiter: FP, CRPD: 2}, tbl); err == nil {
		t.Error("CRPD mismatch accepted")
	}
}
