package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/taskgen"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Analyzer-level microbenchmarks on the paper's default platform
// (4 cores, 8 tasks per core): the acceptance bar for the interference
// tables is ≥3× over the retained naive reference with persistence on.
// Utilizations are chosen per (arbiter, persistence) pair so the fixed
// point converges — the converging regime is where virtually all sweep
// time is spent; aborting points cost microseconds either way. The
// persistence-oblivious bound is more pessimistic, so it needs lighter
// sets; TDMA's (m−1)·s slot-wait factor rejects everything heavier
// still. FP and RR carry the speedup bar: TDMA reads few pairs and
// converges in two rounds, so its cost is dominated by the one-time γ
// set work both implementations share. Run with:
//
//	go test ./internal/core -bench 'Analyze' -benchmem

func benchUtil(arb Arbiter, persistence bool) float64 {
	switch {
	case !persistence:
		return 0.15
	case arb == TDMA:
		return 0.2
	default:
		return 0.3
	}
}

func benchSet(b testing.TB, util float64) *taskmodel.TaskSet {
	b.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.TasksPerCore = 8
	cfg.CoreUtilization = util
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

func benchAnalyze(b *testing.B, arb Arbiter) {
	for _, p := range []bool{false, true} {
		name := "base"
		if p {
			name = "persistence"
		}
		ts := benchSet(b, benchUtil(arb, p))
		b.Run(name, func(b *testing.B) {
			cfg := Config{Arbiter: arb, Persistence: p}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Analyze(ts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Complete {
					b.Fatal("benchmark workload must converge; retune benchUtil")
				}
			}
		})
	}
}

func BenchmarkAnalyzeFP(b *testing.B)   { benchAnalyze(b, FP) }
func BenchmarkAnalyzeRR(b *testing.B)   { benchAnalyze(b, RR) }
func BenchmarkAnalyzeTDMA(b *testing.B) { benchAnalyze(b, TDMA) }

// BenchmarkAnalyzeReference is the same workload on the naive
// recompute-everything implementation, for the speedup ratio.
func BenchmarkAnalyzeReference(b *testing.B) {
	for _, arb := range []Arbiter{FP, RR, TDMA} {
		ts := benchSet(b, benchUtil(arb, true))
		b.Run(arb.String(), func(b *testing.B) {
			cfg := Config{Arbiter: arb, Persistence: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeReference(ts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeAllSharedTables measures the six-variant sweep
// workload (the per-point unit of Fig. 2) with tables shared across
// variants.
func BenchmarkAnalyzeAllSharedTables(b *testing.B) {
	ts := benchSet(b, 0.3)
	cfgs := []Config{
		{Arbiter: FP}, {Arbiter: FP, Persistence: true},
		{Arbiter: RR}, {Arbiter: RR, Persistence: true},
		{Arbiter: TDMA}, {Arbiter: TDMA, Persistence: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeAll(ts, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// The delta-sweep workload: the near-duplicate request stream that
// POST /v1/analyze/delta serves, scaled so that table-column and
// curve-backbone construction dominates wall-clock. 40 tasks per core
// puts ~160 tasks in the set (column and curve set-work grows with the
// cube of the per-core count, the fixed-point engine only with its
// square), and an 8192-set cache makes every cold column walk 128 bit
// words per intersection while the memoized path — whose digests hash
// only the nonzero words of each footprint — stays geometry-invariant.

func deltaSweepConfigs() []Config {
	return []Config{
		{Arbiter: FP}, {Arbiter: FP, Persistence: true},
		{Arbiter: RR}, {Arbiter: RR, Persistence: true},
		{Arbiter: TDMA}, {Arbiter: TDMA, Persistence: true},
	}
}

func deltaSweepSet(tb testing.TB) *taskmodel.TaskSet {
	tb.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.TasksPerCore = 40
	cfg.CoreUtilization = 0.3
	cfg.Platform.Cache.NumSets = 8192
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		tb.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(7)))
	if err != nil {
		tb.Fatal(err)
	}
	return ts
}

// deltaSweepPass analyzes `steps` successive one-task
// processing-demand edits of base under the six-variant grid, against
// store — or, when store is nil, against a fresh store per analysis
// (the pre-memo behavior, with the column builds still observable as
// misses). step advances in place so consecutive passes keep producing
// never-before-seen variants.
func deltaSweepPass(tb testing.TB, base *taskmodel.TaskSet, cfgs []Config, store *MemoStore, obs *telemetry.Observer, step *int, steps int) {
	tb.Helper()
	mid := len(base.Tasks) / 2
	for s := 0; s < steps; s++ {
		ts := perturbPD(base, mid, taskmodel.Time(*step%1024))
		*step++
		st := store
		if st == nil {
			st = NewMemoStore(0)
		}
		if _, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: st, Observer: obs}); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkDeltaSweep measures the delta workload end to end: each
// iteration analyzes 16 rolling variants of the base set. "cold" gives
// every analysis a fresh store; "memo" shares one store, pre-warmed by
// a single untimed pass, and then measures only never-before-seen
// deltas — the steady state of a long-lived daemon, where the store
// serves every table column (the edit touches no field a column reads)
// and all but the perturbed core's same-source curve backbones. The
// wall-clock acceptance bar is memo ≥5× faster than cold, pinned by
// TestDeltaSweepWallClockSpeedup; columns/op and curves/op report the
// recomputation avoided.
func BenchmarkDeltaSweep(b *testing.B) {
	base := deltaSweepSet(b)
	cfgs := deltaSweepConfigs()
	const steps = 16
	run := func(b *testing.B, shared bool) {
		obs := telemetry.New()
		step := 0
		var store *MemoStore
		if shared {
			store = NewMemoStore(0)
			deltaSweepPass(b, base, cfgs, store, obs, &step, steps)
			obs = telemetry.New()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			deltaSweepPass(b, base, cfgs, store, obs, &step, steps)
		}
		b.ReportMetric(float64(obs.Metrics.Get(telemetry.CtrMemoMisses))/float64(b.N), "columns/op")
		b.ReportMetric(float64(obs.Metrics.Get(telemetry.CtrCurveMemoMisses))/float64(b.N), "curves/op")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("memo", func(b *testing.B) { run(b, true) })
}

// TestDeltaSweepWallClockSpeedup is the acceptance gate on
// BenchmarkDeltaSweep's workload: the pre-warmed shared store must cut
// the rolling-delta sweep's wall-clock by at least 5× against the
// fresh-store baseline. Both sides take the best of three rounds to
// shed scheduler noise. Skipped under -short (the cold rounds are
// whole seconds) and under the race detector, whose instrumentation
// taxes the two paths asymmetrically.
func TestDeltaSweepWallClockSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second timing gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios are meaningless under the race detector")
	}
	base := deltaSweepSet(t)
	cfgs := deltaSweepConfigs()
	const steps, rounds = 8, 3
	step := 0
	minDur := func(store *MemoStore) time.Duration {
		var best time.Duration
		for r := 0; r < rounds; r++ {
			start := time.Now()
			deltaSweepPass(t, base, cfgs, store, nil, &step, steps)
			if d := time.Since(start); r == 0 || d < best {
				best = d
			}
		}
		return best
	}
	cold := minDur(nil)
	store := NewMemoStore(0)
	deltaSweepPass(t, base, cfgs, store, nil, &step, steps) // pre-warm
	memo := minDur(store)
	ratio := float64(cold) / float64(memo)
	if ratio < 5 {
		t.Errorf("memoized delta sweep %.2fx faster than cold (cold %v, memo %v); want >= 5x", ratio, cold, memo)
	}
	t.Logf("delta sweep wall-clock: cold=%v memo=%v (%.1fx)", cold, memo, ratio)
}
