package core

import (
	"math/rand"
	"testing"

	"repro/internal/taskgen"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Analyzer-level microbenchmarks on the paper's default platform
// (4 cores, 8 tasks per core): the acceptance bar for the interference
// tables is ≥3× over the retained naive reference with persistence on.
// Utilizations are chosen per (arbiter, persistence) pair so the fixed
// point converges — the converging regime is where virtually all sweep
// time is spent; aborting points cost microseconds either way. The
// persistence-oblivious bound is more pessimistic, so it needs lighter
// sets; TDMA's (m−1)·s slot-wait factor rejects everything heavier
// still. FP and RR carry the speedup bar: TDMA reads few pairs and
// converges in two rounds, so its cost is dominated by the one-time γ
// set work both implementations share. Run with:
//
//	go test ./internal/core -bench 'Analyze' -benchmem

func benchUtil(arb Arbiter, persistence bool) float64 {
	switch {
	case !persistence:
		return 0.15
	case arb == TDMA:
		return 0.2
	default:
		return 0.3
	}
}

func benchSet(b *testing.B, util float64) *taskmodel.TaskSet {
	b.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.TasksPerCore = 8
	cfg.CoreUtilization = util
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

func benchAnalyze(b *testing.B, arb Arbiter) {
	for _, p := range []bool{false, true} {
		name := "base"
		if p {
			name = "persistence"
		}
		ts := benchSet(b, benchUtil(arb, p))
		b.Run(name, func(b *testing.B) {
			cfg := Config{Arbiter: arb, Persistence: p}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Analyze(ts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Complete {
					b.Fatal("benchmark workload must converge; retune benchUtil")
				}
			}
		})
	}
}

func BenchmarkAnalyzeFP(b *testing.B)   { benchAnalyze(b, FP) }
func BenchmarkAnalyzeRR(b *testing.B)   { benchAnalyze(b, RR) }
func BenchmarkAnalyzeTDMA(b *testing.B) { benchAnalyze(b, TDMA) }

// BenchmarkAnalyzeReference is the same workload on the naive
// recompute-everything implementation, for the speedup ratio.
func BenchmarkAnalyzeReference(b *testing.B) {
	for _, arb := range []Arbiter{FP, RR, TDMA} {
		ts := benchSet(b, benchUtil(arb, true))
		b.Run(arb.String(), func(b *testing.B) {
			cfg := Config{Arbiter: arb, Persistence: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeReference(ts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeAllSharedTables measures the six-variant sweep
// workload (the per-point unit of Fig. 2) with tables shared across
// variants.
func BenchmarkAnalyzeAllSharedTables(b *testing.B) {
	ts := benchSet(b, 0.3)
	cfgs := []Config{
		{Arbiter: FP}, {Arbiter: FP, Persistence: true},
		{Arbiter: RR}, {Arbiter: RR, Persistence: true},
		{Arbiter: TDMA}, {Arbiter: TDMA, Persistence: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeAll(ts, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaSweep measures the one-task-perturbed sweep — the
// near-duplicate workload POST /v1/analyze/delta serves. Each
// iteration analyzes 16 variants of one task set differing only in a
// single task's processing demand, under the six-variant config grid:
// "cold" rebuilds every table column per variant (the pre-memo
// behavior, reproduced with a fresh store per analysis so the column
// counts are observable), "memo" shares one content-addressed store
// across the sweep. The memo_* counters, reported as columns/op, carry
// the ≥5× recomputation acceptance bar; wall-clock improves with the
// task-set footprint.
func BenchmarkDeltaSweep(b *testing.B) {
	base := benchSet(b, 0.3)
	cfgs := []Config{
		{Arbiter: FP}, {Arbiter: FP, Persistence: true},
		{Arbiter: RR}, {Arbiter: RR, Persistence: true},
		{Arbiter: TDMA}, {Arbiter: TDMA, Persistence: true},
	}
	const steps = 16
	sweep := make([]*taskmodel.TaskSet, steps)
	for i := range sweep {
		sweep[i] = perturbPD(base, len(base.Tasks)/2, taskmodel.Time(i))
	}
	run := func(b *testing.B, shared bool) {
		obs := telemetry.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var store *MemoStore
			if shared {
				store = NewMemoStore(0)
			}
			for _, ts := range sweep {
				if !shared {
					store = NewMemoStore(0)
				}
				if _, err := AnalyzeAllOpts(ts, cfgs, Options{Memo: store, Observer: obs}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(obs.Metrics.Get(telemetry.CtrMemoMisses))/float64(b.N), "columns/op")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("memo", func(b *testing.B) { run(b, true) })
}
