package core

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden analysis outcomes")

// goldenOutcome pins the exact analysis numbers for one configuration
// so that refactorings of the fixed point, the CRPD/CPRO machinery or
// the benchmark suite are noticed immediately. Regenerate deliberately
// with: go test ./internal/core -run TestGolden -update
type goldenOutcome struct {
	Variant     string           `json:"variant"`
	Schedulable bool             `json:"schedulable"`
	WCRT        map[string]int64 `json:"wcrt,omitempty"` // "prio<N>" -> bound
}

func goldenPath() string {
	return filepath.Join("testdata", "golden_analysis.json")
}

func goldenTaskSet(t *testing.T) *taskmodel.TaskSet {
	t.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = 2
	cfg.TasksPerCore = 4
	cfg.CoreUtilization = 0.25
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(20200313)))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func computeGolden(t *testing.T) []goldenOutcome {
	t.Helper()
	ts := goldenTaskSet(t)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"FP", Config{Arbiter: FP}},
		{"FP-CP", Config{Arbiter: FP, Persistence: true}},
		{"RR", Config{Arbiter: RR}},
		{"RR-CP", Config{Arbiter: RR, Persistence: true}},
		{"TDMA", Config{Arbiter: TDMA}},
		{"TDMA-CP", Config{Arbiter: TDMA, Persistence: true}},
		{"Perfect", Config{Arbiter: Perfect, Persistence: true}},
	}
	var out []goldenOutcome
	for _, v := range variants {
		res, err := Analyze(ts, v.cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := goldenOutcome{Variant: v.name, Schedulable: res.Schedulable}
		if res.Schedulable {
			g.WCRT = map[string]int64{}
			for _, tr := range res.Tasks {
				g.WCRT[trKey(tr.Priority)] = int64(tr.WCRT)
			}
		}
		out = append(out, g)
	}
	return out
}

func trKey(prio int) string {
	return "prio" + string(rune('0'+prio))
}

func TestGoldenAnalysisOutcomes(t *testing.T) {
	got := computeGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenPath())
		return
	}
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want []goldenOutcome
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d variants, analysis produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Variant != g.Variant || w.Schedulable != g.Schedulable {
			t.Errorf("variant %s: schedulable %v, golden %v", g.Variant, g.Schedulable, w.Schedulable)
			continue
		}
		for k, wv := range w.WCRT {
			if gv := g.WCRT[k]; gv != wv {
				t.Errorf("variant %s %s: WCRT %d, golden %d", g.Variant, k, gv, wv)
			}
		}
	}
}
