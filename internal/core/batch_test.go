package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/telemetry"
)

// isolationReqs builds a small batch over the paper example.
func isolationReqs(n int) []BatchRequest {
	reqs := make([]BatchRequest, n)
	for i := range reqs {
		reqs[i] = BatchRequest{
			TS:    fixtures.Fig1TaskSet(),
			Cfgs:  []Config{{Arbiter: FP}, {Arbiter: FP, Persistence: true}},
			Label: "job-" + string(rune('a'+i)),
		}
	}
	return reqs
}

// TestIsolatePanicRetriesOnReference: a panic in the optimized engine
// is recovered, the job is retried on the naive reference analyzer,
// and — the reference surviving — the batch returns a full result set
// with sweep.job_panics == 1 and no failures.
func TestIsolatePanicRetriesOnReference(t *testing.T) {
	SetBatchFaultHook(func(label string, attempt int) {
		if label == "job-b" && attempt == 0 {
			panic("injected engine fault")
		}
	})
	defer SetBatchFaultHook(nil)

	obs := telemetry.New()
	reqs := isolationReqs(3)
	out, err := AnalyzeBatchOpts(reqs, BatchOptions{Workers: 2, Observer: obs, Isolate: true})
	if err != nil {
		t.Fatalf("AnalyzeBatchOpts: %v", err)
	}
	for i, res := range out {
		if res == nil {
			t.Fatalf("request %d has no result (reference retry should have rescued it)", i)
		}
		if len(res) != 2 || !res[0].Schedulable {
			t.Fatalf("request %d: unexpected results %+v", i, res)
		}
	}
	if got := obs.Metrics.Get(telemetry.CtrJobPanics); got != 1 {
		t.Errorf("sweep.job_panics = %d, want 1", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrJobFailures); got != 0 {
		t.Errorf("sweep.job_failures = %d, want 0", got)
	}
}

// TestIsolatePanicTwiceRecordsFailure: when the reference retry
// panics as well, exactly that job is marked failed (nil result slot,
// OnFailure with the original stack) and every other job completes.
func TestIsolatePanicTwiceRecordsFailure(t *testing.T) {
	SetBatchFaultHook(func(label string, attempt int) {
		if label == "job-c" {
			panic("deterministic fault")
		}
	})
	defer SetBatchFaultHook(nil)

	obs := telemetry.New()
	var mu sync.Mutex
	type failure struct {
		label string
		err   error
		stack []byte
	}
	var failures []failure
	reqs := isolationReqs(4)
	out, err := AnalyzeBatchOpts(reqs, BatchOptions{
		Workers: 2, Observer: obs, Isolate: true,
		OnFailure: func(i int, label string, err error, stack []byte) {
			mu.Lock()
			failures = append(failures, failure{label, err, stack})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("AnalyzeBatchOpts: %v", err)
	}
	for i, res := range out {
		if reqs[i].Label == "job-c" {
			if res != nil {
				t.Errorf("failed job has results %+v", res)
			}
			continue
		}
		if res == nil {
			t.Errorf("healthy job %s lost its result", reqs[i].Label)
		}
	}
	if len(failures) != 1 {
		t.Fatalf("OnFailure called %d times, want 1", len(failures))
	}
	f := failures[0]
	if f.label != "job-c" {
		t.Errorf("failure label = %q, want job-c", f.label)
	}
	if f.err == nil || !strings.Contains(f.err.Error(), "deterministic fault") {
		t.Errorf("failure error %v does not name the panic", f.err)
	}
	if len(f.stack) == 0 {
		t.Error("failure carries no stack")
	}
	if got := obs.Metrics.Get(telemetry.CtrJobPanics); got != 1 {
		t.Errorf("sweep.job_panics = %d, want 1 (retry panic not double-counted)", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrJobFailures); got != 1 {
		t.Errorf("sweep.job_failures = %d, want 1", got)
	}
}

// TestIsolateOffPropagatesPanic: without Isolate a worker panic must
// not be swallowed — the default batch semantics are unchanged.
func TestIsolateOffPropagatesPanic(t *testing.T) {
	SetBatchFaultHook(func(label string, attempt int) { panic("unisolated") })
	defer SetBatchFaultHook(nil)
	// The hook only fires on the isolation path; the default path never
	// calls it, so this batch must succeed exactly as before.
	out, err := AnalyzeBatchOpts(isolationReqs(2), BatchOptions{Workers: 1})
	if err != nil || out[0] == nil || out[1] == nil {
		t.Fatalf("default path disturbed: out=%v err=%v", out, err)
	}
}

// TestIsolateIdenticalResults: on a healthy batch, isolation must not
// change any result — same verdicts with and without it.
func TestIsolateIdenticalResults(t *testing.T) {
	reqs := isolationReqs(3)
	plain, err := AnalyzeBatchOpts(reqs, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := AnalyzeBatchOpts(reqs, BatchOptions{Workers: 2, Isolate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		for j := range plain[i] {
			if plain[i][j].Schedulable != isolated[i][j].Schedulable {
				t.Errorf("request %d cfg %d: verdict differs under isolation", i, j)
			}
		}
	}
}
