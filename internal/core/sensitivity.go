package core

import (
	"fmt"

	"repro/internal/taskmodel"
)

// Sensitivity analysis: instead of a yes/no verdict, locate the edge
// of schedulability along one model axis. Both searches treat the
// analysis as a black box and verify the reported edge explicitly, so
// they remain correct even where the underlying bounds are not
// perfectly monotone (see the W_cout discussion in the package tests).

// cloneScaled returns a copy of ts with every period and deadline
// multiplied by k (rounded up), leaving demands untouched.
func cloneScaled(ts *taskmodel.TaskSet, k float64) *taskmodel.TaskSet {
	tasks := make([]*taskmodel.Task, len(ts.Tasks))
	for i, t := range ts.Tasks {
		c := *t
		c.Period = taskmodel.Time(float64(t.Period)*k + 0.999999)
		c.Deadline = taskmodel.Time(float64(t.Deadline)*k + 0.999999)
		if c.Period < 1 {
			c.Period = 1
		}
		if c.Deadline < 1 {
			c.Deadline = 1
		}
		if c.Deadline > c.Period {
			c.Deadline = c.Period
		}
		tasks[i] = &c
	}
	return taskmodel.NewTaskSet(ts.Platform, tasks)
}

// cloneWithDMem returns a copy of ts with the platform's d_mem
// replaced.
func cloneWithDMem(ts *taskmodel.TaskSet, dmem taskmodel.Time) *taskmodel.TaskSet {
	tasks := make([]*taskmodel.Task, len(ts.Tasks))
	for i, t := range ts.Tasks {
		c := *t
		tasks[i] = &c
	}
	plat := ts.Platform
	plat.DMem = dmem
	return taskmodel.NewTaskSet(plat, tasks)
}

// MaxDMem returns the largest memory access time (in [1, limit]) at
// which the task set remains schedulable under cfg, or 0 if it is
// unschedulable even at d_mem = 1. A limit of 0 defaults to 1<<20.
func MaxDMem(ts *taskmodel.TaskSet, cfg Config, limit taskmodel.Time) (taskmodel.Time, error) {
	return MaxDMemOpts(ts, cfg, limit, Options{})
}

// MaxDMemOpts is MaxDMem with options; every probe of the search
// reports to the observer.
func MaxDMemOpts(ts *taskmodel.TaskSet, cfg Config, limit taskmodel.Time, opts Options) (taskmodel.Time, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	// None of the precomputed interference terms depend on d_mem, so one
	// set of tables serves every probe of the search.
	tbl := PrecomputeTables(ts, cfg.CRPD)
	sched := func(d taskmodel.Time) (bool, error) {
		a, err := NewAnalyzerWithTables(cloneWithDMem(ts, d), cfg, tbl)
		if err != nil {
			return false, err
		}
		a.obs = opts.Observer
		return a.Run().Schedulable, nil
	}
	ok, err := sched(1)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	// Exponential probe for an unschedulable upper end.
	lo, hi := taskmodel.Time(1), taskmodel.Time(2)
	for hi <= limit {
		ok, err := sched(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
	}
	if hi > limit {
		// Schedulable across the whole probed range.
		if ok, err := sched(limit); err != nil {
			return 0, err
		} else if ok {
			return limit, nil
		}
		hi = limit
	}
	// Bisection on integers: lo schedulable, hi not.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := sched(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// CriticalScaling returns the smallest period/deadline scaling factor
// k (within tolerance tol) at which the task set is schedulable under
// cfg: k < 1 quantifies the headroom of a schedulable set, k > 1 the
// slack a failing set is missing. The search covers k in
// [2^-10, 2^10]; an error is returned if even the largest scaling does
// not help, and k = 0 is never returned.
func CriticalScaling(ts *taskmodel.TaskSet, cfg Config, tol float64) (float64, error) {
	return CriticalScalingOpts(ts, cfg, tol, Options{})
}

// CriticalScalingOpts is CriticalScaling with options; every probe of
// the search reports to the observer.
func CriticalScalingOpts(ts *taskmodel.TaskSet, cfg Config, tol float64, opts Options) (float64, error) {
	if tol <= 0 {
		tol = 1e-3
	}
	sched := func(k float64) (bool, error) {
		res, err := AnalyzeOpts(cloneScaled(ts, k), cfg, opts)
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
	lo, hi := 1.0/1024, 1024.0
	okHi, err := sched(hi)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return 0, fmt.Errorf("core: task set unschedulable even with periods scaled by %g", hi)
	}
	okLo, err := sched(lo)
	if err != nil {
		return 0, err
	}
	if okLo {
		return lo, nil
	}
	// Invariant: lo unschedulable, hi schedulable.
	for hi-lo > tol*hi {
		mid := (lo + hi) / 2
		ok, err := sched(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
