package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/telemetry"
)

// TestTelemetryCounterReconciliation checks the accounting invariants
// the trace exporter relies on: every run is counted, completed runs
// plus aborted runs partition nothing (the bus-overload gate completes
// with a verdict), and the abort reasons sum exactly to the number of
// unschedulable verdicts.
func TestTelemetryCounterReconciliation(t *testing.T) {
	obs := telemetry.New()
	var runs, unsched, complete int64
	for _, util := range []float64{0.3, 0.6, 0.9} {
		for _, ts := range randomTaskSets(t, 4, util) {
			for _, arb := range []Arbiter{FP, RR, TDMA, Perfect} {
				for _, persist := range []bool{false, true} {
					res, err := AnalyzeOpts(ts, Config{Arbiter: arb, Persistence: persist}, Options{Observer: obs})
					if err != nil {
						t.Fatal(err)
					}
					runs++
					if !res.Schedulable {
						unsched++
					}
					if res.Complete {
						complete++
					}
				}
			}
		}
	}
	if unsched == 0 {
		t.Fatal("test needs at least one unschedulable set to exercise the abort counters")
	}
	m := obs.Metrics
	if got := m.Get(telemetry.CtrRuns); got != runs {
		t.Errorf("analyzer.runs = %d, want %d", got, runs)
	}
	if got := m.Get(telemetry.CtrRunsCompleted); got != complete {
		t.Errorf("analyzer.runs_completed = %d, want %d", got, complete)
	}
	aborts := m.Get(telemetry.CtrAbortDeadlineMiss) +
		m.Get(telemetry.CtrAbortNonConvergence) +
		m.Get(telemetry.CtrAbortBusOverload)
	if aborts != unsched {
		t.Errorf("abort counters sum to %d, want %d unschedulable runs (miss=%d nonconv=%d overload=%d)",
			aborts, unsched,
			m.Get(telemetry.CtrAbortDeadlineMiss),
			m.Get(telemetry.CtrAbortNonConvergence),
			m.Get(telemetry.CtrAbortBusOverload))
	}
	if m.Get(telemetry.CtrTaskAnalyses) == 0 || m.Get(telemetry.CtrInnerIterations) == 0 {
		t.Error("hot-path counters never incremented")
	}
	if got := m.Hist(telemetry.HistOuterRounds).Snapshot().Count; got != runs {
		t.Errorf("outer-rounds histogram count = %d, want %d", got, runs)
	}
}

// TestConvergenceTraceOnPaperExample records iterate chains for the
// paper's worked example and checks they use the explain.go term
// vocabulary and end in a verdict per task.
func TestConvergenceTraceOnPaperExample(t *testing.T) {
	obs := telemetry.New()
	obs.Convergence = telemetry.NewConvergenceLog()
	res, err := AnalyzeOpts(fixtures.Fig1TaskSet(), Config{Arbiter: FP, Persistence: true}, Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("paper example should complete")
	}
	traces := obs.Convergence.Traces()
	if len(traces) == 0 {
		t.Fatal("no convergence traces recorded")
	}
	known := map[string]bool{"CorePreemption": true, "BAS": true, "Blocking": true, "SlotWait": true}
	seen := map[string]bool{}
	for _, tr := range traces {
		if !tr.Converged {
			t.Errorf("%s (prio %d): trace not marked converged", tr.Task, tr.Priority)
		}
		if len(tr.Steps) == 0 {
			t.Errorf("%s: empty trace", tr.Task)
		}
		seen[tr.Task] = true
		for _, st := range tr.Steps {
			if !known[st.Dominant] && !strings.HasPrefix(st.Dominant, "Remote[") {
				t.Errorf("%s: unknown dominant term %q", tr.Task, st.Dominant)
			}
		}
		// The trace spans every analysis across outer rounds, so it is
		// not globally monotone — but the converged bound must appear as
		// one of its iterates.
		for _, tres := range res.Tasks {
			if tres.Name != tr.Task {
				continue
			}
			found := false
			for _, st := range tr.Steps {
				if st.Iterate == int64(tres.WCRT) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: WCRT %d never appears in the iterate chain", tr.Task, tres.WCRT)
			}
		}
	}
	for _, tres := range res.Tasks {
		if !seen[tres.Name] {
			t.Errorf("no trace for task %s", tres.Name)
		}
	}
}

// TestCursorReseedOnlyOnRemoteChange is the regression test for the
// fixed-point resume path: across outer rounds, a re-analysis must
// reuse the level's cursors (a resume, not a rebuild), and must
// re-evaluate exactly the remote cursors whose carry-in offset — a
// function of the remote estimate R_l — actually changed.
func TestCursorReseedOnlyOnRemoteChange(t *testing.T) {
	obs := telemetry.New()
	ts := fixtures.Fig1TaskSet() // tau1, tau2 on core 0; tau3 on core 1
	a, err := NewAnalyzer(ts, Config{Arbiter: FP, Persistence: true})
	if err != nil {
		t.Fatal(err)
	}
	a.SetObserver(obs)
	if res := a.Run(); !res.Schedulable {
		t.Fatal("paper example should be schedulable")
	}
	m := obs.Metrics
	snap := func() (rebuilds, resumes, refreshes int64) {
		return m.Get(telemetry.CtrCursorRebuilds),
			m.Get(telemetry.CtrCursorResumes),
			m.Get(telemetry.CtrCursorRemoteRefreshes)
	}

	// Steady state: nothing changed, so re-analyzing tau1 must resume
	// its cursors and refresh no remote term.
	rb0, rs0, rf0 := snap()
	r1, ok := a.ResponseTime(0)
	if !ok {
		t.Fatal("tau1 did not converge")
	}
	rb1, rs1, rf1 := snap()
	if rb1 != rb0 {
		t.Errorf("steady-state re-analysis rebuilt cursors (%d -> %d)", rb0, rb1)
	}
	if rs1 != rs0+1 {
		t.Errorf("steady-state re-analysis did not resume (resumes %d -> %d)", rs0, rs1)
	}
	if rf1 != rf0 {
		t.Errorf("steady-state re-analysis refreshed %d remote cursors, want 0", rf1-rf0)
	}

	// A same-core estimate change is invisible to tau1's recurrence:
	// still zero refreshes.
	a.R[1] += 7
	if _, ok := a.ResponseTime(0); !ok {
		t.Fatal("tau1 did not converge")
	}
	_, _, rf2 := snap()
	if rf2 != rf1 {
		t.Errorf("same-core change refreshed %d remote cursors, want 0", rf2-rf1)
	}

	// A remote estimate change must refresh exactly the one cursor that
	// reads it: tau3 is tau1's only remote task (in lp(0) on core 1).
	a.R[2] += 5
	r1b, ok := a.ResponseTime(0)
	if !ok {
		t.Fatal("tau1 did not converge")
	}
	rb3, _, rf3 := snap()
	if rf3 != rf2+1 {
		t.Errorf("remote change refreshed %d cursors, want exactly 1", rf3-rf2)
	}
	if rb3 != rb1 {
		t.Errorf("remote change triggered a rebuild (%d -> %d)", rb1, rb3)
	}
	if r1b < r1 {
		t.Errorf("grown remote estimate shrank the bound: %d -> %d", r1, r1b)
	}
}

func TestAnalyzeBatchOptsLabelsAndObserver(t *testing.T) {
	obs := telemetry.New()
	obs.Trace = telemetry.NewTraceRecorder()
	ts := fixtures.Fig1TaskSet()
	cfgs := []Config{{Arbiter: FP}, {Arbiter: TDMA, Persistence: true}}
	reqs := []BatchRequest{
		{TS: ts, Cfgs: cfgs, Label: "point-a"},
		{TS: ts, Cfgs: cfgs}, // unlabeled: falls back to index
	}
	var mu sync.Mutex
	got := map[string]int{}
	out, err := AnalyzeBatchOpts(reqs, BatchOptions{
		Workers:  2,
		Observer: obs,
		OnResult: func(i int, res []*Result, label string) {
			mu.Lock()
			got[label] = len(res)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 2 || len(out[1]) != 2 {
		t.Fatalf("results shape wrong: %v", out)
	}
	if got["point-a"] != 2 || got["request 1"] != 2 {
		t.Errorf("OnResult labels = %v", got)
	}
	if runs := obs.Metrics.Get(telemetry.CtrRuns); runs != 4 {
		t.Errorf("analyzer.runs = %d, want 4 (2 requests x 2 configs)", runs)
	}
}

func TestAnalyzeBatchOptsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := fixtures.Fig1TaskSet()
	reqs := make([]BatchRequest, 8)
	for i := range reqs {
		reqs[i] = BatchRequest{TS: ts, Cfgs: []Config{{Arbiter: FP}}}
	}
	out, err := AnalyzeBatchOpts(reqs, BatchOptions{Workers: 2, Context: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 8 {
		t.Fatalf("partial results slice has len %d, want 8", len(out))
	}
	// Pre-canceled: workers drain without doing work.
	for i, res := range out {
		if res != nil {
			t.Errorf("request %d analyzed despite pre-canceled context", i)
		}
	}
}

func TestSensitivityOptsReportRuns(t *testing.T) {
	obs := telemetry.New()
	ts := fixtures.Fig1TaskSet()
	cfg := Config{Arbiter: FP, Persistence: true}
	d, err := MaxDMemOpts(ts, cfg, 64, Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	dPlain, err := MaxDMem(ts, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d != dPlain {
		t.Errorf("MaxDMemOpts = %d, MaxDMem = %d", d, dPlain)
	}
	if obs.Metrics.Get(telemetry.CtrRuns) == 0 {
		t.Error("sensitivity probes invisible to the observer")
	}
}
