package core

import (
	"math/rand"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/fixtures"
	"repro/internal/persistence"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

// twoTaskSet builds a hand-checkable single-core system with disjoint
// cache footprints (no CRPD, no CPRO).
func twoTaskSet() *taskmodel.TaskSet {
	n := 8
	plat := taskmodel.Platform{
		NumCores: 1,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     2,
		SlotSize: 2,
	}
	t1 := &taskmodel.Task{
		Name: "a", Core: 0, Priority: 0,
		PD: 10, MD: 2, MDr: 2, Period: 100, Deadline: 100,
		ECB: cacheset.Of(n, 0, 1), UCB: cacheset.New(n), PCB: cacheset.New(n),
	}
	t2 := &taskmodel.Task{
		Name: "b", Core: 0, Priority: 1,
		PD: 20, MD: 4, MDr: 4, Period: 200, Deadline: 200,
		ECB: cacheset.Of(n, 2, 3), UCB: cacheset.New(n), PCB: cacheset.New(n),
	}
	return taskmodel.NewTaskSet(plat, []*taskmodel.Task{t1, t2})
}

func TestSingleCoreFPHandComputed(t *testing.T) {
	res, err := Analyze(twoTaskSet(), Config{Arbiter: FP})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Schedulable {
		t.Fatal("expected schedulable")
	}
	// τ1: BAT = MD1 + 1 (a τ2 access may be in service) = 3,
	// R1 = 10 + 3·2 = 16.
	if got := res.Tasks[0].WCRT; got != 16 {
		t.Errorf("R1 = %d, want 16", got)
	}
	// τ2: BAS = MD2 + ⌈R/T1⌉·MD1 = 4+2 = 6 (no +1: lowest priority),
	// R2 = 20 + ⌈R/100⌉·10 + 6·2 = 42.
	if got := res.Tasks[1].WCRT; got != 42 {
		t.Errorf("R2 = %d, want 42", got)
	}
}

func TestSingleTaskAllArbiters(t *testing.T) {
	n := 4
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     3,
		SlotSize: 2,
	}
	solo := &taskmodel.Task{
		Name: "solo", Core: 0, Priority: 0,
		PD: 50, MD: 10, MDr: 10, Period: 1000, Deadline: 1000,
		ECB: cacheset.Of(n, 0), UCB: cacheset.New(n), PCB: cacheset.New(n),
	}
	ts := taskmodel.NewTaskSet(plat, []*taskmodel.Task{solo})
	want := map[Arbiter]taskmodel.Time{
		FP:      50 + 10*3,         // nothing to contend with
		RR:      50 + 10*3,         // remote BAO is zero
		TDMA:    50 + 10*(1+1*2)*3, // every access waits (m−1)·s slots
		Perfect: 50 + 10*3,
	}
	for arb, wantR := range want {
		res, err := Analyze(ts, Config{Arbiter: arb})
		if err != nil {
			t.Fatalf("%v: %v", arb, err)
		}
		if !res.Schedulable {
			t.Fatalf("%v: unschedulable", arb)
		}
		if got := res.Tasks[0].WCRT; got != wantR {
			t.Errorf("%v: R = %d, want %d", arb, got, wantR)
		}
	}
}

func TestUnschedulableDetected(t *testing.T) {
	ts := twoTaskSet()
	ts.Tasks[1].Deadline = 30 // below the true response time 42
	ts.Tasks[1].Period = 30
	res, err := Analyze(ts, Config{Arbiter: FP})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Schedulable {
		t.Fatal("expected unschedulable")
	}
	if res.Tasks[1].Schedulable {
		t.Error("τ2 marked schedulable despite deadline miss")
	}
	if !res.Tasks[1].Verified {
		t.Error("τ2's deadline miss is proven, so it must be Verified")
	}
	// The analysis aborted before τ1's bound converged: nothing was
	// proven about it, so it must be reported neither schedulable nor
	// verified.
	if res.Tasks[0].Schedulable {
		t.Error("τ1 claimed schedulable from a mid-iteration estimate")
	}
	if res.Tasks[0].Verified {
		t.Error("τ1 marked verified despite the aborted fixed point")
	}
}

func TestAbortVerdictsNeverMisleading(t *testing.T) {
	// When Complete is false, no task may combine Schedulable with an
	// unverified bound: either semantics (the conservative Schedulable
	// flag and the explicit Verified field) must reflect the abort.
	ts := twoTaskSet()
	ts.Tasks[1].Deadline = 30
	ts.Tasks[1].Period = 30
	for _, arb := range []Arbiter{FP, RR, TDMA} {
		res, err := Analyze(ts, Config{Arbiter: arb})
		if err != nil {
			t.Fatalf("%v: %v", arb, err)
		}
		if res.Complete {
			t.Fatalf("%v: expected an aborted analysis", arb)
		}
		verified := 0
		for _, tr := range res.Tasks {
			if tr.Schedulable {
				t.Errorf("%v task %s: schedulable claim in an incomplete result", arb, tr.Name)
			}
			if tr.Verified {
				verified++
				if tr.WCRT <= tr.Deadline {
					t.Errorf("%v task %s: verified miss but WCRT %d within deadline %d",
						arb, tr.Name, tr.WCRT, tr.Deadline)
				}
			}
		}
		if verified != 1 {
			t.Errorf("%v: %d verified tasks in an abort, want exactly the missing one", arb, verified)
		}
	}
	// A successful analysis verifies everything.
	res, err := Analyze(twoTaskSet(), Config{Arbiter: FP})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if !tr.Schedulable || !tr.Verified {
			t.Errorf("task %s: want schedulable and verified, got %+v", tr.Name, tr)
		}
	}
	// The MaxOuterIterations safety net proves nothing about anyone.
	stressed := fixtures.Fig1TaskSet()
	capped, err := Analyze(stressed, Config{Arbiter: RR, Persistence: true, MaxOuterIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Complete {
		for _, tr := range capped.Tasks {
			if tr.Schedulable || tr.Verified {
				t.Errorf("budget exhaustion must leave %s unverified: %+v", tr.Name, tr)
			}
		}
	}
}

func TestPerfectBusGateOnBusUtilization(t *testing.T) {
	ts := twoTaskSet()
	// Inflate memory demand so bus utilization exceeds 1:
	// MD·dmem/T = 60*2/100 > 1 for τ1 alone.
	ts.Tasks[0].MD = 60
	ts.Tasks[0].MDr = 60
	res, err := Analyze(ts, Config{Arbiter: Perfect})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Schedulable {
		t.Fatal("perfect bus must reject bus utilization > 1")
	}
}

func TestAnalyzeRejectsInvalidTaskSet(t *testing.T) {
	ts := twoTaskSet()
	ts.Tasks[0].MDr = ts.Tasks[0].MD + 1
	if _, err := Analyze(ts, Config{Arbiter: FP}); err == nil {
		t.Fatal("invalid task set accepted")
	}
}

func TestRunIdempotent(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	for _, cfg := range []Config{
		{Arbiter: RR, Persistence: false},
		{Arbiter: RR, Persistence: true},
		{Arbiter: FP, Persistence: true},
		{Arbiter: TDMA, Persistence: true},
	} {
		a1, err := NewAnalyzer(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r1 := a1.Run()
		a2, err := NewAnalyzer(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2 := a2.Run()
		if r1.Schedulable != r2.Schedulable {
			t.Fatalf("%+v: schedulability differs across runs", cfg)
		}
		for i := range r1.Tasks {
			if r1.Tasks[i].WCRT != r2.Tasks[i].WCRT {
				t.Fatalf("%+v: WCRT differs across runs for %s", cfg, r1.Tasks[i].Name)
			}
		}
	}
}

func TestBaselineBATMonotoneInWindow(t *testing.T) {
	// The baseline bounds (Eq. 1, 3-9) are monotone in the window
	// length. The persistence-aware variants are NOT globally monotone:
	// when a carry-out job becomes a full job, W_cout gives back up to
	// MD+γ while Ŵ only grows by the residual demand — each point is
	// individually sound, so this is an artifact of Eq. (5)'s cap, not
	// a bug; see TestPersistenceAwareBATDominatedByBaseline.
	ts := fixtures.Fig1TaskSet()
	for _, cfg := range []Config{
		{Arbiter: FP}, {Arbiter: RR}, {Arbiter: TDMA}, {Arbiter: Perfect},
	} {
		a, err := NewAnalyzer(ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, prio := range []int{0, 1, 2} {
			prev := int64(-1)
			for w := taskmodel.Time(1); w <= 400; w += 7 {
				got := a.BAT(prio, w)
				if got < prev {
					t.Fatalf("%+v prio %d: BAT(%d) = %d < BAT(%d) = %d",
						cfg, prio, w, got, w-7, prev)
				}
				prev = got
			}
		}
	}
}

func TestPersistenceAwareBATDominatedByBaseline(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	for _, arb := range []Arbiter{FP, RR, TDMA, Perfect} {
		base, err := NewAnalyzer(ts, Config{Arbiter: arb})
		if err != nil {
			t.Fatal(err)
		}
		aware, err := NewAnalyzer(ts, Config{Arbiter: arb, Persistence: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, prio := range []int{0, 1, 2} {
			for w := taskmodel.Time(1); w <= 400; w += 7 {
				if h, b := aware.BAT(prio, w), base.BAT(prio, w); h > b {
					t.Fatalf("%v prio %d window %d: aware BAT %d > baseline %d", arb, prio, w, h, b)
				}
			}
		}
	}
}

// randomTaskSets yields generated task sets across utilizations for
// property tests.
func randomTaskSets(t *testing.T, count int, util float64) []*taskmodel.TaskSet {
	t.Helper()
	cfg := taskgen.DefaultConfig()
	cfg.Platform.NumCores = 2
	cfg.TasksPerCore = 4
	cfg.CoreUtilization = util
	pool, err := taskgen.PoolFromSuite(cfg.Platform.Cache)
	if err != nil {
		t.Fatal(err)
	}
	var out []*taskmodel.TaskSet
	for seed := int64(0); seed < int64(count); seed++ {
		ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ts)
	}
	return out
}

func TestPersistenceAwareDominatesBaseline(t *testing.T) {
	// Lemma 1/2 bounds are pointwise at most the baseline bounds, so
	// the persistence-aware analysis must dominate: every baseline-
	// schedulable set stays schedulable, with WCRTs no larger.
	for _, util := range []float64{0.2, 0.4, 0.6} {
		for _, ts := range randomTaskSets(t, 8, util) {
			for _, arb := range []Arbiter{FP, RR, TDMA} {
				base, err := Analyze(ts, Config{Arbiter: arb, Persistence: false})
				if err != nil {
					t.Fatal(err)
				}
				aware, err := Analyze(ts, Config{Arbiter: arb, Persistence: true})
				if err != nil {
					t.Fatal(err)
				}
				if base.Schedulable && !aware.Schedulable {
					t.Fatalf("%v u=%g: baseline schedulable but persistence-aware not", arb, util)
				}
				if base.Schedulable && aware.Schedulable {
					for i := range base.Tasks {
						if aware.Tasks[i].WCRT > base.Tasks[i].WCRT {
							t.Fatalf("%v u=%g task %s: aware WCRT %d > baseline %d",
								arb, util, base.Tasks[i].Name, aware.Tasks[i].WCRT, base.Tasks[i].WCRT)
						}
					}
				}
			}
		}
	}
}

func TestPerfectBusDominatesArbiters(t *testing.T) {
	for _, ts := range randomTaskSets(t, 10, 0.4) {
		if ts.BusUtilization() > 1 {
			continue
		}
		perfect, err := Analyze(ts, Config{Arbiter: Perfect, Persistence: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, arb := range []Arbiter{FP, RR, TDMA} {
			res, err := Analyze(ts, Config{Arbiter: arb, Persistence: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Schedulable && !perfect.Schedulable {
				t.Fatalf("%v schedulable but perfect bus not", arb)
			}
			if res.Schedulable && perfect.Schedulable {
				for i := range res.Tasks {
					if perfect.Tasks[i].WCRT > res.Tasks[i].WCRT {
						t.Fatalf("%v task %s: perfect WCRT %d > %v WCRT %d",
							arb, res.Tasks[i].Name, perfect.Tasks[i].WCRT, arb, res.Tasks[i].WCRT)
					}
				}
			}
		}
	}
}

func TestWCRTAtLeastDemand(t *testing.T) {
	for _, ts := range randomTaskSets(t, 6, 0.3) {
		for _, arb := range []Arbiter{FP, RR, TDMA, Perfect} {
			res, err := Analyze(ts, Config{Arbiter: arb, Persistence: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				continue
			}
			for i, tr := range res.Tasks {
				task := ts.Tasks[i]
				floor := task.PD + taskmodel.Time(task.MD)*ts.Platform.DMem
				if tr.WCRT < floor {
					t.Fatalf("%v task %s: WCRT %d below isolated demand %d", arb, tr.Name, tr.WCRT, floor)
				}
			}
		}
	}
}

func TestArbiterStrings(t *testing.T) {
	cases := map[Arbiter]string{FP: "FP", RR: "RR", TDMA: "TDMA", Perfect: "Perfect", Arbiter(9): "Arbiter(9)"}
	for arb, want := range cases {
		if got := arb.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(arb), got, want)
		}
	}
}

func TestMultisetCPRODominatesUnion(t *testing.T) {
	// The multiset CPRO bound is min(union, multiset): analyses using it
	// must dominate the plain union configuration.
	for _, ts := range randomTaskSets(t, 6, 0.4) {
		for _, arb := range []Arbiter{FP, RR} {
			union, err := Analyze(ts, Config{Arbiter: arb, Persistence: true, CPRO: persistence.Union})
			if err != nil {
				t.Fatal(err)
			}
			multi, err := Analyze(ts, Config{Arbiter: arb, Persistence: true, CPRO: persistence.MultisetUnion})
			if err != nil {
				t.Fatal(err)
			}
			if union.Schedulable && !multi.Schedulable {
				t.Fatalf("%v: union schedulable but multiset not", arb)
			}
			if union.Schedulable && multi.Schedulable {
				for i := range union.Tasks {
					if multi.Tasks[i].WCRT > union.Tasks[i].WCRT {
						t.Fatalf("%v task %s: multiset WCRT %d > union %d",
							arb, union.Tasks[i].Name, multi.Tasks[i].WCRT, union.Tasks[i].WCRT)
					}
				}
			}
		}
	}
}
