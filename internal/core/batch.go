package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// BatchRequest asks for one task set to be analyzed under a list of
// configurations (typically the six variants of a sweep point).
type BatchRequest struct {
	TS   *taskmodel.TaskSet
	Cfgs []Config
	// Label names the request in trace spans and progress callbacks
	// (e.g. "u=0.55/set 12"); empty falls back to the request index.
	Label string
}

// BatchOptions carries the cross-cutting knobs of AnalyzeBatchOpts.
// The zero value reproduces AnalyzeBatch exactly.
type BatchOptions struct {
	// Workers sizes the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Observer receives telemetry from every analysis. Each worker gets
	// its own trace track, so spans render as per-worker swimlanes.
	Observer *telemetry.Observer
	// Context, when non-nil, cancels the batch: workers finish the
	// request they are on and stop claiming new ones. The partial
	// results gathered so far are returned together with ctx.Err(), so
	// interrupted sweeps can still flush what they have.
	Context context.Context
	// OnResult, when non-nil, is called once per finished request with
	// the request index, its results (nil on analysis error) and the
	// label. Called from worker goroutines; must be safe for concurrent
	// use.
	OnResult func(i int, res []*Result, label string)
}

// AnalyzeBatch fans the requests across a worker pool and returns, per
// request, the results in Cfgs order. Each request is processed by one
// worker via AnalyzeAll, so the configurations of a request share
// precomputed interference tables while distinct requests run in
// parallel. workers <= 0 selects GOMAXPROCS. The first error aborts
// nothing already in flight but is returned after all workers drain.
func AnalyzeBatch(reqs []BatchRequest, workers int) ([][]*Result, error) {
	return AnalyzeBatchOpts(reqs, BatchOptions{Workers: workers})
}

// AnalyzeBatchOpts is AnalyzeBatch with options. Analysis errors take
// precedence over cancellation; on cancellation the partial results
// are returned alongside the context's error.
func AnalyzeBatchOpts(reqs []BatchRequest, opts BatchOptions) ([][]*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([][]*Result, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obs := opts.Observer.WithTrack(fmt.Sprintf("worker-%02d", w))
			for i := range idx {
				if ctx.Err() != nil {
					// Keep draining so the feeder never blocks, but do no
					// further work once the batch is canceled.
					continue
				}
				label := reqs[i].Label
				if label == "" {
					label = fmt.Sprintf("request %d", i)
				}
				var sp telemetry.Span
				if obs.Tracing() {
					sp = obs.Span(label, "batch")
				}
				out[i], errs[i] = analyzeAllObs(reqs[i].TS, reqs[i].Cfgs, obs)
				if obs.Tracing() {
					sp.End()
				}
				if opts.OnResult != nil {
					opts.OnResult(i, out[i], label)
				}
			}
		}(w)
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
