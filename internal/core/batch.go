package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// BatchRequest asks for one task set to be analyzed under a list of
// configurations (typically the six variants of a sweep point).
type BatchRequest struct {
	TS   *taskmodel.TaskSet
	Cfgs []Config
	// Label names the request in trace spans and progress callbacks
	// (e.g. "u=0.55/set 12"); empty falls back to the request index.
	Label string
}

// BatchOptions carries the cross-cutting knobs of AnalyzeBatchOpts.
// The zero value reproduces AnalyzeBatch exactly.
type BatchOptions struct {
	// Workers sizes the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Observer receives telemetry from every analysis. Each worker gets
	// its own trace track, so spans render as per-worker swimlanes.
	Observer *telemetry.Observer
	// Context, when non-nil, cancels the batch: workers finish the
	// request they are on and stop claiming new ones. The partial
	// results gathered so far are returned together with ctx.Err(), so
	// interrupted sweeps can still flush what they have.
	Context context.Context
	// OnResult, when non-nil, is called once per finished request with
	// the request index, its results (nil on analysis error) and the
	// label. Called from worker goroutines; must be safe for concurrent
	// use.
	OnResult func(i int, res []*Result, label string)
	// Isolate converts per-request failures — panics as well as
	// analysis errors — into recorded per-job failures instead of
	// failing the whole batch. A panicking request is retried once on
	// the naive reference analyzer (the optimized engine and the
	// reference are independent code paths, so an engine bug degrades
	// one data point, not the run); if the retry fails too, the
	// request's result slot stays nil and OnFailure reports the cause.
	// Panics are counted on sweep.job_panics, terminal failures on
	// sweep.job_failures.
	Isolate bool
	// OnFailure, when non-nil with Isolate, receives each isolated
	// request failure together with the stack of the original panic
	// (nil for plain analysis errors). Called from worker goroutines;
	// must be safe for concurrent use.
	OnFailure func(i int, label string, err error, stack []byte)
	// Memo, when non-nil, is a content-addressed store shared by every
	// request of the batch (and, if the caller retains it, across
	// batches): near-duplicate task sets recompute only the table
	// columns and curve backbones their differences invalidate (see
	// Options.Memo). The reference retry of the Isolate path
	// deliberately bypasses it — the retry exists to sidestep engine
	// state, cached columns and curves included.
	Memo *MemoStore
}

// batchFaultHook, when non-nil, runs before every batch analysis
// attempt: attempt 0 is the regular engine, attempt 1 the reference
// retry after a panic. It exists solely so tests can inject panics
// into the isolation path; production code never sets it.
var batchFaultHook func(label string, attempt int)

// SetBatchFaultHook installs (or, with nil, removes) the test-only
// fault-injection hook. Not safe to call while a batch is running.
func SetBatchFaultHook(f func(label string, attempt int)) { batchFaultHook = f }

// panicError carries a recovered panic value and its stack as an
// error.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// analyzeGuarded runs one attempt of a request under recover.
func analyzeGuarded(req BatchRequest, label string, attempt int, obs *telemetry.Observer, memo *MemoStore) (res []*Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &panicError{val: r, stack: debug.Stack()}
		}
	}()
	if hook := batchFaultHook; hook != nil {
		hook(label, attempt)
	}
	if attempt == 0 {
		return analyzeAllObs(req.TS, req.Cfgs, obs, memo)
	}
	// Reference retry: the retained naive analyzer, config by config.
	out := make([]*Result, len(req.Cfgs))
	for i, cfg := range req.Cfgs {
		r, err := AnalyzeReference(req.TS, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// analyzeIsolated is the Isolate path: recover panics, retry once on
// the reference analyzer, and fold the outcome into (results, error).
func analyzeIsolated(req BatchRequest, label string, obs *telemetry.Observer, memo *MemoStore) ([]*Result, error) {
	res, err := analyzeGuarded(req, label, 0, obs, memo)
	pe, panicked := err.(*panicError)
	if !panicked {
		return res, err
	}
	obs.Add(telemetry.CtrJobPanics, 1)
	res, rerr := analyzeGuarded(req, label, 1, obs, nil)
	if rerr != nil {
		return nil, fmt.Errorf("%s: %w; reference retry: %v", label, pe, rerr)
	}
	return res, nil
}

// AnalyzeBatch fans the requests across a worker pool and returns, per
// request, the results in Cfgs order. Each request is processed by one
// worker via AnalyzeAll, so the configurations of a request share
// precomputed interference tables while distinct requests run in
// parallel. workers <= 0 selects GOMAXPROCS. The first error aborts
// nothing already in flight but is returned after all workers drain.
func AnalyzeBatch(reqs []BatchRequest, workers int) ([][]*Result, error) {
	return AnalyzeBatchOpts(reqs, BatchOptions{Workers: workers})
}

// AnalyzeBatchOpts is AnalyzeBatch with options. Analysis errors take
// precedence over cancellation; on cancellation the partial results
// are returned alongside the context's error.
func AnalyzeBatchOpts(reqs []BatchRequest, opts BatchOptions) ([][]*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([][]*Result, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obs := opts.Observer.WithTrack(fmt.Sprintf("worker-%02d", w))
			for i := range idx {
				if ctx.Err() != nil {
					// Keep draining so the feeder never blocks, but do no
					// further work once the batch is canceled.
					continue
				}
				label := reqs[i].Label
				if label == "" {
					label = fmt.Sprintf("request %d", i)
				}
				var sp telemetry.Span
				if obs.Tracing() {
					sp = obs.Span(label, "batch")
				}
				if opts.Isolate {
					out[i], errs[i] = analyzeIsolated(reqs[i], label, obs, opts.Memo)
					if errs[i] != nil {
						obs.Add(telemetry.CtrJobFailures, 1)
						if opts.OnFailure != nil {
							var pe *panicError
							var stack []byte
							if errors.As(errs[i], &pe) {
								stack = pe.stack
							}
							opts.OnFailure(i, label, errs[i], stack)
						}
						// Recorded per-job; the batch itself stays healthy.
						errs[i] = nil
					}
				} else {
					out[i], errs[i] = analyzeAllObs(reqs[i].TS, reqs[i].Cfgs, obs, opts.Memo)
				}
				if obs.Tracing() {
					sp.End()
				}
				if opts.OnResult != nil {
					opts.OnResult(i, out[i], label)
				}
			}
		}(w)
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
