package core

import (
	"runtime"
	"sync"

	"repro/internal/taskmodel"
)

// BatchRequest asks for one task set to be analyzed under a list of
// configurations (typically the six variants of a sweep point).
type BatchRequest struct {
	TS   *taskmodel.TaskSet
	Cfgs []Config
}

// AnalyzeBatch fans the requests across a worker pool and returns, per
// request, the results in Cfgs order. Each request is processed by one
// worker via AnalyzeAll, so the configurations of a request share
// precomputed interference tables while distinct requests run in
// parallel. workers <= 0 selects GOMAXPROCS. The first error aborts
// nothing already in flight but is returned after all workers drain.
func AnalyzeBatch(reqs []BatchRequest, workers int) ([][]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([][]*Result, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = AnalyzeAll(reqs[i].TS, reqs[i].Cfgs)
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
