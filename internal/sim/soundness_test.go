package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// TestAnalysisDominatesSimulation is the repository's end-to-end
// soundness check: for randomly generated workloads whose tasks run
// the very programs their parameters were extracted from, the
// analytical WCRT bound of every analysis variant must dominate the
// largest response time observed in simulation — including the
// persistence-aware variants, whose bounds are tighter.
func TestAnalysisDominatesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soundness sweep skipped in -short mode")
	}
	type variant struct {
		arb core.Arbiter
		pol Policy
	}
	variants := []variant{
		{core.FP, PolicyFP},
		{core.RR, PolicyRR},
		{core.TDMA, PolicyTDMA},
	}
	for seed := int64(0); seed < 12; seed++ {
		util := 0.15 + 0.05*float64(seed%5)
		plat, bindings := generateBindings(t, seed, util, 2, 3)
		tasks := make([]*taskmodel.Task, len(bindings))
		for i := range bindings {
			tasks[i] = bindings[i].Task
		}
		ts := taskmodel.NewTaskSet(plat, tasks)
		horizon := HorizonForJobs(bindings, 3)
		if horizon > 5_000_000 {
			continue // keep the sweep fast
		}
		for _, v := range variants {
			simRes, err := Run(plat, bindings, Config{Policy: v.pol, Horizon: horizon})
			if err != nil {
				t.Fatalf("seed %d %v: sim: %v", seed, v.pol, err)
			}
			for _, anaCfg := range []core.Config{
				{Arbiter: v.arb},
				{Arbiter: v.arb, Persistence: true},
				{Arbiter: v.arb, Persistence: true, CPRO: persistence.MultisetUnion},
			} {
				persistenceOn := anaCfg.Persistence
				anaRes, err := core.Analyze(ts, anaCfg)
				if err != nil {
					t.Fatalf("seed %d %v: analysis: %v", seed, v.arb, err)
				}
				if !anaRes.Schedulable {
					continue // no bound claimed
				}
				bound := map[int]taskmodel.Time{}
				for _, tr := range anaRes.Tasks {
					bound[tr.Priority] = tr.WCRT
				}
				for prio, st := range simRes.Tasks {
					if st.Completed == 0 {
						continue
					}
					if st.MaxResponse > bound[prio] {
						t.Errorf("seed %d u=%.2f %v (persistence=%v) task %s: observed %d > WCRT bound %d",
							seed, util, v.arb, persistenceOn, st.Name, st.MaxResponse, bound[prio])
					}
					if st.DeadlineMisses > 0 {
						t.Errorf("seed %d u=%.2f %v (persistence=%v) task %s: %d deadline misses despite schedulable verdict",
							seed, util, v.arb, persistenceOn, st.Name, st.DeadlineMisses)
					}
				}
			}
		}
	}
}

// TestAnalysisDominatesSimulationWithOffsets repeats the soundness
// check with skewed first releases: the analysis makes no assumption
// about task phasing, so the bound must hold for arbitrary offsets too.
func TestAnalysisDominatesSimulationWithOffsets(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soundness sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 6; seed++ {
		plat, bindings := generateBindings(t, seed+100, 0.25, 2, 3)
		tasks := make([]*taskmodel.Task, len(bindings))
		offsets := map[int]taskmodel.Time{}
		for i := range bindings {
			tasks[i] = bindings[i].Task
			offsets[tasks[i].Priority] = taskmodel.Time((seed*37 + int64(i)*113) % 500)
		}
		ts := taskmodel.NewTaskSet(plat, tasks)
		horizon := HorizonForJobs(bindings, 3)
		if horizon > 5_000_000 {
			continue
		}
		simRes, err := Run(plat, bindings, Config{Policy: PolicyRR, Horizon: horizon, Offsets: offsets})
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}
		anaRes, err := core.Analyze(ts, core.Config{Arbiter: core.RR, Persistence: true})
		if err != nil {
			t.Fatalf("seed %d: analysis: %v", seed, err)
		}
		if !anaRes.Schedulable {
			continue
		}
		bound := map[int]taskmodel.Time{}
		for _, tr := range anaRes.Tasks {
			bound[tr.Priority] = tr.WCRT
		}
		for prio, st := range simRes.Tasks {
			if st.Completed > 0 && st.MaxResponse > bound[prio] {
				t.Errorf("seed %d task %s: observed %d > WCRT bound %d (offset run)",
					seed, st.Name, st.MaxResponse, bound[prio])
			}
		}
	}
}

// TestSimulatedMissesWithinAnalyticalDemand checks the memory-demand
// side: over a window with no preemption (solo task), per-job misses
// never exceed MD, and warm jobs never exceed MD^r.
func TestSimulatedMissesWithinAnalyticalDemand(t *testing.T) {
	plat, bindings := generateBindings(t, 42, 0.2, 1, 1)
	b := bindings[0]
	horizon := b.Task.Period * 4
	res, err := Run(plat, bindings, Config{Policy: PolicyFP, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tasks[b.Task.Priority]
	if st.Completed < 2 {
		t.Fatalf("completed = %d, want >= 2", st.Completed)
	}
	if st.MaxMissesPerJob > b.Task.MD {
		t.Errorf("max misses per job %d > MD %d", st.MaxMissesPerJob, b.Task.MD)
	}
	// Total misses over k jobs bounded by Eq. (10): MD for the first
	// plus MD^r for each later job, plus nothing else (solo task).
	maxTotal := b.Task.MD + (st.Completed-1)*b.Task.MDr
	if st.Misses > maxTotal {
		t.Errorf("total misses %d > M̂D bound %d", st.Misses, maxTotal)
	}
}

// TestAnalysisDominatesSimulationSporadic fuzzes arrivals: sporadic
// releases with random inter-arrival stretching must stay within the
// analytical bounds, which assume only the minimum separation T.
func TestAnalysisDominatesSimulationSporadic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soundness sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 6; seed++ {
		plat, bindings := generateBindings(t, seed+200, 0.25, 2, 3)
		tasks := make([]*taskmodel.Task, len(bindings))
		for i := range bindings {
			tasks[i] = bindings[i].Task
		}
		ts := taskmodel.NewTaskSet(plat, tasks)
		horizon := HorizonForJobs(bindings, 4)
		if horizon > 5_000_000 {
			continue
		}
		for _, jitter := range []float64{0.1, 0.5, 1.0} {
			simRes, err := Run(plat, bindings, Config{
				Policy: PolicyRR, Horizon: horizon,
				ArrivalJitter: jitter, Seed: seed,
			})
			if err != nil {
				t.Fatalf("seed %d jitter %g: %v", seed, jitter, err)
			}
			anaRes, err := core.Analyze(ts, core.Config{Arbiter: core.RR, Persistence: true})
			if err != nil {
				t.Fatal(err)
			}
			if !anaRes.Schedulable {
				continue
			}
			bound := map[int]taskmodel.Time{}
			for _, tr := range anaRes.Tasks {
				bound[tr.Priority] = tr.WCRT
			}
			for prio, st := range simRes.Tasks {
				if st.Completed > 0 && st.MaxResponse > bound[prio] {
					t.Errorf("seed %d jitter %g task %s: observed %d > bound %d",
						seed, jitter, st.Name, st.MaxResponse, bound[prio])
				}
			}
		}
	}
}

// TestSporadicReducesLoad sanity-checks the sporadic mode itself:
// stretching arrivals can only reduce the number of released jobs.
func TestSporadicReducesLoad(t *testing.T) {
	plat, bindings := generateBindings(t, 7, 0.2, 1, 2)
	horizon := HorizonForJobs(bindings, 5)
	periodic, err := Run(plat, bindings, Config{Policy: PolicyFP, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	sporadic, err := Run(plat, bindings, Config{Policy: PolicyFP, Horizon: horizon, ArrivalJitter: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for prio, p := range periodic.Tasks {
		if s := sporadic.Tasks[prio]; s.Released > p.Released {
			t.Errorf("task %s: sporadic released %d > periodic %d", p.Name, s.Released, p.Released)
		}
	}
}
