package sim

import "fmt"

// Policy is the bus arbitration policy simulated on the shared memory
// bus. The semantics mirror the assumptions under which the analysis
// equations are sound:
//
//   - PolicyFP: work-conserving; the pending request whose task has the
//     highest priority wins; a transaction in service is never
//     preempted.
//   - PolicyRR: work-conserving round robin over cores with up to s
//     consecutive services per core's turn; cores without a pending
//     request are skipped instantly.
//   - PolicyTDMA: non-work-conserving, demand-driven slotting: when the
//     bus is free, the turn owner's request is served if present;
//     otherwise the bus idles for a full slot (d_mem) and the turn
//     advances — other cores cannot steal the unused slot. Each core
//     owns s consecutive slots per cycle of NumCores×s, so a request
//     waits at most (NumCores−1)·s slots plus one in-service
//     transaction, exactly Eq. (9)'s accounting.
//   - PolicyRegulated: work-conserving MemGuard-style bandwidth
//     regulation: every core's budget of regQ accesses refills every
//     regP cycles; cores with budget left have strict priority over
//     exhausted ones, each class served round-robin one access at a
//     time, and exhausted cores reclaim otherwise-idle bandwidth. A
//     budgeted grant spends one unit of the granting core's budget.
//   - PolicyParAware: work-conserving round robin over cores, one
//     access per turn — the single-outstanding-request arbitration the
//     parallelism-aware per-access bound models (each access waits for
//     at most one in-flight request per other core).
type Policy int

const (
	PolicyFP Policy = iota
	PolicyRR
	PolicyTDMA
	PolicyRegulated
	PolicyParAware
)

func (p Policy) String() string {
	switch p {
	case PolicyFP:
		return "FP"
	case PolicyRR:
		return "RR"
	case PolicyTDMA:
		return "TDMA"
	case PolicyRegulated:
		return "Regulated"
	case PolicyParAware:
		return "ParAware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// request is one pending bus transaction: core wants block, issued by
// the task with the given priority.
type request struct {
	core     int
	block    int
	priority int
}

// bus models the shared memory bus: at most one transaction in
// service, at most one pending request per core.
type bus struct {
	policy   Policy
	numCores int
	slotSize int
	dmem     int64

	pending []*request // indexed by core, nil if none

	// in-service transaction
	busy      bool
	current   request
	remaining int64

	// RR/TDMA/ParAware turn state (also the budgeted-class pointer of
	// the regulated bus)
	turnCore  int
	turnUsed  int
	idleSlots int64 // TDMA: cycles left of a deliberately idle slot

	// Regulated state: per-core budgets, refill parameters, the cycle
	// counter driving replenishment, the reclaim-class round-robin
	// pointer (advanced only by reclaim grants, so budgeted traffic
	// cannot reorder the exhausted cores among themselves), and whether
	// the in-service transaction was a reclaim grant.
	regQ        int64
	regP        int64
	budget      []int64
	now         int64
	reclaimTurn int
	curReclaim  bool

	// stats
	served   int64
	busyTime int64
	idleHeld int64 // TDMA: cycles idled away while demand was pending
}

func newBus(policy Policy, numCores, slotSize int, dmem, regQ, regP int64) *bus {
	b := &bus{
		policy:   policy,
		numCores: numCores,
		slotSize: slotSize,
		dmem:     dmem,
		regQ:     regQ,
		regP:     regP,
		pending:  make([]*request, numCores),
	}
	if policy == PolicyRegulated {
		b.budget = make([]int64, numCores)
	}
	return b
}

// submit registers a request for the core; at most one may be
// outstanding per core.
func (b *bus) submit(r request) {
	if b.pending[r.core] != nil {
		panic(fmt.Sprintf("sim: core %d already has a pending bus request", r.core))
	}
	b.pending[r.core] = &r
}

// cancel withdraws the core's pending request, if any; an in-service
// transaction cannot be cancelled. Reports whether a request was
// withdrawn.
func (b *bus) cancel(core int) bool {
	if b.pending[core] == nil {
		return false
	}
	b.pending[core] = nil
	return true
}

// inService reports whether a transaction for the core is currently on
// the bus.
func (b *bus) inService(core int) bool {
	return b.busy && b.current.core == core
}

func (b *bus) hasPending() bool {
	for _, r := range b.pending {
		if r != nil {
			return true
		}
	}
	return false
}

// advanceTurn moves RR/TDMA arbitration to the next core's slot group.
func (b *bus) advanceTurn() {
	b.turnCore = (b.turnCore + 1) % b.numCores
	b.turnUsed = 0
}

// tick advances the bus by one cycle. A request granted in this cycle
// receives the cycle as its first service cycle, so back-to-back
// transactions leave no gap and a request submitted earlier in the
// same simulation cycle starts service immediately. The completed
// request, if the in-flight transaction finished at the end of this
// cycle, is returned.
// slotLimit is the number of consecutive services per turn: the
// configured slot size for RR/TDMA, one for the parallelism-aware bus.
func (b *bus) slotLimit() int {
	if b.policy == PolicyParAware {
		return 1
	}
	return b.slotSize
}

// replenish refills every core's budget at regulation period
// boundaries (cycle 0 starts every core fully budgeted) and advances
// the regulation clock. Called once per cycle, before arbitration.
func (b *bus) replenish() {
	if b.policy != PolicyRegulated {
		return
	}
	if b.now%b.regP == 0 {
		for c := range b.budget {
			b.budget[c] = b.regQ
		}
	}
	b.now++
}

func (b *bus) tick() *request {
	b.replenish()
	// TDMA: an idle slot in progress blocks the bus even with demand
	// pending (non-work-conserving).
	if b.idleSlots > 0 {
		if b.hasPending() {
			b.idleHeld++
		}
		b.idleSlots--
		if b.idleSlots == 0 {
			b.advanceTurn()
		}
		return nil
	}
	if !b.busy {
		b.grant()
		if b.idleSlots > 0 {
			// grant decided to burn a TDMA slot; consume its first cycle.
			if b.hasPending() {
				b.idleHeld++
			}
			b.idleSlots--
			if b.idleSlots == 0 {
				b.advanceTurn()
			}
			return nil
		}
	}
	if !b.busy {
		return nil
	}
	b.busyTime++
	b.remaining--
	if b.remaining > 0 {
		return nil
	}
	b.busy = false
	done := b.current
	switch b.policy {
	case PolicyRR, PolicyTDMA, PolicyParAware:
		b.turnUsed++
		if b.turnUsed >= b.slotLimit() {
			b.advanceTurn()
		}
	case PolicyRegulated:
		// Slot-1 round robin within the class the grant was made under;
		// the other class's pointer is untouched.
		if b.curReclaim {
			b.reclaimTurn = (b.reclaimTurn + 1) % b.numCores
		} else {
			b.advanceTurn()
		}
	}
	return &done
}

// grant selects the next transaction according to the policy; for
// TDMA it may instead schedule an idle slot.
func (b *bus) grant() {
	switch b.policy {
	case PolicyFP:
		best := -1
		for c, r := range b.pending {
			if r == nil {
				continue
			}
			if best == -1 || r.priority < b.pending[best].priority {
				best = c
			}
		}
		if best >= 0 {
			b.start(best)
		}
	case PolicyRR, PolicyParAware:
		if !b.hasPending() {
			return
		}
		// Work-conserving: skip turn owners without requests instantly.
		for scanned := 0; scanned < b.numCores; scanned++ {
			if b.pending[b.turnCore] != nil {
				b.start(b.turnCore)
				return
			}
			b.advanceTurn()
		}
	case PolicyRegulated:
		// Budgeted requests first, round-robin from the budgeted turn
		// pointer; a grant spends one budget unit.
		for scanned := 0; scanned < b.numCores; scanned++ {
			c := (b.turnCore + scanned) % b.numCores
			if b.pending[c] != nil && b.budget[c] > 0 {
				b.turnCore = c
				b.turnUsed = 0
				b.budget[c]--
				b.curReclaim = false
				b.start(c)
				return
			}
		}
		// No budgeted demand: exhausted cores reclaim the bandwidth,
		// round-robin on their own pointer (work-conserving).
		for scanned := 0; scanned < b.numCores; scanned++ {
			c := (b.reclaimTurn + scanned) % b.numCores
			if b.pending[c] != nil {
				b.reclaimTurn = c
				b.curReclaim = true
				b.start(c)
				return
			}
		}
	case PolicyTDMA:
		if !b.hasPending() {
			// No demand: hold the turn open until a request arrives.
			return
		}
		if b.pending[b.turnCore] != nil {
			b.start(b.turnCore)
			return
		}
		// The owner has no demand but others do: burn one full slot.
		b.idleSlots = b.dmem
	default:
		panic(fmt.Sprintf("sim: unknown policy %d", int(b.policy)))
	}
}

func (b *bus) start(core int) {
	b.current = *b.pending[core]
	b.pending[core] = nil
	b.busy = true
	b.remaining = b.dmem
	b.served++
}
