package sim

import "testing"

// drive advances the bus n cycles, recording completions per core.
func drive(b *bus, n int) []request {
	var done []request
	for i := 0; i < n; i++ {
		if d := b.tick(); d != nil {
			done = append(done, *d)
		}
	}
	return done
}

func TestFPBusGrantsHighestPriority(t *testing.T) {
	b := newBus(PolicyFP, 3, 1, 4, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 5})
	b.submit(request{core: 1, block: 2, priority: 1}) // highest
	b.submit(request{core: 2, block: 3, priority: 3})
	done := drive(b, 12)
	if len(done) != 3 {
		t.Fatalf("completions = %d, want 3", len(done))
	}
	if done[0].core != 1 || done[1].core != 2 || done[2].core != 0 {
		t.Fatalf("service order = %v, want cores 1,2,0", done)
	}
}

func TestFPBusNonPreemptiveService(t *testing.T) {
	b := newBus(PolicyFP, 2, 1, 5, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 9})
	drive(b, 2) // low-priority transaction in service
	b.submit(request{core: 1, block: 2, priority: 0})
	done := drive(b, 10)
	if len(done) != 2 || done[0].core != 0 {
		t.Fatalf("in-service transaction was not completed first: %v", done)
	}
}

func TestBackToBackTransactionsNoGap(t *testing.T) {
	b := newBus(PolicyFP, 2, 1, 5, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 0})
	b.submit(request{core: 1, block: 2, priority: 1})
	drive(b, 10)
	if b.busyTime != 10 {
		t.Fatalf("busy %d of 10 cycles, want 10 (no idle gap between transactions)", b.busyTime)
	}
}

func TestRRSkipsIdleCoresInstantly(t *testing.T) {
	b := newBus(PolicyRR, 4, 2, 3, 0, 0)
	// Only core 3 has demand; it must be served immediately even though
	// the turn pointer starts at core 0.
	b.submit(request{core: 3, block: 1, priority: 0})
	done := drive(b, 3)
	if len(done) != 1 || done[0].core != 3 {
		t.Fatalf("RR did not skip idle cores: %v (busy %d)", done, b.busyTime)
	}
}

func TestRRSlotQuota(t *testing.T) {
	// s=2: core 0 gets at most two consecutive services before core 1.
	b := newBus(PolicyRR, 2, 2, 1, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 0})
	b.submit(request{core: 1, block: 9, priority: 1})
	var order []int
	for i := 0; i < 6; i++ {
		if d := b.tick(); d != nil {
			order = append(order, d.core)
			// Core 0 instantly re-requests, core 1 only once.
			if d.core == 0 {
				b.submit(request{core: 0, block: 1, priority: 0})
			}
		}
	}
	// Expected: 0,0 (quota), then 1, then 0,0...
	want := []int{0, 0, 1, 0, 0, 0}
	for i := range want {
		if i >= len(order) {
			t.Fatalf("order = %v, want prefix %v", order, want)
		}
		if i < 3 && order[i] != want[i] {
			t.Fatalf("order = %v, want prefix [0 0 1]", order)
		}
	}
}

func TestTDMAIdlesUnusedSlot(t *testing.T) {
	// Non-work-conserving: core 1's request must wait for core 0's idle
	// slot to elapse.
	b := newBus(PolicyTDMA, 2, 1, 4, 0, 0)
	b.submit(request{core: 1, block: 7, priority: 0})
	done := drive(b, 4)
	if len(done) != 0 {
		t.Fatalf("TDMA served during the owner's idle slot: %v", done)
	}
	done = drive(b, 4)
	if len(done) != 1 || done[0].core != 1 {
		t.Fatalf("TDMA did not serve after the idle slot: %v", done)
	}
	if b.idleHeld == 0 {
		t.Error("idleHeld stat not recorded")
	}
}

func TestTDMAWorstCaseWaitBound(t *testing.T) {
	// A request never waits more than (cores−1)·s slots plus one
	// in-flight transaction.
	cores, s, dmem := 4, 2, int64(3)
	b := newBus(PolicyTDMA, cores, s, dmem, 0, 0)
	// Saturate every other core so slots are used, then measure core
	// 2's wait.
	submitAll := func() {
		for c := 0; c < cores; c++ {
			if c != 2 && b.pending[c] == nil && !(b.busy && b.current.core == c) {
				b.submit(request{core: c, block: c, priority: c})
			}
		}
	}
	submitAll()
	drive(b, 1) // start someone
	b.submit(request{core: 2, block: 99, priority: 0})
	bound := (int64(cores-1)*int64(s) + 2) * dmem // (m−1)s slots + in-flight + own service
	waited := int64(0)
	for waited = 0; waited <= bound+1; waited++ {
		submitAll()
		if d := b.tick(); d != nil && d.core == 2 {
			break
		}
	}
	if waited > bound {
		t.Fatalf("core 2 waited %d cycles, Eq. (9)-style bound is %d", waited, bound)
	}
}

func TestParAwareServesOneAccessPerTurn(t *testing.T) {
	// Slot size 3 is configured but must be ignored: the
	// parallelism-aware bus alternates single accesses.
	b := newBus(PolicyParAware, 2, 3, 1, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 0})
	b.submit(request{core: 1, block: 9, priority: 1})
	var order []int
	for i := 0; i < 6; i++ {
		if d := b.tick(); d != nil {
			order = append(order, d.core)
			b.submit(request{core: d.core, block: 1, priority: d.priority})
		}
	}
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v (strict alternation)", order, want)
		}
	}
}

func TestRegulatedBudgetedPriorityAndReclaim(t *testing.T) {
	// Q=1, P=100, d_mem=1: each core gets one budgeted access per
	// period. Core 0 floods the bus; once its budget is spent, core 1's
	// budgeted request must preempt further grants to core 0, and core
	// 0's surplus is served only as reclaim afterwards.
	b := newBus(PolicyRegulated, 2, 2, 1, 1, 100)
	b.submit(request{core: 0, block: 1, priority: 0})
	var order []int
	for i := 0; i < 4; i++ {
		if d := b.tick(); d != nil {
			order = append(order, d.core)
			if d.core == 0 {
				b.submit(request{core: 0, block: 1, priority: 0})
			}
		}
		if i == 0 {
			// Arrives while core 0 is exhausted but re-requesting.
			b.submit(request{core: 1, block: 9, priority: 1})
		}
	}
	want := []int{0, 1, 0, 0}
	if len(order) != len(want) {
		t.Fatalf("completions = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v (budgeted request must beat exhausted core)", order, want)
		}
	}
}

func TestRegulatedBudgetReplenishes(t *testing.T) {
	// Q=2, P=10, d_mem=1, one core: after exhausting its budget the
	// core still gets served (reclaim, work-conserving), and the refill
	// at the period boundary restores budgeted service.
	b := newBus(PolicyRegulated, 1, 2, 1, 2, 10)
	served := 0
	for i := 0; i < 25; i++ {
		if b.pending[0] == nil && !b.busy {
			b.submit(request{core: 0, block: 1, priority: 0})
		}
		if d := b.tick(); d != nil {
			served++
		}
	}
	if served < 20 {
		t.Fatalf("served %d of ~24 possible accesses; reclaim must keep the bus work-conserving", served)
	}
	if b.budget[0] != 0 {
		t.Fatalf("budget = %d after saturation, want 0 (spent each period)", b.budget[0])
	}
}

func TestCancelPendingRequest(t *testing.T) {
	b := newBus(PolicyFP, 2, 1, 5, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 0})
	drive(b, 1) // core 0 in service
	b.submit(request{core: 1, block: 2, priority: 1})
	if !b.cancel(1) {
		t.Fatal("cancel of pending request failed")
	}
	if b.cancel(1) {
		t.Fatal("double cancel succeeded")
	}
	if b.cancel(0) {
		t.Fatal("cancel of in-service transaction succeeded")
	}
	done := drive(b, 10)
	if len(done) != 1 || done[0].core != 0 {
		t.Fatalf("cancelled request was served: %v", done)
	}
}

func TestSubmitTwicePanics(t *testing.T) {
	b := newBus(PolicyFP, 1, 1, 5, 0, 0)
	b.submit(request{core: 0, block: 1, priority: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("double submit did not panic")
		}
	}()
	b.submit(request{core: 0, block: 2, priority: 0})
}

func TestInService(t *testing.T) {
	b := newBus(PolicyFP, 2, 1, 5, 0, 0)
	if b.inService(0) {
		t.Fatal("idle bus reports in-service")
	}
	b.submit(request{core: 0, block: 1, priority: 0})
	drive(b, 1)
	if !b.inService(0) || b.inService(1) {
		t.Fatal("inService core attribution wrong")
	}
}
