package sim

import (
	"fmt"
	"io"

	"repro/internal/taskmodel"
)

// EventKind classifies simulator trace events.
type EventKind int

const (
	// EvRelease: a job arrived.
	EvRelease EventKind = iota
	// EvComplete: a job finished (Value = response time).
	EvComplete
	// EvMissBus: an L1(+L2) miss issued a bus request (Value = block).
	EvMissBus
	// EvBusComplete: a bus transaction completed and filled the cache
	// (Value = block).
	EvBusComplete
	// EvL2Hit: an L1 miss was satisfied by the L2 (Value = block).
	EvL2Hit
	// EvPreempt: a running job was displaced by a higher-priority one
	// (Value = preemptor priority).
	EvPreempt
	// EvDeadlineMiss: a job completed after its deadline (Value =
	// response time).
	EvDeadlineMiss
)

func (k EventKind) String() string {
	switch k {
	case EvRelease:
		return "release"
	case EvComplete:
		return "complete"
	case EvMissBus:
		return "miss->bus"
	case EvBusComplete:
		return "bus-complete"
	case EvL2Hit:
		return "l2-hit"
	case EvPreempt:
		return "preempt"
	case EvDeadlineMiss:
		return "deadline-miss"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one simulator occurrence.
type Event struct {
	Time     taskmodel.Time
	Kind     EventKind
	Task     string
	Priority int
	Core     int
	Value    int64
}

// Tracer receives simulator events as they happen. Implementations
// must be fast; the simulator calls them inline.
type Tracer interface {
	Event(Event)
}

// WriterTracer formats events one per line onto an io.Writer.
type WriterTracer struct {
	W io.Writer
}

// Event implements Tracer.
func (t *WriterTracer) Event(e Event) {
	fmt.Fprintf(t.W, "%8d  core%d  %-13s %s(p%d)", e.Time, e.Core, e.Kind, e.Task, e.Priority)
	switch e.Kind {
	case EvComplete, EvDeadlineMiss:
		fmt.Fprintf(t.W, " R=%d", e.Value)
	case EvMissBus, EvBusComplete, EvL2Hit:
		fmt.Fprintf(t.W, " block=%d", e.Value)
	case EvPreempt:
		fmt.Fprintf(t.W, " by-priority=%d", e.Value)
	}
	fmt.Fprintln(t.W)
}

// CollectTracer appends events to a slice, for tests and programmatic
// consumers.
type CollectTracer struct {
	Events []Event
}

// Event implements Tracer.
func (t *CollectTracer) Event(e Event) { t.Events = append(t.Events, e) }

// emit sends an event if a tracer is configured.
func emit(tr Tracer, e Event) {
	if tr != nil {
		tr.Event(e)
	}
}
