package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/cacheset"
	"repro/internal/program"
	"repro/internal/staticwcet"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
)

func soloPlatform(cores int, dmem taskmodel.Time) taskmodel.Platform {
	return taskmodel.Platform{
		NumCores: cores,
		Cache:    taskmodel.CacheConfig{NumSets: 16, BlockSizeBytes: 32},
		DMem:     dmem,
		SlotSize: 2,
	}
}

// soloBinding builds a single straight-line task: PD=12 (4 blocks × 3
// cycles), MD=4, fully persistent.
func soloBinding(period taskmodel.Time) TaskBinding {
	p := &program.Program{Name: "solo", Root: program.Straight(0, 4, 3)}
	t := &taskmodel.Task{
		Name: "solo", Core: 0, Priority: 0,
		PD: 12, MD: 4, MDr: 0, Period: period, Deadline: period,
		ECB: cacheset.Of(16, 0, 1, 2, 3), UCB: cacheset.New(16), PCB: cacheset.Of(16, 0, 1, 2, 3),
	}
	return TaskBinding{Task: t, Prog: p}
}

func TestSoloTaskExactTiming(t *testing.T) {
	plat := soloPlatform(1, 5)
	bind := soloBinding(100)
	res, err := Run(plat, []TaskBinding{bind}, Config{Policy: PolicyFP, Horizon: 250})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := res.Tasks[0]
	if st.Released != 3 || st.Completed != 3 {
		t.Fatalf("released/completed = %d/%d, want 3/3", st.Released, st.Completed)
	}
	// First job: 4 misses × 5 cycles + 12 compute = 32. Later jobs hit
	// everywhere (persistent footprint, no other task): 12 cycles.
	if st.MaxResponse != 32 {
		t.Errorf("MaxResponse = %d, want 32", st.MaxResponse)
	}
	if st.MaxMissesPerJob != 4 {
		t.Errorf("MaxMissesPerJob = %d, want 4", st.MaxMissesPerJob)
	}
	if st.Misses != 4 {
		t.Errorf("total misses = %d, want 4 (persistence across jobs)", st.Misses)
	}
	if st.Hits != 8 {
		t.Errorf("hits = %d, want 8 (4 per warm job, first job all-miss)", st.Hits)
	}
	if st.DeadlineMisses != 0 {
		t.Errorf("deadline misses = %d, want 0", st.DeadlineMisses)
	}
	if res.BusServe != 4 {
		t.Errorf("bus served = %d, want 4", res.BusServe)
	}
	if res.BusBusy != 20 {
		t.Errorf("bus busy = %d, want 20", res.BusBusy)
	}
}

func TestSoloTaskTDMAWithinAnalyticBound(t *testing.T) {
	plat := soloPlatform(2, 5)
	bind := soloBinding(400)
	res, err := Run(plat, []TaskBinding{bind}, Config{Policy: PolicyTDMA, Horizon: 400})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := res.Tasks[0]
	// Eq. (9) bound: PD + MD×(1+(m−1)·s)×d_mem = 12 + 4×3×5 = 72.
	if st.MaxResponse > 72 {
		t.Errorf("TDMA MaxResponse = %d, exceeds Eq. (9) bound 72", st.MaxResponse)
	}
	if st.MaxResponse < 32 {
		t.Errorf("TDMA MaxResponse = %d, below contention-free 32 — impossible", st.MaxResponse)
	}
}

func TestRunErrors(t *testing.T) {
	plat := soloPlatform(1, 5)
	bind := soloBinding(100)
	if _, err := Run(plat, []TaskBinding{bind}, Config{Policy: PolicyFP, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(plat, []TaskBinding{{Task: bind.Task}}, Config{Policy: PolicyFP, Horizon: 10}); err == nil {
		t.Error("missing program accepted")
	}
	bad := soloBinding(100)
	bad.Task.Core = 5
	if _, err := Run(plat, []TaskBinding{bad}, Config{Policy: PolicyFP, Horizon: 10}); err == nil {
		t.Error("bad core accepted")
	}
	badPlat := plat
	badPlat.DMem = 0
	if _, err := Run(badPlat, []TaskBinding{bind}, Config{Policy: PolicyFP, Horizon: 10}); err == nil {
		t.Error("bad platform accepted")
	}
}

func TestOffsetsDelayFirstRelease(t *testing.T) {
	plat := soloPlatform(1, 5)
	bind := soloBinding(100)
	res, err := Run(plat, []TaskBinding{bind}, Config{
		Policy: PolicyFP, Horizon: 150, Offsets: map[int]taskmodel.Time{0: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[0].Released; got != 1 {
		t.Errorf("released = %d, want 1 (offset 60, period 100, horizon 150)", got)
	}
}

func TestPreemptionCausesCacheReloads(t *testing.T) {
	// Two tasks on one core with fully overlapping footprints: the
	// high-priority task evicts the low-priority one's blocks on every
	// preemption, so the low task suffers extra misses (real CRPD).
	n := 4
	plat := taskmodel.Platform{
		NumCores: 1,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     2,
		SlotSize: 1,
	}
	hiProg := &program.Program{Name: "hi", Root: program.Straight(0, 4, 2)}
	loProg := &program.Program{Name: "lo", Root: program.L(40, program.Straight(4, 4, 3))}
	hi := &taskmodel.Task{
		Name: "hi", Core: 0, Priority: 0,
		PD: 8, MD: 4, MDr: 0, Period: 100, Deadline: 100,
		ECB: cacheset.Of(n, 0, 1, 2, 3), UCB: cacheset.New(n), PCB: cacheset.Of(n, 0, 1, 2, 3),
	}
	lo := &taskmodel.Task{
		Name: "lo", Core: 0, Priority: 1,
		PD: 480, MD: 4, MDr: 0, Period: 2000, Deadline: 2000,
		ECB: cacheset.Of(n, 0, 1, 2, 3), UCB: cacheset.Of(n, 0, 1, 2, 3), PCB: cacheset.Of(n, 0, 1, 2, 3),
	}
	res, err := Run(plat, []TaskBinding{{hi, hiProg}, {lo, loProg}}, Config{Policy: PolicyFP, Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	loStats := res.Tasks[1]
	if loStats.Completed < 1 {
		t.Fatal("low task never completed")
	}
	// In isolation the loop body (4 persistent blocks) misses exactly 4
	// times. Preemptions by hi (identical cache sets) force reloads:
	// strictly more misses must be observed.
	if loStats.MaxMissesPerJob <= 4 {
		t.Errorf("MaxMissesPerJob = %d, want > 4 (CRPD must appear)", loStats.MaxMissesPerJob)
	}
}

func TestHorizonForJobs(t *testing.T) {
	b1 := soloBinding(100)
	b2 := soloBinding(300)
	if got := HorizonForJobs([]TaskBinding{b1, b2}, 3); got != 900 {
		t.Errorf("HorizonForJobs = %d, want 900", got)
	}
}

// TestHorizonForJobsSaturatesOnOverflow: a horizon beyond int64 clamps
// to math.MaxInt64 instead of wrapping negative (which Run would then
// treat as an instantly-finished simulation).
func TestHorizonForJobsSaturatesOnOverflow(t *testing.T) {
	huge := soloBinding(math.MaxInt64 / 2)
	if got := HorizonForJobs([]TaskBinding{huge}, 3); got != math.MaxInt64 {
		t.Errorf("HorizonForJobs = %d, want saturation at MaxInt64", got)
	}
	// The exact boundary still multiplies without saturating.
	exact := soloBinding(math.MaxInt64 / 3)
	if got, want := HorizonForJobs([]TaskBinding{exact}, 3), taskmodel.Time(math.MaxInt64/3*3); got != want {
		t.Errorf("HorizonForJobs = %d, want the exact product %d", got, want)
	}
}

// TestHorizonForJobsRejectsDegenerateSets: zero-period-only bindings,
// empty binding lists and non-positive job counts must fail loudly,
// not return horizon 0 and a simulation that observes nothing.
func TestHorizonForJobsRejectsDegenerateSets(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected a panic", name)
			}
		}()
		f()
	}
	zero := soloBinding(100)
	zero.Task = &taskmodel.Task{Name: "degenerate", Period: 0}
	mustPanic("all-zero periods", func() { HorizonForJobs([]TaskBinding{zero}, 3) })
	mustPanic("no bindings", func() { HorizonForJobs(nil, 3) })
	mustPanic("k = 0", func() { HorizonForJobs([]TaskBinding{soloBinding(100)}, 0) })
}

// TestPercentileNearestRankBoundaries pins the exact nearest-rank
// contract on the boundary grid of the former float-fudge bug:
// p ∈ {0, 1/n, 0.5, (n-1)/n, 1} for n ∈ {1, 2, 3, 100}. The samples
// are 10·rank, so the expected quantile directly names the expected
// rank.
func TestPercentileNearestRankBoundaries(t *testing.T) {
	stats := func(n int) *TaskStats {
		s := &TaskStats{}
		// Insert out of order; Percentile sorts a copy.
		for i := n - 1; i >= 0; i-- {
			s.Responses = append(s.Responses, taskmodel.Time(10*(i+1)))
		}
		return s
	}
	rank := func(n int, r int) taskmodel.Time { return taskmodel.Time(10 * r) }
	for _, tc := range []struct {
		n    int
		p    float64
		want int // expected rank in [1, n]
	}{
		{1, 0, 1}, {1, 1.0 / 1, 1}, {1, 0.5, 1}, {1, 0.0 / 1, 1}, {1, 1, 1},
		{2, 0, 1}, {2, 1.0 / 2, 1}, {2, 0.5, 1}, {2, 1.0 / 2, 1}, {2, 1, 2},
		{3, 0, 1}, {3, 1.0 / 3, 1}, {3, 0.5, 2}, {3, 2.0 / 3, 2}, {3, 1, 3},
		{100, 0, 1}, {100, 1.0 / 100, 1}, {100, 0.5, 50}, {100, 99.0 / 100, 99}, {100, 1, 100},
	} {
		got := stats(tc.n).Percentile(tc.p)
		if want := rank(tc.n, tc.want); got != want {
			t.Errorf("n=%d p=%v: got %d, want rank %d (%d)", tc.n, tc.p, got, tc.want, want)
		}
	}
	// Out-of-range p clamps to the extremes.
	s := stats(3)
	if got := s.Percentile(-0.5); got != 10 {
		t.Errorf("p=-0.5: got %d, want the minimum", got)
	}
	if got := s.Percentile(1.5); got != 30 {
		t.Errorf("p=1.5: got %d, want the maximum", got)
	}
	// Just above a rank boundary the next rank must be charged: the
	// old +0.999999 fudge returned rank 1 here, under-reporting the
	// quantile.
	if got := stats(100).Percentile(0.0100001); got != 20 {
		t.Errorf("p just above 1/100: got %d, want rank 2", got)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{PolicyFP: "FP", PolicyRR: "RR", PolicyTDMA: "TDMA", Policy(7): "Policy(7)"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

// The simulator tests reuse the generator pipeline below; these tests
// bind generated tasks to the very programs their parameters were
// extracted from, then check the analytical WCRTs dominate every
// observed response time. See soundness_test.go.

func poolAndPrograms(t *testing.T, cache taskmodel.CacheConfig, names []string) ([]taskgen.TaskParams, map[string]*program.Program) {
	t.Helper()
	progs := map[string]*program.Program{}
	var pool []taskgen.TaskParams
	for _, name := range names {
		b, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := benchsuite.Extract(b, cache)
		if err != nil {
			t.Fatal(err)
		}
		progs[name] = b.Prog
		r := p.Result
		pool = append(pool, taskgen.TaskParams{
			Name: name, PD: r.PD, MD: r.MD, MDr: r.MDr,
			UCB: r.UCB, ECB: r.ECB, PCB: r.PCB,
		})
	}
	return pool, progs
}

func generateBindings(t *testing.T, seed int64, util float64, cores, perCore int) (taskmodel.Platform, []TaskBinding) {
	t.Helper()
	cfg := taskgen.Config{
		Platform: taskmodel.Platform{
			NumCores: cores,
			Cache:    taskmodel.CacheConfig{NumSets: 64, BlockSizeBytes: 32},
			DMem:     5,
			SlotSize: 2,
		},
		TasksPerCore:    perCore,
		CoreUtilization: util,
	}
	pool, progs := poolAndPrograms(t, cfg.Platform.Cache,
		[]string{"lcdnum", "cnt", "qurt", "crc", "jfdctint"})
	ts, err := taskgen.Generate(cfg, pool, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	var bindings []TaskBinding
	for _, task := range ts.Tasks {
		bindings = append(bindings, TaskBinding{Task: task, Prog: progs[task.Name]})
	}
	return cfg.Platform, bindings
}

func TestGeneratedWorkloadRuns(t *testing.T) {
	plat, bindings := generateBindings(t, 3, 0.3, 2, 3)
	horizon := HorizonForJobs(bindings, 2)
	for _, pol := range []Policy{PolicyFP, PolicyRR, PolicyTDMA} {
		res, err := Run(plat, bindings, Config{Policy: pol, Horizon: horizon})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		completed := int64(0)
		for _, st := range res.Tasks {
			completed += st.Completed
		}
		if completed == 0 {
			t.Fatalf("%v: nothing completed in %d cycles", pol, horizon)
		}
		if res.BusBusy > int64(res.Cycles) {
			t.Fatalf("%v: bus busy %d exceeds horizon %d", pol, res.BusBusy, res.Cycles)
		}
	}
}

// --- two-level hierarchy ------------------------------------------------------

func TestTwoLevelSoloExactTiming(t *testing.T) {
	// L1 4 sets (blocks 0 and 4 thrash), L2 16 sets (both persist).
	// Reference pattern 0,4,0,4 with 1 compute cycle each:
	//   refs 1,2: L1+L2 miss -> bus (5 cycles) + 1 compute = 6 each
	//   refs 3,4: L1 miss, L2 hit -> DL2 (2 cycles) + 1 compute = 3 each
	plat := taskmodel.Platform{
		NumCores: 1,
		Cache:    taskmodel.CacheConfig{NumSets: 4, BlockSizeBytes: 32},
		L2:       taskmodel.CacheConfig{NumSets: 16, BlockSizeBytes: 32},
		DMem:     5,
		DL2:      2,
		SlotSize: 1,
	}
	prog := &program.Program{Name: "2lvl", Root: program.S(
		program.R(0, 1), program.R(4, 1), program.R(0, 1), program.R(4, 1),
	)}
	task := &taskmodel.Task{
		Name: "t", Core: 0, Priority: 0,
		PD: 4, MD: 2, MDr: 0, Period: 500, Deadline: 500,
		ECB: cacheset.Of(4, 0), UCB: cacheset.Of(4, 0), PCB: cacheset.New(4),
	}
	res, err := Run(plat, []TaskBinding{{Task: task, Prog: prog}}, Config{Policy: PolicyFP, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tasks[0]
	if st.MaxResponse != 18 {
		t.Errorf("MaxResponse = %d, want 18 (2x6 + 2x3)", st.MaxResponse)
	}
	if st.L2Hits != 2 {
		t.Errorf("L2Hits = %d, want 2", st.L2Hits)
	}
	if res.BusServe != 2 {
		t.Errorf("bus served = %d, want 2 (only L2 misses)", res.BusServe)
	}
}

func TestTwoLevelWithinHierarchyAnalysisBound(t *testing.T) {
	// Random program, solo task: observed response within the bound
	// PD + MD*d_mem + L1Misses*DL2 derived from AnalyzeHierarchy.
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: 8, BlockSizeBytes: 32},
		L2:       taskmodel.CacheConfig{NumSets: 32, BlockSizeBytes: 32},
		DMem:     5,
		DL2:      2,
		SlotSize: 2,
	}
	for seed := int64(0); seed < 15; seed++ {
		prog := program.Generate("h", program.DefaultGenConfig(), rand.New(rand.NewSource(seed)))
		if prog.DynamicRefs() > 50000 {
			continue
		}
		h, err := staticwcet.AnalyzeHierarchy(prog, plat.Cache, plat.L2)
		if err != nil {
			t.Fatal(err)
		}
		period := taskmodel.Time(4 * (int64(h.PD) + h.MD*5 + h.L1Misses*2))
		if period < 100 {
			period = 100
		}
		task := &taskmodel.Task{
			Name: "h", Core: 0, Priority: 0,
			PD: h.PD, MD: h.MD, MDr: h.MDr, Period: period, Deadline: period,
			ECB: cacheset.New(8), UCB: cacheset.New(8), PCB: cacheset.New(8),
		}
		res, err := Run(plat, []TaskBinding{{Task: task, Prog: prog}},
			Config{Policy: PolicyRR, Horizon: period * 3})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Tasks[0]
		if st.Completed == 0 {
			continue
		}
		bound := h.PD + taskmodel.Time(h.MD)*plat.DMem + taskmodel.Time(h.L1Misses)*plat.DL2
		if st.MaxResponse > bound {
			t.Fatalf("seed %d: observed %d > hierarchy bound %d (PD=%d MD=%d L1m=%d)",
				seed, st.MaxResponse, bound, h.PD, h.MD, h.L1Misses)
		}
	}
}

func TestNonPreemptiveBlocksHighPriority(t *testing.T) {
	n := 4
	plat := taskmodel.Platform{
		NumCores: 1,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     2,
		SlotSize: 1,
	}
	hi := &taskmodel.Task{
		Name: "hi", Core: 0, Priority: 0,
		PD: 4, MD: 2, MDr: 0, Period: 100, Deadline: 100,
		ECB: cacheset.Of(n, 0, 1), UCB: cacheset.New(n), PCB: cacheset.Of(n, 0, 1),
	}
	lo := &taskmodel.Task{
		Name: "lo", Core: 0, Priority: 1,
		PD: 200, MD: 2, MDr: 0, Period: 1000, Deadline: 1000,
		ECB: cacheset.Of(n, 2, 3), UCB: cacheset.New(n), PCB: cacheset.Of(n, 2, 3),
	}
	bindings := []TaskBinding{
		{hi, &program.Program{Name: "hi", Root: program.Straight(0, 2, 2)}},
		{lo, &program.Program{Name: "lo", Root: program.L(50, program.Straight(2, 2, 2))}},
	}
	// Offset the low task so it starts first and then blocks hi's next
	// releases under non-preemptive dispatch.
	col := &CollectTracer{}
	np, err := Run(plat, bindings, Config{
		Policy: PolicyFP, Horizon: 1000, NonPreemptive: true, Trace: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range col.Events {
		if e.Kind == EvPreempt {
			t.Fatalf("preemption event under non-preemptive scheduling: %+v", e)
		}
	}
	p, err := Run(plat, bindings, Config{Policy: PolicyFP, Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// The long low-priority job blocks hi far beyond its preemptive
	// response time.
	if np.Tasks[0].MaxResponse <= p.Tasks[0].MaxResponse {
		t.Errorf("NP hi response %d not above preemptive %d",
			np.Tasks[0].MaxResponse, p.Tasks[0].MaxResponse)
	}
	// The low task, conversely, never suffers preemption reloads.
	if np.Tasks[1].MaxMissesPerJob > p.Tasks[1].MaxMissesPerJob {
		t.Errorf("NP lo misses/job %d above preemptive %d",
			np.Tasks[1].MaxMissesPerJob, p.Tasks[1].MaxMissesPerJob)
	}
}

func TestResponseDistribution(t *testing.T) {
	plat := soloPlatform(1, 5)
	bind := soloBinding(100)
	res, err := Run(plat, []TaskBinding{bind}, Config{Policy: PolicyFP, Horizon: 450})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Tasks[0]
	// Jobs: cold 32, then warm 12s.
	if len(st.Responses) != int(st.Completed) {
		t.Fatalf("recorded %d responses for %d completions", len(st.Responses), st.Completed)
	}
	if st.Responses[0] != 32 {
		t.Errorf("first response = %d, want 32", st.Responses[0])
	}
	if got := st.Percentile(0); got != 12 {
		t.Errorf("P0 = %d, want 12", got)
	}
	if got := st.Percentile(1); got != 32 {
		t.Errorf("P100 = %d, want 32", got)
	}
	if got := st.Percentile(0.5); got != 12 {
		t.Errorf("median = %d, want 12 (four of five jobs are warm)", got)
	}
	mean := st.MeanResponse()
	if mean <= 12 || mean >= 32 {
		t.Errorf("mean = %g, want strictly between 12 and 32", mean)
	}
	var empty TaskStats
	if empty.Percentile(0.5) != 0 || empty.MeanResponse() != 0 {
		t.Error("empty stats must report zeros")
	}
}
