package sim

import (
	"strings"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

func TestTraceEventsSoloTask(t *testing.T) {
	plat := soloPlatform(1, 5)
	bind := soloBinding(100)
	col := &CollectTracer{}
	_, err := Run(plat, []TaskBinding{bind}, Config{Policy: PolicyFP, Horizon: 150, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	for _, e := range col.Events {
		counts[e.Kind]++
	}
	if counts[EvRelease] != 2 {
		t.Errorf("releases = %d, want 2", counts[EvRelease])
	}
	if counts[EvComplete] != 2 {
		t.Errorf("completions = %d, want 2", counts[EvComplete])
	}
	// Job 1 misses 4 blocks; job 2 hits everywhere.
	if counts[EvMissBus] != 4 || counts[EvBusComplete] != 4 {
		t.Errorf("miss/grant = %d/%d, want 4/4", counts[EvMissBus], counts[EvBusComplete])
	}
	if counts[EvPreempt] != 0 || counts[EvDeadlineMiss] != 0 {
		t.Errorf("unexpected preemptions/misses: %v", counts)
	}
	// First completion reports the cold response time.
	for _, e := range col.Events {
		if e.Kind == EvComplete {
			if e.Value != 32 {
				t.Errorf("first completion R = %d, want 32", e.Value)
			}
			break
		}
	}
	// Events are time-ordered.
	for i := 1; i < len(col.Events); i++ {
		if col.Events[i].Time < col.Events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTracePreemptionEvent(t *testing.T) {
	n := 4
	plat := taskmodel.Platform{
		NumCores: 1,
		Cache:    taskmodel.CacheConfig{NumSets: n, BlockSizeBytes: 32},
		DMem:     2,
		SlotSize: 1,
	}
	hi := &taskmodel.Task{
		Name: "hi", Core: 0, Priority: 0,
		PD: 4, MD: 2, MDr: 0, Period: 50, Deadline: 50,
		ECB: cacheset.Of(n, 0, 1), UCB: cacheset.New(n), PCB: cacheset.Of(n, 0, 1),
	}
	lo := &taskmodel.Task{
		Name: "lo", Core: 0, Priority: 1,
		PD: 200, MD: 2, MDr: 0, Period: 400, Deadline: 400,
		ECB: cacheset.Of(n, 2, 3), UCB: cacheset.New(n), PCB: cacheset.Of(n, 2, 3),
	}
	col := &CollectTracer{}
	_, err := Run(plat, []TaskBinding{
		{hi, &program.Program{Name: "hi", Root: program.Straight(0, 2, 2)}},
		{lo, &program.Program{Name: "lo", Root: program.L(50, program.Straight(2, 2, 2))}},
	}, Config{Policy: PolicyFP, Horizon: 400, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	sawPreempt := false
	for _, e := range col.Events {
		if e.Kind == EvPreempt {
			sawPreempt = true
			if e.Task != "lo" || e.Value != 0 {
				t.Errorf("preempt event = %+v, want lo preempted by priority 0", e)
			}
		}
	}
	if !sawPreempt {
		t.Error("no preemption event despite overlapping releases")
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var b strings.Builder
	tr := &WriterTracer{W: &b}
	tr.Event(Event{Time: 7, Kind: EvMissBus, Task: "x", Priority: 3, Core: 1, Value: 42})
	tr.Event(Event{Time: 9, Kind: EvComplete, Task: "x", Priority: 3, Core: 1, Value: 9})
	out := b.String()
	for _, want := range []string{"core1", "miss->bus", "x(p3)", "block=42", "R=9"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvRelease: "release", EvComplete: "complete", EvMissBus: "miss->bus",
		EvBusComplete: "bus-complete", EvL2Hit: "l2-hit", EvPreempt: "preempt",
		EvDeadlineMiss: "deadline-miss", EventKind(42): "EventKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
