// Package sim is a cycle-accurate discrete simulator of the paper's
// platform model: m cores with private direct-mapped instruction
// caches, partitioned fixed-priority preemptive scheduling per core,
// and a shared memory bus under FP, RR or TDMA arbitration.
//
// Tasks execute real programs (package program): every block reference
// consults the core's cache, and misses become bus transactions of
// d_mem cycles. Preemptions therefore cause genuine cache reloads
// (CRPD) and interleaved tasks genuinely evict each other's persistent
// blocks (CPRO) — nothing is charged analytically. The simulator's
// observed response times validate the analytical WCRT bounds from
// package core: analysis ≥ simulation on every run.
//
// Semantics matching the analysis model:
//
//   - A cache hit costs no extra time (PD already covers execution).
//   - A miss stalls the job for exactly the bus queueing delay plus
//     d_mem service.
//   - An in-service bus transaction is non-preemptive: a newly released
//     higher-priority job waits for it (the analysis's "+1" term). A
//     pending-but-unserved request of a preempted job is withdrawn and
//     reissued when the job resumes.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cachesim"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

// TaskBinding couples a task's model parameters with the program whose
// trace its jobs execute.
type TaskBinding struct {
	Task *taskmodel.Task
	Prog *program.Program
}

// Config parameterises one simulation run.
type Config struct {
	// Policy is the bus arbitration policy.
	Policy Policy
	// Horizon is the number of cycles to simulate.
	Horizon taskmodel.Time
	// Offsets optionally delays the first release of each task
	// (indexed by priority). Absent entries release at time zero
	// (synchronous, the classical critical instant).
	Offsets map[int]taskmodel.Time
	// ArrivalJitter > 0 makes releases sporadic: each inter-arrival
	// time is T plus a uniform random extra of up to ArrivalJitter×T.
	// The sporadic model guarantees only a minimum separation of T, so
	// analytical bounds must still hold under any jitter.
	ArrivalJitter float64
	// Seed drives the sporadic arrival randomness (ignored when
	// ArrivalJitter is zero).
	Seed int64
	// Trace, when non-nil, receives every simulator event (releases,
	// misses, bus grants, preemptions, completions).
	Trace Tracer
	// NonPreemptive runs each core's jobs to completion before
	// dispatching the next one (still highest-priority-first at
	// dispatch). The paper's analysis covers preemptive scheduling
	// only; this mode supports experimentation with the related-work
	// model (Kelter et al., Dasari et al.).
	NonPreemptive bool
}

// TaskStats aggregates per-task observations.
type TaskStats struct {
	Name            string
	Priority        int
	Core            int
	Released        int64
	Completed       int64
	MaxResponse     taskmodel.Time
	DeadlineMisses  int64
	Misses          int64 // bus transactions actually served (L2 misses)
	Hits            int64 // L1 hits
	L2Hits          int64 // L1 misses satisfied by the L2
	MaxMissesPerJob int64
	// Responses records every completed job's response time, in
	// completion order, for distribution analysis.
	Responses []taskmodel.Time
}

// Percentile returns the p-quantile (0 <= p <= 1) of the observed
// response times using nearest-rank on the sorted sample; 0 if no job
// completed. The rank is the smallest r in [1, n] whose empirical CDF
// value float64(r)/float64(n) covers p, so a p computed as r/n (the
// common case) maps back to exactly rank r — no epsilon fudge, no
// misranking when p·n lands near an integer boundary.
func (s *TaskStats) Percentile(p float64) taskmodel.Time {
	if len(s.Responses) == 0 {
		return 0
	}
	sorted := append([]taskmodel.Time(nil), s.Responses...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	r := int(math.Ceil(p * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	// The product p·n rounds, so correct against the defining
	// inequality r/n >= p directly; each loop moves at most one rank.
	for r > 1 && float64(r-1)/float64(n) >= p {
		r--
	}
	for r < n && float64(r)/float64(n) < p {
		r++
	}
	return sorted[r-1]
}

// MeanResponse returns the average observed response time (0 if no
// job completed).
func (s *TaskStats) MeanResponse() float64 {
	if len(s.Responses) == 0 {
		return 0
	}
	var sum int64
	for _, r := range s.Responses {
		sum += int64(r)
	}
	return float64(sum) / float64(len(s.Responses))
}

// Result is the outcome of a simulation run.
type Result struct {
	Tasks    map[int]*TaskStats // by priority
	BusBusy  int64
	Cycles   taskmodel.Time
	BusServe int64
}

// job is one active invocation of a task.
type job struct {
	binding  *TaskBinding
	stats    *TaskStats
	release  taskmodel.Time
	deadline taskmodel.Time
	trace    []program.TraceStep
	pos      int   // next trace step
	compute  int64 // remaining compute cycles of the current step
	stall    int64 // remaining L2-hit latency cycles
	fetched  bool  // current step's block is available
	waiting  bool  // blocked on an outstanding bus transaction
	misses   int64
}

func (j *job) done() bool { return j.pos >= len(j.trace) && j.compute == 0 }

// coreState is the per-core scheduler and cache hierarchy.
type coreState struct {
	cache   *cachesim.Cache
	l2      *cachesim.Cache // nil without a second level
	dl2     int64           // L1-miss/L2-hit latency
	ready   []*job          // ordered by priority (ascending value first)
	running *job            // pinned job under non-preemptive scheduling
}

func (c *coreState) insert(j *job) {
	i := sort.Search(len(c.ready), func(k int) bool {
		return c.ready[k].binding.Task.Priority > j.binding.Task.Priority
	})
	c.ready = append(c.ready, nil)
	copy(c.ready[i+1:], c.ready[i:])
	c.ready[i] = j
}

func (c *coreState) remove(j *job) {
	for i, r := range c.ready {
		if r == j {
			c.ready = append(c.ready[:i], c.ready[i+1:]...)
			return
		}
	}
}

// Run simulates the bound task set for the configured horizon.
func Run(plat taskmodel.Platform, bindings []TaskBinding, cfg Config) (*Result, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon %d, need > 0", cfg.Horizon)
	}
	for i := range bindings {
		if bindings[i].Task == nil || bindings[i].Prog == nil {
			return nil, fmt.Errorf("sim: binding %d missing task or program", i)
		}
		if err := bindings[i].Prog.Validate(); err != nil {
			return nil, fmt.Errorf("sim: binding %d: %w", i, err)
		}
		if bindings[i].Task.Core < 0 || bindings[i].Task.Core >= plat.NumCores {
			return nil, fmt.Errorf("sim: task %q on core %d of %d", bindings[i].Task.Name, bindings[i].Task.Core, plat.NumCores)
		}
	}

	cores := make([]*coreState, plat.NumCores)
	for i := range cores {
		cores[i] = &coreState{cache: cachesim.New(plat.Cache)}
		if plat.HasL2() {
			cores[i].l2 = cachesim.New(plat.L2)
			cores[i].dl2 = int64(plat.DL2)
		}
	}
	if cfg.Policy == PolicyRegulated && (plat.RegBudget < 1 || plat.RegPeriod < 1) {
		return nil, fmt.Errorf("sim: regulated policy needs platform RegBudget >= 1 and RegPeriod >= 1 (got Q=%d P=%d)", plat.RegBudget, plat.RegPeriod)
	}
	b := newBus(cfg.Policy, plat.NumCores, plat.SlotSize, int64(plat.DMem), plat.RegBudget, int64(plat.RegPeriod))

	res := &Result{Tasks: map[int]*TaskStats{}, Cycles: cfg.Horizon}
	for i := range bindings {
		t := bindings[i].Task
		res.Tasks[t.Priority] = &TaskStats{Name: t.Name, Priority: t.Priority, Core: t.Core}
	}

	// Traces are immutable and shared by all jobs of a binding.
	traces := make([][]program.TraceStep, len(bindings))
	for i := range bindings {
		traces[i] = bindings[i].Prog.Trace(0)
	}

	// waitingJob[c] is the job whose bus transaction is outstanding
	// (pending or in service) on core c.
	waitingJob := make([]*job, plat.NumCores)

	// nextRelease tracks each task's upcoming arrival; sporadic mode
	// stretches inter-arrival times beyond the minimum T.
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextRelease := make([]taskmodel.Time, len(bindings))
	for i := range bindings {
		nextRelease[i] = cfg.Offsets[bindings[i].Task.Priority]
	}
	interArrival := func(t *taskmodel.Task) taskmodel.Time {
		if cfg.ArrivalJitter <= 0 {
			return t.Period
		}
		maxExtra := int64(cfg.ArrivalJitter * float64(t.Period))
		if maxExtra <= 0 {
			return t.Period
		}
		return t.Period + taskmodel.Time(rng.Int63n(maxExtra+1))
	}

	for now := taskmodel.Time(0); now < cfg.Horizon; now++ {
		// 1. Releases.
		for i := range bindings {
			t := bindings[i].Task
			if now != nextRelease[i] {
				continue
			}
			nextRelease[i] = now + interArrival(t)
			st := res.Tasks[t.Priority]
			st.Released++
			nj := &job{
				binding:  &bindings[i],
				stats:    st,
				release:  now,
				deadline: now + t.Deadline,
				trace:    traces[i],
			}
			c := cores[t.Core]
			preempted := !cfg.NonPreemptive && len(c.ready) > 0 && c.ready[0].binding.Task.Priority > t.Priority
			c.insert(nj)
			emit(cfg.Trace, Event{Time: now, Kind: EvRelease, Task: t.Name, Priority: t.Priority, Core: t.Core})
			if preempted {
				old := c.ready[1]
				emit(cfg.Trace, Event{
					Time: now, Kind: EvPreempt,
					Task: old.binding.Task.Name, Priority: old.binding.Task.Priority,
					Core: t.Core, Value: int64(t.Priority),
				})
			}
		}

		// 2. Core execution: each core runs its highest-priority ready
		// job for this cycle, issuing bus requests on misses.
		for ci, c := range cores {
			if len(c.ready) == 0 {
				continue
			}
			j := c.ready[0]
			if cfg.NonPreemptive {
				if c.running == nil || c.running.done() {
					c.running = j // dispatch: highest priority ready job
				}
				j = c.running
			}
			if j.waiting {
				continue // stalled on its own outstanding fetch
			}
			if w := waitingJob[ci]; w != nil && w != j {
				// A preempted job's fetch is outstanding. An in-service
				// transaction is non-preemptive: the core stalls (the
				// "+1" blocking of Eq. 7-9). A merely pending request is
				// withdrawn; the job will reissue it when it resumes.
				if b.inService(ci) {
					continue
				}
				if b.cancel(ci) {
					w.waiting = false
					waitingJob[ci] = nil
				} else {
					continue // completion lands this cycle; stall once more
				}
			}
			c.step(j, ci, b, res, waitingJob, now, cfg.Trace)
		}

		// 3. Bus progress: requests submitted this cycle may begin
		// service immediately; a completing transaction unblocks its
		// job for the next cycle.
		if done := b.tick(); done != nil {
			c := cores[done.core]
			c.cache.Install(done.block)
			if c.l2 != nil {
				c.l2.Install(done.block)
			}
			emit(cfg.Trace, Event{
				Time: now, Kind: EvBusComplete, Core: done.core,
				Task: taskNameByPriority(res, done.priority), Priority: done.priority,
				Value: int64(done.block),
			})
			if w := waitingJob[done.core]; w != nil {
				w.waiting = false
				w.fetched = true
				w.misses++
				w.stats.Misses++
				if w.misses > w.stats.MaxMissesPerJob {
					w.stats.MaxMissesPerJob = w.misses
				}
				waitingJob[done.core] = nil
			}
		}
	}

	res.BusBusy = b.busyTime
	res.BusServe = b.served
	return res, nil
}

// step advances job j by one cycle of core time: it resolves as many
// zero-cost cache hits as needed, spends one compute cycle or issues
// one bus request, and retires the job when its trace is exhausted.
func (c *coreState) step(j *job, ci int, b *bus, res *Result, waitingJob []*job, now taskmodel.Time, tr Tracer) {
	for {
		if j.stall > 0 {
			j.stall--
			return // burning L2-hit latency; completion cannot happen yet
		}
		if j.compute > 0 {
			j.compute--
			break
		}
		if j.pos >= len(j.trace) {
			break
		}
		step := j.trace[j.pos]
		if !j.fetched {
			if c.cache.Lookup(step.Block) {
				j.stats.Hits++
				j.fetched = true
			} else if c.l2 != nil && c.l2.Lookup(step.Block) {
				// L1 miss, L2 hit: refresh LRU, fill L1, pay DL2 locally.
				// The current cycle counts as the first latency cycle.
				c.l2.Access(step.Block)
				c.cache.Install(step.Block)
				j.stats.L2Hits++
				emit(tr, Event{
					Time: now, Kind: EvL2Hit, Core: ci,
					Task: j.binding.Task.Name, Priority: j.binding.Task.Priority,
					Value: int64(step.Block),
				})
				j.fetched = true
				if c.dl2 > 1 {
					j.stall = c.dl2 - 1
					return
				}
				continue
			} else {
				j.waiting = true
				waitingJob[ci] = j
				b.submit(request{core: ci, block: step.Block, priority: j.binding.Task.Priority})
				emit(tr, Event{
					Time: now, Kind: EvMissBus, Core: ci,
					Task: j.binding.Task.Name, Priority: j.binding.Task.Priority,
					Value: int64(step.Block),
				})
				return
			}
		}
		// Block available: charge its execution cost.
		j.compute = step.Cycles
		j.pos++
		j.fetched = false
		if j.compute > 0 {
			j.compute--
			break
		}
		// Zero-cost step: resolve the next one within this cycle.
	}
	if j.done() {
		j.stats.Completed++
		resp := now + 1 - j.release
		j.stats.Responses = append(j.stats.Responses, resp)
		if resp > j.stats.MaxResponse {
			j.stats.MaxResponse = resp
		}
		kind := EvComplete
		if now+1 > j.deadline {
			j.stats.DeadlineMisses++
			kind = EvDeadlineMiss
		}
		emit(tr, Event{
			Time: now + 1, Kind: kind, Core: ci,
			Task: j.binding.Task.Name, Priority: j.binding.Task.Priority,
			Value: int64(resp),
		})
		c.remove(j)
		if c.running == j {
			c.running = nil
		}
	}
}

// taskNameByPriority resolves a priority to its task name for trace
// output.
func taskNameByPriority(res *Result, prio int) string {
	if st, ok := res.Tasks[prio]; ok {
		return st.Name
	}
	return fmt.Sprintf("prio%d", prio)
}

// HorizonForJobs returns a horizon long enough for roughly k jobs of
// the longest-period task. A degenerate task set — no bindings, no
// positive period, or k < 1 — would silently yield a zero horizon and
// a "simulation" that observes nothing, so it panics with a clear
// message instead; a horizon that overflows int64 saturates at
// math.MaxInt64 rather than wrapping negative.
func HorizonForJobs(tasks []TaskBinding, k int) taskmodel.Time {
	if k < 1 {
		panic(fmt.Sprintf("sim: HorizonForJobs: k = %d jobs, need >= 1", k))
	}
	var maxT taskmodel.Time
	for _, b := range tasks {
		if b.Task.Period > maxT {
			maxT = b.Task.Period
		}
	}
	if maxT <= 0 {
		panic("sim: HorizonForJobs: no task with a positive period (a zero horizon would simulate nothing)")
	}
	if maxT > math.MaxInt64/taskmodel.Time(k) {
		return math.MaxInt64
	}
	return maxT * taskmodel.Time(k)
}
