package crpd

import (
	"math/rand"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/fixtures"
	"repro/internal/taskmodel"
)

func TestFig1GammaECBUnion(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// γ_{2,1,x}: task under analysis τ2 (priority 1), preempting task τ1
	// (priority 0), core π_x (0). The paper computes 2 (blocks {5,6}).
	if got := Gamma(ts, ECBUnion, 1, 0, 0); got != 2 {
		t.Errorf("γ_{2,1,x} = %d, want 2", got)
	}
}

func TestGammaZeroWhenNotHigherPriority(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	for _, ap := range []Approach{ECBUnion, UCBOnly, ECBOnly, UCBUnion, Combined} {
		if got := Gamma(ts, ap, 0, 1, 0); got != 0 {
			t.Errorf("%v: Gamma(i=0, j=1) = %d, want 0 (j not higher priority)", ap, got)
		}
		if got := Gamma(ts, ap, 1, 1, 0); got != 0 {
			t.Errorf("%v: Gamma(i=1, j=1) = %d, want 0", ap, got)
		}
	}
}

func TestGammaVariantsOnFig1(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// aff(1,0) ∩ Γ0 = {τ2}; UCB2 = {5,6}; ECB1 = {5..10}.
	if got := Gamma(ts, UCBOnly, 1, 0, 0); got != 2 {
		t.Errorf("UCB-only = %d, want |UCB2| = 2", got)
	}
	if got := Gamma(ts, ECBOnly, 1, 0, 0); got != 6 {
		t.Errorf("ECB-only = %d, want |ECB1| = 6", got)
	}
	if got := Gamma(ts, UCBUnion, 1, 0, 0); got != 2 {
		t.Errorf("UCB-union = %d, want 2", got)
	}
	if got := Gamma(ts, Combined, 1, 0, 0); got != 2 {
		t.Errorf("Combined = %d, want 2", got)
	}
}

func TestGammaRemoteCoreLevel(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// γ_{2,3,y} style queries: on core 1 there is only τ3, so no task
	// can be preempted there and every bound is zero. Use level i=2
	// (τ3's own priority) with a fictitious higher-priority preemptor.
	if got := Gamma(ts, ECBUnion, 2, 0, 1); got != 0 {
		t.Errorf("Gamma on single-task core = %d, want 0", got)
	}
}

// buildRandomTaskSet makes a small synthetic task set with random
// footprints for the ordering property tests.
func buildRandomTaskSet(rng *rand.Rand, ntasks, nsets int) *taskmodel.TaskSet {
	plat := taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: nsets, BlockSizeBytes: 32},
		DMem:     5,
		SlotSize: 2,
	}
	tasks := make([]*taskmodel.Task, ntasks)
	for i := range tasks {
		ecb := cacheset.New(nsets)
		ucb := cacheset.New(nsets)
		pcb := cacheset.New(nsets)
		for s := 0; s < nsets; s++ {
			if rng.Intn(3) == 0 {
				ecb.Add(s)
				if rng.Intn(2) == 0 {
					ucb.Add(s)
				}
				if rng.Intn(2) == 0 {
					pcb.Add(s)
				}
			}
		}
		md := int64(1 + ecb.Count())
		tasks[i] = &taskmodel.Task{
			Name: "t", Core: i % 2, Priority: i,
			PD: int64(10 + rng.Intn(50)), MD: md, MDr: md - int64(pcb.Count()),
			Period: 1000, Deadline: 1000,
			ECB: ecb, UCB: ucb, PCB: pcb,
		}
		if tasks[i].MDr < 0 {
			tasks[i].MDr = 0
		}
	}
	return taskmodel.NewTaskSet(plat, tasks)
}

func TestGammaBoundsOrdering(t *testing.T) {
	// For every random task set and (i, j) pair: the union approaches
	// are never larger than their simple counterparts, and Combined is
	// the min of the two unions.
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ts := buildRandomTaskSet(rng, 6, 16)
		for core := 0; core < 2; core++ {
			for i := 0; i < 6; i++ {
				for j := 0; j < i; j++ {
					eu := Gamma(ts, ECBUnion, i, j, core)
					uo := Gamma(ts, UCBOnly, i, j, core)
					uu := Gamma(ts, UCBUnion, i, j, core)
					cb := Gamma(ts, Combined, i, j, core)
					if eu > uo {
						t.Fatalf("seed %d (i=%d j=%d core=%d): ECB-union %d > UCB-only %d", seed, i, j, core, eu, uo)
					}
					if want := min64(eu, uu); cb != want {
						t.Fatalf("seed %d: Combined = %d, want min(%d,%d)", seed, cb, eu, uu)
					}
					if eu < 0 || uu < 0 || uo < 0 {
						t.Fatalf("seed %d: negative gamma", seed)
					}
				}
			}
		}
	}
}

func TestGammaMonotoneInLevel(t *testing.T) {
	// Widening the affected-task window (larger i) can only increase
	// the ECB-union bound for a fixed preemptor j.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ts := buildRandomTaskSet(rng, 6, 16)
		for core := 0; core < 2; core++ {
			for j := 0; j < 5; j++ {
				prev := int64(0)
				for i := j + 1; i < 6; i++ {
					g := Gamma(ts, ECBUnion, i, j, core)
					if g < prev {
						t.Fatalf("seed %d: Gamma(i=%d,j=%d) = %d < Gamma(i=%d) = %d", seed, i, j, g, i-1, prev)
					}
					prev = g
				}
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestApproachStrings(t *testing.T) {
	for ap, want := range map[Approach]string{
		ECBUnion: "ecb-union", UCBOnly: "ucb-only", ECBOnly: "ecb-only",
		UCBUnion: "ucb-union", Combined: "combined", Approach(9): "Approach(9)",
	} {
		if got := ap.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(ap), got, want)
		}
	}
}

func TestGammaUnknownApproachPanics(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown approach did not panic")
		}
	}()
	Gamma(ts, Approach(42), 1, 0, 0)
}

func TestGammaUnknownPreemptorPriority(t *testing.T) {
	ts := fixtures.Fig1TaskSet()
	// Priority value 0 exists but query a level window with a preemptor
	// priority that maps to no task: the simple bounds degrade to zero.
	if got := Gamma(ts, ECBOnly, 5, 4, 0); got != 0 {
		t.Errorf("ECB-only with unknown preemptor = %d, want 0", got)
	}
	if got := Gamma(ts, UCBUnion, 5, 4, 0); got != 0 {
		t.Errorf("UCB-union with unknown preemptor = %d, want 0", got)
	}
	if got := Gamma(ts, Combined, 5, 4, 0); got != 0 {
		t.Errorf("Combined with unknown preemptor = %d, want 0", got)
	}
}
