// Package crpd bounds the cache-related preemption delay (CRPD)
// γ_{i,j,x}: the additional main-memory requests task τ_i (and
// intermediate tasks) may issue because a job of the higher-priority
// task τ_j preempted on core π_x and evicted useful cache blocks.
//
// The paper uses the ECB-union approach of Altmeyer, Davis and Maiza
// (Eq. 2). The classic UCB-only, ECB-only and UCB-union bounds are
// also provided for the ablation benchmarks; Combined takes the
// pointwise minimum of the two union approaches, which remains a sound
// bound because each is sound individually.
//
// All results are counts of memory-block reloads — i.e. extra bus
// accesses — matching how γ enters Eq. (1) next to MD.
package crpd

import (
	"fmt"

	"repro/internal/cacheset"
	"repro/internal/taskmodel"
)

// Approach selects the CRPD bound.
type Approach int

const (
	// ECBUnion is Eq. (2) of the paper: the approach used everywhere in
	// the evaluation.
	ECBUnion Approach = iota
	// UCBOnly charges the largest UCB set among the affected tasks,
	// ignoring what the preempting task actually evicts.
	UCBOnly
	// ECBOnly charges every block the preempting task may load,
	// ignoring which of them are useful to the preempted tasks.
	ECBOnly
	// UCBUnion intersects the union of affected tasks' UCBs with the
	// preempting task's ECBs.
	UCBUnion
	// Combined is min(ECBUnion, UCBUnion).
	Combined
)

func (a Approach) String() string {
	switch a {
	case ECBUnion:
		return "ecb-union"
	case UCBOnly:
		return "ucb-only"
	case ECBOnly:
		return "ecb-only"
	case UCBUnion:
		return "ucb-union"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Gamma returns γ_{i,j,x}: the CRPD charged per job of the preempting
// task τ_j (priority value j) against the response time of the task at
// priority level i on core x. Priorities are the global unique
// priority values of the task set; j must be a higher priority than i
// (j < i). The result is 0 when no task on core x can be affected.
func Gamma(ts *taskmodel.TaskSet, approach Approach, i, j, core int) int64 {
	if j >= i {
		return 0 // τ_j cannot preempt level i unless it has higher priority
	}
	switch approach {
	case ECBUnion:
		return gammaECBUnion(ts, i, j, core)
	case UCBOnly:
		return gammaUCBOnly(ts, i, j, core)
	case ECBOnly:
		return gammaECBOnly(ts, j, core)
	case UCBUnion:
		return gammaUCBUnion(ts, i, j, core)
	case Combined:
		eu := gammaECBUnion(ts, i, j, core)
		uu := gammaUCBUnion(ts, i, j, core)
		if uu < eu {
			return uu
		}
		return eu
	default:
		panic(fmt.Sprintf("crpd: unknown approach %d", int(approach)))
	}
}

// gammaECBUnion implements Eq. (2):
//
//	γ_{i,j,x} = max_{g ∈ Γx ∩ aff(i,j)} |UCB_g ∩ (∪_{h ∈ Γx ∩ hep(j)} ECB_h)|
//
// It assumes τ_j is itself nested inside preemptions by all of its
// higher-priority tasks, hence the ECB union over hep(j).
func gammaECBUnion(ts *taskmodel.TaskSet, i, j, core int) int64 {
	ecbs := ecbUnionHEP(ts, j, core)
	var worst int64
	for _, g := range ts.Aff(i, j, core) {
		if c := int64(g.UCB.IntersectCount(ecbs)); c > worst {
			worst = c
		}
	}
	return worst
}

// ecbUnionHEP returns ∪_{h ∈ Γcore ∩ hep(j)} ECB_h.
func ecbUnionHEP(ts *taskmodel.TaskSet, j, core int) cacheset.Set {
	u := cacheset.New(ts.Platform.Cache.NumSets)
	for _, h := range ts.HEP(j, core) {
		u.UnionInPlace(h.ECB)
	}
	return u
}

func gammaUCBOnly(ts *taskmodel.TaskSet, i, j, core int) int64 {
	var worst int64
	for _, g := range ts.Aff(i, j, core) {
		if c := int64(g.UCB.Count()); c > worst {
			worst = c
		}
	}
	return worst
}

func gammaECBOnly(ts *taskmodel.TaskSet, j, core int) int64 {
	tj := ts.ByPriority(j)
	if tj == nil || tj.Core != core {
		// The preempting task must live on the core; callers iterate
		// over Γx ∩ hp(i), so this is defensive.
		if tj == nil {
			return 0
		}
	}
	return int64(tj.ECB.Count())
}

func gammaUCBUnion(ts *taskmodel.TaskSet, i, j, core int) int64 {
	tj := ts.ByPriority(j)
	if tj == nil {
		return 0
	}
	u := cacheset.New(ts.Platform.Cache.NumSets)
	for _, g := range ts.Aff(i, j, core) {
		u.UnionInPlace(g.UCB)
	}
	return int64(u.IntersectCount(tj.ECB))
}
