// Package cachesim provides an exact functional simulation of one
// core-private set-associative LRU instruction cache. The paper's
// model is the direct-mapped special case (associativity 1); higher
// associativities support the extension studies. It is the executable
// counterpart of the abstract analysis in package staticwcet and the
// cache component of the multicore simulator in package sim.
package cachesim

import (
	"fmt"

	"repro/internal/cacheset"
	"repro/internal/taskmodel"
)

// Invalid marks an empty cache way.
const Invalid = -1

// Cache is a set-associative LRU cache. Each set holds up to Ways()
// blocks ordered most-recently-used first.
type Cache struct {
	cfg  taskmodel.CacheConfig
	ways int
	// sets[s] lists resident blocks of set s, MRU first.
	sets [][]int
}

// New returns an empty (cold) cache with the given geometry.
func New(cfg taskmodel.CacheConfig) *Cache {
	if cfg.NumSets < 1 {
		panic(fmt.Sprintf("cachesim: NumSets = %d, need >= 1", cfg.NumSets))
	}
	c := &Cache{cfg: cfg, ways: cfg.Ways(), sets: make([][]int, cfg.NumSets)}
	for i := range c.sets {
		c.sets[i] = make([]int, 0, c.ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() taskmodel.CacheConfig { return c.cfg }

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// find returns the way index of block in set s, or -1.
func (c *Cache) find(s, block int) int {
	for i, b := range c.sets[s] {
		if b == block {
			return i
		}
	}
	return -1
}

// touch moves the block at way i of set s to the MRU position.
func (c *Cache) touch(s, i int) {
	set := c.sets[s]
	b := set[i]
	copy(set[1:i+1], set[:i])
	set[0] = b
}

// insert places block at the MRU position of set s, evicting the LRU
// block if the set is full.
func (c *Cache) insert(s, block int) {
	set := c.sets[s]
	if len(set) < c.ways {
		set = append(set, Invalid)
	}
	copy(set[1:], set)
	set[0] = block
	c.sets[s] = set
}

// Access fetches a memory block and reports whether it hit. On a miss
// the block is installed at the MRU position, evicting the LRU
// occupant of a full set; on a hit the block becomes MRU.
func (c *Cache) Access(block int) (hit bool) {
	if block < 0 {
		panic(fmt.Sprintf("cachesim: negative block %d", block))
	}
	s := c.cfg.SetOf(block)
	if i := c.find(s, block); i >= 0 {
		c.touch(s, i)
		return true
	}
	c.insert(s, block)
	return false
}

// Lookup reports whether the block is resident without changing LRU
// state.
func (c *Cache) Lookup(block int) bool {
	if block < 0 {
		return false
	}
	return c.find(c.cfg.SetOf(block), block) >= 0
}

// Install loads a block (as MRU) without counting an access; used to
// preload PCBs when measuring residual demand. Installing a resident
// block only refreshes its LRU position.
func (c *Cache) Install(block int) {
	if block < 0 {
		panic(fmt.Sprintf("cachesim: negative block %d", block))
	}
	s := c.cfg.SetOf(block)
	if i := c.find(s, block); i >= 0 {
		c.touch(s, i)
		return
	}
	c.insert(s, block)
}

// EvictSet invalidates every way of the given cache set; used to model
// evictions by other tasks expressed as cache-set footprints (the
// analysis conservatively assumes a touched set loses all its
// content).
func (c *Cache) EvictSet(set int) {
	if set < 0 || set >= c.cfg.NumSets {
		panic(fmt.Sprintf("cachesim: set %d out of range [0,%d)", set, c.cfg.NumSets))
	}
	c.sets[set] = c.sets[set][:0]
}

// EvictAll invalidates every set in the given footprint, modelling the
// worst-case effect of another task's ECBs.
func (c *Cache) EvictAll(ecbs cacheset.Set) {
	for _, s := range ecbs.Indices() {
		c.EvictSet(s)
	}
}

// ResidentSets returns the cache sets currently holding at least one
// valid block.
func (c *Cache) ResidentSets() cacheset.Set {
	out := cacheset.New(c.cfg.NumSets)
	for s, set := range c.sets {
		if len(set) > 0 {
			out.Add(s)
		}
	}
	return out
}

// Snapshot returns, per set, the resident blocks in MRU-first order.
func (c *Cache) Snapshot() [][]int {
	out := make([][]int, len(c.sets))
	for i, set := range c.sets {
		out[i] = append([]int(nil), set...)
	}
	return out
}

// Clone returns an independent copy of the cache state.
func (c *Cache) Clone() *Cache {
	d := &Cache{cfg: c.cfg, ways: c.ways, sets: c.Snapshot()}
	return d
}
