package cachesim

import (
	"testing"

	"repro/internal/cacheset"
	"repro/internal/taskmodel"
)

func cfg4() taskmodel.CacheConfig {
	return taskmodel.CacheConfig{NumSets: 4, BlockSizeBytes: 32}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(cfg4())
	if c.Access(5) {
		t.Fatal("first access to block 5 hit a cold cache")
	}
	if !c.Access(5) {
		t.Fatal("second access to block 5 missed")
	}
}

func TestConflictEviction(t *testing.T) {
	c := New(cfg4())
	c.Access(1) // set 1
	c.Access(5) // set 1 as well (5 mod 4), evicts block 1
	if c.Lookup(1) {
		t.Fatal("block 1 still resident after conflicting fetch of block 5")
	}
	if !c.Lookup(5) {
		t.Fatal("block 5 not resident after fetch")
	}
	if c.Access(1) {
		t.Fatal("block 1 hit after being evicted")
	}
}

func TestNonConflictingCoexist(t *testing.T) {
	c := New(cfg4())
	c.Access(0)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	for b := 0; b < 4; b++ {
		if !c.Lookup(b) {
			t.Fatalf("block %d evicted despite distinct sets", b)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(cfg4())
	c.Access(2)
	c.Flush()
	if c.Lookup(2) {
		t.Fatal("block resident after Flush")
	}
	if got := c.ResidentSets().Count(); got != 0 {
		t.Fatalf("ResidentSets after Flush = %d entries, want 0", got)
	}
}

func TestInstallDoesNotMissLater(t *testing.T) {
	c := New(cfg4())
	c.Install(7)
	if !c.Access(7) {
		t.Fatal("block 7 missed after Install")
	}
}

func TestEvictSetAndEvictAll(t *testing.T) {
	c := New(cfg4())
	c.Access(0)
	c.Access(1)
	c.Access(2)
	c.EvictSet(1)
	if c.Lookup(1) {
		t.Fatal("block 1 resident after EvictSet(1)")
	}
	c.EvictAll(cacheset.Of(4, 0, 2))
	if c.Lookup(0) || c.Lookup(2) {
		t.Fatal("blocks resident after EvictAll")
	}
}

func TestResidentSetsAndSnapshot(t *testing.T) {
	c := New(cfg4())
	c.Access(0)
	c.Access(6) // set 2
	rs := c.ResidentSets()
	if !rs.Equal(cacheset.Of(4, 0, 2)) {
		t.Fatalf("ResidentSets = %v, want {0,2}", rs)
	}
	snap := c.Snapshot()
	if len(snap[0]) != 1 || snap[0][0] != 0 || len(snap[2]) != 1 || snap[2][0] != 6 ||
		len(snap[1]) != 0 || len(snap[3]) != 0 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Snapshot is a copy.
	snap[0][0] = 99
	if !c.Lookup(0) {
		t.Fatal("mutating snapshot affected cache")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(cfg4())
	c.Access(0)
	d := c.Clone()
	d.Access(4) // evicts block 0 in the clone only
	if !c.Lookup(0) {
		t.Fatal("clone access affected original")
	}
	if d.Lookup(0) {
		t.Fatal("clone did not evict block 0")
	}
}

func TestLookupNegative(t *testing.T) {
	c := New(cfg4())
	if c.Lookup(-3) {
		t.Fatal("Lookup(-3) = true")
	}
}

func TestPanics(t *testing.T) {
	c := New(cfg4())
	for name, f := range map[string]func(){
		"access negative":  func() { c.Access(-1) },
		"install negative": func() { c.Install(-1) },
		"evict oob":        func() { c.EvictSet(4) },
		"new bad geometry": func() { New(taskmodel.CacheConfig{NumSets: 0}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		})
	}
}

// --- set-associative LRU behaviour ------------------------------------------

func cfgAssoc(sets, ways int) taskmodel.CacheConfig {
	return taskmodel.CacheConfig{NumSets: sets, BlockSizeBytes: 32, Associativity: ways}
}

func TestTwoWayCoexistence(t *testing.T) {
	// Blocks 1 and 5 share set 1 in a 4-set cache; with two ways they
	// coexist instead of thrashing.
	c := New(cfgAssoc(4, 2))
	c.Access(1)
	c.Access(5)
	if !c.Lookup(1) || !c.Lookup(5) {
		t.Fatal("conflicting blocks must coexist in a 2-way set")
	}
	if !c.Access(1) || !c.Access(5) {
		t.Fatal("both blocks must hit on re-access")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way set 0 of a 4-set cache: access 0, 4, 8 — block 0 is LRU
	// when 8 arrives and must be the one evicted.
	c := New(cfgAssoc(4, 2))
	c.Access(0)
	c.Access(4)
	c.Access(8)
	if c.Lookup(0) {
		t.Fatal("LRU block 0 should have been evicted")
	}
	if !c.Lookup(4) || !c.Lookup(8) {
		t.Fatal("blocks 4 and 8 should be resident")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	// Re-accessing block 0 makes it MRU, so block 4 gets evicted by 8.
	c := New(cfgAssoc(4, 2))
	c.Access(0)
	c.Access(4)
	c.Access(0) // 0 becomes MRU
	c.Access(8) // evicts 4
	if c.Lookup(4) {
		t.Fatal("block 4 should have been evicted")
	}
	if !c.Lookup(0) || !c.Lookup(8) {
		t.Fatal("blocks 0 and 8 should be resident")
	}
}

func TestInstallRefreshesLRU(t *testing.T) {
	c := New(cfgAssoc(4, 2))
	c.Access(0)
	c.Access(4)
	c.Install(0) // refresh 0 without counting an access
	c.Access(8)  // evicts 4, not 0
	if c.Lookup(4) || !c.Lookup(0) {
		t.Fatal("Install must refresh LRU position")
	}
}

func TestFourWaySetHoldsFourBlocks(t *testing.T) {
	c := New(cfgAssoc(2, 4))
	for _, b := range []int{0, 2, 4, 6} { // all map to set 0
		c.Access(b)
	}
	for _, b := range []int{0, 2, 4, 6} {
		if !c.Lookup(b) {
			t.Fatalf("block %d evicted from a 4-way set holding 4 blocks", b)
		}
	}
	c.Access(8) // fifth block evicts LRU (block 0)
	if c.Lookup(0) {
		t.Fatal("block 0 should be evicted as LRU")
	}
}

func TestWaysDefault(t *testing.T) {
	c := New(taskmodel.CacheConfig{NumSets: 4, BlockSizeBytes: 32})
	if got := c.Config().Ways(); got != 1 {
		t.Fatalf("Ways() = %d, want 1 (direct-mapped default)", got)
	}
	// Direct-mapped semantics preserved: second conflicting block
	// evicts the first.
	c.Access(0)
	c.Access(4)
	if c.Lookup(0) {
		t.Fatal("direct-mapped conflict must evict")
	}
}

func TestEvictSetClearsAllWays(t *testing.T) {
	c := New(cfgAssoc(4, 2))
	c.Access(1)
	c.Access(5)
	c.EvictSet(1)
	if c.Lookup(1) || c.Lookup(5) {
		t.Fatal("EvictSet must clear every way")
	}
}
