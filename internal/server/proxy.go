package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Fleet request routing (DESIGN.md §14). With Options.Ring set, every
// analysis request has exactly one owning node — the stable FNV-1a
// partition of its canonical key over the sorted member list — and a
// non-owner relays the request there, so the owner's cache, coalescing
// map and warm memo backbones serve the whole fleet. Three rules keep
// the scheme safe without any cluster state:
//
//   - Hop guard: a request carrying the X-Buscond-Forwarded header is
//     always handled locally, whatever this node's ownership opinion.
//     A misconfigured ring costs one extra hop, never a loop.
//   - Degradation: a proxy attempt that fails at the transport, or
//     that the owner answers with a non-2xx status, falls back to
//     local compute and marks the verdict "degraded" — node loss
//     costs latency and cache locality, not availability.
//   - Edge fill: a successfully relayed /v1/analyze envelope is
//     parsed and its result bytes stored in the local cache (and the
//     decoded inputs in the local base registry), so repeat traffic
//     for a remote key turns into local cache hits.
//
// Accounting: a successfully proxied request counts only
// server.peer_proxied at the edge — the owner counts it as
// server.requests — so the fleet-wide sum of server.requests equals
// the number of client requests, exactly as on one node. Degraded
// requests count server.peer_errors + server.peer_degraded at the
// edge and then run the ordinary local path (server.requests
// included).

// routeRemotely reports whether the request for key should be relayed
// to a peer: this node is in a fleet, the request was not already
// routed by a peer (hop guard), another node owns the key, and the
// local cache cannot answer it anyway.
func (s *Server) routeRemotely(r *http.Request, key string) bool {
	if s.ring == nil || cluster.Forwarded(r) || s.ring.OwnsLocally(key) {
		return false
	}
	if _, hit := s.cache.get(key); hit {
		// A previously relayed (or degraded-computed) result answers
		// locally without another hop; the analyze path will re-find it
		// and count the cache hit.
		return false
	}
	return true
}

// relay writes a peer's verbatim response to the client.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// peerDegrade accounts one failed proxy attempt on the way to local
// compute. err is nil when the peer answered with a failure status.
func (s *Server) peerDegrade() {
	s.obs.Add(telemetry.CtrServerPeerErrors, 1)
	s.obs.Add(telemetry.CtrServerPeerDegraded, 1)
}

// proxyAnalyze relays one /v1/analyze body to the key's owner. It
// reports true when the peer's response was written to the client;
// false tells the caller to degrade to local compute.
func (s *Server) proxyAnalyze(w http.ResponseWriter, r *http.Request, ri *reqInfo, key string, ts *taskmodel.TaskSet, cfgs []core.Config, body []byte) bool {
	st := ri.stageTimer()
	tp := st.Now()
	status, respBody, err := s.ring.Proxy(r.Context(), key, "/v1/analyze", body)
	st.AddSince(telemetry.StageProxy, tp)
	if err != nil || status < 200 || status > 299 {
		s.peerDegrade()
		return false
	}
	s.obs.Add(telemetry.CtrServerPeerProxied, 1)
	// Edge fill: keep the relayed result bytes so the next duplicate of
	// this key is a local cache hit, and register the decoded inputs so
	// deltas against this base resolve locally too.
	var env wireAnalyzeResponse
	if json.Unmarshal(respBody, &env) == nil && env.Key == key && len(env.Results) > 0 {
		s.cache.put(key, env.Results)
		s.bases.put(key, ts, cfgs)
		s.obs.Add(telemetry.CtrServerPeerHits, 1)
	}
	ri.setVerdict("proxied")
	relay(w, status, respBody)
	return true
}

// proxyBatchItem relays one batch item as a single /v1/analyze request
// to its owner and maps the envelope back into a batch item. ok=false
// tells the caller to degrade the item to local compute.
func (s *Server) proxyBatchItem(r *http.Request, ri *reqInfo, key string, ts *taskmodel.TaskSet, cfgs []core.Config, item *wireAnalyzeRequest) (wireBatchItem, bool) {
	body, err := json.Marshal(item)
	if err != nil {
		return wireBatchItem{}, false
	}
	st := ri.stageTimer()
	tp := st.Now()
	status, respBody, perr := s.ring.Proxy(r.Context(), key, "/v1/analyze", body)
	st.AddSince(telemetry.StageProxy, tp)
	if perr != nil || status < 200 || status > 299 {
		s.peerDegrade()
		return wireBatchItem{}, false
	}
	var env wireAnalyzeResponse
	if uerr := json.Unmarshal(respBody, &env); uerr != nil || env.Key != key {
		s.peerDegrade()
		return wireBatchItem{}, false
	}
	s.obs.Add(telemetry.CtrServerPeerProxied, 1)
	if len(env.Results) > 0 {
		s.cache.put(key, env.Results)
		s.bases.put(key, ts, cfgs)
		s.obs.Add(telemetry.CtrServerPeerHits, 1)
	}
	ri.setVerdict("proxied")
	return wireBatchItem{
		Key: env.Key, Cached: env.Cached, Coalesced: env.Coalesced, Results: env.Results,
	}, true
}

// proxyDelta relays one /v1/analyze/delta body to the *base* key's
// owner — that node holds the base registry entry and the warm memo
// backbones the delta exists to reuse. Reports true when the peer's
// response was relayed; false degrades to the local delta path (which
// 404s honestly if this node never saw the base).
func (s *Server) proxyDelta(w http.ResponseWriter, r *http.Request, ri *reqInfo, baseKey string, body []byte) bool {
	st := ri.stageTimer()
	tp := st.Now()
	status, respBody, err := s.ring.Proxy(r.Context(), baseKey, "/v1/analyze/delta", body)
	st.AddSince(telemetry.StageProxy, tp)
	if err != nil || status < 200 || status > 299 {
		s.peerDegrade()
		return false
	}
	s.obs.Add(telemetry.CtrServerPeerProxied, 1)
	// Edge fill under the *edited* request's key, which the envelope
	// names; the inputs stay unregistered here (the owner has them).
	var env wireDeltaResponse
	if json.Unmarshal(respBody, &env) == nil && env.Key != "" && len(env.Results) > 0 {
		s.cache.put(env.Key, env.Results)
		s.obs.Add(telemetry.CtrServerPeerHits, 1)
	}
	ri.setVerdict("proxied")
	relay(w, status, respBody)
	return true
}
