package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/cacheset"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// POST /v1/analyze/delta — incremental analysis for near-duplicate
// requests. Design-space exploration loops mostly re-ask the same
// question with one parameter nudged; shipping the whole task set per
// step wastes wire bytes and, worse, gives the server no hint that the
// work is related. A delta request instead names a previously analyzed
// request by its canonical key and lists the edits to apply:
//
//	{
//	  "base_key": "…",                 // key from any prior response
//	  "edits": [
//	    {"task": "t3", "field": "pd", "value": 1200},
//	    {"field": "d_mem", "value": 12}   // no task => platform field
//	  ],
//	  "configs": [...]                 // optional; default: base's
//	}
//
// The server rebuilds the edited task set and routes it through the
// ordinary analyze path, so the response is byte-identical to posting
// the full edited request to /v1/analyze — same canonical key, same
// cache, same coalescing. The speedup comes from the engine's
// content-addressed memo store (core.MemoStore): table columns whose
// inputs the edit did not touch are reused, not recomputed. Each delta
// response's key is itself registered as a base, so sweeps can chain
// edits step over step.

// baseRegistry remembers the decoded inputs of recently analyzed
// requests by canonical key, so deltas can be resolved without the
// client re-sending the task set. Bounded LRU; losing an entry only
// costs a 404 telling the client to re-POST the full request.
type baseRegistry struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type baseEntry struct {
	key  string
	ts   *taskmodel.TaskSet
	cfgs []core.Config
}

func newBaseRegistry(max int) *baseRegistry {
	return &baseRegistry{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

func (r *baseRegistry) put(key string, ts *taskmodel.TaskSet, cfgs []core.Config) {
	if r.max == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ele, ok := r.byKey[key]; ok {
		r.ll.MoveToFront(ele)
		return
	}
	r.byKey[key] = r.ll.PushFront(&baseEntry{key: key, ts: ts, cfgs: cfgs})
	for r.ll.Len() > r.max {
		tail := r.ll.Back()
		r.ll.Remove(tail)
		delete(r.byKey, tail.Value.(*baseEntry).key)
	}
}

func (r *baseRegistry) get(key string) (*taskmodel.TaskSet, []core.Config, bool) {
	if r.max == 0 {
		return nil, nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ele, ok := r.byKey[key]
	if !ok {
		return nil, nil, false
	}
	r.ll.MoveToFront(ele)
	ent := ele.Value.(*baseEntry)
	return ent.ts, ent.cfgs, true
}

func (r *baseRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// wireEdit is one field assignment. The target task is selected by
// Priority (the unique priority value, always unambiguous) or by Task
// (the taskmodel JSON "name" — benchmark-derived names repeat in
// generated sets, so an ambiguous name is rejected rather than
// guessed); selectors refer to the base task set, before any edit in
// the list applies. Neither selector targets the platform. Field uses
// the taskmodel JSON vocabulary: pd, md, mdr, period, deadline,
// priority, core, ucb, ecb, pcb for tasks; d_mem, slot_size,
// reg_budget, reg_period for the platform. Value is the new value — a
// number for scalars, a cache-set index array for ucb/ecb/pcb.
type wireEdit struct {
	Task     string          `json:"task,omitempty"`
	Priority *int            `json:"priority,omitempty"`
	Field    string          `json:"field"`
	Value    json.RawMessage `json:"value"`
}

type wireDeltaRequest struct {
	BaseKey string       `json:"base_key"`
	Edits   []wireEdit   `json:"edits"`
	Configs []wireConfig `json:"configs,omitempty"`
}

// wireDeltaResponse mirrors wireAnalyzeResponse with the resolved base
// attached. Key is the canonical key of the *edited* request — usable
// as the base of the next delta.
type wireDeltaResponse struct {
	Key       string          `json:"key"`
	BaseKey   string          `json:"base_key"`
	Cached    bool            `json:"cached"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Results   json.RawMessage `json:"results"`
}

// applyEdits rebuilds the task set with the edits applied. Tasks are
// shallow-copied (cache sets are immutable once built, so unedited sets
// are shared with the base), and the result runs the full taskmodel
// validation so a delta can never smuggle in a task set /v1/analyze
// would have rejected.
func applyEdits(base *taskmodel.TaskSet, edits []wireEdit) (*taskmodel.TaskSet, error) {
	tasks := make([]*taskmodel.Task, len(base.Tasks))
	byName := make(map[string][]*taskmodel.Task, len(base.Tasks))
	byPrio := make(map[int]*taskmodel.Task, len(base.Tasks))
	for i, t := range base.Tasks {
		c := *t
		tasks[i] = &c
		byName[t.Name] = append(byName[t.Name], tasks[i])
		byPrio[t.Priority] = tasks[i]
	}
	plat := base.Platform
	n := plat.Cache.NumSets

	scalar := func(e wireEdit) (int64, error) {
		var v int64
		if err := json.Unmarshal(e.Value, &v); err != nil {
			return 0, fmt.Errorf("field %q wants a number: %w", e.Field, err)
		}
		return v, nil
	}
	set := func(e wireEdit) (cacheset.Set, error) {
		var idx []int
		if err := json.Unmarshal(e.Value, &idx); err != nil {
			return cacheset.Set{}, fmt.Errorf("field %q wants a cache-set index array: %w", e.Field, err)
		}
		for _, i := range idx {
			if i < 0 || i >= n {
				return cacheset.Set{}, fmt.Errorf("field %q: index %d out of range [0,%d)", e.Field, i, n)
			}
		}
		return cacheset.FromSorted(n, idx), nil
	}

	for ei, e := range edits {
		field := strings.ToLower(e.Field)
		if e.Task == "" && e.Priority == nil {
			v, err := scalar(e)
			if err != nil {
				return nil, fmt.Errorf("edit %d: %w", ei, err)
			}
			switch field {
			case "d_mem":
				plat.DMem = v
			case "slot_size":
				plat.SlotSize = int(v)
			case "reg_budget":
				plat.RegBudget = v
			case "reg_period":
				plat.RegPeriod = v
			default:
				return nil, fmt.Errorf("edit %d: unknown platform field %q (want d_mem, slot_size, reg_budget or reg_period)", ei, e.Field)
			}
			continue
		}
		var tk *taskmodel.Task
		switch {
		case e.Priority != nil:
			var ok bool
			if tk, ok = byPrio[*e.Priority]; !ok {
				return nil, fmt.Errorf("edit %d: no task with priority %d in the base task set", ei, *e.Priority)
			}
			if e.Task != "" && tk.Name != e.Task {
				return nil, fmt.Errorf("edit %d: task with priority %d is named %q, not %q", ei, *e.Priority, tk.Name, e.Task)
			}
		default:
			switch cands := byName[e.Task]; len(cands) {
			case 0:
				return nil, fmt.Errorf("edit %d: no task named %q in the base task set", ei, e.Task)
			case 1:
				tk = cands[0]
			default:
				return nil, fmt.Errorf("edit %d: %d tasks named %q; select by unique priority instead", ei, len(cands), e.Task)
			}
		}
		switch field {
		case "ucb", "ecb", "pcb":
			s, err := set(e)
			if err != nil {
				return nil, fmt.Errorf("edit %d: %w", ei, err)
			}
			switch field {
			case "ucb":
				tk.UCB = s
			case "ecb":
				tk.ECB = s
			case "pcb":
				tk.PCB = s
			}
		default:
			v, err := scalar(e)
			if err != nil {
				return nil, fmt.Errorf("edit %d: %w", ei, err)
			}
			switch field {
			case "pd":
				tk.PD = v
			case "md":
				tk.MD = v
			case "mdr":
				tk.MDr = v
			case "period":
				tk.Period = v
			case "deadline":
				tk.Deadline = v
			case "priority":
				tk.Priority = int(v)
			case "core":
				tk.Core = int(v)
			default:
				return nil, fmt.Errorf("edit %d: unknown task field %q (want pd, md, mdr, period, deadline, priority, core, ucb, ecb or pcb)", ei, e.Field)
			}
		}
	}

	ts := taskmodel.NewTaskSet(plat, tasks)
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("edited task set invalid: %w", err)
	}
	return ts, nil
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req wireDeltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.BaseKey == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("missing base_key (analyze the full request once and reuse its key)"))
		return
	}
	ri := reqInfoFrom(r.Context())
	// Fleet routing keys on the *base*: the owner of the base key holds
	// its registry entry and the warm memo backbones the delta reuses.
	// A base this node already knows resolves locally regardless of
	// ownership (it was analyzed or relayed here before); a successful
	// relay counts delta_requests on the owner, not here.
	degraded := false
	if s.ring != nil && !cluster.Forwarded(r) && !s.ring.OwnsLocally(req.BaseKey) {
		if _, _, known := s.bases.get(req.BaseKey); !known {
			if done := s.proxyDelta(w, r, ri, req.BaseKey, body); done {
				return
			}
			degraded = true
		}
	}
	s.obs.Add(telemetry.CtrServerDeltaRequests, 1)
	baseTS, baseCfgs, ok := s.bases.get(req.BaseKey)
	if !ok {
		s.obs.Add(telemetry.CtrServerDeltaBaseMisses, 1)
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown base key %s: not analyzed recently by this server (re-POST the full request to /v1/analyze)", req.BaseKey))
		return
	}
	s.obs.Add(telemetry.CtrServerDeltaEdits, int64(len(req.Edits)))
	ts, err := applyEdits(baseTS, req.Edits)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	cfgs := baseCfgs
	if len(req.Configs) > 0 {
		cfgs, err = parseConfigs(req.Configs)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	// The edits may have invalidated a cross-field constraint the base
	// satisfied (e.g. zeroing reg_budget under a regulated config); that
	// is still malformed input, not an engine failure.
	for i, cfg := range cfgs {
		if err := cfg.ValidateFor(ts.Platform); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
	}
	oc, err := s.analyze(r.Context(), ri, ts, cfgs)
	if err != nil {
		s.writeError(w, statusOf(err), err)
		return
	}
	// A successful delta logs as "delta" regardless of how the edited
	// request resolved underneath (fresh, cached or coalesced) — unless
	// it only resolved here because its owner was unreachable.
	if degraded {
		ri.forceVerdict("degraded")
	} else {
		ri.forceVerdict("delta")
	}
	tm := ri.stageTimer().Now()
	s.writeJSON(w, http.StatusOK, wireDeltaResponse{
		Key: oc.key, BaseKey: req.BaseKey,
		Cached: oc.cached, Coalesced: oc.coalesced, Results: oc.raw,
	})
	ri.stageTimer().AddSince(telemetry.StageMarshal, tm)
}
