package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/crpd"
	"repro/internal/persistence"
	"repro/internal/taskmodel"
)

// Wire format of the analysis endpoints. Task sets travel in the same
// JSON schema the CLIs exchange (internal/taskmodel); configurations
// use the CLI flag vocabulary ("rr", "ecb-union", ...), so a request
// body is exactly "what you would have passed to buscon", posted.

// wireConfig is one analysis configuration. Empty CRPD/CPRO select the
// paper's defaults (ecb-union, union), matching the CLI flags; the
// arbiter is required.
type wireConfig struct {
	Arbiter            string `json:"arbiter"`
	Persistence        bool   `json:"persistence,omitempty"`
	CRPD               string `json:"crpd,omitempty"`
	CPRO               string `json:"cpro,omitempty"`
	MaxOuterIterations int    `json:"max_outer_iterations,omitempty"`
}

// wireAnalyzeRequest is the body of POST /v1/analyze and one item of
// POST /v1/analyze/batch.
type wireAnalyzeRequest struct {
	TaskSet json.RawMessage `json:"taskset"`
	Configs []wireConfig    `json:"configs"`
}

// wireAnalyzeResponse envelopes the engine results. Results holds the
// marshaled []*core.Result in Configs order, byte-identical to a
// direct core.AnalyzeBatch call (and to every other response for the
// same canonical key, cached or not).
type wireAnalyzeResponse struct {
	Key       string          `json:"key"`
	Cached    bool            `json:"cached"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Results   json.RawMessage `json:"results"`
}

type wireBatchRequest struct {
	Requests []wireAnalyzeRequest `json:"requests"`
}

// wireBatchItem is one outcome of a batch request; exactly one of
// Results and Error is set.
type wireBatchItem struct {
	Key       string          `json:"key,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Results   json.RawMessage `json:"results,omitempty"`
	Error     string          `json:"error,omitempty"`
	Status    int             `json:"status,omitempty"`
}

type wireBatchResponse struct {
	Results []wireBatchItem `json:"results"`
}

type wireError struct {
	Error string `json:"error"`
}

func parseArbiter(s string) (core.Arbiter, error) {
	switch strings.ToLower(s) {
	case "fp":
		return core.FP, nil
	case "rr":
		return core.RR, nil
	case "tdma":
		return core.TDMA, nil
	case "perfect":
		return core.Perfect, nil
	case "regulated":
		return core.Regulated, nil
	case "paraware":
		return core.ParAware, nil
	case "":
		return 0, fmt.Errorf("missing arbiter (want fp, rr, tdma, perfect, regulated or paraware)")
	default:
		return 0, fmt.Errorf("unknown arbiter %q (want fp, rr, tdma, perfect, regulated or paraware)", s)
	}
}

func parseCRPD(s string) (crpd.Approach, error) {
	switch strings.ToLower(s) {
	case "", "ecb-union":
		return crpd.ECBUnion, nil
	case "ucb-only":
		return crpd.UCBOnly, nil
	case "ecb-only":
		return crpd.ECBOnly, nil
	case "ucb-union":
		return crpd.UCBUnion, nil
	case "combined":
		return crpd.Combined, nil
	default:
		return 0, fmt.Errorf("unknown CRPD approach %q", s)
	}
}

func parseCPRO(s string) (persistence.CPROApproach, error) {
	switch strings.ToLower(s) {
	case "", "union":
		return persistence.Union, nil
	case "multiset":
		return persistence.MultisetUnion, nil
	case "full":
		return persistence.FullReload, nil
	case "none":
		return persistence.None, nil
	default:
		return 0, fmt.Errorf("unknown CPRO approach %q", s)
	}
}

// decode turns one wire request into engine inputs, running the full
// task-set validation (taskmodel.ReadJSON) so every later failure is
// an engine matter, not malformed input.
func (r *wireAnalyzeRequest) decode() (*taskmodel.TaskSet, []core.Config, error) {
	if len(r.TaskSet) == 0 {
		return nil, nil, fmt.Errorf("missing taskset")
	}
	ts, err := taskmodel.ReadJSON(bytes.NewReader(r.TaskSet))
	if err != nil {
		return nil, nil, err
	}
	cfgs, err := parseConfigs(r.Configs)
	if err != nil {
		return nil, nil, err
	}
	// Cross-field check the parsers cannot see: every configuration must
	// be analyzable against this platform (e.g. a regulated config needs
	// the regulation parameters), so engine switches never reject input.
	for i, cfg := range cfgs {
		if err := cfg.ValidateFor(ts.Platform); err != nil {
			return nil, nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	return ts, cfgs, nil
}

// parseConfigs maps the wire configurations to engine configurations;
// shared by the analyze, batch and delta decoders.
func parseConfigs(wcs []wireConfig) ([]core.Config, error) {
	if len(wcs) == 0 {
		return nil, fmt.Errorf("missing configs (need at least one)")
	}
	cfgs := make([]core.Config, len(wcs))
	for i, wc := range wcs {
		arb, err := parseArbiter(wc.Arbiter)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		crpdAp, err := parseCRPD(wc.CRPD)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		cproAp, err := parseCPRO(wc.CPRO)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		if wc.MaxOuterIterations < 0 {
			return nil, fmt.Errorf("config %d: negative max_outer_iterations", i)
		}
		cfgs[i] = core.Config{
			Arbiter: arb, Persistence: wc.Persistence,
			CRPD: crpdAp, CPRO: cproAp,
			MaxOuterIterations: wc.MaxOuterIterations,
		}
	}
	return cfgs, nil
}
