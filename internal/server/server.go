// Package server fronts the WCRT analysis engine (internal/core) with
// an HTTP JSON API — analysis as a service for toolchains that issue
// many, often near-duplicate, schedulability queries.
//
// The serving layer is deliberately pure: it never post-processes
// engine output. Each request is canonicalized to a stable key
// (core.CanonicalKey), answered from a bounded LRU result cache when
// possible, coalesced with identical in-flight work otherwise
// (singleflight), and only then admitted to a bounded worker pool.
// Admission beyond the pool plus a configurable queue depth is shed
// with 429 and a Retry-After hint, so overload degrades by refusing
// work, not by collapsing. A request whose analysis panics is isolated
// by the engine's PR-4 recovery path (retry on the reference analyzer,
// then a per-request failure) — one poisoned request returns a 500 and
// the daemon keeps serving.
//
// Endpoints:
//
//	POST /v1/analyze        one task set under a list of configurations
//	POST /v1/analyze/batch  several of the above in one round trip
//	POST /v1/analyze/delta  a recent request's key plus a list of edits
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           counters, gauges and stage-latency
//	                        histograms as JSON; Prometheus 0.0.4 text
//	                        exposition with ?format=prometheus
//	GET  /debug/pprof/*     standard pprof handlers
//
// Every non-pprof request carries an ID (X-Request-ID passthrough or
// generated), is timed per lifecycle stage (queue, cache, coalesce,
// proxy, analyze, marshal), and can emit one structured access-log
// line (Options.AccessLog). See DESIGN.md §11 for the API contract and
// §13 for the observability layer.
//
// With Options.Ring set the server is one node of a buscond fleet:
// requests whose canonical key another node owns are relayed there
// (shard-owner routing, internal/cluster), relayed results fill the
// local cache, and an unreachable owner degrades to local compute —
// see proxy.go and DESIGN.md §14.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Options configures a Server. The zero value is serviceable: engine
// concurrency at GOMAXPROCS, a queue of twice that, a 1024-entry cache
// without expiry, no per-request timeout.
type Options struct {
	// Workers bounds concurrent engine invocations; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// before new arrivals are shed with 429. 0 selects 2×Workers; a
	// negative value disables waiting entirely (busy workers => shed).
	QueueDepth int
	// CacheEntries bounds the result cache. 0 selects 1024; a negative
	// value disables caching.
	CacheEntries int
	// CacheTTL expires cache entries; 0 keeps them until evicted by
	// capacity.
	CacheTTL time.Duration
	// MemoEntries bounds the engine's content-addressed table memo
	// shared across requests (the delta fast path). 0 selects the
	// engine default (4096 columns); a negative value disables
	// memoization.
	MemoEntries int
	// BaseEntries bounds the registry of recently analyzed requests
	// addressable as delta bases. 0 selects 1024; a negative value
	// disables /v1/analyze/delta (every base lookup 404s).
	BaseEntries int
	// RequestTimeout bounds how long a request may wait for a worker
	// slot and cancels the engine between requests. A running analysis
	// is never preempted mid-fixed-point — its runtime is bounded by
	// Config.MaxOuterIterations — but its completed result is still
	// returned (and cached) even if the deadline passed meanwhile.
	// 0 disables the deadline.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to 429 responses; 0 selects 1s.
	RetryAfter time.Duration
	// Observer receives the server.* counter family and is forwarded to
	// the engine. nil selects a fresh metrics-only observer so /metrics
	// always has data.
	Observer *telemetry.Observer
	// AccessLog receives one structured line per request (DESIGN.md
	// §13); nil disables access logging.
	AccessLog io.Writer
	// AccessLogFormat selects the access-log rendering: "json"
	// (default) or "text".
	AccessLogFormat string
	// Now overrides the cache clock (tests). nil selects time.Now.
	Now func() time.Time
	// Ring, when non-nil, joins this server to a buscond fleet with
	// shard-owner request routing (internal/cluster): requests whose
	// canonical key another node owns are proxied there, an unreachable
	// owner degrades to local compute, and successful relays fill the
	// local cache. nil serves everything locally (the single-node
	// deployment).
	Ring *cluster.Ring
}

// Server is the HTTP front end. Create with New, expose via Handler.
type Server struct {
	opts     Options
	obs      *telemetry.Observer
	cache    *resultCache
	flight   *flightGroup
	memo     *core.MemoStore // nil when MemoEntries < 0
	bases    *baseRegistry
	ring     *cluster.Ring // nil outside a fleet
	sem      chan struct{} // worker slots
	tickets  chan struct{} // worker slots + waiting room; full => shed
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the instrument middleware
	access   *accessLogger
	inflight atomic.Int64
	draining atomic.Bool
}

// New builds a server over the in-process analysis engine.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.QueueDepth < 0:
		opts.QueueDepth = 0
	case opts.QueueDepth == 0:
		opts.QueueDepth = 2 * opts.Workers
	}
	switch {
	case opts.CacheEntries < 0:
		opts.CacheEntries = 0
	case opts.CacheEntries == 0:
		opts.CacheEntries = 1024
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	switch {
	case opts.BaseEntries < 0:
		opts.BaseEntries = 0
	case opts.BaseEntries == 0:
		opts.BaseEntries = 1024
	}
	var memo *core.MemoStore
	if opts.MemoEntries >= 0 {
		memo = core.NewMemoStore(opts.MemoEntries)
	}
	if opts.Observer == nil {
		opts.Observer = telemetry.New()
	}
	s := &Server{
		opts:    opts,
		obs:     opts.Observer,
		cache:   newResultCache(opts.CacheEntries, opts.CacheTTL, opts.Now, opts.Observer),
		flight:  newFlightGroup(),
		memo:    memo,
		bases:   newBaseRegistry(opts.BaseEntries),
		ring:    opts.Ring,
		sem:     make(chan struct{}, opts.Workers),
		tickets: make(chan struct{}, opts.Workers+opts.QueueDepth),
		access:  newAccessLogger(opts.AccessLog, opts.AccessLogFormat),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/analyze/batch", s.handleBatch)
	mux.HandleFunc("/v1/analyze/delta", s.handleDelta)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.handler = s.instrument(mux)
	return s
}

// Handler returns the root handler — the instrument middleware
// (request IDs, stage timing, access log) around the mux; mount it on
// an http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// queueDepth is how many admitted requests currently wait for a worker
// slot: tickets held beyond the occupied semaphore slots.
func (s *Server) queueDepth() int64 {
	d := int64(len(s.tickets)) - int64(len(s.sem))
	if d < 0 {
		d = 0
	}
	return d
}

// StartDrain flips /healthz to 503 so load balancers stop routing new
// traffic; in-flight requests are unaffected. The caller (cmd/buscond)
// follows up with http.Server.Shutdown, which waits for them.
func (s *Server) StartDrain() { s.draining.Store(true) }

// errShed marks requests refused by admission control.
var errShed = errors.New("server: worker pool and queue full")

// maxBatchItems bounds one batch request. The cap is far above any
// sane sweep step (a full utilization grid at paper scale is ~400
// items) and exists to turn an absurd or hostile batch into a 400
// instead of an allocation storm.
const maxBatchItems = 1024

// analysisError marks a request whose engine run failed terminally
// (even after the isolation layer's reference retry).
type analysisError struct{ err error }

func (e *analysisError) Error() string { return e.err.Error() }

// outcome is the result of one analysis request on its way to the
// wire.
type outcome struct {
	key       string
	raw       json.RawMessage
	cached    bool
	coalesced bool
}

// analyze resolves one request through cache → coalescing → admission
// → engine, charging each stage to the request's timer. ctx is the
// *waiting* context (the client's); the engine runs detached so a
// coalesced result is never poisoned by one client's disconnect. ri
// carries the per-request observability record and may be nil.
func (s *Server) analyze(ctx context.Context, ri *reqInfo, ts *taskmodel.TaskSet, cfgs []core.Config) (outcome, error) {
	st := ri.stageTimer()
	s.obs.Add(telemetry.CtrServerRequests, 1)
	t0 := st.Now()
	key := core.CanonicalKey(ts, cfgs)
	raw, hit := s.cache.get(key)
	st.AddSince(telemetry.StageCache, t0)
	if hit {
		s.obs.Add(telemetry.CtrServerCacheHits, 1)
		s.bases.put(key, ts, cfgs)
		ri.addCacheHit()
		ri.setVerdict("cached")
		return outcome{key: key, raw: raw, cached: true}, nil
	}
	s.obs.Add(telemetry.CtrServerCacheMisses, 1)
	tw := st.Now()
	raw, shared, err := s.flight.do(ctx, key, func() (json.RawMessage, error) {
		return s.compute(ri, key, ts, cfgs)
	})
	if shared {
		// Only the follower's wait is a coalesce stage; the leader's time
		// is decomposed inside compute. A follower whose own context
		// expired is *not* coalesced — it got nothing — and accounts as a
		// timeout below instead.
		st.AddSince(telemetry.StageCoalesce, tw)
		s.obs.Add(telemetry.CtrServerCoalesced, 1)
		ri.addCoalesced()
	}
	if err != nil {
		var fte *followerTimeoutError
		if errors.As(err, &fte) {
			s.obs.Add(telemetry.CtrServerTimeouts, 1)
		}
		ri.setVerdict(verdictOf(err))
		return outcome{key: key}, err
	}
	// Only a resolved request is addressable as a delta base (including
	// the edited sets produced by deltas themselves, so sweeps chain):
	// registering before admission would let a flood of shed requests
	// churn the registry and evict bases that were actually analyzed.
	s.bases.put(key, ts, cfgs)
	if shared {
		ri.setVerdict("coalesced")
	} else {
		ri.setVerdict("fresh")
	}
	return outcome{key: key, raw: raw, coalesced: shared}, nil
}

// verdictOf maps an analysis error to its access-log verdict.
func verdictOf(err error) string {
	switch {
	case errors.Is(err, errShed):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "error"
	}
}

// compute is the flight leader's path: admission, the engine, the
// cache fill. Stage charges land on the leader's request timer; the
// coalesced followers charge their wait as StageCoalesce instead.
func (s *Server) compute(ri *reqInfo, key string, ts *taskmodel.TaskSet, cfgs []core.Config) (json.RawMessage, error) {
	st := ri.stageTimer()
	// A previous leader may have filled the cache between our lookup
	// and winning flight leadership.
	t0 := st.Now()
	raw, hit := s.cache.get(key)
	st.AddSince(telemetry.StageCache, t0)
	if hit {
		s.obs.Add(telemetry.CtrServerCacheHits, 1)
		ri.addCacheHit()
		return raw, nil
	}

	// Admission: one ticket per request in the building (running or
	// waiting). No ticket => shed immediately.
	select {
	case s.tickets <- struct{}{}:
		defer func() { <-s.tickets }()
	default:
		s.obs.Add(telemetry.CtrServerShed, 1)
		return nil, errShed
	}

	// The engine context is detached from any single client: the result
	// is shared with coalesced followers and the cache. RequestTimeout
	// still bounds the wait for a worker slot.
	ctx := context.Background()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	tq := st.Now()
	select {
	case s.sem <- struct{}{}:
		st.AddSince(telemetry.StageQueue, tq)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		st.AddSince(telemetry.StageQueue, tq)
		s.obs.Add(telemetry.CtrServerTimeouts, 1)
		return nil, ctx.Err()
	}

	s.obs.Add(telemetry.CtrServerAnalyses, 1)
	// With access logging on, the engine writes through a per-request
	// child sink so memo hits attribute to this request while the
	// daemon-wide totals keep accumulating.
	engineObs := s.obs
	var child *telemetry.Metrics
	if s.access != nil && ri != nil && s.obs.Metrics != nil {
		child = telemetry.NewChildMetrics(s.obs.Metrics)
		co := *s.obs
		co.Metrics = child
		engineObs = &co
	}
	var mu sync.Mutex
	var failure error
	ta := st.Now()
	sp := s.obs.Span("analyze "+key[:8], "server")
	out, err := core.AnalyzeBatchOpts(
		[]core.BatchRequest{{TS: ts, Cfgs: cfgs, Label: "req " + key[:8]}},
		core.BatchOptions{
			Workers:  1,
			Observer: engineObs,
			Context:  ctx,
			Isolate:  true,
			Memo:     s.memo,
			OnFailure: func(i int, label string, err error, stack []byte) {
				mu.Lock()
				failure = err
				mu.Unlock()
			},
		})
	sp.End()
	st.AddSince(telemetry.StageAnalyze, ta)
	ri.addEngine(child)
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return nil, err
	}
	if failure != nil {
		s.obs.Add(telemetry.CtrServerFailures, 1)
		return nil, &analysisError{failure}
	}
	if len(out) == 0 || out[0] == nil {
		// The deadline fired before the engine picked the request up.
		s.obs.Add(telemetry.CtrServerTimeouts, 1)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("server: analysis produced no result")
	}
	tm := st.Now()
	raw, merr := json.Marshal(out[0])
	st.AddSince(telemetry.StageMarshal, tm)
	if merr != nil {
		return nil, merr
	}
	// The cache fill is cache time, not marshal time — conflating the
	// two would hide a contended or oversized cache inside the marshal
	// histogram.
	tc := st.Now()
	s.cache.put(key, raw)
	st.AddSince(telemetry.StageCache, tc)
	return raw, nil
}

// statusOf maps an analysis error to its HTTP status.
func statusOf(err error) int {
	var ae *analysisError
	switch {
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &ae):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		// Ceiling, clamped to >= 1: Retry-After is whole seconds, and a
		// sub-second hint must not round (or truncate) to "0", which
		// tells well-behaved clients to hammer immediately.
		secs := int64((s.opts.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, status, wireError{Error: err.Error()})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// The body is read whole (not streamed into the decoder) so a
	// non-owner node can relay it to the owning peer verbatim.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req wireAnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ts, cfgs, err := req.decode()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ri := reqInfoFrom(r.Context())
	key := core.CanonicalKey(ts, cfgs)
	degraded := false
	if s.routeRemotely(r, key) {
		if done := s.proxyAnalyze(w, r, ri, key, ts, cfgs, body); done {
			return
		}
		degraded = true
	}
	oc, err := s.analyze(r.Context(), ri, ts, cfgs)
	if err != nil {
		s.writeError(w, statusOf(err), err)
		return
	}
	if degraded {
		ri.forceVerdict("degraded")
	}
	tm := ri.stageTimer().Now()
	s.writeJSON(w, http.StatusOK, wireAnalyzeResponse{
		Key: oc.key, Cached: oc.cached, Coalesced: oc.coalesced, Results: oc.raw,
	})
	ri.stageTimer().AddSince(telemetry.StageMarshal, tm)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req wireBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Requests) > maxBatchItems {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds the %d-item limit (split it)", len(req.Requests), maxBatchItems))
		return
	}
	ri := reqInfoFrom(r.Context())
	items := make([]wireBatchItem, len(req.Requests))
	// Bounded fan-out: a fixed pool of runners claims items off a shared
	// index instead of one goroutine per item — a huge batch must not be
	// a goroutine bomb that sidesteps admission sizing. The pool is
	// capped at Workers because that is all the concurrency the engine
	// semaphore will grant anyway.
	runners := s.opts.Workers
	if runners > len(req.Requests) {
		runners = len(req.Requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < runners; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Requests) {
					return
				}
				items[i] = s.batchItem(r, ri, &req.Requests[i])
			}
		}()
	}
	wg.Wait()
	tm := ri.stageTimer().Now()
	s.writeJSON(w, http.StatusOK, wireBatchResponse{Results: items})
	ri.stageTimer().AddSince(telemetry.StageMarshal, tm)
}

// batchItem resolves one batch item: decode, fleet routing (proxy to
// the owner, degrade on peer failure), then the ordinary analyze path.
func (s *Server) batchItem(r *http.Request, ri *reqInfo, item *wireAnalyzeRequest) wireBatchItem {
	ts, cfgs, err := item.decode()
	if err != nil {
		return wireBatchItem{Error: err.Error(), Status: http.StatusBadRequest}
	}
	key := core.CanonicalKey(ts, cfgs)
	degraded := false
	if s.routeRemotely(r, key) {
		if it, ok := s.proxyBatchItem(r, ri, key, ts, cfgs, item); ok {
			return it
		}
		degraded = true
	}
	oc, err := s.analyze(r.Context(), ri, ts, cfgs)
	if err != nil {
		return wireBatchItem{Key: oc.key, Error: err.Error(), Status: statusOf(err)}
	}
	if degraded {
		ri.forceVerdict("degraded")
	}
	return wireBatchItem{Key: oc.key, Cached: oc.cached, Coalesced: oc.coalesced, Results: oc.raw}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// wireHistogram is one histogram's JSON /metrics rendering: the raw
// snapshot plus quantiles estimated from the log2 buckets.
type wireHistogram struct {
	telemetry.HistSnapshot
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// handleMetrics serves the telemetry inventory — counters, point-in-
// time gauges and stage histograms with estimated quantiles — as JSON
// by default, or in the Prometheus 0.0.4 text exposition with
// ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gauges := []telemetry.PromGauge{
		{Name: "server.inflight", Help: "requests currently in flight", Value: s.inflight.Load()},
		{Name: "server.queue_depth", Help: "admitted requests waiting for a worker", Value: s.queueDepth()},
	}
	m := s.obs.Metrics
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", telemetry.ContentTypePrometheus)
		_ = m.WritePrometheus(w, gauges)
		return
	}
	gaugeMap := make(map[string]int64, len(gauges))
	for _, g := range gauges {
		gaugeMap[g.Name] = g.Value
	}
	hists := map[string]wireHistogram{}
	for name, hs := range m.Hists() {
		hists[name] = wireHistogram{
			HistSnapshot: hs,
			P50:          hs.Quantile(0.50),
			P95:          hs.Quantile(0.95),
			P99:          hs.Quantile(0.99),
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"counters":   m.Counters(),
		"gauges":     gaugeMap,
		"histograms": hists,
	})
}
