// Package server fronts the WCRT analysis engine (internal/core) with
// an HTTP JSON API — analysis as a service for toolchains that issue
// many, often near-duplicate, schedulability queries.
//
// The serving layer is deliberately pure: it never post-processes
// engine output. Each request is canonicalized to a stable key
// (core.CanonicalKey), answered from a bounded LRU result cache when
// possible, coalesced with identical in-flight work otherwise
// (singleflight), and only then admitted to a bounded worker pool.
// Admission beyond the pool plus a configurable queue depth is shed
// with 429 and a Retry-After hint, so overload degrades by refusing
// work, not by collapsing. A request whose analysis panics is isolated
// by the engine's PR-4 recovery path (retry on the reference analyzer,
// then a per-request failure) — one poisoned request returns a 500 and
// the daemon keeps serving.
//
// Endpoints:
//
//	POST /v1/analyze        one task set under a list of configurations
//	POST /v1/analyze/batch  several of the above in one round trip
//	POST /v1/analyze/delta  a recent request's key plus a list of edits
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           telemetry counters as JSON
//	GET  /debug/pprof/*     standard pprof handlers
//
// See DESIGN.md §11 for the full contract.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// Options configures a Server. The zero value is serviceable: engine
// concurrency at GOMAXPROCS, a queue of twice that, a 1024-entry cache
// without expiry, no per-request timeout.
type Options struct {
	// Workers bounds concurrent engine invocations; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// before new arrivals are shed with 429. 0 selects 2×Workers; a
	// negative value disables waiting entirely (busy workers => shed).
	QueueDepth int
	// CacheEntries bounds the result cache. 0 selects 1024; a negative
	// value disables caching.
	CacheEntries int
	// CacheTTL expires cache entries; 0 keeps them until evicted by
	// capacity.
	CacheTTL time.Duration
	// MemoEntries bounds the engine's content-addressed table memo
	// shared across requests (the delta fast path). 0 selects the
	// engine default (4096 columns); a negative value disables
	// memoization.
	MemoEntries int
	// BaseEntries bounds the registry of recently analyzed requests
	// addressable as delta bases. 0 selects 1024; a negative value
	// disables /v1/analyze/delta (every base lookup 404s).
	BaseEntries int
	// RequestTimeout bounds how long a request may wait for a worker
	// slot and cancels the engine between requests. A running analysis
	// is never preempted mid-fixed-point — its runtime is bounded by
	// Config.MaxOuterIterations — but its completed result is still
	// returned (and cached) even if the deadline passed meanwhile.
	// 0 disables the deadline.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to 429 responses; 0 selects 1s.
	RetryAfter time.Duration
	// Observer receives the server.* counter family and is forwarded to
	// the engine. nil disables counting.
	Observer *telemetry.Observer
	// Now overrides the cache clock (tests). nil selects time.Now.
	Now func() time.Time
}

// Server is the HTTP front end. Create with New, expose via Handler.
type Server struct {
	opts     Options
	obs      *telemetry.Observer
	cache    *resultCache
	flight   *flightGroup
	memo     *core.MemoStore // nil when MemoEntries < 0
	bases    *baseRegistry
	sem      chan struct{} // worker slots
	tickets  chan struct{} // worker slots + waiting room; full => shed
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a server over the in-process analysis engine.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.QueueDepth < 0:
		opts.QueueDepth = 0
	case opts.QueueDepth == 0:
		opts.QueueDepth = 2 * opts.Workers
	}
	switch {
	case opts.CacheEntries < 0:
		opts.CacheEntries = 0
	case opts.CacheEntries == 0:
		opts.CacheEntries = 1024
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	switch {
	case opts.BaseEntries < 0:
		opts.BaseEntries = 0
	case opts.BaseEntries == 0:
		opts.BaseEntries = 1024
	}
	var memo *core.MemoStore
	if opts.MemoEntries >= 0 {
		memo = core.NewMemoStore(opts.MemoEntries)
	}
	s := &Server{
		opts:    opts,
		obs:     opts.Observer,
		cache:   newResultCache(opts.CacheEntries, opts.CacheTTL, opts.Now, opts.Observer),
		flight:  newFlightGroup(),
		memo:    memo,
		bases:   newBaseRegistry(opts.BaseEntries),
		sem:     make(chan struct{}, opts.Workers),
		tickets: make(chan struct{}, opts.Workers+opts.QueueDepth),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/analyze/batch", s.handleBatch)
	mux.HandleFunc("/v1/analyze/delta", s.handleDelta)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the root handler; mount it on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips /healthz to 503 so load balancers stop routing new
// traffic; in-flight requests are unaffected. The caller (cmd/buscond)
// follows up with http.Server.Shutdown, which waits for them.
func (s *Server) StartDrain() { s.draining.Store(true) }

// errShed marks requests refused by admission control.
var errShed = errors.New("server: worker pool and queue full")

// analysisError marks a request whose engine run failed terminally
// (even after the isolation layer's reference retry).
type analysisError struct{ err error }

func (e *analysisError) Error() string { return e.err.Error() }

// outcome is the result of one analysis request on its way to the
// wire.
type outcome struct {
	key       string
	raw       json.RawMessage
	cached    bool
	coalesced bool
}

// analyze resolves one request through cache → coalescing → admission
// → engine. ctx is the *waiting* context (the client's); the engine
// runs detached so a coalesced result is never poisoned by one
// client's disconnect.
func (s *Server) analyze(ctx context.Context, ts *taskmodel.TaskSet, cfgs []core.Config) (outcome, error) {
	s.obs.Add(telemetry.CtrServerRequests, 1)
	key := core.CanonicalKey(ts, cfgs)
	// Every analyzed request is addressable as a delta base — including
	// the edited sets produced by deltas themselves, so sweeps chain.
	s.bases.put(key, ts, cfgs)
	if raw, ok := s.cache.get(key); ok {
		s.obs.Add(telemetry.CtrServerCacheHits, 1)
		return outcome{key: key, raw: raw, cached: true}, nil
	}
	s.obs.Add(telemetry.CtrServerCacheMisses, 1)
	raw, shared, err := s.flight.do(ctx, key, func() (json.RawMessage, error) {
		return s.compute(key, ts, cfgs)
	})
	if shared {
		s.obs.Add(telemetry.CtrServerCoalesced, 1)
	}
	if err != nil {
		return outcome{key: key}, err
	}
	return outcome{key: key, raw: raw, coalesced: shared}, nil
}

// compute is the flight leader's path: admission, the engine, the
// cache fill.
func (s *Server) compute(key string, ts *taskmodel.TaskSet, cfgs []core.Config) (json.RawMessage, error) {
	// A previous leader may have filled the cache between our lookup
	// and winning flight leadership.
	if raw, ok := s.cache.get(key); ok {
		s.obs.Add(telemetry.CtrServerCacheHits, 1)
		return raw, nil
	}

	// Admission: one ticket per request in the building (running or
	// waiting). No ticket => shed immediately.
	select {
	case s.tickets <- struct{}{}:
		defer func() { <-s.tickets }()
	default:
		s.obs.Add(telemetry.CtrServerShed, 1)
		return nil, errShed
	}

	// The engine context is detached from any single client: the result
	// is shared with coalesced followers and the cache. RequestTimeout
	// still bounds the wait for a worker slot.
	ctx := context.Background()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.obs.Add(telemetry.CtrServerTimeouts, 1)
		return nil, ctx.Err()
	}

	s.obs.Add(telemetry.CtrServerAnalyses, 1)
	var mu sync.Mutex
	var failure error
	out, err := core.AnalyzeBatchOpts(
		[]core.BatchRequest{{TS: ts, Cfgs: cfgs, Label: "req " + key[:8]}},
		core.BatchOptions{
			Workers:  1,
			Observer: s.obs,
			Context:  ctx,
			Isolate:  true,
			Memo:     s.memo,
			OnFailure: func(i int, label string, err error, stack []byte) {
				mu.Lock()
				failure = err
				mu.Unlock()
			},
		})
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return nil, err
	}
	if failure != nil {
		s.obs.Add(telemetry.CtrServerFailures, 1)
		return nil, &analysisError{failure}
	}
	if len(out) == 0 || out[0] == nil {
		// The deadline fired before the engine picked the request up.
		s.obs.Add(telemetry.CtrServerTimeouts, 1)
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("server: analysis produced no result")
	}
	raw, merr := json.Marshal(out[0])
	if merr != nil {
		return nil, merr
	}
	s.cache.put(key, raw)
	return raw, nil
}

// statusOf maps an analysis error to its HTTP status.
func statusOf(err error) int {
	var ae *analysisError
	switch {
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.As(err, &ae):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.opts.RetryAfter.Round(time.Second)/time.Second)))
	}
	s.writeJSON(w, status, wireError{Error: err.Error()})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req wireAnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ts, cfgs, err := req.decode()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	oc, err := s.analyze(r.Context(), ts, cfgs)
	if err != nil {
		s.writeError(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, wireAnalyzeResponse{
		Key: oc.key, Cached: oc.cached, Coalesced: oc.coalesced, Results: oc.raw,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req wireBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	items := make([]wireBatchItem, len(req.Requests))
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts, cfgs, err := req.Requests[i].decode()
			if err != nil {
				items[i] = wireBatchItem{Error: err.Error(), Status: http.StatusBadRequest}
				return
			}
			oc, err := s.analyze(r.Context(), ts, cfgs)
			if err != nil {
				items[i] = wireBatchItem{Key: oc.key, Error: err.Error(), Status: statusOf(err)}
				return
			}
			items[i] = wireBatchItem{
				Key: oc.key, Cached: oc.cached, Coalesced: oc.coalesced, Results: oc.raw,
			}
		}(i)
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, wireBatchResponse{Results: items})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counters := map[string]int64{}
	if s.obs != nil && s.obs.Metrics != nil {
		counters = s.obs.Metrics.Counters()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"counters": counters})
}
