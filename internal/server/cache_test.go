package server

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestCacheLRUEviction(t *testing.T) {
	obs := telemetry.New()
	now := time.Unix(1000, 0)
	c := newResultCache(2, 0, func() time.Time { return now }, obs)

	c.put("a", json.RawMessage(`"A"`))
	c.put("b", json.RawMessage(`"B"`))
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", json.RawMessage(`"C"`)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a (recently used) was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheEvictions); got != 1 {
		t.Errorf("server.cache_evictions = %d, want 1", got)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	obs := telemetry.New()
	now := time.Unix(1000, 0)
	c := newResultCache(8, time.Minute, func() time.Time { return now }, obs)

	c.put("k", json.RawMessage(`"V"`))
	if _, ok := c.get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.get("k"); !ok {
		t.Error("entry expired before its TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.get("k"); ok {
		t.Error("entry survived past its TTL")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheExpiries); got != 1 {
		t.Errorf("server.cache_expiries = %d, want 1 for the expiry", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheEvictions); got != 0 {
		t.Errorf("server.cache_evictions = %d, want 0: a TTL expiry is not capacity pressure", got)
	}
	if c.len() != 0 {
		t.Errorf("len = %d after expiry, want 0", c.len())
	}

	// A re-put after expiry refreshes the deadline.
	c.put("k", json.RawMessage(`"V2"`))
	now = now.Add(30 * time.Second)
	if raw, ok := c.get("k"); !ok || string(raw) != `"V2"` {
		t.Errorf("refreshed entry = %q ok=%v", raw, ok)
	}
}

// TestCacheTTLBoundary pins the expiry contract: an entry is live
// strictly before its expiry instant and dead at exactly t = expires.
// The previous comparison (After) served entries at the boundary
// instant — observable with coarse clocks and with TTLs aligned to
// scheduler ticks.
func TestCacheTTLBoundary(t *testing.T) {
	obs := telemetry.New()
	now := time.Unix(1000, 0)
	c := newResultCache(8, time.Minute, func() time.Time { return now }, obs)

	c.put("k", json.RawMessage(`"V"`))
	now = now.Add(time.Minute - time.Nanosecond)
	if _, ok := c.get("k"); !ok {
		t.Error("entry dead one tick before its expiry instant")
	}
	now = now.Add(time.Nanosecond) // exactly t = expires
	if _, ok := c.get("k"); ok {
		t.Error("entry served at exactly its expiry instant; contract is t >= expires => expired")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheExpiries); got != 1 {
		t.Errorf("server.cache_expiries = %d, want 1", got)
	}
}

// TestCachePutSweepsExpiredTail pins the idle-memory fix: entries that
// expired without ever being looked up again are removed by the next
// put, not pinned until capacity pressure reaches them.
func TestCachePutSweepsExpiredTail(t *testing.T) {
	obs := telemetry.New()
	now := time.Unix(1000, 0)
	c := newResultCache(64, time.Minute, func() time.Time { return now }, obs)

	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("old%d", i), json.RawMessage(`0`))
	}
	now = now.Add(2 * time.Minute) // all five are now dead, none looked up
	c.put("fresh", json.RawMessage(`1`))
	if got := c.len(); got != 1 {
		t.Errorf("len = %d after put past the TTL, want 1 (dead tail swept)", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheExpiries); got != 5 {
		t.Errorf("server.cache_expiries = %d, want 5 swept entries", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheEvictions); got != 0 {
		t.Errorf("server.cache_evictions = %d, want 0: the sweep is not capacity pressure", got)
	}
	if _, ok := c.get("fresh"); !ok {
		t.Error("fresh entry lost by the sweep")
	}
}

func TestCacheUpdateMovesToFront(t *testing.T) {
	c := newResultCache(2, 0, time.Now, nil)
	c.put("a", json.RawMessage(`1`))
	c.put("b", json.RawMessage(`2`))
	c.put("a", json.RawMessage(`3`)) // update, not insert
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2 (update must not grow the cache)", c.len())
	}
	c.put("c", json.RawMessage(`4`)) // evicts b, the LRU
	if _, ok := c.get("b"); ok {
		t.Error("b survived; update did not refresh a's recency")
	}
	if raw, _ := c.get("a"); string(raw) != `3` {
		t.Errorf("a = %s, want the updated value 3", raw)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0, 0, time.Now, nil)
	c.put("a", json.RawMessage(`1`))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a value")
	}
	if c.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

func TestCacheManyKeysBounded(t *testing.T) {
	c := newResultCache(16, 0, time.Now, nil)
	for i := 0; i < 1000; i++ {
		c.put(fmt.Sprintf("k%d", i), json.RawMessage(`0`))
	}
	if c.len() != 16 {
		t.Errorf("len = %d, want the 16-entry bound", c.len())
	}
	if _, ok := c.get("k999"); !ok {
		t.Error("most recent key missing")
	}
	if _, ok := c.get("k0"); ok {
		t.Error("oldest key survived")
	}
}
