package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cacheset"
	"repro/internal/fixtures"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeDelta(t *testing.T, data []byte) wireDeltaResponse {
	t.Helper()
	var env wireDeltaResponse
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding delta envelope: %v\n%s", err, data)
	}
	return env
}

// deltaCase pairs a wire edit list with an independent re-statement of
// the same edit as direct struct mutation, so the test checks
// applyEdits against a second implementation rather than against
// itself.
type deltaCase struct {
	name   string
	edits  []wireEdit
	mutate func(plat *taskmodel.Platform, tasks []*taskmodel.Task)
}

func fig1ByName(tasks []*taskmodel.Task, name string) *taskmodel.Task {
	for _, tk := range tasks {
		if tk.Name == name {
			return tk
		}
	}
	return nil
}

func deltaGrid() []deltaCase {
	n := fixtures.Fig1NumSets
	raw := func(v any) json.RawMessage {
		b, _ := json.Marshal(v)
		return b
	}
	prio := func(v int) *int { return &v }
	return []deltaCase{
		{"pd", []wireEdit{{Task: "tau2", Field: "pd", Value: raw(40)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau2").PD = 40 }},
		{"pd by priority selector", []wireEdit{{Priority: prio(1), Field: "pd", Value: raw(41)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau2").PD = 41 }},
		{"md", []wireEdit{{Task: "tau1", Field: "md", Value: raw(7)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau1").MD = 7 }},
		{"mdr", []wireEdit{{Task: "tau1", Field: "mdr", Value: raw(0)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau1").MDr = 0 }},
		{"period+deadline", []wireEdit{
			{Task: "tau3", Field: "period", Value: raw(60)},
			{Task: "tau3", Field: "deadline", Value: raw(45)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) {
				fig1ByName(ts, "tau3").Period = 60
				fig1ByName(ts, "tau3").Deadline = 45
			}},
		{"priority", []wireEdit{{Task: "tau1", Field: "priority", Value: raw(3)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau1").Priority = 3 }},
		{"core", []wireEdit{{Task: "tau2", Field: "core", Value: raw(1)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau2").Core = 1 }},
		{"ucb", []wireEdit{{Task: "tau2", Field: "ucb", Value: raw([]int{5})}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau2").UCB = cacheset.Of(n, 5) }},
		{"ecb", []wireEdit{{Task: "tau3", Field: "ecb", Value: raw([]int{5, 6, 7, 8, 9, 10, 11})}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) {
				fig1ByName(ts, "tau3").ECB = cacheset.Of(n, 5, 6, 7, 8, 9, 10, 11)
			}},
		{"pcb", []wireEdit{{Task: "tau1", Field: "pcb", Value: raw([]int{5, 6})}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { fig1ByName(ts, "tau1").PCB = cacheset.Of(n, 5, 6) }},
		{"d_mem", []wireEdit{{Field: "d_mem", Value: raw(2)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { p.DMem = 2 }},
		{"slot_size", []wireEdit{{Field: "slot_size", Value: raw(2)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) { p.SlotSize = 2 }},
		{"mixed", []wireEdit{
			{Task: "tau1", Field: "pd", Value: raw(6)},
			{Field: "d_mem", Value: raw(3)}},
			func(p *taskmodel.Platform, ts []*taskmodel.Task) {
				fig1ByName(ts, "tau1").PD = 6
				p.DMem = 3
			}},
	}
}

// TestDeltaByteIdentity is the delta acceptance pin: over a grid of
// edits covering every editable field, the /v1/analyze/delta response
// must be byte-identical (results and canonical key) to POSTing the
// hand-edited full request to /v1/analyze — here served by a separate
// memo-free server, so the comparison also pins the memoized engine
// against the plain one across the HTTP boundary.
func TestDeltaByteIdentity(t *testing.T) {
	obs := telemetry.New()
	deltaSrv := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer deltaSrv.Close()
	plainSrv := httptest.NewServer(New(Options{MemoEntries: -1}).Handler())
	defer plainSrv.Close()

	resp, data := postAnalyze(t, deltaSrv.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base analyze: status %d\n%s", resp.StatusCode, data)
	}
	baseKey := decodeEnvelope(t, data).Key

	for _, tc := range deltaGrid() {
		t.Run(tc.name, func(t *testing.T) {
			dResp, dData := postJSON(t, deltaSrv.URL+"/v1/analyze/delta",
				wireDeltaRequest{BaseKey: baseKey, Edits: tc.edits})
			if dResp.StatusCode != http.StatusOK {
				t.Fatalf("delta: status %d\n%s", dResp.StatusCode, dData)
			}
			dEnv := decodeDelta(t, dData)
			if dEnv.BaseKey != baseKey {
				t.Errorf("response base_key %s != request base %s", dEnv.BaseKey, baseKey)
			}

			// Fresh path: the same edit stated as direct struct mutation.
			base := fixtures.Fig1TaskSet()
			plat := base.Platform
			tasks := make([]*taskmodel.Task, len(base.Tasks))
			for i, tk := range base.Tasks {
				c := *tk
				tasks[i] = &c
			}
			tc.mutate(&plat, tasks)
			edited := taskmodel.NewTaskSet(plat, tasks)
			fResp, fData := postAnalyze(t, plainSrv.URL, requestBody(t, edited, paperConfigs))
			if fResp.StatusCode != http.StatusOK {
				t.Fatalf("fresh analyze: status %d\n%s", fResp.StatusCode, fData)
			}
			fEnv := decodeEnvelope(t, fData)
			if dEnv.Key != fEnv.Key {
				t.Errorf("delta key %s != fresh key %s (edit application diverged)", dEnv.Key, fEnv.Key)
			}
			if !bytes.Equal([]byte(dEnv.Results), []byte(fEnv.Results)) {
				t.Errorf("delta results differ from the fresh path:\ndelta: %s\nfresh: %s", dEnv.Results, fEnv.Results)
			}
		})
	}

	if hits := obs.Metrics.Get(telemetry.CtrMemoHits); hits == 0 {
		t.Error("core.memo_hits = 0 across the delta grid; the memo store is not being reused")
	}
	if hits := obs.Metrics.Get(telemetry.CtrCurveMemoHits); hits == 0 {
		t.Error("core.curve_memo_hits = 0 across the delta grid; curve backbones are not being reused")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerDeltaRequests); got != int64(len(deltaGrid())) {
		t.Errorf("server.delta_requests = %d, want %d", got, len(deltaGrid()))
	}
}

// TestDeltaChainingAndConfigOverride: a delta response's key is itself
// a valid base (sweeps chain edit over edit), an identical delta
// re-POST is served from the result cache, and a config override
// re-analyzes the base under the new grid.
func TestDeltaChainingAndConfigOverride(t *testing.T) {
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()
	raw := func(v any) json.RawMessage { b, _ := json.Marshal(v); return b }

	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d\n%s", resp.StatusCode, data)
	}
	baseKey := decodeEnvelope(t, data).Key

	step1 := wireDeltaRequest{BaseKey: baseKey, Edits: []wireEdit{{Task: "tau2", Field: "pd", Value: raw(33)}}}
	r1, d1 := postJSON(t, hs.URL+"/v1/analyze/delta", step1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("step1: status %d\n%s", r1.StatusCode, d1)
	}
	env1 := decodeDelta(t, d1)

	// Chain: edit pd again relative to step1's result.
	step2 := wireDeltaRequest{BaseKey: env1.Key, Edits: []wireEdit{{Task: "tau2", Field: "pd", Value: raw(34)}}}
	r2, d2 := postJSON(t, hs.URL+"/v1/analyze/delta", step2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("step2 (chained off a delta result): status %d\n%s", r2.StatusCode, d2)
	}
	env2 := decodeDelta(t, d2)
	if env2.Key == env1.Key {
		t.Error("chained edit produced the same canonical key")
	}

	// Identical re-POST of step2 hits the result cache.
	r3, d3 := postJSON(t, hs.URL+"/v1/analyze/delta", step2)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("step2 re-POST: status %d\n%s", r3.StatusCode, d3)
	}
	env3 := decodeDelta(t, d3)
	if !env3.Cached {
		t.Error("identical delta re-POST not served from the cache")
	}
	if !bytes.Equal([]byte(env3.Results), []byte(env2.Results)) {
		t.Error("cached delta bytes differ from the computed ones")
	}

	// Config override without edits: same task set, different grid.
	ov := wireDeltaRequest{BaseKey: baseKey, Configs: []wireConfig{{Arbiter: "rr"}}}
	r4, d4 := postJSON(t, hs.URL+"/v1/analyze/delta", ov)
	if r4.StatusCode != http.StatusOK {
		t.Fatalf("config override: status %d\n%s", r4.StatusCode, d4)
	}
	env4 := decodeDelta(t, d4)
	fr, fd := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), []wireConfig{{Arbiter: "rr"}}))
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("fresh override reference: status %d\n%s", fr.StatusCode, fd)
	}
	if fEnv := decodeEnvelope(t, fd); fEnv.Key != env4.Key || !bytes.Equal([]byte(fEnv.Results), []byte(env4.Results)) {
		t.Error("config-override delta diverges from the fresh path")
	}
}

func TestDeltaErrors(t *testing.T) {
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()
	raw := func(v any) json.RawMessage { b, _ := json.Marshal(v); return b }

	// Method and body validation.
	if resp, err := http.Get(hs.URL + "/v1/analyze/delta"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: err=%v status=%d, want 405", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(hs.URL+"/v1/analyze/delta", "application/json", bytes.NewReader([]byte("{not json"))); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: err=%v status=%d, want 400", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Missing and unknown base keys.
	if resp, data := postJSON(t, hs.URL+"/v1/analyze/delta", wireDeltaRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing base_key: status %d, want 400\n%s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, hs.URL+"/v1/analyze/delta", wireDeltaRequest{BaseKey: "deadbeef"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown base_key: status %d, want 404\n%s", resp.StatusCode, data)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerDeltaBaseMisses); got != 1 {
		t.Errorf("server.delta_base_misses = %d, want 1", got)
	}

	// Establish a base, then exercise the edit validation paths.
	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d\n%s", resp.StatusCode, data)
	}
	baseKey := decodeEnvelope(t, data).Key

	prio := func(v int) *int { return &v }
	bad := []struct {
		name string
		req  wireDeltaRequest
	}{
		{"unknown task", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Task: "tau9", Field: "pd", Value: raw(5)}}}},
		{"unknown priority selector", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Priority: prio(9), Field: "pd", Value: raw(5)}}}},
		{"priority/name selector mismatch", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Priority: prio(0), Task: "tau2", Field: "pd", Value: raw(5)}}}},
		{"unknown task field", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Task: "tau1", Field: "weight", Value: raw(5)}}}},
		{"unknown platform field", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Field: "num_cores", Value: raw(4)}}}},
		{"non-numeric scalar", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Task: "tau1", Field: "pd", Value: raw("fast")}}}},
		{"set index out of range", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Task: "tau1", Field: "ucb", Value: raw([]int{99})}}}},
		{"invalid edited set", wireDeltaRequest{BaseKey: baseKey,
			Edits: []wireEdit{{Task: "tau2", Field: "deadline", Value: raw(200)}}}}, // D > T
		{"bad config override", wireDeltaRequest{BaseKey: baseKey,
			Configs: []wireConfig{{Arbiter: "warp-drive"}}}},
	}
	for _, tc := range bad {
		if resp, data := postJSON(t, hs.URL+"/v1/analyze/delta", tc.req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400\n%s", tc.name, resp.StatusCode, data)
		}
	}
}

// TestDeltaAmbiguousName: benchmark-derived task names repeat in
// generated sets, so a name selector matching several tasks must be
// rejected (400 pointing at the priority selector) — not silently
// resolved to an arbitrary one — while the priority selector still
// addresses each duplicate exactly.
func TestDeltaAmbiguousName(t *testing.T) {
	hs := httptest.NewServer(New(Options{}).Handler())
	defer hs.Close()
	raw := func(v any) json.RawMessage { b, _ := json.Marshal(v); return b }

	base := fixtures.Fig1TaskSet()
	tasks := make([]*taskmodel.Task, len(base.Tasks))
	for i, tk := range base.Tasks {
		c := *tk
		tasks[i] = &c
	}
	fig1ByName(tasks, "tau3").Name = "tau1" // two tasks named tau1
	dup := taskmodel.NewTaskSet(base.Platform, tasks)

	resp, data := postAnalyze(t, hs.URL, requestBody(t, dup, paperConfigs[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d\n%s", resp.StatusCode, data)
	}
	baseKey := decodeEnvelope(t, data).Key

	amb := wireDeltaRequest{BaseKey: baseKey, Edits: []wireEdit{{Task: "tau1", Field: "pd", Value: raw(5)}}}
	if resp, data := postJSON(t, hs.URL+"/v1/analyze/delta", amb); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous name: status %d, want 400\n%s", resp.StatusCode, data)
	}

	p := 2 // the renamed tau3's priority
	byPrio := wireDeltaRequest{BaseKey: baseKey, Edits: []wireEdit{{Priority: &p, Field: "pd", Value: raw(5)}}}
	dResp, dData := postJSON(t, hs.URL+"/v1/analyze/delta", byPrio)
	if dResp.StatusCode != http.StatusOK {
		t.Fatalf("priority selector on duplicate names: status %d\n%s", dResp.StatusCode, dData)
	}
	// Differential: the edit must have landed on the priority-2 task.
	fig1ByName(tasks[2:], "tau1").PD = 5 // tasks sorted by priority; index 2 = priority 2
	edited := taskmodel.NewTaskSet(dup.Platform, tasks)
	fResp, fData := postAnalyze(t, hs.URL, requestBody(t, edited, paperConfigs[:1]))
	if fResp.StatusCode != http.StatusOK {
		t.Fatalf("fresh: status %d\n%s", fResp.StatusCode, fData)
	}
	if dk, fk := decodeDelta(t, dData).Key, decodeEnvelope(t, fData).Key; dk != fk {
		t.Errorf("priority-selected edit landed on the wrong task: delta key %s != fresh key %s", dk, fk)
	}
}

// TestDeltaDisabled: BaseEntries < 0 turns the endpoint into a
// guaranteed 404 (no base is ever registered) without affecting the
// plain analyze path.
func TestDeltaDisabled(t *testing.T) {
	hs := httptest.NewServer(New(Options{BaseEntries: -1}).Handler())
	defer hs.Close()

	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with deltas disabled: status %d\n%s", resp.StatusCode, data)
	}
	key := decodeEnvelope(t, data).Key
	if dResp, dData := postJSON(t, hs.URL+"/v1/analyze/delta", wireDeltaRequest{BaseKey: key}); dResp.StatusCode != http.StatusNotFound {
		t.Errorf("delta with registry disabled: status %d, want 404\n%s", dResp.StatusCode, dData)
	}
}

func TestBaseRegistryBounded(t *testing.T) {
	r := newBaseRegistry(4)
	ts := fixtures.Fig1TaskSet()
	for i := 0; i < 10; i++ {
		r.put(fmt.Sprintf("k%d", i), ts, nil)
	}
	if got := r.len(); got != 4 {
		t.Errorf("registry holds %d entries, want the 4-entry bound", got)
	}
	if _, _, ok := r.get("k9"); !ok {
		t.Error("most recent base evicted")
	}
	if _, _, ok := r.get("k0"); ok {
		t.Error("oldest base survived beyond the bound")
	}
	// Recency: touching k6 must protect it over k7.
	if _, _, ok := r.get("k6"); !ok {
		t.Fatal("k6 missing")
	}
	r.put("k10", ts, nil)
	if _, _, ok := r.get("k6"); !ok {
		t.Error("recently touched base evicted before a colder one")
	}
	if _, _, ok := r.get("k7"); ok {
		t.Error("cold base survived while a warmer one was evicted")
	}
}

// TestDeltaEditCannotInvalidateRegulatedConfig: an edit that zeroes a
// regulation parameter under a regulated configuration is malformed
// input — the delta path must answer a named-field 400 before the
// engine sees it, never a 500.
func TestDeltaEditCannotInvalidateRegulatedConfig(t *testing.T) {
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()
	raw := func(v any) json.RawMessage { b, _ := json.Marshal(v); return b }

	ts := fixtures.Fig1TaskSet()
	ts.Platform.RegBudget = 4
	ts.Platform.RegPeriod = 100
	regCfgs := []wireConfig{{Arbiter: "regulated", Persistence: true}}
	resp, data := postAnalyze(t, hs.URL, requestBody(t, ts, regCfgs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d\n%s", resp.StatusCode, data)
	}
	baseKey := decodeEnvelope(t, data).Key

	// A valid regulation edit still works and moves the key.
	ok := wireDeltaRequest{BaseKey: baseKey, Edits: []wireEdit{{Field: "reg_budget", Value: raw(8)}}}
	r1, d1 := postJSON(t, hs.URL+"/v1/analyze/delta", ok)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("reg_budget edit: status %d\n%s", r1.StatusCode, d1)
	}
	if decodeDelta(t, d1).Key == baseKey {
		t.Error("reg_budget edit did not change the canonical key")
	}

	// Zeroing the budget invalidates the regulated config: 400, not 500.
	bad := wireDeltaRequest{BaseKey: baseKey, Edits: []wireEdit{{Field: "reg_budget", Value: raw(0)}}}
	r2, d2 := postJSON(t, hs.URL+"/v1/analyze/delta", bad)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("zeroed reg_budget: status %d, want 400\n%s", r2.StatusCode, d2)
	}
	var we wireError
	if err := json.Unmarshal(d2, &we); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, d2)
	}
	if !strings.Contains(we.Error, "RegBudget") && !strings.Contains(we.Error, "reg") {
		t.Errorf("error %q does not name the offending field", we.Error)
	}
}
