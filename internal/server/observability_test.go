package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/telemetry"
)

// TestRetryAfterNeverZero pins the satellite fix: a sub-second
// RetryAfter hint must ceil to "1", not round (or truncate) to "0" —
// Retry-After: 0 tells well-behaved clients to hammer immediately.
func TestRetryAfterNeverZero(t *testing.T) {
	cases := []struct {
		retryAfter time.Duration
		want       string
	}{
		{100 * time.Millisecond, "1"}, // Round(time.Second) used to yield 0
		{499 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"}, // partial seconds ceil, not floor
		{0, "1"},                       // option default
	}
	for _, tc := range cases {
		srv := New(Options{RetryAfter: tc.retryAfter})
		rec := httptest.NewRecorder()
		srv.writeError(rec, http.StatusTooManyRequests, errShed)
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("RetryAfter=%v: header %q, want %q", tc.retryAfter, got, tc.want)
		}
		if got := rec.Header().Get("Retry-After"); got == "0" {
			t.Errorf("RetryAfter=%v produced the forbidden \"0\"", tc.retryAfter)
		}
	}
	// Non-429 statuses carry no hint.
	srv := New(Options{})
	rec := httptest.NewRecorder()
	srv.writeError(rec, http.StatusBadRequest, fmt.Errorf("nope"))
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("400 response carries Retry-After %q", got)
	}
}

// metricsJSON is the JSON /metrics document shape the tests consume.
type metricsJSON struct {
	Counters   map[string]int64 `json:"counters"`
	Gauges     map[string]int64 `json:"gauges"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Max   int64   `json:"max"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
}

func scrapeJSON(t *testing.T, url string) metricsJSON {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsJSON
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	return m
}

// TestGaugesUnderConcurrentLoad pins the inflight and queue_depth
// gauges: with one worker pinned inside the engine and two distinct
// requests admitted behind it, /metrics must report queue_depth 2 and
// an inflight count covering all blocked requests.
func TestGaugesUnderConcurrentLoad(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Workers: 1, QueueDepth: 2, Observer: obs}).Handler())
	defer hs.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		ts := fixtures.Fig1TaskSet()
		ts.Platform.DMem = int64(i + 1) // distinct canonical keys
		body := requestBody(t, ts, paperConfigs[:1])
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postAnalyze(t, hs.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("pinned request: status %d", resp.StatusCode)
			}
		}()
	}

	// Steady state: one request in the engine, two queued behind it.
	deadline := time.Now().Add(5 * time.Second)
	var m metricsJSON
	for {
		m = scrapeJSON(t, hs.URL)
		if m.Gauges["server.queue_depth"] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth 2: gauges %v", m.Gauges)
		}
		time.Sleep(time.Millisecond)
	}
	// The three analysis requests are all still in flight (the /metrics
	// scrape itself also counts while being served).
	if got := m.Gauges["server.inflight"]; got < 3 {
		t.Errorf("server.inflight = %d, want >= 3 while all requests are blocked", got)
	}

	close(release)
	wg.Wait()
	// The inflight decrement happens after the response is written;
	// poll until the middleware has fully unwound.
	deadline = time.Now().Add(5 * time.Second)
	for {
		m = scrapeJSON(t, hs.URL)
		if m.Gauges["server.inflight"] == 1 && m.Gauges["server.queue_depth"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges never drained: %v (want inflight 1 — the scrape itself — and queue_depth 0)", m.Gauges)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMetricsEndpointFormats: the JSON document carries counters,
// gauges and stage histograms with quantiles; ?format=prometheus
// serves a well-formed 0.0.4 exposition of the same state.
func TestMetricsEndpointFormats(t *testing.T) {
	hs := httptest.NewServer(New(Options{}).Handler())
	defer hs.Close()

	body := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])
	for i := 0; i < 2; i++ { // fresh, then cached
		if resp, data := postAnalyze(t, hs.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: status %d\n%s", resp.StatusCode, data)
		}
	}

	// The stage flush happens after the response is written, so poll
	// until both requests' timers have landed.
	deadline := time.Now().Add(5 * time.Second)
	var m metricsJSON
	for {
		m = scrapeJSON(t, hs.URL)
		if m.Histograms["server.request_us"].Count >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request histogram never reached 2 observations: %+v", m.Histograms)
		}
		time.Sleep(time.Millisecond)
	}
	if m.Counters["server.requests"] != 2 || m.Counters["server.analyses"] != 1 {
		t.Errorf("unexpected counters: %v", m.Counters)
	}
	if _, ok := m.Gauges["server.inflight"]; !ok {
		t.Error("JSON metrics missing server.inflight gauge")
	}
	if _, ok := m.Gauges["server.queue_depth"]; !ok {
		t.Error("JSON metrics missing server.queue_depth gauge")
	}
	rt := m.Histograms["server.request_us"]
	if rt.P99 < rt.P50 || float64(rt.Max) < rt.P99 {
		t.Errorf("quantiles disordered: p50=%v p99=%v max=%d", rt.P50, rt.P99, rt.Max)
	}
	if an, ok := m.Histograms["server.stage_analyze_us"]; !ok || an.Count != 1 {
		t.Errorf("stage_analyze_us = %+v (ok=%v), want count 1 (one engine run)", an, ok)
	}
	if ca, ok := m.Histograms["server.stage_cache_us"]; !ok || ca.Count != 2 {
		t.Errorf("stage_cache_us = %+v (ok=%v), want count 2 (every request touches the cache)", ca, ok)
	}

	resp, err := http.Get(hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentTypePrometheus {
		t.Errorf("prometheus content-type = %q", ct)
	}
	text := string(data)
	for _, want := range []string{
		"server_requests 2",
		"# TYPE server_inflight gauge",
		"# TYPE server_queue_depth gauge",
		"# TYPE server_request_us histogram",
		"server_stage_analyze_us_count 1",
		// Only analysis requests charge stages, so this stays exact even
		// though the scrapes themselves keep feeding server_request_us.
		`server_stage_analyze_us_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// syncWriter is a race-free sink for access-log lines: the middleware
// logs after the response is written, so the client can observe the
// response before the line lands.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) lines() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := strings.TrimRight(w.buf.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func waitLines(t *testing.T, w *syncWriter, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ls := w.lines(); len(ls) >= n {
			return ls
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log never reached %d lines: %q", n, w.lines())
		}
		time.Sleep(time.Millisecond)
	}
}

// accessLine mirrors accessEntry for decoding in tests.
type accessLine struct {
	Time    string           `json:"time"`
	ID      string           `json:"id"`
	Method  string           `json:"method"`
	Path    string           `json:"path"`
	Status  int              `json:"status"`
	Verdict string           `json:"verdict"`
	DurUS   int64            `json:"dur_us"`
	Stages  map[string]int64 `json:"stages"`
	Cache   int64            `json:"cache_hits"`
	Runs    int64            `json:"analyses"`
}

// TestAccessLogJSON: one line per request, carrying the request ID,
// verdict and per-stage durations; a fresh request charges the analyze
// stage, its duplicate charges only cache.
func TestAccessLogJSON(t *testing.T) {
	var logw syncWriter
	hs := httptest.NewServer(New(Options{AccessLog: &logw}).Handler())
	defer hs.Close()

	body := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])
	for i := 0; i < 2; i++ {
		if resp, data := postAnalyze(t, hs.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze: status %d\n%s", resp.StatusCode, data)
		}
	}
	lines := waitLines(t, &logw, 2)
	var fresh, cached accessLine
	if err := json.Unmarshal([]byte(lines[0]), &fresh); err != nil {
		t.Fatalf("line 1 not JSON: %v\n%s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &cached); err != nil {
		t.Fatalf("line 2 not JSON: %v\n%s", err, lines[1])
	}
	if fresh.Verdict != "fresh" || cached.Verdict != "cached" {
		t.Errorf("verdicts = %q, %q; want fresh, cached", fresh.Verdict, cached.Verdict)
	}
	if fresh.ID == "" || cached.ID == "" || fresh.ID == cached.ID {
		t.Errorf("request IDs not unique: %q vs %q", fresh.ID, cached.ID)
	}
	if fresh.Method != "POST" || fresh.Path != "/v1/analyze" || fresh.Status != http.StatusOK {
		t.Errorf("fresh line envelope wrong: %+v", fresh)
	}
	if _, err := time.Parse(time.RFC3339Nano, fresh.Time); err != nil {
		t.Errorf("timestamp not RFC3339: %v", err)
	}
	if fresh.Runs != 1 || fresh.Stages["analyze"] <= 0 {
		t.Errorf("fresh request missing analyze stage: %+v", fresh)
	}
	if cached.Cache != 1 || cached.Runs != 0 {
		t.Errorf("cached request attribution wrong: %+v", cached)
	}
	if _, ok := cached.Stages["analyze"]; ok {
		t.Errorf("cached request charged the analyze stage: %+v", cached)
	}
	if fresh.DurUS <= 0 {
		t.Errorf("dur_us = %d, want > 0", fresh.DurUS)
	}
}

// TestAccessLogText: the text format renders the same request as
// key=value pairs on one line.
func TestAccessLogText(t *testing.T) {
	var logw syncWriter
	hs := httptest.NewServer(New(Options{AccessLog: &logw, AccessLogFormat: "text"}).Handler())
	defer hs.Close()

	if resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d\n%s", resp.StatusCode, data)
	}
	line := waitLines(t, &logw, 1)[0]
	for _, want := range []string{"id=", "method=POST", "path=/v1/analyze", "status=200", "verdict=fresh", "dur_us=", "stage.analyze_us="} {
		if !strings.Contains(line, want) {
			t.Errorf("text line missing %q:\n%s", want, line)
		}
	}
}

// TestRequestIDPropagation: a well-formed client X-Request-ID is
// echoed back and logged; a missing or malformed one is replaced by a
// generated hex ID.
func TestRequestIDPropagation(t *testing.T) {
	var logw syncWriter
	hs := httptest.NewServer(New(Options{AccessLog: &logw}).Handler())
	defer hs.Close()

	body := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])
	post := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/analyze", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if got := post("sweep-42.step_7").Header.Get("X-Request-ID"); got != "sweep-42.step_7" {
		t.Errorf("well-formed ID not echoed: got %q", got)
	}
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	if got := post("").Header.Get("X-Request-ID"); !hexID.MatchString(got) {
		t.Errorf("missing ID not replaced by generated hex: got %q", got)
	}
	if got := post("bad id with spaces " + strings.Repeat("x", 100)).Header.Get("X-Request-ID"); !hexID.MatchString(got) {
		t.Errorf("malformed ID not replaced: got %q", got)
	}

	lines := waitLines(t, &logw, 3)
	var first accessLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.ID != "sweep-42.step_7" {
		t.Errorf("client ID not logged: %q", first.ID)
	}
}

// TestBatchVerdictMixed: a batch whose items resolve differently logs
// as "mixed"; a homogeneous batch keeps the shared verdict.
func TestBatchVerdictMixed(t *testing.T) {
	var logw syncWriter
	hs := httptest.NewServer(New(Options{AccessLog: &logw}).Handler())
	defer hs.Close()

	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	item := wireAnalyzeRequest{TaskSet: tsBuf.Bytes(), Configs: paperConfigs[:1]}

	// Warm the cache, then a batch of one fresh + one cached item.
	if resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d\n%s", resp.StatusCode, data)
	}
	ts2 := fixtures.Fig1TaskSet()
	ts2.Platform.DMem = 9
	var ts2Buf bytes.Buffer
	if err := ts2.WriteJSON(&ts2Buf); err != nil {
		t.Fatal(err)
	}
	item2 := wireAnalyzeRequest{TaskSet: ts2Buf.Bytes(), Configs: paperConfigs[:1]}
	body, _ := json.Marshal(wireBatchRequest{Requests: []wireAnalyzeRequest{item, item2}})
	resp, err := http.Post(hs.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	lines := waitLines(t, &logw, 2)
	var batch accessLine
	if err := json.Unmarshal([]byte(lines[1]), &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Verdict != "mixed" {
		t.Errorf("heterogeneous batch verdict = %q, want mixed", batch.Verdict)
	}
	if batch.Cache != 1 || batch.Runs != 1 {
		t.Errorf("batch attribution: cache_hits=%d analyses=%d, want 1/1", batch.Cache, batch.Runs)
	}
}

// TestDeltaVerdict: a successful delta request logs as "delta".
func TestDeltaVerdict(t *testing.T) {
	var logw syncWriter
	hs := httptest.NewServer(New(Options{AccessLog: &logw}).Handler())
	defer hs.Close()

	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d\n%s", resp.StatusCode, data)
	}
	base := decodeEnvelope(t, data)
	dreq, _ := json.Marshal(wireDeltaRequest{
		BaseKey: base.Key,
		Edits:   []wireEdit{{Task: fixtures.Fig1TaskSet().Tasks[0].Name, Field: "pd", Value: json.RawMessage("7")}},
	})
	dresp, err := http.Post(hs.URL+"/v1/analyze/delta", "application/json", bytes.NewReader(dreq))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d", dresp.StatusCode)
	}

	lines := waitLines(t, &logw, 2)
	var dl accessLine
	if err := json.Unmarshal([]byte(lines[1]), &dl); err != nil {
		t.Fatal(err)
	}
	if dl.Verdict != "delta" {
		t.Errorf("delta verdict = %q, want delta", dl.Verdict)
	}
	if dl.Path != "/v1/analyze/delta" {
		t.Errorf("delta path = %q", dl.Path)
	}
}

// TestShedVerdictAndLog: a shed request logs verdict "shed" with
// status 429.
func TestShedVerdictAndLog(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	var logw syncWriter
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Workers: 1, QueueDepth: -1, Observer: obs, AccessLog: &logw}).Handler())
	defer hs.Close()

	// The pinned request holds the only worker; its outcome is not
	// asserted (and t must not be used off the test goroutine).
	pinned := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])
	go func() {
		resp, err := http.Post(hs.URL+"/v1/analyze", "application/json", bytes.NewReader(pinned))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerAnalyses) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinned request never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}

	ts := fixtures.Fig1TaskSet()
	ts.Platform.DMem = 5
	resp, _ := postAnalyze(t, hs.URL, requestBody(t, ts, paperConfigs[:1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	lines := waitLines(t, &logw, 1)
	var shed accessLine
	if err := json.Unmarshal([]byte(lines[0]), &shed); err != nil {
		t.Fatal(err)
	}
	if shed.Verdict != "shed" || shed.Status != http.StatusTooManyRequests {
		t.Errorf("shed line = %+v, want verdict shed status 429", shed)
	}
	close(release)
}
