package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent identical requests (singleflight
// semantics): the first caller for a key becomes the leader and runs
// the computation; every other caller arriving while it is in flight
// waits for the leader's outcome instead of repeating the work.
// Leaders run to completion on their own context, so a follower (or
// even the leader's client) disconnecting never poisons the shared
// result; followers stop *waiting* when their own context ends.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	raw  json.RawMessage
	err  error
	// waiters counts followers that joined this call; guarded by the
	// group mutex. Tests use it to sequence follower registration.
	waiters int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// followerTimeoutError marks a coalesce follower whose own context
// expired before the leader finished: the request got no shared
// result, so it must account as a timeout, not a coalesce. Unwrap
// exposes the context error so verdictOf/statusOf classify it like
// any other deadline.
type followerTimeoutError struct{ err error }

func (e *followerTimeoutError) Error() string {
	return fmt.Sprintf("server: timed out waiting for coalesced result: %v", e.err)
}

func (e *followerTimeoutError) Unwrap() error { return e.err }

// do runs fn for key, coalescing with an identical in-flight call.
// shared reports whether the result came from another caller's
// computation; a follower abandoning the wait (its context expired)
// reports shared=false — it received nothing — with a
// followerTimeoutError.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (json.RawMessage, error)) (raw json.RawMessage, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.raw, true, c.err
		case <-ctx.Done():
			return nil, false, &followerTimeoutError{ctx.Err()}
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// The unwind always removes the in-flight entry and closes done —
	// including when fn panics. Skipping it there would poison the key
	// (no future caller could ever become leader) and leave every
	// follower blocked forever. A panicking leader hands followers an
	// error and re-panics so its own stack still unwinds loudly.
	defer func() {
		r := recover()
		if r != nil {
			c.raw, c.err = nil, fmt.Errorf("server: coalesced computation panicked: %v", r)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		if r != nil {
			panic(r)
		}
	}()
	c.raw, c.err = fn()
	return c.raw, false, c.err
}
