package server

import (
	"context"
	"encoding/json"
	"sync"
)

// flightGroup deduplicates concurrent identical requests (singleflight
// semantics): the first caller for a key becomes the leader and runs
// the computation; every other caller arriving while it is in flight
// waits for the leader's outcome instead of repeating the work.
// Leaders run to completion on their own context, so a follower (or
// even the leader's client) disconnecting never poisons the shared
// result; followers stop *waiting* when their own context ends.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	raw  json.RawMessage
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do runs fn for key, coalescing with an identical in-flight call.
// shared reports whether the result came from another caller's
// computation.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (json.RawMessage, error)) (raw json.RawMessage, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.raw, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.raw, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.raw, false, c.err
}
