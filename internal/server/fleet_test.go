package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// The fleet tests run several real servers behind real listeners. The
// ring needs every member URL before server.New, but httptest only
// assigns a URL once the listener is up — so each node starts behind a
// swappable handler: listeners first (URLs known), rings second,
// servers last.
type swapHandler struct{ h atomic.Value }

func newSwapHandler() *swapHandler {
	s := &swapHandler{}
	s.h.Store(http.Handler(http.NotFoundHandler()))
	return s
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) { s.h.Store(h) }

type fleet struct {
	urls  []string
	srvs  []*Server
	obs   []*telemetry.Observer
	hs    []*httptest.Server
	swaps []*swapHandler
}

func newFleet(t *testing.T, n int, mod func(i int, o *Options)) *fleet {
	t.Helper()
	f := &fleet{}
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		swaps[i] = newSwapHandler()
		hs := httptest.NewServer(swaps[i])
		t.Cleanup(hs.Close)
		f.hs = append(f.hs, hs)
		f.urls = append(f.urls, hs.URL)
	}
	f.swaps = swaps
	for i := 0; i < n; i++ {
		ring, err := cluster.NewRing(f.urls[i], f.urls, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		obs := telemetry.New()
		o := Options{Observer: obs, Ring: ring}
		if mod != nil {
			mod(i, &o)
		}
		srv := New(o)
		f.obs = append(f.obs, obs)
		f.srvs = append(f.srvs, srv)
		swaps[i].set(srv.Handler())
	}
	return f
}

// sum folds one counter across every node — the fleet-wide view the
// accounting invariants are stated in.
func (f *fleet) sum(c telemetry.Counter) int64 {
	var total int64
	for _, o := range f.obs {
		total += o.Metrics.Get(c)
	}
	return total
}

// keyOfBody computes the canonical key the servers will compute for a
// marshaled /v1/analyze body.
func keyOfBody(t *testing.T, body []byte) string {
	t.Helper()
	var req wireAnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	ts, cfgs, err := req.decode()
	if err != nil {
		t.Fatal(err)
	}
	return core.CanonicalKey(ts, cfgs)
}

// ownerIndex maps a key's owner back to its position in f.urls. The
// ring indexes its *sorted* member list, which need not match creation
// order (httptest ports are random), so tests must translate through
// the owner URL.
func (f *fleet) ownerIndex(t *testing.T, key string) int {
	t.Helper()
	url := f.srvs[0].ring.OwnerURL(key)
	for i, u := range f.urls {
		if u == url {
			return i
		}
	}
	t.Fatalf("owner URL %s is not a fleet member", url)
	return -1
}

// bodyOwnedBy searches DMem variants of the Fig. 1 set for one whose
// canonical key the given node owns. httptest ports are fresh every
// run, so ownership cannot be hard-coded — it is resolved against the
// actual ring.
func (f *fleet) bodyOwnedBy(t *testing.T, owner int) []byte {
	t.Helper()
	for d := int64(1); d <= 4096; d++ {
		ts := fixtures.Fig1TaskSet()
		ts.Platform.DMem = d
		body := requestBody(t, ts, paperConfigs[:2])
		if f.ownerIndex(t, keyOfBody(t, body)) == owner {
			return body
		}
	}
	t.Fatalf("no Fig. 1 DMem variant hashed to node %d", owner)
	return nil
}

// TestFleetAnalyzesEachKeyOnce is the tentpole acceptance pin: the same
// request posted to every node of a 3-node fleet is analyzed exactly
// once fleet-wide, every response is byte-identical, and the summed
// server.requests equals the client request count (proxied requests are
// never double-counted at the edge).
func TestFleetAnalyzesEachKeyOnce(t *testing.T) {
	f := newFleet(t, 3, nil)
	body := f.bodyOwnedBy(t, 0)

	var results [][]byte
	for i, url := range f.urls {
		resp, data := postAnalyze(t, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d\n%s", i, resp.StatusCode, data)
		}
		results = append(results, []byte(decodeEnvelope(t, data).Results))
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Errorf("node %d served different bytes than node 0", i)
		}
	}
	if got := f.sum(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("fleet-wide server.analyses = %d, want exactly 1", got)
	}
	if got := f.sum(telemetry.CtrServerRequests); got != 3 {
		t.Errorf("fleet-wide server.requests = %d, want 3 (one per client request)", got)
	}
	if got := f.sum(telemetry.CtrServerPeerProxied); got != 2 {
		t.Errorf("fleet-wide server.peer_proxied = %d, want 2 (the two non-owner edges)", got)
	}
	if got := f.sum(telemetry.CtrServerPeerDegraded); got != 0 {
		t.Errorf("fleet-wide server.peer_degraded = %d, want 0 with all nodes up", got)
	}
	// Owner accounting: node 0 served one fresh analysis plus two
	// forwarded requests from its own cache.
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerCacheHits); got != 2 {
		t.Errorf("owner cache_hits = %d, want 2", got)
	}

	// Edge fill: node 1 kept the relayed bytes, so a repeat POST there is
	// a local cache hit — no second hop.
	resp, data := postAnalyze(t, f.urls[1], body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edge replay: status %d\n%s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if !env.Cached {
		t.Error("edge replay not served from the peer-filled cache")
	}
	if !bytes.Equal([]byte(env.Results), results[0]) {
		t.Error("edge replay served different bytes")
	}
	if got := f.obs[1].Metrics.Get(telemetry.CtrServerPeerProxied); got != 1 {
		t.Errorf("edge replay proxied again: peer_proxied = %d, want 1", got)
	}
	if got := f.obs[1].Metrics.Get(telemetry.CtrServerPeerHits); got != 1 {
		t.Errorf("edge peer_hits = %d, want 1", got)
	}
	if got := f.sum(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("fleet-wide server.analyses grew to %d after replay, want 1", got)
	}
}

// TestFleetHopGuardNeverReproxies: a request already carrying the
// forwarded header is handled locally whatever this node's ownership
// opinion — a misconfigured ring costs one hop, never a loop.
func TestFleetHopGuardNeverReproxies(t *testing.T) {
	f := newFleet(t, 3, nil)
	body := f.bodyOwnedBy(t, 1)

	// Post to a non-owner with the hop guard set, as if a confused peer
	// had already routed it here.
	req, err := http.NewRequest(http.MethodPost, f.urls[2]+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "http://elsewhere:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d\n%s", resp.StatusCode, data)
	}
	if got := f.obs[2].Metrics.Get(telemetry.CtrServerPeerProxied); got != 0 {
		t.Errorf("node 2 re-proxied a forwarded request: peer_proxied = %d", got)
	}
	if got := f.obs[2].Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("node 2 analyses = %d, want 1 (forwarded request computes locally)", got)
	}
	if got := f.obs[1].Metrics.Get(telemetry.CtrServerRequests); got != 0 {
		t.Errorf("the true owner saw %d requests, want 0", got)
	}
}

// TestFleetOwnerLossDegradesToLocalCompute: killing the owning node
// must cost latency and cache locality, never availability — the edge
// answers with local compute, zero 5xx, and the loss is visible on
// server.peer_degraded and as the "degraded" verdict.
func TestFleetOwnerLossDegradesToLocalCompute(t *testing.T) {
	var logw syncWriter
	f := newFleet(t, 3, func(i int, o *Options) {
		if i == 0 {
			o.AccessLog = &logw
		}
	})
	body := f.bodyOwnedBy(t, 2)
	f.hs[2].Close() // the owner dies

	resp, data := postAnalyze(t, f.urls[0], body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d, want 200\n%s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if len(env.Results) == 0 {
		t.Fatal("degraded request returned no results")
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerPeerErrors); got != 1 {
		t.Errorf("server.peer_errors = %d, want 1", got)
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerPeerDegraded); got != 1 {
		t.Errorf("server.peer_degraded = %d, want 1", got)
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("edge analyses = %d, want 1 (local compute)", got)
	}
	line := waitLines(t, &logw, 1)[0]
	var al accessLine
	if err := json.Unmarshal([]byte(line), &al); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, line)
	}
	if al.Verdict != "degraded" {
		t.Errorf("verdict = %q, want degraded", al.Verdict)
	}

	// The degraded result landed in the local cache: the replay is a
	// plain cache hit, with no second proxy attempt against the corpse.
	resp2, data2 := postAnalyze(t, f.urls[0], body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d\n%s", resp2.StatusCode, data2)
	}
	if !decodeEnvelope(t, data2).Cached {
		t.Error("replay after degradation missed the local cache")
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerPeerErrors); got != 1 {
		t.Errorf("replay retried the dead owner: peer_errors = %d, want 1", got)
	}
}

// TestFleetOldNodeRejectsNewArbiter pins the mixed-version upgrade
// path: an edge node that understands the regulated arbiter proxies the
// request to its owner, but the owner is an old build whose parser
// rejects "regulated" with a 400. The edge must treat the rejection
// like any other peer failure — degrade, compute locally, answer 200 —
// never relay the 4xx or turn it into a 5xx.
func TestFleetOldNodeRejectsNewArbiter(t *testing.T) {
	f := newFleet(t, 3, nil)
	regCfgs := []wireConfig{{Arbiter: "regulated", Persistence: true}}
	// Search DMem variants (with the regulation parameters the config
	// needs) for a body node 2 owns.
	var body []byte
	for d := int64(1); d <= 4096; d++ {
		ts := fixtures.Fig1TaskSet()
		ts.Platform.DMem = taskmodel.Time(d)
		ts.Platform.RegBudget = 4
		ts.Platform.RegPeriod = 100
		b := requestBody(t, ts, regCfgs)
		if f.ownerIndex(t, keyOfBody(t, b)) == 2 {
			body = b
			break
		}
	}
	if body == nil {
		t.Fatal("no regulated Fig. 1 variant hashed to node 2")
	}
	// Replace the owner with an old node: it parses nothing and answers
	// every analyze with the 400 its older vocabulary would produce.
	f.swaps[2].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(wireError{
			Error: `config 0: unknown arbiter "regulated" (want fp, rr, tdma or perfect)`,
		})
	}))

	resp, data := postAnalyze(t, f.urls[0], body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edge answered %d, want 200 (degrade to local compute)\n%s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if len(env.Results) == 0 {
		t.Fatal("degraded request returned no results")
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerPeerDegraded); got != 1 {
		t.Errorf("edge peer_degraded = %d, want 1", got)
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("edge analyses = %d, want 1 (local compute)", got)
	}

	// A genuinely malformed arbiter is still the client's fault: the
	// edge rejects it itself with a named-field 400, no proxying, no 5xx.
	bad := bytes.Replace(body, []byte(`"regulated"`), []byte(`"memguard"`), 1)
	bresp, bdata := postAnalyze(t, f.urls[0], bad)
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown arbiter: status %d, want 400\n%s", bresp.StatusCode, bdata)
	}
	var werr wireError
	if err := json.Unmarshal(bdata, &werr); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, bdata)
	}
	if !strings.Contains(werr.Error, "arbiter") || !strings.Contains(werr.Error, "memguard") {
		t.Errorf("error %q does not name the bad field and value", werr.Error)
	}
}

// TestFleetDeltaRoutesToBaseOwner: deltas route by the *base* key — the
// owner holds the base registry entry and the warm memo backbones — and
// a node that never saw the base proxies instead of 404ing.
func TestFleetDeltaRoutesToBaseOwner(t *testing.T) {
	f := newFleet(t, 3, nil)
	body := f.bodyOwnedBy(t, 1)

	// Analyze on the owner so only node 1 knows the base.
	resp, data := postAnalyze(t, f.urls[1], body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d\n%s", resp.StatusCode, data)
	}
	base := decodeEnvelope(t, data)

	dbody, err := json.Marshal(wireDeltaRequest{
		BaseKey: base.Key,
		Edits:   []wireEdit{{Task: fixtures.Fig1TaskSet().Tasks[0].Name, Field: "pd", Value: json.RawMessage("9")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.Post(f.urls[0]+"/v1/analyze/delta", "application/json", bytes.NewReader(dbody))
	if err != nil {
		t.Fatal(err)
	}
	ddata, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta via non-owner: status %d\n%s", dresp.StatusCode, ddata)
	}
	var denv wireDeltaResponse
	if err := json.Unmarshal(ddata, &denv); err != nil {
		t.Fatalf("decoding delta response: %v\n%s", err, ddata)
	}
	if denv.BaseKey != base.Key || denv.Key == base.Key {
		t.Errorf("delta envelope keys wrong: base %s -> %s", denv.BaseKey, denv.Key)
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerDeltaRequests); got != 0 {
		t.Errorf("edge counted delta_requests = %d, want 0 (the owner handled it)", got)
	}
	if got := f.obs[1].Metrics.Get(telemetry.CtrServerDeltaRequests); got != 1 {
		t.Errorf("owner delta_requests = %d, want 1", got)
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerPeerProxied); got != 1 {
		t.Errorf("edge peer_proxied = %d, want 1", got)
	}
	// Edge fill under the *edited* key: the relayed result is now local.
	if _, hit := f.srvs[0].cache.get(denv.Key); !hit {
		t.Error("edge did not keep the relayed delta result")
	}
}

// TestFleetBatchMixedOwnership: a batch whose items belong to three
// different owners fans out from the receiving node — each item is
// analyzed exactly once, on its owner, and the response carries every
// item's results.
func TestFleetBatchMixedOwnership(t *testing.T) {
	f := newFleet(t, 3, nil)
	var items []wireAnalyzeRequest
	var bodies [][]byte
	for owner := 0; owner < 3; owner++ {
		body := f.bodyOwnedBy(t, owner)
		bodies = append(bodies, body)
		var item wireAnalyzeRequest
		if err := json.Unmarshal(body, &item); err != nil {
			t.Fatal(err)
		}
		items = append(items, item)
	}
	body, err := json.Marshal(wireBatchRequest{Requests: items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.urls[0]+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d\n%s", resp.StatusCode, data)
	}
	var out wireBatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, data)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i, it := range out.Results {
		if it.Error != "" {
			t.Errorf("item %d failed: %s", i, it.Error)
		}
		if want := keyOfBody(t, bodies[i]); it.Key != want {
			t.Errorf("item %d key = %s, want %s", i, it.Key, want)
		}
	}
	if got := f.sum(telemetry.CtrServerAnalyses); got != 3 {
		t.Errorf("fleet-wide analyses = %d, want 3 (one per distinct item)", got)
	}
	for owner := 0; owner < 3; owner++ {
		if got := f.obs[owner].Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
			t.Errorf("node %d analyses = %d, want 1 (each item on its owner)", owner, got)
		}
	}
	if got := f.obs[0].Metrics.Get(telemetry.CtrServerPeerProxied); got != 2 {
		t.Errorf("receiving node peer_proxied = %d, want 2", got)
	}
	// Item bytes match what each owner serves directly.
	for i, b := range bodies {
		oresp, odata := postAnalyze(t, f.urls[i], b)
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("owner %d replay: status %d", i, oresp.StatusCode)
		}
		if !bytes.Equal([]byte(decodeEnvelope(t, odata).Results), []byte(out.Results[i].Results)) {
			t.Errorf("item %d bytes differ from the owner's own answer", i)
		}
	}
}

// TestEncodeAnalyzeBodyRoundTrip pins cluster.EncodeAnalyzeBody against
// the server's wire parser: engine inputs rendered to a request body
// and decoded back must land on the same canonical key, for every
// arbiter/CRPD/CPRO name in the vocabulary — otherwise a cluster-mode
// sweep would miss the caches its own fleet warmed.
func TestEncodeAnalyzeBodyRoundTrip(t *testing.T) {
	wide := []wireConfig{
		{Arbiter: "fp"},
		{Arbiter: "fp", Persistence: true, CRPD: "ecb-union", CPRO: "union"},
		{Arbiter: "rr", Persistence: true, CRPD: "ucb-only", CPRO: "multiset"},
		{Arbiter: "tdma", Persistence: true, CRPD: "ecb-only", CPRO: "full"},
		{Arbiter: "perfect", Persistence: true, CRPD: "ucb-union", CPRO: "none"},
		{Arbiter: "fp", Persistence: true, CRPD: "combined", MaxOuterIterations: 7},
		{Arbiter: "regulated", Persistence: true, CRPD: "ecb-union", CPRO: "union"},
		{Arbiter: "paraware", Persistence: true, CRPD: "ucb-only", CPRO: "multiset"},
	}
	ts := fixtures.Fig1TaskSet()
	ts.Platform.RegBudget = 4
	ts.Platform.RegPeriod = 100
	// Not coreConfigs: that helper decodes against the plain Fig. 1
	// platform, whose zero regulation parameters would reject the
	// regulated entry before the round trip under test even starts.
	cfgs, err := parseConfigs(wide)
	if err != nil {
		t.Fatal(err)
	}

	body, encErr := cluster.EncodeAnalyzeBody(ts, cfgs)
	if encErr != nil {
		t.Fatal(encErr)
	}
	var req wireAnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	ts2, cfgs2, err := req.decode()
	if err != nil {
		t.Fatalf("server rejected an encoded body: %v\n%s", err, body)
	}
	if len(cfgs2) != len(cfgs) {
		t.Fatalf("round trip changed config count: %d -> %d", len(cfgs), len(cfgs2))
	}
	if got, want := core.CanonicalKey(ts2, cfgs2), core.CanonicalKey(ts, cfgs); got != want {
		t.Errorf("canonical key drifted through the wire encoding:\nencoded: %s\ndirect:  %s", got, want)
	}
}
