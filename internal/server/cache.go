package server

import (
	"container/list"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// resultCache is a bounded LRU of marshaled analysis results keyed by
// the canonical request key. Entries carry an optional TTL with
// half-open semantics: an entry is live strictly before its expiry
// instant and expired at t >= expires. Expired entries are treated as
// absent — dropped by the lookup that finds one, and swept from the
// LRU tail on every put so an idle daemon does not pin dead bytes
// behind fresh traffic. Expiries count on server.cache_expiries;
// server.cache_evictions is reserved for capacity pressure, so the two
// signals (cache too small vs results aged out) stay distinguishable.
// Storing the serialized bytes (rather than the Result values) keeps
// cached responses byte-identical to the first computation.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	now   func() time.Time
	obs   *telemetry.Observer
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key     string
	raw     json.RawMessage
	expires time.Time // zero when the cache has no TTL
}

// newResultCache builds a cache holding up to max entries; max 0
// disables caching entirely. ttl 0 disables expiry.
func newResultCache(max int, ttl time.Duration, now func() time.Time, obs *telemetry.Observer) *resultCache {
	return &resultCache{
		max: max, ttl: ttl, now: now, obs: obs,
		ll: list.New(), byKey: make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (json.RawMessage, bool) {
	if c.max == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ele, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	ent := ele.Value.(*cacheEntry)
	if c.ttl > 0 && !c.now().Before(ent.expires) {
		c.removeLocked(ele)
		c.obs.Add(telemetry.CtrServerCacheExpiries, 1)
		return nil, false
	}
	c.ll.MoveToFront(ele)
	return ent.raw, true
}

func (c *resultCache) put(key string, raw json.RawMessage) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	var now time.Time
	if c.ttl > 0 {
		now = c.now()
		expires = now.Add(c.ttl)
	}
	if ele, ok := c.byKey[key]; ok {
		ent := ele.Value.(*cacheEntry)
		ent.raw, ent.expires = raw, expires
		c.ll.MoveToFront(ele)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, raw: raw, expires: expires})
	// Sweep expired entries from the cold end first — they are dead
	// regardless of capacity, and sweeping them here keeps an idle
	// daemon's memory bounded by its live results rather than its
	// historical peak. The sweep stops at the first live tail entry:
	// anything further in was touched more recently, and the uniform
	// TTL makes a stale-but-live tail a fine place to stop.
	if c.ttl > 0 {
		for c.ll.Len() > 0 {
			tail := c.ll.Back()
			if now.Before(tail.Value.(*cacheEntry).expires) {
				break
			}
			c.removeLocked(tail)
			c.obs.Add(telemetry.CtrServerCacheExpiries, 1)
		}
	}
	for c.ll.Len() > c.max {
		c.removeLocked(c.ll.Back())
		c.obs.Add(telemetry.CtrServerCacheEvictions, 1)
	}
}

func (c *resultCache) removeLocked(ele *list.Element) {
	c.ll.Remove(ele)
	delete(c.byKey, ele.Value.(*cacheEntry).key)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
