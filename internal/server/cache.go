package server

import (
	"container/list"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// resultCache is a bounded LRU of marshaled analysis results keyed by
// the canonical request key. Entries carry an optional TTL; an expired
// entry is treated as absent and evicted on the lookup that finds it.
// Storing the serialized bytes (rather than the Result values) keeps
// cached responses byte-identical to the first computation.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	now   func() time.Time
	obs   *telemetry.Observer
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key     string
	raw     json.RawMessage
	expires time.Time // zero when the cache has no TTL
}

// newResultCache builds a cache holding up to max entries; max 0
// disables caching entirely. ttl 0 disables expiry.
func newResultCache(max int, ttl time.Duration, now func() time.Time, obs *telemetry.Observer) *resultCache {
	return &resultCache{
		max: max, ttl: ttl, now: now, obs: obs,
		ll: list.New(), byKey: make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (json.RawMessage, bool) {
	if c.max == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ele, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	ent := ele.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().After(ent.expires) {
		c.removeLocked(ele)
		c.obs.Add(telemetry.CtrServerCacheEvictions, 1)
		return nil, false
	}
	c.ll.MoveToFront(ele)
	return ent.raw, true
}

func (c *resultCache) put(key string, raw json.RawMessage) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if ele, ok := c.byKey[key]; ok {
		ent := ele.Value.(*cacheEntry)
		ent.raw, ent.expires = raw, expires
		c.ll.MoveToFront(ele)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, raw: raw, expires: expires})
	for c.ll.Len() > c.max {
		c.removeLocked(c.ll.Back())
		c.obs.Add(telemetry.CtrServerCacheEvictions, 1)
	}
}

func (c *resultCache) removeLocked(ele *list.Element) {
	c.ll.Remove(ele)
	delete(c.byKey, ele.Value.(*cacheEntry).key)
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
