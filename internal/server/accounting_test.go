package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/telemetry"
)

// TestFollowerAbandonIsNotCoalesced pins the flightGroup contract for a
// follower whose own context expires while the leader is still in
// flight: it received nothing, so it must report shared=false with an
// error that classifies as a timeout — not count as a coalesce.
func TestFollowerAbandonIsNotCoalesced(t *testing.T) {
	g := newFlightGroup()
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = g.do(context.Background(), "k", func() (json.RawMessage, error) {
			close(entered)
			<-release
			return json.RawMessage(`"late"`), nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the follower's own deadline already passed
	raw, shared, err := g.do(ctx, "k", func() (json.RawMessage, error) {
		t.Error("expired follower ran its own computation")
		return nil, nil
	})
	if shared {
		t.Error("expired follower reported shared=true — it got no shared result")
	}
	if raw != nil {
		t.Errorf("expired follower received bytes: %s", raw)
	}
	var fte *followerTimeoutError
	if !errors.As(err, &fte) {
		t.Fatalf("error %v (%T) is not a followerTimeoutError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("followerTimeoutError does not unwrap to the context error: %v", err)
	}
	if verdictOf(err) != "timeout" {
		t.Errorf("verdictOf = %q, want timeout", verdictOf(err))
	}
	if statusOf(err) != http.StatusGatewayTimeout {
		t.Errorf("statusOf = %d, want 504", statusOf(err))
	}
	close(release)
	<-leaderDone
}

// TestFollowerTimeoutCountsAsTimeoutNotCoalesce drives the same
// contract end to end: with the flight leader pinned in the engine, an
// identical request whose client gives up must account as a timeout —
// server.coalesced stays zero and the access line says "timeout".
func TestFollowerTimeoutCountsAsTimeoutNotCoalesce(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	var logw syncWriter
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs, AccessLog: &logw}).Handler())
	defer hs.Close()

	body := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		resp, err := http.Post(hs.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerAnalyses) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}

	// The follower joins the in-flight call, then its client hangs up.
	// The transport may surface the abort before the 504 lands, so the
	// assertions ride on the counters and the access log, not the
	// response.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	deadline = time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerTimeouts) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned follower never counted as a timeout")
		}
		time.Sleep(time.Millisecond)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCoalesced); got != 0 {
		t.Errorf("server.coalesced = %d, want 0 — the follower received nothing", got)
	}
	line := waitLines(t, &logw, 1)[0]
	var follower accessLine
	if err := json.Unmarshal([]byte(line), &follower); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, line)
	}
	if follower.Verdict != "timeout" {
		t.Errorf("follower verdict = %q, want timeout", follower.Verdict)
	}
	close(release)
	<-leaderDone
}

// TestShedRequestLeavesBaseRegistryUntouched pins the satellite fix:
// a request becomes addressable as a delta base only once it resolves.
// Registering at admission time would let a flood of shed requests
// churn the registry and evict bases that were actually analyzed.
func TestShedRequestLeavesBaseRegistryUntouched(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	srv := New(Options{Workers: 1, QueueDepth: -1, Observer: obs})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	bodyA := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])
	tsB := fixtures.Fig1TaskSet()
	tsB.Platform.DMem = 7
	bodyB := requestBody(t, tsB, paperConfigs[:1])

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := postAnalyze(t, hs.URL, bodyA)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pinned request: status %d\n%s", resp.StatusCode, data)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerAnalyses) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request A never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}
	// A is mid-flight: not registered yet.
	if got := srv.bases.len(); got != 0 {
		t.Errorf("base registry holds %d entries while the only request is unresolved, want 0", got)
	}

	resp, data := postAnalyze(t, hs.URL, bodyB)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: status %d, want 429\n%s", resp.StatusCode, data)
	}
	if got := srv.bases.len(); got != 0 {
		t.Errorf("shed request registered a delta base: registry len %d, want 0", got)
	}

	close(release)
	<-done
	if got := srv.bases.len(); got != 1 {
		t.Errorf("resolved request not registered: registry len %d, want 1", got)
	}
	// The cached replay re-registers the same key — no duplicate entry.
	if resp, data := postAnalyze(t, hs.URL, bodyA); resp.StatusCode != http.StatusOK {
		t.Fatalf("cached replay: status %d\n%s", resp.StatusCode, data)
	}
	if got := srv.bases.len(); got != 1 {
		t.Errorf("cached replay duplicated the base: registry len %d, want 1", got)
	}
	_ = data
}

// TestCacheFillChargedToCacheStage pins the stage-accounting satellite:
// the post-marshal cache fill is cache time, not marshal time. The TTL
// clock (Options.Now) is the only seam inside resultCache.put, so a
// deliberately slow clock makes a mischarged fill show up as an
// implausibly fat marshal stage.
func TestCacheFillChargedToCacheStage(t *testing.T) {
	const stall = 30 * time.Millisecond
	var logw syncWriter
	hs := httptest.NewServer(New(Options{
		AccessLog: &logw,
		CacheTTL:  time.Hour,
		Now: func() time.Time {
			time.Sleep(stall)
			return time.Now()
		},
	}).Handler())
	defer hs.Close()

	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, data)
	}
	line := waitLines(t, &logw, 1)[0]
	var fresh accessLine
	if err := json.Unmarshal([]byte(line), &fresh); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, line)
	}
	// One clock read happens inside cache.put (the TTL stamp); its stall
	// must land in the cache stage, leaving marshal with only the actual
	// serialization and response write.
	margin := (stall - 5*time.Millisecond).Microseconds()
	if fresh.Stages["cache"] < margin {
		t.Errorf("stage.cache_us = %d, want >= %d (cache fill not charged to the cache stage)",
			fresh.Stages["cache"], margin)
	}
	if fresh.Stages["marshal"] >= margin {
		t.Errorf("stage.marshal_us = %d — the cache fill is being charged to the marshal stage",
			fresh.Stages["marshal"])
	}
}

// TestBatchFanOutBounded pins the batch-admission satellite: a large
// batch is worked by a fixed runner pool, not one goroutine per item —
// a 64-item batch must not add anywhere near 64 goroutines.
func TestBatchFanOutBounded(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Workers: 2, Observer: obs}).Handler())
	defer hs.Close()

	const items = 64
	reqs := make([]wireAnalyzeRequest, items)
	for i := range reqs {
		ts := fixtures.Fig1TaskSet()
		ts.Platform.DMem = int64(i + 1) // distinct canonical keys
		var tsBuf bytes.Buffer
		if err := ts.WriteJSON(&tsBuf); err != nil {
			t.Fatal(err)
		}
		reqs[i] = wireAnalyzeRequest{TaskSet: tsBuf.Bytes(), Configs: paperConfigs[:1]}
	}
	body, err := json.Marshal(wireBatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	type batchOut struct {
		status int
		data   []byte
	}
	done := make(chan batchOut, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- batchOut{}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- batchOut{resp.StatusCode, data}
	}()

	// Both runners are parked inside the engine once two analyses have
	// started; with per-item goroutines, all 64 items would be running
	// (or parked in admission) by now instead.
	deadline := time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerAnalyses) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("batch runners never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}
	if grew := runtime.NumGoroutine() - baseline; grew >= items/2 {
		t.Errorf("goroutines grew by %d for a %d-item batch — fan-out is unbounded", grew, items)
	}

	close(release)
	out := <-done
	if out.status != http.StatusOK {
		t.Fatalf("batch status = %d\n%s", out.status, out.data)
	}
	var br wireBatchResponse
	if err := json.Unmarshal(out.data, &br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if len(br.Results) != items {
		t.Fatalf("got %d results, want %d", len(br.Results), items)
	}
	for i, it := range br.Results {
		if it.Error != "" {
			t.Errorf("item %d failed: %s (status %d)", i, it.Error, it.Status)
		}
	}
}

// TestBatchSizeLimit: a batch beyond maxBatchItems is a 400, not an
// allocation storm.
func TestBatchSizeLimit(t *testing.T) {
	hs := httptest.NewServer(New(Options{}).Handler())
	defer hs.Close()

	body, err := json.Marshal(wireBatchRequest{Requests: make([]wireAnalyzeRequest, maxBatchItems+1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400\n%s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "limit") {
		t.Errorf("400 body does not explain the limit: %s", data)
	}
}
