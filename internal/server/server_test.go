package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// requestBody builds the wire body for one task set + configuration
// list, reusing the CLI JSON schema for the task set.
func requestBody(t *testing.T, ts *taskmodel.TaskSet, cfgs []wireConfig) []byte {
	t.Helper()
	var tsBuf bytes.Buffer
	if err := ts.WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wireAnalyzeRequest{TaskSet: tsBuf.Bytes(), Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postAnalyze(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeEnvelope(t *testing.T, data []byte) wireAnalyzeResponse {
	t.Helper()
	var env wireAnalyzeResponse
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding envelope: %v\n%s", err, data)
	}
	return env
}

var paperConfigs = []wireConfig{
	{Arbiter: "fp"},
	{Arbiter: "fp", Persistence: true},
	{Arbiter: "rr", Persistence: true},
	{Arbiter: "tdma", Persistence: true, CPRO: "multiset"},
}

func coreConfigs(t *testing.T, wire []wireConfig) []core.Config {
	t.Helper()
	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	req := wireAnalyzeRequest{TaskSet: tsBuf.Bytes(), Configs: wire}
	_, cfgs, err := req.decode()
	if err != nil {
		t.Fatal(err)
	}
	return cfgs
}

// TestResponseByteIdentity is the acceptance pin: the served results
// must be byte-identical to a direct core.AnalyzeBatch call — the
// server is a pure serving layer, whether the answer was computed,
// cached or coalesced.
func TestResponseByteIdentity(t *testing.T) {
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()

	direct, err := core.AnalyzeBatch(
		[]core.BatchRequest{{TS: fixtures.Fig1TaskSet(), Cfgs: coreConfigs(t, paperConfigs)}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct[0])
	if err != nil {
		t.Fatal(err)
	}

	body := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs)
	resp, data := postAnalyze(t, hs.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, data)
	}
	env := decodeEnvelope(t, data)
	if env.Cached {
		t.Error("first request reported cached")
	}
	if !bytes.Equal([]byte(env.Results), want) {
		t.Errorf("served results differ from direct AnalyzeBatch:\nserver: %s\ndirect: %s", env.Results, want)
	}

	// Re-POST: served from cache, still byte-identical.
	resp2, data2 := postAnalyze(t, hs.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp2.StatusCode, data2)
	}
	env2 := decodeEnvelope(t, data2)
	if !env2.Cached {
		t.Error("identical re-POST was not served from the cache")
	}
	if env2.Key != env.Key {
		t.Errorf("key changed between identical requests: %s vs %s", env.Key, env2.Key)
	}
	if !bytes.Equal([]byte(env2.Results), want) {
		t.Error("cached results differ from the first computation")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("server.analyses = %d, want 1 (second request must hit the cache)", got)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerCacheHits); got != 1 {
		t.Errorf("server.cache_hits = %d, want 1", got)
	}
}

// TestCoalescingHoldsAnalysesBelowRequests fires N identical requests
// at once; the fault hook stalls the single flight leader long enough
// that every other request must coalesce (or, at worst, hit the cache
// the leader filled). Engine invocations stay at exactly one.
func TestCoalescingHoldsAnalysesBelowRequests(t *testing.T) {
	core.SetBatchFaultHook(func(label string, attempt int) { time.Sleep(100 * time.Millisecond) })
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()

	const n = 10
	body := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs)
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postAnalyze(t, hs.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d\n%s", i, resp.StatusCode, data)
				return
			}
			results[i] = []byte(decodeEnvelope(t, data).Results)
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Errorf("request %d received different bytes", i)
		}
	}
	analyses := obs.Metrics.Get(telemetry.CtrServerAnalyses)
	coalesced := obs.Metrics.Get(telemetry.CtrServerCoalesced)
	hits := obs.Metrics.Get(telemetry.CtrServerCacheHits)
	if analyses != 1 {
		t.Errorf("server.analyses = %d, want exactly 1 for %d duplicate requests", analyses, n)
	}
	if coalesced+hits != n-1 {
		t.Errorf("coalesced (%d) + cache hits (%d) = %d, want %d", coalesced, hits, coalesced+hits, n-1)
	}
	if analyses >= n {
		t.Errorf("coalescing failed to hold analyses (%d) below requests (%d)", analyses, n)
	}
}

// TestLoadShedding: with one worker, no waiting room and the only
// worker pinned, a second distinct request is refused with 429 and a
// Retry-After hint rather than queued without bound.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Workers: 1, QueueDepth: -1, Observer: obs}).Handler())
	defer hs.Close()

	bodyA := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs)
	tsB := fixtures.Fig1TaskSet()
	tsB.Platform.DMem = 2 // distinct canonical key
	bodyB := requestBody(t, tsB, paperConfigs)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := postAnalyze(t, hs.URL, bodyA)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pinned request: status %d\n%s", resp.StatusCode, data)
		}
	}()

	// Wait until A holds the worker (its engine invocation blocks in
	// the hook), then B must shed immediately.
	deadline := time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerAnalyses) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request A never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}
	resp, data := postAnalyze(t, hs.URL, bodyB)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded request: status %d, want 429\n%s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerShed); got != 1 {
		t.Errorf("server.shed = %d, want 1", got)
	}

	close(release)
	<-done
	// After the pool frees up, the shed request succeeds.
	resp2, data2 := postAnalyze(t, hs.URL, bodyB)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("retry after shed: status %d\n%s", resp2.StatusCode, data2)
	}
}

// TestQueuedRequestTimesOut: a request that cannot reach a worker
// before the per-request deadline gets 504, while the request holding
// the worker still completes (a running analysis is never preempted).
func TestQueuedRequestTimesOut(t *testing.T) {
	release := make(chan struct{})
	core.SetBatchFaultHook(func(label string, attempt int) { <-release })
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{
		Workers: 1, QueueDepth: 1, RequestTimeout: 50 * time.Millisecond, Observer: obs,
	}).Handler())
	defer hs.Close()

	bodyA := requestBody(t, fixtures.Fig1TaskSet(), paperConfigs)
	tsB := fixtures.Fig1TaskSet()
	tsB.Platform.DMem = 3
	bodyB := requestBody(t, tsB, paperConfigs)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := postAnalyze(t, hs.URL, bodyA)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pinned request: status %d\n%s", resp.StatusCode, data)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for obs.Metrics.Get(telemetry.CtrServerAnalyses) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request A never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}

	resp, data := postAnalyze(t, hs.URL, bodyB)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status %d, want 504\n%s", resp.StatusCode, data)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerTimeouts); got == 0 {
		t.Error("server.timeouts not incremented")
	}
	close(release)
	<-done
}

// TestPanicIsolationRecovers: a panicking engine run is retried on the
// reference analyzer and still answers — byte-identical to the direct
// engine result (the two are differentially pinned elsewhere).
func TestPanicIsolationRecovers(t *testing.T) {
	core.SetBatchFaultHook(func(label string, attempt int) {
		if attempt == 0 {
			panic("injected engine fault")
		}
	})
	defer core.SetBatchFaultHook(nil)

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()

	direct, err := core.AnalyzeBatch(
		[]core.BatchRequest{{TS: fixtures.Fig1TaskSet(), Cfgs: coreConfigs(t, paperConfigs)}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct[0])

	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (reference retry should have answered)\n%s", resp.StatusCode, data)
	}
	if got := []byte(decodeEnvelope(t, data).Results); !bytes.Equal(got, want) {
		t.Errorf("reference-retry results differ from the engine:\nserver: %s\ndirect: %s", got, want)
	}
	if got := obs.Metrics.Get(telemetry.CtrJobPanics); got != 1 {
		t.Errorf("sweep.job_panics = %d, want 1", got)
	}
}

// TestPoisonedRequestCannotKillTheDaemon: when both the engine and the
// reference retry panic, the request fails with 500 — and the daemon
// keeps serving.
func TestPoisonedRequestCannotKillTheDaemon(t *testing.T) {
	core.SetBatchFaultHook(func(label string, attempt int) { panic("poisoned") })

	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()

	resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500\n%s", resp.StatusCode, data)
	}
	if got := obs.Metrics.Get(telemetry.CtrServerFailures); got != 1 {
		t.Errorf("server.failures = %d, want 1", got)
	}

	// The daemon survives: health is green and the same request
	// succeeds once the fault clears.
	core.SetBatchFaultHook(nil)
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after poisoned request: %v (status %d)", err, hr.StatusCode)
	}
	hr.Body.Close()
	resp2, data2 := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs))
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("request after poison cleared: status %d\n%s", resp2.StatusCode, data2)
	}
}

// TestBatchEndpoint: several task sets in one round trip, duplicates
// inside the batch resolved through the same cache/coalescing path.
func TestBatchEndpoint(t *testing.T) {
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()

	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	item := wireAnalyzeRequest{TaskSet: tsBuf.Bytes(), Configs: paperConfigs[:2]}
	bad := wireAnalyzeRequest{TaskSet: tsBuf.Bytes(), Configs: []wireConfig{{Arbiter: "warp-drive"}}}
	body, _ := json.Marshal(wireBatchRequest{Requests: []wireAnalyzeRequest{item, item, bad}})

	resp, err := http.Post(hs.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, data)
	}
	var out wireBatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, data)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Errorf("good items errored: %+v", out.Results[:2])
	}
	if !bytes.Equal([]byte(out.Results[0].Results), []byte(out.Results[1].Results)) {
		t.Error("duplicate batch items received different bytes")
	}
	if out.Results[0].Key != out.Results[1].Key {
		t.Error("duplicate batch items received different keys")
	}
	if out.Results[2].Error == "" || out.Results[2].Status != http.StatusBadRequest {
		t.Errorf("bad item not rejected: %+v", out.Results[2])
	}
	if got := obs.Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("server.analyses = %d, want 1 (duplicates must share one computation)", got)
	}
}

func TestRequestValidation(t *testing.T) {
	hs := httptest.NewServer(New(Options{}).Handler())
	defer hs.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	if resp, _ := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"configs":[{"arbiter":"fp"}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing taskset: status %d, want 400", resp.StatusCode)
	}

	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	noCfg, _ := json.Marshal(wireAnalyzeRequest{TaskSet: tsBuf.Bytes()})
	if resp, _ := post(string(noCfg)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing configs: status %d, want 400", resp.StatusCode)
	}

	// Invalid task set (deadline beyond period) is caught at decode.
	bad := fixtures.Fig1TaskSet()
	bad.Tasks[0].Deadline = bad.Tasks[0].Period + 1
	var badBuf bytes.Buffer
	if err := bad.WriteJSON(&badBuf); err != nil {
		t.Fatal(err)
	}
	badBody, _ := json.Marshal(wireAnalyzeRequest{TaskSet: badBuf.Bytes(), Configs: paperConfigs[:1]})
	if resp, data := post(string(badBody)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid task set: status %d, want 400\n%s", resp.StatusCode, data)
	}

	// Wrong method.
	resp, err := http.Get(hs.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthMetricsAndPprofEndpoints(t *testing.T) {
	obs := telemetry.New()
	srv := New(Options{Observer: obs})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	if resp, data := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "ok") {
		t.Errorf("healthz: status %d body %s", resp.StatusCode, data)
	}
	if resp, _ := get("/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}

	// One request, then the counters must show up on /metrics.
	if resp, data := postAnalyze(t, hs.URL, requestBody(t, fixtures.Fig1TaskSet(), paperConfigs[:1])); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d\n%s", resp.StatusCode, data)
	}
	resp, data := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, data)
	}
	if m.Counters["server.requests"] != 1 || m.Counters["server.analyses"] != 1 {
		t.Errorf("unexpected counters: %v", m.Counters)
	}

	// Drain flips health to 503.
	srv.StartDrain()
	if resp, data := get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), "draining") {
		t.Errorf("healthz while draining: status %d body %s", resp.StatusCode, data)
	}
}

// TestCanonicalizationMergesEquivalentWire: two wire requests that
// differ only in fields the engine ignores (CPRO without persistence)
// share one key and one computation.
func TestCanonicalizationMergesEquivalentWire(t *testing.T) {
	obs := telemetry.New()
	hs := httptest.NewServer(New(Options{Observer: obs}).Handler())
	defer hs.Close()

	a := requestBody(t, fixtures.Fig1TaskSet(), []wireConfig{{Arbiter: "rr", CPRO: "union"}})
	b := requestBody(t, fixtures.Fig1TaskSet(), []wireConfig{{Arbiter: "rr", CPRO: "full"}})
	respA, dataA := postAnalyze(t, hs.URL, a)
	respB, dataB := postAnalyze(t, hs.URL, b)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", respA.StatusCode, respB.StatusCode)
	}
	envA, envB := decodeEnvelope(t, dataA), decodeEnvelope(t, dataB)
	if envA.Key != envB.Key {
		t.Errorf("equivalent requests got distinct keys %s vs %s", envA.Key, envB.Key)
	}
	if !envB.Cached {
		t.Error("second equivalent request missed the cache")
	}
	if got := obs.Metrics.Get(telemetry.CtrServerAnalyses); got != 1 {
		t.Errorf("server.analyses = %d, want 1", got)
	}
}

func ExampleServer() {
	// A minimal round trip: serve the paper's Fig. 1 example and ask
	// for the persistence-aware FP analysis.
	hs := httptest.NewServer(New(Options{}).Handler())
	defer hs.Close()

	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		panic(err)
	}
	body, _ := json.Marshal(map[string]any{
		"taskset": json.RawMessage(tsBuf.Bytes()),
		"configs": []map[string]any{{"arbiter": "fp", "persistence": true}},
	})
	resp, err := http.Post(hs.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var env struct {
		Results []struct {
			Schedulable bool `json:"Schedulable"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		panic(err)
	}
	fmt.Println("schedulable:", env.Results[0].Schedulable)
	// Output: schedulable: true
}
