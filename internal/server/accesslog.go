package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Request-level observability: every non-pprof request gets an ID, a
// stage timer and a per-request info record, carried through the
// handlers via the request context. The instrument middleware opens
// them, the handlers annotate them (verdict, cache/memo attribution,
// stage charges), and on the way out the middleware flushes the stage
// durations into the shared histograms and emits one structured access
// log line. With no access-log writer configured the log line is
// skipped but the histograms still fill — /metrics works either way.

// reqInfo is the mutable per-request record. Batch items update it
// concurrently, so all mutators lock; every method is nil-safe because
// handlers can be exercised without the middleware (direct mux tests).
type reqInfo struct {
	id string
	st *telemetry.StageTimer

	mu        sync.Mutex
	verdict   string
	cacheHits int64 // result-cache hits (this request's items)
	memoHits  int64 // engine table+curve memo hits, leader-attributed
	analyses  int64 // engine invocations this request led
	coalesced int64 // items that joined another request's flight
}

type ctxKeyReqInfo struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, ctxKeyReqInfo{}, ri)
}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(ctxKeyReqInfo{}).(*reqInfo)
	return ri
}

// stageTimer returns the request's timer; nil (a no-op timer) when the
// middleware did not run.
func (ri *reqInfo) stageTimer() *telemetry.StageTimer {
	if ri == nil {
		return nil
	}
	return ri.st
}

// setVerdict records how an item of this request resolved. The first
// verdict wins the slot; a differing second one degrades to "mixed"
// (heterogeneous batch). force overwrites unconditionally — the delta
// endpoint stamps "delta" over the underlying fresh/cached resolution.
func (ri *reqInfo) setVerdict(v string)   { ri.applyVerdict(v, false) }
func (ri *reqInfo) forceVerdict(v string) { ri.applyVerdict(v, true) }

func (ri *reqInfo) applyVerdict(v string, force bool) {
	if ri == nil || v == "" {
		return
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	switch {
	case force, ri.verdict == "":
		ri.verdict = v
	case ri.verdict != v:
		ri.verdict = "mixed"
	}
}

func (ri *reqInfo) addCacheHit() {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.cacheHits++
	ri.mu.Unlock()
}

func (ri *reqInfo) addCoalesced() {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.coalesced++
	ri.mu.Unlock()
}

// addEngine folds one engine invocation's per-request child metrics
// into the record: the memo families (table columns + curve backbones)
// are the reuse signal the access log wants per request. A nil child
// (access logging off) counts only the invocation.
func (ri *reqInfo) addEngine(child *telemetry.Metrics) {
	if ri == nil {
		return
	}
	var hits int64
	if child != nil {
		hits = child.Get(telemetry.CtrMemoHits) + child.Get(telemetry.CtrCurveMemoHits)
	}
	ri.mu.Lock()
	ri.analyses++
	ri.memoHits += hits
	ri.mu.Unlock()
}

// requestIDRe accepts client-supplied X-Request-ID values that are safe
// to echo into headers and logs; anything else is replaced.
var requestIDRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// requestID returns the client's X-Request-ID when it is well-formed,
// otherwise a fresh 8-byte random hex ID.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); requestIDRe.MatchString(id) {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the status code and body size on their way to
// the client.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// accessEntry is one access-log line. The JSON field set is the schema
// documented in DESIGN.md §13; the text format renders the same fields
// as key=value pairs.
type accessEntry struct {
	Time    string           `json:"time"`
	ID      string           `json:"id"`
	Method  string           `json:"method"`
	Path    string           `json:"path"`
	Status  int              `json:"status"`
	Verdict string           `json:"verdict"`
	Bytes   int64            `json:"bytes"`
	DurUS   int64            `json:"dur_us"`
	Stages  map[string]int64 `json:"stages,omitempty"`
	Cache   int64            `json:"cache_hits,omitempty"`
	Memo    int64            `json:"memo_hits,omitempty"`
	Runs    int64            `json:"analyses,omitempty"`
	Shared  int64            `json:"coalesced,omitempty"`
}

// accessLogger serializes access-log lines onto one writer.
type accessLogger struct {
	mu     sync.Mutex
	w      io.Writer
	format string // "json" or "text"
}

func newAccessLogger(w io.Writer, format string) *accessLogger {
	if w == nil {
		return nil
	}
	if format != "text" {
		format = "json"
	}
	return &accessLogger{w: w, format: format}
}

func (l *accessLogger) log(e accessEntry) {
	if l == nil {
		return
	}
	var line []byte
	if l.format == "json" {
		line, _ = json.Marshal(e)
	} else {
		var b strings.Builder
		fmt.Fprintf(&b, "%s id=%s method=%s path=%s status=%d verdict=%s bytes=%d dur_us=%d",
			e.Time, e.ID, e.Method, e.Path, e.Status, e.Verdict, e.Bytes, e.DurUS)
		stages := make([]string, 0, len(e.Stages))
		for s := range e.Stages {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			fmt.Fprintf(&b, " stage.%s_us=%d", s, e.Stages[s])
		}
		if e.Cache > 0 {
			fmt.Fprintf(&b, " cache_hits=%d", e.Cache)
		}
		if e.Memo > 0 {
			fmt.Fprintf(&b, " memo_hits=%d", e.Memo)
		}
		if e.Runs > 0 {
			fmt.Fprintf(&b, " analyses=%d", e.Runs)
		}
		if e.Shared > 0 {
			fmt.Fprintf(&b, " coalesced=%d", e.Shared)
		}
		line = []byte(b.String())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s\n", line)
}

// instrument wraps the mux with the request-level observability layer:
// request ID, in-flight gauge, stage timer, optional request span, and
// the access log line. pprof traffic passes through untouched.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/pprof") {
			next.ServeHTTP(w, r)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		ri := &reqInfo{id: requestID(r), st: s.obs.StartStages()}
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-ID", ri.id)
		sp := s.obs.Span("request "+r.URL.Path, "server")
		start := time.Now()

		next.ServeHTTP(sw, r.WithContext(withReqInfo(r.Context(), ri)))

		durs := ri.st.Finish()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		ri.mu.Lock()
		verdict := ri.verdict
		cacheHits, memoHits := ri.cacheHits, ri.memoHits
		analyses, coalesced := ri.analyses, ri.coalesced
		ri.mu.Unlock()
		if verdict == "" {
			verdict = "-" // non-analysis endpoint (healthz, metrics)
		}
		sp.EndArgs(map[string]any{"id": ri.id, "status": sw.status, "verdict": verdict})
		if s.access == nil {
			return
		}
		stages := make(map[string]int64, len(durs))
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			if d := durs[st]; d > 0 {
				stages[st.String()] = d.Microseconds()
			}
		}
		s.access.log(accessEntry{
			Time:    start.UTC().Format(time.RFC3339Nano),
			ID:      ri.id,
			Method:  r.Method,
			Path:    r.URL.Path,
			Status:  sw.status,
			Verdict: verdict,
			Bytes:   sw.bytes,
			DurUS:   time.Since(start).Microseconds(),
			Stages:  stages,
			Cache:   cacheHits,
			Memo:    memoHits,
			Runs:    analyses,
			Shared:  coalesced,
		})
	})
}
