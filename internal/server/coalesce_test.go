package server

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// TestFlightLeaderPanicReleasesFollowers pins the singleflight failure
// contract: a leader whose computation panics must hand every waiting
// follower an error instead of leaving them blocked on a never-closed
// channel, must re-panic so its own failure stays loud, and must leave
// the key vacant so the next caller can lead a fresh computation.
func TestFlightLeaderPanicReleasesFollowers(t *testing.T) {
	g := newFlightGroup()
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate out of do")
			}
		}()
		_, _, _ = g.do(context.Background(), "k", func() (json.RawMessage, error) {
			close(entered)
			<-release
			panic("injected")
		})
	}()
	<-entered // the entry is registered and the leader parked in fn

	type res struct {
		shared bool
		err    error
	}
	followerDone := make(chan res, 1)
	go func() {
		_, shared, err := g.do(context.Background(), "k", func() (json.RawMessage, error) {
			t.Error("follower ran its own computation while the leader was in flight")
			return nil, nil
		})
		followerDone <- res{shared, err}
	}()
	// Release the leader only once the follower is provably parked on
	// the in-flight call: the waiter count increments, under the group
	// mutex, before the follower blocks on done.
	for {
		g.mu.Lock()
		c, ok := g.m["k"]
		waiters := 0
		if ok {
			waiters = c.waiters
		}
		g.mu.Unlock()
		if !ok {
			t.Fatal("in-flight entry vanished while the leader was parked")
		}
		if waiters == 1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	<-leaderDone

	got := <-followerDone
	if got.err == nil {
		t.Fatal("follower received a nil error from a panicked leader")
	}
	if !strings.Contains(got.err.Error(), "panicked") {
		t.Errorf("follower error %q does not identify the panic", got.err)
	}
	if !got.shared {
		t.Error("follower result not marked shared")
	}

	// The key must not be poisoned: the next caller becomes a fresh
	// leader and its result flows normally.
	raw, shared, err := g.do(context.Background(), "k", func() (json.RawMessage, error) {
		return json.RawMessage(`"fresh"`), nil
	})
	if err != nil || shared || string(raw) != `"fresh"` {
		t.Errorf("post-panic call: raw=%s shared=%v err=%v; want a fresh uncoalesced success", raw, shared, err)
	}
	g.mu.Lock()
	if len(g.m) != 0 {
		t.Errorf("flight map holds %d entries after completion, want 0", len(g.m))
	}
	g.mu.Unlock()
}
