// Package fixtures provides the worked example of the paper's Fig. 1
// as a ready-made task set. It is shared by unit tests across the
// analysis packages and by examples/paperexample, so the golden numbers
// of Section IV are checked against a single definition.
package fixtures

import (
	"repro/internal/cacheset"
	"repro/internal/taskmodel"
)

// Fig1NumSets is the cache geometry used to express the example's
// block sets (the paper draws 16 cache sets in Fig. 1).
const Fig1NumSets = 16

// Fig1Platform returns the two-core platform of the example: τ1, τ2 on
// core π_x (0), τ3 on core π_y (1). The RR bus of the example uses a
// slot size of 1.
func Fig1Platform() taskmodel.Platform {
	return taskmodel.Platform{
		NumCores: 2,
		Cache:    taskmodel.CacheConfig{NumSets: Fig1NumSets, BlockSizeBytes: 32},
		DMem:     1,
		SlotSize: 1,
	}
}

// Fig1TaskSet builds the three tasks with the parameters printed in
// the caption of Fig. 1:
//
//	PD1=PD3=4, PD2=32, MD1=MD3=6, MD2=8, MD1r=MD3r=1,
//	ECB1=ECB3={5..10}, ECB2={1..6}, PCB1=PCB3={5,6,7,8,10}, UCB2={5,6}.
//
// Periods are chosen to match the schedule: the example releases three
// jobs of τ1 during R2 (E1(R2)=3) and four jobs of τ3 fit the window
// used in Eq. (13).
func Fig1TaskSet() *taskmodel.TaskSet {
	n := Fig1NumSets
	t1 := &taskmodel.Task{
		Name: "tau1", Core: 0, Priority: 0,
		PD: 4, MD: 6, MDr: 1, Period: 40, Deadline: 40,
		ECB: cacheset.Of(n, 5, 6, 7, 8, 9, 10),
		PCB: cacheset.Of(n, 5, 6, 7, 8, 10),
		UCB: cacheset.Of(n, 5, 6, 7, 8, 10),
	}
	t2 := &taskmodel.Task{
		Name: "tau2", Core: 0, Priority: 1,
		PD: 32, MD: 8, MDr: 8, Period: 120, Deadline: 120,
		ECB: cacheset.Of(n, 1, 2, 3, 4, 5, 6),
		PCB: cacheset.New(n),
		UCB: cacheset.Of(n, 5, 6),
	}
	t3 := &taskmodel.Task{
		Name: "tau3", Core: 1, Priority: 2,
		PD: 4, MD: 6, MDr: 1, Period: 30, Deadline: 30,
		ECB: cacheset.Of(n, 5, 6, 7, 8, 9, 10),
		PCB: cacheset.Of(n, 5, 6, 7, 8, 10),
		UCB: cacheset.Of(n, 5, 6, 7, 8, 10),
	}
	return taskmodel.NewTaskSet(Fig1Platform(), []*taskmodel.Task{t1, t2, t3})
}
