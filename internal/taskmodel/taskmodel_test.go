package taskmodel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cacheset"
)

func defaultPlatform() Platform {
	return Platform{
		NumCores: 2,
		Cache:    CacheConfig{NumSets: 16, BlockSizeBytes: 32},
		DMem:     5,
		SlotSize: 2,
	}
}

// fig1TaskSet builds the three-task system of the paper's Fig. 1:
// τ1, τ2 on core π_x (core 0), τ3 on core π_y (core 1).
func fig1TaskSet() *TaskSet {
	n := 16
	t1 := &Task{
		Name: "tau1", Core: 0, Priority: 0,
		PD: 4, MD: 6, MDr: 1, Period: 12, Deadline: 12,
		ECB: cacheset.Of(n, 5, 6, 7, 8, 9, 10),
		PCB: cacheset.Of(n, 5, 6, 7, 8, 10),
		UCB: cacheset.Of(n, 5, 6, 7, 8, 10),
	}
	t2 := &Task{
		Name: "tau2", Core: 0, Priority: 1,
		PD: 32, MD: 8, MDr: 8, Period: 100, Deadline: 100,
		ECB: cacheset.Of(n, 1, 2, 3, 4, 5, 6),
		PCB: cacheset.New(n),
		UCB: cacheset.Of(n, 5, 6),
	}
	t3 := &Task{
		Name: "tau3", Core: 1, Priority: 2,
		PD: 4, MD: 6, MDr: 1, Period: 20, Deadline: 20,
		ECB: cacheset.Of(n, 5, 6, 7, 8, 9, 10),
		PCB: cacheset.Of(n, 5, 6, 7, 8, 10),
		UCB: cacheset.Of(n, 5, 6, 7, 8, 10),
	}
	return NewTaskSet(defaultPlatform(), []*Task{t3, t1, t2}) // deliberately unsorted
}

func TestNewTaskSetSortsByPriority(t *testing.T) {
	ts := fig1TaskSet()
	for i, want := range []string{"tau1", "tau2", "tau3"} {
		if ts.Tasks[i].Name != want {
			t.Fatalf("Tasks[%d] = %q, want %q", i, ts.Tasks[i].Name, want)
		}
	}
}

func TestValidateAcceptsFig1(t *testing.T) {
	if err := fig1TaskSet().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(ts *TaskSet)
		want   string
	}{
		{"duplicate priority", func(ts *TaskSet) { ts.Tasks[1].Priority = 0 }, "priority"},
		{"core out of range", func(ts *TaskSet) { ts.Tasks[0].Core = 7 }, "core"},
		{"mdr exceeds md", func(ts *TaskSet) { ts.Tasks[0].MDr = ts.Tasks[0].MD + 1 }, "MDr"},
		{"deadline beyond period", func(ts *TaskSet) { ts.Tasks[0].Deadline = ts.Tasks[0].Period + 1 }, "deadline"},
		{"nonpositive period", func(ts *TaskSet) { ts.Tasks[0].Period = 0 }, "period"},
		{"negative demand", func(ts *TaskSet) { ts.Tasks[0].PD = -1 }, "negative"},
		{"pcb not subset of ecb", func(ts *TaskSet) { ts.Tasks[0].PCB = cacheset.Of(16, 0) }, "PCB"},
		{"ucb not subset of ecb", func(ts *TaskSet) { ts.Tasks[0].UCB = cacheset.Of(16, 0) }, "UCB"},
		{"capacity mismatch", func(ts *TaskSet) { ts.Tasks[0].ECB = cacheset.New(8) }, "capacity"},
		{"bad dmem", func(ts *TaskSet) { ts.Platform.DMem = 0 }, "DMem"},
		{"bad cores", func(ts *TaskSet) { ts.Platform.NumCores = 0 }, "NumCores"},
		{"bad slot", func(ts *TaskSet) { ts.Platform.SlotSize = 0 }, "SlotSize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := fig1TaskSet()
			tc.mutate(ts)
			err := ts.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestPrioritySets(t *testing.T) {
	ts := fig1TaskSet()
	names := func(tasks []*Task) []string {
		var out []string
		for _, t := range tasks {
			out = append(out, t.Name)
		}
		return out
	}
	eq := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	if got := names(ts.HP(1, 0)); !eq(got, []string{"tau1"}) {
		t.Errorf("HP(1, core0) = %v, want [tau1]", got)
	}
	if got := names(ts.HP(0, 0)); len(got) != 0 {
		t.Errorf("HP(0, core0) = %v, want []", got)
	}
	if got := names(ts.LP(1, -1)); !eq(got, []string{"tau3"}) {
		t.Errorf("LP(1, all) = %v, want [tau3]", got)
	}
	if got := names(ts.HEP(1, 0)); !eq(got, []string{"tau1", "tau2"}) {
		t.Errorf("HEP(1, core0) = %v, want [tau1 tau2]", got)
	}
	if got := names(ts.HEP(2, 1)); !eq(got, []string{"tau3"}) {
		t.Errorf("HEP(2, core1) = %v, want [tau3]", got)
	}
	// aff(i=2, j=0) on core 0: hep(2) ∩ lp(0) = {tau2} on that core.
	if got := names(ts.Aff(2, 0, 0)); !eq(got, []string{"tau2"}) {
		t.Errorf("Aff(2,0,core0) = %v, want [tau2]", got)
	}
	// aff(1, 0) on core 0 must include τ2 itself (hep(i) contains i).
	if got := names(ts.Aff(1, 0, 0)); !eq(got, []string{"tau2"}) {
		t.Errorf("Aff(1,0,core0) = %v, want [tau2]", got)
	}
}

func TestLookups(t *testing.T) {
	ts := fig1TaskSet()
	if got := ts.ByPriority(2); got == nil || got.Name != "tau3" {
		t.Errorf("ByPriority(2) = %v, want tau3", got)
	}
	if got := ts.ByPriority(99); got != nil {
		t.Errorf("ByPriority(99) = %v, want nil", got)
	}
	if got := ts.ByName("tau2"); got == nil || got.Priority != 1 {
		t.Errorf("ByName(tau2) = %v, want priority 1", got)
	}
	if got := ts.ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
	if got := ts.LowestPriority(); got != 2 {
		t.Errorf("LowestPriority() = %d, want 2", got)
	}
	if got := len(ts.OnCore(0)); got != 2 {
		t.Errorf("len(OnCore(0)) = %d, want 2", got)
	}
	if got := len(ts.OnCore(1)); got != 1 {
		t.Errorf("len(OnCore(1)) = %d, want 1", got)
	}
}

func TestUtilizations(t *testing.T) {
	ts := fig1TaskSet()
	// tau1: (4 + 6*5)/12, tau2: (32 + 8*5)/100.
	want := (4.0+30.0)/12.0 + (32.0+40.0)/100.0
	if got := ts.CoreUtilization(0); !close(got, want) {
		t.Errorf("CoreUtilization(0) = %g, want %g", got, want)
	}
	wantTotal := want + (4.0+30.0)/20.0
	if got := ts.TotalUtilization(); !close(got, wantTotal) {
		t.Errorf("TotalUtilization() = %g, want %g", got, wantTotal)
	}
	wantBus := 30.0/12.0 + 40.0/100.0 + 30.0/20.0
	if got := ts.BusUtilization(); !close(got, wantBus) {
		t.Errorf("BusUtilization() = %g, want %g", got, wantBus)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestSetOf(t *testing.T) {
	c := CacheConfig{NumSets: 256, BlockSizeBytes: 32}
	if got := c.SetOf(0); got != 0 {
		t.Errorf("SetOf(0) = %d, want 0", got)
	}
	if got := c.SetOf(256); got != 0 {
		t.Errorf("SetOf(256) = %d, want 0", got)
	}
	if got := c.SetOf(300); got != 44 {
		t.Errorf("SetOf(300) = %d, want 44", got)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	ts := fig1TaskSet()
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got.Tasks) != len(ts.Tasks) {
		t.Fatalf("roundtrip task count %d, want %d", len(got.Tasks), len(ts.Tasks))
	}
	for i, w := range ts.Tasks {
		g := got.Tasks[i]
		if g.Name != w.Name || g.Core != w.Core || g.Priority != w.Priority ||
			g.PD != w.PD || g.MD != w.MD || g.MDr != w.MDr ||
			g.Period != w.Period || g.Deadline != w.Deadline {
			t.Errorf("task %d scalar mismatch: got %+v want %+v", i, g, w)
		}
		if !g.ECB.Equal(w.ECB) || !g.UCB.Equal(w.UCB) || !g.PCB.Equal(w.PCB) {
			t.Errorf("task %d set mismatch", i)
		}
	}
	if got.Platform != ts.Platform {
		t.Errorf("platform mismatch: got %+v want %+v", got.Platform, ts.Platform)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("ReadJSON(garbage) = nil error")
	}
	// Structurally valid JSON but semantically invalid task set.
	bad := `{"platform":{"NumCores":1,"Cache":{"NumSets":4,"BlockSizeBytes":32},"DMem":5,"SlotSize":1},
	"tasks":[{"name":"x","core":0,"priority":0,"pd":1,"md":2,"mdr":3,"period":10,"deadline":10,"ucb":[],"ecb":[],"pcb":[]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("ReadJSON(MDr>MD) = nil error, want validation failure")
	}
}
