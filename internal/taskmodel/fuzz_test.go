package taskmodel

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the task-set decoder never panics and that any
// set it accepts validates and survives a re-encoding round trip.
func FuzzReadJSON(f *testing.F) {
	valid := `{"platform":{"NumCores":1,"Cache":{"NumSets":4,"BlockSizeBytes":32},"DMem":5,"SlotSize":1},
	 "tasks":[{"name":"x","core":0,"priority":0,"pd":1,"md":2,"mdr":1,"period":10,"deadline":10,
	  "ucb":[],"ecb":[1,2],"pcb":[1]}]}`
	f.Add(valid)
	f.Add(`{}`)
	f.Add(`{"platform":{"NumCores":-1}}`)
	f.Add(`{"platform":{"NumCores":1,"Cache":{"NumSets":4,"BlockSizeBytes":32},"DMem":5,"SlotSize":1},
	 "tasks":[{"name":"x","core":9,"priority":0,"pd":1,"md":2,"mdr":1,"period":10,"deadline":10,
	  "ucb":[],"ecb":[],"pcb":[]}]}`)
	f.Add(`{"platform":{"NumCores":1,"Cache":{"NumSets":4,"BlockSizeBytes":32},"DMem":5,"SlotSize":1},
	 "tasks":[{"name":"x","core":0,"priority":0,"pd":1,"md":2,"mdr":1,"period":10,"deadline":10,
	  "ucb":[],"ecb":[99],"pcb":[]}]}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked: %v", r)
			}
		}()
		ts, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted set fails re-encoding: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("re-encoded set rejected: %v", err)
		}
	})
}
