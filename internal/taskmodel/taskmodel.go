// Package taskmodel defines the system model of the paper: a multicore
// platform of identical timing-compositional cores with private
// direct-mapped instruction caches connected to main memory by a shared
// bus, and a set of sporadic constrained-deadline tasks scheduled by
// partitioned task-level fixed-priority preemptive scheduling.
//
// Each task τ_i is the quadruple (PD_i, MD_i, D_i, T_i) of the paper,
// extended with the cache footprint sets UCB_i, ECB_i and PCB_i and the
// residual memory demand MD_i^r used by the persistence-aware analysis.
package taskmodel

import (
	"fmt"
	"sort"

	"repro/internal/cacheset"
)

// Time is the abstract time unit of the model ("cycles"). PD, T, D, R
// and d_mem are all expressed in this unit, while MD and MD^r are counts
// of bus accesses.
type Time = int64

// CacheConfig describes one core-private instruction cache. The paper
// analyses direct-mapped caches (Associativity 1); the LRU
// set-associative generalisation is provided as an extension for the
// cache simulator and the static analysis (see DESIGN.md §5).
type CacheConfig struct {
	// NumSets is the number of cache sets. The paper's default
	// platform uses 256 sets.
	NumSets int
	// BlockSizeBytes is the cache block (line) size; 32 bytes in the
	// paper. It only matters when deriving cache sets from instruction
	// addresses.
	BlockSizeBytes int
	// Associativity is the number of ways per set under LRU
	// replacement. Zero means 1 (direct-mapped, the paper's model).
	Associativity int
}

// Ways returns the effective associativity (at least 1).
func (c CacheConfig) Ways() int {
	if c.Associativity < 1 {
		return 1
	}
	return c.Associativity
}

// SetOf maps a memory-block index (address / BlockSizeBytes) to its
// cache set under direct mapping.
func (c CacheConfig) SetOf(block int) int {
	if c.NumSets <= 0 {
		panic("taskmodel: CacheConfig.NumSets must be positive")
	}
	return block % c.NumSets
}

// Platform is the multicore platform under analysis.
type Platform struct {
	// NumCores is m, the number of identical cores π_1..π_m.
	NumCores int
	// Cache is the geometry of every core's private L1 instruction
	// cache.
	Cache CacheConfig
	// DMem is d_mem, the worst-case duration of one access to main
	// memory over the shared bus.
	DMem Time
	// SlotSize is s, the number of memory access slots per core for the
	// RR and TDMA arbiters (default 2 in the paper). Ignored by the FP
	// bus.
	SlotSize int
	// RegBudget is Q, the per-core budget of bus accesses replenished
	// every RegPeriod cycles under the bandwidth-regulated (MemGuard
	// style) arbiter. Ignored by every other arbiter; must be >= 1 when
	// a Regulated analysis or simulation actually runs.
	RegBudget int64
	// RegPeriod is P, the replenishment period of the regulated bus in
	// cycles. Ignored by every other arbiter; must be >= 1 when a
	// Regulated analysis or simulation actually runs.
	RegPeriod Time
	// L2 optionally adds a private second-level cache per core
	// (NumSets 0 disables it — the paper's single-level model). Only
	// the simulator and the hierarchy analysis consume it; the bus
	// contention equations see its misses as MD.
	L2 CacheConfig
	// DL2 is the L1-miss/L2-hit latency in cycles (local to the core,
	// no bus involvement). Required >= 1 when L2 is present.
	DL2 Time
}

// HasL2 reports whether the platform models a second cache level.
func (p Platform) HasL2() bool { return p.L2.NumSets > 0 }

// Validate reports the first structural problem with the platform.
func (p Platform) Validate() error {
	if p.NumCores < 1 {
		return fmt.Errorf("platform: NumCores = %d, need >= 1", p.NumCores)
	}
	if p.Cache.NumSets < 1 {
		return fmt.Errorf("platform: cache NumSets = %d, need >= 1", p.Cache.NumSets)
	}
	if p.Cache.BlockSizeBytes < 1 {
		return fmt.Errorf("platform: cache BlockSizeBytes = %d, need >= 1", p.Cache.BlockSizeBytes)
	}
	if p.DMem < 1 {
		return fmt.Errorf("platform: DMem = %d, need >= 1", p.DMem)
	}
	if p.SlotSize < 1 {
		return fmt.Errorf("platform: SlotSize = %d, need >= 1", p.SlotSize)
	}
	// The regulation parameters are optional (only the Regulated
	// arbiter reads them, and it checks presence at construction), but
	// negative values are always malformed.
	if p.RegBudget < 0 {
		return fmt.Errorf("platform: RegBudget = %d, need >= 0", p.RegBudget)
	}
	if p.RegPeriod < 0 {
		return fmt.Errorf("platform: RegPeriod = %d, need >= 0", p.RegPeriod)
	}
	if p.HasL2() {
		if p.L2.BlockSizeBytes != p.Cache.BlockSizeBytes {
			return fmt.Errorf("platform: L2 block %dB != L1 block %dB", p.L2.BlockSizeBytes, p.Cache.BlockSizeBytes)
		}
		if p.DL2 < 1 {
			return fmt.Errorf("platform: DL2 = %d, need >= 1 with an L2", p.DL2)
		}
	}
	return nil
}

// Task is one sporadic constrained-deadline task.
type Task struct {
	// Name is a human-readable label (e.g. the benchmark the parameters
	// were extracted from).
	Name string
	// Core is the index of the core the task is statically assigned to
	// (partitioned scheduling), in [0, NumCores).
	Core int
	// Priority is the unique global priority; smaller means higher
	// priority, so the task with Priority 0 is τ_1 of the paper.
	Priority int

	// PD is the worst-case execution demand of one job assuming every
	// memory access hits in the cache.
	PD Time
	// MD is the worst-case number of main-memory requests of one job
	// executing in isolation from a cold cache.
	MD int64
	// MDr is MD^r: the worst-case number of main-memory requests of a
	// job assuming all PCBs are already cached.
	MDr int64
	// Period is T_i, the minimum inter-arrival time.
	Period Time
	// Deadline is D_i, the relative deadline (constrained: D <= T).
	Deadline Time

	// UCB is the set of cache sets holding useful cache blocks of the
	// task (blocks that may be reused at a later program point).
	UCB cacheset.Set
	// ECB is the set of cache sets touched by the task at all.
	ECB cacheset.Set
	// PCB is the set of cache sets holding persistent cache blocks:
	// blocks that, once loaded, the task never evicts itself.
	PCB cacheset.Set
}

// Utilization returns the fraction of one core the task consumes,
// counting both execution and memory time at access cost dmem:
// (PD + MD*dmem) / T.
func (t *Task) Utilization(dmem Time) float64 {
	return float64(t.PD+Time(t.MD)*dmem) / float64(t.Period)
}

// TaskSet couples a platform with the tasks partitioned onto it. Tasks
// holds every task in the system, ordered by ascending Priority value
// (highest priority first); OnCore gives per-core views.
type TaskSet struct {
	Platform Platform
	Tasks    []*Task
}

// NewTaskSet sorts the given tasks by priority and wraps them with the
// platform. The slice is taken over by the task set.
func NewTaskSet(p Platform, tasks []*Task) *TaskSet {
	sort.SliceStable(tasks, func(a, b int) bool { return tasks[a].Priority < tasks[b].Priority })
	return &TaskSet{Platform: p, Tasks: tasks}
}

// Validate reports the first inconsistency: bad platform, duplicate
// priorities, out-of-range cores, deadlines beyond periods, memory
// demands violating MD^r <= MD, PCB not a subset of ECB, or cache-set
// capacities not matching the platform geometry.
func (ts *TaskSet) Validate() error {
	if err := ts.Platform.Validate(); err != nil {
		return err
	}
	seen := make(map[int]string, len(ts.Tasks))
	for _, t := range ts.Tasks {
		if prev, dup := seen[t.Priority]; dup {
			return fmt.Errorf("task %q: priority %d already used by %q", t.Name, t.Priority, prev)
		}
		seen[t.Priority] = t.Name
		if t.Core < 0 || t.Core >= ts.Platform.NumCores {
			return fmt.Errorf("task %q: core %d out of range [0,%d)", t.Name, t.Core, ts.Platform.NumCores)
		}
		if t.PD < 0 || t.MD < 0 || t.MDr < 0 {
			return fmt.Errorf("task %q: negative demand (PD=%d MD=%d MDr=%d)", t.Name, t.PD, t.MD, t.MDr)
		}
		if t.MDr > t.MD {
			return fmt.Errorf("task %q: MDr=%d exceeds MD=%d", t.Name, t.MDr, t.MD)
		}
		if t.Period <= 0 {
			return fmt.Errorf("task %q: period %d, need > 0", t.Name, t.Period)
		}
		if t.Deadline <= 0 || t.Deadline > t.Period {
			return fmt.Errorf("task %q: deadline %d not in (0, T=%d]", t.Name, t.Deadline, t.Period)
		}
		n := ts.Platform.Cache.NumSets
		for _, s := range []struct {
			name string
			set  cacheset.Set
		}{{"UCB", t.UCB}, {"ECB", t.ECB}, {"PCB", t.PCB}} {
			if s.set.Capacity() != n {
				return fmt.Errorf("task %q: %s capacity %d != cache sets %d", t.Name, s.name, s.set.Capacity(), n)
			}
		}
		if !t.PCB.SubsetOf(t.ECB) {
			return fmt.Errorf("task %q: PCB %v not a subset of ECB %v", t.Name, t.PCB, t.ECB)
		}
		if !t.UCB.SubsetOf(t.ECB) {
			return fmt.Errorf("task %q: UCB %v not a subset of ECB %v", t.Name, t.UCB, t.ECB)
		}
	}
	return nil
}

// OnCore returns the tasks Γ_x assigned to core x, highest priority
// first.
func (ts *TaskSet) OnCore(x int) []*Task {
	var out []*Task
	for _, t := range ts.Tasks {
		if t.Core == x {
			out = append(out, t)
		}
	}
	return out
}

// HP returns hp(i) ∩ Γ_core: tasks on the given core with strictly
// higher priority than prio. A negative core returns the system-wide
// hp(i).
func (ts *TaskSet) HP(prio, core int) []*Task {
	var out []*Task
	for _, t := range ts.Tasks {
		if t.Priority < prio && (core < 0 || t.Core == core) {
			out = append(out, t)
		}
	}
	return out
}

// LP returns lp(i) ∩ Γ_core: tasks on the given core with strictly
// lower priority than prio. A negative core returns the system-wide
// lp(i).
func (ts *TaskSet) LP(prio, core int) []*Task {
	var out []*Task
	for _, t := range ts.Tasks {
		if t.Priority > prio && (core < 0 || t.Core == core) {
			out = append(out, t)
		}
	}
	return out
}

// HEP returns hep(k) ∩ Γ_core: tasks on the given core with priority k
// or higher (priority value <= k). A negative core returns the
// system-wide hep(k).
func (ts *TaskSet) HEP(prio, core int) []*Task {
	var out []*Task
	for _, t := range ts.Tasks {
		if t.Priority <= prio && (core < 0 || t.Core == core) {
			out = append(out, t)
		}
	}
	return out
}

// Aff returns aff(i,j) ∩ Γ_core = hep(i) ∩ lp(j) ∩ Γ_core: the
// intermediate tasks that may be preempted by τ_j while delaying τ_i.
// i and j are priority values with j < i (τ_j higher priority).
func (ts *TaskSet) Aff(i, j, core int) []*Task {
	var out []*Task
	for _, t := range ts.Tasks {
		if t.Priority <= i && t.Priority > j && (core < 0 || t.Core == core) {
			out = append(out, t)
		}
	}
	return out
}

// ByPriority returns the task with the given priority value, or nil.
func (ts *TaskSet) ByPriority(prio int) *Task {
	for _, t := range ts.Tasks {
		if t.Priority == prio {
			return t
		}
	}
	return nil
}

// ByName returns the first task with the given name, or nil.
func (ts *TaskSet) ByName(name string) *Task {
	for _, t := range ts.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// LowestPriority returns the largest priority value in the task set
// (the index n of the paper's Eq. 8). It panics on an empty set.
func (ts *TaskSet) LowestPriority() int {
	if len(ts.Tasks) == 0 {
		panic("taskmodel: empty task set")
	}
	return ts.Tasks[len(ts.Tasks)-1].Priority
}

// CoreUtilization returns the total utilization of core x at the
// platform's d_mem.
func (ts *TaskSet) CoreUtilization(x int) float64 {
	u := 0.0
	for _, t := range ts.OnCore(x) {
		u += t.Utilization(ts.Platform.DMem)
	}
	return u
}

// TotalUtilization returns the sum of all task utilizations.
func (ts *TaskSet) TotalUtilization() float64 {
	u := 0.0
	for _, t := range ts.Tasks {
		u += t.Utilization(ts.Platform.DMem)
	}
	return u
}

// BusUtilization returns the fraction of bus time demanded by all
// tasks: Σ MD_i*d_mem / T_i. The "perfect bus" reference of the paper
// requires this to be at most 1.
func (ts *TaskSet) BusUtilization() float64 {
	u := 0.0
	for _, t := range ts.Tasks {
		u += float64(Time(t.MD)*ts.Platform.DMem) / float64(t.Period)
	}
	return u
}
