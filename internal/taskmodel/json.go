package taskmodel

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cacheset"
)

// taskJSON is the on-disk representation of a Task; cache sets are
// stored as sorted index lists.
type taskJSON struct {
	Name     string `json:"name"`
	Core     int    `json:"core"`
	Priority int    `json:"priority"`
	PD       Time   `json:"pd"`
	MD       int64  `json:"md"`
	MDr      int64  `json:"mdr"`
	Period   Time   `json:"period"`
	Deadline Time   `json:"deadline"`
	UCB      []int  `json:"ucb"`
	ECB      []int  `json:"ecb"`
	PCB      []int  `json:"pcb"`
}

// taskSetJSON is the on-disk representation of a TaskSet.
type taskSetJSON struct {
	Platform Platform   `json:"platform"`
	Tasks    []taskJSON `json:"tasks"`
}

// WriteJSON encodes the task set for storage or exchange between the
// generator and analyzer CLIs.
func (ts *TaskSet) WriteJSON(w io.Writer) error {
	out := taskSetJSON{Platform: ts.Platform}
	for _, t := range ts.Tasks {
		out.Tasks = append(out.Tasks, taskJSON{
			Name: t.Name, Core: t.Core, Priority: t.Priority,
			PD: t.PD, MD: t.MD, MDr: t.MDr,
			Period: t.Period, Deadline: t.Deadline,
			UCB: t.UCB.Indices(), ECB: t.ECB.Indices(), PCB: t.PCB.Indices(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON decodes a task set written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*TaskSet, error) {
	var in taskSetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("taskmodel: decoding task set: %w", err)
	}
	n := in.Platform.Cache.NumSets
	if err := in.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("taskmodel: invalid task set: %w", err)
	}
	checkIdx := func(name, field string, idx []int) error {
		for _, i := range idx {
			if i < 0 || i >= n {
				return fmt.Errorf("taskmodel: task %q: %s index %d out of range [0,%d)", name, field, i, n)
			}
		}
		return nil
	}
	tasks := make([]*Task, 0, len(in.Tasks))
	for _, tj := range in.Tasks {
		for _, f := range []struct {
			field string
			idx   []int
		}{{"ucb", tj.UCB}, {"ecb", tj.ECB}, {"pcb", tj.PCB}} {
			if err := checkIdx(tj.Name, f.field, f.idx); err != nil {
				return nil, err
			}
		}
		tasks = append(tasks, &Task{
			Name: tj.Name, Core: tj.Core, Priority: tj.Priority,
			PD: tj.PD, MD: tj.MD, MDr: tj.MDr,
			Period: tj.Period, Deadline: tj.Deadline,
			UCB: cacheset.FromSorted(n, tj.UCB),
			ECB: cacheset.FromSorted(n, tj.ECB),
			PCB: cacheset.FromSorted(n, tj.PCB),
		})
	}
	ts := NewTaskSet(in.Platform, tasks)
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("taskmodel: invalid task set: %w", err)
	}
	return ts, nil
}
