// Package checkpoint is the bookkeeping layer of the resilient sweep
// runtime: deterministic sharding of a sweep's job list across
// independent processes, and durable per-job result records that let
// an interrupted sweep resume without repeating finished work.
//
// The design leans on one property of the sweeps in
// internal/experiments: every job (point × utilization × sample) is
// self-contained — its RNG seed is derived from (base seed, sample,
// utilization) alone, so a job's outcome does not depend on which
// process runs it or in which order. Sharding and resumption are
// therefore pure bookkeeping: a job either has a recorded outcome or
// it is recomputed, and folding recorded outcomes in the sweep's
// canonical job order reproduces the uninterrupted result bit for bit
// (see DESIGN.md §10 for the full argument).
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Version is the checkpoint schema version; files with a different
// version are rejected on load.
const Version = 1

// Shard selects a deterministic subset of job keys: shard i of n owns
// the keys whose stable hash is congruent to i modulo n. The zero
// value (Count 0) owns every key, as does 0/1.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ParseShard parses the -shard flag syntax "i/n" with 0 <= i < n.
func ParseShard(s string) (Shard, error) {
	var sh Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil {
		return Shard{}, fmt.Errorf("checkpoint: bad shard %q (want i/n, e.g. 0/4)", s)
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("checkpoint: bad shard %q (want 0 <= i < n)", s)
	}
	return sh, nil
}

// Sharded reports whether the shard restricts the job list at all.
func (s Shard) Sharded() bool { return s.Count > 1 }

func (s Shard) String() string {
	if s.Count == 0 {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Owns reports whether this shard is responsible for the job key. The
// partition is a stable FNV-1a hash of the key modulo the shard
// count, so it is identical across processes, platforms and runs, and
// keys are distributed evenly regardless of the key grid's structure.
func (s Shard) Owns(key string) bool {
	if s.Count <= 1 {
		return true
	}
	return PartitionIndex(key, s.Count) == s.Index
}

// PartitionIndex is the stable FNV-1a partition underneath Owns,
// exposed on its own because it doubles as the cluster ownership
// function (internal/cluster): hashing a canonical request key modulo
// the node count names the node that owns the key — the same mapping
// for any process that agrees on the count, with no coordination.
// count <= 1 always maps to index 0.
func PartitionIndex(key string, count int) int {
	if count <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(count))
}

// Record is the durable outcome of one sweep job.
type Record struct {
	// Key is the job's stable identity within its study.
	Key string `json:"key"`
	// Util is the generated task set's actual average per-core
	// utilization — the x-weight the study fold consumes.
	Util float64 `json:"util"`
	// Verdicts maps variant name to its schedulability verdict.
	Verdicts map[string]bool `json:"verdicts,omitempty"`
	// Failed marks a job that panicked past the reference-analyzer
	// retry (or whose generation panicked); Err keeps the cause. Failed
	// jobs contribute no sample to the study fold.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Header identifies the run a checkpoint file belongs to. Resume and
// Merge refuse files whose header does not match, so results from
// different studies, seeds or sample sizes cannot be silently mixed.
type Header struct {
	Version  int    `json:"version"`
	Study    string `json:"study"`
	Seed     int64  `json:"seed"`
	TaskSets int    `json:"task_sets"`
	Shard    Shard  `json:"shard"`
}

// compatible reports whether two headers describe the same logical
// run (ignoring the shard, which Merge validates separately).
func (h Header) compatible(o Header) bool {
	return h.Study == o.Study && h.Seed == o.Seed && h.TaskSets == o.TaskSets
}

// file is the on-disk JSON document.
type file struct {
	Header  Header   `json:"header"`
	Records []Record `json:"records"`
}

// Log is a durable map from job key to Record. Adds accumulate in
// memory and are persisted by rewriting the whole file to a temporary
// sibling and renaming it over the target — the file on disk is
// always a complete, valid snapshot, never a torn write. A flush is
// triggered every Every records or Interval of wall time, whichever
// comes first, and always by Close.
//
// All methods are safe for concurrent use (sweep workers record from
// multiple goroutines) and safe on a nil receiver, which behaves as
// an always-empty, never-persisting log.
type Log struct {
	mu      sync.Mutex
	header  Header
	records map[string]Record
	path    string // empty: in-memory only (Merge results)
	dirty   int    // records added since the last flush
	last    time.Time
	now     func() time.Time // test seam

	// Every and Interval set the flush policy; zero values fall back
	// to 64 records / 5 seconds.
	Every    int
	Interval time.Duration
}

func newLog(path string, h Header) *Log {
	h.Version = Version
	return &Log{
		header:  h,
		records: make(map[string]Record),
		path:    path,
		now:     time.Now,
	}
}

// Create starts a fresh checkpoint at path. It fails if the file
// already exists: overwriting a previous run's records silently is
// exactly the data loss this package exists to prevent — pass resume
// semantics through Resume, or remove the file deliberately.
func Create(path string, h Header) (*Log, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("checkpoint: %s exists (use -resume to continue it, or remove it)", path)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	l := newLog(path, h)
	l.last = l.now()
	// Persist the header immediately so an early crash still leaves a
	// resumable file.
	if err := l.Flush(); err != nil {
		return nil, err
	}
	return l, nil
}

// Resume continues a checkpoint: an existing file is loaded and its
// header verified against h; a missing file starts fresh. The
// returned log already contains the previously recorded jobs.
func Resume(path string, h Header) (*Log, error) {
	prev, err := Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path, h)
	}
	if err != nil {
		return nil, err
	}
	if !prev.header.compatible(h) || prev.header.Shard != h.Shard {
		return nil, fmt.Errorf("checkpoint: %s belongs to a different run (file: study=%s seed=%d tasksets=%d shard=%s; flags: study=%s seed=%d tasksets=%d shard=%s)",
			path, prev.header.Study, prev.header.Seed, prev.header.TaskSets, prev.header.Shard,
			h.Study, h.Seed, h.TaskSets, h.Shard)
	}
	prev.last = prev.now()
	return prev, nil
}

// Open loads an existing checkpoint file for reading or resumption.
func Open(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if f.Header.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s: schema version %d, want %d", path, f.Header.Version, Version)
	}
	l := newLog(path, f.Header)
	for _, r := range f.Records {
		l.records[r.Key] = r
	}
	return l, nil
}

// Header returns the log's identity.
func (l *Log) Header() Header {
	if l == nil {
		return Header{}
	}
	return l.header
}

// Len returns the number of recorded jobs.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Lookup returns the record for key, if one exists.
func (l *Log) Lookup(key string) (Record, bool) {
	if l == nil {
		return Record{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.records[key]
	return r, ok
}

// Add records one completed job and flushes if the every-K/every-T
// policy says so. Re-adding a key overwrites the previous record.
func (l *Log) Add(rec Record) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	l.records[rec.Key] = rec
	l.dirty++
	every, interval := l.Every, l.Interval
	if every <= 0 {
		every = 64
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	due := l.dirty >= every || l.now().Sub(l.last) >= interval
	l.mu.Unlock()
	if due {
		return l.Flush()
	}
	return nil
}

// Flush atomically persists the current state: the whole document is
// written to path+".tmp" and renamed over path, so readers (and
// crashes) only ever observe complete snapshots.
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.path == "" {
		return nil
	}
	f := file{Header: l.header, Records: make([]Record, 0, len(l.records))}
	for _, r := range l.records {
		f.Records = append(f.Records, r)
	}
	// Sorted records make the file deterministic for a given state, so
	// identical runs produce identical checkpoints.
	sort.Slice(f.Records, func(i, j int) bool { return f.Records[i].Key < f.Records[j].Key })
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return err
	}
	l.dirty = 0
	l.last = l.now()
	return nil
}

// Close flushes and invalidates the log.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	return l.Flush()
}

// Merge combines the records of one study's shard checkpoints into a
// single in-memory log equivalent to an unsharded run's. It verifies
// that the inputs belong to the same run (study, seed, sample size),
// agree on the shard count, and that together they cover every shard
// index exactly once — so the merged log provably holds the union of
// a complete partition, never a mix of incompatible runs.
func Merge(logs []*Log) (*Log, error) {
	if len(logs) == 0 {
		return nil, errors.New("checkpoint: nothing to merge")
	}
	base := logs[0].header
	count := base.Shard.Count
	if count == 0 {
		count = 1
	}
	if len(logs) != count {
		return nil, fmt.Errorf("checkpoint: study %s has %d shard files, want %d (shard count %s)",
			base.Study, len(logs), count, base.Shard)
	}
	seen := make(map[int]string, len(logs))
	merged := newLog("", Header{Study: base.Study, Seed: base.Seed, TaskSets: base.TaskSets})
	for _, l := range logs {
		h := l.header
		if !h.compatible(base) {
			return nil, fmt.Errorf("checkpoint: cannot merge %s (study=%s seed=%d tasksets=%d) with %s (study=%s seed=%d tasksets=%d)",
				pathOf(logs[0]), base.Study, base.Seed, base.TaskSets, pathOf(l), h.Study, h.Seed, h.TaskSets)
		}
		c := h.Shard.Count
		if c == 0 {
			c = 1
		}
		if c != count {
			return nil, fmt.Errorf("checkpoint: shard counts differ: %s has %s, %s has %s",
				pathOf(logs[0]), base.Shard, pathOf(l), h.Shard)
		}
		if prev, dup := seen[h.Shard.Index]; dup {
			return nil, fmt.Errorf("checkpoint: shard %s appears twice (%s and %s)", h.Shard, prev, pathOf(l))
		}
		seen[h.Shard.Index] = pathOf(l)
		l.mu.Lock()
		for k, r := range l.records {
			merged.records[k] = r
		}
		l.mu.Unlock()
	}
	for i := 0; i < count; i++ {
		if _, ok := seen[i]; !ok {
			return nil, fmt.Errorf("checkpoint: shard %d/%d missing from the merge set", i, count)
		}
	}
	return merged, nil
}

func pathOf(l *Log) string {
	if l.path == "" {
		return "<memory>"
	}
	return filepath.Base(l.path)
}
