package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"0/1", Shard{0, 1}, true},
		{"0/4", Shard{0, 4}, true},
		{"3/4", Shard{3, 4}, true},
		{"4/4", Shard{}, false},
		{"-1/4", Shard{}, false},
		{"1/0", Shard{}, false},
		{"1", Shard{}, false},
		{"a/b", Shard{}, false},
		{"", Shard{}, false},
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseShard(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestShardPartition: every key is owned by exactly one shard, the
// partition is stable across calls, and the distribution is not
// degenerate.
func TestShardPartition(t *testing.T) {
	const n = 4
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = Shard{Index: i, Count: n}
	}
	counts := make([]int, n)
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("p%02d|u%016x|s%05d", k%7, uint64(k*37), k)
		owners := 0
		for i, s := range shards {
			if s.Owns(key) {
				owners++
				counts[i]++
				if !s.Owns(key) {
					t.Fatalf("shard %v not stable on %q", s, key)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("key %q owned by %d shards, want exactly 1", key, owners)
		}
	}
	for i, c := range counts {
		if c < 100 {
			t.Errorf("shard %d owns only %d/1000 keys — degenerate partition: %v", i, c, counts)
		}
	}
	// The zero shard and 0/1 own everything.
	for _, s := range []Shard{{}, {0, 1}} {
		if !s.Owns("anything") {
			t.Errorf("shard %+v must own every key", s)
		}
	}
}

func TestCreateAddResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig2a.json")
	h := Header{Study: "fig2a", Seed: 7, TaskSets: 5}
	l, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	// Create persists the header right away.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("header not persisted by Create: %v", err)
	}
	if _, err := Create(path, h); err == nil {
		t.Fatal("Create over an existing checkpoint succeeded")
	}

	recs := []Record{
		{Key: "a", Util: 0.5, Verdicts: map[string]bool{"FP": true, "FP-CP": true}},
		{Key: "b", Util: 0.7, Verdicts: map[string]bool{"FP": false}},
		{Key: "c", Failed: true, Err: "panic: boom"},
	}
	for _, r := range recs {
		if err := l.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Resume(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(recs) {
		t.Fatalf("resumed %d records, want %d", got.Len(), len(recs))
	}
	for _, want := range recs {
		r, ok := got.Lookup(want.Key)
		if !ok {
			t.Fatalf("record %q lost across resume", want.Key)
		}
		if r.Util != want.Util || r.Failed != want.Failed || r.Err != want.Err {
			t.Errorf("record %q = %+v, want %+v", want.Key, r, want)
		}
		for k, v := range want.Verdicts {
			if r.Verdicts[k] != v {
				t.Errorf("record %q verdict %q = %v, want %v", want.Key, k, r.Verdicts[k], v)
			}
		}
	}

	// Resuming with a different identity must fail loudly.
	for _, bad := range []Header{
		{Study: "fig2b", Seed: 7, TaskSets: 5},
		{Study: "fig2a", Seed: 8, TaskSets: 5},
		{Study: "fig2a", Seed: 7, TaskSets: 6},
		{Study: "fig2a", Seed: 7, TaskSets: 5, Shard: Shard{1, 2}},
	} {
		if _, err := Resume(path, bad); err == nil {
			t.Errorf("Resume accepted mismatched header %+v", bad)
		}
	}

	// Resume on a missing path starts fresh.
	fresh, err := Resume(filepath.Join(t.TempDir(), "new.json"), h)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Errorf("fresh resume has %d records", fresh.Len())
	}
}

// TestFlushPolicy pins the every-K and every-T triggers.
func TestFlushPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	l, err := Create(path, Header{Study: "s"})
	if err != nil {
		t.Fatal(err)
	}
	l.Every = 3
	l.Interval = time.Hour
	onDisk := func() int {
		got, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		return got.Len()
	}
	l.Add(Record{Key: "1"})
	l.Add(Record{Key: "2"})
	if n := onDisk(); n != 0 {
		t.Fatalf("flushed after %d adds with Every=3 (disk has %d)", 2, n)
	}
	l.Add(Record{Key: "3"})
	if n := onDisk(); n != 3 {
		t.Fatalf("every-K flush missing: disk has %d records, want 3", n)
	}

	// Interval trigger: fake the clock past the deadline.
	now := time.Now()
	l.now = func() time.Time { return now.Add(time.Hour + time.Second) }
	l.Add(Record{Key: "4"})
	if n := onDisk(); n != 4 {
		t.Fatalf("every-T flush missing: disk has %d records, want 4", n)
	}
}

// TestFlushAtomicity: the persisted file is always a complete JSON
// snapshot and flushing goes through a temporary sibling.
func TestFlushAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.json")
	l, err := Create(path, Header{Study: "s"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Add(Record{Key: fmt.Sprintf("k%d", i)})
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err != nil {
			t.Fatalf("file unreadable after flush %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temporary file %s left behind", e.Name())
		}
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	if err := l.Add(Record{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Lookup("k"); ok {
		t.Error("nil log returned a record")
	}
	if l.Len() != 0 || l.Flush() != nil || l.Close() != nil {
		t.Error("nil log not inert")
	}
}

func TestMerge(t *testing.T) {
	mk := func(idx, count int, keys ...string) *Log {
		l := newLog("", Header{Study: "fig2a", Seed: 1, TaskSets: 2, Shard: Shard{idx, count}})
		for _, k := range keys {
			l.records[k] = Record{Key: k}
		}
		return l
	}
	merged, err := Merge([]*Log{mk(1, 3, "b"), mk(0, 3, "a"), mk(2, 3, "c", "d")})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 4 {
		t.Fatalf("merged %d records, want 4", merged.Len())
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, ok := merged.Lookup(k); !ok {
			t.Errorf("key %q missing from merge", k)
		}
	}
	if sh := merged.Header().Shard; sh.Sharded() {
		t.Errorf("merged log still sharded: %v", sh)
	}

	cases := []struct {
		name string
		logs []*Log
	}{
		{"empty", nil},
		{"missing shard", []*Log{mk(0, 3, "a"), mk(2, 3, "c")}},
		{"duplicate shard", []*Log{mk(0, 3, "a"), mk(0, 3, "a"), mk(2, 3, "c")}},
		{"count mismatch", []*Log{mk(0, 2, "a"), mk(1, 3, "b")}},
	}
	for _, c := range cases {
		if _, err := Merge(c.logs); err == nil {
			t.Errorf("Merge(%s) succeeded, want error", c.name)
		}
	}
	// Identity mismatch.
	other := newLog("", Header{Study: "fig2b", Seed: 1, TaskSets: 2, Shard: Shard{1, 2}})
	if _, err := Merge([]*Log{mk(0, 2, "a"), other}); err == nil {
		t.Error("Merge across studies succeeded")
	}
	// A single unsharded log merges to itself.
	solo, err := Merge([]*Log{mk(0, 1, "x")})
	if err != nil || solo.Len() != 1 {
		t.Errorf("solo merge: err=%v len=%d", err, solo.Len())
	}
}
