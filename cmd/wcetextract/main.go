// Command wcetextract runs the static WCET/cache analysis (the
// repository's Heptane stand-in) over the synthetic benchmark suite
// and prints the extracted task parameters — the regenerated Table I.
//
// Usage:
//
//	wcetextract                     # whole suite at 256 sets
//	wcetextract -sets 128           # different geometry
//	wcetextract -bench fdct -refs   # one benchmark with per-reference detail
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/benchsuite"
	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/taskmodel"
)

func run() error {
	sets := flag.Int("sets", 256, "cache sets")
	blockSize := flag.Int("block", 32, "cache block size (bytes)")
	bench := flag.String("bench", "", "analyse a single benchmark by name (default: whole suite)")
	file := flag.String("file", "", "analyse a custom program from a JSON file (see internal/program)")
	refs := flag.Bool("refs", false, "with -bench/-file: print per-reference classifications")
	ways := flag.Int("ways", 1, "cache associativity (LRU)")
	flag.Parse()

	cache := taskmodel.CacheConfig{NumSets: *sets, BlockSizeBytes: *blockSize, Associativity: *ways}

	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err := program.ReadJSON(f)
		if err != nil {
			return err
		}
		return printOne(benchsuite.Benchmark{Name: prog.Name, Prog: prog}, cache, *refs)
	}

	if *bench == "" {
		rows, err := experiments.Table1(cache)
		if err != nil {
			return err
		}
		fmt.Printf("static analysis at %d sets x %d B\n\n", *sets, *blockSize)
		return experiments.RenderTable1(os.Stdout, rows)
	}

	b, err := benchsuite.ByName(*bench)
	if err != nil {
		return err
	}
	return printOne(b, cache, *refs)
}

// printOne analyses a single program and prints its parameters.
func printOne(b benchsuite.Benchmark, cache taskmodel.CacheConfig, refs bool) error {
	p, err := benchsuite.Extract(b, cache)
	if err != nil {
		return err
	}
	r := p.Result
	fmt.Printf("%s @ %d sets x %d B, %d-way\n", p.Name, cache.NumSets, cache.BlockSizeBytes, cache.Ways())
	fmt.Printf("  PD      = %d cycles\n", r.PD)
	fmt.Printf("  MD      = %d accesses (exact: %d)\n", r.MD, r.MDExact)
	fmt.Printf("  MD^r    = %d accesses (exact: %d)\n", r.MDr, r.MDrExact)
	fmt.Printf("  ECB     = %d sets %v\n", r.ECB.Count(), r.ECB)
	fmt.Printf("  PCB     = %d sets %v\n", r.PCB.Count(), r.PCB)
	fmt.Printf("  UCB     = %d sets %v\n", r.UCB.Count(), r.UCB)
	fmt.Printf("  persistent blocks: %v\n", r.PCBBlocks)

	if refs {
		fmt.Println()
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "#\tblock\tset\tclass\texec\tmisses")
		for i, ref := range r.Refs {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%d\n", i, ref.Block, ref.Set, ref.Class, ref.ExecCount, ref.Misses)
		}
		return tw.Flush()
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wcetextract:", err)
		os.Exit(1)
	}
}
