// Command buscond serves the WCRT analysis engine over HTTP — the
// analysis-as-a-service front end (internal/server). It canonicalizes
// and caches requests, coalesces concurrent duplicates, sheds load
// beyond a bounded queue, and drains gracefully on SIGTERM/SIGINT
// (in-flight requests finish, then the process exits 0).
//
// Usage:
//
//	buscond -addr 127.0.0.1:8080 -workers 8 -cache-entries 4096
//
// Several daemons become a fleet with shard-owner request routing
// (internal/cluster): start each with the full member list and its own
// address, and every canonical request key is analyzed on exactly one
// node whose cache serves the whole fleet:
//
//	buscond -addr 127.0.0.1:8080 -peers 127.0.0.1:8080,127.0.0.1:8081
//	buscond -addr 127.0.0.1:8081 -peers 127.0.0.1:8080,127.0.0.1:8081
//
// Endpoints: POST /v1/analyze, POST /v1/analyze/batch,
// POST /v1/analyze/delta, GET /healthz, GET /metrics,
// GET /debug/pprof/*. See DESIGN.md §11–§12 for the wire format and
// §14 for the fleet design; the README has quickstarts for both.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// run starts the daemon against explicit streams and blocks until ctx
// is canceled (the signal path) or the listener fails; tests drive it
// end to end. The returned code is the process exit code: 0 after a
// clean drain, 1 on setup or serve errors.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("buscond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent engine invocations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "requests allowed to wait for a worker before shedding (0 = 2x workers, negative = none)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache capacity (0 = 1024, negative = disable caching)")
	cacheTTL := fs.Duration("cache-ttl", 0, "result cache entry lifetime (0 = no expiry)")
	memoEntries := fs.Int("memo-entries", 0, "engine table-memo capacity in columns (0 = 4096, negative = disable memoization)")
	baseEntries := fs.Int("base-entries", 0, "delta base registry capacity (0 = 1024, negative = disable /v1/analyze/delta)")
	timeout := fs.Duration("timeout", 0, "per-request deadline while queued (0 = none)")
	peers := fs.String("peers", "", "comma-separated fleet member addresses (host:port or http:// URLs); enables shard-owner request routing")
	self := fs.String("self", "", "this node's address within -peers (default: -addr; required when -addr binds port 0)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-proxy round-trip deadline before degrading to local compute (0 = 1m)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	metrics := fs.Bool("metrics", false, "print the counter summary on exit")
	accessLog := fs.String("access-log", "stdout", "access-log destination: stdout, stderr, off, or a file path")
	logFormat := fs.String("log-format", "json", "access-log format: json or text")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file with request spans on exit")
	statsEvery := fs.Duration("stats-every", 0, "print rolling request-rate/latency lines to stderr at this interval (0 = off)")
	verbose := fs.Bool("v", false, "enable debug logging")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *logFormat != "json" && *logFormat != "text" {
		return 1, fmt.Errorf("-log-format must be json or text, got %q", *logFormat)
	}
	var ring *cluster.Ring
	if *peers != "" {
		selfAddr := *self
		if selfAddr == "" {
			selfAddr = *addr
		}
		var rerr error
		ring, rerr = cluster.NewRing(selfAddr, strings.Split(*peers, ","), *peerTimeout)
		if rerr != nil {
			return 1, rerr
		}
	} else if *self != "" {
		return 1, fmt.Errorf("-self only makes sense with -peers")
	}

	sess, err := telemetry.StartSession(telemetry.SessionOptions{
		Tool: "buscond", Metrics: *metrics, TracePath: *tracePath, Verbose: *verbose, Out: stderr,
	})
	if err != nil {
		return 1, err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(stderr, "buscond:", cerr)
		}
	}()
	obs := sess.Observer()
	if obs == nil {
		// The server counters are cheap atomics; keep them on
		// unconditionally so /metrics always has data.
		obs = telemetry.New()
	}
	if obs.Metrics == nil {
		obs.Metrics = telemetry.NewMetrics()
	}

	var accessW io.Writer
	var accessFile *os.File
	switch *accessLog {
	case "off", "":
	case "stdout":
		accessW = stdout
	case "stderr":
		accessW = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 1, fmt.Errorf("access log: %w", err)
		}
		accessFile = f
		accessW = f
		defer accessFile.Close()
	}

	srv := server.New(server.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		CacheTTL:        *cacheTTL,
		MemoEntries:     *memoEntries,
		BaseEntries:     *baseEntries,
		RequestTimeout:  *timeout,
		Observer:        obs,
		AccessLog:       accessW,
		AccessLogFormat: *logFormat,
		Ring:            ring,
	})

	// Rolling operator stats: interval deltas over the shared metrics
	// sink, so each line reads as "what happened since the last one".
	if *statsEvery > 0 {
		roller := telemetry.NewRoller(obs.Metrics)
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				d := roller.Roll()
				line := fmt.Sprintf("buscond: %.1f req/s", d.Rate("server.requests"))
				if h, ok := d.Hists["server.request_us"]; ok {
					line += fmt.Sprintf(" p50=%.0fµs p95=%.0fµs p99=%.0fµs",
						h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
				}
				if shed := d.Counters["server.shed"]; shed > 0 {
					line += fmt.Sprintf(" shed=%d", shed)
				}
				fmt.Fprintln(stderr, line)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return 1, err
	}
	// The resolved address line is load-bearing: tests and scripts bind
	// port 0 and scrape the actual port from here.
	fmt.Fprintf(stdout, "buscond: listening on http://%s (POST /v1/analyze)\n", ln.Addr())
	if ring != nil {
		fmt.Fprintf(stdout, "buscond: fleet member %s of %d nodes\n", ring.SelfURL(), ring.Len())
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return 1, err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising health, refuse new connections,
	// wait for in-flight requests, then exit 0.
	srv.StartDrain()
	fmt.Fprintln(stdout, "buscond: draining (in-flight requests will finish)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return 1, fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "buscond: drained, exiting")
	return 0, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buscond:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
