// Command buscond serves the WCRT analysis engine over HTTP — the
// analysis-as-a-service front end (internal/server). It canonicalizes
// and caches requests, coalesces concurrent duplicates, sheds load
// beyond a bounded queue, and drains gracefully on SIGTERM/SIGINT
// (in-flight requests finish, then the process exits 0).
//
// Usage:
//
//	buscond -addr 127.0.0.1:8080 -workers 8 -cache-entries 4096
//
// Endpoints: POST /v1/analyze, POST /v1/analyze/batch,
// POST /v1/analyze/delta, GET /healthz, GET /metrics,
// GET /debug/pprof/*. See DESIGN.md §11–§12 and the README quickstart
// for the wire format.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// run starts the daemon against explicit streams and blocks until ctx
// is canceled (the signal path) or the listener fails; tests drive it
// end to end. The returned code is the process exit code: 0 after a
// clean drain, 1 on setup or serve errors.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("buscond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent engine invocations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "requests allowed to wait for a worker before shedding (0 = 2x workers, negative = none)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache capacity (0 = 1024, negative = disable caching)")
	cacheTTL := fs.Duration("cache-ttl", 0, "result cache entry lifetime (0 = no expiry)")
	memoEntries := fs.Int("memo-entries", 0, "engine table-memo capacity in columns (0 = 4096, negative = disable memoization)")
	baseEntries := fs.Int("base-entries", 0, "delta base registry capacity (0 = 1024, negative = disable /v1/analyze/delta)")
	timeout := fs.Duration("timeout", 0, "per-request deadline while queued (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	metrics := fs.Bool("metrics", false, "print the counter summary on exit")
	verbose := fs.Bool("v", false, "enable debug logging")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	sess, err := telemetry.StartSession(telemetry.SessionOptions{
		Tool: "buscond", Metrics: *metrics, Verbose: *verbose, Out: stderr,
	})
	if err != nil {
		return 1, err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(stderr, "buscond:", cerr)
		}
	}()
	obs := sess.Observer()
	if obs == nil {
		// The server counters are cheap atomics; keep them on
		// unconditionally so /metrics always has data.
		obs = telemetry.New()
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		CacheTTL:       *cacheTTL,
		MemoEntries:    *memoEntries,
		BaseEntries:    *baseEntries,
		RequestTimeout: *timeout,
		Observer:       obs,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return 1, err
	}
	// The resolved address line is load-bearing: tests and scripts bind
	// port 0 and scrape the actual port from here.
	fmt.Fprintf(stdout, "buscond: listening on http://%s (POST /v1/analyze)\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return 1, err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising health, refuse new connections,
	// wait for in-flight requests, then exit 0.
	srv.StartDrain()
	fmt.Fprintln(stdout, "buscond: draining (in-flight requests will finish)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return 1, fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "buscond: drained, exiting")
	return 0, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buscond:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
