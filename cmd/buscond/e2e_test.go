package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
)

// TestMain lets the test binary double as the daemon: with the helper
// env set it runs main() verbatim, so e2e tests can exercise the real
// signal path (SIGTERM → drain → exit 0) against a real process.
func TestMain(m *testing.M) {
	if os.Getenv("BUSCOND_E2E_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// syncBuffer lets the test poll daemon output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (http://[^\s]+)`)

// analyzeBody marshals the Fig. 1 example as a /v1/analyze request.
func analyzeBody(t *testing.T) []byte {
	t.Helper()
	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"taskset": json.RawMessage(tsBuf.Bytes()),
		"configs": []map[string]any{
			{"arbiter": "fp", "persistence": true},
			{"arbiter": "rr", "persistence": true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRunServeCacheAndDrain drives the daemon through run(): serve an
// analysis byte-identical to the direct engine call, answer the
// re-POST from the cache, then drain on context cancel and exit 0.
func TestRunServeCacheAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuffer
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run(ctx, []string{"-addr", "127.0.0.1:0", "-stats-every", "50ms"}, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s\n%s", out.String(), errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	direct, err := core.AnalyzeBatch([]core.BatchRequest{{
		TS: fixtures.Fig1TaskSet(),
		Cfgs: []core.Config{
			{Arbiter: core.FP, Persistence: true},
			{Arbiter: core.RR, Persistence: true},
		},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct[0])

	post := func() (bool, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(analyzeBody(t)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d\n%s", resp.StatusCode, data)
		}
		var env struct {
			Cached  bool            `json:"cached"`
			Results json.RawMessage `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return env.Cached, env.Results
	}

	cached1, res1 := post()
	if cached1 {
		t.Error("first request reported cached")
	}
	if !bytes.Equal(res1, want) {
		t.Errorf("served results differ from direct AnalyzeBatch:\nserver: %s\ndirect: %s", res1, want)
	}
	cached2, res2 := post()
	if !cached2 {
		t.Error("re-POST missed the cache")
	}
	if !bytes.Equal(res2, res1) {
		t.Error("cached bytes differ from the first response")
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %d)", err, hr.StatusCode)
	}
	hr.Body.Close()

	// The default JSON access log on stdout carries both requests'
	// verdicts (the line lands after the response, so poll), and the
	// rolling stats loop reports request rates on stderr.
	for _, want := range []string{`"verdict":"fresh"`, `"verdict":"cached"`} {
		for !bytes.Contains([]byte(out.String()), []byte(want)) {
			if time.Now().After(deadline) {
				t.Fatalf("access log missing %s:\n%s", want, out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for !bytes.Contains([]byte(errOut.String()), []byte("req/s")) {
		if time.Now().After(deadline) {
			t.Fatalf("stats line never appeared on stderr:\n%s", errOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
	if runErr != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, runErr)
	}
	if !bytes.Contains([]byte(out.String()), []byte("drained")) {
		t.Errorf("output missing drain notice:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(), []string{"-addr", "not-an-address"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("bad address: code=%d err=%v, want a failure", code, err)
	}
	if code, err := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("unknown flag: code=%d err=%v, want a failure", code, err)
	}
	if code, err := run(context.Background(), []string{"-log-format", "xml"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("bad log format: code=%d err=%v, want a failure", code, err)
	}
	if code, err := run(context.Background(), []string{"-self", "127.0.0.1:1"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("-self without -peers: code=%d err=%v, want a failure", code, err)
	}
	if code, err := run(context.Background(), []string{"-peers", "ftp://127.0.0.1:1"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("bad -peers scheme: code=%d err=%v, want a failure", code, err)
	}
}

// TestRunFleetMemberAnnouncement wires the fleet flags end to end: a
// single-member ring (self is auto-added to -peers) must announce
// itself on stdout and still serve analyses — ownership of every key
// is local, so routing is a no-op.
func TestRunFleetMemberAnnouncement(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, err := run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-peers", "127.0.0.1:7421", "-self", "127.0.0.1:7421",
		}, &out, &errOut)
		if code != 0 || err != nil {
			t.Errorf("run: code=%d err=%v", code, err)
		}
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s\n%s", out.String(), errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if want := "fleet member http://127.0.0.1:7421 of 1 nodes"; !bytes.Contains([]byte(out.String()), []byte(want)) {
		t.Errorf("stdout missing %q:\n%s", want, out.String())
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(analyzeBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}

// TestAccessLogFileAndTrace: -access-log writes text-format lines to a
// file, and -trace exports a Chrome trace with request spans on exit.
func TestAccessLogFileAndTrace(t *testing.T) {
	dir := t.TempDir()
	logPath := dir + "/access.log"
	tracePath := dir + "/trace.json"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, err := run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-access-log", logPath, "-log-format", "text",
			"-trace", tracePath,
		}, &out, &errOut)
		if code != 0 || err != nil {
			t.Errorf("run: code=%d err=%v", code, err)
		}
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s\n%s", out.String(), errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(analyzeBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}

	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"verdict=fresh", "path=/v1/analyze", "stage.analyze_us="} {
		if !bytes.Contains(logData, []byte(want)) {
			t.Errorf("access-log file missing %q:\n%s", want, logData)
		}
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		Events []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	var sawRequest bool
	for _, e := range trace.Events {
		if e.Name == "request /v1/analyze" {
			sawRequest = true
		}
	}
	if !sawRequest {
		t.Errorf("trace missing the request span (%d events)", len(trace.Events))
	}
}

// TestSIGTERMDrainsAndExitsZero pins the acceptance criterion against
// a real process: SIGTERM must drain the daemon and exit 0.
func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGTERM on windows")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "BUSCOND_E2E_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address (scan err: %v)", sc.Err())
	}

	// One real request before the signal, so the drain path has served
	// traffic behind it.
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(analyzeBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(stdout)
	waitErr := cmd.Wait()
	if waitErr != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v", waitErr)
	}
	all := fmt.Sprintf("%s\n%s", "", rest)
	if !bytes.Contains([]byte(all), []byte("drained")) {
		t.Errorf("drain notice missing from output:\n%s", all)
	}
}
