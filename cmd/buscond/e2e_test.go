package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
)

// TestMain lets the test binary double as the daemon: with the helper
// env set it runs main() verbatim, so e2e tests can exercise the real
// signal path (SIGTERM → drain → exit 0) against a real process.
func TestMain(m *testing.M) {
	if os.Getenv("BUSCOND_E2E_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// syncBuffer lets the test poll daemon output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (http://[^\s]+)`)

// analyzeBody marshals the Fig. 1 example as a /v1/analyze request.
func analyzeBody(t *testing.T) []byte {
	t.Helper()
	var tsBuf bytes.Buffer
	if err := fixtures.Fig1TaskSet().WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"taskset": json.RawMessage(tsBuf.Bytes()),
		"configs": []map[string]any{
			{"arbiter": "fp", "persistence": true},
			{"arbiter": "rr", "persistence": true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRunServeCacheAndDrain drives the daemon through run(): serve an
// analysis byte-identical to the direct engine call, answer the
// re-POST from the cache, then drain on context cancel and exit 0.
func TestRunServeCacheAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuffer
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run(ctx, []string{"-addr", "127.0.0.1:0"}, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s\n%s", out.String(), errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	direct, err := core.AnalyzeBatch([]core.BatchRequest{{
		TS: fixtures.Fig1TaskSet(),
		Cfgs: []core.Config{
			{Arbiter: core.FP, Persistence: true},
			{Arbiter: core.RR, Persistence: true},
		},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct[0])

	post := func() (bool, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(analyzeBody(t)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d\n%s", resp.StatusCode, data)
		}
		var env struct {
			Cached  bool            `json:"cached"`
			Results json.RawMessage `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return env.Cached, env.Results
	}

	cached1, res1 := post()
	if cached1 {
		t.Error("first request reported cached")
	}
	if !bytes.Equal(res1, want) {
		t.Errorf("served results differ from direct AnalyzeBatch:\nserver: %s\ndirect: %s", res1, want)
	}
	cached2, res2 := post()
	if !cached2 {
		t.Error("re-POST missed the cache")
	}
	if !bytes.Equal(res2, res1) {
		t.Error("cached bytes differ from the first response")
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %d)", err, hr.StatusCode)
	}
	hr.Body.Close()

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
	if runErr != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, runErr)
	}
	if !bytes.Contains([]byte(out.String()), []byte("drained")) {
		t.Errorf("output missing drain notice:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(), []string{"-addr", "not-an-address"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("bad address: code=%d err=%v, want a failure", code, err)
	}
	if code, err := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("unknown flag: code=%d err=%v, want a failure", code, err)
	}
}

// TestSIGTERMDrainsAndExitsZero pins the acceptance criterion against
// a real process: SIGTERM must drain the daemon and exit 0.
func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGTERM on windows")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "BUSCOND_E2E_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address (scan err: %v)", sc.Err())
	}

	// One real request before the signal, so the drain path has served
	// traffic behind it.
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(analyzeBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(stdout)
	waitErr := cmd.Wait()
	if waitErr != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v", waitErr)
	}
	all := fmt.Sprintf("%s\n%s", "", rest)
	if !bytes.Contains([]byte(all), []byte("drained")) {
		t.Errorf("drain notice missing from output:\n%s", all)
	}
}
