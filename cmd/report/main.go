// Command report renders a complete Markdown analysis report for a
// task set: verdicts of every analysis variant, per-task WCRT bounds,
// a decomposition of the most stressed task's bound, sensitivity
// margins and cache-pressure statistics.
//
// Usage:
//
//	gentaskset -util 0.3 -o set.json
//	report -in set.json -sensitivity > report.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/taskmodel"
)

func run() error {
	in := flag.String("in", "", "task set JSON file (required; - for stdin)")
	sensitivity := flag.Bool("sensitivity", false, "include the (slower) sensitivity section")
	noExplain := flag.Bool("no-explain", false, "skip the bound decomposition section")
	arbS := flag.String("arbiter", "rr", "reference arbiter for the detail sections: fp, rr, tdma, regulated or paraware")
	noPersistence := flag.Bool("no-persistence", false, "use the persistence-oblivious analysis as reference")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}

	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	ts, err := taskmodel.ReadJSON(f)
	if err != nil {
		return err
	}

	var arb core.Arbiter
	switch *arbS {
	case "fp":
		arb = core.FP
	case "rr":
		arb = core.RR
	case "tdma":
		arb = core.TDMA
	case "regulated":
		arb = core.Regulated
	case "paraware":
		arb = core.ParAware
	default:
		return fmt.Errorf("unknown arbiter %q (want fp, rr, tdma, regulated or paraware)", *arbS)
	}

	return report.Write(os.Stdout, ts, report.Options{
		Sensitivity:  *sensitivity,
		ExplainWorst: !*noExplain,
		Reference:    core.Config{Arbiter: arb, Persistence: !*noPersistence},
	})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
