// Command experiments regenerates the paper's evaluation: Table I and
// Figures 2a-2c and 3a-3d. Each study renders an ASCII chart to
// stdout and, with -outdir, writes the underlying data as CSV.
//
// Usage:
//
//	experiments -exp all -tasksets 200 -outdir results/
//	experiments -exp fig2a
//	experiments -exp table1
//
// The paper uses 1000 task sets per data point; -tasksets trades
// fidelity for runtime (the shape stabilises well below 1000).
//
// A live progress line (task sets analyzed, schedulable ratio) is
// written to stderr; disable with -progress=false. Ctrl-C interrupts
// the sweep gracefully: the partial results gathered so far are still
// charted and flushed to CSV, and the process exits with code 130.
// Telemetry: -metrics prints analyzer counters, -trace FILE writes a
// Chrome trace-event JSON with per-worker span tracks (view at
// ui.perfetto.dev), -v enables debug logging.
//
// Large sweeps survive interruption and spread across machines:
//
//	experiments -exp fig2a -checkpoint ckpt/            # resumable
//	experiments -exp fig2a -checkpoint ckpt/ -resume    # continue it
//	experiments -exp fig2a -shard 0/2 -checkpoint ckpt/ # 1st of 2 procs
//	experiments -exp fig2a -shard 1/2 -checkpoint ckpt/ # 2nd of 2 procs
//	experiments merge -outdir results/ ckpt/*.json      # combine shards
//
// With a buscond fleet running (see cmd/buscond -peers), -cluster
// submits the sweep's analyses to the fleet instead of the in-process
// engine — one checkpoint shard per node, merged and replayed at the
// end, so the CSVs stay byte-identical to a local run:
//
//	experiments -exp fig2a -cluster 127.0.0.1:8080,127.0.0.1:8081 -checkpoint ckpt/
//
// -checkpoint DIR records every completed job (atomically, every few
// jobs or seconds) in DIR/<study>[.shardIofN].json; -resume reloads
// the file and skips recorded jobs. -shard i/n deterministically
// partitions the job list so n processes produce disjoint results;
// the merge mode combines their checkpoints into CSVs byte-identical
// to a single-process run (see DESIGN.md §10). A panicking job is
// retried on the naive reference analyzer and, failing that, recorded
// as a failed data point instead of killing the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/taskgen"
	"repro/internal/taskmodel"
	"repro/internal/telemetry"
)

// progressPrinter renders a throttled single-line progress display.
// Safe for concurrent use (sweep workers report from goroutines).
type progressPrinter struct {
	w     io.Writer
	study string
	mu    sync.Mutex
	last  time.Time
	live  bool
}

func (p *progressPrinter) update(u experiments.ProgressUpdate) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if u.Done != u.Total && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	p.live = true
	ratio := 0.0
	if u.Verdicts > 0 {
		ratio = 100 * float64(u.Schedulable) / float64(u.Verdicts)
	}
	fmt.Fprintf(p.w, "\r%s: %d/%d task sets analyzed, %.1f%% of verdicts schedulable   ",
		p.study, u.Done, u.Total, ratio)
}

// clear ends the live line so subsequent output starts clean.
func (p *progressPrinter) clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", 72))
		p.live = false
	}
}

// studyFn names one runnable study. Shardable studies go through the
// parallel sweep engine and support -shard/-checkpoint/-resume; the
// serial extension studies do not.
type studyFn struct {
	name      string
	shardable bool
	run       func(experiments.Options) (*experiments.Study, error)
}

// studies is the registry shared by the regular run and the merge
// mode (which looks studies up by the name recorded in checkpoint
// headers).
var studies = []studyFn{
	{"fig2a", true, func(o experiments.Options) (*experiments.Study, error) { return experiments.Fig2(core.FP, o) }},
	{"fig2b", true, func(o experiments.Options) (*experiments.Study, error) { return experiments.Fig2(core.RR, o) }},
	{"fig2c", true, func(o experiments.Options) (*experiments.Study, error) { return experiments.Fig2(core.TDMA, o) }},
	{"fig2reg", true, func(o experiments.Options) (*experiments.Study, error) { return experiments.Fig2(core.Regulated, o) }},
	{"fig2par", true, func(o experiments.Options) (*experiments.Study, error) { return experiments.Fig2(core.ParAware, o) }},
	{"fig3a", true, experiments.Fig3a},
	{"fig3b", true, experiments.Fig3b},
	{"fig3c", true, experiments.Fig3c},
	{"fig3d", true, experiments.Fig3d},
	{"extcrpd", false, experiments.ExtCRPD},
	{"extpartition", false, experiments.ExtPartition},
	{"extopa", false, experiments.ExtOPA},
	{"extgen", false, experiments.ExtGen},
}

func studyByName(name string) (studyFn, bool) {
	for _, s := range studies {
		if s.name == name {
			return s, true
		}
	}
	return studyFn{}, false
}

// run executes the command against explicit streams. Exit codes: 0 ok,
// 1 error, 130 interrupted (partial results were still flushed).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(ctx, args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: table1, fig2a, fig2b, fig2c, fig3a, fig3b, fig3c, fig3d, extassoc, exthier, extcrpd, extpartition, extopa, extgen, or all")
	tasksets := fs.Int("tasksets", 200, "random task sets per data point (paper: 1000)")
	seed := fs.Int64("seed", 2020, "base RNG seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	outdir := fs.String("outdir", "", "directory for CSV output (optional)")
	shardS := fs.String("shard", "", "run only shard i of n sweep jobs, e.g. 0/4 (requires -checkpoint)")
	clusterS := fs.String("cluster", "", "comma-separated buscond fleet URLs; sweep analyses are served by the fleet, one checkpoint shard per node (requires -checkpoint, excludes -shard)")
	clusterTimeout := fs.Duration("cluster-timeout", 0, "per-request deadline against the fleet (0 = 1m)")
	ckptDir := fs.String("checkpoint", "", "directory for per-study checkpoint files (enables resumable sweeps)")
	resume := fs.Bool("resume", false, "reload existing checkpoints and skip completed jobs")
	ckptEvery := fs.Int("checkpoint-every", 64, "flush the checkpoint every K completed jobs")
	ckptInterval := fs.Duration("checkpoint-interval", 5*time.Second, "flush the checkpoint at least this often")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file (view at ui.perfetto.dev)")
	metrics := fs.Bool("metrics", false, "print analyzer counters and histograms on exit")
	progress := fs.Bool("progress", true, "show a live progress line on stderr")
	verbose := fs.Bool("v", false, "enable debug logging")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	var shard checkpoint.Shard
	if *shardS != "" {
		var err error
		if shard, err = checkpoint.ParseShard(*shardS); err != nil {
			return 1, err
		}
		if *ckptDir == "" {
			return 1, fmt.Errorf("-shard requires -checkpoint: shard results only become a full study through their checkpoint files (experiments merge)")
		}
	}
	if *resume && *ckptDir == "" {
		return 1, fmt.Errorf("-resume requires -checkpoint")
	}
	var fleet *cluster.Client
	if *clusterS != "" {
		if *shardS != "" {
			return 1, fmt.Errorf("-cluster and -shard are mutually exclusive (-cluster shards the sweep per fleet node itself)")
		}
		if *ckptDir == "" {
			return 1, fmt.Errorf("-cluster requires -checkpoint: per-node shard results only become a study through their checkpoint files")
		}
		var err error
		if fleet, err = cluster.NewClient(strings.Split(*clusterS, ","), *clusterTimeout); err != nil {
			return 1, err
		}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return 1, err
		}
	}

	sess, err := telemetry.StartSession(telemetry.SessionOptions{
		Tool:       "experiments",
		CPUProfile: *cpuprofile, MemProfile: *memprofile,
		TracePath: *tracePath, Metrics: *metrics,
		Verbose: *verbose, Out: stderr,
	})
	if err != nil {
		return 1, err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(stderr, "experiments:", cerr)
		}
	}()

	opts := experiments.Options{
		TaskSetsPerPoint: *tasksets,
		Seed:             *seed,
		Workers:          *workers,
		Base:             taskgen.DefaultConfig(),
		Observer:         sess.Observer(),
		Context:          ctx,
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return 1, err
		}
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false
	interrupted := false
	// Sharding and checkpointing only make sense for the parallel
	// sweep studies; under -exp all the others are skipped with a
	// note, and asking for one explicitly is an error.
	restricted := shard.Sharded() || *ckptDir != ""
	skipUnshardable := func(name string) (skip bool, err error) {
		if !restricted {
			return false, nil
		}
		if *exp == "all" {
			fmt.Fprintf(stderr, "experiments: skipping %s: -shard/-checkpoint only apply to the fig2*/fig3* sweeps\n", name)
			return true, nil
		}
		return false, fmt.Errorf("%s does not support -shard/-checkpoint (only the fig2*/fig3* sweeps do)", name)
	}

	if want("table1") {
		if skip, err := skipUnshardable("table1"); err != nil {
			return 1, err
		} else if !skip {
			ran = true
			rows, err := experiments.Table1(taskmodel.CacheConfig{NumSets: 256, BlockSizeBytes: 32})
			if err != nil {
				return 1, err
			}
			fmt.Fprintln(stdout, "Table I — benchmark parameters (regenerated by internal/staticwcet at 256 sets x 32 B)")
			fmt.Fprintln(stdout)
			if err := experiments.RenderTable1(stdout, rows); err != nil {
				return 1, err
			}
			fmt.Fprintln(stdout)
		}
	}

	for _, s := range studies {
		if !want(s.name) {
			continue
		}
		if interrupted {
			// A previous study was cut short; skip the rest outright.
			break
		}
		if !s.shardable {
			if skip, err := skipUnshardable(s.name); err != nil {
				return 1, err
			} else if skip {
				continue
			}
		}
		ran = true
		if fleet != nil {
			code, rerr := runClusterStudy(s, opts, fleet, clusterCfg{
				dir: *ckptDir, resume: *resume,
				every: *ckptEvery, interval: *ckptInterval,
				progress: *progress, outdir: *outdir,
			}, stdout, stderr)
			if rerr != nil {
				return code, rerr
			}
			interrupted = interrupted || code == 130
			continue
		}
		start := time.Now()
		runOpts := opts
		runOpts.Shard = shard

		var log *checkpoint.Log
		if s.shardable && *ckptDir != "" {
			hdr := checkpoint.Header{Study: s.name, Seed: *seed, TaskSets: *tasksets, Shard: shard}
			path := checkpointPath(*ckptDir, s.name, shard)
			var err error
			if *resume {
				log, err = checkpoint.Resume(path, hdr)
			} else {
				log, err = checkpoint.Create(path, hdr)
			}
			if err != nil {
				return 1, err
			}
			log.Every, log.Interval = *ckptEvery, *ckptInterval
			if n := log.Len(); n > 0 {
				fmt.Fprintf(stderr, "experiments: %s: resuming past %d checkpointed jobs\n", s.name, n)
			}
			runOpts.Checkpoint = log
		}
		runOpts.OnJobFailure = func(key string, err error, stack []byte) {
			fmt.Fprintf(stderr, "\nexperiments: %s: job %s failed permanently: %v\n", s.name, key, err)
			if *verbose && len(stack) > 0 {
				stderr.Write(stack)
			}
		}

		var p *progressPrinter
		if *progress {
			p = &progressPrinter{w: stderr, study: s.name}
			runOpts.Progress = p.update
		}
		st, err := s.run(runOpts)
		if p != nil {
			p.clear()
		}
		if cerr := log.Close(); cerr != nil {
			return 1, cerr
		}
		code, rerr := emitStudy(st, err, s.name, *outdir, start, stdout)
		if rerr != nil {
			return code, rerr
		}
		interrupted = interrupted || code == 130
	}

	if want("extassoc") && !interrupted {
		if skip, err := skipUnshardable("extassoc"); err != nil {
			return 1, err
		} else if !skip {
			ran = true
			pts, err := experiments.ExtAssociativity()
			if err != nil {
				return 1, err
			}
			fmt.Fprintln(stdout, "Extension — suite-wide demand and persistence vs cache organisation (256 lines)")
			fmt.Fprintln(stdout)
			if err := experiments.RenderAssoc(stdout, pts); err != nil {
				return 1, err
			}
			fmt.Fprintln(stdout)
		}
	}

	if want("exthier") && !interrupted {
		if skip, err := skipUnshardable("exthier"); err != nil {
			return 1, err
		} else if !skip {
			ran = true
			pts, err := experiments.ExtHierarchy()
			if err != nil {
				return 1, err
			}
			fmt.Fprintln(stdout, "Extension — bus demand absorbed by a private L2 (L1 fixed at 256x1)")
			fmt.Fprintln(stdout)
			if err := experiments.RenderHierarchy(stdout, pts); err != nil {
				return 1, err
			}
			fmt.Fprintln(stdout)
		}
	}

	if !ran {
		return 1, fmt.Errorf("unknown experiment %q", *exp)
	}
	if interrupted {
		fmt.Fprintln(stdout, "interrupted: results above are partial (remaining studies skipped)")
		return 130, nil
	}
	return 0, nil
}

// clusterCfg bundles the flag state runClusterStudy needs.
type clusterCfg struct {
	dir      string
	resume   bool
	every    int
	interval time.Duration
	progress bool
	outdir   string
}

// runClusterStudy runs one shardable study against a buscond fleet.
// The job list is split into one shard per fleet node; each shard runs
// with the fleet client as its analysis engine (experiments
// Options.Analyze) and its own checkpoint file, exactly as n separate
// -shard processes would. The shard checkpoints are then merged and
// replayed — the same path as `experiments merge` — so the emitted
// chart and CSV are byte-identical to a single-process local run.
func runClusterStudy(s studyFn, opts experiments.Options, fleet *cluster.Client, cc clusterCfg, stdout, stderr io.Writer) (int, error) {
	n := fleet.Len()
	var paths []string
	for i := 0; i < n; i++ {
		sh := checkpoint.Shard{Index: i, Count: n}
		hdr := checkpoint.Header{Study: s.name, Seed: opts.Seed, TaskSets: opts.TaskSetsPerPoint, Shard: sh}
		path := checkpointPath(cc.dir, s.name, sh)
		var log *checkpoint.Log
		var err error
		if cc.resume {
			log, err = checkpoint.Resume(path, hdr)
		} else {
			log, err = checkpoint.Create(path, hdr)
		}
		if err != nil {
			return 1, err
		}
		log.Every, log.Interval = cc.every, cc.interval

		runOpts := opts
		runOpts.Shard = sh
		runOpts.Checkpoint = log
		runOpts.Analyze = fleet.AnalyzeBatch
		runOpts.OnJobFailure = func(key string, err error, stack []byte) {
			fmt.Fprintf(stderr, "\nexperiments: %s: job %s failed permanently: %v\n", s.name, key, err)
		}
		var p *progressPrinter
		if cc.progress {
			p = &progressPrinter{w: stderr, study: fmt.Sprintf("%s shard %d/%d", s.name, i, n)}
			runOpts.Progress = p.update
		}
		_, err = s.run(runOpts)
		if p != nil {
			p.clear()
		}
		if cerr := log.Close(); cerr != nil {
			return 1, cerr
		}
		if errors.Is(err, experiments.ErrInterrupted) {
			fmt.Fprintf(stdout, "interrupted: %s shard %d/%d checkpointed partially; rerun with -resume to continue\n", s.name, i, n)
			return 130, nil
		}
		if err != nil {
			return 1, fmt.Errorf("%s shard %d/%d: %w", s.name, i, n, err)
		}
		paths = append(paths, path)
	}

	// Merge and replay from the recorded jobs, like `experiments merge`.
	var logs []*checkpoint.Log
	for _, path := range paths {
		log, err := checkpoint.Open(path)
		if err != nil {
			return 1, err
		}
		logs = append(logs, log)
	}
	merged, err := checkpoint.Merge(logs)
	if err != nil {
		return 1, err
	}
	start := time.Now()
	st, err := s.run(experiments.Options{
		TaskSetsPerPoint: opts.TaskSetsPerPoint,
		Seed:             opts.Seed,
		Base:             opts.Base,
		Checkpoint:       merged,
		Context:          opts.Context,
	})
	return emitStudy(st, err, s.name, cc.outdir, start, stdout)
}

// checkpointPath names the checkpoint file for one study and shard:
// DIR/<study>.json, or DIR/<study>.shardIofN.json when sharded, so
// the shards of one study never collide in a shared directory.
func checkpointPath(dir, study string, shard checkpoint.Shard) string {
	name := study + ".json"
	if shard.Sharded() {
		name = fmt.Sprintf("%s.shard%dof%d.json", study, shard.Index, shard.Count)
	}
	return filepath.Join(dir, name)
}

// runMerge implements the merge mode: it loads the given checkpoint
// files, groups them by study, verifies that each group is a complete
// disjoint shard partition, and replays each study entirely from the
// recorded jobs. Because replay walks the same canonical job order and
// fold as a live sweep, the emitted charts and CSVs are byte-identical
// to a single-process run's.
func runMerge(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("experiments merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outdir := fs.String("outdir", "", "directory for CSV output (optional)")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() == 0 {
		return 1, fmt.Errorf("merge: no checkpoint files given (usage: experiments merge [-outdir DIR] ckpt/*.json)")
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return 1, err
		}
	}

	byStudy := make(map[string][]*checkpoint.Log)
	var order []string
	for _, path := range fs.Args() {
		log, err := checkpoint.Open(path)
		if err != nil {
			return 1, err
		}
		study := log.Header().Study
		if _, ok := studyByName(study); !ok {
			return 1, fmt.Errorf("merge: %s records unknown study %q", path, study)
		}
		if len(byStudy[study]) == 0 {
			order = append(order, study)
		}
		byStudy[study] = append(byStudy[study], log)
	}

	for _, name := range order {
		merged, err := checkpoint.Merge(byStudy[name])
		if err != nil {
			return 1, err
		}
		s, _ := studyByName(name)
		hdr := merged.Header()
		start := time.Now()
		st, err := s.run(experiments.Options{
			TaskSetsPerPoint: hdr.TaskSets,
			Seed:             hdr.Seed,
			Base:             taskgen.DefaultConfig(),
			Checkpoint:       merged,
			Context:          ctx,
		})
		if code, rerr := emitStudy(st, err, name, *outdir, start, stdout); rerr != nil || code != 0 {
			return code, rerr
		}
	}
	return 0, nil
}

// emitStudy renders one study and flushes its CSV. Interrupted studies
// are still emitted — flagged as partial — and reported as code 130.
func emitStudy(st *experiments.Study, err error, name, outdir string, start time.Time, stdout io.Writer) (int, error) {
	interrupted := errors.Is(err, experiments.ErrInterrupted)
	if err != nil && !interrupted {
		return 1, fmt.Errorf("%s: %w", name, err)
	}
	note := ""
	if interrupted {
		note = " — INTERRUPTED, partial data"
	}
	fmt.Fprintf(stdout, "(%s: %d task sets per point, %.1fs%s)\n", st.ID, st.TaskSetsPerPoint, time.Since(start).Seconds(), note)
	if err := st.Chart().Render(stdout); err != nil {
		return 1, err
	}
	fmt.Fprintln(stdout)
	if outdir != "" {
		path := filepath.Join(outdir, name+".csv")
		if interrupted {
			path = filepath.Join(outdir, name+".partial.csv")
		}
		f, err := os.Create(path)
		if err != nil {
			return 1, err
		}
		if err := st.WriteCSV(f); err != nil {
			f.Close()
			return 1, err
		}
		if err := f.Close(); err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "wrote %s\n\n", path)
	}
	if interrupted {
		return 130, nil
	}
	return 0, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
