package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func TestRunFig2aWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "2", "-outdir", dir, "-progress=false", "-metrics"},
		&out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2a.csv")); err != nil {
		t.Errorf("fig2a.csv not written: %v", err)
	}
	if !strings.Contains(errOut.String(), "analyzer.runs") {
		t.Errorf("-metrics summary missing from stderr:\n%s", errOut.String())
	}
}

// TestRunInterruptedFlushesPartialCSV checks the SIGINT path: a
// canceled context must still chart the partial study, flush it as
// *.partial.csv, and exit 130.
func TestRunInterruptedFlushesPartialCSV(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code, err := run(ctx,
		[]string{"-exp", "fig2a", "-tasksets", "2", "-outdir", dir, "-progress=false"},
		&out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2a.partial.csv")); err != nil {
		t.Errorf("partial CSV not written: %v", err)
	}
	if !strings.Contains(out.String(), "INTERRUPTED") {
		t.Errorf("output does not flag the interruption:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-exp", "nope"}, &out, &errOut)
	if err == nil || code != 1 {
		t.Fatalf("code=%d err=%v, want an error with code 1", code, err)
	}
}

// readFile is a tiny helper so equivalence checks read as one line.
func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunShardResumeMergeEquivalence drives the full resilient
// workflow through the CLI: a single-process reference run, two shard
// runs (one interrupted mid-flight and resumed), and a merge of the
// shard checkpoints — whose CSV must equal the reference byte for
// byte.
func TestRunShardResumeMergeEquivalence(t *testing.T) {
	refDir := t.TempDir()
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "3", "-outdir", refDir, "-progress=false"},
		&out, &errOut); err != nil || code != 0 {
		t.Fatalf("reference run: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	want := readFile(t, filepath.Join(refDir, "fig2a.csv"))

	ckpt := t.TempDir()
	// Shard 0: interrupt immediately — the canceled context leaves a
	// valid (possibly empty) checkpoint behind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out.Reset()
	errOut.Reset()
	if code, err := run(ctx,
		[]string{"-exp", "fig2a", "-tasksets", "3", "-shard", "0/2", "-checkpoint", ckpt, "-progress=false"},
		&out, &errOut); err != nil || code != 130 {
		t.Fatalf("interrupted shard 0: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	shard0 := filepath.Join(ckpt, "fig2a.shard0of2.json")
	if _, err := os.Stat(shard0); err != nil {
		t.Fatalf("interrupted shard left no checkpoint: %v", err)
	}

	// Re-running shard 0 without -resume must refuse to clobber it.
	out.Reset()
	errOut.Reset()
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "3", "-shard", "0/2", "-checkpoint", ckpt, "-progress=false"},
		&out, &errOut); err == nil || code != 1 {
		t.Fatalf("clobbering an existing checkpoint: code=%d err=%v, want a refusal", code, err)
	}

	// Resume shard 0 to completion, and run shard 1 fresh.
	for _, args := range [][]string{
		{"-exp", "fig2a", "-tasksets", "3", "-shard", "0/2", "-checkpoint", ckpt, "-resume", "-progress=false"},
		{"-exp", "fig2a", "-tasksets", "3", "-shard", "1/2", "-checkpoint", ckpt, "-progress=false"},
	} {
		out.Reset()
		errOut.Reset()
		if code, err := run(context.Background(), args, &out, &errOut); err != nil || code != 0 {
			t.Fatalf("run %v: code=%d err=%v (stderr: %s)", args, code, err, errOut.String())
		}
	}

	mergeDir := t.TempDir()
	out.Reset()
	errOut.Reset()
	code, err := run(context.Background(),
		[]string{"merge", "-outdir", mergeDir, shard0, filepath.Join(ckpt, "fig2a.shard1of2.json")},
		&out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("merge: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	if got := readFile(t, filepath.Join(mergeDir, "fig2a.csv")); got != want {
		t.Errorf("merged CSV differs from the single-process run:\n--- merged ---\n%s--- single ---\n%s", got, want)
	}
}

// swapHandler lets fleet listeners exist (URLs known) before the
// servers that need the full member list are built.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// TestRunClusterEquivalence pins the -cluster acceptance criterion: a
// sweep whose analyses are served by a 2-node buscond fleet must emit
// a CSV byte-identical to the single-process local run, leaving one
// audit-ready checkpoint shard per node behind.
func TestRunClusterEquivalence(t *testing.T) {
	refDir := t.TempDir()
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "2", "-outdir", refDir, "-progress=false"},
		&out, &errOut); err != nil || code != 0 {
		t.Fatalf("reference run: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	want := readFile(t, filepath.Join(refDir, "fig2a.csv"))

	const n = 2
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		hs := httptest.NewServer(swaps[i])
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	for i := range swaps {
		ring, err := cluster.NewRing(urls[i], urls, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		swaps[i].set(server.New(server.Options{Ring: ring}).Handler())
	}

	clusterDir := t.TempDir()
	ckpt := t.TempDir()
	out.Reset()
	errOut.Reset()
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "2", "-outdir", clusterDir,
			"-cluster", strings.Join(urls, ","), "-checkpoint", ckpt, "-progress=false"},
		&out, &errOut); err != nil || code != 0 {
		t.Fatalf("cluster run: code=%d err=%v (stderr: %s)", code, err, errOut.String())
	}
	if got := readFile(t, filepath.Join(clusterDir, "fig2a.csv")); got != want {
		t.Errorf("cluster CSV differs from the single-process run:\n--- cluster ---\n%s--- single ---\n%s", got, want)
	}
	for i := 0; i < n; i++ {
		if _, err := os.Stat(filepath.Join(ckpt, fmt.Sprintf("fig2a.shard%dof%d.json", i, n))); err != nil {
			t.Errorf("node %d left no shard checkpoint: %v", i, err)
		}
	}
}

// TestRunClusterFlagValidation: -cluster needs -checkpoint and
// excludes -shard (the fleet shards the sweep itself).
func TestRunClusterFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-cluster", "127.0.0.1:1"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("-cluster without -checkpoint: code=%d err=%v, want an error", code, err)
	}
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-cluster", "127.0.0.1:1", "-shard", "0/2", "-checkpoint", t.TempDir()},
		&out, &errOut); err == nil || code != 1 {
		t.Errorf("-cluster with -shard: code=%d err=%v, want an error", code, err)
	}
}

// TestRunShardFlagValidation: -shard without -checkpoint and
// unshardable studies under -shard are both flag errors.
func TestRunShardFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-shard", "0/2"}, &out, &errOut); err == nil || code != 1 {
		t.Errorf("-shard without -checkpoint: code=%d err=%v, want an error", code, err)
	}
	if code, err := run(context.Background(),
		[]string{"-exp", "extcrpd", "-shard", "0/2", "-checkpoint", t.TempDir()},
		&out, &errOut); err == nil || code != 1 {
		t.Errorf("unshardable study under -shard: code=%d err=%v, want an error", code, err)
	}
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-shard", "2/2", "-checkpoint", t.TempDir()},
		&out, &errOut); err == nil || code != 1 {
		t.Errorf("out-of-range shard: code=%d err=%v, want an error", code, err)
	}
}

// TestRunMergeRejectsIncompleteSet: merging only one of two shards
// must fail loudly rather than emit a half-study CSV.
func TestRunMergeRejectsIncompleteSet(t *testing.T) {
	ckpt := t.TempDir()
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "2", "-shard", "0/2", "-checkpoint", ckpt, "-progress=false"},
		&out, &errOut); err != nil || code != 0 {
		t.Fatalf("shard run: code=%d err=%v", code, err)
	}
	out.Reset()
	errOut.Reset()
	code, err := run(context.Background(),
		[]string{"merge", filepath.Join(ckpt, "fig2a.shard0of2.json")}, &out, &errOut)
	if err == nil || code != 1 {
		t.Fatalf("merge of an incomplete shard set: code=%d err=%v, want an error", code, err)
	}
	if !strings.Contains(err.Error(), "want 2") {
		t.Errorf("error %q does not name the expected shard count", err)
	}
}
