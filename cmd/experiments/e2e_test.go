package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig2aWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code, err := run(context.Background(),
		[]string{"-exp", "fig2a", "-tasksets", "2", "-outdir", dir, "-progress=false", "-metrics"},
		&out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2a.csv")); err != nil {
		t.Errorf("fig2a.csv not written: %v", err)
	}
	if !strings.Contains(errOut.String(), "analyzer.runs") {
		t.Errorf("-metrics summary missing from stderr:\n%s", errOut.String())
	}
}

// TestRunInterruptedFlushesPartialCSV checks the SIGINT path: a
// canceled context must still chart the partial study, flush it as
// *.partial.csv, and exit 130.
func TestRunInterruptedFlushesPartialCSV(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code, err := run(ctx,
		[]string{"-exp", "fig2a", "-tasksets", "2", "-outdir", dir, "-progress=false"},
		&out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2a.partial.csv")); err != nil {
		t.Errorf("partial CSV not written: %v", err)
	}
	if !strings.Contains(out.String(), "INTERRUPTED") {
		t.Errorf("output does not flag the interruption:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{"-exp", "nope"}, &out, &errOut)
	if err == nil || code != 1 {
		t.Fatalf("code=%d err=%v, want an error with code 1", code, err)
	}
}
