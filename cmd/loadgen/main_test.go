package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("fresh=1,dup=2,delta=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[classFresh] != 0.25 || w[classDup] != 0.5 || w[classDelta] != 0.25 {
		t.Errorf("weights = %v, want normalized 0.25/0.5/0.25", w)
	}
	for _, bad := range []string{"", "fresh", "warp=1", "fresh=-1", "fresh=0,dup=0,delta=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// Degenerate single-class mixes are fine.
	if w, err := parseMix("dup=3"); err != nil || w[classDup] != 1 {
		t.Errorf("single-class mix: %v, %v", w, err)
	}
}

func TestPickClassRespectsWeights(t *testing.T) {
	w, _ := parseMix("fresh=0.5,dup=0.5,delta=0")
	rng := rand.New(rand.NewSource(1))
	counts := [numClasses]int{}
	for i := 0; i < 10000; i++ {
		counts[pickClass(w, rng)]++
	}
	if counts[classDelta] != 0 {
		t.Errorf("zero-weight class drawn %d times", counts[classDelta])
	}
	if counts[classFresh] < 4000 || counts[classDup] < 4000 {
		t.Errorf("50/50 mix skewed: %v", counts)
	}
}

// TestLoadgenEndToEnd drives the full harness against an in-process
// daemon: mixed workload, JSON report, client/server cross-check.
func TestLoadgenEndToEnd(t *testing.T) {
	hs := httptest.NewServer(server.New(server.Options{}).Handler())
	defer hs.Close()

	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{
		"-addr", hs.URL,
		"-duration", "400ms",
		"-workers", "3",
		"-bases", "2",
		"-cores", "2", "-tasks-per-core", "3", "-util", "0.3",
		"-mix", "fresh=0.3,dup=0.4,delta=0.3",
		"-json",
	}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\nstderr:\n%s", code, err, errOut.String())
	}

	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests < 3 {
		t.Fatalf("only %d requests in 400ms closed loop", rep.Requests)
	}
	if rep.OK != rep.Requests {
		t.Errorf("ok=%d != requests=%d (shed=%d timeouts=%d errors=%d transport=%d)",
			rep.OK, rep.Requests, rep.Shed, rep.Timeouts, rep.Errors, rep.Transport)
	}
	if rep.Server == nil {
		t.Fatal("report missing server_check")
	}
	if !rep.Server.OK {
		t.Errorf("server cross-check failed: %+v", rep.Server)
	}
	if len(rep.Classes) != 3 {
		t.Errorf("classes = %v, want all three exercised", rep.Classes)
	}
	for name, c := range rep.Classes {
		if c.Count != c.Requests {
			t.Errorf("class %s: %d latency observations for %d requests", name, c.Count, c.Requests)
		}
		if c.P99US < c.P50US || c.P99US <= 0 {
			t.Errorf("class %s: quantiles disordered: %+v", name, c)
		}
	}
	// The mixed workload must have exercised the analyze and cache
	// stages server-side. Stage flushes land after the response write,
	// so the final scrape may miss the last few in-flight requests —
	// assert presence, not exact counts.
	if len(rep.Stages) == 0 {
		t.Fatal("report missing server stage quantiles")
	}
	for _, stage := range []string{"analyze", "cache"} {
		if q, ok := rep.Stages[stage]; !ok || q.Count <= 0 {
			t.Errorf("%s stage quantiles missing: %+v", stage, rep.Stages)
		}
	}
}

// swapHandler lets the fleet's listeners exist (URLs known) before the
// servers that need the full member list are built.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// fleetServers starts n in-process buscond nodes wired into one ring.
func fleetServers(t *testing.T, n int) []string {
	t.Helper()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		hs := httptest.NewServer(swaps[i])
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	for i := range swaps {
		ring, err := cluster.NewRing(urls[i], urls, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		swaps[i].set(server.New(server.Options{Ring: ring}).Handler())
	}
	return urls
}

// TestLoadgenMultiTarget spreads a mixed workload over a 3-node fleet:
// every request lands on a random node, shard-owner routing settles it
// on its owner, and the summed /metrics cross-check must balance just
// like a single daemon's.
func TestLoadgenMultiTarget(t *testing.T) {
	urls := fleetServers(t, 3)

	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{
		"-targets", strings.Join(urls, ","),
		"-duration", "400ms",
		"-workers", "3",
		"-bases", "2",
		"-cores", "2", "-tasks-per-core", "3", "-util", "0.3",
		"-mix", "fresh=0.3,dup=0.4,delta=0.3",
		"-json",
	}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\nstderr:\n%s", code, err, errOut.String())
	}

	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Targets != 3 {
		t.Errorf("targets = %d, want 3", rep.Targets)
	}
	if rep.OK != rep.Requests {
		t.Errorf("ok=%d != requests=%d (shed=%d timeouts=%d errors=%d transport=%d)",
			rep.OK, rep.Requests, rep.Shed, rep.Timeouts, rep.Errors, rep.Transport)
	}
	if rep.Server == nil {
		t.Fatal("report missing server_check")
	}
	if !rep.Server.OK && !rep.Server.Skipped {
		t.Errorf("fleet cross-check mismatch: %+v", rep.Server)
	}
	if rep.Server.Skipped {
		// An in-process fleet never degrades; a skip here means the
		// degradation guard fired without cause.
		t.Errorf("fleet cross-check skipped: %s", rep.Server.Reason)
	}

	// The run must actually have exercised routing: with 3 nodes and
	// uniformly random targets, some requests landed on non-owners.
	final, err := scrapeAll(http.DefaultClient, urls)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters["server.peer_proxied"] == 0 {
		t.Error("no requests were proxied — -targets never hit a non-owner")
	}
	if final.Counters["server.peer_degraded"] != 0 || final.Counters["server.peer_errors"] != 0 {
		t.Errorf("healthy fleet reported degradation: degraded=%d errors=%d",
			final.Counters["server.peer_degraded"], final.Counters["server.peer_errors"])
	}
}

// TestLoadgenTextReport exercises the human-readable output and the
// dup-only degenerate mix (pure cache-hit traffic).
func TestLoadgenTextReport(t *testing.T) {
	hs := httptest.NewServer(server.New(server.Options{}).Handler())
	defer hs.Close()

	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{
		"-addr", hs.URL,
		"-duration", "200ms",
		"-workers", "2",
		"-bases", "1",
		"-cores", "2", "-tasks-per-core", "2", "-util", "0.3",
		"-mix", "dup=1",
	}, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\nstderr:\n%s", code, err, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"req/s", "dup", "p99=", "server check: ok", "server stages"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, _ := run(context.Background(), []string{"-mix", "warp=1"}, &out, &errOut); code != 1 {
		t.Errorf("bad mix accepted (code %d)", code)
	}
	if code, _ := run(context.Background(), []string{"-bases", "0"}, &out, &errOut); code != 1 {
		t.Errorf("zero bases accepted (code %d)", code)
	}
	// Unreachable daemon fails at warmup, not silently.
	if code, err := run(context.Background(), []string{"-addr", "http://127.0.0.1:1", "-duration", "50ms"}, &out, &errOut); code != 1 || err == nil {
		t.Errorf("unreachable daemon: code=%d err=%v, want failure", code, err)
	}
}
